# Tier-1 verify loop. `make verify` is what CI (and any PR) must keep
# green: vet, build, full tests, and the race detector over the whole
# tree. The chaos/soak suites in internal/cluster and internal/core run
# as part of `test`; `make quick` skips the multi-second soak.

GO ?= go

.PHONY: build vet test quick race fuzz bench bench-quick verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

quick:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Short fuzz session over the wire codec (frames + legacy gob). The seed
# corpus also runs as ordinary tests under `make test`.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=15s ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzRequestRoundTrip -fuzztime=15s ./internal/cluster

# Pooled persistent connections vs the per-request-dial baseline.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkTCPRead' -benchmem ./internal/cluster

# Full quick artifact sweep through the parallel experiment engine under
# the race detector: exercises the worker pools, the single-flight trace
# cache and every driver's fan-out in one shot.
bench-quick:
	$(GO) run -race ./cmd/kona-bench -run all -quick -parallel 0 -out /dev/null

verify: vet build test race bench-quick
