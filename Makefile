# Tier-1 verify loop. `make verify` is what CI (and any PR) must keep
# green: vet, build, full tests, and the race detector over the whole
# tree. The chaos/soak suites in internal/cluster and internal/core run
# as part of `test`; `make quick` skips the multi-second soak.

GO ?= go

.PHONY: build vet test quick race fuzz bench bench-quick bench-telemetry bench-evict bench-concurrent bench-wire bench-migrate bench-lease kv-bench kv-soak cover stress chaos verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

quick:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Short fuzz session over the wire codec: arbitrary bytes into the frame
# reader (must error, never panic or desync) and lossless round trips
# over randomized Request/Response field sets. The seed corpus also runs
# as ordinary tests under `make test`.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=15s ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzRequestRoundTrip -fuzztime=15s ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzResponseRoundTrip -fuzztime=15s ./internal/cluster

# Pooled persistent connections vs the per-request-dial baseline.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkTCPRead' -benchmem ./internal/cluster

# Full quick artifact sweep through the parallel experiment engine under
# the race detector: exercises the worker pools, the single-flight trace
# cache and every driver's fan-out in one shot.
bench-quick:
	$(GO) run -race ./cmd/kona-bench -run all -quick -parallel 0 -out /dev/null

# Eviction-path guard (DESIGN.md §8): the serial-vs-pipelined 3-replica
# flush fan-out over real TCP daemons, the steady-state evict and
# fetch-hit allocation checks (-benchmem must report 0 allocs/op on the
# arena-backed paths), and the single-vs-batched ReadPages round trip.
# -benchtime=1x keeps it a smoke run; compare properly with -benchtime=2s.
bench-evict:
	$(GO) test -run='^$$' -bench='BenchmarkFlushFanout|BenchmarkEvictSteadyState|BenchmarkFetchHitSteadyState' -benchmem -benchtime=1x ./internal/core
	$(GO) test -run='^$$' -bench='BenchmarkReadPagesVsSingle' -benchtime=1x ./internal/cluster

# Telemetry-overhead guard (DESIGN.md §7): one pass over the
# disabled/enabled benchmark pairs on the two hottest instrumented paths
# — the cachesim batched lookup loop and the pooled TCP read — so a
# change that adds hot-loop instrumentation fails loudly in review.
# -benchtime=1x keeps it a smoke run; compare properly with -benchtime=1s.
bench-telemetry:
	$(GO) test -run='^$$' -bench='BenchmarkTelemetryOverhead' -benchtime=1x ./internal/cachesim ./internal/cluster

# Concurrency stress pass (DESIGN.md §9): the data-path and cluster
# packages, three times each, under the race detector with a rotating
# schedule seed — every run explores a different interleaving of the
# concurrent model tests. -short keeps the whole pass under two minutes;
# for a soak, run it in a loop or raise -count. Pin a failing schedule
# with KONA_STRESS_SEED=<seed> make stress.
KONA_STRESS_SEED ?= $(shell date +%s)
stress:
	KONA_STRESS_SEED=$(KONA_STRESS_SEED) $(GO) test -race -short -count=3 ./internal/core ./internal/cluster

# Fault-tolerance chaos pass (DESIGN.md §10): the kill/repair/verify and
# crash-rejoin suites plus the repair/rate-limiter unit tests, under the
# race detector with a rotating workload seed — every run kills replicas
# at a different point in the access stream. Well under 60s. Pin a
# failing run with KONA_CHAOS_SEED=<seed> make chaos.
KONA_CHAOS_SEED ?= $(shell date +%s)
chaos:
	KONA_CHAOS_SEED=$(KONA_CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'Chaos|Rejoin|Repair|ByteBudget|Migrat' ./internal/core ./internal/cluster ./internal/kv

# Migration starvation guard (DESIGN.md §13): a concurrent budgeted live
# slab migration must not degrade the workload's virtual-time fetch p99
# by 10% or more — the same discipline bench-evict applies to repair.
bench-migrate:
	$(GO) test -run 'TestMigrationDoesNotStarveFetchP99' -count=1 -v ./internal/core

# Sharing-overhead guard (DESIGN.md §14): idle reader attachments must
# not put lease machinery on the writer's flush path — the per-Sync
# virtual-time p99 with 4 attached readers must stay within 10% of the
# unshared baseline.
bench-lease:
	$(GO) test -run 'TestLeaseIdleReadersDoNotDegradeWriterFlushP99' -count=1 -v ./internal/core

# KV service SLO guard (DESIGN.md §12): the fixed-seed open-loop zipfian
# run against kona-kvd on a full TCP rack — the tail must hold under the
# SLO, every acknowledged write must verify intact, and the fetch/evict
# counters must prove the values actually lived in remote memory.
kv-bench:
	$(GO) test -run 'TestKVBenchSLO' -count=1 -v ./internal/kv

# KV service soak (DESIGN.md §12): a longer mixed workload over the full
# TCP stack under the race detector. KONA_KV_SOAK sets the horizon.
KONA_KV_SOAK ?= 30s
kv-soak:
	KONA_KV_SOAK=$(KONA_KV_SOAK) $(GO) test -race -run 'TestKVSoak' -count=1 -v ./internal/kv

# Zero-copy wire-path guard (DESIGN.md §11): the evict ship and fetch
# fill must move payloads with zero staged bytes (copiedB/op must print
# 0 for WriteLogVec, and the guard test fails if a copy creeps back into
# the write-log or *Into paths). -benchmem shows allocs/op; the gob-era
# baseline was ~483 allocs and 3x-staged payloads per pooled read.
bench-wire:
	$(GO) test -run='TestWireEvictPathZeroCopies' -count=1 ./internal/cluster
	$(GO) test -run='^$$' -bench='BenchmarkWire' -benchmem -benchtime=100x ./internal/cluster

# Read-hit scaling at 1/2/4/8 application goroutines (DESIGN.md §9).
# Wall ns/op should drop with goroutines on a multi-core host; the
# vops/µs metric (aggregate virtual-time throughput) must scale ~linearly
# on any host, and every row must report 0 allocs/op.
bench-concurrent:
	$(GO) test -run='^$$' -bench='BenchmarkConcurrent' -benchmem -benchtime=1x ./internal/core

# Per-package coverage summary (tier-1 packages only; cmd mains are thin
# flag wrappers exercised by the daemons' own tests and smoke runs).
cover:
	$(GO) test -cover ./internal/... | sort

verify: vet build test race stress chaos bench-quick bench-telemetry bench-evict bench-concurrent bench-wire bench-migrate bench-lease kv-bench kv-soak
