package kona_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its artifact through
// internal/experiments, prints the same rows/series the paper reports
// (once, on the first iteration), and reports the headline quantity as a
// custom benchmark metric so regressions are visible in benchstat output.
//
//	go test -bench=. -benchmem ./...
//
// regenerates everything; see EXPERIMENTS.md for the paper-vs-measured
// record.

import (
	"fmt"
	"sync"
	"testing"

	"kona/internal/experiments"
	"kona/internal/workload"
)

// benchCfg runs the full-scale experiment on the first iteration and the
// quick variant afterwards (b.N > 1 only when -benchtime demands it).
func benchCfg(i int) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Quick = i > 0
	return cfg
}

var printOnce sync.Map

// runArtifact executes one artifact b.N times, printing the full-scale
// result once per process.
func runArtifact(b *testing.B, id string, metric func(*experiments.Result) (float64, string)) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last = res
		}
	}
	if _, printed := printOnce.LoadOrStore(id, true); !printed {
		fmt.Printf("\n%s\n", last.String())
	}
	if metric != nil {
		v, unit := metric(last)
		b.ReportMetric(v, unit)
	}
}

// ratioAt computes seriesA(x)/seriesB(x) for headline metrics.
func ratioAt(res *experiments.Result, a, bName string, x float64) float64 {
	var av, bv float64
	for _, s := range res.Series {
		if s.Name == a {
			av, _ = s.YAt(x)
		}
		if s.Name == bName {
			bv, _ = s.YAt(x)
		}
	}
	if bv == 0 {
		return 0
	}
	return av / bv
}

// BenchmarkRunAllQuick regenerates every artifact in quick mode through
// the parallel experiment engine, serial (Workers=1) vs parallel
// (Workers=GOMAXPROCS) — the wall-clock ratio is the engine's speedup.
// The trace cache is dropped each iteration so both variants measure the
// full cold-start pipeline (generation + simulation + rendering).
func BenchmarkRunAllQuick(b *testing.B) {
	for _, variant := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				workload.ResetTraceCache()
				cfg := experiments.Config{Quick: true, Seed: 42, Workers: variant.workers}
				if _, err := experiments.RunAll(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Amplification regenerates Table 2 (dirty data
// amplification across nine workloads and three granularities).
func BenchmarkTable2Amplification(b *testing.B) {
	runArtifact(b, "table2", nil)
}

// BenchmarkFig2SpatialLocality regenerates Fig 2 (CDF of accessed
// cache-lines per page, Redis).
func BenchmarkFig2SpatialLocality(b *testing.B) {
	runArtifact(b, "fig2", nil)
}

// BenchmarkFig3Contiguity regenerates Fig 3 (CDF of contiguous accessed
// segments, Redis).
func BenchmarkFig3Contiguity(b *testing.B) {
	runArtifact(b, "fig3", nil)
}

// BenchmarkFig7Microbenchmark regenerates Fig 7 (Kona vs Kona-VM with
// 1/2/4 threads and the NoEvict/NoWP variants). The reported metric is the
// 1-thread Kona-VM/Kona ratio (paper: 6.6).
func BenchmarkFig7Microbenchmark(b *testing.B) {
	runArtifact(b, "fig7", func(r *experiments.Result) (float64, string) {
		return ratioAt(r, "Kona-VM", "Kona", 1), "x-speedup@1T"
	})
}

// BenchmarkFig8aAMATRedis regenerates Fig 8a (AMAT vs cache size for
// Redis-Rand). The metric is LegoOS/Kona at 25% cache (paper: ~1.7).
func BenchmarkFig8aAMATRedis(b *testing.B) {
	runArtifact(b, "fig8a", func(r *experiments.Result) (float64, string) {
		return ratioAt(r, "LegoOS", "Kona", 25), "x-LegoOS/Kona@25%"
	})
}

// BenchmarkFig8bAMATLinReg regenerates Fig 8b (Linear Regression).
func BenchmarkFig8bAMATLinReg(b *testing.B) {
	runArtifact(b, "fig8b", nil)
}

// BenchmarkFig8cAMATGraphCol regenerates Fig 8c (Graph Coloring).
func BenchmarkFig8cAMATGraphCol(b *testing.B) {
	runArtifact(b, "fig8c", nil)
}

// BenchmarkFig8dBlockSize regenerates Fig 8d (AMAT vs fetch block size).
func BenchmarkFig8dBlockSize(b *testing.B) {
	runArtifact(b, "fig8d", nil)
}

// BenchmarkFig9AmplificationWindows regenerates Fig 9 (per-window 4KB vs
// cache-line amplification ratio).
func BenchmarkFig9AmplificationWindows(b *testing.B) {
	runArtifact(b, "fig9", nil)
}

// BenchmarkFig10TrackingSpeedup regenerates Fig 10 (dirty-tracking speedup
// vs write-protection). The metric is the Redis-Rand speedup (paper: 35%).
func BenchmarkFig10TrackingSpeedup(b *testing.B) {
	runArtifact(b, "fig10", func(r *experiments.Result) (float64, string) {
		if len(r.Series) > 0 && len(r.Series[0].Points) > 0 {
			return r.Series[0].Points[0].Y, "%speedup-RedisRand"
		}
		return 0, "%speedup-RedisRand"
	})
}

// BenchmarkFig11aGoodputContig regenerates Fig 11a. The metric is the CL
// log's goodput over Kona-VM at 1 contiguous dirty line (paper: 4-5).
func BenchmarkFig11aGoodputContig(b *testing.B) {
	runArtifact(b, "fig11a", func(r *experiments.Result) (float64, string) {
		for _, s := range r.Series {
			if s.Name == "Kona's CL log" {
				v, _ := s.YAt(1)
				return v, "x-goodput@1CL"
			}
		}
		return 0, "x-goodput@1CL"
	})
}

// BenchmarkFig11bGoodputAlt regenerates Fig 11b (alternate dirty lines).
func BenchmarkFig11bGoodputAlt(b *testing.B) {
	runArtifact(b, "fig11b", nil)
}

// BenchmarkFig11cBreakdown regenerates Fig 11c (eviction time breakdown).
func BenchmarkFig11cBreakdown(b *testing.B) {
	runArtifact(b, "fig11c", nil)
}

// BenchmarkSec21Latency regenerates the §2.1 motivation numbers.
func BenchmarkSec21Latency(b *testing.B) {
	runArtifact(b, "sec21", nil)
}

// Ablation benchmarks: design-choice studies the paper discusses in prose
// (see EXPERIMENTS.md "Ablations").

// BenchmarkAblationPrefetch toggles the FPGA's sequential prefetcher.
func BenchmarkAblationPrefetch(b *testing.B) {
	runArtifact(b, "abl-prefetch", nil)
}

// BenchmarkAblationScatterGather compares the cache-line log against NIC
// scatter-gather eviction (§6.4's discarded alternative).
func BenchmarkAblationScatterGather(b *testing.B) {
	runArtifact(b, "abl-sg", nil)
}

// BenchmarkAblationReplicas sweeps the replication factor (§4.5).
func BenchmarkAblationReplicas(b *testing.B) {
	runArtifact(b, "abl-replicas", nil)
}

// BenchmarkAblationFlushThreshold sweeps the eviction-log flush threshold.
func BenchmarkAblationFlushThreshold(b *testing.B) {
	runArtifact(b, "abl-flush", nil)
}

// BenchmarkAblationAssociativity sweeps DRAM-cache associativity (§6.2).
func BenchmarkAblationAssociativity(b *testing.B) {
	runArtifact(b, "abl-assoc", nil)
}

// BenchmarkAblationTracking compares write-protect, Intel PML and
// coherence-based dirty tracking.
func BenchmarkAblationTracking(b *testing.B) {
	runArtifact(b, "abl-tracking", nil)
}

// BenchmarkAblationHugePages quantifies the huge-page amplification /
// TLB-reach trade-off (§2.1, §3).
func BenchmarkAblationHugePages(b *testing.B) {
	runArtifact(b, "abl-hugepages", nil)
}

// BenchmarkAblationHWPrefetch quantifies hardware prefetching into the
// DRAM cache — the margin Fig 8 left on the table for Kona (§3).
func BenchmarkAblationHWPrefetch(b *testing.B) {
	runArtifact(b, "abl-hwprefetch", nil)
}

// BenchmarkExtE2EReplay replays workload traces end to end on both
// runtimes (the §5/§6.1 methodology at whole-application scope).
func BenchmarkExtE2EReplay(b *testing.B) {
	runArtifact(b, "ext-e2e", nil)
}

// BenchmarkExtLeapPrefetch exercises the Leap-style adaptive stride
// prefetcher on a stride-2 workload the next-page prefetcher cannot see.
func BenchmarkExtLeapPrefetch(b *testing.B) {
	runArtifact(b, "ext-leap", nil)
}

// BenchmarkExtAMATAll extends the Fig 8 AMAT comparison to all nine
// workloads.
func BenchmarkExtAMATAll(b *testing.B) {
	runArtifact(b, "ext-amat", nil)
}

// BenchmarkAblationFetchGranularity sweeps the runtime's remote fetch
// granularity (§4.4's data-movement-size choice).
func BenchmarkAblationFetchGranularity(b *testing.B) {
	runArtifact(b, "abl-fetchgran", nil)
}
