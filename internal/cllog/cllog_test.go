package cllog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	entries := []Entry{
		{RemoteOff: 0, Data: bytes.Repeat([]byte{1}, 64)},
		{RemoteOff: 4096, Data: bytes.Repeat([]byte{2}, 128)},
		{RemoteOff: 1 << 30, Data: []byte{9}},
	}
	buf := make([]byte, PackedSize(entries))
	n, err := Pack(entries, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("packed %d bytes, PackedSize said %d", n, len(buf))
	}
	var got []Entry
	cnt, err := Unpack(buf, func(e Entry) error {
		got = append(got, Entry{RemoteOff: e.RemoteOff, Data: append([]byte(nil), e.Data...)})
		return nil
	})
	if err != nil || cnt != 3 {
		t.Fatalf("unpack: cnt=%d err=%v", cnt, err)
	}
	for i := range entries {
		if got[i].RemoteOff != entries[i].RemoteOff || !bytes.Equal(got[i].Data, entries[i].Data) {
			t.Errorf("entry %d mismatch", i)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	buf := make([]byte, PackedSize(nil))
	if _, err := Pack(nil, buf); err != nil {
		t.Fatal(err)
	}
	cnt, err := Unpack(buf, func(Entry) error { t.Fatal("callback on empty log"); return nil })
	if err != nil || cnt != 0 {
		t.Errorf("empty unpack: %d %v", cnt, err)
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack([]Entry{{Data: make([]byte, 64)}}, make([]byte, 10)); err == nil {
		t.Errorf("small buffer accepted")
	}
	if _, err := Pack([]Entry{{Data: make([]byte, 70000)}}, make([]byte, 80000)); err == nil {
		t.Errorf("oversized payload accepted")
	}
	if _, err := Pack([]Entry{{RemoteOff: ^uint64(0), Data: []byte{1}}}, make([]byte, 64)); err == nil {
		t.Errorf("reserved offset accepted")
	}
}

func TestUnpackTruncated(t *testing.T) {
	entries := []Entry{{RemoteOff: 10, Data: make([]byte, 64)}}
	buf := make([]byte, PackedSize(entries))
	if _, err := Pack(entries, buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 9, 50, len(buf) - 9} {
		if _, err := Unpack(buf[:cut], func(Entry) error { return nil }); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: err=%v, want ErrTruncated", cut, err)
		}
	}
}

func TestUnpackCallbackError(t *testing.T) {
	entries := []Entry{{RemoteOff: 1, Data: []byte{1}}, {RemoteOff: 2, Data: []byte{2}}}
	buf := make([]byte, PackedSize(entries))
	if _, err := Pack(entries, buf); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	n, err := Unpack(buf, func(e Entry) error {
		if e.RemoteOff == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Errorf("n=%d err=%v", n, err)
	}
}

// Property: pack→unpack is the identity for arbitrary entry sets.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count) % 32
		entries := make([]Entry, n)
		for i := range entries {
			sz := rng.Intn(256) + 1
			d := make([]byte, sz)
			rng.Read(d)
			entries[i] = Entry{RemoteOff: rng.Uint64() >> 1, Data: d}
		}
		buf := make([]byte, PackedSize(entries))
		if _, err := Pack(entries, buf); err != nil {
			return false
		}
		i := 0
		cnt, err := Unpack(buf, func(e Entry) error {
			if e.RemoteOff != entries[i].RemoteOff || !bytes.Equal(e.Data, entries[i].Data) {
				return errors.New("mismatch")
			}
			i++
			return nil
		})
		return err == nil && cnt == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzUnpack exercises the decoder against arbitrary bytes: it must never
// panic and must account every reported entry within bounds.
func FuzzUnpack(f *testing.F) {
	entries := []Entry{{RemoteOff: 64, Data: []byte("seed-payload")}}
	buf := make([]byte, PackedSize(entries))
	if _, err := Pack(entries, buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Unpack(data, func(e Entry) error {
			if len(e.Data) > 0xFFFF {
				t.Fatalf("oversized entry surfaced: %d", len(e.Data))
			}
			return nil
		})
		if err == nil && n < 0 {
			t.Fatalf("negative entry count")
		}
	})
}

// TestEntryPoolConcurrent churns the package entry pool from many
// goroutines the way the sharded eviction path does — every evict shard
// and every per-node merge batch draws from the same pool — while each
// goroutine round-trips its own entries through Pack/Unpack. Under
// -race this pins that pooled slices are handed to exactly one holder
// at a time (double-delivery of one backing array would corrupt two
// nodes' logs at once).
func TestEntryPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				entries := GetEntries()
				for i := 0; i < 16; i++ {
					payload := bytes.Repeat([]byte{byte(g + 1)}, 64)
					entries = append(entries, Entry{
						RemoteOff: uint64(g)<<32 | uint64(iter)<<8 | uint64(i),
						Data:      payload,
					})
				}
				buf := make([]byte, PackedSize(entries))
				packed, err := Pack(entries, buf)
				if err != nil {
					t.Errorf("goroutine %d iter %d: pack: %v", g, iter, err)
					return
				}
				i := 0
				n, err := Unpack(buf[:packed], func(e Entry) error {
					want := entries[i]
					if e.RemoteOff != want.RemoteOff || !bytes.Equal(e.Data, want.Data) {
						return fmt.Errorf("entry %d mismatch (cross-goroutine corruption?)", i)
					}
					i++
					return nil
				})
				if err != nil || n != len(entries) {
					t.Errorf("goroutine %d iter %d: unpack n=%d err=%v", g, iter, n, err)
					return
				}
				PutEntries(entries)
			}
		}(g)
	}
	wg.Wait()
}
