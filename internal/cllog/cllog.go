// Package cllog defines Kona's cache-line log: the ring-buffer wire format
// (inspired by FaRM, §4.4) that the Eviction Handler uses to aggregate
// dirty cache lines — contiguous or not, even from different pages — into
// one large RDMA write, and that the Cache-line Log Receiver on the memory
// node unpacks back into place.
//
// Layout: a sequence of entries, each
//
//	[8B remote offset][2B length][payload bytes]
//
// terminated by an offset of all-ones. Lengths are multiples of 64 in
// normal operation (whole cache lines, possibly coalesced segments), but
// the codec accepts any length for generality.
package cllog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// HeaderSize is the per-entry header length.
const HeaderSize = 10

// terminator marks the end of the packed log.
const terminator = ^uint64(0)

// Entry is one dirty segment destined for remote memory.
type Entry struct {
	// RemoteOff is the byte offset within the target memory region.
	RemoteOff uint64
	// Data is the segment payload.
	Data []byte
}

// ErrTruncated reports a log that ends mid-entry.
var ErrTruncated = errors.New("cllog: truncated log")

// entryPool recycles Entry slices across log-builder lifetimes. Eviction
// handlers keep one slice per destination node for their whole life, but
// the experiment engine constructs thousands of short-lived runtimes per
// sweep; pooling the slices keeps that churn off the garbage collector.
var entryPool = sync.Pool{New: func() any {
	s := make([]Entry, 0, 64)
	return &s
}}

// GetEntries returns an empty Entry slice from the package pool. Pair
// with PutEntries when the holder is done with it.
func GetEntries() []Entry { return (*(entryPool.Get().(*[]Entry)))[:0] }

// PutEntries returns a slice obtained from GetEntries to the pool. The
// caller must not retain the slice (or any payload aliases) afterwards.
func PutEntries(s []Entry) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	entryPool.Put(&s)
}

// PackedSize returns the buffer space entries require when packed.
func PackedSize(entries []Entry) int {
	n := 8 // terminator
	for _, e := range entries {
		n += HeaderSize + len(e.Data)
	}
	return n
}

// Pack serializes entries into buf and returns the bytes used. It fails if
// buf is too small or an entry exceeds the 2-byte length field.
func Pack(entries []Entry, buf []byte) (int, error) {
	need := PackedSize(entries)
	if len(buf) < need {
		return 0, fmt.Errorf("cllog: buffer %d too small for %d bytes", len(buf), need)
	}
	off := 0
	for i, e := range entries {
		if len(e.Data) > 0xFFFF {
			return 0, fmt.Errorf("cllog: entry %d payload %d exceeds 64KB", i, len(e.Data))
		}
		if e.RemoteOff == terminator {
			return 0, fmt.Errorf("cllog: entry %d uses reserved offset", i)
		}
		binary.LittleEndian.PutUint64(buf[off:], e.RemoteOff)
		binary.LittleEndian.PutUint16(buf[off+8:], uint16(len(e.Data)))
		copy(buf[off+HeaderSize:], e.Data)
		off += HeaderSize + len(e.Data)
	}
	binary.LittleEndian.PutUint64(buf[off:], terminator)
	return off + 8, nil
}

// Unpack parses a packed log, invoking apply for each entry in order. The
// callback receives the entry's payload aliased into buf; implementations
// must copy if they retain it. Unpack returns the number of entries.
func Unpack(buf []byte, apply func(Entry) error) (int, error) {
	off, n := 0, 0
	for {
		if off+8 > len(buf) {
			return n, ErrTruncated
		}
		remoteOff := binary.LittleEndian.Uint64(buf[off:])
		if remoteOff == terminator {
			return n, nil
		}
		if off+HeaderSize > len(buf) {
			return n, ErrTruncated
		}
		length := int(binary.LittleEndian.Uint16(buf[off+8:]))
		if off+HeaderSize+length > len(buf) {
			return n, ErrTruncated
		}
		e := Entry{RemoteOff: remoteOff, Data: buf[off+HeaderSize : off+HeaderSize+length]}
		if err := apply(e); err != nil {
			return n, err
		}
		off += HeaderSize + length
		n++
	}
}
