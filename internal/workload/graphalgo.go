package workload

import (
	"math/rand"
	"sync"

	"kona/internal/mem"
	"kona/internal/trace"
)

// PageRankAlgo is an *algorithmic* graph workload: a real vertex-centric
// PageRank engine over a synthetic power-law CSR graph, emitting the
// memory accesses the engine actually performs. Unlike the calibrated
// clustered generator used for the Table 2 rows, nothing here is fitted to
// the paper's numbers — its dirty-set geometry is emergent, which makes it
// a useful cross-check (TestAlgorithmicAmplification) and a harder target
// for the runtime experiments.
//
// Memory layout within the footprint:
//
//	[0, 4(V+1))           offset array (CSR)
//	[edgeBase, +4E)       edge array
//	[stateBase, +24V)     per-vertex state: rank, nextRank, degree (8B each)
//
// Per scheduled vertex (GraphLab-style scattered order): read its offsets
// and edges sequentially, read each neighbor's rank, accumulate, and
// write back the vertex's 24-byte state record at a scattered location.
func PageRankAlgo() *Workload {
	w := &Workload{
		Name:             "PageRank-Algo",
		Footprint:        64 * mb,
		PaperFootprintGB: 0, // not a Table 2 row
		Windows:          30,
		WriteBandwidth:   8 * mb,
	}
	w.tracking = pageRankAlgoWindow
	w.cache = clusteredCacheStream
	return w
}

// graph geometry for the algorithmic workload.
const (
	praVertices   = 120000
	praEdgeFactor = 7
	praStateSize  = 24
)

// praGraph is the lazily built CSR shared across windows of one stream.
type praGraph struct {
	offsets []uint32
	edges   []uint32
	order   []uint32 // scattered scheduling order
}

// buildPRAGraph synthesizes a power-law-ish graph deterministically.
func buildPRAGraph(seed int64) *praGraph {
	rng := rand.New(rand.NewSource(seed))
	g := &praGraph{offsets: make([]uint32, praVertices+1)}
	for v := 0; v < praVertices; v++ {
		deg := 1 + rng.Intn(2*praEdgeFactor)
		g.offsets[v+1] = g.offsets[v] + uint32(deg)
		for i := 0; i < deg; i++ {
			// Preferential attachment flavor: bias toward low ids.
			t := uint32(rng.Intn(praVertices))
			if rng.Intn(3) != 0 {
				t = uint32(rng.Intn(praVertices / 8))
			}
			g.edges = append(g.edges, t)
		}
	}
	g.order = make([]uint32, praVertices)
	for i := range g.order {
		g.order[i] = uint32(i)
	}
	rng.Shuffle(len(g.order), func(i, j int) {
		g.order[i], g.order[j] = g.order[j], g.order[i]
	})
	return g
}

// praLayout computes the array base addresses within the footprint.
func praLayout(g *praGraph) (offBase, edgeBase, stateBase mem.Addr) {
	offBase = 0
	edgeBase = mem.Addr(4 * (praVertices + 1)).AlignUp(mem.PageSize)
	stateBase = (edgeBase + mem.Addr(4*len(g.edges))).AlignUp(mem.PageSize)
	return offBase, edgeBase, stateBase
}

// pageRankAlgoWindow runs one window's worth of vertex updates: the
// engine processes vertices/Windows vertices per window in scattered
// order, cycling across the graph over the run.
func pageRankAlgoWindow(rng *rand.Rand, w *Workload, window int) []trace.Access {
	// The graph is deterministic per stream seed; rebuild cheaply from a
	// seed derived from the rng's first draw on window 0. To keep the
	// same graph across windows, derive from the workload identity only.
	g := praGraphCache(42)
	offBase, edgeBase, stateBase := praLayout(g)
	// A GraphLab-style async engine keeps a large frontier live: ~12% of
	// vertices update per (scaled) window.
	perWindow := praVertices * 12 / 100
	start := window * perWindow % praVertices
	var accs []trace.Access
	for i := 0; i < perWindow; i++ {
		v := g.order[(start+i)%praVertices]
		// Read the vertex's CSR offsets (two adjacent uint32s).
		accs = append(accs, trace.Access{Addr: offBase + mem.Addr(4*v), Size: 8, Kind: trace.Read})
		lo, hi := g.offsets[v], g.offsets[v+1]
		// Sequential edge reads.
		if hi > lo {
			accs = append(accs, trace.Access{
				Addr: edgeBase + mem.Addr(4*lo), Size: 4 * (hi - lo), Kind: trace.Read,
			})
		}
		// Scattered neighbor-rank reads.
		for e := lo; e < hi; e++ {
			t := g.edges[e]
			accs = append(accs, trace.Access{
				Addr: stateBase + mem.Addr(uint64(t)*praStateSize), Size: 8, Kind: trace.Read,
			})
		}
		// The vertex-state write: the full 24B record (rank, nextRank,
		// scheduler flags) at a scattered location.
		accs = append(accs, trace.Access{
			Addr: stateBase + mem.Addr(uint64(v)*praStateSize), Size: praStateSize, Kind: trace.Write,
		})
	}
	_ = rng
	return stampWindow(accs, window)
}

// praCache memoizes the graph across windows and streams (deterministic,
// and safe under parallel tests).
var (
	praCached *praGraph
	praOnce   sync.Once
)

func praGraphCache(seed int64) *praGraph {
	praOnce.Do(func() { praCached = buildPRAGraph(seed) })
	return praCached
}
