package workload

import (
	"errors"
	"io"
	"testing"

	"kona/internal/trace"
)

// measure runs a workload's tracking stream through the window machinery
// and returns the mean per-window amplification at the three granularities,
// skipping the first `skip` (startup) windows.
func measure(t *testing.T, w *Workload, skip int) (amp4K, amp2M, ampCL float64) {
	t.Helper()
	win := trace.NewWindower(w.TrackingStream(42), WindowLen)
	var n int
	for {
		wd, err := win.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if wd.Index < skip {
			continue
		}
		d := trace.WindowDirtyStats(wd)
		if d.BytesWritten == 0 {
			continue
		}
		amp4K += d.Amplification4K()
		amp2M += d.Amplification2M()
		ampCL += d.AmplificationCL()
		n++
	}
	if n == 0 {
		t.Fatalf("%s: no windows with writes", w.Name)
	}
	return amp4K / float64(n), amp2M / float64(n), ampCL / float64(n)
}

// within reports whether got is within a multiplicative band of want.
func within(got, want, factor float64) bool {
	return got >= want/factor && got <= want*factor
}

func TestAllWorkloadsRegistered(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("expected 9 workloads, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Footprint == 0 || w.Windows == 0 || w.tracking == nil || w.cache == nil {
			t.Errorf("%s: incomplete definition", w.Name)
		}
		got, ok := ByName(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("ByName(%q) failed", w.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Errorf("ByName of unknown workload succeeded")
	}
}

func TestTrackingStreamsDeterministic(t *testing.T) {
	w := RedisRand()
	a1, err := trace.Collect(w.TrackingStream(7), 5000)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := trace.Collect(w.TrackingStream(7), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestStreamsStayInFootprint(t *testing.T) {
	for _, w := range All() {
		accs, err := trace.Collect(w.TrackingStream(3), 20000)
		if err != nil {
			t.Fatal(err)
		}
		if len(accs) == 0 {
			t.Errorf("%s: empty tracking stream", w.Name)
			continue
		}
		prev := accs[0].Time
		for _, a := range accs {
			if uint64(a.Range().End()) > w.Footprint {
				t.Errorf("%s: access %v escapes footprint %d", w.Name, a, w.Footprint)
				break
			}
			if a.Time < prev {
				t.Errorf("%s: timestamps go backwards", w.Name)
				break
			}
			prev = a.Time
		}
		caccs, err := trace.Collect(w.CacheStream(3, 5000), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(caccs) != 5000 {
			t.Errorf("%s: cache stream returned %d accesses, want 5000", w.Name, len(caccs))
		}
		for _, a := range caccs {
			if uint64(a.Range().End()) > w.Footprint {
				t.Errorf("%s: cache access %v escapes footprint", w.Name, a)
				break
			}
		}
	}
}

// TestTable2Calibration verifies the headline reproduction property: each
// workload's generated amplification matches its Table 2 row within a
// tolerance band, and the qualitative orderings the paper calls out hold.
func TestTable2Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	type row struct{ amp4K, amp2M, ampCL float64 }
	got := map[string]row{}
	for _, w := range All() {
		skip := 0
		if w.Name == "Redis-Rand" {
			skip = 10 // startup/population windows (§6.3)
		}
		a4, a2, acl := measure(t, w, skip)
		got[w.Name] = row{a4, a2, acl}
		t.Logf("%-22s 4KB %6.2f (paper %6.2f)  2MB %8.1f (paper %8.1f)  CL %4.2f (paper %4.2f)",
			w.Name, a4, w.PaperAmp4K, a2, w.PaperAmp2M, acl, w.PaperAmpCL)
		if w.PaperAmp4K > 0 && !within(a4, w.PaperAmp4K, 1.8) {
			t.Errorf("%s: amp4K = %.2f, paper %.2f (band 1.8x)", w.Name, a4, w.PaperAmp4K)
		}
		if w.PaperAmp2M > 0 && !within(a2, w.PaperAmp2M, 2.5) {
			t.Errorf("%s: amp2M = %.1f, paper %.1f (band 2.5x)", w.Name, a2, w.PaperAmp2M)
		}
		if w.PaperAmpCL > 0 && !within(acl, w.PaperAmpCL, 1.4) {
			t.Errorf("%s: ampCL = %.2f, paper %.2f (band 1.4x)", w.Name, acl, w.PaperAmpCL)
		}
		// Universal shape claims (§2.1): all apps amplify >2X at page
		// granularity; cache-line amplification is close to 1.
		if a4 <= 2 {
			t.Errorf("%s: amp4K = %.2f, paper claims >2 for all apps", w.Name, a4)
		}
		if acl >= 2.1 {
			t.Errorf("%s: ampCL = %.2f, should be near 1", w.Name, acl)
		}
		if a2 <= a4 {
			t.Errorf("%s: amp2M (%.1f) should exceed amp4K (%.2f)", w.Name, a2, a4)
		}
	}
	// Redis-Rand is the extreme high case, Redis-Seq the low case.
	if got["Redis-Rand"].amp4K <= got["Redis-Seq"].amp4K {
		t.Errorf("Redis-Rand must amplify more than Redis-Seq")
	}
	for name, r := range got {
		if name == "Redis-Rand" {
			continue
		}
		if r.amp4K >= got["Redis-Rand"].amp4K {
			t.Errorf("%s amp4K %.2f exceeds Redis-Rand's %.2f", name, r.amp4K, got["Redis-Rand"].amp4K)
		}
	}
}

// TestRedisSpatialLocality checks the Fig 2 property: Redis-Rand pages are
// skewed toward few accessed lines, Redis-Seq toward fully-accessed pages.
func TestRedisSpatialLocality(t *testing.T) {
	profileFraction := func(w *Workload, skip int) (few, full float64) {
		win := trace.NewWindower(w.TrackingStream(11), WindowLen)
		var fewN, fullN, total int
		for {
			wd, err := win.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if wd.Index < skip {
				continue
			}
			p := trace.NewPageAccessProfile()
			for _, a := range wd.Accesses {
				p.Add(a)
			}
			for _, bm := range p.Writes {
				total++
				switch c := bm.Count(); {
				case c <= 8:
					fewN++
				case c == 64:
					fullN++
				}
			}
		}
		if total == 0 {
			t.Fatal("no pages profiled")
		}
		return float64(fewN) / float64(total), float64(fullN) / float64(total)
	}
	fewRand, _ := profileFraction(RedisRand(), 10)
	fewSeq, fullSeq := profileFraction(RedisSeq(), 0)
	if fewRand < 0.5 {
		t.Errorf("Redis-Rand: only %.2f of pages have <=8 accessed lines; Fig 2 shows a strong skew", fewRand)
	}
	if fullSeq < 0.3 {
		t.Errorf("Redis-Seq: only %.2f of pages fully written; Fig 2 shows a large full-page fraction", fullSeq)
	}
	if fewSeq > fewRand {
		t.Errorf("Redis-Seq (%.2f) must have fewer sparse pages than Redis-Rand (%.2f)", fewSeq, fewRand)
	}
}

func TestProbRound(t *testing.T) {
	w := RedisRand()
	_ = w
	rng := newTestRand()
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		v := probRound(rng, 2.3)
		if v != 2 && v != 3 {
			t.Fatalf("probRound(2.3) = %d", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 2.25 || mean > 2.35 {
		t.Errorf("probRound mean = %.3f, want ~2.3", mean)
	}
}

func TestClusteredWindowGeometry(t *testing.T) {
	// For PageRank parameters, per-window dirty geometry must match the
	// derived targets: ~21.5 lines/page, ~27.8 pages per 2MB region.
	w := PageRank()
	win := trace.NewWindower(w.TrackingStream(5), WindowLen)
	wd, err := win.Next()
	if err != nil {
		t.Fatal(err)
	}
	d := trace.WindowDirtyStats(wd)
	linesPerPage := float64(d.DirtyLines) / float64(d.DirtyPages4K)
	pagesPer2M := float64(d.DirtyPages4K) / float64(d.DirtyPages2M)
	if linesPerPage < 17 || linesPerPage > 26 {
		t.Errorf("lines/page = %.1f, want ~21.5", linesPerPage)
	}
	if pagesPer2M < 22 || pagesPer2M > 34 {
		t.Errorf("pages/2M = %.1f, want ~27.8", pagesPer2M)
	}
	// No write may straddle a cache line (engine writes within lines).
	for _, a := range wd.Accesses {
		if a.Kind != trace.Write {
			continue
		}
		if a.Addr.Line() != (a.Range().End() - 1).Line() {
			t.Fatalf("clustered write %v straddles lines", a)
		}
	}
}

// TestAlgorithmicAmplification cross-checks the calibrated generators with
// a fully algorithmic workload: a real vertex-centric PageRank whose dirty
// set is emergent, not fitted. Its amplification must land in the same
// regime the paper measures for graph analytics (2-10x at 4KB, <2 at CL).
func TestAlgorithmicAmplification(t *testing.T) {
	w := PageRankAlgo()
	a4, a2, acl := measure(t, w, 0)
	t.Logf("PageRank-Algo (emergent): 4KB %.2f  2MB %.1f  CL %.2f", a4, a2, acl)
	if a4 < 2 || a4 > 40 {
		t.Errorf("emergent amp4K = %.2f, outside the plausible graph-analytics regime", a4)
	}
	if acl >= 4 {
		t.Errorf("emergent ampCL = %.2f, should stay small", acl)
	}
	if a2 <= a4 {
		t.Errorf("emergent amp2M (%.1f) should exceed amp4K (%.2f)", a2, a4)
	}
	// The paper's core claim, emergent: cache-line tracking beats page
	// tracking by a wide margin.
	if a4/acl < 2 {
		t.Errorf("emergent 4KB/CL ratio = %.2f, want >= 2", a4/acl)
	}
	// The footprint must contain every access.
	accs, err := trace.Collect(w.TrackingStream(1), 50000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if uint64(a.Range().End()) > w.Footprint {
			t.Fatalf("access %v escapes footprint", a)
		}
	}
}
