package workload

import (
	"math/rand"

	"kona/internal/mem"
	"kona/internal/trace"
)

// Redis generators.
//
// The paper drives Redis with memtier over a pre-populated keyspace, so the
// dominant write is an in-place value overwrite; dictionary metadata writes
// are comparatively rare. We model the heap as the footprint region, values
// as ~128-byte objects at arbitrary (allocator-determined, hence unaligned)
// offsets, and a small side region of dictionary metadata.
//
// Redis-Rand calibration (Table 2 row 1: 31.36 / 5516 / 1.48 on 4GB):
//
//   - a 128B overwrite at a random unaligned offset touches E[lines] =
//     3 - 1/64 ≈ 2.98 lines, so ampCL ≈ 2.98·64/128 ≈ 1.49 (paper: 1.48);
//   - with few writes per page per window, amp4K ≈ 4096/128 ≈ 32
//     (paper: 31.36);
//   - amp2M is set by writes per 2MB region per window: with W/R ≈ 2.7
//     random writes per region, distinct regions ≈ R(1-e^-2.7) = 0.93R and
//     amp2M ≈ 0.93R·2MB/(130·2.7R) ≈ 5.5k (paper: 5516). We therefore emit
//     2.7 writes per 2MB region per window.
//
// Redis-Seq calibration (row 2: 2.76 / 54.76 / 1.08 on 0.13GB): memtier
// cycles keys in order, so values are written sequentially, filling pages;
// scattered dictionary updates contribute most of the page-granularity
// amplification. Roughly 80 extra metadata pages per ~50 sequentially
// filled pages yields amp4K ≈ 2.6 with ampCL ≈ 1.03.

const (
	redisValueMean   = 128
	redisValueJit    = 64 // value sizes in [96, 160)
	redisWritesPer2M = 2.7
)

// RedisRand is the Redis uniform-random workload (Table 2 "Redis-Rand").
func RedisRand() *Workload {
	w := &Workload{
		Name:             "Redis-Rand",
		Footprint:        64 * mb, // scaled from 4GB
		PaperFootprintGB: 4,
		Windows:          140, // matches Fig 9's x-axis extent
		WriteBandwidth:   5 * mb,
		PaperAmp4K:       31.36,
		PaperAmp2M:       5516.37,
		PaperAmpCL:       1.48,
	}
	w.tracking = redisRandWindow
	w.cache = redisCacheStream
	return w
}

// RedisSeq is the Redis sequential workload (Table 2 "Redis-Seq").
func RedisSeq() *Workload {
	w := &Workload{
		Name:             "Redis-Seq",
		Footprint:        8 * mb, // scaled from 0.13GB
		PaperFootprintGB: 0.13,
		Windows:          40, // Seq finishes faster than Rand (§6.3)
		WriteBandwidth:   5 * mb,
		PaperAmp4K:       2.76,
		PaperAmp2M:       54.76,
		PaperAmpCL:       1.08,
	}
	w.tracking = redisSeqWindow
	w.cache = redisSeqCacheStream
	return w
}

// redisValueSize draws a value size around the 128B mean.
func redisValueSize(rng *rand.Rand) uint32 {
	return uint32(redisValueMean - redisValueJit/2 + rng.Intn(redisValueJit))
}

// redisRandWindow emits one window of uniform-random GET/SET traffic.
func redisRandWindow(rng *rand.Rand, w *Workload, window int) []trace.Access {
	regions := int(w.Footprint / mem.HugePageSize)
	writes := int(redisWritesPer2M * float64(regions))
	// The first ~10 windows are server startup/initialization (§6.3):
	// bulk sequential population with low amplification.
	if window < 10 {
		return stampWindow(redisPopulate(rng, w, window, 10), window)
	}
	var accs []trace.Access
	for i := 0; i < writes; i++ {
		// 1:1 GET/SET mix: one random read per write.
		raddr := mem.Addr(rng.Int63n(int64(w.Footprint) - 256))
		accs = append(accs, trace.Access{Addr: raddr, Size: redisValueSize(rng), Kind: trace.Read})
		waddr := mem.Addr(rng.Int63n(int64(w.Footprint) - 256))
		accs = append(accs, trace.Access{Addr: waddr, Size: redisValueSize(rng), Kind: trace.Write})
		// Occasional full-page activity (dict rehash / iteration): gives
		// Fig 2 its bump at 64 accessed lines.
		if rng.Intn(50) == 0 {
			page := mem.PageBase(uint64(rng.Int63n(int64(w.Footprint / mem.PageSize))))
			accs = append(accs, trace.Access{Addr: page, Size: mem.PageSize, Kind: trace.Read})
		}
	}
	return stampWindow(accs, window)
}

// redisPopulate emits a slice of the bulk-load phase: sequential value
// writes covering footprint/phases bytes per window.
func redisPopulate(rng *rand.Rand, w *Workload, window, phases int) []trace.Access {
	var accs []trace.Access
	chunk := w.Footprint / uint64(phases)
	start := uint64(window) * chunk
	for off := start; off < start+chunk && off+256 < w.Footprint; {
		sz := redisValueSize(rng)
		accs = append(accs, trace.Access{Addr: mem.Addr(off), Size: sz, Kind: trace.Write})
		off += uint64(sz)
	}
	return accs
}

// redisSeqWindow emits one window of sequential overwrite traffic plus
// scattered dictionary-metadata writes.
func redisSeqWindow(rng *rand.Rand, w *Workload, window int) []trace.Access {
	// Sequential run: cover the footprint once over the run's windows.
	chunk := w.Footprint / uint64(w.Windows)
	start := uint64(window) * chunk % w.Footprint
	var accs []trace.Access
	for off := start; off < start+chunk && off+256 < w.Footprint; {
		sz := redisValueSize(rng)
		accs = append(accs, trace.Access{Addr: mem.Addr(off), Size: sz, Kind: trace.Write})
		// Sequential reads accompany the writes (verification reads).
		accs = append(accs, trace.Access{Addr: mem.Addr(off), Size: sz, Kind: trace.Read})
		off += uint64(sz)
		// Scattered dictionary update: ~80 distinct metadata pages per
		// window against ~50 sequential pages (see calibration note).
	}
	metaWrites := 90
	for i := 0; i < metaWrites; i++ {
		addr := mem.Addr(rng.Int63n(int64(w.Footprint) - 64))
		accs = append(accs, trace.Access{Addr: addr, Size: 16, Kind: trace.Write})
	}
	return stampWindow(accs, window)
}

// redisCacheStream models the memtier uniform-random workload for AMAT
// simulation: key accesses land uniformly over the value heap (so the
// DRAM-cache miss ratio tracks the cache-to-footprint ratio, Fig 8a's
// steep curve), with a spatial-locality component — a fraction of ops
// continue near the previous access (dict entry next to value, adjacent
// allocations) — which is what makes ~1KB fetch blocks profitable in
// Fig 8d.
func redisCacheStream(rng *rand.Rand, w *Workload, n int) []trace.Access {
	accs := make([]trace.Access, 0, n)
	limit := int64(w.Footprint - 2048)
	prev := mem.Addr(0)
	for i := 0; i < n; i++ {
		var addr mem.Addr
		switch {
		case i > 0 && rng.Intn(100) < 10:
			// Neighbor access: within the same ~1KB allocation cluster
			// (dict entry beside its value).
			addr = prev + mem.Addr(128+rng.Intn(512))
			if int64(addr) >= limit {
				addr = mem.Addr(rng.Int63n(limit))
			}
		case rng.Intn(100) < 2:
			// Hot dictionary metadata: small L3-resident region.
			addr = mem.Addr(rng.Int63n(64 << 10))
		default:
			addr = mem.Addr(rng.Int63n(limit))
		}
		addr = addr.AlignDown(mem.CacheLineSize) // objects are line-aligned
		kind := trace.Read
		if rng.Intn(2) == 0 {
			kind = trace.Write
		}
		accs = append(accs, trace.Access{Addr: addr, Size: 64, Kind: kind})
		prev = addr
	}
	return accs
}

// redisSeqCacheStream is a cyclic sequential sweep: perfect spatial
// locality, reuse distance equal to the footprint.
func redisSeqCacheStream(rng *rand.Rand, w *Workload, n int) []trace.Access {
	accs := make([]trace.Access, 0, n)
	var off uint64
	for i := 0; i < n; i++ {
		accs = append(accs, trace.Access{Addr: mem.Addr(off), Size: 128, Kind: trace.Write})
		off = (off + 128) % (w.Footprint - 256)
	}
	return accs
}
