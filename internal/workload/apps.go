package workload

import (
	"math/rand"

	"kona/internal/trace"
)

// The seven non-Redis Table 2 workloads. Each uses the calibrated
// clustered-write engine (see clusterParams) with parameters derived from
// its Table 2 row, plus a cache stream reflecting the workload's temporal
// locality class for the Fig 8 AMAT study.

// clusteredWorkload assembles a Workload around the clustered engine.
func clusteredWorkload(name string, footprint uint64, paperGB float64, windows int,
	writeBW uint64, amp4K, amp2M, ampCL, regionsFraction float64,
	cache func(*rand.Rand, *Workload, int) []trace.Access) *Workload {
	p := paramsFromTable2(amp4K, ampCL, amp2M, regionsFraction)
	w := &Workload{
		Name:             name,
		Footprint:        footprint,
		PaperFootprintGB: paperGB,
		Windows:          windows,
		WriteBandwidth:   writeBW,
		PaperAmp4K:       amp4K,
		PaperAmp2M:       amp2M,
		PaperAmpCL:       ampCL,
	}
	w.tracking = func(rng *rand.Rand, w *Workload, window int) []trace.Access {
		return clusteredWindow(rng, w, p, window)
	}
	w.cache = cache
	return w
}

// LinearRegression is the Metis linear-regression job (Table 2 row 3,
// 40GB): a streaming scan over the input matrix with partial-page result
// writes. Scaled footprint 128MB; writes stream at a high rate.
func LinearRegression() *Workload {
	return clusteredWorkload("Linear Regression", 128*mb, 40, 60,
		30*mb, // streaming writers move a lot of bytes natively
		2.31, 244.14, 1.22, 0.6, streamingCacheStream)
}

// Histogram is the Metis histogram job (Table 2 row 4, 40GB): streaming
// input, dense bucket increments confined to a small output region.
func Histogram() *Workload {
	w := clusteredWorkload("Histogram", 128*mb, 40, 60,
		1*mb, // increments hit few distinct pages natively
		3.61, 1050.73, 1.84, 0.25, streamingCacheStream)
	return w
}

// PageRank is the GraphLab PageRank kernel (Table 2 row 5, 4.2GB).
func PageRank() *Workload {
	return clusteredWorkload("Page Rank", 64*mb, 4.2, 60,
		8*mb,
		4.38, 80.71, 1.47, 0.75, clusteredCacheStream)
}

// GraphColoring is the GraphLab graph-coloring kernel (row 6, 8.2GB).
func GraphColoring() *Workload {
	return clusteredWorkload("Graph Coloring", 128*mb, 8.2, 60,
		8*mb,
		5.57, 90.37, 1.57, 0.75, clusteredCacheStream)
}

// ConnectedComponents is the GraphLab connected-components kernel (row 7,
// 5.2GB).
func ConnectedComponents() *Workload {
	return clusteredWorkload("Connected Components", 96*mb, 5.2, 60,
		8*mb,
		5.67, 82.35, 1.62, 0.75, clusteredCacheStream)
}

// LabelPropagation is the GraphLab label-propagation kernel (row 8, 5.6GB).
func LabelPropagation() *Workload {
	return clusteredWorkload("Label Propagation", 96*mb, 5.6, 60,
		8*mb,
		8.14, 95.00, 1.85, 0.75, clusteredCacheStream)
}

// VoltDB is the VoltDB TPC-C workload (row 9, 11.5GB): row updates of
// ~200B with moderate clustering (rows co-located per table page).
func VoltDB() *Workload {
	return clusteredWorkload("VoltDB", 128*mb, 11.5, 60,
		10*mb,
		3.74, 79.55, 1.17, 0.6, redisCacheStream)
}
