package workload

import (
	"math/rand"

	"kona/internal/mem"
	"kona/internal/trace"
)

// clusterParams drive the calibrated clustered-write engine used for the
// GraphLab, Metis and VoltDB workloads. The paper measured these
// applications with Pin; we reproduce their per-window dirty-set geometry
// from Table 2's three amplification columns, which pin down exactly three
// degrees of freedom per workload:
//
//	bytesPerDirtyPage = 4096 / amp4K
//	linesPerDirtyPage = 64 · ampCL / amp4K
//	pagesPer2MRegion  = 512 · amp4K / amp2M
//
// (bytesPerDirtyLine = 64/ampCL follows from the first two.) Per window,
// the engine dirties `regionsPerWindow` distinct 2MB regions; within each,
// `pagesPer2M` distinct 4KB pages; within each page, `linesPerPage` cache
// lines grouped into short contiguous segments (Fig 3: most segments are
// 1-4 lines), each line receiving a partial write of `bytesPerLine` bytes.
type clusterParams struct {
	// linesPerPage is the number of dirty cache lines per dirty page.
	linesPerPage float64
	// bytesPerLine is the number of bytes written in each dirty line.
	bytesPerLine int
	// pagesPer2M is the number of dirty 4KB pages per dirty 2MB region.
	pagesPer2M float64
	// regionsFraction is the fraction of the footprint's 2MB regions
	// dirtied per window (sets per-window volume; amplification ratios are
	// independent of it).
	regionsFraction float64
	// readFactor emits this many reads per write for realism (reads do not
	// affect amplification but feed Fig 2-style profiles and KTracker).
	readFactor int
	// scanPages adds this many full-page sequential reads per window
	// (streaming input for the Metis kernels).
	scanPages int
}

// paramsFromTable2 derives engine parameters from a Table 2 row.
func paramsFromTable2(amp4K, ampCL, amp2M, regionsFraction float64) clusterParams {
	return clusterParams{
		linesPerPage:    64 * ampCL / amp4K,
		bytesPerLine:    int(64 / ampCL),
		pagesPer2M:      512 * amp4K / amp2M,
		regionsFraction: regionsFraction,
		readFactor:      2,
	}
}

// segmentLengths (Fig 3): most accessed segments are 1-4 contiguous lines.
var segmentLengths = []int{1, 1, 1, 2, 2, 3, 4}

// clusteredWindow emits one window of calibrated clustered writes.
func clusteredWindow(rng *rand.Rand, w *Workload, p clusterParams, window int) []trace.Access {
	totalRegions := int(w.Footprint / mem.HugePageSize)
	nRegions := int(p.regionsFraction * float64(totalRegions))
	if nRegions < 1 {
		nRegions = 1
	}
	regions := rng.Perm(totalRegions)[:nRegions]
	var accs []trace.Access
	for _, reg := range regions {
		regBase := mem.Addr(reg) * mem.HugePageSize
		nPages := probRound(rng, p.pagesPer2M)
		if nPages < 1 {
			nPages = 1
		}
		if nPages > 512 {
			nPages = 512
		}
		pages := rng.Perm(512)[:nPages]
		for _, pg := range pages {
			pageBase := regBase + mem.Addr(pg)*mem.PageSize
			emitPageWrites(rng, &accs, pageBase, p)
		}
	}
	// Reads: re-read a sample of the written locations plus neighbors.
	nReads := len(accs) * p.readFactor
	writes := len(accs)
	for i := 0; i < nReads; i++ {
		src := accs[rng.Intn(writes)]
		accs = append(accs, trace.Access{Addr: src.Addr, Size: src.Size, Kind: trace.Read})
	}
	// Streaming scans (sequential full-page reads).
	for i := 0; i < p.scanPages; i++ {
		pg := (uint64(window*p.scanPages+i) * mem.PageSize) % w.Footprint
		accs = append(accs, trace.Access{Addr: mem.Addr(pg), Size: mem.PageSize, Kind: trace.Read})
	}
	return stampWindow(accs, window)
}

// emitPageWrites dirties ~p.linesPerPage lines of the page in short
// contiguous segments, writing p.bytesPerLine bytes into each line.
func emitPageWrites(rng *rand.Rand, accs *[]trace.Access, pageBase mem.Addr, p clusterParams) {
	target := probRound(rng, p.linesPerPage)
	if target < 1 {
		target = 1
	}
	if target > 64 {
		target = 64
	}
	used := 0
	var occupied mem.LineBitmap
	for used < target {
		segLen := segmentLengths[rng.Intn(len(segmentLengths))]
		if segLen > target-used {
			segLen = target - used
		}
		// Find a free starting line for the segment.
		start := rng.Intn(64 - segLen + 1)
		ok := true
		for i := 0; i < segLen; i++ {
			if occupied.Get(start + i) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < segLen; i++ {
			occupied.Set(start + i)
			lineAddr := pageBase + mem.Addr((start+i)*mem.CacheLineSize)
			*accs = append(*accs, trace.Access{
				Addr: lineAddr,
				Size: uint32(p.bytesPerLine),
				Kind: trace.Write,
			})
		}
		used += segLen
	}
}

// probRound rounds x to an integer, using the fractional part as a
// probability, so expectations are preserved.
func probRound(rng *rand.Rand, x float64) int {
	n := int(x)
	if rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

// clusteredCacheStream produces the Fig 8 access stream for graph-style
// workloads: a sequential edge-array sweep mixed with neighbor-state
// lookups. Lookups are mostly uniform over the vertex array (graph
// partitioning gives limited reuse) with a zipf-hot component for
// high-degree vertices — together the curve sits between Redis-Rand's
// steep decline and Linear Regression's flat line (Fig 8c).
func clusteredCacheStream(rng *rand.Rand, w *Workload, n int) []trace.Access {
	hot := rand.NewZipf(rng, 1.3, 16, (512<<10)/64-1)
	accs := make([]trace.Access, 0, n)
	limit := int64(w.Footprint - 64)
	var sweep uint64
	for i := 0; i < n; i++ {
		switch {
		case i%4 == 0:
			// Sequential component: the edge array sweep.
			accs = append(accs, trace.Access{Addr: mem.Addr(sweep), Size: 64, Kind: trace.Read})
			sweep = (sweep + 64) % uint64(limit)
		case rng.Intn(100) < 20:
			// High-degree (hot) vertex state.
			accs = append(accs, trace.Access{Addr: mem.Addr(hot.Uint64() * 64), Size: 8, Kind: trace.Read})
		default:
			kind := trace.Read
			if rng.Intn(4) == 0 {
				kind = trace.Write
			}
			accs = append(accs, trace.Access{Addr: mem.Addr(rng.Int63n(limit)), Size: 8, Kind: kind})
		}
	}
	return accs
}

// streamingCacheStream is the Fig 8 stream for the Metis kernels: an
// almost pure sequential scan with no reuse, so the local cache size has
// little effect on AMAT (the paper's Linear Regression curve is flat).
func streamingCacheStream(rng *rand.Rand, w *Workload, n int) []trace.Access {
	accs := make([]trace.Access, 0, n)
	var off uint64
	for i := 0; i < n; i++ {
		kind := trace.Read
		size := uint32(64)
		if i%64 == 63 {
			kind = trace.Write // accumulator update
			size = 8
		}
		accs = append(accs, trace.Access{Addr: mem.Addr(off), Size: size, Kind: kind})
		off = (off + 64) % (w.Footprint - 64)
	}
	return accs
}
