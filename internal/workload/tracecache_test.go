package workload

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"kona/internal/trace"
)

// drain pulls every record out of a CacheStream.
func drain(t *testing.T, w *Workload, seed int64, n int) []trace.Access {
	t.Helper()
	accs, err := trace.Collect(w.CacheStream(seed, n), 0)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func TestTraceCacheDeterministic(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	w := RedisRand()
	// Cached result must equal a direct generation with the same seed.
	want := w.cache(rand.New(rand.NewSource(7)), w, 5000)
	got := drain(t, w, 7, 5000)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached stream diverges from direct generation")
	}
	// A second, separately constructed Workload with the same name hits.
	got2 := drain(t, RedisRand(), 7, 5000)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("second request diverges")
	}
	if hits, misses := TraceCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestTraceCacheKeySeparation(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	base := drain(t, RedisRand(), 1, 2000)
	for name, other := range map[string][]trace.Access{
		"different seed":     drain(t, RedisRand(), 2, 2000),
		"different workload": drain(t, GraphColoring(), 1, 2000),
	} {
		if reflect.DeepEqual(base, other) {
			t.Errorf("%s returned the same trace", name)
		}
	}
	// A longer request of the same (workload, seed) is a distinct key —
	// the cache never truncates or extends an existing entry.
	if got := drain(t, RedisRand(), 1, 3000); len(got) != 3000 {
		t.Errorf("longer request returned %d accesses", len(got))
	}
	if _, misses := TraceCacheStats(); misses != 4 {
		t.Errorf("misses = %d, want 4 distinct generations", misses)
	}
}

// TestTraceCacheSingleFlight hammers one key from many goroutines and
// requires exactly one generation and one shared backing array.
func TestTraceCacheSingleFlight(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	w := RedisRand()
	const goroutines = 32
	results := make([][]trace.Access, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sharedTraces.get(RedisRand(), 42, 4000)
		}(i)
	}
	wg.Wait()
	_ = w
	for i := 1; i < goroutines; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("goroutine %d got a different backing array", i)
		}
	}
	if hits, misses := TraceCacheStats(); misses != 1 || hits != goroutines-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", hits, misses, goroutines-1)
	}
}

// TestTraceCacheEviction forces the budget and checks LRU entries fall
// out while the newest survives.
func TestTraceCacheEviction(t *testing.T) {
	tc := &traceCache{entries: map[traceKey]*traceEntry{}, budget: 10000}
	ws := []*Workload{RedisRand(), RedisSeq(), GraphColoring()}
	for _, w := range ws {
		tc.get(w, 1, 4000) // 3 x 4000 > 10000 after the third insert
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.total > tc.budget {
		t.Errorf("total %d exceeds budget %d", tc.total, tc.budget)
	}
	if _, ok := tc.entries[traceKey{name: "Graph Coloring", seed: 1, n: 4000}]; !ok {
		t.Errorf("most recent entry was evicted")
	}
	if _, ok := tc.entries[traceKey{name: "Redis-Rand", seed: 1, n: 4000}]; ok {
		t.Errorf("least recently used entry survived over budget")
	}
}
