package workload

import (
	"math/rand"
	"sync"

	"kona/internal/trace"
)

// The trace cache.
//
// Five experiment drivers replay the same Redis-Rand/Seq cache streams,
// and a single Fig 8 sweep replays one workload's stream once per (system,
// cache-size) point — 19 regenerations of an identical 400k-access trace
// in the serial code. Generation is deterministic in (workload, seed,
// length), so the cache keys on exactly that triple and hands every
// caller the same immutable slice.
//
// Generation is single-flight: the first caller of a key generates while
// holding only the entry (not the cache lock), and concurrent callers of
// the same key block on the entry's ready channel — important once sweep
// points run in parallel, where all points of a sweep ask for the same
// trace in the same instant.
//
// The cache is bounded by total retained accesses (~24 bytes each);
// complete least-recently-used entries are evicted once the budget is
// exceeded. In-flight entries are never evicted, and eviction only
// unlinks the map entry — callers already holding the slice keep it.

// traceKey identifies one deterministic generation.
type traceKey struct {
	name string
	seed int64
	n    int
}

// traceEntry is one cached (or in-flight) generation.
type traceEntry struct {
	// ready is closed once accs is populated.
	ready chan struct{}
	accs  []trace.Access
	// done marks the entry complete (set under the cache lock; evictable).
	done bool
	// lastUse orders entries for eviction.
	lastUse uint64
}

// traceCacheBudget bounds retained accesses across entries: 16M records
// ≈ 384MB, comfortably above one full-scale artifact regeneration's
// working set (10 workloads × 400k accesses) while still bounding a
// long-lived process that sweeps many seeds.
const traceCacheBudget = 16 << 20

// traceCache is the process-wide cache of generated cache streams.
type traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	clock   uint64
	total   int // retained accesses across complete entries
	budget  int
	hits    uint64
	misses  uint64
}

var sharedTraces = &traceCache{
	entries: map[traceKey]*traceEntry{},
	budget:  traceCacheBudget,
}

// get returns the cached accesses for (w, seed, n), generating them
// exactly once per key under concurrency.
func (tc *traceCache) get(w *Workload, seed int64, n int) []trace.Access {
	key := traceKey{name: w.Name, seed: seed, n: n}
	tc.mu.Lock()
	tc.clock++
	if e, ok := tc.entries[key]; ok {
		e.lastUse = tc.clock
		tc.hits++
		tc.mu.Unlock()
		<-e.ready
		return e.accs
	}
	e := &traceEntry{ready: make(chan struct{}), lastUse: tc.clock}
	tc.entries[key] = e
	tc.misses++
	tc.mu.Unlock()

	e.accs = w.cache(rand.New(rand.NewSource(seed)), w, n)
	close(e.ready)

	tc.mu.Lock()
	e.done = true
	tc.total += len(e.accs)
	tc.evictLocked(key)
	tc.mu.Unlock()
	return e.accs
}

// evictLocked drops complete least-recently-used entries until the budget
// holds, sparing the just-inserted key and anything still generating.
func (tc *traceCache) evictLocked(keep traceKey) {
	for tc.total > tc.budget {
		var victimKey traceKey
		var victim *traceEntry
		for k, e := range tc.entries {
			if !e.done || k == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		tc.total -= len(victim.accs)
		delete(tc.entries, victimKey)
	}
}

// stats returns hit/miss counters (test hook).
func (tc *traceCache) statsLocked() (hits, misses uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.hits, tc.misses
}

// reset clears entries and counters (test hook).
func (tc *traceCache) reset() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.entries = map[traceKey]*traceEntry{}
	tc.clock, tc.total = 0, 0
	tc.hits, tc.misses = 0, 0
}

// TraceCacheStats reports how many CacheStream requests were served from
// the shared trace cache vs generated.
func TraceCacheStats() (hits, misses uint64) { return sharedTraces.statsLocked() }

// ResetTraceCache empties the shared trace cache and its counters. Useful
// for benchmarks that want to measure cold-cache behavior.
func ResetTraceCache() { sharedTraces.reset() }
