// Package workload provides synthetic generators reproducing the memory
// access patterns of the applications the paper measures with Intel Pin
// (§2.1-2.2): Redis under random and sequential memtier workloads, four
// GraphLab analytics kernels, two Metis map-reduce jobs, and a VoltDB
// TPC-C-style workload.
//
// We cannot run the real binaries under Pin, so each generator is
// calibrated to the published per-window dirty-set statistics (Table 2) and
// cache-line access distributions (Figs. 2-3): value sizes, write
// clustering, sequentiality and footprint ratios are chosen so that the
// derived quantities — dirty lines per dirty page, bytes per dirty line,
// dirty 4KB pages per dirty 2MB region — match the paper's measurements.
// The derivations appear as comments on each parameter set.
//
// Footprints are scaled from GBs to MBs (documented per workload); all
// tracking statistics are ratios, which the scaling preserves as long as
// the per-window write count is scaled with the footprint.
package workload

import (
	"io"
	"math/rand"
	"time"

	"kona/internal/simclock"
	"kona/internal/trace"
)

// WindowLen is the virtual length of one tracking window. The paper uses
// 10s windows for Table 2 and 1s for KTracker; we use 1s uniformly and
// scale per-window work instead.
const WindowLen = time.Second

// Workload describes one named application workload.
type Workload struct {
	// Name is the paper's row label (e.g. "Redis-Rand").
	Name string
	// Footprint is the scaled resident set size in bytes.
	Footprint uint64
	// PaperFootprintGB is the unscaled footprint from Table 2.
	PaperFootprintGB float64
	// Windows is the number of 1s windows a full run generates.
	Windows int
	// WriteBandwidth estimates the application's native (uninstrumented)
	// write rate in bytes/s; Fig 10's write-protection overhead model
	// scales with it. Estimated from the workload class (documented in
	// EXPERIMENTS.md), not from the paper.
	WriteBandwidth uint64

	// PaperAmp4K/PaperAmp2M/PaperAmpCL are Table 2's published
	// amplification figures, kept for report side-by-sides.
	PaperAmp4K, PaperAmp2M, PaperAmpCL float64

	// tracking builds the per-window access list for dirty-tracking
	// experiments (Table 2, Figs 2/3/9/10).
	tracking func(rng *rand.Rand, w *Workload, window int) []trace.Access
	// cache builds the access stream for cache/AMAT simulation (Fig 8):
	// a flat stream with workload-appropriate temporal locality.
	cache func(rng *rand.Rand, w *Workload, n int) []trace.Access
}

// TrackingStream returns the windowed access stream used by the
// dirty-tracking experiments. The stream is deterministic for a given seed.
func (w *Workload) TrackingStream(seed int64) trace.Stream {
	return &windowedStream{
		w:   w,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// CacheStream returns n accesses with the workload's temporal-locality
// profile, for cache-hierarchy simulation. Deterministic for a given seed.
// The stream is backed by the shared trace cache: workloads with the same
// name, seed and length share one immutable generated slice (generation is
// single-flight under concurrency), so the five drivers replaying the same
// Redis traces — and the parallel sweep points inside one driver — pay the
// generation cost once. Callers must treat the stream's records as
// read-only.
func (w *Workload) CacheStream(seed int64, n int) trace.Stream {
	return trace.NewSliceStream(sharedTraces.get(w, seed, n))
}

// windowedStream lazily generates one window of accesses at a time.
type windowedStream struct {
	w      *Workload
	rng    *rand.Rand
	window int
	buf    []trace.Access
	pos    int
}

// Next implements trace.Stream.
func (s *windowedStream) Next() (trace.Access, error) {
	for s.pos >= len(s.buf) {
		if s.window >= s.w.Windows {
			return trace.Access{}, io.EOF
		}
		s.buf = s.w.tracking(s.rng, s.w, s.window)
		s.pos = 0
		s.window++
	}
	a := s.buf[s.pos]
	s.pos++
	return a, nil
}

// stampWindow assigns virtual timestamps spreading accesses uniformly over
// window w, preserving order.
func stampWindow(accs []trace.Access, window int) []trace.Access {
	if len(accs) == 0 {
		return accs
	}
	start := simclock.Duration(window) * WindowLen
	step := WindowLen / simclock.Duration(len(accs)+1)
	for i := range accs {
		accs[i].Time = start + simclock.Duration(i+1)*step
	}
	return accs
}

// All returns the nine Table 2 workloads in the paper's row order.
func All() []*Workload {
	return []*Workload{
		RedisRand(), RedisSeq(),
		LinearRegression(), Histogram(),
		PageRank(), GraphColoring(), ConnectedComponents(), LabelPropagation(),
		VoltDB(),
	}
}

// Extras returns the extension workloads that are not Table 2 rows.
func Extras() []*Workload {
	return []*Workload{PageRankAlgo()}
}

// ByName looks a workload up by name, across Table 2 rows and extras.
func ByName(name string) (*Workload, bool) {
	for _, w := range append(All(), Extras()...) {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

const mb = 1 << 20
