package cachesim

import (
	"errors"
	"io"
	"strings"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
	"kona/internal/trace"
)

// Hierarchy is an inclusive-lookup cache hierarchy: an access probes each
// level in order until it hits; every missed level is filled. The final
// backing store (remote memory, for our experiments) has a fixed latency.
type Hierarchy struct {
	levels []*Cache
	// BackingLatency is paid when every level misses (e.g. the remote
	// fetch latency of the system under study).
	BackingLatency simclock.Duration
	// Metrics, when set, receives per-level hit/miss/eviction counters —
	// synced at batch boundaries (Run, and each AccessTrace call), never
	// inside the lookup loop, so the hot path is identical with or
	// without a registry (BenchmarkTelemetryOverheadCachesim).
	Metrics *telemetry.Registry
	// accesses counts memory operations (not level probes).
	accesses uint64
	// totalTime accumulates modeled access time for AMAT.
	totalTime simclock.Duration
}

// NewHierarchy builds a hierarchy from level configs, ordered from the
// innermost (L1) outward.
func NewHierarchy(backing simclock.Duration, cfgs ...Config) *Hierarchy {
	h := &Hierarchy{BackingLatency: backing}
	for _, cfg := range cfgs {
		h.levels = append(h.levels, New(cfg))
	}
	return h
}

// Levels exposes the constituent caches for stats collection.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		l.Reset()
	}
	h.accesses = 0
	h.totalTime = 0
}

// Access performs one memory operation and returns its modeled latency:
// the hit latency of the first level that hits, or the sum of the misses'
// traversal plus the backing latency. Missed levels are filled on the way.
func (h *Hierarchy) Access(addr mem.Addr, write bool) simclock.Duration {
	h.accesses++
	var t simclock.Duration
	for _, l := range h.levels {
		t += l.cfg.HitLatency
		if l.Access(addr, write) {
			h.totalTime += t
			return t
		}
	}
	t += h.BackingLatency
	h.totalTime += t
	return t
}

// AccessRange splits a multi-byte operation into block-grained accesses at
// the innermost level's block size, modeling an application-level operation
// that touches several cache lines.
func (h *Hierarchy) AccessRange(r mem.Range, write bool) simclock.Duration {
	if r.Len == 0 {
		return 0
	}
	bs := h.levels[0].cfg.BlockSize
	var t simclock.Duration
	for a := r.Start.AlignDown(bs); a < r.End(); a += mem.Addr(bs) {
		t += h.Access(a, write)
	}
	return t
}

// AccessTrace replays a batch of accesses. It is the bulk equivalent of
// calling AccessRange per record, minus the per-access interface dispatch
// of Stream.Next — the batch is walked as a plain slice, which keeps the
// simulator's hot loop free of dynamic calls and allocations.
func (h *Hierarchy) AccessTrace(accs []trace.Access) simclock.Duration {
	bs := h.levels[0].cfg.BlockSize
	var t simclock.Duration
	for i := range accs {
		a := &accs[i]
		if a.Size == 0 {
			continue
		}
		write := a.Kind == trace.Write
		end := a.Addr + mem.Addr(a.Size)
		for addr := a.Addr.AlignDown(bs); addr < end; addr += mem.Addr(bs) {
			t += h.Access(addr, write)
		}
	}
	h.Publish()
	return t
}

// Publish syncs every level's counters (plus the hierarchy's access
// count) into h.Metrics, keyed by lower-cased level name. No-op without
// a registry — one nil check per batch, zero per access.
func (h *Hierarchy) Publish() {
	if h.Metrics == nil {
		return
	}
	for _, l := range h.levels {
		l.Publish(h.Metrics, strings.ToLower(l.cfg.Name))
	}
	h.Metrics.Counter("cachesim.accesses").Store(h.accesses)
}

// Run consumes an entire access stream and returns the AMAT. In-memory
// streams (the workload generators' cached traces) take the batched
// AccessTrace path; other sources fall back to pulling records one at a
// time.
func (h *Hierarchy) Run(s trace.Stream) (simclock.Duration, error) {
	if ss, ok := s.(*trace.SliceStream); ok {
		h.AccessTrace(ss.Rest())
		return h.AMAT(), nil
	}
	for {
		a, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		h.AccessRange(a.Range(), a.Kind == trace.Write)
	}
	h.Publish()
	return h.AMAT(), nil
}

// AMAT returns the average access time over all operations so far.
func (h *Hierarchy) AMAT() simclock.Duration {
	if h.accesses == 0 {
		return 0
	}
	return h.totalTime / simclock.Duration(h.accesses)
}

// Accesses returns the number of memory operations simulated.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }
