package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/trace"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B blocks = 512B.
	return New(Config{Name: "T", Size: 512, BlockSize: 64, Assoc: 2, HitLatency: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0, false) {
		t.Fatalf("cold access hit")
	}
	if !c.Access(0, false) {
		t.Fatalf("second access missed")
	}
	if !c.Access(63, false) {
		t.Fatalf("same-block access missed")
	}
	if c.Access(64, false) {
		t.Fatalf("next block hit cold")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallCache()
	// Three blocks mapping to set 0: block numbers 0, 4, 8 (4 sets).
	a0, a4, a8 := mem.Addr(0), mem.Addr(4*64), mem.Addr(8*64)
	c.Access(a0, false)
	c.Access(a4, false)
	c.Access(a0, false) // a0 now MRU, a4 LRU
	c.Access(a8, false) // evicts a4
	if !c.Contains(a0) {
		t.Errorf("a0 evicted, expected a4")
	}
	if c.Contains(a4) {
		t.Errorf("a4 survived, expected eviction")
	}
	if !c.Contains(a8) {
		t.Errorf("a8 not filled")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := smallCache()
	a0, a4, a8 := mem.Addr(0), mem.Addr(4*64), mem.Addr(8*64)
	c.Access(a0, true) // dirty
	c.Access(a4, false)
	_, ev, dirty := c.AccessEvict(a8, false) // evicts a0 (LRU, dirty)
	if !ev || !dirty {
		t.Errorf("expected dirty eviction, got ev=%v dirty=%v", ev, dirty)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Write hit marks dirty.
	c.Reset()
	c.Access(a0, false)
	c.Access(a0, true)
	c.Access(a4, false)
	_, ev, dirty = c.AccessEvict(a8, false)
	if !ev || !dirty {
		t.Errorf("write-hit dirtiness lost: ev=%v dirty=%v", ev, dirty)
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 512, BlockSize: 63, Assoc: 2}, // non power-of-two block
		{Size: 512, BlockSize: 64, Assoc: 0}, // zero assoc
		{Size: 500, BlockSize: 64, Assoc: 2}, // size not multiple
		{Size: 0, BlockSize: 64, Assoc: 2},   // zero size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: occupancy never exceeds capacity and equals the number of
// distinct blocks touched when that number fits.
func TestOccupancyQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		distinct := map[uint64]struct{}{}
		for _, a := range addrs {
			addr := mem.Addr(a)
			c.Access(addr, false)
			distinct[uint64(addr)/64] = struct{}{}
		}
		occ := c.Occupancy()
		if occ > 8 { // capacity in blocks
			return false
		}
		if len(distinct) <= 2 && occ != len(distinct) {
			// With at most 2 distinct blocks nothing can be evicted
			// (assoc 2), so occupancy must be exact.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a direct-mapped cache of N blocks accessed with a cyclic
// working set of N+1 conflicting blocks always misses (LRU pathological
// case) while a working set of N always hits after warmup.
func TestLRUCyclic(t *testing.T) {
	c := New(Config{Name: "DM", Size: 4 * 64, BlockSize: 64, Assoc: 4, HitLatency: 1})
	// Fully associative with 4 ways: 4-block cycle hits after warmup.
	for round := 0; round < 3; round++ {
		for b := 0; b < 4; b++ {
			c.Access(mem.Addr(b*64), false)
		}
	}
	st := c.Stats()
	if st.Misses() != 4 {
		t.Errorf("4-block cycle: misses = %d, want 4 (cold only)", st.Misses())
	}
	// 5-block cycle with LRU: always misses.
	c.Reset()
	for round := 0; round < 3; round++ {
		for b := 0; b < 5; b++ {
			c.Access(mem.Addr(b*64), false)
		}
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Errorf("5-block cycle over 4-way LRU: hits = %d, want 0", st.Hits)
	}
}

func TestHierarchyAMAT(t *testing.T) {
	h := NewHierarchy(100*time.Nanosecond,
		Config{Name: "L1", Size: 128, BlockSize: 64, Assoc: 2, HitLatency: 1 * time.Nanosecond},
		Config{Name: "L2", Size: 512, BlockSize: 64, Assoc: 2, HitLatency: 4 * time.Nanosecond},
	)
	// First access: miss everywhere => 1+4+100 = 105ns.
	if got := h.Access(0, false); got != 105*time.Nanosecond {
		t.Errorf("cold access = %v, want 105ns", got)
	}
	// Now resident in L1: 1ns.
	if got := h.Access(0, false); got != 1*time.Nanosecond {
		t.Errorf("L1 hit = %v, want 1ns", got)
	}
	if got := h.AMAT(); got != 53*time.Nanosecond {
		t.Errorf("AMAT = %v, want 53ns", got)
	}
	if h.Accesses() != 2 {
		t.Errorf("accesses = %d", h.Accesses())
	}
}

func TestHierarchyL2HitAfterL1Evict(t *testing.T) {
	h := NewHierarchy(100*time.Nanosecond,
		// L1: 1 set x 1 way. L2: large enough to keep everything.
		Config{Name: "L1", Size: 64, BlockSize: 64, Assoc: 1, HitLatency: 1 * time.Nanosecond},
		Config{Name: "L2", Size: 4096, BlockSize: 64, Assoc: 4, HitLatency: 4 * time.Nanosecond},
	)
	h.Access(0, false)        // cold
	h.Access(64, false)       // evicts 0 from L1, fills L2
	got := h.Access(0, false) // L1 miss, L2 hit: 1+4 = 5ns
	if got != 5*time.Nanosecond {
		t.Errorf("L2 hit = %v, want 5ns", got)
	}
}

func TestAccessRangeSplitsBlocks(t *testing.T) {
	h := NewHierarchy(100*time.Nanosecond,
		Config{Name: "L1", Size: 4096, BlockSize: 64, Assoc: 4, HitLatency: 1 * time.Nanosecond},
	)
	// 128 bytes starting at offset 32 touches 3 blocks.
	h.AccessRange(mem.Range{Start: 32, Len: 128}, false)
	if h.Accesses() != 3 {
		t.Errorf("accesses = %d, want 3", h.Accesses())
	}
	if h.AccessRange(mem.Range{Start: 0, Len: 0}, false) != 0 {
		t.Errorf("empty range cost nonzero")
	}
}

func TestHierarchyRun(t *testing.T) {
	h := NewHierarchy(100*time.Nanosecond,
		Config{Name: "L1", Size: 4096, BlockSize: 64, Assoc: 4, HitLatency: 1 * time.Nanosecond},
	)
	s := trace.NewSliceStream([]trace.Access{
		{Addr: 0, Size: 64, Kind: trace.Read},
		{Addr: 0, Size: 64, Kind: trace.Write},
	})
	amat, err := h.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// 101 + 1 over 2 accesses = 51ns.
	if amat != 51*time.Nanosecond {
		t.Errorf("AMAT = %v, want 51ns", amat)
	}
}

// Streaming (no reuse) through a small cache gives ~100% misses; zipf
// (heavy reuse) gives a high hit ratio. This is the mechanism behind the
// Fig 8 curve shapes.
func TestReuseSeparation(t *testing.T) {
	mkCache := func() *Cache {
		return New(Config{Name: "C", Size: 1 << 16, BlockSize: 64, Assoc: 4, HitLatency: 1})
	}
	stream := mkCache()
	for i := 0; i < 100000; i++ {
		stream.Access(mem.Addr(i*64), false)
	}
	if r := stream.Stats().MissRatio(); r < 0.99 {
		t.Errorf("streaming miss ratio = %.3f, want ~1", r)
	}
	zipfC := mkCache()
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.2, 16, 1<<20)
	for i := 0; i < 100000; i++ {
		zipfC.Access(mem.Addr(z.Uint64()*64), false)
	}
	if r := zipfC.Stats().MissRatio(); r > 0.5 {
		t.Errorf("zipf miss ratio = %.3f, want well under 0.5", r)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(100,
		Config{Name: "L1", Size: 4096, BlockSize: 64, Assoc: 4, HitLatency: 1})
	h.Access(0, true)
	h.Reset()
	if h.Accesses() != 0 || h.AMAT() != 0 {
		t.Errorf("reset failed")
	}
	if h.Levels()[0].Occupancy() != 0 {
		t.Errorf("level not cleared")
	}
}

func TestPrefetchNextInstalls(t *testing.T) {
	c := New(Config{Name: "PF", Size: 4096, BlockSize: 64, Assoc: 4, HitLatency: 1, PrefetchNext: true})
	if c.Access(0, false) {
		t.Fatalf("cold access hit")
	}
	// The next block was installed by the prefetcher: it hits.
	if !c.Access(64, false) {
		t.Errorf("prefetched block missed")
	}
	st := c.Stats()
	if st.Prefetches == 0 {
		t.Errorf("no prefetches counted")
	}
	// Install is idempotent on present blocks.
	before := c.Occupancy()
	c.Install(0)
	if c.Occupancy() != before {
		t.Errorf("Install duplicated a present block")
	}
}

// refWay / refCache reimplement the simulator's previous shape — a
// [][]way per-set layout with tag = block/nsets and div/mod indexing — as
// the behavioral reference for the flattened kernel. Any divergence in
// hit/eviction decisions would silently change every AMAT the experiment
// stack reports, so the equivalence is pinned access by access.
type refWay struct {
	tag          uint64
	valid, dirty bool
	lastUse      uint64
}

type refCache struct {
	cfg   Config
	sets  [][]refWay
	nsets uint64
	clock uint64
	stats Stats
}

func newRefCache(cfg Config) *refCache {
	nsets := cfg.Size / (cfg.BlockSize * uint64(cfg.Assoc))
	sets := make([][]refWay, nsets)
	for i := range sets {
		sets[i] = make([]refWay, cfg.Assoc)
	}
	return &refCache{cfg: cfg, sets: sets, nsets: nsets}
}

func (c *refCache) accessEvict(addr mem.Addr, write bool) (hit, evicted, evictedDirty bool) {
	c.clock++
	c.stats.Accesses++
	block := uint64(addr) / c.cfg.BlockSize
	set := c.sets[block%c.nsets]
	tag := block / c.nsets
	var victim *refWay
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.lastUse = c.clock
			if write {
				w.dirty = true
			}
			c.stats.Hits++
			return true, false, false
		}
		if victim == nil || !w.valid || (victim.valid && w.lastUse < victim.lastUse) {
			if victim == nil || victim.valid {
				victim = w
			}
		}
	}
	if victim.valid {
		evicted = true
		evictedDirty = victim.dirty
		c.stats.Evictions++
		if victim.dirty {
			c.stats.DirtyEvictions++
		}
	}
	*victim = refWay{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	return false, evicted, evictedDirty
}

// TestFlattenedEquivalence drives the flattened kernel and the reference
// per-set LRU with identical recorded access sequences and demands
// identical per-access outcomes, counters and occupancy. Geometries cover
// both set-index paths: power-of-two set counts (mask) and the odd set
// counts the DRAM-cache percentage sweep produces (modulo).
func TestFlattenedEquivalence(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "pow2", Size: 8 << 10, BlockSize: 64, Assoc: 4, HitLatency: 1},
		{Name: "odd-sets", Size: 3 * 4 * 4096, BlockSize: 4096, Assoc: 4, HitLatency: 1}, // 3 sets
		{Name: "direct", Size: 1 << 10, BlockSize: 128, Assoc: 1, HitLatency: 1},
		{Name: "one-set", Size: 512, BlockSize: 64, Assoc: 8, HitLatency: 1},
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			c := New(cfg)
			ref := newRefCache(cfg)
			rng := rand.New(rand.NewSource(7))
			span := int64(cfg.Size) * 8 // working set 8x the capacity
			for i := 0; i < 50000; i++ {
				addr := mem.Addr(rng.Int63n(span))
				write := rng.Intn(3) == 0
				hit, ev, dirty := c.AccessEvict(addr, write)
				rHit, rEv, rDirty := ref.accessEvict(addr, write)
				if hit != rHit || ev != rEv || dirty != rDirty {
					t.Fatalf("access %d (addr %#x write %v): got (%v,%v,%v), reference (%v,%v,%v)",
						i, addr, write, hit, ev, dirty, rHit, rEv, rDirty)
				}
			}
			if c.Stats() != ref.stats {
				t.Errorf("stats diverged: got %+v, reference %+v", c.Stats(), ref.stats)
			}
			occ := 0
			for _, set := range ref.sets {
				for _, w := range set {
					if w.valid {
						occ++
					}
				}
			}
			if c.Occupancy() != occ {
				t.Errorf("occupancy = %d, reference %d", c.Occupancy(), occ)
			}
			// Contains agrees on a sample of addresses.
			for i := 0; i < 1000; i++ {
				addr := mem.Addr(rng.Int63n(span))
				block := uint64(addr) / cfg.BlockSize
				rw := ref.sets[block%ref.nsets]
				rc := false
				for _, w := range rw {
					if w.valid && w.tag == block/ref.nsets {
						rc = true
					}
				}
				if c.Contains(addr) != rc {
					t.Fatalf("Contains(%#x) = %v, reference %v", addr, c.Contains(addr), rc)
				}
			}
		})
	}
}

// TestAccessTraceMatchesStream pins the batched path against the
// per-record Stream path on the same hierarchy geometry and accesses.
func TestAccessTraceMatchesStream(t *testing.T) {
	mk := func() *Hierarchy {
		return NewHierarchy(100*time.Nanosecond,
			Config{Name: "L1", Size: 4 << 10, BlockSize: 64, Assoc: 8, HitLatency: 1 * time.Nanosecond},
			Config{Name: "DRAM", Size: 3 * 4 * 1024, BlockSize: 1024, Assoc: 4, HitLatency: 10 * time.Nanosecond},
		)
	}
	rng := rand.New(rand.NewSource(11))
	accs := make([]trace.Access, 20000)
	for i := range accs {
		accs[i] = trace.Access{
			Addr: mem.Addr(rng.Int63n(1 << 20)),
			Size: uint32(1 + rng.Intn(300)), // spans 1..6 blocks
			Kind: trace.Kind(rng.Intn(2)),
		}
		if rng.Intn(50) == 0 {
			accs[i].Size = 0 // zero-length operations cost nothing on both paths
		}
	}
	batched := mk()
	tb := batched.AccessTrace(accs)
	var ts simclock.Duration
	streamed := mk()
	for _, a := range accs {
		ts += streamed.AccessRange(a.Range(), a.Kind == trace.Write)
	}
	if tb != ts {
		t.Fatalf("batched time %v != streamed time %v", tb, ts)
	}
	if batched.Accesses() != streamed.Accesses() {
		t.Fatalf("batched accesses %d != streamed %d", batched.Accesses(), streamed.Accesses())
	}
	for i, l := range batched.Levels() {
		if l.Stats() != streamed.Levels()[i].Stats() {
			t.Errorf("level %d stats diverged: %+v vs %+v", i, l.Stats(), streamed.Levels()[i].Stats())
		}
	}
	if batched.AMAT() != streamed.AMAT() {
		t.Errorf("AMAT %v != %v", batched.AMAT(), streamed.AMAT())
	}
}

// BenchmarkCacheAccess measures the single-level lookup kernel — the
// innermost operation of every experiment. The access path must not
// allocate.
func BenchmarkCacheAccess(b *testing.B) {
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"pow2-sets", Config{Name: "L2", Size: 32 << 10, BlockSize: 64, Assoc: 8, HitLatency: 1}},
		{"odd-sets", Config{Name: "DRAM", Size: 5 * 4 * 4096, BlockSize: 4096, Assoc: 4, HitLatency: 1}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := New(bc.cfg)
			rng := rand.New(rand.NewSource(1))
			const n = 1 << 16
			addrs := make([]mem.Addr, n)
			for i := range addrs {
				addrs[i] = mem.Addr(rng.Int63n(int64(bc.cfg.Size) * 8))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(addrs[i&(n-1)], i&7 == 0)
			}
		})
	}
}

// BenchmarkCacheAccessReference runs the same workload through the
// previous per-set [][]way layout (refCache) so `go test -bench
// 'BenchmarkCacheAccess'` shows the flattened kernel's delta directly.
func BenchmarkCacheAccessReference(b *testing.B) {
	cfg := Config{Name: "L2", Size: 32 << 10, BlockSize: 64, Assoc: 8, HitLatency: 1}
	c := newRefCache(cfg)
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 16
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Int63n(int64(cfg.Size) * 8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.accessEvict(addrs[i&(n-1)], i&7 == 0)
	}
}

// BenchmarkHierarchyAccessTrace measures the batched replay path through a
// three-level hierarchy, the shape kcachesim runs.
func BenchmarkHierarchyAccessTrace(b *testing.B) {
	h := NewHierarchy(10000*time.Nanosecond,
		Config{Name: "L1", Size: 4 << 10, BlockSize: 64, Assoc: 8, HitLatency: 1 * time.Nanosecond},
		Config{Name: "L2", Size: 32 << 10, BlockSize: 64, Assoc: 8, HitLatency: 4 * time.Nanosecond},
		Config{Name: "L3", Size: 256 << 10, BlockSize: 64, Assoc: 8, HitLatency: 30 * time.Nanosecond},
	)
	rng := rand.New(rand.NewSource(1))
	accs := make([]trace.Access, 1<<14)
	for i := range accs {
		accs[i] = trace.Access{Addr: mem.Addr(rng.Int63n(8 << 20)), Size: 64, Kind: trace.Kind(rng.Intn(2))}
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(accs)) * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessTrace(accs)
	}
}

func TestInstallEvictsLRU(t *testing.T) {
	// Single-set cache: Install displaces the LRU valid block.
	c := New(Config{Name: "I", Size: 256, BlockSize: 64, Assoc: 4, HitLatency: 1})
	for i := 0; i < 4; i++ {
		c.Access(mem.Addr(i*64), true)
	}
	c.Install(mem.Addr(4 * 64))
	if c.Contains(0) {
		t.Errorf("LRU block survived Install")
	}
	if !c.Contains(mem.Addr(4 * 64)) {
		t.Errorf("installed block absent")
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Errorf("dirty eviction by Install not counted")
	}
}
