// Package cachesim implements a set-associative, multi-level cache
// simulator. It plays the role Cachegrind plays in the paper's KCacheSim
// (§5): given an application access stream it produces per-level hit/miss
// counts, from which the average memory access time (AMAT) is computed for
// each remote-memory system under study.
//
// The last level of a hierarchy typically models the software-managed DRAM
// cache — CMem for the virtual-memory baselines, FMem for Kona — whose
// block size (the remote fetch granularity) and capacity are the
// experiment's sweep parameters (Fig 8).
//
// The lookup path is the hot loop of the entire experiment stack (a full
// artifact regeneration simulates hundreds of millions of probes), so the
// implementation favors a flat layout: all ways live in one contiguous
// slice indexed by set, block numbers are computed by shift (block sizes
// are powers of two), and the stored tag is the full block number so no
// division is needed on lookups. Set selection uses a mask when the set
// count is a power of two and falls back to modulo otherwise (the
// DRAM-cache capacity is swept in percents, so its set count is arbitrary).
package cachesim

import (
	"fmt"
	"math/bits"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports ("L1", "L3", "FMem"...).
	Name string
	// Size is the capacity in bytes.
	Size uint64
	// BlockSize is the line/block size in bytes (a power of two).
	BlockSize uint64
	// Assoc is the number of ways per set. Assoc*BlockSize must divide
	// Size evenly.
	Assoc int
	// HitLatency is the access time when the block is present.
	HitLatency simclock.Duration
	// PrefetchNext enables a next-block prefetcher: every demand miss
	// also installs the following block (if absent) without charging the
	// access. Page-based remote memory cannot use this across a fault
	// boundary; Kona can (§3) — the abl-hwprefetch experiment relies on
	// the distinction.
	PrefetchNext bool
}

// Stats accumulates accesses and hits for one level.
type Stats struct {
	Accesses uint64
	Hits     uint64
	// Evictions counts blocks displaced by fills.
	Evictions uint64
	// DirtyEvictions counts displaced blocks that had been written.
	DirtyEvictions uint64
	// Prefetches counts next-block prefetch fills.
	Prefetches uint64
}

// Misses returns the miss count.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// MissRatio returns misses/accesses, or 0 with no accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses)
}

// way is one cached block. The tag is the full block number (not the
// block/nsets quotient), which keeps the lookup division-free.
type way struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse orders ways for LRU replacement.
	lastUse uint64
}

// Cache is a single set-associative level with LRU replacement. All ways
// live in one contiguous slice (set s occupies ways[s*assoc:(s+1)*assoc])
// so a lookup touches one cache-resident span instead of chasing a
// per-set pointer.
type Cache struct {
	cfg        Config
	ways       []way
	nsets      uint64
	assoc      int
	blockShift uint
	// setMask is nsets-1 when nsets is a power of two; maskValid selects
	// between mask and modulo set indexing.
	setMask   uint64
	maskValid bool
	clock     uint64
	stats     Stats
}

// New builds a cache level. It panics on inconsistent geometry, which is a
// programming error in experiment setup.
func New(cfg Config) *Cache {
	if cfg.BlockSize == 0 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic(fmt.Sprintf("cachesim: %s block size %d not a power of two", cfg.Name, cfg.BlockSize))
	}
	if cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cachesim: %s associativity %d", cfg.Name, cfg.Assoc))
	}
	waysBytes := cfg.BlockSize * uint64(cfg.Assoc)
	if cfg.Size == 0 || cfg.Size%waysBytes != 0 {
		panic(fmt.Sprintf("cachesim: %s size %d not a multiple of assoc*block %d", cfg.Name, cfg.Size, waysBytes))
	}
	nsets := cfg.Size / waysBytes
	c := &Cache{
		cfg:        cfg,
		ways:       make([]way, nsets*uint64(cfg.Assoc)),
		nsets:      nsets,
		assoc:      cfg.Assoc,
		blockShift: uint(bits.TrailingZeros64(cfg.BlockSize)),
	}
	if nsets&(nsets-1) == 0 {
		c.setMask = nsets - 1
		c.maskValid = true
	}
	return c
}

// set returns the ways of the set holding block.
func (c *Cache) set(block uint64) []way {
	var si uint64
	if c.maskValid {
		si = block & c.setMask
	} else {
		si = block % c.nsets
	}
	base := si * uint64(c.assoc)
	return c.ways[base : base+uint64(c.assoc)]
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access looks up the block containing addr, filling it on a miss, and
// reports whether it hit. On a miss that displaces a valid block, evicted
// reports the victim's dirtiness.
func (c *Cache) Access(addr mem.Addr, write bool) (hit bool) {
	hit, _, _ = c.AccessEvict(addr, write)
	return hit
}

// AccessEvict is Access plus victim information: evicted is true when a
// valid block was displaced, evictedDirty when that block was dirty.
func (c *Cache) AccessEvict(addr mem.Addr, write bool) (hit, evicted, evictedDirty bool) {
	c.clock++
	c.stats.Accesses++
	block := uint64(addr) >> c.blockShift
	set := c.set(block)
	var victim *way
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == block {
			w.lastUse = c.clock
			if write {
				w.dirty = true
			}
			c.stats.Hits++
			return true, false, false
		}
		// Victim preference: the first invalid way, else the LRU way.
		if victim == nil || !w.valid || (victim.valid && w.lastUse < victim.lastUse) {
			if victim == nil || victim.valid {
				victim = w
			}
		}
	}
	// Miss: fill, displacing the LRU way.
	if victim.valid {
		evicted = true
		evictedDirty = victim.dirty
		c.stats.Evictions++
		if victim.dirty {
			c.stats.DirtyEvictions++
		}
	}
	*victim = way{tag: block, valid: true, dirty: write, lastUse: c.clock}
	if c.cfg.PrefetchNext {
		c.Install(mem.Addr((block + 1) << c.blockShift))
	}
	return false, evicted, evictedDirty
}

// Install places the block holding addr without counting an access or a
// hit — the prefetch fill path. Present blocks are left untouched.
func (c *Cache) Install(addr mem.Addr) {
	block := uint64(addr) >> c.blockShift
	set := c.set(block)
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == block {
			return // already present
		}
		if !w.valid {
			victim = w
			continue
		}
		if victim.valid && w.lastUse < victim.lastUse {
			victim = w
		}
	}
	if victim.valid {
		c.stats.Evictions++
		if victim.dirty {
			c.stats.DirtyEvictions++
		}
	}
	c.stats.Prefetches++
	*victim = way{tag: block, valid: true, lastUse: c.clock}
}

// Publish syncs the level's counters into reg under
// "cachesim.<prefix>.": accesses, hits, misses, evictions,
// dirty_evictions, prefetches. The lookup loop is the hottest code in the
// repository, so it carries no per-access instrumentation at all —
// telemetry observes the simulator by syncing these private counters at
// batch boundaries (Hierarchy.Run publishes once per stream). No-op on a
// nil registry.
func (c *Cache) Publish(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := c.stats
	base := "cachesim." + prefix + "."
	reg.Counter(base + "accesses").Store(s.Accesses)
	reg.Counter(base + "hits").Store(s.Hits)
	reg.Counter(base + "misses").Store(s.Misses())
	reg.Counter(base + "evictions").Store(s.Evictions)
	reg.Counter(base + "dirty_evictions").Store(s.DirtyEvictions)
	reg.Counter(base + "prefetches").Store(s.Prefetches)
}

// Contains reports whether the block holding addr is currently cached,
// without disturbing LRU state or counters.
func (c *Cache) Contains(addr mem.Addr) bool {
	block := uint64(addr) >> c.blockShift
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid blocks.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
