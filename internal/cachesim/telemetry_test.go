package cachesim

import (
	"math/rand"
	"testing"
	"time"

	"kona/internal/mem"
	"kona/internal/telemetry"
	"kona/internal/trace"
)

func benchHierarchy(reg *telemetry.Registry) (*Hierarchy, []trace.Access) {
	h := NewHierarchy(10000*time.Nanosecond,
		Config{Name: "L1", Size: 4 << 10, BlockSize: 64, Assoc: 8, HitLatency: 1 * time.Nanosecond},
		Config{Name: "L2", Size: 32 << 10, BlockSize: 64, Assoc: 8, HitLatency: 4 * time.Nanosecond},
		Config{Name: "L3", Size: 256 << 10, BlockSize: 64, Assoc: 8, HitLatency: 30 * time.Nanosecond},
	)
	h.Metrics = reg
	rng := rand.New(rand.NewSource(1))
	accs := make([]trace.Access, 1<<14)
	for i := range accs {
		accs[i] = trace.Access{Addr: mem.Addr(rng.Int63n(8 << 20)), Size: 64, Kind: trace.Kind(rng.Intn(2))}
	}
	return h, accs
}

// TestHierarchyPublish checks that a batched run syncs the per-level
// counters into the registry and that they agree with the levels' own
// stats.
func TestHierarchyPublish(t *testing.T) {
	reg := telemetry.New(0)
	h, accs := benchHierarchy(reg)
	h.AccessTrace(accs)
	s := reg.Snapshot()
	// Unaligned 64B accesses straddle block boundaries, so block-grained
	// operations >= records; the counter must match the hierarchy's own.
	if got := s.Counters["cachesim.accesses"]; got != h.Accesses() || got < uint64(len(accs)) {
		t.Errorf("cachesim.accesses = %d, want %d (>= %d records)", got, h.Accesses(), len(accs))
	}
	for _, l := range h.Levels() {
		st := l.Stats()
		prefix := "cachesim." + map[string]string{"L1": "l1", "L2": "l2", "L3": "l3"}[l.Config().Name]
		if got := s.Counters[prefix+".accesses"]; got != st.Accesses {
			t.Errorf("%s.accesses = %d, want %d", prefix, got, st.Accesses)
		}
		if got := s.Counters[prefix+".hits"]; got != st.Hits {
			t.Errorf("%s.hits = %d, want %d", prefix, got, st.Hits)
		}
		if got := s.Counters[prefix+".misses"]; got != st.Misses() {
			t.Errorf("%s.misses = %d, want %d", prefix, got, st.Misses())
		}
	}
	// Re-publishing is idempotent (Store semantics).
	h.Publish()
	if got := reg.Snapshot().Counters["cachesim.accesses"]; got != h.Accesses() {
		t.Errorf("re-publish drifted: %d != %d", got, h.Accesses())
	}
}

// BenchmarkTelemetryOverheadCachesim pins the tentpole's hot-path budget
// on the simulator: the batched AccessTrace path with telemetry disabled
// (nil registry) must stay within 2% of the uninstrumented baseline. The
// design makes this near-trivial — the lookup loop carries no
// instrumentation; counters sync once per batch — so the benchmark exists
// to keep it that way (`make verify` runs it).
func BenchmarkTelemetryOverheadCachesim(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry) {
		h, accs := benchHierarchy(reg)
		b.ReportAllocs()
		b.SetBytes(int64(len(accs)) * 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.AccessTrace(accs)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, telemetry.New(0)) })
}
