package prefetch

import "testing"

func TestMajorityStride(t *testing.T) {
	p := New(4)
	// Stride-2 pattern: pages 0,2,4,6,...
	var targets []uint64
	for pg := uint64(0); pg < 16; pg += 2 {
		targets = p.Observe(pg)
	}
	if len(targets) == 0 {
		t.Fatalf("stride-2 not detected")
	}
	if targets[0] != 16 {
		t.Errorf("first prefetch target = %d, want 16", targets[0])
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(2)
	var targets []uint64
	for pg := int64(100); pg > 80; pg -= 3 {
		targets = p.Observe(uint64(pg))
	}
	if len(targets) == 0 {
		t.Fatalf("negative stride not detected")
	}
	// The loop's last page is 82, so the next stride target is 79.
	if targets[0] != 79 {
		t.Errorf("target = %d, want 79", targets[0])
	}
}

func TestNoStrideNoPrefetch(t *testing.T) {
	p := New(4)
	pages := []uint64{5, 90, 3, 71, 22, 48, 11, 60, 35}
	var total int
	for _, pg := range pages {
		total += len(p.Observe(pg))
	}
	if total != 0 {
		t.Errorf("random pattern produced %d prefetches", total)
	}
}

func TestAdaptiveDepth(t *testing.T) {
	p := New(8)
	// Establish a stride so Observe issues prefetches.
	for pg := uint64(0); pg < 8; pg++ {
		p.Observe(pg)
	}
	if p.Depth() != 1 {
		t.Fatalf("initial depth = %d", p.Depth())
	}
	// All useful: depth grows toward the cap.
	for i := 0; i < 64; i++ {
		p.MarkUseful()
		p.adapt()
	}
	if p.Depth() <= 1 {
		t.Errorf("depth did not grow: %d", p.Depth())
	}
	grown := p.Depth()
	// All wasted: depth shrinks back.
	for i := 0; i < 64; i++ {
		p.MarkWasted()
		p.adapt()
	}
	if p.Depth() >= grown {
		t.Errorf("depth did not shrink: %d (was %d)", p.Depth(), grown)
	}
}

func TestZeroDepthClamped(t *testing.T) {
	if New(0).Depth() != 1 {
		t.Errorf("zero max depth not clamped")
	}
}
