// Package prefetch implements the access-pattern predictor shared by the
// FPGA's hardware prefetcher and the Kona-VM baseline's Leap-style
// software prefetcher: a Boyer-Moore majority vote over the recent page
// deltas detects strided patterns (including negative and multi-page
// strides), and the prefetch window deepens while prefetches prove useful,
// shrinking when they are wasted — the adaptive scheme of Leap (Maruf &
// Chowdhury, the paper's [57]).
package prefetch

// window is the fill-delta history length for the majority vote.
const window = 8

// maxUsefulness bounds the accuracy counters so adaptation stays recent.
const maxUsefulness = 64

// Detector holds the stride-detection state. The zero value is not ready;
// use New.
type Detector struct {
	deltas [window]int64
	n      int
	last   uint64 // last demand page

	depth    int // current window, 1..maxDepth
	maxDepth int

	useful, wasted int
}

// New returns a stride detector with the given maximum depth.
func New(maxDepth int) *Detector {
	if maxDepth < 1 {
		maxDepth = 1
	}
	return &Detector{depth: 1, maxDepth: maxDepth}
}

// Observe records a demand access to page and returns the pages to
// prefetch (nil when no stable stride is detected).
func (p *Detector) Observe(page uint64) []uint64 {
	if p.n > 0 || p.last != 0 {
		p.deltas[p.n%window] = int64(page) - int64(p.last)
		p.n++
	}
	p.last = page
	stride, ok := p.majorityStride()
	if !ok {
		return nil
	}
	p.adapt()
	out := make([]uint64, 0, p.depth)
	cur := int64(page)
	for i := 0; i < p.depth; i++ {
		cur += stride
		if cur < 0 {
			break
		}
		out = append(out, uint64(cur))
	}
	return out
}

// majorityStride returns the delta appearing in more than half the
// recorded window, if any (zero strides never qualify).
func (p *Detector) majorityStride() (int64, bool) {
	w := p.n
	if w > window {
		w = window
	}
	if w < 2 {
		return 0, false
	}
	// Boyer-Moore majority vote over the tiny window.
	var cand int64
	count := 0
	for i := 0; i < w; i++ {
		d := p.deltas[i]
		switch {
		case count == 0:
			cand, count = d, 1
		case d == cand:
			count++
		default:
			count--
		}
	}
	count = 0
	for i := 0; i < w; i++ {
		if p.deltas[i] == cand {
			count++
		}
	}
	if cand != 0 && count*2 > w {
		return cand, true
	}
	return 0, false
}

// MarkUseful records a hit on a prefetched page.
func (p *Detector) MarkUseful() {
	if p.useful < maxUsefulness {
		p.useful++
	}
}

// MarkWasted records the eviction of a never-used prefetched page.
func (p *Detector) MarkWasted() {
	if p.wasted < maxUsefulness {
		p.wasted++
	}
}

// Depth returns the current prefetch window.
func (p *Detector) Depth() int { return p.depth }

// adapt grows the window while prefetches pay off and shrinks it when
// they waste cache space and fetch bandwidth.
func (p *Detector) adapt() {
	total := p.useful + p.wasted
	if total < 8 {
		return
	}
	accuracy := float64(p.useful) / float64(total)
	switch {
	case accuracy > 0.6 && p.depth < p.maxDepth:
		p.depth++
	case accuracy < 0.3 && p.depth > 1:
		p.depth--
	}
	p.useful /= 2
	p.wasted /= 2
}
