package slab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kona/internal/mem"
)

func grant1(t *testing.T, a *Allocator, base mem.Addr, size uint64) {
	t.Helper()
	if err := a.Grant(Slab{ID: uint64(base), Base: base, Size: size}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFree(t *testing.T) {
	a := NewAllocator()
	grant1(t, a, 0, 1<<20)
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("overlapping allocations")
	}
	// Cache-line rounding: allocations never share a line.
	if p2 != p1+128 {
		t.Errorf("p2 = %v, want %v (100B rounds to 128)", p2, p1+128)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err == nil {
		t.Fatalf("double free succeeded")
	}
	if err := a.Free(12345); err == nil {
		t.Fatalf("bogus free succeeded")
	}
	// Freed space is reused.
	p3, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Errorf("free space not reused: got %v, want %v", p3, p1)
	}
}

func TestGrantValidation(t *testing.T) {
	a := NewAllocator()
	grant1(t, a, 0, 1<<20)
	if err := a.Grant(Slab{ID: 0, Base: 1 << 20, Size: 1 << 20}); err == nil {
		t.Errorf("duplicate slab id accepted")
	}
	if err := a.Grant(Slab{ID: 7, Base: 1 << 19, Size: 1 << 20}); err == nil {
		t.Errorf("overlapping slab accepted")
	}
	if err := a.Grant(Slab{ID: 8, Base: 1 << 20, Size: 0}); err == nil {
		t.Errorf("zero-size slab accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	a := NewAllocator()
	if _, err := a.Alloc(64); err == nil {
		t.Fatalf("alloc with no slabs succeeded")
	}
	grant1(t, a, 0, 128)
	if _, err := a.Alloc(256); err == nil {
		t.Fatalf("oversized alloc succeeded")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatalf("zero alloc succeeded")
	}
}

func TestCoalescing(t *testing.T) {
	a := NewAllocator()
	grant1(t, a, 0, 1<<20)
	var ptrs []mem.Addr
	for i := 0; i < 8; i++ {
		p, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Free in an interleaved order; everything must coalesce back to one
	// block spanning the slab.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeBlocks() != 1 {
		t.Errorf("free blocks = %d, want 1 after full coalesce", a.FreeBlocks())
	}
	// And a slab-sized allocation must fit again.
	if _, err := a.Alloc(1 << 20); err != nil {
		t.Errorf("full-slab alloc after coalesce failed: %v", err)
	}
}

func TestSlabFor(t *testing.T) {
	a := NewAllocator()
	grant1(t, a, 0, 1<<20)
	grant1(t, a, 1<<21, 1<<20)
	s, ok := a.SlabFor(1<<21 + 5)
	if !ok || s.Base != 1<<21 {
		t.Errorf("SlabFor = %+v ok=%v", s, ok)
	}
	if _, ok := a.SlabFor(1 << 30); ok {
		t.Errorf("SlabFor outside slabs succeeded")
	}
	if got := len(a.Slabs()); got != 2 {
		t.Errorf("Slabs() = %d entries", got)
	}
}

// Property: live allocations never overlap, stay within granted slabs,
// and granted == free + allocated at all times.
func TestAllocatorQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAllocator()
		if err := a.Grant(Slab{ID: 1, Base: 0, Size: 1 << 16}); err != nil {
			return false
		}
		type alloc struct {
			addr mem.Addr
			size uint64
		}
		var live []alloc
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				// Free a pseudo-random live allocation.
				i := int(op) % len(live)
				if a.Free(live[i].addr) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint64(op%512 + 1)
			p, err := a.Alloc(size)
			if err != nil {
				continue // OOM is legal
			}
			rounded := uint64(mem.Addr(size).AlignUp(64))
			// Check bounds and overlap.
			if uint64(p)+rounded > 1<<16 {
				return false
			}
			for _, l := range live {
				r1 := mem.Range{Start: p, Len: rounded}
				r2 := mem.Range{Start: l.addr, Len: l.size}
				if r1.Overlaps(r2) {
					return false
				}
			}
			live = append(live, alloc{p, rounded})
		}
		granted, allocated := a.Stats()
		var sum uint64
		for _, l := range live {
			sum += l.size
		}
		return granted == 1<<16 && allocated == sum && a.LiveAllocations() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChurnReusesMemory(t *testing.T) {
	a := NewAllocator()
	grant1(t, a, 0, 1<<20)
	rng := rand.New(rand.NewSource(5))
	var live []mem.Addr
	for i := 0; i < 20000; i++ {
		if len(live) > 100 || (len(live) > 0 && rng.Intn(2) == 0) {
			idx := rng.Intn(len(live))
			if err := a.Free(live[idx]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		} else {
			p, err := a.Alloc(uint64(rng.Intn(2048) + 1))
			if err != nil {
				t.Fatalf("iteration %d: %v (churn must not leak)", i, err)
			}
			live = append(live, p)
		}
	}
}
