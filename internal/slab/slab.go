// Package slab implements Kona's two-level memory allocation (§4.1, §4.4):
// the rack controller hands out disaggregated memory in coarse slabs, off
// the application's critical path, and a local allocator (the AllocLib
// role) splits slabs to serve fine-grained malloc/mmap interpositions.
package slab

import (
	"fmt"
	"sort"

	"kona/internal/mem"
)

// DefaultSlabSize is the coarse allocation unit requested from the rack
// controller.
const DefaultSlabSize = 16 << 20

// Slab is one coarse grant of disaggregated memory, mapped contiguously
// into the application's (fake-physical) address space.
type Slab struct {
	// ID is the controller-assigned slab identifier.
	ID uint64
	// Base is the slab's address in the application's VFMem space.
	Base mem.Addr
	// Size is the slab length in bytes.
	Size uint64
	// Node is the memory node hosting the slab.
	Node int
	// Epoch is the hosting node's incarnation number at carve time. A
	// node that crashes and rejoins registers under a higher incarnation;
	// placements stamped with the old epoch are fenced off (§4.5 fault
	// tolerance). Zero means "incarnation tracking not in use" (in-process
	// nodes created outside a controller).
	Epoch uint64
	// RemoteKey/RemoteOff locate the slab in the node's registered memory.
	RemoteKey uint32
	RemoteOff uint64
}

// Range returns the slab's span in the local address space.
func (s Slab) Range() mem.Range { return mem.Range{Start: s.Base, Len: s.Size} }

// block is a free extent.
type block struct {
	addr mem.Addr
	size uint64
}

// Allocator is a first-fit free-list allocator with coalescing over a set
// of granted slabs. It is not safe for concurrent use; the runtime
// serializes allocation (allocation is a control-path operation, §3).
type Allocator struct {
	slabs map[uint64]Slab
	free  []block // sorted by addr, non-adjacent (coalesced)
	live  map[mem.Addr]uint64

	granted, allocated uint64
}

// NewAllocator returns an empty allocator; Grant slabs before Alloc.
func NewAllocator() *Allocator {
	return &Allocator{
		slabs: make(map[uint64]Slab),
		live:  make(map[mem.Addr]uint64),
	}
}

// Grant adds a slab's space to the allocator. Overlapping or duplicate
// slabs are rejected.
func (a *Allocator) Grant(s Slab) error {
	if s.Size == 0 {
		return fmt.Errorf("slab: zero-size grant")
	}
	if _, dup := a.slabs[s.ID]; dup {
		return fmt.Errorf("slab: duplicate slab id %d", s.ID)
	}
	for _, other := range a.slabs {
		if s.Range().Overlaps(other.Range()) {
			return fmt.Errorf("slab: grant %v overlaps slab %d", s.Range(), other.ID)
		}
	}
	a.slabs[s.ID] = s
	a.insertFree(block{addr: s.Base, size: s.Size})
	a.granted += s.Size
	return nil
}

// Attach registers a slab for SlabFor translation WITHOUT adding its
// space to the free list. A runtime attaching another runtime's region
// in reader mode shares the writer's addresses (same Base VA) but must
// never allocate out of them; the space belongs to the writer's
// allocator.
func (a *Allocator) Attach(s Slab) error {
	if s.Size == 0 {
		return fmt.Errorf("slab: zero-size attach")
	}
	if _, dup := a.slabs[s.ID]; dup {
		return fmt.Errorf("slab: duplicate slab id %d", s.ID)
	}
	for _, other := range a.slabs {
		if s.Range().Overlaps(other.Range()) {
			return fmt.Errorf("slab: attach %v overlaps slab %d", s.Range(), other.ID)
		}
	}
	a.slabs[s.ID] = s
	return nil
}

// Detach removes a slab registered via Attach. It must not be used on
// granted slabs (their space is threaded through the free list).
func (a *Allocator) Detach(id uint64) {
	delete(a.slabs, id)
}

// SlabFor returns the slab containing addr, for remote-translation
// lookups (the hashmap of §4.4).
func (a *Allocator) SlabFor(addr mem.Addr) (Slab, bool) {
	for _, s := range a.slabs {
		if s.Range().Contains(addr) {
			return s, true
		}
	}
	return Slab{}, false
}

// Slabs returns all granted slabs, ordered by base address.
func (a *Allocator) Slabs() []Slab {
	out := make([]Slab, 0, len(a.slabs))
	for _, s := range a.slabs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Alloc reserves size bytes (rounded up to a cache line, so no two
// allocations share a line) and returns the base address.
func (a *Allocator) Alloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("slab: zero-size alloc")
	}
	size = uint64(mem.Addr(size).AlignUp(mem.CacheLineSize))
	for i := range a.free {
		if a.free[i].size >= size {
			addr := a.free[i].addr
			a.free[i].addr += mem.Addr(size)
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.live[addr] = size
			a.allocated += size
			return addr, nil
		}
	}
	return 0, fmt.Errorf("slab: out of memory for %d bytes (granted %d, allocated %d)", size, a.granted, a.allocated)
}

// Free releases an allocation made by Alloc.
func (a *Allocator) Free(addr mem.Addr) error {
	size, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("slab: free of unallocated address %v", addr)
	}
	delete(a.live, addr)
	a.allocated -= size
	a.insertFree(block{addr: addr, size: size})
	return nil
}

// insertFree adds a block, keeping the list sorted and coalesced.
func (a *Allocator) insertFree(b block) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > b.addr })
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = b
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+mem.Addr(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+mem.Addr(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// Stats returns granted and currently-allocated byte counts.
func (a *Allocator) Stats() (granted, allocated uint64) {
	return a.granted, a.allocated
}

// FreeBlocks returns the number of free extents (diagnostic: fragmentation).
func (a *Allocator) FreeBlocks() int { return len(a.free) }

// LiveAllocations returns the number of outstanding allocations.
func (a *Allocator) LiveAllocations() int { return len(a.live) }
