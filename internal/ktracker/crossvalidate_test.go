package ktracker

import (
	"errors"
	"io"
	"math"
	"testing"

	"kona/internal/trace"
	"kona/internal/workload"
)

// TestCrossValidateAgainstWindowStats replays every Table 2 workload
// through BOTH measurement pipelines — KTracker's snapshot diffing and the
// direct window statistics (trace.WindowDirtyStats) — and requires them to
// agree. They measure the same quantity by unrelated mechanisms (byte
// comparison vs access-record bookkeeping), so agreement is strong
// evidence that neither is broken.
func TestCrossValidateAgainstWindowStats(t *testing.T) {
	if testing.Short() {
		t.Skip("replays all nine workloads twice")
	}
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			w.Windows = minInt(w.Windows, 15)
			// Pipeline 1: KTracker.
			results, err := Run(w, 42)
			if err != nil {
				t.Fatal(err)
			}
			byIndex := map[int]WindowResult{}
			for _, r := range results {
				byIndex[r.Index] = r
			}
			// Pipeline 2: direct window stats over the identical stream.
			win := trace.NewWindower(w.TrackingStream(42), workload.WindowLen)
			compared := 0
			for {
				wd, err := win.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				kt, ok := byIndex[wd.Index]
				if !ok {
					continue // teardown window dropped by KTracker
				}
				d := trace.WindowDirtyStats(wd)
				if d.BytesWritten != kt.BytesWritten {
					t.Fatalf("window %d: bytes %d vs %d", wd.Index, d.BytesWritten, kt.BytesWritten)
				}
				if d.BytesWritten == 0 {
					continue
				}
				// Diffing can only under-report (a write of identical
				// bytes is invisible) — require agreement within 2%.
				if kt.DirtyPages > d.DirtyPages4K || tooFar(kt.DirtyPages, d.DirtyPages4K, 0.02) {
					t.Fatalf("window %d: dirty pages diff=%d stats=%d", wd.Index, kt.DirtyPages, d.DirtyPages4K)
				}
				if kt.DirtyLines > d.DirtyLines || tooFar(kt.DirtyLines, d.DirtyLines, 0.02) {
					t.Fatalf("window %d: dirty lines diff=%d stats=%d", wd.Index, kt.DirtyLines, d.DirtyLines)
				}
				compared++
			}
			if compared < 5 {
				t.Fatalf("only %d windows compared", compared)
			}
		})
	}
}

func tooFar(a, b uint64, tol float64) bool {
	if b == 0 {
		return a != 0
	}
	return math.Abs(float64(a)-float64(b))/float64(b) > tol
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
