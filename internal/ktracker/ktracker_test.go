package ktracker

import (
	"testing"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/trace"
	"kona/internal/workload"
)

// mkWindow builds a trace window from accesses.
func mkWindow(idx int, accs ...trace.Access) trace.Window {
	return trace.Window{Index: idx, Accesses: accs}
}

func TestDiffDetectsExactLines(t *testing.T) {
	tr := New()
	// Write 10 bytes at offset 0 and 64 bytes at line 5.
	res, err := tr.window(mkWindow(0,
		trace.Access{Addr: 0, Size: 10, Kind: trace.Write},
		trace.Access{Addr: 5 * 64, Size: 64, Kind: trace.Write},
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyLines != 2 {
		t.Errorf("dirty lines = %d, want 2", res.DirtyLines)
	}
	if res.DirtyPages != 1 {
		t.Errorf("dirty pages = %d, want 1", res.DirtyPages)
	}
	if res.BytesWritten != 74 {
		t.Errorf("bytes = %d, want 74", res.BytesWritten)
	}
	if res.WPFaults != 1 {
		t.Errorf("wp faults = %d, want 1 (one page)", res.WPFaults)
	}
	if res.DiffCost <= 0 {
		t.Errorf("diff cost not modeled")
	}
}

func TestReadsAreNotDirty(t *testing.T) {
	tr := New()
	res, err := tr.window(mkWindow(0,
		trace.Access{Addr: 100, Size: 64, Kind: trace.Read},
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyLines != 0 || res.DirtyPages != 0 || res.WPFaults != 0 {
		t.Errorf("read produced dirt: %+v", res)
	}
}

func TestWindowsResetTracking(t *testing.T) {
	tr := New()
	w0, err := tr.window(mkWindow(0, trace.Access{Addr: 0, Size: 8, Kind: trace.Write}))
	if err != nil {
		t.Fatal(err)
	}
	// Second window writes the same location: it must fault and be
	// detected again (tracking re-arms at window boundaries).
	w1, err := tr.window(mkWindow(1, trace.Access{Addr: 0, Size: 8, Kind: trace.Write}))
	if err != nil {
		t.Fatal(err)
	}
	if w0.WPFaults != 1 || w1.WPFaults != 1 {
		t.Errorf("faults = %d,%d; re-protection broken", w0.WPFaults, w1.WPFaults)
	}
	if w1.DirtyLines != 1 {
		t.Errorf("window 1 dirty lines = %d, want 1", w1.DirtyLines)
	}
}

func TestOnlyOneFaultPerPagePerWindow(t *testing.T) {
	tr := New()
	var accs []trace.Access
	for i := 0; i < 20; i++ {
		accs = append(accs, trace.Access{Addr: mem.Addr(i * 64), Size: 8, Kind: trace.Write})
	}
	res, err := tr.window(mkWindow(0, accs...))
	if err != nil {
		t.Fatal(err)
	}
	if res.WPFaults != 1 {
		t.Errorf("faults = %d, want 1 (same page)", res.WPFaults)
	}
	if res.DirtyLines != 20 {
		t.Errorf("dirty lines = %d, want 20", res.DirtyLines)
	}
}

func TestPageSpanningWrite(t *testing.T) {
	tr := New()
	res, err := tr.window(mkWindow(0,
		trace.Access{Addr: mem.PageSize - 32, Size: 64, Kind: trace.Write},
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyPages != 2 || res.DirtyLines != 2 {
		t.Errorf("spanning write: pages=%d lines=%d, want 2/2", res.DirtyPages, res.DirtyLines)
	}
	if res.WPFaults != 2 {
		t.Errorf("faults = %d, want 2", res.WPFaults)
	}
}

func TestAmplificationArithmetic(t *testing.T) {
	r := WindowResult{BytesWritten: 128, DirtyLines: 4, DirtyPages: 1}
	if got := r.Amp4K(); got != 32 {
		t.Errorf("Amp4K = %v", got)
	}
	if got := r.AmpCL(); got != 2 {
		t.Errorf("AmpCL = %v", got)
	}
	if got := r.Ratio(); got != 16 {
		t.Errorf("Ratio = %v", got)
	}
	empty := WindowResult{}
	if empty.Amp4K() != 0 || empty.AmpCL() != 0 || empty.Ratio() != 0 {
		t.Errorf("empty window amplification not zero")
	}
}

func TestRunRedisSeqMatchesWindowStats(t *testing.T) {
	// The diff-based tracker must agree with the direct window statistics
	// (trace.WindowDirtyStats) on a real workload — the two measure the
	// same thing by different mechanisms.
	w := workload.RedisSeq()
	results, err := Run(w, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("only %d windows", len(results))
	}
	s := Summarize(results, 0)
	if s.MeanAmp4K < 1.5 || s.MeanAmp4K > 5 {
		t.Errorf("Redis-Seq amp4K = %.2f, want ~2.76", s.MeanAmp4K)
	}
	if s.MeanAmpCL < 1 || s.MeanAmpCL > 1.3 {
		t.Errorf("Redis-Seq ampCL = %.2f, want ~1.08", s.MeanAmpCL)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Redis-Rand replay")
	}
	rand, err := Run(workload.RedisRand(), 7)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(workload.RedisSeq(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Rand runs longer than Seq (§6.3).
	if len(rand) <= len(seq) {
		t.Errorf("Redis-Rand (%d windows) should outlast Redis-Seq (%d)", len(rand), len(seq))
	}
	sr := Summarize(rand, 10)
	ss := Summarize(seq, 0)
	// Fig 9: the rand ratio is much higher than the seq ratio (~2x).
	if sr.MeanRatio <= 2*ss.MeanRatio {
		t.Errorf("ratio rand=%.1f seq=%.1f; rand must dominate", sr.MeanRatio, ss.MeanRatio)
	}
	if ss.MeanRatio < 1.2 || ss.MeanRatio > 5 {
		t.Errorf("seq ratio = %.1f, want ~2", ss.MeanRatio)
	}
}

func TestFig10SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("replays several workloads")
	}
	speedup := func(w *workload.Workload, skip int) float64 {
		results, err := Run(w, 5)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Speedup(w, results, skip)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	rand := speedup(workload.RedisRand(), 10)
	seq := speedup(workload.RedisSeq(), 0)
	hist := speedup(workload.Histogram(), 0)
	t.Logf("speedups: rand=%.1f%% seq=%.1f%% hist=%.1f%%", rand, seq, hist)
	// Fig 10: Redis-Rand ~35%, Redis-Seq and Histogram ~1%.
	if rand < 20 || rand > 50 {
		t.Errorf("Redis-Rand speedup = %.1f%%, want ~35%%", rand)
	}
	if seq > 6 {
		t.Errorf("Redis-Seq speedup = %.1f%%, want ~1-3%%", seq)
	}
	if hist > 4 {
		t.Errorf("Histogram speedup = %.1f%%, want ~1%%", hist)
	}
	if rand <= seq || rand <= hist {
		t.Errorf("ordering violated: rand must dominate")
	}
}

func TestSummarizeSkipsStartup(t *testing.T) {
	results := []WindowResult{
		{Index: 0, BytesWritten: 100, DirtyPages: 100, DirtyLines: 100},
		{Index: 12, BytesWritten: 128, DirtyPages: 1, DirtyLines: 4},
	}
	s := Summarize(results, 10)
	if s.Windows != 1 || s.MeanAmp4K != 32 {
		t.Errorf("startup window not skipped: %+v", s)
	}
}

func TestSpeedupNoWrites(t *testing.T) {
	w := workload.RedisRand()
	if _, err := Speedup(w, nil, 0); err == nil {
		t.Errorf("empty run accepted")
	}
}

func TestEmulationOverheadReported(t *testing.T) {
	// §6.3(3): the emulation's own cost is dominated by copy+compare. Our
	// model must charge a nonzero diff cost proportional to touched pages.
	tr := New()
	var accs []trace.Access
	for p := 0; p < 50; p++ {
		accs = append(accs, trace.Access{Addr: mem.Addr(p * mem.PageSize), Size: 8, Kind: trace.Write})
	}
	res, err := tr.window(mkWindow(0, accs...))
	if err != nil {
		t.Fatal(err)
	}
	perPage := simclock.Memcpy(2 * mem.PageSize)
	if res.DiffCost != 50*perPage {
		t.Errorf("diff cost = %v, want %v", res.DiffCost, 50*perPage)
	}
}
