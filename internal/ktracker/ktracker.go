// Package ktracker reimplements KTracker (§5, §6.3): the emulation tool
// that measures cache-line-granularity dirty tracking against
// 4KB write-protection on the same workload.
//
// Cache-line mode works the way the real KTracker does: it keeps a
// snapshot of each page touched in the current window and, at window end,
// diffs the live page against the snapshot 64 bytes at a time to find the
// dirty lines. Write-protect mode drives a simulated address space
// (package vm): pages are mapped read-only, the first store in each window
// faults, and the window ends by re-protecting the dirty pages.
//
// The same run yields Fig 9 (per-window 4KB-vs-cache-line amplification
// ratio) and Fig 10 (tracking speedup vs write-protection, scaled to the
// workload's native write bandwidth).
package ktracker

import (
	"errors"
	"fmt"
	"io"
	"time"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/trace"
	"kona/internal/vm"
	"kona/internal/workload"
)

// WindowResult is the measurement of one 1-second window.
type WindowResult struct {
	// Index is the window ordinal (gaps mean idle windows).
	Index int
	// BytesWritten is the application's true write volume.
	BytesWritten uint64
	// DirtyLines is the diff-detected count of modified 64B lines.
	DirtyLines uint64
	// DirtyPages is the number of 4KB pages with at least one dirty line
	// (equals the write-protect fault count for the window).
	DirtyPages uint64
	// DiffCost is the modeled snapshot+compare cost (emulation overhead).
	DiffCost simclock.Duration
	// WPFaults is the write-protect fault count in WP mode.
	WPFaults uint64
}

// Amp4K returns the window's 4KB-tracking amplification.
func (w WindowResult) Amp4K() float64 {
	if w.BytesWritten == 0 {
		return 0
	}
	return float64(w.DirtyPages*mem.PageSize) / float64(w.BytesWritten)
}

// AmpCL returns the window's cache-line-tracking amplification.
func (w WindowResult) AmpCL() float64 {
	if w.BytesWritten == 0 {
		return 0
	}
	return float64(w.DirtyLines*mem.CacheLineSize) / float64(w.BytesWritten)
}

// Ratio returns Fig 9's y-value: 4KB amplification relative to cache-line
// amplification.
func (w WindowResult) Ratio() float64 {
	if cl := w.AmpCL(); cl > 0 {
		return w.Amp4K() / cl
	}
	return 0
}

// trackedPage is one page of emulated application memory.
type trackedPage struct {
	data []byte
	// snapshot is the copy taken at the page's first touch in the current
	// window; nil when untouched this window.
	snapshot []byte
}

// Tracker replays a workload and measures both tracking modes.
type Tracker struct {
	pages   map[uint64]*trackedPage
	touched map[uint64]struct{} // pages snapshotted this window
	as      *vm.AddressSpace
	fill    byte
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{
		pages:   make(map[uint64]*trackedPage),
		touched: make(map[uint64]struct{}),
		as:      vm.NewAddressSpace(),
	}
}

// Run replays the workload's tracking stream and returns one result per
// non-idle window, dropping the final (teardown) window as the paper does
// (§6.3: it "skews the average amplification").
func Run(w *workload.Workload, seed int64) ([]WindowResult, error) {
	t := New()
	win := trace.NewWindower(w.TrackingStream(seed), workload.WindowLen)
	var results []WindowResult
	for {
		wd, err := win.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		res, err := t.window(wd)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	if len(results) > 1 {
		results = results[:len(results)-1] // drop the teardown window
	}
	return results, nil
}

// window replays one window: apply the accesses, then diff.
func (t *Tracker) window(wd trace.Window) (WindowResult, error) {
	res := WindowResult{Index: wd.Index}
	t.fill++
	for i, a := range wd.Accesses {
		if a.Size == 0 {
			continue
		}
		switch a.Kind {
		case trace.Write:
			res.BytesWritten += uint64(a.Size)
			res.WPFaults += t.applyWrite(a, byte(i))
		case trace.Read:
			t.applyRead(a)
		}
	}
	// Window end: diff the touched pages against their snapshots at
	// cache-line granularity, then reset snapshots and re-protect dirty
	// pages for the next window.
	for p := range t.touched {
		pg := t.pages[p]
		lines, cost := diffPage(pg.data, pg.snapshot)
		res.DiffCost += cost
		if lines > 0 {
			res.DirtyLines += uint64(lines)
			res.DirtyPages++
			base := mem.PageBase(p)
			t.as.WriteProtect(mem.Range{Start: base, Len: mem.PageSize})
		}
		pg.snapshot = nil
		delete(t.touched, p)
	}
	return res, nil
}

// applyWrite mutates the emulated memory and returns the number of WP
// faults the access takes (0 or more, across pages).
func (t *Tracker) applyWrite(a trace.Access, salt byte) (faults uint64) {
	r := a.Range()
	for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
		pg := t.ensure(p)
		base := mem.PageBase(p)
		lo, hi := overlap(r, base)
		// Write-protect mode bookkeeping: first store to a protected page
		// faults.
		if t.as.Touch(base+mem.Addr(lo), true) == vm.WriteProtectFault {
			if err := t.as.ResolveWP(base + mem.Addr(lo)); err == nil {
				faults++
			}
		}
		for i := lo; i < hi; i++ {
			pg.data[i] = t.fill ^ salt ^ byte(i)
		}
	}
	return faults
}

// applyRead snapshots pages so the diff set matches KTracker's "all
// accessed pages" behavior; reads do not mutate.
func (t *Tracker) applyRead(a trace.Access) {
	r := a.Range()
	for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
		t.ensure(p)
	}
}

// ensure materializes a page, maps it read-only on first existence, and
// snapshots it on first touch in the current window.
func (t *Tracker) ensure(p uint64) *trackedPage {
	pg, ok := t.pages[p]
	if !ok {
		pg = &trackedPage{data: make([]byte, mem.PageSize)}
		t.pages[p] = pg
		t.as.Map(mem.Range{Start: mem.PageBase(p), Len: mem.PageSize}, false)
	}
	if _, done := t.touched[p]; !done {
		pg.snapshot = append(pg.snapshot[:0], pg.data...)
		t.touched[p] = struct{}{}
	}
	return pg
}

// overlap returns the byte range [lo,hi) of r within the page at base.
func overlap(r mem.Range, base mem.Addr) (lo, hi uint64) {
	lo = 0
	if r.Start > base {
		lo = uint64(r.Start - base)
	}
	hi = mem.PageSize
	if r.End() < base+mem.PageSize {
		hi = uint64(r.End() - base)
	}
	return lo, hi
}

// diffPage compares a page against its snapshot line by line and returns
// the number of differing lines plus the modeled comparison cost.
func diffPage(data, snapshot []byte) (lines int, cost simclock.Duration) {
	// Cost model: read both copies once (2x page) — this is the dominant
	// emulation overhead the paper reports (95% of KTracker's slowdown).
	cost = simclock.Memcpy(2 * mem.PageSize)
	if snapshot == nil {
		return 0, cost
	}
	for off := 0; off < mem.PageSize; off += mem.CacheLineSize {
		a := data[off : off+mem.CacheLineSize]
		b := snapshot[off : off+mem.CacheLineSize]
		for i := range a {
			if a[i] != b[i] {
				lines++
				break
			}
		}
	}
	return lines, cost
}

// Summary aggregates a run.
type Summary struct {
	Windows      int
	MeanAmp4K    float64
	MeanAmpCL    float64
	MeanRatio    float64
	TotalFaults  uint64
	TotalDiff    simclock.Duration
	BytesWritten uint64
}

// Summarize averages per-window amplifications over the run, skipping the
// first `skipStartup` windows (server initialization, §6.3).
func Summarize(results []WindowResult, skipStartup int) Summary {
	var s Summary
	for _, r := range results {
		if r.Index < skipStartup || r.BytesWritten == 0 {
			continue
		}
		s.Windows++
		s.MeanAmp4K += r.Amp4K()
		s.MeanAmpCL += r.AmpCL()
		s.MeanRatio += r.Ratio()
		s.TotalFaults += r.WPFaults
		s.TotalDiff += r.DiffCost
		s.BytesWritten += r.BytesWritten
	}
	if s.Windows > 0 {
		s.MeanAmp4K /= float64(s.Windows)
		s.MeanAmpCL /= float64(s.Windows)
		s.MeanRatio /= float64(s.Windows)
	}
	return s
}

// Speedup computes Fig 10's bar for a workload: the throughput gain of
// coherence-based (fault-free) tracking over 4KB write-protection, at the
// workload's native write bandwidth.
//
// Per native second the write-protect runtime takes one minor fault per
// dirty page plus the re-protection work (PTE downgrade + TLB
// invalidation, with the shootdown IPI batched per window). The simulated
// run gives dirty pages per simulated byte; scaling by the native write
// bandwidth gives faults per native second, hence the fraction of each
// second spent on fault handling — which coherence-based tracking
// eliminates.
func Speedup(w *workload.Workload, results []WindowResult, skipStartup int) (float64, error) {
	s := Summarize(results, skipStartup)
	if s.BytesWritten == 0 {
		return 0, fmt.Errorf("ktracker: no writes recorded for %s", w.Name)
	}
	var dirtyPages float64
	for _, r := range results {
		if r.Index >= skipStartup {
			dirtyPages += float64(r.DirtyPages)
		}
	}
	pagesPerByte := dirtyPages / float64(s.BytesWritten)
	pagesPerSec := pagesPerByte * float64(w.WriteBandwidth)
	// Per dirty page: the minor fault, plus the re-protection TLB work
	// with the shootdown IPI amortized over ~2 pages per batch.
	perPage := float64(simclock.MinorFault) + float64(simclock.TLBShootdown)/2
	overheadPerSec := pagesPerSec * perPage // ns of fault work per second
	fraction := overheadPerSec / 1e9
	if fraction > 0.9 {
		fraction = 0.9 // the app still makes some progress
	}
	// Speedup of removing that overhead: 1/(1-f) - 1, in percent.
	return (1/(1-fraction) - 1) * 100, nil
}

// pmlBatch is Intel PML's hardware log depth: the CPU logs dirty-page
// addresses and exits to the hypervisor every 512 pages (§8).
const pmlBatch = 512

// pmlDrainCost is one PML-full VM exit plus log processing.
const pmlDrainCost = 5 * time.Microsecond

// PMLOverhead estimates the tracking overhead (as a percent of runtime)
// of Intel Page Modification Logging for this workload at native rate:
// one VM exit per 512 dirty pages instead of one fault per dirty page.
// PML removes most of write-protection's cost but still tracks at page
// granularity, so it inherits Table 2's full dirty-data amplification —
// the comparison the abl-tracking experiment makes.
func PMLOverhead(w *workload.Workload, results []WindowResult, skipStartup int) (float64, error) {
	s := Summarize(results, skipStartup)
	if s.BytesWritten == 0 {
		return 0, fmt.Errorf("ktracker: no writes recorded for %s", w.Name)
	}
	var dirtyPages float64
	for _, r := range results {
		if r.Index >= skipStartup {
			dirtyPages += float64(r.DirtyPages)
		}
	}
	pagesPerSec := dirtyPages / float64(s.BytesWritten) * float64(w.WriteBandwidth)
	drainsPerSec := pagesPerSec / pmlBatch
	return drainsPerSec * float64(pmlDrainCost) / 1e9 * 100, nil
}
