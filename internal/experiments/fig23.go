package experiments

import (
	"errors"
	"io"

	"kona/internal/mem"
	"kona/internal/stats"
	"kona/internal/trace"
	"kona/internal/workload"
)

func init() {
	register("fig2",
		"Accessed cache-lines in a page (Redis) — CDF of pages by touched lines",
		runFig2)
	register("fig3",
		"Contiguous cache-lines in a page (Redis) — CDF of accessed segments by length",
		runFig3)
}

// redisProfiles replays Redis-Rand and Redis-Seq and feeds every window's
// page-access profile to collect.
func redisProfiles(seed int64, quick bool, collect func(name string, kind trace.Kind, bm mem.LineBitmap)) error {
	for _, w := range []*workload.Workload{workload.RedisRand(), workload.RedisSeq()} {
		skip := 0
		if w.Name == "Redis-Rand" {
			skip = 10
		}
		limit := w.Windows
		if quick {
			limit = skip + 10
		}
		win := trace.NewWindower(w.TrackingStream(seed), workload.WindowLen)
		for {
			wd, err := win.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			if wd.Index < skip {
				continue
			}
			if wd.Index >= limit {
				break
			}
			p := trace.NewPageAccessProfile()
			for _, a := range wd.Accesses {
				p.Add(a)
			}
			for _, bm := range p.Reads {
				collect(w.Name, trace.Read, *bm)
			}
			for _, bm := range p.Writes {
				collect(w.Name, trace.Write, *bm)
			}
		}
	}
	return nil
}

// curveName builds the figure's legend labels ("Reads (Rand)", ...).
func curveName(workloadName string, kind trace.Kind) string {
	mode := "Rand"
	if workloadName == "Redis-Seq" {
		mode = "Seq"
	}
	if kind == trace.Write {
		return "Writes (" + mode + ")"
	}
	return "Reads (" + mode + ")"
}

// runFig2 regenerates Fig 2: for each page touched in a window, how many
// of its 64 cache lines were accessed — as a CDF over pages.
func runFig2(cfg Config) (*Result, error) {
	cdfs := map[string]*stats.CDF{}
	err := redisProfiles(cfg.Seed, cfg.Quick, func(name string, kind trace.Kind, bm mem.LineBitmap) {
		key := curveName(name, kind)
		if cdfs[key] == nil {
			cdfs[key] = stats.NewCDF()
		}
		cdfs[key].Add(bm.Count())
	})
	if err != nil {
		return nil, err
	}
	return cdfResult(cdfs, "lines", []int{1, 2, 4, 8, 16, 32, 63, 64},
		"expected shape: Rand skewed to 1-8 lines; Seq has a large fraction at 64 (full page)"), nil
}

// runFig3 regenerates Fig 3: the lengths of maximal contiguous accessed
// segments within pages, as a CDF over segments.
func runFig3(cfg Config) (*Result, error) {
	cdfs := map[string]*stats.CDF{}
	err := redisProfiles(cfg.Seed, cfg.Quick, func(name string, kind trace.Kind, bm mem.LineBitmap) {
		key := curveName(name, kind)
		if cdfs[key] == nil {
			cdfs[key] = stats.NewCDF()
		}
		for _, seg := range bm.Segments() {
			cdfs[key].Add(seg.N)
		}
	})
	if err != nil {
		return nil, err
	}
	return cdfResult(cdfs, "segment length", []int{1, 2, 3, 4, 8, 16, 32, 64},
		"expected shape: most segments are 1-4 lines; Seq has a page-length tail"), nil
}

// cdfResult renders a set of CDFs sampled at the given points.
func cdfResult(cdfs map[string]*stats.CDF, xLabel string, points []int, note string) *Result {
	order := []string{"Reads (Rand)", "Writes (Rand)", "Reads (Seq)", "Writes (Seq)"}
	var series []stats.Series
	for _, name := range order {
		c := cdfs[name]
		if c == nil {
			continue
		}
		s := stats.Series{Name: name}
		for _, p := range points {
			s.Add(float64(p), c.At(p))
		}
		series = append(series, s)
	}
	return &Result{
		Text:   stats.RenderSeries(xLabel, series...),
		Series: series,
		Notes:  []string{note},
	}
}
