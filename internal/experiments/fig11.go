package experiments

import (
	"fmt"
	"time"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
	"kona/internal/rdma"
	"kona/internal/simclock"
	"kona/internal/stats"
)

func init() {
	register("fig11a", "Eviction goodput vs Kona-VM — contiguous dirty cache-lines",
		func(cfg Config) (*Result, error) {
			return runFig11Goodput(cfg, true, []int{1, 2, 4, 6, 8, 12, 16, 32, 64})
		})
	register("fig11b", "Eviction goodput vs Kona-VM — alternate (random) dirty cache-lines",
		func(cfg Config) (*Result, error) {
			return runFig11Goodput(cfg, false, []int{1, 2, 4, 8, 12, 16, 32})
		})
	register("fig11c", "Kona cache-line log eviction time breakdown",
		runFig11c)
}

// fig11Pages is the benchmark region: the paper writes N lines per 4KB
// page over a 1GB region; we scale the page count, which leaves per-page
// costs and therefore goodput ratios unchanged.
func fig11Pages(quick bool) int {
	if quick {
		return 256
	}
	return 2048
}

// dirtyPattern builds the per-page bitmap: n contiguous lines from 0, or
// n alternating (every other) lines — the paper's "random" proxy.
func dirtyPattern(n int, contiguous bool) mem.LineBitmap {
	var bm mem.LineBitmap
	if contiguous {
		bm.SetRange(0, n)
		return bm
	}
	for i := 0; i < n; i++ {
		bm.Set((i * 2) % 64)
	}
	return bm
}

// vmPageCopyFixed mirrors the runtime's per-page copy overhead.
const vmPageCopyFixed = 120 * time.Nanosecond

// fig11Cluster builds a rack for one run.
func fig11Cluster() *cluster.Controller {
	ctrl := cluster.NewController()
	if err := ctrl.Register(cluster.NewMemoryNode(0, 32<<20)); err != nil {
		panic(err)
	}
	return ctrl
}

// konaVMEviction models the baseline: per dirty page, copy all 4KB to the
// registered buffer and RDMA-write the full page, posts linked in batches
// of 16 with unsignaled intermediates.
func konaVMEviction(pages int) simclock.Duration {
	return pagedEviction(pages, mem.PageSize, true)
}

// idealized4KBNoCopy is "4KB writes no-copy": the same full-page writes
// from pre-registered buffers — no local copy (§6.4's idealized baseline).
func idealized4KBNoCopy(pages int) simclock.Duration {
	return pagedEviction(pages, mem.PageSize, false)
}

// pagedEviction runs batched page-granularity RDMA writes.
func pagedEviction(pages int, size int, withCopy bool) simclock.Duration {
	local := rdma.NewEndpoint("bench-local")
	remote := rdma.NewEndpoint("bench-remote")
	buf := local.RegisterMR(mem.PageSize)
	pool := remote.RegisterMR(64 << 20)
	qp := rdma.Connect(local, remote, rdma.DefaultCostModel())
	var now simclock.Duration
	const batch = 16
	var wrs []rdma.WR
	flush := func() {
		if len(wrs) == 0 {
			return
		}
		wrs[len(wrs)-1].Signaled = true
		done, err := qp.PostSend(now, wrs)
		if err != nil {
			panic(err)
		}
		qp.PollCQ()
		now = done
		wrs = wrs[:0]
	}
	for p := 0; p < pages; p++ {
		if withCopy {
			now += vmPageCopyFixed + simclock.Memcpy(size)
		}
		wrs = append(wrs, rdma.WR{
			Op: rdma.OpWrite, Local: buf, RemoteKey: pool.Key(),
			RemoteOff: (p * mem.PageSize) % (32 << 20), Len: size,
		})
		if len(wrs) >= batch {
			flush()
		}
	}
	flush()
	return now
}

// idealizedCLNoCopy is "CL writes no-copy": one RDMA write per dirty
// segment straight from registered memory — great for one or two
// contiguous lines, terrible for many discontiguous ones (§6.4).
func idealizedCLNoCopy(pages int, dirty mem.LineBitmap) simclock.Duration {
	local := rdma.NewEndpoint("bench-local")
	remote := rdma.NewEndpoint("bench-remote")
	buf := local.RegisterMR(mem.PageSize)
	pool := remote.RegisterMR(64 << 20)
	qp := rdma.Connect(local, remote, rdma.DefaultCostModel())
	segs := dirty.Segments()
	var now simclock.Duration
	const batch = 64
	var wrs []rdma.WR
	flush := func() {
		if len(wrs) == 0 {
			return
		}
		wrs[len(wrs)-1].Signaled = true
		done, err := qp.PostSend(now, wrs)
		if err != nil {
			panic(err)
		}
		qp.PollCQ()
		now = done
		wrs = wrs[:0]
	}
	for p := 0; p < pages; p++ {
		for _, seg := range segs {
			wrs = append(wrs, rdma.WR{
				Op: rdma.OpWrite, Local: buf, LocalOff: seg.First * mem.CacheLineSize,
				RemoteKey: pool.Key(),
				RemoteOff: (p*mem.PageSize + seg.First*mem.CacheLineSize) % (32 << 20),
				Len:       seg.N * mem.CacheLineSize,
			})
			if len(wrs) >= batch {
				flush()
			}
		}
	}
	flush()
	return now
}

// runFig11Goodput regenerates Fig 11a (contiguous) or 11b (alternate).
func runFig11Goodput(cfg Config, contiguous bool, counts []int) (*Result, error) {
	pages := fig11Pages(cfg.Quick)
	s4kbNC := stats.Series{Name: "4KB writes no-copy [idealized]"}
	sCLNC := stats.Series{Name: "CL writes no-copy [idealized]"}
	sLog := stats.Series{Name: "Kona's CL log"}
	for _, n := range counts {
		dirty := dirtyPattern(n, contiguous)
		useful := float64(pages * dirty.Count() * mem.CacheLineSize)

		vmTime := konaVMEviction(pages)
		vmGoodput := useful / float64(vmTime)

		logTime, _, _, err := core.EvictionBench(fig11Cluster(), core.DefaultConfig(1<<20), pages, dirty)
		if err != nil {
			return nil, err
		}
		s4kbNC.Add(float64(n), useful/float64(idealized4KBNoCopy(pages))/vmGoodput)
		sCLNC.Add(float64(n), useful/float64(idealizedCLNoCopy(pages, dirty))/vmGoodput)
		sLog.Add(float64(n), useful/float64(logTime)/vmGoodput)
	}
	axis := "contiguous dirty CLs (goodput vs Kona-VM)"
	if !contiguous {
		axis = "alternate dirty CLs (goodput vs Kona-VM)"
	}
	series := []stats.Series{s4kbNC, sCLNC, sLog}
	res := &Result{
		Text:   stats.RenderSeries(axis, series...),
		Series: series,
	}
	if contiguous {
		res.Notes = append(res.Notes,
			"expected shape: CL log 4-5x at 1-4 contiguous lines, converging toward Kona-VM at 64; 4KB-no-copy ~1.5x flat; CL-no-copy strong at 1-2, collapsing at many segments")
	} else {
		res.Notes = append(res.Notes,
			"expected shape: CL log 2-3x at 2-4 alternate lines, dropping below Kona-VM for many discontiguous lines (paper: >16; our fixed per-segment costs cross earlier, ~8-12)")
	}
	return res, nil
}

// runFig11c regenerates the time breakdown at 1, 8 and 64 contiguous
// dirty lines.
func runFig11c(cfg Config) (*Result, error) {
	pages := fig11Pages(cfg.Quick)
	t := stats.NewTable("contig CLs", "Bitmap %", "Copy %", "RDMA write %", "Ack wait %", "total ms")
	var series []stats.Series
	for _, n := range []int{1, 8, 64} {
		dirty := dirtyPattern(n, true)
		_, b, _, err := core.EvictionBench(fig11Cluster(), core.DefaultConfig(1<<20), pages, dirty)
		if err != nil {
			return nil, err
		}
		total := b.Total()
		pct := func(d simclock.Duration) float64 { return 100 * float64(d) / float64(total) }
		t.AddRow(n, pct(b.Bitmap), pct(b.Copy), pct(b.RDMAWrite), pct(b.AckWait),
			float64(total)/1e6)
		series = append(series, stats.Series{Name: fmt.Sprintf("N=%d", n), Points: []stats.Point{
			{X: 0, Y: pct(b.Bitmap)}, {X: 1, Y: pct(b.Copy)},
			{X: 2, Y: pct(b.RDMAWrite)}, {X: 3, Y: pct(b.AckWait)},
		}})
	}
	return &Result{
		Text:   t.String(),
		Series: series,
		Notes: []string{
			"expected shape: Copy dominates; RDMA write and Bitmap 15-20% each; Ack wait small (§6.4)",
		},
	}, nil
}
