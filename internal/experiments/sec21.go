package experiments

import (
	"fmt"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/kcachesim"
	"kona/internal/mem"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("sec21", "Motivation (§2.1): remote access latencies and Redis throughput degradation",
		runSec21)
}

// runSec21 reproduces the motivating measurements: the per-system remote
// fetch latency (Infiniswap >40µs, LegoOS 10µs, RDMA itself 3µs, Kona
// ~3µs) and the Redis throughput collapse when only 25% of data is remote.
func runSec21(cfg Config) (*Result, error) {
	res := &Result{}

	// 1. Remote fetch latency per system: measured on the runtimes where
	// we have one, from the published model constants otherwise.
	lat := stats.NewTable("System", "remote 4KB fetch", "paper")
	konaLatency, vmLatency, err := measuredFetchLatencies()
	if err != nil {
		return nil, err
	}
	lat.AddRow("RDMA read (raw)", "2.98µs", "~3µs")
	lat.AddRow("Kona (no page fault)", konaLatency, "n/a (new)")
	lat.AddRow("Kona-VM / LegoOS class", vmLatency, "~10µs")
	lat.AddRow("Infiniswap", "40µs (modeled)", ">40µs")

	// 2. Redis throughput vs fraction of remote data, per system:
	// throughput scales as 1/AMAT.
	w := workload.RedisRand()
	thr := stats.NewTable("Local cache", "Kona", "LegoOS", "Infiniswap")
	baseline := map[kcachesim.System]float64{}
	var dropAt75 float64
	for _, pct := range []float64{100, 75, 50, 25} {
		row := []any{fmt.Sprintf("%.0f%%", pct)}
		for _, sys := range []kcachesim.System{kcachesim.Kona, kcachesim.LegoOS, kcachesim.Infiniswap} {
			r, err := kcachesim.Run(sys, kcachesim.Config{
				Workload: w, Accesses: fig8Accesses(cfg.Quick), Seed: cfg.Seed, CachePct: pct,
			})
			if err != nil {
				return nil, err
			}
			if pct == 100 {
				baseline[sys] = r.AMATns
			}
			rel := baseline[sys] / r.AMATns
			if sys == kcachesim.Infiniswap && pct == 75 {
				dropAt75 = 1 - rel
			}
			row = append(row, fmt.Sprintf("%.0f%%", rel*100))
		}
		thr.AddRow(row...)
	}

	res.Text = lat.String() + "\nRedis relative throughput by local cache size:\n" + thr.String()
	res.Notes = append(res.Notes, fmt.Sprintf(
		"moving 25%% of data remote costs Infiniswap %.0f%% of its throughput (paper: >60%%)", dropAt75*100))
	return res, nil
}

// measuredFetchLatencies measures one cold page fetch on each runtime.
func measuredFetchLatencies() (kona, vm string, err error) {
	mk := func() *cluster.Controller {
		ctrl := cluster.NewController()
		if err := ctrl.Register(cluster.NewMemoryNode(0, 64<<20)); err != nil {
			panic(err)
		}
		return ctrl
	}
	cfg := core.DefaultConfig(1 << 20)
	cfg.Prefetch = false
	k := core.NewKona(cfg, mk())
	addr, err := k.Malloc(mem.PageSize)
	if err != nil {
		return "", "", err
	}
	buf := make([]byte, 64)
	kd, err := k.Read(0, addr, buf)
	if err != nil {
		return "", "", err
	}
	kv := core.NewKonaVM(core.DefaultConfig(1<<20), mk())
	vaddr, err := kv.Malloc(mem.PageSize)
	if err != nil {
		return "", "", err
	}
	vd, err := kv.Read(0, vaddr, buf)
	if err != nil {
		return "", "", err
	}
	return kd.String(), vd.String(), nil
}
