package experiments

import (
	"fmt"

	"kona/internal/kcachesim"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("abl-hwprefetch",
		"Ablation: hardware prefetching into the DRAM cache (§3/§6.2 'our results are conservative for Kona')",
		runAblHWPrefetch)
}

// runAblHWPrefetch quantifies the sentence the paper leaves unplotted: Fig
// 8's simulations ran with prefetching off, making them conservative for
// Kona — page-based systems cannot prefetch across a fault boundary, Kona
// can. We re-run the Redis-Rand AMAT comparison with the DRAM cache's
// next-block prefetcher enabled for Kona (the baselines cannot use it and
// keep their curves).
func runAblHWPrefetch(cfg Config) (*Result, error) {
	w := workload.RedisRand()
	run := func(sys kcachesim.System, pct float64, pf bool) (float64, error) {
		r, err := kcachesim.Run(sys, kcachesim.Config{
			Workload: w, Accesses: fig8Accesses(cfg.Quick), Seed: cfg.Seed,
			CachePct: pct, HWPrefetch: pf,
		})
		return r.AMATns, err
	}
	t := stats.NewTable("cache %", "Kona", "Kona+prefetch", "LegoOS", "LegoOS/Kona", "LegoOS/Kona+pf")
	sOff := stats.Series{Name: "Kona"}
	sOn := stats.Series{Name: "Kona+prefetch"}
	for _, pct := range []float64{10, 25, 50, 75} {
		off, err := run(kcachesim.Kona, pct, false)
		if err != nil {
			return nil, err
		}
		on, err := run(kcachesim.Kona, pct, true)
		if err != nil {
			return nil, err
		}
		lego, err := run(kcachesim.LegoOS, pct, true) // flag ignored for baselines
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", pct), off, on, lego, lego/off, lego/on)
		sOff.Add(pct, off)
		sOn.Add(pct, on)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{sOff, sOn},
		Notes: []string{
			"§3: 'eliminating page faults ... enables the CPU to prefetch more data, even from remote memory'; Fig 8 was run prefetch-off, so the published 1.7x is a lower bound — this table shows the extra margin",
		},
	}, nil
}
