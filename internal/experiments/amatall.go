package experiments

import (
	"kona/internal/kcachesim"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("ext-amat",
		"Extension: AMAT across all nine workloads (Fig 8's sweep, full breadth)",
		runExtAMAT)
}

// runExtAMAT extends Fig 8 to every Table 2 workload at the 25%-cache
// operating point the paper highlights, reporting the LegoOS/Kona and
// Infiniswap/Kona ratios per workload. The paper showed three workloads;
// this is the full matrix its simulator could have produced.
func runExtAMAT(cfg Config) (*Result, error) {
	systems := []kcachesim.System{kcachesim.Kona, kcachesim.LegoOS, kcachesim.Infiniswap}
	type row struct {
		index int // Table 2 row index (the series' x value)
		w     *workload.Workload
	}
	var rows []row
	for i, w := range workload.All() {
		if cfg.Quick && i%3 != 0 {
			continue
		}
		rows = append(rows, row{index: i, w: w})
	}
	// The full workload x system matrix runs as one flat grid of
	// independent simulations.
	amats := make([]float64, len(rows)*len(systems))
	if err := forEach(cfg.workers(), len(amats), func(i int) error {
		r, err := kcachesim.Run(systems[i%len(systems)], kcachesim.Config{
			Workload: rows[i/len(systems)].w, Accesses: fig8Accesses(cfg.Quick),
			Seed: cfg.Seed, CachePct: 25,
		})
		amats[i] = r.AMATns
		return err
	}); err != nil {
		return nil, err
	}
	t := stats.NewTable("Workload", "Kona ns", "LegoOS ns", "Infiniswap ns", "Lego/Kona", "Iswap/Kona")
	ratios := stats.Series{Name: "LegoOS/Kona"}
	for ri, r := range rows {
		kona, lego, iswap := amats[ri*len(systems)], amats[ri*len(systems)+1], amats[ri*len(systems)+2]
		t.AddRow(r.w.Name, kona, lego, iswap, lego/kona, iswap/kona)
		ratios.Add(float64(r.index), lego/kona)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{ratios},
		Notes: []string{
			"25% local cache; random-access workloads sit near the paper's 1.7x/5x headline, streaming ones lower (little for any system to win on)",
		},
	}, nil
}
