package experiments

import (
	"kona/internal/kcachesim"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("ext-amat",
		"Extension: AMAT across all nine workloads (Fig 8's sweep, full breadth)",
		runExtAMAT)
}

// runExtAMAT extends Fig 8 to every Table 2 workload at the 25%-cache
// operating point the paper highlights, reporting the LegoOS/Kona and
// Infiniswap/Kona ratios per workload. The paper showed three workloads;
// this is the full matrix its simulator could have produced.
func runExtAMAT(cfg Config) (*Result, error) {
	t := stats.NewTable("Workload", "Kona ns", "LegoOS ns", "Infiniswap ns", "Lego/Kona", "Iswap/Kona")
	ratios := stats.Series{Name: "LegoOS/Kona"}
	for i, w := range workload.All() {
		if cfg.Quick && i%3 != 0 {
			continue
		}
		amat := map[kcachesim.System]float64{}
		for _, sys := range []kcachesim.System{kcachesim.Kona, kcachesim.LegoOS, kcachesim.Infiniswap} {
			r, err := kcachesim.Run(sys, kcachesim.Config{
				Workload: w, Accesses: fig8Accesses(cfg.Quick), Seed: cfg.Seed, CachePct: 25,
			})
			if err != nil {
				return nil, err
			}
			amat[sys] = r.AMATns
		}
		t.AddRow(w.Name, amat[kcachesim.Kona], amat[kcachesim.LegoOS], amat[kcachesim.Infiniswap],
			amat[kcachesim.LegoOS]/amat[kcachesim.Kona],
			amat[kcachesim.Infiniswap]/amat[kcachesim.Kona])
		ratios.Add(float64(i), amat[kcachesim.LegoOS]/amat[kcachesim.Kona])
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{ratios},
		Notes: []string{
			"25% local cache; random-access workloads sit near the paper's 1.7x/5x headline, streaming ones lower (little for any system to win on)",
		},
	}, nil
}
