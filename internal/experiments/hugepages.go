package experiments

import (
	"errors"
	"fmt"
	"io"

	"kona/internal/mem"
	"kona/internal/stats"
	"kona/internal/trace"
	"kona/internal/vm"
	"kona/internal/workload"
)

func init() {
	register("abl-hugepages",
		"Ablation: huge pages — amplification vs TLB reach (§2.1/§3)",
		runAblHugePages)
}

// runAblHugePages replays Redis-Rand against four tracking regimes and
// reports, per regime, the dirty-data amplification and the TLB entries
// needed to map the footprint:
//
//   - 2MB pages, whole-page WP tracking: best TLB reach, catastrophic
//     amplification (Table 2's middle column);
//   - 2MB pages split on first write (§2.1's mitigation): 4KB
//     amplification but the split regions lose their TLB reach;
//   - 4KB pages: baseline page tracking;
//   - Kona: cache-line tracking with huge-page translation — both good,
//     because tracking is decoupled from the page size (§3).
func runAblHugePages(cfg Config) (*Result, error) {
	w := workload.RedisRand()
	if cfg.Quick {
		w.Windows = 25
	}
	const skip = 10

	whole := vm.NewHugeAddressSpace()
	split := vm.NewHugeAddressSpace()
	footprint := mem.Range{Start: 0, Len: w.Footprint}
	whole.Map(footprint, false)
	split.Map(footprint, false)

	var bytesWritten, wholeDirty, splitDirty, dirty4K, dirtyCL uint64
	win := trace.NewWindower(w.TrackingStream(cfg.Seed), workload.WindowLen)
	for {
		wd, err := win.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if wd.Index < skip {
			continue
		}
		for _, a := range wd.Accesses {
			if a.Kind != trace.Write || a.Size == 0 {
				continue
			}
			if whole.Touch(a.Addr, true) == vm.WriteProtectFault {
				if err := whole.ResolveWPWhole(a.Addr); err != nil {
					return nil, err
				}
			}
			if split.Touch(a.Addr, true) == vm.WriteProtectFault {
				if err := split.ResolveWPSplit(a.Addr); err != nil {
					return nil, err
				}
			}
		}
		d := trace.WindowDirtyStats(wd)
		bytesWritten += d.BytesWritten
		dirty4K += d.DirtyPages4K * mem.PageSize
		dirtyCL += d.DirtyLines * mem.CacheLineSize
		wholeDirty += whole.DirtyBytes(footprint)
		splitDirty += split.DirtyBytes(footprint)
		// Window boundary: writeback + re-arm both huge spaces.
		whole = vm.NewHugeAddressSpace()
		rearm(whole, split, footprint)
	}
	if bytesWritten == 0 {
		return nil, errors.New("no writes replayed")
	}

	hugePages := int(w.Footprint / mem.HugePageSize)
	amp := func(dirty uint64) float64 { return float64(dirty) / float64(bytesWritten) }
	t := stats.NewTable("Regime", "amplification", "TLB entries for footprint")
	t.AddRow("2MB, whole-page tracking", amp(wholeDirty), hugePages)
	t.AddRow("2MB, split-on-write", amp(splitDirty), split.TLBReach())
	t.AddRow("4KB pages", amp(dirty4K), int(w.Footprint/mem.PageSize))
	t.AddRow("Kona (CL tracking + 2MB translation)", amp(dirtyCL), hugePages)
	return &Result{
		Text: t.String(),
		Series: []stats.Series{{Name: "amplification", Points: []stats.Point{
			{X: 0, Y: amp(wholeDirty)}, {X: 1, Y: amp(splitDirty)},
			{X: 2, Y: amp(dirty4K)}, {X: 3, Y: amp(dirtyCL)},
		}}},
		Notes: []string{fmt.Sprintf(
			"§3: 'Kona enables applications to benefit from huge pages without suffering from data movement amplification' — only the last row keeps both columns small; split-on-write lost TLB reach on %d of %d regions",
			(split.TLBReach()-hugePages)/511, hugePages)},
	}, nil
}

// rearm rebuilds the whole-page space and re-protects the split space's
// mappings for the next window (splits persist; protection resets).
func rearm(whole, split *vm.HugeAddressSpace, footprint mem.Range) {
	whole.Map(footprint, false)
	split.WriteProtectAll()
}
