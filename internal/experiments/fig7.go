package experiments

import (
	"fmt"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/stats"
	"kona/internal/telemetry"
)

func init() {
	register("fig7",
		"Kona and Kona-VM microbenchmark: read+write 1 cache line per page, 1/2/4 threads",
		runFig7)
}

// fig7PagesPerThread scales the paper's 4GB-per-thread region (the
// runtime moves real bytes per page, so the region is scaled 256x; the
// per-page work ratio between systems is size-independent).
const fig7PagesPerThread = 4096

// accessor is a runtime under the Fig 7 microbenchmark.
type accessor interface {
	Malloc(size uint64) (mem.Addr, error)
	Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error)
	Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error)
}

// fig7Cluster builds a fresh rack for one variant run.
func fig7Cluster(totalBytes uint64) *cluster.Controller {
	ctrl := cluster.NewController()
	// Two memory nodes with ample room.
	for i := 0; i < 2; i++ {
		if err := ctrl.Register(cluster.NewMemoryNode(i, 2*totalBytes+(64<<20))); err != nil {
			panic(err)
		}
	}
	return ctrl
}

// fig7Run executes the microbenchmark on a runtime: each thread reads and
// writes one cache line in every page of its private region, threads
// interleaving round-robin. It returns the benchmark's completion time
// (the slowest thread).
func fig7Run(rt accessor, threads, pagesPerThread int) (simclock.Duration, error) {
	regions := make([]mem.Addr, threads)
	for i := range regions {
		addr, err := rt.Malloc(uint64(pagesPerThread) * mem.PageSize)
		if err != nil {
			return 0, err
		}
		regions[i] = addr
	}
	// Threads are simulated in virtual-time order: at each step the
	// thread with the earliest clock executes its next operation, so
	// shared resources (NIC, FPGA directory, fault path) see causally
	// ordered arrivals.
	clocks := make([]simclock.Duration, threads)
	pageIdx := make([]int, threads)
	writePhase := make([]bool, threads)
	buf := make([]byte, mem.CacheLineSize)
	remaining := threads
	for remaining > 0 {
		th := -1
		for i := 0; i < threads; i++ {
			if pageIdx[i] >= pagesPerThread {
				continue
			}
			if th < 0 || clocks[i] < clocks[th] {
				th = i
			}
		}
		addr := regions[th] + mem.Addr(pageIdx[th]*mem.PageSize)
		var err error
		if !writePhase[th] {
			clocks[th], err = rt.Read(clocks[th], addr, buf)
			writePhase[th] = true
		} else {
			clocks[th], err = rt.Write(clocks[th], addr, buf)
			writePhase[th] = false
			pageIdx[th]++
			if pageIdx[th] >= pagesPerThread {
				remaining--
			}
		}
		if err != nil {
			return 0, fmt.Errorf("thread %d page %d: %w", th, pageIdx[th], err)
		}
	}
	var latest simclock.Duration
	for _, c := range clocks {
		if c > latest {
			latest = c
		}
	}
	return latest, nil
}

// fig7Variant builds and runs one system variant. reg (nil = disabled)
// instruments the runtime's data path so -telemetry runs of the artifact
// expose fetch/eviction counters.
func fig7Variant(name string, threads, pages int, reg *telemetry.Registry) (simclock.Duration, error) {
	total := uint64(threads*pages) * mem.PageSize
	ctrl := fig7Cluster(total)
	cacheBytes := total / 2 // 50% local cache (§6.1)
	noEvict := name == "Kona-NoEvict" || name == "Kona-VM-NoEvict" || name == "Kona-VM-NoWP"
	if noEvict {
		cacheBytes = total * 2 // never fills: eviction disabled
	}
	cfg := core.DefaultConfig(cacheBytes)
	cfg.SlabSize = uint64(pages) * mem.PageSize
	cfg.Metrics = reg

	switch name {
	case "Kona", "Kona-NoEvict":
		return fig7Run(core.NewKona(cfg, ctrl), threads, pages)
	case "Kona-VM", "Kona-VM-NoEvict", "Kona-VM-NoWP":
		rt := core.NewKonaVM(cfg, ctrl)
		rt.EvictEnabled = !noEvict
		rt.WriteProtect = name != "Kona-VM-NoWP"
		return fig7Run(rt, threads, pages)
	default:
		return 0, fmt.Errorf("unknown variant %q", name)
	}
}

// fig7Variants is the figure's x-axis grouping.
var fig7Variants = []string{"Kona", "Kona-VM", "Kona-NoEvict", "Kona-VM-NoEvict", "Kona-VM-NoWP"}

// runFig7 regenerates Fig 7.
func runFig7(cfg Config) (*Result, error) {
	pages := fig7PagesPerThread
	if cfg.Quick {
		pages = 512
	}
	threadCounts := []int{1, 2, 4}
	var series []stats.Series
	times := map[string]map[int]simclock.Duration{}
	for _, v := range fig7Variants {
		s := stats.Series{Name: v}
		times[v] = map[int]simclock.Duration{}
		for _, th := range threadCounts {
			d, err := fig7Variant(v, th, pages, cfg.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s/%d threads: %w", v, th, err)
			}
			times[v][th] = d
			s.Add(float64(th), float64(d)/1e6) // milliseconds
		}
		series = append(series, s)
	}
	res := &Result{
		Text:   stats.RenderSeries("threads (time in ms)", series...),
		Series: series,
	}
	for _, th := range threadCounts {
		r := float64(times["Kona-VM"][th]) / float64(times["Kona"][th])
		rn := float64(times["Kona-VM-NoEvict"][th]) / float64(times["Kona-NoEvict"][th])
		rw := float64(times["Kona-VM-NoWP"][th]) / float64(times["Kona-NoEvict"][th])
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%d thread(s): Kona %.1fx faster than Kona-VM (paper: 6.6x@1T, 4-5x@2-4T); NoEvict %.1fx (paper 3-5x); NoWP still %.1fx slower than Kona (paper 1.2-2.9x)",
			th, r, rn, rw))
	}
	return res, nil
}
