package experiments

import (
	"fmt"

	"kona/internal/kcachesim"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("fig8a", "AMAT vs cache size — Redis Rand (LegoOS/Kona/Kona-main)",
		fig8Sweep(workload.RedisRand))
	register("fig8b", "AMAT vs cache size — Linear Regression (LegoOS/Kona/Kona-main)",
		fig8Sweep(workload.LinearRegression))
	register("fig8c", "AMAT vs cache size — Graph Coloring (LegoOS/Kona/Kona-main)",
		fig8Sweep(workload.GraphColoring))
	register("fig8d", "AMAT vs fetch block size — Redis Rand at 0/27/54/100% cache",
		runFig8d)
}

// fig8Systems are the curves of Figs 8a-8c. Infiniswap is simulated but
// omitted from the figures as in the paper ("consistently worse than
// LegoOS by 2.3-3.7X, so we do not show it on the graphs").
var fig8Systems = []kcachesim.System{kcachesim.LegoOS, kcachesim.Kona, kcachesim.KonaMain}

// fig8Accesses sizes the simulated trace.
func fig8Accesses(quick bool) int {
	if quick {
		return 60000
	}
	return 400000
}

// fig8Sweep builds the cache-size sweep driver for one workload. All
// (system, cache-size) points — plus the Infiniswap reference point — are
// independent simulations over the same cached trace, so they run
// concurrently on the engine's pool; the series are assembled afterwards
// in the fixed system/percent order.
func fig8Sweep(mk func() *workload.Workload) Runner {
	return func(cfg Config) (*Result, error) {
		w := mk()
		cachePcts := []float64{5, 10, 25, 50, 75, 100}
		type point struct {
			sys kcachesim.System
			pct float64
		}
		var pts []point
		for _, sys := range fig8Systems {
			for _, pct := range cachePcts {
				pts = append(pts, point{sys, pct})
			}
		}
		pts = append(pts, point{kcachesim.Infiniswap, 25}) // headline reference
		amats := make([]float64, len(pts))
		if err := forEach(cfg.workers(), len(pts), func(i int) error {
			r, err := kcachesim.Run(pts[i].sys, kcachesim.Config{
				Workload: w, Accesses: fig8Accesses(cfg.Quick),
				Seed: cfg.Seed, CachePct: pts[i].pct,
			})
			amats[i] = r.AMATns
			return err
		}); err != nil {
			return nil, err
		}
		var series []stats.Series
		for si, sys := range fig8Systems {
			s := stats.Series{Name: sys.String()}
			for pi, pct := range cachePcts {
				s.Add(pct, amats[si*len(cachePcts)+pi])
			}
			series = append(series, s)
		}
		res := &Result{
			Text:   stats.RenderSeries("cache % (AMAT in ns)", series...),
			Series: series,
		}
		// Report the paper's headline comparison at 25% cache.
		lego, _ := series[0].YAt(25)
		kona, _ := series[1].YAt(25)
		iswap := amats[len(pts)-1]
		res.Notes = append(res.Notes, fmt.Sprintf(
			"at 25%% cache: LegoOS/Kona = %.2fx (paper ~1.7x for Redis), Infiniswap/Kona = %.2fx (paper ~5x); Infiniswap omitted from curves as in the paper",
			lego/kona, iswap/kona))
		return res, nil
	}
}

// runFig8d regenerates the block-size sweep (Fig 8d); the cache-percent x
// block-size grid runs concurrently like the fig8a-c sweeps.
func runFig8d(cfg Config) (*Result, error) {
	w := workload.RedisRand()
	blocks := []uint64{64, 256, 1024, 4096, 8192, 16384, 32768}
	cachePcts := []float64{0, 27, 54, 100}
	amats := make([]float64, len(cachePcts)*len(blocks))
	if err := forEach(cfg.workers(), len(amats), func(i int) error {
		r, err := kcachesim.Run(kcachesim.Kona, kcachesim.Config{
			Workload: w, Accesses: fig8Accesses(cfg.Quick),
			Seed: cfg.Seed, CachePct: cachePcts[i/len(blocks)], BlockSize: blocks[i%len(blocks)],
		})
		amats[i] = r.AMATns
		return err
	}); err != nil {
		return nil, err
	}
	var series []stats.Series
	for pi, pct := range cachePcts {
		s := stats.Series{Name: fmt.Sprintf("cache %.0f%%", pct)}
		for bi, b := range blocks {
			s.Add(float64(b)/1024, amats[pi*len(blocks)+bi])
		}
		series = append(series, s)
	}
	return &Result{
		Text:   stats.RenderSeries("block KB (AMAT in ns)", series...),
		Series: series,
		Notes: []string{
			"expected shape: ~1KB minimizes AMAT; 64B wastes spatial locality; large blocks raise transfer cost/conflicts; 4KB within a small margin (the paper's pick)",
		},
	}, nil
}
