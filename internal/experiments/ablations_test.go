package experiments

import (
	"strings"
	"testing"
)

func TestAblPrefetch(t *testing.T) {
	res := runID(t, "abl-prefetch", quickCfg())
	var on, off float64
	for _, p := range res.Series[0].Points {
		if p.X == 1 {
			on = p.Y
		} else {
			off = p.Y
		}
	}
	if on > off {
		t.Errorf("abl-prefetch: prefetch on (%.2fms) must not be slower than off (%.2fms)", on, off)
	}
}

func TestAblScatterGather(t *testing.T) {
	res := runID(t, "abl-sg", quickCfg())
	// The paper found SG consistently worse: at every point SG per-page
	// time exceeds the CL log's.
	logS, sgS := res.Series[0], res.Series[1]
	for i := range logS.Points {
		if sgS.Points[i].Y <= logS.Points[i].Y {
			t.Errorf("abl-sg: scatter-gather (%.2f) not worse than CL log (%.2f) at %v lines",
				sgS.Points[i].Y, logS.Points[i].Y, logS.Points[i].X)
		}
	}
}

func TestAblReplicas(t *testing.T) {
	res := runID(t, "abl-replicas", quickCfg())
	s := res.Series[0]
	// Eviction time grows with replicas but sub-linearly (shared copies).
	y1, _ := s.YAt(1)
	y2, _ := s.YAt(2)
	y3, _ := s.YAt(3)
	if !(y1 < y2 && y2 < y3) {
		t.Errorf("abl-replicas: time must grow with replicas: %v %v %v", y1, y2, y3)
	}
	if y3 > 3*y1 {
		t.Errorf("abl-replicas: 3 replicas cost %.2fx of 1; copies should share the bitmap+copy work", y3/y1)
	}
}

func TestAblFlush(t *testing.T) {
	res := runID(t, "abl-flush", quickCfg())
	s := res.Series[0]
	small, _ := s.YAt(4)
	large, _ := s.YAt(256)
	if small <= large {
		t.Errorf("abl-flush: 4KB threshold (%.2fms) should cost more than 256KB (%.2fms)", small, large)
	}
}

func TestAblAssoc(t *testing.T) {
	res := runID(t, "abl-assoc", quickCfg())
	s := res.Series[0]
	var lo, hi float64
	for i, p := range s.Points {
		if i == 0 || p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	// §6.2: associativity does not significantly impact latency.
	if (hi-lo)/lo > 0.25 {
		t.Errorf("abl-assoc: associativity spread %.1f%%, expected modest", 100*(hi-lo)/lo)
	}
}

func TestAblTracking(t *testing.T) {
	res := runID(t, "abl-tracking", quickCfg())
	if !strings.Contains(res.Text, "Redis-Rand") || !strings.Contains(res.Text, "PML") {
		t.Fatalf("abl-tracking output incomplete:\n%s", res.Text)
	}
	// The note carries the point: PML keeps page-granularity amplification.
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "amplification") {
		t.Errorf("abl-tracking: missing the amplification note")
	}
}

func TestAblHWPrefetch(t *testing.T) {
	res := runID(t, "abl-hwprefetch", quickCfg())
	// Prefetch must lower (or match) Kona's AMAT at every cache size.
	off, on := res.Series[0], res.Series[1]
	improvedSomewhere := false
	for i := range off.Points {
		if on.Points[i].Y > off.Points[i].Y*1.02 {
			t.Errorf("abl-hwprefetch: prefetch hurt at %v%% cache: %.2f vs %.2f",
				off.Points[i].X, on.Points[i].Y, off.Points[i].Y)
		}
		if on.Points[i].Y < off.Points[i].Y*0.98 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Errorf("abl-hwprefetch: prefetch never helped")
	}
}

func TestExtLeap(t *testing.T) {
	res := runID(t, "ext-leap", quickCfg())
	s := res.Series[0]
	d1, _ := s.YAt(1)
	d8, _ := s.YAt(8)
	if d8 >= d1 {
		t.Errorf("ext-leap: depth-8 stride (%.2fms) should beat depth-1 next-page (%.2fms) on a stride-2 pattern", d8, d1)
	}
	// Monotone improvement with depth.
	prev := d1
	for _, depth := range []float64{2, 4, 8} {
		y, _ := s.YAt(depth)
		if y > prev*1.05 {
			t.Errorf("ext-leap: depth %v regressed: %.2f vs %.2f", depth, y, prev)
		}
		prev = y
	}
}

func TestExtAMAT(t *testing.T) {
	res := runID(t, "ext-amat", quickCfg())
	for _, p := range res.Series[0].Points {
		if p.Y < 1 {
			t.Errorf("ext-amat: LegoOS/Kona ratio %.2f < 1 at workload %v", p.Y, p.X)
		}
	}
}

func TestExtBW(t *testing.T) {
	res := runID(t, "ext-bw", quickCfg())
	// Page-granularity writeback time shrinks with line rate but stays
	// far above CL-granularity at every rate.
	if !strings.Contains(res.Text, "10Gbps") || !strings.Contains(res.Text, "200Gbps") {
		t.Fatalf("missing sweep rows:\n%s", res.Text)
	}
	s := res.Series[0]
	y10, _ := s.YAt(10)
	y200, _ := s.YAt(200)
	if y10 <= y200 {
		t.Errorf("ext-bw: wire time must shrink with line rate (%.2f vs %.2f)", y10, y200)
	}
}

func TestExtOverhead(t *testing.T) {
	res := runID(t, "ext-overhead", quickCfg())
	for _, want := range []string{"KCacheSim", "KTracker", "43x"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("ext-overhead missing %q", want)
		}
	}
}

func TestAblFetchGran(t *testing.T) {
	res := runID(t, "abl-fetchgran", quickCfg())
	s := res.Series[0]
	t64, _ := s.YAt(64)
	t4096, _ := s.YAt(4096)
	if t64 >= t4096 {
		t.Errorf("abl-fetchgran: 64B fetch (%.2fms) should beat 4KB (%.2fms) on one-line-per-page access", t64, t4096)
	}
	if !strings.Contains(res.Text, "64x") {
		t.Errorf("transfer-waste column missing:\n%s", res.Text)
	}
}
