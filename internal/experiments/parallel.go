package experiments

// The parallel experiment engine's execution primitive. Both fan-out
// levels — RunAll over artifacts and each driver over its sweep points —
// funnel through forEach, so the determinism argument is made once:
//
//   - every unit of work i derives all randomness from the Config seed
//     (never from execution order, time, or shared RNG state), and
//   - results land in slot i of a pre-sized slice, read only after the
//     pool drains, with all rendering done afterwards in index order.
//
// Nested use (a driver's sweep inside RunAll's artifact pool) can run up
// to workers² goroutines momentarily; they are CPU-bound and merely
// timeshare, so no cross-level token accounting is attempted.

import (
	"errors"
	"runtime"
	"sync"
)

// workers resolves the Config's worker bound: 0 means GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1) on at most workers goroutines and returns the
// per-index errors joined in index order. workers <= 1 runs inline — the
// serial reference execution the determinism tests compare against.
func forEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
