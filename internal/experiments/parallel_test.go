package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got := make([]int, 100)
		err := forEach(workers, len(got), func(i int) error {
			got[i] = i * i
			if i%30 == 7 {
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
		if err == nil {
			t.Fatalf("workers=%d: errors dropped", workers)
		}
		// All failing units are reported, in index order.
		msg := err.Error()
		for _, want := range []string{"unit 7 failed", "unit 37 failed", "unit 67 failed", "unit 97 failed"} {
			if !strings.Contains(msg, want) {
				t.Errorf("workers=%d: joined error missing %q: %v", workers, want, msg)
			}
		}
		if i7, i37 := strings.Index(msg, "unit 7 "), strings.Index(msg, "unit 37 "); i7 > i37 {
			t.Errorf("workers=%d: errors not in index order: %v", workers, msg)
		}
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	var mu sync.Mutex
	err := forEach(workers, 50, func(i int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > max.Load() {
			max.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent units, bound is %d", m, workers)
	}
}

// TestRunAllAggregatesErrors injects two failing artifacts and checks
// RunAll still returns every successful result with both failures joined.
func TestRunAllAggregatesErrors(t *testing.T) {
	boom := errors.New("synthetic failure")
	for _, id := range []string{"zz-fail-1", "zz-fail-2"} {
		registry[id] = entry{title: "injected failure", runner: func(Config) (*Result, error) {
			return nil, boom
		}}
	}
	defer delete(registry, "zz-fail-1")
	defer delete(registry, "zz-fail-2")

	cfg := quickCfg()
	cfg.Workers = 4
	results, err := RunAll(cfg)
	if err == nil {
		t.Fatal("RunAll swallowed failures")
	}
	if !errors.Is(err, boom) {
		t.Errorf("joined error does not wrap the cause: %v", err)
	}
	if n := strings.Count(err.Error(), "synthetic failure"); n != 2 {
		t.Errorf("joined error reports %d failures, want 2: %v", n, err)
	}
	if len(results) != len(IDs())-2 {
		t.Errorf("RunAll returned %d results, want the %d successes", len(results), len(IDs())-2)
	}
	for _, r := range results {
		if strings.HasPrefix(r.ID, "zz-fail") {
			t.Errorf("failed artifact %s produced a result", r.ID)
		}
	}
}

// TestParallelRunAllDeterministic is the engine's core contract: for a
// fixed seed, the parallel run renders byte-identically to the fully
// serial run — for every artifact except those flagged WallClock
// (ext-overhead embeds a live self-measurement).
func TestParallelRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every artifact twice")
	}
	cfgSerial := Config{Quick: true, Seed: 42, Workers: 1}
	serial, err := RunAll(cfgSerial)
	if err != nil {
		t.Fatal(err)
	}
	cfgPar := Config{Quick: true, Seed: 42, Workers: runtime.GOMAXPROCS(0)}
	parallel, err := RunAll(cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d results, parallel %d", len(serial), len(parallel))
	}
	compared := 0
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.ID != p.ID {
			t.Fatalf("result order diverged at %d: %s vs %s", i, s.ID, p.ID)
		}
		if s.WallClock {
			continue
		}
		if s.String() != p.String() {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				s.ID, s.String(), p.String())
		}
		compared++
	}
	if compared < len(IDs())-1 {
		t.Errorf("only %d artifacts under the determinism contract", compared)
	}
}
