package experiments

import (
	"fmt"

	"kona/internal/ktracker"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("fig9", "4KB-page vs cache-line dirty amplification per 1s window (Redis)",
		runFig9)
	register("fig10", "Dirty-tracking speedup relative to write-protection",
		runFig10)
}

// runFig9 regenerates Fig 9: the per-window ratio of 4KB-tracking to
// cache-line-tracking amplification for Redis-Rand and Redis-Seq, measured
// by KTracker's snapshot diffing.
func runFig9(cfg Config) (*Result, error) {
	ws := []*workload.Workload{workload.RedisRand(), workload.RedisSeq()}
	tracked := make([][]ktracker.WindowResult, len(ws))
	if err := forEach(cfg.workers(), len(ws), func(i int) error {
		if cfg.Quick {
			ws[i].Windows = min(ws[i].Windows, 25)
		}
		results, err := ktracker.Run(ws[i], cfg.Seed)
		tracked[i] = results
		return err
	}); err != nil {
		return nil, err
	}
	var series []stats.Series
	lengths := map[string]int{}
	for i, w := range ws {
		s := stats.Series{Name: w.Name}
		for _, r := range tracked[i] {
			if r.BytesWritten == 0 {
				continue
			}
			s.Add(float64(r.Index), r.Ratio())
		}
		series = append(series, s)
		lengths[w.Name] = len(tracked[i])
	}
	res := &Result{
		Text:   stats.RenderSeries("window # (amp ratio 4KB/CL)", series...),
		Series: series,
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"Redis-Rand ran %d windows, Redis-Seq %d (Seq finishes faster, §6.3); startup windows look alike; final teardown window excluded as in the paper",
		lengths["Redis-Rand"], lengths["Redis-Seq"]))
	return res, nil
}

// fig10Workloads is the figure's bar order.
var fig10Workloads = []struct {
	mk   func() *workload.Workload
	skip int
}{
	{workload.RedisRand, 10},
	{workload.RedisSeq, 0},
	{workload.Histogram, 0},
	{workload.LinearRegression, 0},
	{workload.ConnectedComponents, 0},
	{workload.GraphColoring, 0},
	{workload.LabelPropagation, 0},
	{workload.PageRank, 0},
}

// runFig10 regenerates Fig 10: per-workload throughput gain of
// coherence-based tracking over 4KB write-protection at native write
// bandwidth.
func runFig10(cfg Config) (*Result, error) {
	type bar struct {
		name    string
		speedup float64
	}
	bars := make([]bar, len(fig10Workloads))
	if err := forEach(cfg.workers(), len(fig10Workloads), func(i int) error {
		entry := fig10Workloads[i]
		w := entry.mk()
		if cfg.Quick {
			w.Windows = min(w.Windows, entry.skip+12)
		}
		results, err := ktracker.Run(w, cfg.Seed)
		if err != nil {
			return err
		}
		sp, err := ktracker.Speedup(w, results, entry.skip)
		bars[i] = bar{name: w.Name, speedup: sp}
		return err
	}); err != nil {
		return nil, err
	}
	t := stats.NewTable("Workload", "Speedup %", "paper band")
	s := stats.Series{Name: "speedup %"}
	for i, b := range bars {
		band := "1-35%"
		switch b.name {
		case "Redis-Rand":
			band = "~35% (max)"
		case "Redis-Seq", "Histogram":
			band = "~1% (min)"
		}
		t.AddRow(b.name, b.speedup, band)
		s.Add(float64(i), b.speedup)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{s},
		Notes: []string{
			"speedup = write-protect fault+re-protect overhead removed, scaled to each workload's native write bandwidth (estimate documented in EXPERIMENTS.md)",
		},
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
