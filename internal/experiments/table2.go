package experiments

import (
	"errors"
	"io"

	"kona/internal/stats"
	"kona/internal/trace"
	"kona/internal/workload"
)

func init() {
	register("table2",
		"Dirty data amplification for different tracking granularities",
		runTable2)
}

// runTable2 regenerates Table 2: per-workload mean per-window dirty-data
// amplification at 4KB-page, 2MB-page and 64B cache-line granularity,
// side by side with the paper's published values. Each workload replays
// its own tracking stream (independent RNG from the config seed), so the
// nine rows measure concurrently and the table is assembled in row order.
func runTable2(cfg Config) (*Result, error) {
	var rows []*workload.Workload
	for _, w := range workload.All() {
		if cfg.Quick && w.Name != "Redis-Rand" && w.Name != "Redis-Seq" {
			continue
		}
		rows = append(rows, w)
	}
	type amps struct{ a4, a2, acl float64 }
	measured := make([]amps, len(rows))
	if err := forEach(cfg.workers(), len(rows), func(i int) error {
		a4, a2, acl, err := measureAmplification(rows[i], cfg.Seed)
		measured[i] = amps{a4, a2, acl}
		return err
	}); err != nil {
		return nil, err
	}
	t := stats.NewTable("Application", "Mem(GB)",
		"4KB", "paper", "2MB", "paper", "64B CL", "paper")
	res := &Result{}
	for i, w := range rows {
		m := measured[i]
		t.AddRow(w.Name, w.PaperFootprintGB, m.a4, w.PaperAmp4K, m.a2, w.PaperAmp2M, m.acl, w.PaperAmpCL)
	}
	res.Text = t.String()
	res.Notes = append(res.Notes,
		"footprints scaled GB->MB (ratios preserved); mean of per-window amplification, startup windows excluded",
		"expected shape: all rows >2x at 4KB, Redis-Rand extreme, cache-line column near 1")
	return res, nil
}

// measureAmplification runs a workload's tracking stream through the
// windower and averages the three amplifications, skipping startup.
func measureAmplification(w *workload.Workload, seed int64) (a4, a2, acl float64, err error) {
	skip := 0
	if w.Name == "Redis-Rand" {
		skip = 10 // population phase (§6.3)
	}
	win := trace.NewWindower(w.TrackingStream(seed), workload.WindowLen)
	n := 0
	for {
		wd, werr := win.Next()
		if errors.Is(werr, io.EOF) {
			break
		}
		if werr != nil {
			return 0, 0, 0, werr
		}
		if wd.Index < skip {
			continue
		}
		d := trace.WindowDirtyStats(wd)
		if d.BytesWritten == 0 {
			continue
		}
		a4 += d.Amplification4K()
		a2 += d.Amplification2M()
		acl += d.AmplificationCL()
		n++
	}
	if n == 0 {
		return 0, 0, 0, errors.New("no windows with writes")
	}
	return a4 / float64(n), a2 / float64(n), acl / float64(n), nil
}
