package experiments

import "testing"

func TestAblHugePages(t *testing.T) {
	res := runID(t, "abl-hugepages", quickCfg())
	t.Log("\n" + res.Text)
	pts := res.Series[0].Points
	whole, split, p4k, cl := pts[0].Y, pts[1].Y, pts[2].Y, pts[3].Y
	if !(whole > 50*p4k) {
		t.Errorf("whole-2MB amplification %.0f should dwarf 4KB %.1f", whole, p4k)
	}
	if split > 1.5*p4k {
		t.Errorf("split-on-write %.1f should approximate 4KB %.1f", split, p4k)
	}
	if cl >= p4k/5 {
		t.Errorf("CL amplification %.2f should be far under 4KB %.1f", cl, p4k)
	}
}
