package experiments

import (
	"fmt"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
	"kona/internal/workload"
)

func init() {
	register("ext-e2e",
		"Extension: end-to-end workload replay — Kona vs Kona-VM on real workload traces (§6.1 methodology)",
		runExtE2E)
}

// runExtE2E replays each workload's instrumented access stream (the §5
// emulation methodology) against both runtimes with a 25% local cache and
// reports the end-to-end slowdown of the virtual-memory baseline — the
// whole-system view that Fig 7 takes for a microbenchmark, here on the
// Table 2 workloads.
func runExtE2E(cfg Config) (*Result, error) {
	sel := []string{"Redis-Rand", "Redis-Seq", "Page Rank", "VoltDB", "PageRank-Algo"}
	if cfg.Quick {
		sel = sel[:2]
	}
	maxAccesses := 60000
	if cfg.Quick {
		maxAccesses = 15000
	}
	t := newE2ETable()
	res := &Result{}
	for _, name := range sel {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		footprint := w.Footprint
		cacheBytes := footprint / 4 // 25% local cache
		mk := func() *cluster.Controller {
			ctrl := cluster.NewController()
			for i := 0; i < 2; i++ {
				if err := ctrl.Register(cluster.NewMemoryNode(i, 2*footprint)); err != nil {
					panic(err)
				}
			}
			return ctrl
		}
		rc := core.DefaultConfig(alignFMem(cacheBytes))
		rc.SlabSize = footprint // one slab spans the replay region
		rc.Metrics = cfg.Metrics
		konaRes, err := core.ReplayTrace(core.NewKona(rc, mk()), w.TrackingStream(cfg.Seed), footprint, maxAccesses)
		if err != nil {
			return nil, fmt.Errorf("%s on Kona: %w", name, err)
		}
		vmRes, err := core.ReplayTrace(core.NewKonaVM(rc, mk()), w.TrackingStream(cfg.Seed), footprint, maxAccesses)
		if err != nil {
			return nil, fmt.Errorf("%s on Kona-VM: %w", name, err)
		}
		speedup := float64(vmRes.Elapsed) / float64(konaRes.Elapsed)
		t.AddRow(name, konaRes.Accesses,
			fmt.Sprintf("%.1fms", float64(konaRes.Elapsed)/1e6),
			fmt.Sprintf("%.1fms", float64(vmRes.Elapsed)/1e6),
			speedup)
	}
	res.Text = t.String()
	res.Notes = append(res.Notes,
		"trace replay per §5's instrumented-execution methodology; 25% local cache (the §2.1 regime); speedups land between the AMAT-level 1.7x and the fault-dominated microbenchmark's 6.6x depending on access pattern")
	return res, nil
}

func newE2ETable() *tableT {
	return newTable("Workload", "accesses", "Kona", "Kona-VM", "VM/Kona")
}

// alignFMem rounds a cache size to valid FMem geometry (4-way, 4KB pages).
func alignFMem(bytes uint64) uint64 {
	unit := uint64(4 * mem.PageSize)
	if bytes < unit {
		return unit
	}
	return bytes / unit * unit
}
