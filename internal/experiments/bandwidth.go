package experiments

import (
	"fmt"

	"kona/internal/kcachesim"
	"kona/internal/ktracker"
	"kona/internal/rdma"
	"kona/internal/simclock"
	"kona/internal/stats"
	"kona/internal/workload"
)

func init() {
	register("ext-bw",
		"Extension: network line-rate sensitivity of eviction traffic",
		runExtBW)
	register("ext-overhead",
		"Extension: the simulators' own overheads (§6.2(3), §6.3(3) meta-results)",
		runExtOverhead)
}

// runExtBW sweeps the wire speed and compares the network time needed to
// write back one second of Redis-Rand dirty data at page granularity vs
// cache-line granularity — the "network requirements for disaggregation"
// angle ([32]): cache-line tracking is what keeps slower (cheaper) fabrics
// viable.
func runExtBW(cfg Config) (*Result, error) {
	w := workload.RedisRand()
	if cfg.Quick {
		w.Windows = 25
	}
	results, err := ktracker.Run(w, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := ktracker.Summarize(results, 10)
	// Native-rate dirty volumes per second.
	scale := float64(w.WriteBandwidth)
	pageBytes := s.MeanAmp4K * scale
	lineBytes := s.MeanAmpCL * scale

	t := stats.NewTable("line rate", "4KB writeback", "CL writeback", "4KB util %", "CL util %")
	serRatio := stats.Series{Name: "pageWB/s"}
	for _, gbps := range []int{10, 25, 50, 100, 200} {
		cm := rdma.DefaultCostModel()
		cm.LineRateGbps = gbps
		pageTime := cm.WireTime(int(pageBytes))
		lineTime := cm.WireTime(int(lineBytes))
		t.AddRow(fmt.Sprintf("%dGbps", gbps),
			fmt.Sprintf("%.1fms/s", float64(pageTime)/1e6),
			fmt.Sprintf("%.1fms/s", float64(lineTime)/1e6),
			100*float64(pageTime)/1e9,
			100*float64(lineTime)/1e9)
		serRatio.Add(float64(gbps), float64(pageTime)/1e6)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{serRatio},
		Notes: []string{fmt.Sprintf(
			"Redis-Rand at native rate dirties %.0fx its written bytes under 4KB tracking vs %.1fx under CL tracking; at 10Gbps the page-granularity writeback alone consumes the fabric %.0fx sooner",
			s.MeanAmp4K, s.MeanAmpCL, s.MeanAmp4K/s.MeanAmpCL)},
	}, nil
}

// runExtOverhead reports the simulation tooling's own costs, the
// meta-results the paper gives in §6.2(3) (Cachegrind: 43x) and §6.3(3)
// (KTracker: 60% throughput loss, 95% of it copy+compare). Our absolute
// numbers are unrelated to theirs — different tools, different machines —
// but the artifact documents them for the same reason the paper does.
func runExtOverhead(cfg Config) (*Result, error) {
	w := workload.RedisRand()
	accesses := 60000
	if cfg.Quick {
		accesses = 20000
	}
	simOver := kcachesim.SimulationOverhead(w, accesses)

	wk := workload.RedisSeq()
	results, err := ktracker.Run(wk, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := ktracker.Summarize(results, 0)
	// Diff cost as a fraction of the virtual run the tracker emulated.
	runLen := simclock.Duration(len(results)) * workload.WindowLen
	diffFrac := float64(s.TotalDiff) / float64(runLen)

	t := stats.NewTable("Tool", "overhead", "paper's figure")
	t.AddRow("KCacheSim (cache simulation)", fmt.Sprintf("%.0fx slowdown", simOver), "43x (Redis under Cachegrind)")
	t.AddRow("KTracker (snapshot diffing)", fmt.Sprintf("%.2f%% of runtime modeled as diff cost", 100*diffFrac), "60% throughput loss, 95% copy+compare")
	// WallClock: the slowdown ratio is a live self-measurement, so this
	// artifact is exempt from the engine's byte-identical determinism
	// contract (see DESIGN.md §6).
	return &Result{WallClock: true, Text: t.String(), Notes: []string{
		"absolute tool overheads are machine- and implementation-specific; the artifact records ours alongside the paper's for completeness",
	}}, nil
}
