package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
)

func init() {
	register("ext-readshare",
		"Extension: reader scaling on a shared region — 1 writer + 1/2/4 readers under slab leases (DESIGN.md §14)",
		runExtReadShare)
}

// runExtReadShare measures what sharing a region costs each side of the
// lease protocol (DESIGN.md §14) as readers scale. One runtime owns a
// region, shares it with ShareWriter, and publishes a new version every
// round (dirty all records, Sync); 1/2/4 reader runtimes attach the group
// at the same virtual addresses, observe the publish via
// PollInvalidations, and re-read the whole region. The driver verifies
// every observed record — version header must equal the round just
// published (no stale reads survive an invalidation) and the payload must
// match the version's deterministic bytes (no torn reads) — and reports
// the writer's per-Sync virtual-time p99 against the unshared baseline
// alongside the readers' per-round refresh cost. The claims under test:
// the writer's flush path carries one publish RPC of lease work and
// nothing proportional to reader count, and a reader's coherence cost is
// its own refetch of the pages it actually re-reads.
func runExtReadShare(cfg Config) (*Result, error) {
	rounds := 300
	if cfg.Quick {
		rounds = 80
	}
	const (
		slots   = 64 // one record per page
		recSize = 256
		region  = slots * uint64(mem.PageSize)
	)

	// record renders slot's payload at a version: an 8-byte version header
	// plus bytes drawn deterministically from (version, slot), so any mix
	// of two versions in one observed record is detectable.
	record := func(slot, version int) []byte {
		b := make([]byte, recSize)
		binary.BigEndian.PutUint64(b, uint64(version))
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(version)<<8 ^ int64(slot)))
		rng.Read(b[8:])
		return b
	}

	type regime struct {
		name    string
		readers int // -1: unshared baseline (no lease at all)
	}
	regimes := []regime{
		{"unshared baseline", -1},
		{"1 writer + 1 reader", 1},
		{"1 writer + 2 readers", 2},
		{"1 writer + 4 readers", 4},
	}

	t := newTable("Regime", "flush p99", "publishes", "reader refresh", "invals/reader", "stale", "torn")
	res := &Result{}
	var baselineP99, maxSharedP99 time.Duration
	for _, rg := range regimes {
		ctrl := cluster.NewController()
		if err := ctrl.Register(cluster.NewMemoryNode(0, 64<<20)); err != nil {
			return nil, err
		}
		rc := core.DefaultConfig(2 * region) // region fits: every drop is an invalidation, not capacity
		rc.SlabSize = region                 // one slab == the shared group
		rc.Metrics = cfg.Metrics
		w := core.NewKona(rc, ctrl)
		base, err := w.Malloc(region)
		if err != nil {
			return nil, err
		}

		var group uint64
		readers := make([]*core.Kona, 0, 4)
		rdNow := make([]time.Duration, 4)
		if rg.readers >= 0 {
			if group, err = w.ShareWriter(base); err != nil {
				return nil, err
			}
		}

		var wNow time.Duration
		flushLat := make([]time.Duration, 0, rounds)
		var refreshTotal time.Duration
		invals, stale, torn, verified := 0, 0, 0, 0
		for round := 1; round <= rounds; round++ {
			for s := 0; s < slots; s++ {
				if wNow, err = w.Write(wNow, base+mem.Addr(s)*mem.PageSize, record(s, round)); err != nil {
					return nil, fmt.Errorf("%s: round %d write: %w", rg.name, round, err)
				}
			}
			done, err := w.Sync(wNow)
			if err != nil {
				return nil, fmt.Errorf("%s: round %d sync: %w", rg.name, round, err)
			}
			flushLat = append(flushLat, done-wNow)
			wNow = done

			if rg.readers >= 0 && round == 1 {
				// Readers arrive after the first publish, like a consumer
				// attaching to a producer's already-live region.
				for i := 0; i < rg.readers; i++ {
					r := core.NewKona(rc, ctrl)
					rbase, rsize, err := r.AttachReader(group)
					if err != nil {
						return nil, fmt.Errorf("%s: attach reader %d: %w", rg.name, i, err)
					}
					if rbase != base || rsize != region {
						return nil, fmt.Errorf("%s: reader %d mapped [%v,+%d), writer has [%v,+%d)", rg.name, i, rbase, rsize, base, region)
					}
					readers = append(readers, r)
				}
			}
			for i, r := range readers {
				n, err := r.PollInvalidations()
				if err != nil {
					return nil, fmt.Errorf("%s: reader %d poll: %w", rg.name, i, err)
				}
				invals += n
				start := rdNow[i]
				buf := make([]byte, recSize)
				for s := 0; s < slots; s++ {
					if rdNow[i], err = r.Read(rdNow[i], base+mem.Addr(s)*mem.PageSize, buf); err != nil {
						return nil, fmt.Errorf("%s: reader %d slot %d: %w", rg.name, i, s, err)
					}
					verified++
					if v := binary.BigEndian.Uint64(buf); v != uint64(round) {
						stale++
					} else if string(buf) != string(record(s, round)) {
						torn++
					}
				}
				refreshTotal += rdNow[i] - start
			}
		}

		sort.Slice(flushLat, func(i, j int) bool { return flushLat[i] < flushLat[j] })
		p99 := flushLat[len(flushLat)*99/100]
		if rg.readers < 0 {
			baselineP99 = p99
		} else if p99 > maxSharedP99 {
			maxSharedP99 = p99
		}
		refresh, perReader := "-", "-"
		if len(readers) > 0 {
			refresh = fmt.Sprintf("%.1fµs", float64(refreshTotal)/float64(len(readers)*(rounds))/1e3)
			perReader = fmt.Sprintf("%d", invals/len(readers))
		}
		snap := ctrl.LeaseSnapshot()
		t.AddRow(rg.name, fmt.Sprintf("%.2fµs", float64(p99)/1e3),
			snap.Publishes, refresh, perReader, stale, torn)
		if stale > 0 || torn > 0 {
			return nil, fmt.Errorf("%s: %d stale / %d torn of %d verified reads", rg.name, stale, torn, verified)
		}
	}

	res.Text = t.String()
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d rounds × %d records (%dKB region); every record observed by every reader is verified against its round's deterministic bytes — stale/torn must be 0", rounds, slots, region>>10),
		fmt.Sprintf("writer flush p99 with 4 readers is %.2fx the unshared baseline: the shared Sync adds one publish RPC after the flush, nothing per reader (guarded by `make bench-lease`)", float64(maxSharedP99)/float64(baselineP99)),
		"reader refresh is the pull-based coherence bill: each publish drops the reader's cached pages and the next read refetches them (fault-injected variant: TestChaosCoherenceReadersOverWire in `make chaos`)")
	return res, nil
}
