package experiments

import (
	"strings"
	"testing"
)

func TestExtE2E(t *testing.T) {
	res := runID(t, "ext-e2e", quickCfg())
	t.Log("\n" + res.Text)
	// Kona must beat Kona-VM on every replayed workload.
	if !containsAll(res.Text, "Redis-Rand", "Redis-Seq") {
		t.Fatalf("missing rows")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
