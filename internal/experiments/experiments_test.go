package experiments

import (
	"strings"
	"testing"

	"kona/internal/mem"
	"kona/internal/simclock"
)

func quickCfg() Config { return Config{Quick: true, Seed: 42} }

func runID(t *testing.T, id string, cfg Config) *Result {
	t.Helper()
	res, err := Run(id, cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.Text == "" {
		t.Fatalf("%s: empty output", id)
	}
	return res
}

// seriesY fetches a named series' value at x.
func seriesY(t *testing.T, res *Result, name string, x float64) float64 {
	t.Helper()
	for _, s := range res.Series {
		if s.Name == name {
			if y, ok := s.YAt(x); ok {
				return y
			}
			t.Fatalf("%s: series %q has no x=%v", res.ID, name, x)
		}
	}
	t.Fatalf("%s: no series %q", res.ID, name)
	return 0
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-assoc", "abl-fetchgran", "abl-flush", "abl-hugepages", "abl-hwprefetch", "abl-prefetch", "abl-replicas", "abl-sg", "abl-tracking", "ext-amat", "ext-bw", "ext-e2e", "ext-leap", "ext-overhead", "ext-placement", "ext-readshare",
		"fig10", "fig11a", "fig11b", "fig11c", "fig2", "fig3",
		"fig7", "fig8a", "fig8b", "fig8c", "fig8d", "fig9", "sec21", "table2"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
		if title, ok := Describe(got[i]); !ok || title == "" {
			t.Errorf("Describe(%s) missing", got[i])
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Errorf("Describe of unknown id succeeded")
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Errorf("Run of unknown id succeeded")
	}
}

func TestTable2Quick(t *testing.T) {
	res := runID(t, "table2", quickCfg())
	for _, want := range []string{"Redis-Rand", "Redis-Seq", "31.36", "5516.37"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("table2 missing %q:\n%s", want, res.Text)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	res := runID(t, "fig2", quickCfg())
	// Rand writes: most pages have <=8 accessed lines.
	if y := seriesY(t, res, "Writes (Rand)", 8); y < 0.5 {
		t.Errorf("fig2: Rand writes CDF(8) = %.2f, want skew to few lines", y)
	}
	// Seq writes: substantial mass only reached at the full page.
	at63 := seriesY(t, res, "Writes (Seq)", 63)
	at64 := seriesY(t, res, "Writes (Seq)", 64)
	if at64-at63 < 0.2 {
		t.Errorf("fig2: Seq writes full-page jump = %.2f, want >= 0.2", at64-at63)
	}
}

func TestFig3Shapes(t *testing.T) {
	res := runID(t, "fig3", quickCfg())
	// Most segments are short (1-4 lines) for Rand.
	if y := seriesY(t, res, "Writes (Rand)", 4); y < 0.8 {
		t.Errorf("fig3: Rand segment CDF(4) = %.2f, want most short", y)
	}
	// Seq has a page-length tail: CDF at 32 is visibly below 1.
	if y := seriesY(t, res, "Writes (Seq)", 32); y > 0.95 {
		t.Errorf("fig3: Seq CDF(32) = %.2f, expected page-length segments", y)
	}
}

func TestFig7Ratios(t *testing.T) {
	res := runID(t, "fig7", quickCfg())
	for _, th := range []float64{1, 2, 4} {
		kona := seriesY(t, res, "Kona", th)
		vm := seriesY(t, res, "Kona-VM", th)
		ratio := vm / kona
		if ratio < 4 || ratio > 8.5 {
			t.Errorf("fig7 %vT: Kona-VM/Kona = %.1f, want 4-8.5 (paper 6.6@1T, 4-5@2-4T)", th, ratio)
		}
		konaNE := seriesY(t, res, "Kona-NoEvict", th)
		vmNE := seriesY(t, res, "Kona-VM-NoEvict", th)
		if r := vmNE / konaNE; r < 2.5 || r > 6 {
			t.Errorf("fig7 %vT NoEvict ratio = %.1f, want 3-5", th, r)
		}
		noWP := seriesY(t, res, "Kona-VM-NoWP", th)
		if noWP <= konaNE {
			t.Errorf("fig7 %vT: NoWP (%.4f) must stay slower than Kona (%.4f)", th, noWP, konaNE)
		}
		if noWP >= vmNE {
			t.Errorf("fig7 %vT: NoWP must beat full Kona-VM-NoEvict", th)
		}
	}
	// The 1-thread advantage exceeds the multi-thread advantage (6.6 -> 4-5).
	r1 := seriesY(t, res, "Kona-VM", 1) / seriesY(t, res, "Kona", 1)
	r4 := seriesY(t, res, "Kona-VM", 4) / seriesY(t, res, "Kona", 4)
	if r1 < r4 {
		t.Errorf("fig7: 1T ratio (%.1f) should exceed 4T ratio (%.1f)", r1, r4)
	}
}

func TestFig8aRatios(t *testing.T) {
	res := runID(t, "fig8a", quickCfg())
	kona := seriesY(t, res, "Kona", 25)
	lego := seriesY(t, res, "LegoOS", 25)
	main := seriesY(t, res, "Kona-main", 25)
	if r := lego / kona; r < 1.3 || r > 2.5 {
		t.Errorf("fig8a: LegoOS/Kona at 25%% = %.2f, want ~1.7", r)
	}
	if main >= kona {
		t.Errorf("fig8a: Kona-main (%.1f) must beat Kona (%.1f)", main, kona)
	}
	// Curves decline with cache size for LegoOS.
	if seriesY(t, res, "LegoOS", 5) <= seriesY(t, res, "LegoOS", 100) {
		t.Errorf("fig8a: LegoOS curve not declining")
	}
}

func TestFig8bFlat(t *testing.T) {
	res := runID(t, "fig8b", quickCfg())
	lo := seriesY(t, res, "LegoOS", 10)
	hi := seriesY(t, res, "LegoOS", 100)
	if lo > 1.6*hi {
		t.Errorf("fig8b: Linear Regression curve not flat: %.1f vs %.1f", lo, hi)
	}
}

func TestFig8cIntermediate(t *testing.T) {
	res := runID(t, "fig8c", quickCfg())
	kona := seriesY(t, res, "Kona", 25)
	lego := seriesY(t, res, "LegoOS", 25)
	if lego <= kona {
		t.Errorf("fig8c: LegoOS (%.1f) must exceed Kona (%.1f)", lego, kona)
	}
}

func TestFig8dSweetSpot(t *testing.T) {
	res := runID(t, "fig8d", quickCfg())
	name := "cache 27%"
	tiny := seriesY(t, res, name, 64.0/1024)
	sweet := seriesY(t, res, name, 1)
	huge := seriesY(t, res, name, 32)
	if sweet >= tiny || sweet >= huge {
		t.Errorf("fig8d: 1KB (%.1f) must beat 64B (%.1f) and 32KB (%.1f)", sweet, tiny, huge)
	}
}

func TestFig9RandDominates(t *testing.T) {
	res := runID(t, "fig9", quickCfg())
	var randMean, seqMean float64
	for _, s := range res.Series {
		var sum float64
		for _, p := range s.Points {
			sum += p.Y
		}
		mean := sum / float64(len(s.Points))
		if s.Name == "Redis-Rand" {
			randMean = mean
		} else {
			seqMean = mean
		}
	}
	if randMean <= 2*seqMean {
		t.Errorf("fig9: rand mean ratio %.1f should dominate seq %.1f", randMean, seqMean)
	}
}

func TestFig10Ordering(t *testing.T) {
	res := runID(t, "fig10", quickCfg())
	s := res.Series[0]
	redisRand := s.Points[0].Y
	redisSeq := s.Points[1].Y
	hist := s.Points[2].Y
	if redisRand < 20 || redisRand > 50 {
		t.Errorf("fig10: Redis-Rand speedup %.1f%%, want ~35%%", redisRand)
	}
	if redisSeq > 6 || hist > 6 {
		t.Errorf("fig10: Seq/Hist speedups %.1f/%.1f, want ~1%%", redisSeq, hist)
	}
	for _, p := range s.Points[1:] {
		if p.Y >= redisRand {
			t.Errorf("fig10: workload %v exceeds Redis-Rand", p.X)
		}
	}
}

func TestFig11aShapes(t *testing.T) {
	res := runID(t, "fig11a", quickCfg())
	log1 := seriesY(t, res, "Kona's CL log", 1)
	log4 := seriesY(t, res, "Kona's CL log", 4)
	log64 := seriesY(t, res, "Kona's CL log", 64)
	if log1 < 3.5 || log1 > 6 {
		t.Errorf("fig11a: CL log at 1 = %.1f, want 4-5x", log1)
	}
	if log4 < 3 {
		t.Errorf("fig11a: CL log at 4 = %.1f, want ~4x", log4)
	}
	if log64 < 0.9 || log64 > 2 {
		t.Errorf("fig11a: CL log at 64 = %.1f, want ~1x (on par)", log64)
	}
	nc := seriesY(t, res, "4KB writes no-copy [idealized]", 1)
	if nc < 1.3 || nc > 1.7 {
		t.Errorf("fig11a: 4KB no-copy = %.2f, want ~1.5x", nc)
	}
	// Contiguous: Kona is never worse than Kona-VM (§6.4).
	for _, p := range res.Series[2].Points {
		if p.Y < 0.95 {
			t.Errorf("fig11a: CL log below Kona-VM at %v contiguous lines", p.X)
		}
	}
}

func TestFig11bShapes(t *testing.T) {
	res := runID(t, "fig11b", quickCfg())
	log2 := seriesY(t, res, "Kona's CL log", 2)
	if log2 < 2 || log2 > 4 {
		t.Errorf("fig11b: CL log at 2 alternate = %.1f, want 2-3x", log2)
	}
	log32 := seriesY(t, res, "Kona's CL log", 32)
	if log32 >= 1 {
		t.Errorf("fig11b: CL log at 32 alternate = %.1f, must fall below Kona-VM", log32)
	}
	clnc32 := seriesY(t, res, "CL writes no-copy [idealized]", 32)
	if clnc32 >= log32 {
		t.Errorf("fig11b: CL-no-copy (%.2f) must collapse harder than the log (%.2f)", clnc32, log32)
	}
}

func TestFig11cBreakdown(t *testing.T) {
	res := runID(t, "fig11c", quickCfg())
	// At 1 and 8 contiguous lines Copy is the dominant slice.
	for _, s := range res.Series[:2] {
		bitmap, copyT, rdmaT := s.Points[0].Y, s.Points[1].Y, s.Points[2].Y
		ack := s.Points[3].Y
		if copyT < bitmap || copyT < rdmaT {
			t.Errorf("fig11c %s: Copy (%.0f%%) must dominate bitmap (%.0f%%) and RDMA (%.0f%%)", s.Name, copyT, bitmap, rdmaT)
		}
		if ack > 25 {
			t.Errorf("fig11c %s: ack wait %.0f%% too large", s.Name, ack)
		}
	}
}

func TestSec21(t *testing.T) {
	res := runID(t, "sec21", quickCfg())
	for _, want := range []string{"Infiniswap", "40µs", "Kona"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("sec21 missing %q", want)
		}
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "%") {
		t.Errorf("sec21: missing throughput-drop note")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every artifact")
	}
	results, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	for _, r := range results {
		if r.ID == "" || r.Title == "" || r.Text == "" {
			t.Errorf("incomplete result: %+v", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("String() missing ID")
		}
	}
}

// orderProbe records the virtual-time order in which fig7Run drives a
// mock runtime.
type orderProbe struct {
	arrivals []simclock.Duration
	perOp    simclock.Duration
	clock    map[int]simclock.Duration
}

func (o *orderProbe) Malloc(size uint64) (mem.Addr, error) { return 0, nil }

func (o *orderProbe) access(now simclock.Duration) (simclock.Duration, error) {
	o.arrivals = append(o.arrivals, now)
	return now + o.perOp, nil
}

func (o *orderProbe) Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	return o.access(now)
}

func (o *orderProbe) Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	return o.access(now)
}

// TestFig7RunCausalOrder verifies the microbenchmark harness's key
// property: operations reach the runtime in non-decreasing virtual time,
// so shared contention servers never see arrivals from the past.
func TestFig7RunCausalOrder(t *testing.T) {
	probe := &orderProbe{perOp: 100}
	d, err := fig7Run(probe, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.arrivals) != 4*8*2 {
		t.Fatalf("ops = %d, want 64", len(probe.arrivals))
	}
	for i := 1; i < len(probe.arrivals); i++ {
		if probe.arrivals[i] < probe.arrivals[i-1] {
			t.Fatalf("arrival %d (%v) precedes %d (%v): causality violated",
				i, probe.arrivals[i], i-1, probe.arrivals[i-1])
		}
	}
	// All threads run the same op count at the same cost: completion is
	// one thread's serial time.
	if d != 8*2*100 {
		t.Errorf("completion = %v, want 1600", d)
	}
}
