package experiments

import (
	"fmt"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/kcachesim"
	"kona/internal/ktracker"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/stats"
	"kona/internal/workload"
)

// Ablations: design-choice studies the paper discusses in prose but does
// not chart. Each isolates one mechanism of Kona's design.

func init() {
	register("abl-prefetch",
		"Ablation: FPGA sequential prefetcher on/off (Fig 7 workload)",
		runAblPrefetch)
	register("abl-sg",
		"Ablation: cache-line log vs NIC scatter-gather eviction (§6.4)",
		runAblScatterGather)
	register("abl-replicas",
		"Ablation: eviction cost vs replication factor (§4.5)",
		runAblReplicas)
	register("abl-flush",
		"Ablation: eviction-log flush threshold",
		runAblFlush)
	register("abl-assoc",
		"Ablation: DRAM-cache associativity (§6.2: no significant impact)",
		runAblAssoc)
	register("abl-tracking",
		"Ablation: dirty-tracking mechanisms — write-protect vs Intel PML vs coherence",
		runAblTracking)
}

// runAblPrefetch compares the Fig 7 microbenchmark (sequential page
// touches — the prefetcher's best case) with and without the FPGA's
// next-page prefetcher.
func runAblPrefetch(cfg Config) (*Result, error) {
	pages := 2048
	if cfg.Quick {
		pages = 512
	}
	run := func(prefetch bool) (simclock.Duration, core.EvictStats, error) {
		total := uint64(pages) * mem.PageSize
		ctrl := fig7Cluster(total)
		c := core.DefaultConfig(total / 2)
		c.SlabSize = total
		c.Prefetch = prefetch
		rt := core.NewKona(c, ctrl)
		d, err := fig7Run(rt, 1, pages)
		return d, rt.EvictStats(), err
	}
	on, _, err := run(true)
	if err != nil {
		return nil, err
	}
	off, _, err := run(false)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Prefetch", "time (ms)", "per page")
	t.AddRow("on", float64(on)/1e6, fmt.Sprintf("%.2fµs", float64(on)/float64(pages)/1e3))
	t.AddRow("off", float64(off)/1e6, fmt.Sprintf("%.2fµs", float64(off)/float64(pages)/1e3))
	return &Result{
		Text: t.String(),
		Series: []stats.Series{{Name: "time-ms", Points: []stats.Point{
			{X: 1, Y: float64(on) / 1e6}, {X: 0, Y: float64(off) / 1e6},
		}}},
		Notes: []string{
			"§3/§4.4: page faults serialize and stop the hardware prefetcher at page boundaries; Kona's fills don't, so the FPGA can prefetch from remote memory. The gain here is bounded by the NIC's fetch pipelining (depth-1 prefetcher)",
		},
	}, nil
}

// runAblScatterGather compares the CL log against gathering dirty
// segments with NIC scatter-gather (no local copy, per-element NIC cost).
func runAblScatterGather(cfg Config) (*Result, error) {
	pages := fig11Pages(cfg.Quick)
	logS := stats.Series{Name: "CL log (µs/page)"}
	sgS := stats.Series{Name: "scatter-gather (µs/page)"}
	t := stats.NewTable("alternate CLs", "CL log µs/page", "SG µs/page", "SG/log")
	for _, n := range []int{1, 2, 4, 8, 16} {
		dirty := dirtyPattern(n, false)
		logTime, _, _, err := core.EvictionBench(fig11Cluster(), core.DefaultConfig(1<<20), pages, dirty)
		if err != nil {
			return nil, err
		}
		sgTime, err := core.EvictionBenchSG(fig11Cluster(), core.DefaultConfig(1<<20), pages, dirty)
		if err != nil {
			return nil, err
		}
		perLog := float64(logTime) / float64(pages) / 1e3
		perSG := float64(sgTime) / float64(pages) / 1e3
		logS.Add(float64(n), perLog)
		sgS.Add(float64(n), perSG)
		t.AddRow(n, perLog, perSG, perSG/perLog)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{logS, sgS},
		Notes: []string{
			"§6.4: scatter-gather was 'consistently worse than Kona ... due to inefficiencies in gathering many different entries' — per-SGE NIC costs outweigh the avoided copy",
		},
	}, nil
}

// runAblReplicas measures eviction time and wire traffic as the
// replication factor grows.
func runAblReplicas(cfg Config) (*Result, error) {
	pages := fig11Pages(cfg.Quick)
	dirty := dirtyPattern(4, true)
	t := stats.NewTable("replicas", "evict time (ms)", "wire bytes", "vs 1 replica")
	s := stats.Series{Name: "evict-ms"}
	var base float64
	for _, r := range []int{1, 2, 3} {
		ctrl := cluster.NewController()
		for i := 0; i < r; i++ {
			if err := ctrl.Register(cluster.NewMemoryNode(i, 64<<20)); err != nil {
				return nil, err
			}
		}
		c := core.DefaultConfig(1 << 20)
		c.Replicas = r
		d, _, st, err := core.EvictionBench(ctrl, c, pages, dirty)
		if err != nil {
			return nil, err
		}
		ms := float64(d) / 1e6
		if r == 1 {
			base = ms
		}
		t.AddRow(r, ms, st.WireBytes, fmt.Sprintf("%.2fx", ms/base))
		s.Add(float64(r), ms)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{s},
		Notes: []string{
			"§4.5: replication multiplies eviction wire traffic but eviction stays off the application's critical path; cache-line granularity keeps the per-replica cost low",
		},
	}, nil
}

// runAblFlush sweeps the eviction-log flush threshold.
func runAblFlush(cfg Config) (*Result, error) {
	pages := fig11Pages(cfg.Quick)
	dirty := dirtyPattern(4, true)
	t := stats.NewTable("threshold", "evict time (ms)", "flushes", "ack wait %")
	s := stats.Series{Name: "evict-ms"}
	for _, thr := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		c := core.DefaultConfig(1 << 20)
		c.LogBytes = 1 << 20
		c.FlushThreshold = thr
		d, b, st, err := core.EvictionBench(fig11Cluster(), c, pages, dirty)
		if err != nil {
			return nil, err
		}
		ackPct := 100 * float64(b.AckWait) / float64(b.Total())
		t.AddRow(fmt.Sprintf("%dKB", thr>>10), float64(d)/1e6, st.Flushes, ackPct)
		s.Add(float64(thr>>10), float64(d)/1e6)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{s},
		Notes: []string{
			"small thresholds pay per-flush verb costs and ack round trips; large thresholds amortize them — the FaRM-style ring buffer's size is a real knob",
		},
	}, nil
}

// runAblAssoc sweeps the DRAM-cache associativity in the AMAT simulation.
func runAblAssoc(cfg Config) (*Result, error) {
	w := workload.RedisRand()
	t := stats.NewTable("assoc", "Kona AMAT (ns) @25% cache")
	s := stats.Series{Name: "AMAT-ns"}
	var lo, hi float64
	for i, assoc := range []int{1, 2, 4, 8, 16} {
		r, err := kcachesim.Run(kcachesim.Kona, kcachesim.Config{
			Workload: w, Accesses: fig8Accesses(cfg.Quick), Seed: cfg.Seed,
			CachePct: 25, Assoc: assoc,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(assoc, r.AMATns)
		s.Add(float64(assoc), r.AMATns)
		if i == 0 || r.AMATns < lo {
			lo = r.AMATns
		}
		if r.AMATns > hi {
			hi = r.AMATns
		}
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{s},
		Notes: []string{fmt.Sprintf(
			"§6.2(2): 'associativity does not significantly impact overall latency' — spread here is %.1f%%",
			100*(hi-lo)/lo)},
	}, nil
}

// runAblTracking compares the three dirty-tracking mechanisms on overhead
// and on amplification — the two axes the paper argues must be solved
// together.
func runAblTracking(cfg Config) (*Result, error) {
	t := stats.NewTable("Workload", "WP overhead %", "PML overhead %", "coherence overhead %", "4KB amp", "CL amp")
	for _, mk := range []func() *workload.Workload{workload.RedisRand, workload.LinearRegression} {
		w := mk()
		skip := 0
		if w.Name == "Redis-Rand" {
			skip = 10
		}
		if cfg.Quick {
			w.Windows = min(w.Windows, skip+12)
		}
		results, err := ktracker.Run(w, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sp, err := ktracker.Speedup(w, results, skip)
		if err != nil {
			return nil, err
		}
		// Speedup ≈ 1/(1-f)-1; invert to the overhead fraction.
		wpOverhead := 100 * (1 - 1/(1+sp/100))
		pml, err := ktracker.PMLOverhead(w, results, skip)
		if err != nil {
			return nil, err
		}
		sum := ktracker.Summarize(results, skip)
		t.AddRow(w.Name, wpOverhead, pml, 0.0, sum.MeanAmp4K, sum.MeanAmpCL)
	}
	return &Result{
		Text: t.String(),
		Notes: []string{
			"PML (Intel Page Modification Logging, §8) removes most of write-protection's fault cost but 'continues to rely on page granularity' — its amplification column equals WP's; only coherence-based tracking fixes both overhead and amplification",
		},
	}, nil
}

// strided microbenchmark for the ext-leap experiment: touch every other
// page of a region through a runtime with the given prefetch depth.
// vmLeap selects the Kona-VM baseline with Leap-style software prefetch
// instead of Kona's FPGA prefetcher.
func stridedRun(depth, pages int, vmLeap bool) (simclock.Duration, error) {
	total := uint64(pages) * mem.PageSize
	ctrl := fig7Cluster(total)
	c := core.DefaultConfig(total) // no eviction pressure: isolate fetch
	c.SlabSize = total
	var rt interface {
		Malloc(uint64) (mem.Addr, error)
		Read(simclock.Duration, mem.Addr, []byte) (simclock.Duration, error)
	}
	if vmLeap {
		vm := core.NewKonaVM(c, ctrl)
		if depth > 0 {
			vm.EnableLeapPrefetch(depth)
		}
		rt = vm
	} else {
		c.Prefetch = true
		c.PrefetchDepth = depth
		rt = core.NewKona(c, ctrl)
	}
	base, err := rt.Malloc(total)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, mem.CacheLineSize)
	var now simclock.Duration
	for p := 0; p < pages; p += 2 {
		now, err = rt.Read(now, base+mem.Addr(p*mem.PageSize), buf)
		if err != nil {
			return 0, err
		}
	}
	return now, nil
}

func init() {
	register("ext-leap",
		"Extension: Leap-style adaptive stride prefetching (stride-2 workload)",
		runExtLeap)
}

// runExtLeap compares prefetch depths on a stride-2 access pattern that
// the classic next-page prefetcher cannot see.
func runExtLeap(cfg Config) (*Result, error) {
	pages := 4096
	if cfg.Quick {
		pages = 1024
	}
	t := stats.NewTable("configuration", "time (ms)", "µs/page")
	s := stats.Series{Name: "time-ms"}
	for _, depth := range []int{1, 2, 4, 8} {
		d, err := stridedRun(depth, pages, false)
		if err != nil {
			return nil, err
		}
		label := "Kona, next-page (depth 1)"
		if depth > 1 {
			label = fmt.Sprintf("Kona, stride depth %d", depth)
		}
		t.AddRow(label, float64(d)/1e6, float64(d)/float64(pages/2)/1e3)
		s.Add(float64(depth), float64(d)/1e6)
	}
	// The baseline with Leap's software prefetcher: faults avoided on
	// predicted pages, but the prediction+fetch runs in software on the
	// faulting core.
	vmPlain, err := stridedRun(0, pages, true)
	if err != nil {
		return nil, err
	}
	vmLeap, err := stridedRun(8, pages, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("Kona-VM, no prefetch", float64(vmPlain)/1e6, float64(vmPlain)/float64(pages/2)/1e3)
	t.AddRow("Kona-VM + Leap (depth 8)", float64(vmLeap)/1e6, float64(vmLeap)/float64(pages/2)/1e3)
	vmSeries := stats.Series{Name: "vm-ms", Points: []stats.Point{
		{X: 0, Y: float64(vmPlain) / 1e6}, {X: 8, Y: float64(vmLeap) / 1e6},
	}}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{s, vmSeries},
		Notes: []string{
			"the classic next-page prefetcher never fires on a stride-2 pattern; Leap-style majority-vote stride detection ([57]) does, and deeper adaptive windows hide progressively more fetch latency",
			"on this perfectly strided stream Leap can hide the baseline's fault path almost entirely (it was built for exactly this); the paper's Table 2 workloads are dominated by random access, where no predictor fires and only fault elimination helps — the two techniques compose rather than substitute",
		},
	}, nil
}

func init() {
	register("abl-fetchgran",
		"Ablation: runtime fetch granularity — random vs sequential access (§4.4)",
		runAblFetchGran)
}

// fetchGranRun touches one line per page (random order or sequential)
// through a Kona runtime with the given fetch granularity and returns the
// elapsed time plus bytes pulled from remote memory.
func fetchGranRun(fetchBytes uint64, pages int, sequential bool) (simclock.Duration, uint64, error) {
	total := uint64(pages) * mem.PageSize
	ctrl := fig7Cluster(total)
	c := core.DefaultConfig(total)
	c.SlabSize = total
	c.Prefetch = false
	c.FetchBytes = fetchBytes
	rt := core.NewKona(c, ctrl)
	base, err := rt.Malloc(total)
	if err != nil {
		return 0, 0, err
	}
	order := make([]int, pages)
	for i := range order {
		order[i] = i
	}
	if !sequential {
		// Deterministic shuffle (no RNG in scope needed).
		for i := range order {
			j := (i*2654435761 + 17) % pages
			order[i], order[j] = order[j], order[i]
		}
	}
	buf := make([]byte, mem.CacheLineSize)
	var now simclock.Duration
	for _, p := range order {
		now, err = rt.Read(now, base+mem.Addr(p*mem.PageSize+p%64*mem.CacheLineSize), buf)
		if err != nil {
			return 0, 0, err
		}
	}
	return now, rt.FPGAStats().BytesFetched, nil
}

// runAblFetchGran sweeps the fetch granularity for a one-line-per-page
// pattern, where small fetches shine, reporting time and wasted transfer.
func runAblFetchGran(cfg Config) (*Result, error) {
	pages := 2048
	if cfg.Quick {
		pages = 512
	}
	useful := uint64(pages) * mem.CacheLineSize
	t := stats.NewTable("fetch", "time (ms)", "bytes moved", "transfer waste")
	s := stats.Series{Name: "time-ms"}
	for _, fb := range []uint64{64, 512, 1024, 4096} {
		d, moved, err := fetchGranRun(fb, pages, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dB", fb), float64(d)/1e6, moved,
			fmt.Sprintf("%.0fx", float64(moved)/float64(useful)))
		s.Add(float64(fb), float64(d)/1e6)
	}
	return &Result{
		Text:   t.String(),
		Series: []stats.Series{s},
		Notes: []string{
			"one random line per page: small fetches move up to 64x less data; the paper still picks 4KB because real workloads have the spatial locality Fig 8d shows (and metadata stays simple, §6.2(2))",
		},
	}, nil
}
