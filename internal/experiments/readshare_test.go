package experiments

import (
	"strings"
	"testing"
)

func TestExtReadShare(t *testing.T) {
	res := runID(t, "ext-readshare", quickCfg())
	t.Log("\n" + res.Text)
	if !containsAll(res.Text, "unshared baseline", "1 writer + 1 reader", "1 writer + 2 readers", "1 writer + 4 readers") {
		t.Fatalf("missing regime rows:\n%s", res.Text)
	}
	// The driver fails hard on any stale or torn read; here pin that the
	// shared rows actually published (the coherence machinery ran at all).
	if strings.Contains(res.Text, " 0          188") {
		t.Fatalf("shared regime reports refresh cost without publishes:\n%s", res.Text)
	}
}
