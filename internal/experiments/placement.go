package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kona/internal/cluster"
)

func init() {
	register("ext-placement",
		"Extension: load-aware placement and live slab migration — balanced vs unbalanced rack tail latency (DESIGN.md §13)",
		runExtPlacement)
}

// runExtPlacement models a rack of memory nodes serving slabs whose
// access heat is zipfian: a handful of slabs carry most of the traffic,
// so placement that ignores load (deterministic round-robin) lands
// several hot slabs on the same node and that node's queue dominates the
// rack's fetch tail. The experiment carves slabs through a real
// Controller under three capacity-management regimes — static rr, static
// load-aware placement, and rr rescued by the live MigrationEngine — and
// reports each regime's fetch-latency percentiles from an M/M/1 queue
// model of every node (service time per fetch is fixed; waiting time is
// exponential with the queue's mean). The migration rows exercise the
// full production path: capture, budgeted copy, seal, flip, retire over
// LocalMigrationTransport, with the load map fed exactly like a deployed
// rack (cumulative counters, EWMA deltas).
func runExtPlacement(cfg Config) (*Result, error) {
	nodes, slabs, sweeps, samples := 32, 128, 40, 200_000
	if cfg.Quick {
		nodes, slabs, sweeps, samples = 12, 48, 15, 50_000
	}
	const (
		slabSize  = 256 << 10
		nodeCap   = 2 << 20 // 8 slab extents per node: headroom for migration targets
		serviceNs = 2_000.0 // per-fetch service time at a memory node
		baseNs    = 3_000.0 // unloaded network + fill cost of a fetch
		zipfS     = 1.1
		window    = 0.1 // seconds of load observed per report tick
	)

	// Zipfian slab heat (ops/sec), shuffled so slab id order carries no
	// information; scaled so rack-average node utilization is 50% — a
	// provisioning an operator would call healthy, which is exactly the
	// regime where one overloaded node hides in the average.
	rng := rand.New(rand.NewSource(cfg.Seed))
	heats := make([]float64, slabs)
	total := 0.0
	for i := range heats {
		heats[i] = 1 / math.Pow(float64(i+1), zipfS)
		total += heats[i]
	}
	rng.Shuffle(len(heats), func(i, j int) { heats[i], heats[j] = heats[j], heats[i] })
	scale := 0.5 * float64(nodes) / (total * serviceNs * 1e-9)
	// Cap any one slab at 70% of a node's service capacity: a slab hotter
	// than a whole node is unfixable by placement — it needs replication
	// or partitioning (kona-kvd shards keys across slabs for exactly this
	// reason). The interesting regime is aggregate imbalance: several
	// warm slabs stacked on one node.
	cap70 := 0.7 / (serviceNs * 1e-9)
	for i := range heats {
		heats[i] *= scale
		if heats[i] > cap70 {
			heats[i] = cap70
		}
	}

	type row struct {
		name    string
		policy  string
		migrate bool
	}
	rows := []row{
		{"rr static", cluster.PolicyRR, false},
		{"load-aware placement", cluster.PolicyLoad, false},
		{"rr + live migration", cluster.PolicyRR, true},
	}

	t := newTable("Regime", "moves", "max node util", "p50", "p99", "p999")
	res := &Result{}
	var rrP99, migP99 float64
	for si, sc := range rows {
		ctrl := cluster.NewController()
		if err := ctrl.SetPlacementPolicy(sc.policy); err != nil {
			return nil, err
		}
		for i := 0; i < nodes; i++ {
			if err := ctrl.Register(cluster.NewMemoryNode(i, nodeCap)); err != nil {
				return nil, err
			}
		}

		gids := make([]uint64, 0, slabs)
		heatOf := make(map[uint64]float64, slabs)
		// nodeRates reads the *current* placement of every slab from the
		// controller, so migration flips show up immediately.
		nodeRates := func() []float64 {
			rates := make([]float64, nodes)
			for _, gid := range gids {
				members, ok := ctrl.Placements(gid)
				if !ok || len(members) == 0 {
					continue
				}
				rates[members[0].Node] += heatOf[gid]
			}
			return rates
		}
		// report feeds the load map the way a deployed rack does:
		// cumulative per-node counters whose deltas the controller EWMAs.
		cum := make([]float64, nodes)
		report := func() {
			rates := nodeRates()
			for n := 0; n < nodes; n++ {
				cum[n] += rates[n] * window
				ctrl.ReportLoad(n, cluster.LoadSample{ReadBytes: uint64(cum[n])})
			}
		}

		for k := 0; k < slabs; k++ {
			s, err := ctrl.AllocSlab(slabSize)
			if err != nil {
				return nil, fmt.Errorf("%s: carve %d: %w", sc.name, k, err)
			}
			gids = append(gids, s.ID)
			heatOf[s.ID] = heats[k]
			if sc.policy == cluster.PolicyLoad {
				// The controller only knows the heat of slabs already
				// carved — placement decisions see the load map as it was
				// when the tenant arrived, not an oracle.
				report()
			}
		}

		moves := 0
		if sc.migrate {
			eng := cluster.NewMigrationEngine(ctrl, cluster.NewLocalMigrationTransport(ctrl), cluster.MigrationConfig{
				HotRatio:         1.25,
				MaxMovesPerSweep: 2,
				RetireSweeps:     2,
				Metrics:          cfg.Metrics,
			})
			for i := 0; i < sweeps; i++ {
				// Several report ticks per sweep so the EWMA (alpha 0.5)
				// converges on the post-flip rates before the next decision;
				// sweeping against a stale load map chases its own tail.
				for r := 0; r < 4; r++ {
					report()
				}
				moves += eng.SweepOnce()
			}
		}

		// Queue model: each node is an M/M/1 server at its final placement's
		// arrival rate; a fetch pays base + service + Exp(mean queue wait).
		rates := nodeRates()
		waits := make([]float64, nodes)
		maxRho := 0.0
		for n, r := range rates {
			rho := r * serviceNs * 1e-9
			if rho > maxRho {
				maxRho = rho
			}
			if rho > 0.99 {
				rho = 0.99 // saturated: report the clamped queue, not infinity
			}
			waits[n] = rho / (1 - rho) * serviceNs
		}
		slabNode := make([]int, slabs)
		cdf := make([]float64, slabs)
		acc := 0.0
		for k, gid := range gids {
			members, _ := ctrl.Placements(gid)
			slabNode[k] = members[0].Node
			acc += heatOf[gid]
			cdf[k] = acc
		}
		srng := rand.New(rand.NewSource(cfg.Seed + int64(si) + 1))
		lat := make([]float64, samples)
		for i := range lat {
			x := srng.Float64() * acc
			k := sort.SearchFloat64s(cdf, x)
			if k >= slabs {
				k = slabs - 1
			}
			l := baseNs + serviceNs
			if w := waits[slabNode[k]]; w > 0 {
				l += srng.ExpFloat64() * w
			}
			lat[i] = l
		}
		sort.Float64s(lat)
		p := func(q float64) string {
			return fmt.Sprintf("%.1fµs", lat[int(q*float64(samples-1))]/1e3)
		}
		p99 := lat[int(0.99*float64(samples-1))]
		switch {
		case sc.name == "rr static":
			rrP99 = p99
		case sc.migrate:
			migP99 = p99
		}
		t.AddRow(sc.name, moves, fmt.Sprintf("%.2f", maxRho), p(0.50), p(0.99), p(0.999))
	}

	res.Text = t.String()
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d memnodes, %d slabs, zipf(%.1f) slab heat, 50%% mean utilization; rr leaves the hottest node saturated while the mean looks healthy", nodes, slabs, zipfS),
		fmt.Sprintf("live migration cuts fetch p99 %.1fx vs static rr (copy-then-flip over the real capture/seal/commit path)", rrP99/migP99))
	return res, nil
}
