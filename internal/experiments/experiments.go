// Package experiments contains one driver per table and figure of the
// paper's evaluation (§2, §6). Each driver regenerates its artifact's
// rows/series from the simulators and runtimes in this repository and
// renders them as text, alongside the paper's published values where they
// exist. The drivers are invoked by the repo-level benchmarks
// (bench_test.go) and by cmd/kona-bench.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"kona/internal/stats"
	"kona/internal/telemetry"
)

// Config adjusts experiment scale.
type Config struct {
	// Quick shrinks trace lengths and sweeps for fast iteration (used by
	// the benchmark harness between full runs).
	Quick bool
	// Seed makes every experiment deterministic.
	Seed int64
	// Workers bounds the fan-out of the parallel experiment engine: both
	// RunAll's artifact-level pool and each driver's sweep-level pool use
	// at most this many goroutines. 0 means GOMAXPROCS; 1 forces fully
	// serial execution. Output is byte-identical for any value (see
	// DESIGN.md §6: every point derives its RNG from Seed alone and
	// results join in stable order).
	Workers int
	// Metrics, when set, is threaded into the runtimes the drivers build
	// (core.Config.Metrics), so an artifact run reports the same counters
	// a production deployment would. Registries hold Store-synced
	// simulator counters, so callers wanting per-artifact deltas should
	// run artifacts serially with a fresh registry each (kona-bench
	// -telemetry does exactly that). Nil disables instrumentation.
	Metrics *telemetry.Registry
}

// DefaultConfig returns the full-scale deterministic configuration.
func DefaultConfig() Config { return Config{Seed: 42} }

// Result is a regenerated table or figure.
type Result struct {
	// ID is the artifact key ("table2", "fig8a", ...).
	ID string
	// Title echoes the paper's caption.
	Title string
	// Text is the rendered artifact (table or series grid).
	Text string
	// Series holds figure curves for programmatic checks.
	Series []stats.Series
	// Notes records deviations, scaling factors and observations.
	Notes []string
	// WallClock marks artifacts whose text embeds a wall-clock
	// self-measurement (ext-overhead's simulator-slowdown ratio). Such
	// artifacts are excluded from the engine's byte-identical determinism
	// contract — everything else renders identically for a fixed seed
	// regardless of Workers.
	WallClock bool
}

// String renders the result for terminal output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Text)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Chart renders the result's series as an ASCII plot (empty when the
// artifact has no series).
func (r *Result) Chart() string {
	if len(r.Series) == 0 {
		return ""
	}
	return stats.Plot(r.Title, "see table", 56, 12, r.Series...)
}

// Runner regenerates one artifact.
type Runner func(Config) (*Result, error)

// entry pairs a runner with its description.
type entry struct {
	runner Runner
	title  string
}

// registry maps artifact IDs to runners.
var registry = map[string]entry{}

// register installs a runner; drivers call it from init.
func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{runner: r, title: title}
}

// IDs returns all artifact IDs in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns an artifact's title.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run regenerates one artifact by ID.
func Run(id string, cfg Config) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown artifact %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := e.runner(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = e.title
	return res, nil
}

// RunAll regenerates every artifact, running independent artifacts
// concurrently on cfg.Workers goroutines and joining results in stable ID
// order — the rendered output is byte-identical to a serial run for a
// fixed seed. Per-artifact failures are aggregated with errors.Join; the
// successfully regenerated results are returned alongside any error.
func RunAll(cfg Config) ([]*Result, error) {
	return RunMany(IDs(), cfg)
}

// RunMany regenerates the given artifacts concurrently, returning results
// in the input order (failed artifacts are omitted from the slice, their
// errors joined into the returned error).
func RunMany(ids []string, cfg Config) ([]*Result, error) {
	results := make([]*Result, len(ids))
	err := forEach(cfg.workers(), len(ids), func(i int) error {
		r, err := Run(ids[i], cfg)
		results[i] = r
		return err
	})
	out := make([]*Result, 0, len(results))
	for _, r := range results {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, err
}

// tableT aliases the stats table for experiment drivers.
type tableT = stats.Table

// newTable builds a stats table (local alias for drivers).
func newTable(header ...string) *tableT { return stats.NewTable(header...) }
