package kv

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kona/internal/telemetry"
)

// Server serves the memcached text protocol over TCP on top of a Store.
// One goroutine per connection; the store's shard locks are the
// concurrency limit, exactly like application goroutines on the data
// path (DESIGN.md §9).
type Server struct {
	store *Store
	l     net.Listener
	m     serverMetrics
	start time.Time

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	draining bool
	wg       sync.WaitGroup // live connection goroutines

	served atomic.Uint64 // commands answered (stats: cmd_total)
}

// connState tracks whether a connection has a command in flight. busy
// is written under Server.mu: Shutdown's wake-idle-readers deadline and
// serveConn's per-request deadline are serialized by the same lock, so
// a drain can never clobber the deadline protecting an in-flight
// request.
type connState struct {
	busy bool
}

type serverMetrics struct {
	getLat, setLat, delLat *telemetry.Histogram
	conns                  *telemetry.Gauge
	badCommands            *telemetry.Counter
}

// latencyBounds spans 1µs..~34s in 1.75x steps — wide enough that an
// overloaded open-loop run still lands in real buckets instead of the
// overflow bucket.
func latencyBounds() []int64 { return telemetry.ExpBounds(1_000, 1.75, 30) }

// NewServer wires a server to a store. reg receives per-op wall-clock
// latency histograms (kv.get.latency, kv.set.latency, kv.delete.latency,
// nanoseconds) and a connection gauge; nil disables.
func NewServer(store *Store, reg *telemetry.Registry) *Server {
	return &Server{
		store: store,
		m: serverMetrics{
			getLat:      reg.Histogram("kv.get.latency", latencyBounds()),
			setLat:      reg.Histogram("kv.set.latency", latencyBounds()),
			delLat:      reg.Histogram("kv.delete.latency", latencyBounds()),
			conns:       reg.Gauge("kv.conns"),
			badCommands: reg.Counter("kv.bad_commands"),
		},
		conns: make(map[net.Conn]*connState),
		start: time.Now(),
	}
}

// Serve accepts connections on l until Shutdown (or Close). It blocks;
// run it in a goroutine. The error is nil on clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("kv: server already shut down")
	}
	s.l = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = &connState{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listen address, once Serve has been called.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.l == nil {
		return ""
	}
	return s.l.Addr().String()
}

// Shutdown drains gracefully: stop accepting, wake connections idle at
// a command boundary, let in-flight commands finish, then close
// everything. It returns the number of connections that were drained
// cleanly; connections still busy past the grace period are closed hard.
func (s *Server) Shutdown(grace time.Duration) int {
	s.mu.Lock()
	s.draining = true
	if s.l != nil {
		s.l.Close()
	}
	// Wake every reader blocked waiting for the *next* command. Busy
	// connections are left alone: their in-flight request runs under its
	// own deadline (armed under this same lock), finishes, and the conn
	// loop exits on the draining flag.
	for c, cs := range s.conns {
		if !cs.busy {
			c.SetReadDeadline(time.Now())
		}
	}
	n := len(s.conns)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return n
}

// Close tears the server down immediately (tests; production paths use
// Shutdown).
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	if s.l != nil {
		s.l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.m.conns.Dec()
	s.wg.Done()
}

// reqDeadline bounds one command's parse+serve once its first line has
// arrived, so a drain is never hostage to a half-sent data block.
const reqDeadline = 30 * time.Second

func (s *Server) serveConn(conn net.Conn) {
	defer s.removeConn(conn)
	s.m.conns.Inc()
	s.mu.Lock()
	cs := s.conns[conn]
	s.mu.Unlock()
	if cs == nil { // raced with Close
		return
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	var cmd command
	var valBuf []byte
	for {
		err := readCommand(br, &cmd, func() {
			// A command is in flight: mark the conn busy and give the
			// request its own deadline, under the same lock Shutdown uses,
			// so a concurrent drain cannot cut it off mid-payload.
			s.mu.Lock()
			cs.busy = true
			conn.SetReadDeadline(time.Now().Add(reqDeadline))
			s.mu.Unlock()
		})
		var cerr *clientError
		switch {
		case err == nil:
		case errors.Is(err, errQuit):
			return
		case errors.As(err, &cerr):
			s.m.badCommands.Inc()
			if cerr.msg == "" {
				writeLine(bw, "ERROR")
			} else {
				writeLine(bw, "CLIENT_ERROR "+cerr.msg)
			}
			if bw.Flush() != nil {
				return
			}
			continue
		default:
			// Timeouts at a command boundary are the drain wake-up (or a
			// dead peer); framing errors and EOF drop the conn either way.
			return
		}
		if !s.serveCommand(bw, &cmd, &valBuf) {
			return
		}
		s.served.Add(1)
		// Back to idle, under the lock: a Shutdown either already flipped
		// draining (we exit) or runs after us and sees busy=false, waking
		// the next read with its immediate deadline.
		s.mu.Lock()
		cs.busy = false
		conn.SetReadDeadline(time.Time{})
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
	}
}

// serveCommand executes one parsed command and writes its response;
// false means the connection is beyond saving.
func (s *Server) serveCommand(bw *bufio.Writer, cmd *command, valBuf *[]byte) bool {
	now := s.store.Clock()
	start := time.Now()
	switch cmd.op {
	case "get", "gets":
		for _, key := range cmd.keys {
			val, flags, _, ok, err := s.store.Get(now, key, *valBuf)
			if err != nil {
				// Corrupt or unreachable entries answer as a miss after
				// the error is counted: memcached semantics, the client
				// repopulates.
				continue
			}
			if ok {
				*valBuf = val
				writeValue(bw, key, flags, val)
			}
		}
		writeLine(bw, "END")
		s.m.getLat.Observe(time.Since(start).Nanoseconds())
	case "set":
		_, err := s.store.Set(now, cmd.keys[0], cmd.data, cmd.flags)
		s.m.setLat.Observe(time.Since(start).Nanoseconds())
		if cmd.noreply {
			break
		}
		switch {
		case err == nil:
			writeLine(bw, "STORED")
		case errors.Is(err, ErrTooLarge):
			writeLine(bw, "SERVER_ERROR object too large for cache")
		default:
			writeLine(bw, "SERVER_ERROR "+err.Error())
		}
	case "delete":
		_, ok, _ := s.store.Delete(now, cmd.keys[0])
		s.m.delLat.Observe(time.Since(start).Nanoseconds())
		if cmd.noreply {
			break
		}
		if ok {
			writeLine(bw, "DELETED")
		} else {
			writeLine(bw, "NOT_FOUND")
		}
	case "stats":
		s.writeStats(bw)
	case "version":
		writeLine(bw, "VERSION kona-kvd/1")
	}
	return bw.Flush() == nil
}

// writeStats answers the stats command: store counters plus enough
// process state to debug a load run from a telnet session.
func (s *Server) writeStats(bw *bufio.Writer) {
	st := s.store.Stats()
	s.mu.Lock()
	nconns := len(s.conns)
	s.mu.Unlock()
	writeStat(bw, "pid", os.Getpid())
	writeStat(bw, "uptime", int64(time.Since(s.start).Seconds()))
	writeStat(bw, "curr_connections", nconns)
	writeStat(bw, "cmd_total", s.served.Load())
	writeStat(bw, "curr_items", st.Keys)
	writeStat(bw, "bytes", st.LiveBytes)
	writeStat(bw, "malloc_chunks", st.Chunks)
	writeStat(bw, "get_hits", st.Hits)
	writeStat(bw, "get_misses", st.Misses)
	writeStat(bw, "cmd_set", st.Sets)
	writeStat(bw, "cmd_delete", st.Deletes)
	writeStat(bw, "evictions", st.Evictions)
	writeStat(bw, "corrupt_records", st.Corrupt)
	writeStat(bw, "goroutines", runtime.NumGoroutine())
	writeLine(bw, "END")
}

// RunSyncLoop drains the store's cache-line log every interval until
// stop closes — the kvd daemon's background writeback pump. Errors are
// reported through errf (ErrRemoteUnavailable during an outage is
// normal and retried next tick).
func (s *Server) RunSyncLoop(interval time.Duration, stop <-chan struct{}, errf func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if _, err := s.store.Sync(s.store.Clock()); err != nil && errf != nil {
				errf(fmt.Errorf("kv: background sync: %w", err))
			}
		}
	}
}
