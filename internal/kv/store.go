package kv

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// Config sizes a Store.
type Config struct {
	// Shards is the number of independently locked store shards; keys
	// route to shards by consistent hashing. 0 defaults to 16. More
	// shards = more concurrent gets/sets, one Malloc chunk of remote
	// memory pinned per active shard.
	Shards int
	// MaxBytes caps the live value-heap footprint across all shards;
	// past it the store evicts least-recently-used entries
	// (memcached semantics: it is a cache, not a database). 0 = no cap.
	MaxBytes uint64
	// ChunkBytes is the value heap's Malloc granularity (default 256KB).
	ChunkBytes uint64
	// Metrics receives hit/miss/set/delete/eviction counters and
	// footprint gauges (DESIGN.md §12). nil disables.
	Metrics *telemetry.Registry
}

// StoreStats is a point-in-time summary across shards.
type StoreStats struct {
	Keys      uint64
	LiveBytes uint64 // block bytes held by the index
	Chunks    int    // Malloc regions carved by the heaps
	Hits      uint64
	Misses    uint64
	Sets      uint64
	Deletes   uint64
	Evictions uint64 // LRU budget evictions
	Corrupt   uint64 // records that failed integrity checks
}

// Store is the sharded KV store: local index, remote values. Safe for
// concurrent use; virtual timestamps are per-caller, as everywhere in
// the runtime (DESIGN.md §9).
type Store struct {
	rt     Runtime
	ring   ring
	shards []*storeShard
	seq    atomic.Uint64 // record write sequence, for torn-write forensics
	clock  atomic.Int64  // high-water virtual time across callers
	m      storeMetrics
}

type storeMetrics struct {
	hits, misses, sets, deletes, evictions, corrupt *telemetry.Counter
	keys, liveBytes                                 *telemetry.Gauge
}

type storeShard struct {
	mu      sync.Mutex
	idx     map[string]entry
	lru     *list.List // front = most recently used; values are keys
	heap    *valueHeap
	budget  uint64 // heap.liveBytes cap, 0 = unlimited
	scratch []byte // record encode/decode buffer, guarded by mu

	hits, misses, sets, deletes, evictions, corrupt uint64
}

type entry struct {
	addr   mem.Addr
	class  int8
	valLen uint32
	flags  uint32 // memcached's opaque client cookie, kept locally
	elem   *list.Element
}

// NewStore builds a store over a runtime. It performs no allocation up
// front; remote chunks are carved as shards first see writes.
func NewStore(rt Runtime, cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	s := &Store{
		rt:     rt,
		ring:   newRing(cfg.Shards),
		shards: make([]*storeShard, cfg.Shards),
	}
	reg := cfg.Metrics
	s.m = storeMetrics{
		hits:      reg.Counter("kv.hits"),
		misses:    reg.Counter("kv.misses"),
		sets:      reg.Counter("kv.sets"),
		deletes:   reg.Counter("kv.deletes"),
		evictions: reg.Counter("kv.evictions"),
		corrupt:   reg.Counter("kv.corrupt"),
		keys:      reg.Gauge("kv.keys"),
		liveBytes: reg.Gauge("kv.live_bytes"),
	}
	for i := range s.shards {
		s.shards[i] = &storeShard{
			idx:    make(map[string]entry),
			lru:    list.New(),
			heap:   newValueHeap(rt, cfg.ChunkBytes),
			budget: cfg.MaxBytes / uint64(cfg.Shards),
		}
	}
	return s
}

func (s *Store) shardFor(key string) *storeShard {
	return s.shards[s.ring.shardOf(hashKey(key))]
}

// advance folds a caller's virtual time into the store's high-water
// clock (used by the background syncer, which has no caller clock).
func (s *Store) advance(t simclock.Duration) {
	for {
		cur := s.clock.Load()
		if int64(t) <= cur || s.clock.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Clock returns the high-water virtual time observed across callers.
func (s *Store) Clock() simclock.Duration { return simclock.Duration(s.clock.Load()) }

func (sh *storeShard) grow(n int) []byte {
	if cap(sh.scratch) < n {
		sh.scratch = make([]byte, n+n/2)
	}
	return sh.scratch[:n]
}

// Get fetches key's value, appending it to dst (pass nil to allocate).
// ok reports whether the key was present; flags is the cookie stored
// with it. A record failing integrity checks returns ErrCorrupt — it is
// counted, the entry dropped, and the block quarantined (not recycled).
func (s *Store) Get(now simclock.Duration, key string, dst []byte) (val []byte, flags uint32, t simclock.Duration, ok bool, err error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, present := sh.idx[key]
	if !present {
		sh.misses++
		s.m.misses.Inc()
		return nil, 0, now, false, nil
	}
	n := recordSize(len(key), int(e.valLen))
	buf := sh.grow(n)
	t, err = s.rt.Read(now, e.addr, buf)
	s.advance(t)
	if err != nil {
		return nil, 0, t, false, fmt.Errorf("kv: get %q: %w", key, err)
	}
	v, _, derr := decodeRecord(buf, key)
	if derr != nil {
		sh.corrupt++
		s.m.corrupt.Inc()
		sh.dropLocked(key, e, false, &s.m)
		return nil, 0, t, false, derr
	}
	sh.lru.MoveToFront(e.elem)
	sh.hits++
	s.m.hits.Inc()
	return append(dst[:0], v...), e.flags, t, true, nil
}

// Set stores key=value: encode the record, place it in a fresh heap
// block, write it through the runtime (FMem + dirty tracking), then
// flip the index entry and recycle the old block. The new block is
// written before the index flips, so a concurrent crash of a memory
// node can tear at worst an unacknowledged write.
func (s *Store) Set(now simclock.Duration, key string, value []byte, flags uint32) (t simclock.Duration, err error) {
	if len(key) > maxKeyLen || len(value) > maxValueLen {
		return now, fmt.Errorf("%w: key %d bytes, value %d bytes", ErrTooLarge, len(key), len(value))
	}
	n := recordSize(len(key), len(value))
	seq := s.seq.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	addr, class, err := sh.heap.alloc(n)
	if err != nil {
		return now, err
	}
	buf := sh.grow(n)
	encodeRecord(buf, key, value, seq)
	t, err = s.rt.Write(now, addr, buf)
	s.advance(t)
	if err != nil {
		sh.heap.release(addr, class)
		return t, fmt.Errorf("kv: set %q: %w", key, err)
	}
	s.m.liveBytes.Add(int64(blockBytes(class)))
	if old, present := sh.idx[key]; present {
		sh.heap.release(old.addr, int(old.class))
		sh.lru.Remove(old.elem)
		s.m.liveBytes.Add(-int64(blockBytes(int(old.class))))
	} else {
		s.m.keys.Inc()
	}
	sh.idx[key] = entry{
		addr:   addr,
		class:  int8(class),
		valLen: uint32(len(value)),
		flags:  flags,
		elem:   sh.lru.PushFront(key),
	}
	sh.sets++
	s.m.sets.Inc()
	sh.evictOverBudgetLocked(&s.m)
	return t, nil
}

// Delete removes key; ok reports whether it was present.
func (s *Store) Delete(now simclock.Duration, key string) (t simclock.Duration, ok bool, err error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, present := sh.idx[key]
	if !present {
		return now, false, nil
	}
	sh.dropLocked(key, e, true, &s.m)
	sh.deletes++
	s.m.deletes.Inc()
	return now, true, nil
}

// dropLocked removes an index entry. recycle=false quarantines the
// block (corrupt records: leaking one block beats handing a poisoned
// address back out).
func (sh *storeShard) dropLocked(key string, e entry, recycle bool, m *storeMetrics) {
	if recycle {
		sh.heap.release(e.addr, int(e.class))
	} else {
		sh.heap.liveBytes -= blockBytes(int(e.class))
	}
	sh.lru.Remove(e.elem)
	delete(sh.idx, key)
	m.keys.Dec()
	m.liveBytes.Add(-int64(blockBytes(int(e.class))))
}

// evictOverBudgetLocked walks the LRU tail until the shard's live bytes
// fit the budget again — the memcached capacity regime, surfaced
// through the kv.evictions counter so a load run can tell cache
// pressure from misses.
func (sh *storeShard) evictOverBudgetLocked(m *storeMetrics) {
	if sh.budget == 0 {
		return
	}
	for sh.heap.liveBytes > sh.budget && sh.lru.Len() > 1 {
		tail := sh.lru.Back()
		key := tail.Value.(string)
		e := sh.idx[key]
		sh.dropLocked(key, e, true, m)
		sh.evictions++
		m.evictions.Inc()
	}
}

// Sync drains the runtime's cache-line log to the memory nodes (and,
// after a repair, picks up placement flips). The kvd daemon calls this
// on a timer.
func (s *Store) Sync(now simclock.Duration) (simclock.Duration, error) {
	if now < s.Clock() {
		now = s.Clock()
	}
	t, err := s.rt.Sync(now)
	s.advance(t)
	return t, err
}

// Stats sums per-shard counters. It takes every shard lock briefly, so
// it is consistent per shard but not across shards — fine for stats.
func (s *Store) Stats() StoreStats {
	var st StoreStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Keys += uint64(len(sh.idx))
		st.LiveBytes += sh.heap.liveBytes
		st.Chunks += sh.heap.chunkCount
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Sets += sh.sets
		st.Deletes += sh.deletes
		st.Evictions += sh.evictions
		st.Corrupt += sh.corrupt
		sh.mu.Unlock()
	}
	return st
}
