package kv

import (
	"net"
	"os"
	"testing"
	"time"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
	"kona/internal/telemetry"
)

// End-to-end tests: kona-kvd's full stack — text protocol over TCP, the
// store, the Kona runtime, and real memory-node daemons on loopback
// sockets — driven by the open-loop load engine. `make kv-bench` and
// `make kv-soak` run these with CI-grade budgets.

// kvTransport is the wire policy for the e2e runs: fast deadlines, deep
// retries, so a killed node stalls requests instead of failing the run.
func kvTransport() cluster.Transport {
	return cluster.Transport{
		DialTimeout:    time.Second,
		RequestTimeout: 2 * time.Second,
		MaxRetries:     10,
		BackoffBase:    500 * time.Microsecond,
		BackoffMax:     10 * time.Millisecond,
		Seed:           97,
	}
}

// kvRig is a full service stack on loopback TCP: controller daemon, n
// memory-node daemons, a kvd server backed by a TCP-attached runtime.
type kvRig struct {
	ctrl     *cluster.Controller
	cs       *cluster.ControllerServer
	nodes    []*cluster.MemoryNodeServer
	rt       *core.Kona
	store    *Store
	server   *Server
	addr     string
	reg      *telemetry.Registry
	serveErr chan error
}

func newKVRig(t *testing.T, nodes int, cacheBytes uint64, replicas int) *kvRig {
	t.Helper()
	r := &kvRig{ctrl: cluster.NewController(), reg: telemetry.New(0), serveErr: make(chan error, 1)}
	cs, err := cluster.ServeController(r.ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.cs = cs
	t.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	defer cc.Close()
	for i := 0; i < nodes; i++ {
		ns, err := cluster.ServeMemoryNode(cluster.NewMemoryNode(i, 256<<20), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 256<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, ns)
	}

	cfg := core.DefaultConfig(cacheBytes)
	cfg.Replicas = replicas
	cfg.Metrics = r.reg
	r.rt = core.NewKonaTCPWith(cfg, cs.Addr(), kvTransport())
	r.store = NewStore(r.rt, Config{Shards: 16, Metrics: r.reg})
	r.server = NewServer(r.store, r.reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.addr = l.Addr().String()
	go func() { r.serveErr <- r.server.Serve(l) }()
	t.Cleanup(func() {
		r.server.Close()
		if err := <-r.serveErr; err != nil {
			t.Errorf("kvd serve: %v", err)
		}
	})
	return r
}

// TestKVBenchSLO is the `make kv-bench` run: a fixed-seed open-loop
// zipfian mix against the full TCP stack, asserting the SLO holds, the
// verify pass finds every acknowledged write intact, and — the point of
// the exercise — the values actually lived in disaggregated memory
// (nonzero fetch/evict traffic), not in a local map.
func TestKVBenchSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e bench skipped in -short")
	}
	// Cache far below the working set so the hot set fights for local
	// memory and the remote path carries real traffic.
	rig := newKVRig(t, 2, 2<<20, 1)
	stopSync := make(chan struct{})
	defer close(stopSync)
	go rig.server.RunSyncLoop(20*time.Millisecond, stopSync, nil)

	// Under -race the serve path runs several-fold slower and the open
	// loop honestly reports the resulting queueing as latency; keep the
	// correctness asserts but lower the offered rate and drop the SLO
	// bar (it is enforced by the race-free `make kv-bench`).
	rate := 20_000.0
	if raceEnabled {
		rate = 5_000
	}
	eng, err := NewEngine(LoadConfig{
		Workload: WorkloadConfig{
			Keys:         200_000,
			ZipfS:        1.1,
			ReadFraction: 0.8,
			RatePerSec:   rate,
			Seed:         1,
		},
		Conns:   8,
		Ops:     40_000,
		SLOp99:  250 * time.Millisecond,
		SLOp999: time.Second,
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(rig.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bench: %d/%d completed in %s, %d errors, get p50=%s p99=%s, set p50=%s p99=%s",
		res.Completed, res.Issued, res.Wall.Round(time.Millisecond), res.Errors,
		res.Get.P50, res.Get.P99, res.Set.P50, res.Set.P99)

	if res.Errors != 0 {
		t.Errorf("%d errors on a healthy rack", res.Errors)
	}
	if res.Completed != res.Issued || res.Completed != 40_000 {
		t.Errorf("completed %d/%d, want all 40000", res.Completed, res.Issued)
	}
	if res.SLOViolated && !raceEnabled {
		t.Errorf("SLO violated: p99=%s p999=%s", res.All.P99, res.All.P999)
	}
	if res.VerifiedKeys == 0 {
		t.Fatal("verify checked nothing")
	}
	if res.Missing+res.Torn+res.Stale != 0 {
		t.Errorf("verify: %d missing, %d torn, %d stale", res.Missing, res.Torn, res.Stale)
	}

	// The remote path must have carried the values: page fetches from
	// the memory nodes and evictions out of the local cache.
	snap := rig.reg.Snapshot()
	if snap.Counters["core.fetches"] == 0 {
		t.Error("core.fetches = 0 — values never came back from the memory nodes")
	}
	if snap.Counters["core.evictions"] == 0 {
		t.Error("core.evictions = 0 — working set never left local memory")
	}
	if est := rig.rt.EvictStats(); est.PagesEvicted == 0 {
		t.Error("no pages evicted — cache never pressured")
	}
}

// TestKVSoak is the `make kv-soak` run: a longer mixed workload under
// -race. The duration comes from KONA_KV_SOAK (e.g. "30s"); unset, a
// short smoke keeps plain `go test ./...` fast.
func TestKVSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	horizon := 2 * time.Second
	if env := os.Getenv("KONA_KV_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("KONA_KV_SOAK=%q: %v", env, err)
		}
		horizon = d
	}
	rig := newKVRig(t, 3, 4*mem.PageSize*64, 2)
	stopSync := make(chan struct{})
	defer close(stopSync)
	go rig.server.RunSyncLoop(20*time.Millisecond, stopSync, nil)

	eng, err := NewEngine(LoadConfig{
		Workload: WorkloadConfig{
			Keys:         100_000,
			ZipfS:        1.2,
			ReadFraction: 0.7,
			RatePerSec:   8_000,
			Seed:         3,
		},
		Conns:    6,
		Duration: horizon,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(rig.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak %s: %d completed, %d errors, all p99=%s", horizon, res.Completed, res.Errors, res.All.P99)
	if res.Errors != 0 {
		t.Errorf("%d errors on a healthy rack", res.Errors)
	}
	if res.Missing+res.Torn+res.Stale != 0 {
		t.Errorf("verify: %d missing, %d torn, %d stale", res.Missing, res.Torn, res.Stale)
	}
	if st := rig.store.Stats(); st.Corrupt != 0 {
		t.Errorf("%d corrupt records after soak", st.Corrupt)
	}
}
