package kv

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"kona/internal/cluster"
	"kona/internal/core"
	"kona/internal/mem"
	"kona/internal/telemetry"
)

// simRuntime builds a Kona runtime over an in-process simulated rack,
// sized so the value heap overflows the local cache and every test
// exercises the fetch/dirty-track/evict path for real.
func simRuntime(t testing.TB, cacheBytes uint64) *core.Kona {
	t.Helper()
	ctrl := cluster.NewController()
	for i := 0; i < 2; i++ {
		if err := ctrl.Register(cluster.NewMemoryNode(i, 256<<20)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.DefaultConfig(cacheBytes)
	return core.NewKona(cfg, ctrl)
}

func TestStoreSetGetDelete(t *testing.T) {
	s := NewStore(simRuntime(t, 1<<20), Config{Shards: 4})
	// Miss before any write.
	_, _, _, ok, err := s.Get(0, "absent", nil)
	if err != nil || ok {
		t.Fatalf("get absent = ok %t err %v", ok, err)
	}

	tnow, err := s.Set(0, "alpha", []byte("first value"), 42)
	if err != nil {
		t.Fatal(err)
	}
	val, flags, tnow, ok, err := s.Get(tnow, "alpha", nil)
	if err != nil || !ok {
		t.Fatalf("get alpha = ok %t err %v", ok, err)
	}
	if string(val) != "first value" || flags != 42 {
		t.Fatalf("got %q flags %d", val, flags)
	}

	// Overwrite changes value and flags, recycles the old block.
	if tnow, err = s.Set(tnow, "alpha", []byte("second value, longer than before"), 7); err != nil {
		t.Fatal(err)
	}
	val, flags, tnow, ok, err = s.Get(tnow, "alpha", val)
	if err != nil || !ok || string(val) != "second value, longer than before" || flags != 7 {
		t.Fatalf("after overwrite: %q flags %d ok %t err %v", val, flags, ok, err)
	}

	// Delete, then miss.
	if _, ok, err = s.Delete(tnow, "alpha"); err != nil || !ok {
		t.Fatalf("delete = ok %t err %v", ok, err)
	}
	if _, ok, err = s.Delete(tnow, "alpha"); err != nil || ok {
		t.Fatalf("double delete = ok %t err %v", ok, err)
	}
	if _, _, _, ok, _ = s.Get(tnow, "alpha", nil); ok {
		t.Fatal("get after delete still answers")
	}

	st := s.Stats()
	if st.Keys != 0 || st.Sets != 2 || st.Deletes != 1 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreChurnAgainstMirror runs a randomized set/get/delete stream
// with the value heap many times the local cache, comparing every
// answer to an in-memory mirror — the store-level analogue of the
// runtime's model tests.
func TestStoreChurnAgainstMirror(t *testing.T) {
	reg := telemetry.New(0)
	rt := simRuntime(t, 64*mem.PageSize) // tiny cache: constant eviction
	s := NewStore(rt, Config{Shards: 8, Metrics: reg})
	mirror := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	tnow := s.Clock()

	steps := 4000
	if testing.Short() {
		steps = 800
	}
	for i := 0; i < steps; i++ {
		key := fmt.Sprintf("user:%d", rng.Intn(700))
		switch op := rng.Intn(10); {
		case op < 5: // set
			val := fmt.Sprintf("%s#%d#%s", key, i, randomPayload(rng, 16+rng.Intn(900)))
			var err error
			if tnow, err = s.Set(tnow, key, []byte(val), uint32(i)); err != nil {
				t.Fatalf("step %d set: %v", i, err)
			}
			mirror[key] = val
		case op < 9: // get
			val, _, tn, ok, err := s.Get(tnow, key, nil)
			if err != nil {
				t.Fatalf("step %d get: %v", i, err)
			}
			tnow = tn
			want, present := mirror[key]
			if ok != present || (ok && string(val) != want) {
				t.Fatalf("step %d: get %q = (%q, %t), mirror (%q, %t)", i, key, val, ok, want, present)
			}
		default: // delete
			_, ok, err := s.Delete(tnow, key)
			if err != nil {
				t.Fatalf("step %d delete: %v", i, err)
			}
			if _, present := mirror[key]; ok != present {
				t.Fatalf("step %d: delete %q = %t, mirror %t", i, key, ok, present)
			}
			delete(mirror, key)
		}
	}

	// Final sweep: every mirrored key answers, byte-exact.
	for key, want := range mirror {
		val, _, tn, ok, err := s.Get(tnow, key, nil)
		if err != nil || !ok || string(val) != want {
			t.Fatalf("final %q = (%q, %t, %v)", key, val, ok, err)
		}
		tnow = tn
	}
	if st := s.Stats(); st.Corrupt != 0 || st.Keys != uint64(len(mirror)) {
		t.Fatalf("stats = %+v, mirror %d keys", st, len(mirror))
	}
	// The runtime must have seen real eviction traffic (values >> cache).
	if est := rt.EvictStats(); est.PagesEvicted == 0 {
		t.Fatalf("no eviction traffic: %+v — values are not living remotely", est)
	}
}

func randomPayload(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestStoreBudgetEviction(t *testing.T) {
	reg := telemetry.New(0)
	// One shard so the budget applies to a single LRU; 64KB budget.
	s := NewStore(simRuntime(t, 1<<20), Config{Shards: 1, MaxBytes: 64 << 10, Metrics: reg})
	var tnow = s.Clock()
	var err error
	// 256 keys x 512B values ≈ 2x the budget: the tail must be evicted.
	for i := 0; i < 256; i++ {
		if tnow, err = s.Set(tnow, fmt.Sprintf("k%03d", i), make([]byte, 512), 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no LRU evictions under budget pressure: %+v", st)
	}
	if st.LiveBytes > 64<<10 {
		t.Fatalf("live bytes %d exceed the 64KB budget", st.LiveBytes)
	}
	if st.Keys == 0 {
		t.Fatal("budget eviction emptied the store")
	}
	// The newest key survived; the oldest was evicted.
	if _, _, _, ok, _ := s.Get(tnow, "k255", nil); !ok {
		t.Fatal("most recent key evicted")
	}
	if _, _, _, ok, _ := s.Get(tnow, "k000", nil); ok {
		t.Fatal("oldest key survived a 2x-budget overrun")
	}
	if got := reg.Snapshot().Counters["kv.evictions"]; got != st.Evictions {
		t.Fatalf("telemetry evictions %d != stats %d", got, st.Evictions)
	}
}

// TestStoreCorruptDetection plants corruption in the remote record and
// checks Get surfaces ErrCorrupt (and quarantines the entry) instead of
// returning wrong bytes.
func TestStoreCorruptDetection(t *testing.T) {
	rt := simRuntime(t, 1<<20)
	s := NewStore(rt, Config{Shards: 1})
	tnow, err := s.Set(0, "victim", []byte("precious payload"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reach under the index for the record address and flip value bytes
	// through the runtime, simulating a torn or misdirected write.
	sh := s.shardFor("victim")
	e := sh.idx["victim"]
	if tnow, err = rt.Write(tnow, e.addr+headerSize+6, []byte("XXXX")); err != nil {
		t.Fatal(err)
	}
	_, _, _, ok, err := s.Get(tnow, "victim", nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("get corrupt record = ok %t err %v, want ErrCorrupt", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Keys != 0 {
		t.Fatalf("stats after corruption = %+v", st)
	}
	// The slot is gone; a re-set repopulates cleanly.
	if tnow, err = s.Set(tnow, "victim", []byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	val, _, _, ok, err := s.Get(tnow, "victim", nil)
	if err != nil || !ok || string(val) != "fresh" {
		t.Fatalf("repopulate = %q %t %v", val, ok, err)
	}
}

// TestStoreConcurrent hammers the store from several goroutines over
// overlapping keys — meaningful under -race (make stress).
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(simRuntime(t, 64*mem.PageSize), Config{Shards: 8})
	const workers = 4
	steps := 1200
	if testing.Short() {
		steps = 300
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			tnow := s.Clock()
			for i := 0; i < steps; i++ {
				key := fmt.Sprintf("shared:%d", rng.Intn(200))
				if rng.Intn(3) == 0 {
					var err error
					if tnow, err = s.Set(tnow, key, []byte(key+"-payload-counter"), 0); err != nil {
						errs <- err
						return
					}
				} else {
					_, _, tn, _, err := s.Get(tnow, key, nil)
					if err != nil {
						errs <- err
						return
					}
					tnow = tn
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent churn produced corrupt reads: %+v", st)
	}
}
