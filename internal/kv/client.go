package kv

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is one text-protocol connection to a kvd server. It is not
// safe for concurrent use — the load engine gives each worker its own
// client, like a real memcached client pool.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a kvd server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("kv: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 16<<10),
		bw:   bufio.NewWriterSize(conn, 16<<10),
	}
}

// Close sends quit and closes the connection.
func (c *Client) Close() error {
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.conn.Close()
}

// Set stores key=value and waits for the STORED acknowledgment.
func (c *Client) Set(key string, flags uint32, value []byte) error {
	fmt.Fprintf(c.bw, "set %s %d 0 %d\r\n", key, flags, len(value))
	c.bw.Write(value)
	c.bw.WriteString("\r\n")
	if err := c.bw.Flush(); err != nil {
		return err
	}
	line, err := readLine(c.br)
	if err != nil {
		return err
	}
	if line != "STORED" {
		return fmt.Errorf("kv: set %q: server answered %q", key, line)
	}
	return nil
}

// Get fetches one key; ok reports presence.
func (c *Client) Get(key string) (value []byte, flags uint32, ok bool, err error) {
	fmt.Fprintf(c.bw, "get %s\r\n", key)
	if err := c.bw.Flush(); err != nil {
		return nil, 0, false, err
	}
	for {
		line, err := readLine(c.br)
		if err != nil {
			return nil, 0, false, err
		}
		switch {
		case line == "END":
			return value, flags, ok, nil
		case strings.HasPrefix(line, "VALUE "):
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != key {
				return nil, 0, false, fmt.Errorf("kv: get %q: bad VALUE line %q", key, line)
			}
			f, ferr := strconv.ParseUint(fields[2], 10, 32)
			n, nerr := strconv.Atoi(fields[3])
			if ferr != nil || nerr != nil || n < 0 || n > maxValueLen {
				return nil, 0, false, fmt.Errorf("kv: get %q: bad VALUE line %q", key, line)
			}
			value = make([]byte, n)
			if _, err := io.ReadFull(c.br, value); err != nil {
				return nil, 0, false, err
			}
			if err := expectCRLF(c.br); err != nil {
				return nil, 0, false, err
			}
			flags, ok = uint32(f), true
		default:
			return nil, 0, false, fmt.Errorf("kv: get %q: server answered %q", key, line)
		}
	}
}

// Delete removes a key; ok reports whether it existed.
func (c *Client) Delete(key string) (ok bool, err error) {
	fmt.Fprintf(c.bw, "delete %s\r\n", key)
	if err := c.bw.Flush(); err != nil {
		return false, err
	}
	line, err := readLine(c.br)
	if err != nil {
		return false, err
	}
	switch line {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	}
	return false, fmt.Errorf("kv: delete %q: server answered %q", key, line)
}

// Stats fetches the server's stats map.
func (c *Client) Stats() (map[string]string, error) {
	c.bw.WriteString("stats\r\n")
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := readLine(c.br)
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("kv: stats: bad line %q", line)
		}
		out[fields[1]] = fields[2]
	}
}
