//go:build !race

package kv

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
