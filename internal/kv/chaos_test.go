package kv

import (
	"os"
	"strconv"
	"testing"
	"time"

	"kona/internal/cluster"
)

// TestKVChaosKillReplicaRepairVerify is the service-level chaos run
// (DESIGN.md §12): kona-kvd over a real TCP cluster with Replicas=2,
// one memory node killed in the middle of an open-loop mixed workload,
// the controller-side repair machinery healing the rack, and the load
// generator's verify pass proving afterwards that no acknowledged set
// was lost, torn, or regressed. `make chaos` runs this under -race with
// a rotating seed.
func TestKVChaosKillReplicaRepairVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short")
	}
	seed := int64(1)
	if s := os.Getenv("KONA_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("KONA_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
		t.Logf("chaos seed %d", seed)
	}

	// Three nodes, two replicas: killing any node leaves a surviving
	// copy of every slab plus a spare to repair onto. Small cache keeps
	// values remote; a write-heavy mix keeps dirty lines in flight.
	rig := newKVRig(t, 3, 2<<20, 2)
	stopSync := make(chan struct{})
	defer close(stopSync)
	// Background sync keeps shipping during the outage; remote-
	// unavailable errors there are expected and retried next tick.
	go rig.server.RunSyncLoop(20*time.Millisecond, stopSync, nil)

	eng, err := NewEngine(LoadConfig{
		Workload: WorkloadConfig{
			Keys:         50_000,
			ZipfS:        1.1,
			ReadFraction: 0.5,
			RatePerSec:   15_000,
			Seed:         seed,
		},
		Conns:  6,
		Ops:    30_000,
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	resCh := make(chan Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := eng.Run(rig.addr)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Let the run warm up, then kill one memory-node daemon mid-load.
	// The seed rotates which node dies, but the victim must actually
	// hold slabs — a node the allocator never touched degrades nothing.
	for eng.Issued() < 8_000 {
		time.Sleep(10 * time.Millisecond)
	}
	victim := int(uint64(seed) % 3)
	for i := 0; i < 3; i++ {
		cand := (victim + i) % 3
		if n, ok := rig.ctrl.Node(cand); ok {
			if _, used := n.Capacity(); used > 0 {
				victim = cand
				break
			}
		}
	}
	t.Logf("killing memory node %d at %d ops issued", victim, eng.Issued())
	rig.nodes[victim].Close()

	// Degraded phase: let the runtime notice (failed ships report the
	// outage; the health sweep is the backstop) while load continues.
	time.Sleep(300 * time.Millisecond)
	rig.ctrl.HealthSweep()
	if rig.ctrl.DegradedCount() == 0 {
		t.Fatal("node loss not detected: no slabs degraded")
	}

	// Repair over the wire: copy each degraded slab from its surviving
	// replica onto a spare node through the daemons' data RPCs.
	engine := cluster.NewRepairEngine(rig.ctrl,
		cluster.NewTCPRepairTransport(rig.cs.NodeAddr, kvTransport()),
		cluster.RepairConfig{BytesPerSec: 512 << 20})
	for i := 0; rig.ctrl.DegradedCount() > 0; i++ {
		if i > 200 {
			t.Fatalf("repair did not converge: %d slabs still degraded", rig.ctrl.DegradedCount())
		}
		engine.RepairOnce()
	}
	if st := engine.Stats(); st.Flips == 0 {
		t.Fatalf("repair drained with zero placement flips: %+v", st)
	}
	t.Logf("repair done at %d ops issued: %+v", eng.Issued(), engine.Stats())

	// The rest of the load runs on the healed rack.
	var res Result
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		t.Fatal("load run hung")
	}

	t.Logf("chaos: %d/%d completed, %d errors, verify: %d keys, %d missing, %d torn, %d stale",
		res.Completed, res.Issued, res.Errors, res.VerifiedKeys, res.Missing, res.Torn, res.Stale)
	t.Logf("failure stats: %+v", rig.rt.FailureStats())

	// The acceptance bar: zero acknowledged writes lost or torn. Errors
	// during the outage are fine (unacknowledged ops don't count); the
	// verify pass runs after repair, so every ack must be honored.
	if res.VerifiedKeys == 0 {
		t.Fatal("verify checked nothing")
	}
	if res.Missing != 0 || res.Torn != 0 || res.Stale != 0 {
		t.Errorf("acknowledged writes violated: %d missing, %d torn, %d stale",
			res.Missing, res.Torn, res.Stale)
	}
	// The store itself must have seen no corruption.
	if st := rig.store.Stats(); st.Corrupt != 0 {
		t.Errorf("%d corrupt records", st.Corrupt)
	}
	// And the outage must actually have been exercised end to end.
	fs := rig.rt.FailureStats()
	if fs.ShipFailureReports == 0 && fs.Failovers == 0 {
		t.Errorf("outage never touched the data path: %+v", fs)
	}
	// The repaired replica's read fence must have lifted: the catch-up
	// drain re-ships the retained entries within a sync period or two,
	// and a run this long settles many times over.
	if fs.SuspectMembers != 0 {
		t.Errorf("%d repaired members still fenced from reads at end of run", fs.SuspectMembers)
	}
}
