package kv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The wire protocol is memcached's text protocol (DESIGN.md §12 has the
// grammar): newline-framed commands, byte-counted data blocks.
//
//	get <key> [<key> ...]\r\n
//	set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//	delete <key> [noreply]\r\n
//	stats\r\n
//	version\r\n
//	quit\r\n
//
// Responses: VALUE <key> <flags> <bytes>\r\n<data>\r\n ... END\r\n for
// get; STORED / DELETED / NOT_FOUND; STAT <name> <value>\r\n ... END\r\n;
// ERROR / CLIENT_ERROR <msg> / SERVER_ERROR <msg> on failure. flags are
// stored verbatim per key (memcached's opaque 32-bit client cookie);
// exptime is accepted and ignored (documented — the store's eviction is
// capacity-driven, not TTL-driven).

type command struct {
	op      string // "get", "set", "delete", "stats", "version", "quit"
	keys    []string
	flags   uint32
	noreply bool
	data    []byte // set payload
}

var errQuit = errors.New("kv: client quit")

// maxLineLen bounds a command line; memcached uses a fixed 2KB buffer.
const maxLineLen = 2048

// readCommand parses one command off the stream. Protocol errors that
// leave the stream framed (bad arguments on a known verb) return a
// *clientError so the server can answer CLIENT_ERROR and keep the
// connection; framing-breaking errors (overlong line, short data block)
// return ordinary errors and drop the connection, matching memcached.
//
// armed (optional) runs as soon as the command line has arrived —
// before any data block is read. The server uses it to give an
// in-flight command its own deadline, so a graceful drain (which wakes
// readers blocked *between* commands with an immediate deadline) never
// cuts a request off mid-payload.
func readCommand(br *bufio.Reader, cmd *command, armed func()) error {
	line, err := readLine(br)
	if err != nil {
		return err
	}
	if armed != nil {
		armed()
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return &clientError{"empty command"}
	}
	*cmd = command{op: fields[0], keys: cmd.keys[:0], data: cmd.data[:0]}
	switch cmd.op {
	case "get", "gets":
		if len(fields) < 2 {
			return &clientError{"get needs at least one key"}
		}
		for _, k := range fields[1:] {
			if len(k) > maxKeyLen {
				return &clientError{"key too long"}
			}
			cmd.keys = append(cmd.keys, k)
		}
	case "set":
		if len(fields) < 5 || len(fields) > 6 {
			return &clientError{"set <key> <flags> <exptime> <bytes> [noreply]"}
		}
		if len(fields) == 6 {
			if fields[5] != "noreply" {
				return &clientError{"bad set option " + fields[5]}
			}
			cmd.noreply = true
		}
		key := fields[1]
		flags, ferr := strconv.ParseUint(fields[2], 10, 32)
		_, eerr := strconv.ParseInt(fields[3], 10, 64) // exptime: accepted, ignored
		n, nerr := strconv.ParseInt(fields[4], 10, 64)
		if nerr != nil || n < 0 || n > maxValueLen*2 {
			// The length governs how many bytes of data block follow; if we
			// can't trust it the stream is unframed — drop the connection.
			return fmt.Errorf("kv: unframeable set length %q", fields[4])
		}
		if ferr != nil || eerr != nil || len(key) > maxKeyLen || n > maxValueLen {
			// The command is bad but the data block is framed: drain it so
			// the connection stays usable, then reject.
			if derr := discardBlock(br, int(n)); derr != nil {
				return derr
			}
			if n > maxValueLen {
				return &clientError{"object too large for cache"}
			}
			return &clientError{"bad set arguments"}
		}
		cmd.keys = append(cmd.keys, key)
		cmd.flags = uint32(flags)
		if cap(cmd.data) < int(n) {
			cmd.data = make([]byte, n)
		}
		cmd.data = cmd.data[:n]
		if _, err := io.ReadFull(br, cmd.data); err != nil {
			return fmt.Errorf("kv: short data block: %w", err)
		}
		if err := expectCRLF(br); err != nil {
			return err
		}
	case "delete":
		if len(fields) < 2 || len(fields) > 3 {
			return &clientError{"delete <key> [noreply]"}
		}
		if len(fields) == 3 {
			if fields[2] != "noreply" {
				return &clientError{"bad delete option " + fields[2]}
			}
			cmd.noreply = true
		}
		cmd.keys = append(cmd.keys, fields[1])
	case "stats", "version":
		// no arguments
	case "quit":
		return errQuit
	default:
		return &clientError{""} // bare ERROR, memcached's unknown-verb answer
	}
	return nil
}

// clientError is a recoverable protocol error: answered on the wire,
// connection kept.
type clientError struct{ msg string }

func (e *clientError) Error() string { return e.msg }

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("kv: command line over %d bytes", maxLineLen)
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func expectCRLF(br *bufio.Reader) error {
	b0, err := br.ReadByte()
	if err != nil {
		return err
	}
	if b0 == '\r' {
		if b0, err = br.ReadByte(); err != nil {
			return err
		}
	}
	if b0 != '\n' {
		return errors.New("kv: data block not followed by CRLF")
	}
	return nil
}

func discardBlock(br *bufio.Reader, n int) error {
	if _, err := br.Discard(n); err != nil {
		return err
	}
	return expectCRLF(br)
}

// Response writers. All take the buffered writer; the caller flushes
// once per command (multi-get answers in one flush).

func writeValue(bw *bufio.Writer, key string, flags uint32, val []byte) {
	bw.WriteString("VALUE ")
	bw.WriteString(key)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(uint64(flags), 10))
	bw.WriteByte(' ')
	bw.WriteString(strconv.Itoa(len(val)))
	bw.WriteString("\r\n")
	bw.Write(val)
	bw.WriteString("\r\n")
}

func writeLine(bw *bufio.Writer, line string) {
	bw.WriteString(line)
	bw.WriteString("\r\n")
}

func writeStat(bw *bufio.Writer, name string, value any) {
	fmt.Fprintf(bw, "STAT %s %v\r\n", name, value)
}
