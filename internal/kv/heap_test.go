package kv

import (
	"testing"
)

func TestClassOfBoundaries(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{1, 0}, {63, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{4096, 6}, {4097, 7}, {maxRecordLen, classOf(maxRecordLen)},
	}
	for _, c := range cases {
		if got := classOf(c.n); got != c.want {
			t.Errorf("classOf(%d) = %d, want %d", c.n, got, c.want)
		}
		if int(blockBytes(classOf(c.n))) < c.n {
			t.Errorf("classOf(%d) block %d too small", c.n, blockBytes(classOf(c.n)))
		}
	}
	// The largest record must fit the largest class.
	if blockBytes(nClasses-1) < maxRecordLen {
		t.Fatalf("class table tops out at %d, records reach %d", blockBytes(nClasses-1), maxRecordLen)
	}
}

func TestHeapReuseAndAccounting(t *testing.T) {
	h := newValueHeap(simRuntime(t, 1<<20), 64<<10)
	a1, c1, err := h.alloc(100) // class 1 (128B)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := h.alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("two live blocks share an address")
	}
	if h.liveBytes != 256 {
		t.Fatalf("liveBytes = %d, want 256", h.liveBytes)
	}
	h.release(a1, c1)
	if h.liveBytes != 128 {
		t.Fatalf("liveBytes after release = %d, want 128", h.liveBytes)
	}
	// The freed block is recycled for the next same-class alloc.
	a3, _, err := h.alloc(90)
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Fatalf("freed block not reused: got %#x, want %#x", a3, a1)
	}
	// Different class does not touch that free list.
	if _, _, err := h.alloc(5000); err != nil {
		t.Fatal(err)
	}
	if h.chunkCount == 0 {
		t.Fatal("no chunks carved")
	}
	if _, _, err := h.alloc(maxRecordLen + 1); err == nil {
		t.Fatal("oversized alloc accepted")
	}
}

func TestRingRoutingStableAndSpread(t *testing.T) {
	r := newRing(8)
	// Stability: the same hash always routes to the same shard.
	for i := 0; i < 100; i++ {
		h := hashKey("stable-key")
		if r.shardOf(h) != r.shardOf(h) {
			t.Fatal("routing not deterministic")
		}
	}
	// Spread: 10k distinct keys should touch every shard, with no shard
	// hoarding more than half the keys (vnodes smooth the circle).
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		counts[r.shardOf(hashKey("user:"+string(rune('a'+i%26))+string(rune(i))))]++
	}
	total := 0
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d got no keys", s)
		}
		if c > 5000 {
			t.Errorf("shard %d hoards %d/10000 keys", s, c)
		}
		total += c
	}
	if total != 10000 {
		t.Fatalf("routed %d/10000", total)
	}
}
