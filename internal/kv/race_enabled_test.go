//go:build race

package kv

// raceEnabled reports whether the race detector is compiled in. The
// e2e SLO run keeps its correctness asserts under -race but drops the
// latency bar: the detector slows the serve path several-fold, and an
// open-loop generator faithfully turns that into unbounded queueing
// delay — a property of the instrumentation, not the server.
const raceEnabled = true
