package kv

import (
	"encoding/binary"
	"hash/maphash"
	"sort"
)

// ring is the consistent-hash key→shard table: each shard contributes
// vnodesPerShard points on a 64-bit circle, a key routes to the first
// point at or after its hash. Consistent hashing (vs hash%shards) means
// a future shard-count change moves only ~1/shards of the keyspace —
// the property that makes live resharding of a big cache tier feasible
// — and spreads hot zipfian keys across shards independently of the
// shard count.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

const vnodesPerShard = 64

// newRing builds the table for n shards. The vnode hashes derive from
// the process key seed so ring placement and key hashing share one hash
// family.
func newRing(n int) ring {
	pts := make([]ringPoint, 0, n*vnodesPerShard)
	var buf [16]byte
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			binary.LittleEndian.PutUint64(buf[0:], uint64(s))
			binary.LittleEndian.PutUint64(buf[8:], uint64(v))
			h := maphash.Bytes(keySeed, buf[:])
			pts = append(pts, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].hash < pts[j].hash })
	return ring{points: pts}
}

// shardOf routes a key hash to its shard.
func (r ring) shardOf(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].shard
}
