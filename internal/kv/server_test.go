package kv

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kona/internal/telemetry"
)

// startServer brings up a kvd server on a loopback listener over an
// in-process simulated rack.
func startServer(t *testing.T, reg *telemetry.Registry) (*Server, string) {
	t.Helper()
	s := NewServer(NewStore(simRuntime(t, 4<<20), Config{Shards: 8, Metrics: reg}), reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	t.Cleanup(func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, l.Addr().String()
}

func TestServerRoundTrip(t *testing.T) {
	reg := telemetry.New(0)
	_, addr := startServer(t, reg)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, ok, err := c.Get("nothing"); err != nil || ok {
		t.Fatalf("get missing = %t, %v", ok, err)
	}
	if err := c.Set("greeting", 99, []byte("hello, rack")); err != nil {
		t.Fatal(err)
	}
	val, flags, ok, err := c.Get("greeting")
	if err != nil || !ok || string(val) != "hello, rack" || flags != 99 {
		t.Fatalf("get = %q flags %d ok %t err %v", val, flags, ok, err)
	}
	if ok, err := c.Delete("greeting"); err != nil || !ok {
		t.Fatalf("delete = %t, %v", ok, err)
	}
	if ok, err := c.Delete("greeting"); err != nil || ok {
		t.Fatalf("re-delete = %t, %v", ok, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uptime", "cmd_total", "curr_items", "get_hits", "evictions"} {
		if _, present := st[want]; !present {
			t.Errorf("stats missing %q (got %v)", want, st)
		}
	}
	if st["cmd_set"] != "1" || st["get_hits"] != "1" || st["get_misses"] != "1" {
		t.Errorf("stats counters off: %v", st)
	}

	// Latency histograms observed traffic.
	snap := reg.Snapshot()
	if snap.Histograms["kv.get.latency"].Count == 0 || snap.Histograms["kv.set.latency"].Count == 0 {
		t.Error("server latency histograms empty")
	}
}

// TestServerProtocolErrorsOverWire drives raw protocol at the server:
// recoverable errors answer and keep the connection, quit ends it.
func TestServerProtocolErrorsOverWire(t *testing.T) {
	reg := telemetry.New(0)
	_, addr := startServer(t, reg)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	send := func(s string) string {
		t.Helper()
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply to %q: %v", s, err)
		}
		return strings.TrimRight(line, "\r\n")
	}

	if got := send("frobnicate\r\n"); got != "ERROR" {
		t.Fatalf("unknown verb answered %q", got)
	}
	if got := send("set k 0 0\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad set answered %q", got)
	}
	// The connection survived both errors.
	if got := send("set k 1 0 2\r\nok\r\n"); got != "STORED" {
		t.Fatalf("set after errors answered %q", got)
	}
	if got := send("version\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("version answered %q", got)
	}
	if reg.Snapshot().Counters["kv.bad_commands"] != 2 {
		t.Errorf("bad_commands = %d, want 2", reg.Snapshot().Counters["kv.bad_commands"])
	}
}

// TestServerGracefulDrain checks the drain contract: a request already
// in flight when Shutdown starts completes and is acknowledged; idle
// connections close promptly; new connections are refused.
func TestServerGracefulDrain(t *testing.T) {
	reg := telemetry.New(0)
	s, addr := startServer(t, reg)

	// Idle connection: sits between commands, must be closed by drain.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	// Busy connection: command line sent, payload withheld until after
	// Shutdown begins — the server must wait for it, serve it, ack it.
	busy, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	if _, err := busy.Write([]byte("set slow 0 0 7\r\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server read the command line

	var wg sync.WaitGroup
	wg.Add(1)
	var drained int
	go func() {
		defer wg.Done()
		drained = s.Shutdown(5 * time.Second)
	}()
	time.Sleep(50 * time.Millisecond) // Shutdown is now in its grace wait

	// Deliver the payload mid-drain; the ack must still come back.
	if _, err := busy.Write([]byte("payload\r\n")); err != nil {
		t.Fatal(err)
	}
	busy.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(busy).ReadString('\n')
	if err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
		t.Fatalf("in-flight set during drain answered %q, %v", line, err)
	}
	wg.Wait()
	if drained != 2 {
		t.Errorf("drained %d conns, want 2", drained)
	}

	// The drained server refuses new work.
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Error("post-drain connection served")
		}
		c.Close()
	}

	// The idle conn is dead too.
	idle.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Error("idle conn still open after drain")
	}

	// And the store is intact: the mid-drain write landed.
	val, _, _, ok, err := s.store.Get(s.store.Clock(), "slow", nil)
	if err != nil || !ok || string(val) != "payload" {
		t.Fatalf("mid-drain write lost: %q %t %v", val, ok, err)
	}
}
