package kv

import (
	"fmt"
	"math/bits"

	"kona/internal/mem"
)

// valueHeap is a size-class block allocator over Runtime.Malloc. The
// runtime hands out coarse regions (slab-backed, page-granular); the
// heap carves them into power-of-two blocks and recycles freed blocks
// onto per-class free lists, so the store's set/delete churn does not
// consume fresh disaggregated address space forever.
//
// Each shard owns one heap, so the heap itself needs no locking: all
// calls happen under the owning shard's mutex.
type valueHeap struct {
	rt Runtime
	// chunkBytes is the Malloc granularity: big enough to amortize the
	// controller round trip, small enough that a lightly-used shard does
	// not pin much remote memory.
	chunkBytes uint64
	// free[c] holds recycled blocks of class c (block size minBlock<<c).
	free [nClasses][]mem.Addr
	// carve is the bump allocator over the newest chunk.
	carveAddr mem.Addr
	carveLeft uint64

	// liveBytes is the block bytes currently held by the index;
	// chunkCount the Mallocs issued. Exposed through StoreStats.
	liveBytes  uint64
	chunkCount int
}

const (
	minBlockShift = 6 // 64B: one cache line, the dirty-tracking grain
	minBlock      = 1 << minBlockShift
	nClasses      = 16 // 64B .. 2MB: the top class covers maxRecordLen
	// (a max-size value plus key and header is just over 1MB).
	defaultChunk = 256 << 10
)

// classOf returns the size class for an n-byte record: the smallest
// power-of-two block ≥ n (and ≥ 64B).
func classOf(n int) int {
	if n <= minBlock {
		return 0
	}
	c := bits.Len(uint(n-1)) - minBlockShift
	return c
}

// blockBytes returns class c's block size.
func blockBytes(c int) uint64 { return minBlock << uint(c) }

func newValueHeap(rt Runtime, chunkBytes uint64) *valueHeap {
	if chunkBytes == 0 {
		chunkBytes = defaultChunk
	}
	return &valueHeap{rt: rt, chunkBytes: chunkBytes}
}

// alloc returns a block that holds n bytes, reusing a freed block of the
// class when one exists and carving from the current chunk otherwise.
func (h *valueHeap) alloc(n int) (mem.Addr, int, error) {
	if n > maxRecordLen {
		return 0, 0, fmt.Errorf("%w: %d-byte record", ErrTooLarge, n)
	}
	c := classOf(n)
	if l := len(h.free[c]); l > 0 {
		a := h.free[c][l-1]
		h.free[c] = h.free[c][:l-1]
		h.liveBytes += blockBytes(c)
		return a, c, nil
	}
	size := blockBytes(c)
	if h.carveLeft < size {
		chunk := h.chunkBytes
		if chunk < size {
			chunk = size
		}
		base, err := h.rt.Malloc(chunk)
		if err != nil {
			return 0, 0, fmt.Errorf("kv: value heap: %w", err)
		}
		h.carveAddr, h.carveLeft = base, chunk
		h.chunkCount++
	}
	a := h.carveAddr
	h.carveAddr += mem.Addr(size)
	h.carveLeft -= size
	h.liveBytes += size
	return a, c, nil
}

// release returns a block of class c to its free list.
func (h *valueHeap) release(a mem.Addr, c int) {
	h.free[c] = append(h.free[c], a)
	h.liveBytes -= blockBytes(c)
}
