// Package kv is the first real application on the Kona runtime: a
// memcached-style key-value service whose value heap lives in
// disaggregated memory (ROADMAP item 1, DESIGN.md §12).
//
// The split follows the paper's application model (§2.1): the *index* —
// small, pointer-chased, latency-critical — stays in local memory as an
// ordinary Go map per shard, while the *values* — the bulk of the
// footprint — live in Kona pages, so every GET crosses the runtime's
// fetch path and every SET crosses dirty tracking and, eventually, the
// cache-line-log eviction path to the memory nodes.
//
// Components:
//
//   - layout.go: the remote record format (header + key + value +
//     checksum) shared by the store and the examples/kvstore demo.
//     Checksums make torn or misdirected writes detectable at read time.
//   - heap.go: a size-class value-heap allocator over Runtime.Malloc —
//     Malloc carves coarse chunks, the heap carves blocks, frees recycle
//     blocks onto per-class free lists.
//   - ring.go: consistent-hash key→shard routing (vnode ring), so the
//     shard count can change without remapping the whole keyspace.
//   - store.go: the sharded store — per-shard local index + heap +
//     LRU budget eviction, all value bytes behind Runtime.Read/Write.
//   - protocol.go / client.go: the memcached text protocol (get/set/
//     delete/stats), server-side parser and a small client.
//   - server.go: the TCP serve loop with per-op latency histograms and
//     graceful drain (stop accepting, finish in-flight, then close).
//   - workload.go / load.go: the open-loop load model — zipfian key
//     popularity over millions of distinct users, Poisson arrivals so
//     queueing delay is visible — and the engine that drives it against
//     a server, reporting p50/p99/p999 against an SLO and verifying
//     that no acknowledged write was lost or torn.
package kv

import (
	"kona/internal/mem"
	"kona/internal/simclock"
)

// Runtime is the slice of the Kona data path the store needs. Both
// runtimes (*core.Kona and *core.KonaVM) satisfy it, which is what lets
// examples/kvstore run the same store over both and compare.
type Runtime interface {
	Malloc(size uint64) (mem.Addr, error)
	Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error)
	Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error)
	Sync(now simclock.Duration) (simclock.Duration, error)
}
