package kv

import (
	"bufio"
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
)

func parseOne(t *testing.T, wire string) (*command, error) {
	t.Helper()
	var cmd command
	err := readCommand(bufio.NewReader(strings.NewReader(wire)), &cmd, nil)
	return &cmd, err
}

func TestProtocolParse(t *testing.T) {
	cmd, err := parseOne(t, "get alpha beta gamma\r\n")
	if err != nil || cmd.op != "get" || len(cmd.keys) != 3 || cmd.keys[2] != "gamma" {
		t.Fatalf("multi-get = %+v, %v", cmd, err)
	}

	cmd, err = parseOne(t, "set k 7 0 5\r\nhello\r\n")
	if err != nil || cmd.op != "set" || cmd.keys[0] != "k" || cmd.flags != 7 ||
		string(cmd.data) != "hello" || cmd.noreply {
		t.Fatalf("set = %+v, %v", cmd, err)
	}

	cmd, err = parseOne(t, "set k 0 0 3 noreply\r\nabc\r\n")
	if err != nil || !cmd.noreply || string(cmd.data) != "abc" {
		t.Fatalf("set noreply = %+v, %v", cmd, err)
	}

	// Bare-LF framing (telnet clients) is tolerated.
	cmd, err = parseOne(t, "set k 0 0 2\nhi\n")
	if err != nil || string(cmd.data) != "hi" {
		t.Fatalf("bare-LF set = %+v, %v", cmd, err)
	}

	cmd, err = parseOne(t, "delete k noreply\r\n")
	if err != nil || cmd.op != "delete" || !cmd.noreply {
		t.Fatalf("delete = %+v, %v", cmd, err)
	}

	if _, err = parseOne(t, "quit\r\n"); !errors.Is(err, errQuit) {
		t.Fatalf("quit = %v", err)
	}
}

func TestProtocolErrors(t *testing.T) {
	isClientErr := func(err error) bool {
		var ce *clientError
		return errors.As(err, &ce)
	}
	// Unknown verbs and malformed arguments keep the connection:
	// *clientError, answered on the wire.
	for _, wire := range []string{
		"bogus\r\n",
		"get\r\n",
		"set k 0 0\r\n",
		"set k notanumber 0 5\r\nhello\r\n",
		"set k 0 0 5 yesreply\r\nhello\r\n",
		"delete\r\n",
		"get " + strings.Repeat("k", maxKeyLen+1) + "\r\n",
	} {
		if _, err := parseOne(t, wire); !isClientErr(err) {
			t.Errorf("%q: err = %v, want clientError", strings.TrimSpace(wire), err)
		}
	}
	// Framing breakers drop the connection: plain errors.
	for _, wire := range []string{
		"set k 0 0 5\r\nab\r\n",             // short data block
		"set k 0 0 3\r\nabcde\r\n",          // data not followed by CRLF
		strings.Repeat("x", maxLineLen+10),  // overlong line
		"set k 0 0 " + "99999999999999\r\n", // unframeable length
	} {
		_, err := parseOne(t, wire)
		if err == nil || isClientErr(err) {
			t.Errorf("%q...: err = %v, want framing error", wire[:20], err)
		}
	}
	// An oversized-but-framed value is drained and answered, stream intact.
	big := strings.Repeat("v", maxValueLen+1)
	wire := "set k 0 0 " + strconv.Itoa(maxValueLen+1) + "\r\n" + big + "\r\nget ok\r\n"
	br := bufio.NewReader(strings.NewReader(wire))
	var cmd command
	if err := readCommand(br, &cmd, nil); !isClientErr(err) {
		t.Fatalf("oversized set = %v, want clientError", err)
	}
	if err := readCommand(br, &cmd, nil); err != nil || cmd.op != "get" || cmd.keys[0] != "ok" {
		t.Fatalf("stream broken after oversized set: %+v, %v", cmd, err)
	}
}

func TestProtocolArmedFiresBeforeData(t *testing.T) {
	// armed must run after the command line but before the data block is
	// consumed — that ordering is what lets the server arm a per-request
	// deadline covering the payload read.
	pr, pw := newHalfPipe("set k 0 0 5\r\n")
	br := bufio.NewReader(pr)
	var cmd command
	armedAt := -1
	go func() {
		// Supply the payload only after armed has observed the state.
		<-pr.armed
		pw.WriteString("hello\r\n")
		pw.close()
	}()
	err := readCommand(br, &cmd, func() {
		armedAt = pr.consumed()
		close(pr.armed)
	})
	if err != nil || string(cmd.data) != "hello" {
		t.Fatalf("readCommand = %+v, %v", cmd, err)
	}
	if armedAt < len("set k 0 0 5\r\n")-2 || armedAt > len("set k 0 0 5\r\n")+1 {
		t.Fatalf("armed fired at byte %d, want right after the command line", armedAt)
	}
}

// halfPipe feeds a fixed prefix, then blocks until more is written —
// letting the test observe exactly how much readCommand consumed when
// armed fired.
type halfPipe struct {
	buf   bytes.Buffer
	read  int
	more  chan string
	armed chan struct{}
	done  bool
}

func newHalfPipe(prefix string) (*halfPipe, *halfPipe) {
	p := &halfPipe{more: make(chan string, 4), armed: make(chan struct{})}
	p.buf.WriteString(prefix)
	return p, p
}

func (p *halfPipe) Read(b []byte) (int, error) {
	for p.buf.Len() == 0 {
		if p.done {
			return 0, errors.New("halfPipe closed")
		}
		s, ok := <-p.more
		if !ok {
			p.done = true
			continue
		}
		p.buf.WriteString(s)
	}
	n, err := p.buf.Read(b)
	p.read += n
	return n, err
}

func (p *halfPipe) WriteString(s string) { p.more <- s }
func (p *halfPipe) close()               { close(p.more) }
func (p *halfPipe) consumed() int        { return p.read }
