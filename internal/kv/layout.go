package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/maphash"
)

// Remote record layout. A record is the unit the store writes to and
// reads from disaggregated memory: one contiguous span holding the key
// (so a reader can detect a misdirected block) and the value, framed by
// a fixed header whose checksum covers everything after it. The
// checksum is what turns "a replica died mid-writeback" or "the heap
// handed two writers the same block" into a detectable ErrCorrupt
// instead of silently wrong bytes.
//
//	offset 0  magic   uint16  recordMagic
//	       2  keyLen  uint16
//	       4  valLen  uint32
//	       8  seq     uint64  writer-assigned sequence number
//	      16  crc     uint32  IEEE CRC-32 over seq ‖ key ‖ value
//	      20  key     keyLen bytes
//	          value   valLen bytes
const (
	recordMagic  = 0x4B56 // "KV"
	headerSize   = 20
	maxKeyLen    = 250         // memcached's limit
	maxValueLen  = 1024 * 1024 // 1MB, memcached's classic default
	maxRecordLen = headerSize + maxKeyLen + maxValueLen
)

var (
	// ErrCorrupt reports a record that failed its integrity checks: torn
	// write, misdirected block, or remote corruption.
	ErrCorrupt = errors.New("kv: corrupt record")
	// ErrTooLarge reports a key or value over the protocol limits.
	ErrTooLarge = errors.New("kv: key or value too large")
)

// recordSize returns the encoded size of a record.
func recordSize(keyLen, valLen int) int { return headerSize + keyLen + valLen }

// encodeRecord writes the record for (key, value, seq) into buf, which
// must hold recordSize(len(key), len(value)) bytes. It returns the
// encoded length.
func encodeRecord(buf []byte, key string, value []byte, seq uint64) int {
	n := recordSize(len(key), len(value))
	_ = buf[n-1]
	binary.LittleEndian.PutUint16(buf[0:], recordMagic)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(value)))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], value)
	crc := crc32.NewIEEE()
	crc.Write(buf[8:16]) // seq
	crc.Write(buf[headerSize : headerSize+len(key)+len(value)])
	binary.LittleEndian.PutUint32(buf[16:], crc.Sum32())
	return n
}

// decodeRecord validates buf as the record for key and returns the value
// bytes (aliasing buf) and the writer's sequence number. Any mismatch —
// magic, lengths, key bytes, checksum — is ErrCorrupt.
func decodeRecord(buf []byte, key string) (value []byte, seq uint64, err error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("%w: %d-byte record", ErrCorrupt, len(buf))
	}
	if m := binary.LittleEndian.Uint16(buf[0:]); m != recordMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	keyLen := int(binary.LittleEndian.Uint16(buf[2:]))
	valLen := int(binary.LittleEndian.Uint32(buf[4:]))
	if keyLen != len(key) || recordSize(keyLen, valLen) > len(buf) {
		return nil, 0, fmt.Errorf("%w: lengths key=%d val=%d in %d bytes", ErrCorrupt, keyLen, valLen, len(buf))
	}
	if string(buf[headerSize:headerSize+keyLen]) != key {
		return nil, 0, fmt.Errorf("%w: record holds a different key", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(buf[8:])
	crc := crc32.NewIEEE()
	crc.Write(buf[8:16])
	crc.Write(buf[headerSize : headerSize+keyLen+valLen])
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(buf[16:]); got != want {
		return nil, 0, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, got, want)
	}
	return buf[headerSize+keyLen : headerSize+keyLen+valLen], seq, nil
}

// keySeed is the process-wide seed for key hashing. maphash gives a
// strong, fast string hash; a per-process random seed keeps the shard
// mapping unpredictable to adversarial key sets while staying stable
// for the life of the store.
var keySeed = maphash.MakeSeed()

// hashKey returns the 64-bit routing hash of key.
func hashKey(key string) uint64 { return maphash.String(keySeed, key) }
