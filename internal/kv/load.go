package kv

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kona/internal/telemetry"
)

// LoadConfig drives one open-loop run against a kvd server.
type LoadConfig struct {
	Workload WorkloadConfig
	// Conns is the client connection (worker) count. Keys route to
	// workers by hash, so writes to one key are totally ordered — what
	// makes the verify pass exact.
	Conns int
	// Ops ends the run after this many operations (0 = use Duration).
	Ops uint64
	// Duration ends the run after this much generated arrival time.
	Duration time.Duration
	// SLOp99/SLOp999 are the latency objectives checked against the
	// overall distribution; 0 skips the check.
	SLOp99, SLOp999 time.Duration
	// Verify re-reads every acknowledged key after the run and proves no
	// acknowledged write was lost, torn, or regressed.
	Verify bool
	// Metrics receives kvload.get.latency / kvload.set.latency
	// histograms; nil uses a private registry.
	Metrics *telemetry.Registry
	// DialTimeout bounds each worker's connect (default 5s).
	DialTimeout time.Duration
}

// LatencySummary is one op class's distribution, bucket-resolution
// quantiles from the telemetry histogram.
type LatencySummary struct {
	Count          uint64
	Mean           time.Duration
	P50, P99, P999 time.Duration
}

func summarize(h telemetry.HistogramSnapshot) LatencySummary {
	return LatencySummary{
		Count: h.Count,
		Mean:  time.Duration(h.Mean()),
		P50:   time.Duration(h.Quantile(0.50)),
		P99:   time.Duration(h.Quantile(0.99)),
		P999:  time.Duration(h.Quantile(0.999)),
	}
}

// Result is one run's report.
type Result struct {
	Issued, Completed, Errors uint64
	Hits, Misses              uint64
	// Wall is dispatch start to last completion (verify excluded).
	Wall time.Duration
	// OfferedRate is the configured arrival rate; AchievedRate is
	// completions over wall time — they diverge when the server can't
	// keep up (the open-loop overload signal, alongside the tail).
	OfferedRate, AchievedRate float64
	Get, Set, All             LatencySummary
	// SLOViolated is set when a configured objective was missed.
	SLOViolated bool
	// Verify-pass tallies (Verify=true): acknowledged keys checked,
	// missing entirely, failing the payload pattern, or answering with
	// an older write than the last acknowledged one.
	VerifiedKeys, Missing, Torn, Stale uint64
}

// Engine runs the open-loop load. Counters are readable concurrently
// while Run is in flight (progress reporting).
type Engine struct {
	cfg            LoadConfig
	reg            *telemetry.Registry
	getLat, setLat *telemetry.Histogram
	issued         atomic.Uint64
	completed      atomic.Uint64
	errors         atomic.Uint64
	hits, misses   atomic.Uint64
}

// NewEngine validates the config.
func NewEngine(cfg LoadConfig) (*Engine, error) {
	if _, err := NewGenerator(cfg.Workload); err != nil {
		return nil, err
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Ops == 0 && cfg.Duration == 0 {
		return nil, fmt.Errorf("kv: load needs Ops or Duration")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.New(0)
	}
	return &Engine{
		cfg:    cfg,
		reg:    reg,
		getLat: reg.Histogram("kvload.get.latency", latencyBounds()),
		setLat: reg.Histogram("kvload.set.latency", latencyBounds()),
	}, nil
}

// Issued/Completed/Errors expose live progress.
func (e *Engine) Issued() uint64    { return e.issued.Load() }
func (e *Engine) Completed() uint64 { return e.completed.Load() }
func (e *Engine) Errors() uint64    { return e.errors.Load() }

// workItem is one dispatched op with its absolute arrival deadline.
type workItem struct {
	op  Op
	due time.Time
}

// loadWorker owns one connection and the slice of the keyspace that
// hashes to it.
type loadWorker struct {
	e      *Engine
	addr   string
	client *Client
	ch     chan workItem
	// acked maps key -> last acknowledged set seq; issued maps key ->
	// last *sent* set seq (a write may land without its ack being seen).
	acked    map[string]uint64
	issued   map[string]uint64
	valBuf   []byte
	lastDone atomic.Int64 // unix nanos of the latest completion
}

// Run drives the configured run against addr and reports. It blocks
// until dispatch, drain, and (optionally) verify complete.
func (e *Engine) Run(addr string) (Result, error) {
	gen, _ := NewGenerator(e.cfg.Workload) // validated in NewEngine
	workers := make([]*loadWorker, e.cfg.Conns)
	var wg sync.WaitGroup
	for i := range workers {
		c, err := Dial(addr, e.cfg.DialTimeout)
		if err != nil {
			return Result{}, err
		}
		workers[i] = &loadWorker{
			e:      e,
			addr:   addr,
			client: c,
			ch:     make(chan workItem, 4096),
			acked:  make(map[string]uint64),
			issued: make(map[string]uint64),
		}
		wg.Add(1)
		go func(w *loadWorker) {
			defer wg.Done()
			w.run()
		}(workers[i])
	}

	// Open-loop dispatch: ops arrive on the generator's Poisson clock
	// regardless of how the server is doing. A full worker queue blocks
	// the dispatcher, but latency is measured from the *scheduled*
	// arrival, so the backlog still lands in the histograms.
	t0 := time.Now()
	for {
		if e.cfg.Ops > 0 && e.issued.Load() >= e.cfg.Ops {
			break
		}
		op := gen.Next()
		if e.cfg.Ops == 0 && op.Due > e.cfg.Duration {
			break
		}
		due := t0.Add(op.Due)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		w := workers[hashKey(op.Key)%uint64(len(workers))]
		w.ch <- workItem{op: op, due: due}
		e.issued.Add(1)
	}
	for _, w := range workers {
		close(w.ch)
	}
	wg.Wait()
	var lastDone int64
	for _, w := range workers {
		if d := w.lastDone.Load(); d > lastDone {
			lastDone = d
		}
	}
	wall := time.Duration(lastDone - t0.UnixNano())
	if wall <= 0 {
		wall = time.Since(t0)
	}

	res := Result{
		Issued:      e.issued.Load(),
		Completed:   e.completed.Load(),
		Errors:      e.errors.Load(),
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Wall:        wall,
		OfferedRate: e.cfg.Workload.RatePerSec,
	}
	if wall > 0 {
		res.AchievedRate = float64(res.Completed) / wall.Seconds()
	}

	// Verify before closing the conns: each worker checks its own keys,
	// preserving the per-key ordering that makes "stale" provable.
	if e.cfg.Verify {
		var vmu sync.Mutex
		var vwg sync.WaitGroup
		for _, w := range workers {
			vwg.Add(1)
			go func(w *loadWorker) {
				defer vwg.Done()
				vk, missing, torn, stale := w.verify()
				vmu.Lock()
				res.VerifiedKeys += vk
				res.Missing += missing
				res.Torn += torn
				res.Stale += stale
				vmu.Unlock()
			}(w)
		}
		vwg.Wait()
	}
	for _, w := range workers {
		if w.client != nil {
			w.client.Close()
		}
	}

	snap := e.reg.Snapshot()
	res.Get = summarize(snap.Histograms["kvload.get.latency"])
	res.Set = summarize(snap.Histograms["kvload.set.latency"])
	res.All = combine(snap.Histograms["kvload.get.latency"], snap.Histograms["kvload.set.latency"])
	if e.cfg.SLOp99 > 0 && res.All.P99 > e.cfg.SLOp99 {
		res.SLOViolated = true
	}
	if e.cfg.SLOp999 > 0 && res.All.P999 > e.cfg.SLOp999 {
		res.SLOViolated = true
	}
	return res, nil
}

// combine merges two same-bounds histograms into one summary.
func combine(a, b telemetry.HistogramSnapshot) LatencySummary {
	if a.Count == 0 {
		return summarize(b)
	}
	if b.Count == 0 {
		return summarize(a)
	}
	m := telemetry.HistogramSnapshot{
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
		Bounds: a.Bounds,
		Counts: make([]uint64, len(a.Counts)),
	}
	for i := range m.Counts {
		m.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return summarize(m)
}

// run consumes the worker's queue until it closes.
func (w *loadWorker) run() {
	for item := range w.ch {
		w.execute(item)
	}
}

// redial replaces a broken connection; a handful of attempts with
// backoff rides out a server drain race or listen-queue blip.
func (w *loadWorker) redial() bool {
	if w.client != nil {
		w.client.conn.Close()
		w.client = nil
	}
	for attempt := 0; attempt < 5; attempt++ {
		time.Sleep(time.Duration(attempt*attempt) * 50 * time.Millisecond)
		c, err := Dial(w.addr, w.e.cfg.DialTimeout)
		if err == nil {
			w.client = c
			return true
		}
	}
	return false
}

func (w *loadWorker) execute(item workItem) {
	op := item.op
	if w.client == nil && !w.redial() {
		w.e.errors.Add(1)
		return
	}
	var err error
	if op.Read {
		var ok bool
		_, _, ok, err = w.client.Get(op.Key)
		if err == nil {
			if ok {
				w.e.hits.Add(1)
			} else {
				w.e.misses.Add(1)
			}
		}
	} else {
		if cap(w.valBuf) < op.ValueLen {
			w.valBuf = make([]byte, op.ValueLen)
		}
		val := MakeValue(w.valBuf[:op.ValueLen], op)
		w.issued[op.Key] = op.Seq
		err = w.client.Set(op.Key, uint32(op.Seq), val)
		if err == nil {
			w.acked[op.Key] = op.Seq
		}
	}
	lat := time.Since(item.due)
	if lat < 0 {
		lat = 0
	}
	if err != nil {
		w.e.errors.Add(1)
		// In-band rejections (SERVER_ERROR and friends surface as
		// "server answered" errors) leave the conn framed and usable;
		// anything else is a transport failure and needs a redial.
		if !strings.Contains(err.Error(), "server answered") {
			w.redial()
		}
	} else {
		w.e.completed.Add(1)
		if op.Read {
			w.e.getLat.Observe(lat.Nanoseconds())
		} else {
			w.e.setLat.Observe(lat.Nanoseconds())
		}
	}
	w.lastDone.Store(time.Now().UnixNano())
}

// verify re-reads every key this worker acknowledged a write for. A key
// may legitimately answer a *newer* seq than the last acked one (a set
// whose ack was lost with its connection still landed); anything older,
// missing, or pattern-broken is a violation.
func (w *loadWorker) verify() (checked, missing, torn, stale uint64) {
	if w.client == nil && !w.redial() {
		return 0, uint64(len(w.acked)), 0, 0
	}
	for key, ackSeq := range w.acked {
		val, _, ok, err := w.client.Get(key)
		if err != nil {
			if !w.redial() {
				missing += uint64(len(w.acked)) - checked
				return checked, missing, torn, stale
			}
			val, _, ok, err = w.client.Get(key)
			if err != nil {
				missing++
				checked++
				continue
			}
		}
		checked++
		if !ok {
			missing++
			continue
		}
		seq, intact := ParseValue(val)
		switch {
		case !intact:
			torn++
		case seq < ackSeq:
			stale++
		}
	}
	return checked, missing, torn, stale
}
