package kv

import (
	"testing"
	"time"
)

func TestWorkloadDeterminism(t *testing.T) {
	cfg := WorkloadConfig{Keys: 10000, ZipfS: 1.1, ReadFraction: 0.8, RatePerSec: 10000, Seed: 42}
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(cfg)
	for i := 0; i < 5000; i++ {
		if a, b := g1.Next(), g2.Next(); a != b {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestWorkloadShape(t *testing.T) {
	const n = 50000
	g, err := NewGenerator(WorkloadConfig{
		Keys: 1_000_000, ZipfS: 1.2, ReadFraction: 0.9, RatePerSec: 20000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var reads int
	keyCount := map[string]int{}
	seqs := map[string]uint64{}
	var last time.Duration
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Due < last {
			t.Fatal("arrival times went backwards")
		}
		last = op.Due
		keyCount[op.Key]++
		if op.Read {
			reads++
			if op.Seq != 0 {
				t.Fatal("read carries a set seq")
			}
		} else {
			seqs[op.Key]++
			if op.Seq != seqs[op.Key] {
				t.Fatalf("set seq for %s = %d, want %d (dense per-key numbering)", op.Key, op.Seq, seqs[op.Key])
			}
			if op.ValueLen < 16 {
				t.Fatalf("value len %d below the verify-header minimum", op.ValueLen)
			}
		}
	}
	// Read mix: 90% ± 1%.
	if f := float64(reads) / n; f < 0.88 || f > 0.92 {
		t.Fatalf("read fraction %.3f, want ~0.9", f)
	}
	// Poisson rate: mean inter-arrival 50µs, so 50k ops ≈ 2.5s ± 10%.
	if last < 2250*time.Millisecond || last > 2750*time.Millisecond {
		t.Fatalf("horizon %s for 50k ops at 20k/s, want ~2.5s", last)
	}
	// Zipf skew: the single hottest key takes a meaningful slice of the
	// traffic even against a million-key population...
	hot := 0
	for _, c := range keyCount {
		if c > hot {
			hot = c
		}
	}
	if float64(hot)/n < 0.02 {
		t.Fatalf("hottest key only %d/%d ops — not zipfian", hot, n)
	}
	// ...and yet the tail is long: many thousands of distinct keys appear.
	if len(keyCount) < 5000 {
		t.Fatalf("only %d distinct keys in 50k ops — tail too short", len(keyCount))
	}
}

func TestWorkloadValueRoundTrip(t *testing.T) {
	buf := make([]byte, maxValueLen)
	for _, vl := range []int{16, 17, 64, 511, 8192} {
		op := Op{Seq: 987654321, ValueLen: vl}
		val := MakeValue(buf, op)
		if len(val) != vl {
			t.Fatalf("MakeValue length %d, want %d", len(val), vl)
		}
		seq, intact := ParseValue(val)
		if !intact || seq != op.Seq {
			t.Fatalf("roundtrip %d bytes: seq %d intact %t", vl, seq, intact)
		}
	}
	// A single flipped byte is caught, wherever it lands.
	op := Op{Seq: 11, ValueLen: 64}
	for _, i := range []int{0, 8, 16, 40, 63} {
		val := MakeValue(buf, op)
		val[i] ^= 0x40
		if seq, intact := ParseValue(val); intact {
			t.Fatalf("flip at %d not caught (seq %d)", i, seq)
		}
	}
	// Truncation is caught.
	if _, intact := ParseValue(MakeValue(buf, op)[:40]); intact {
		t.Fatal("truncated value passed")
	}
	if _, intact := ParseValue(nil); intact {
		t.Fatal("nil value passed")
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	bad := []WorkloadConfig{
		{Keys: 0, ZipfS: 1.1, RatePerSec: 1},
		{Keys: 10, ZipfS: 1.0, RatePerSec: 1},
		{Keys: 10, ZipfS: 1.1, RatePerSec: 0},
		{Keys: 10, ZipfS: 1.1, RatePerSec: 1, ReadFraction: 1.5},
		{Keys: 10, ZipfS: 1.1, RatePerSec: 1, ValueSizes: []SizeClass{{Bytes: 8, Weight: 1}}},
		{Keys: 10, ZipfS: 1.1, RatePerSec: 1, ValueSizes: []SizeClass{{Bytes: 64, Weight: 0}}},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
