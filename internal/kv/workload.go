package kv

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"time"
)

// WorkloadConfig describes the synthetic user population the load
// generator simulates: a keyspace of distinct users with zipfian
// popularity (a small hot set, a long tail — the shape of every cache
// tier in production), a read/write mix, a discrete value-size
// distribution, and a Poisson open-loop arrival process whose rate does
// not react to server latency — so queueing delay shows up in the
// latencies instead of silently throttling the offered load.
type WorkloadConfig struct {
	// Keys is the number of distinct keys ("users"); key i is "user:i".
	Keys uint64
	// ZipfS is the zipf skew exponent (must be > 1; 1.1 ≈ production
	// cache traffic, higher = hotter hot set).
	ZipfS float64
	// ReadFraction is the probability an op is a GET (rest are SETs).
	ReadFraction float64
	// ValueSizes is the discrete value-size distribution; nil defaults
	// to a memcached-ish small-object mix.
	ValueSizes []SizeClass
	// RatePerSec is the Poisson arrival rate of the open-loop process.
	RatePerSec float64
	// Seed makes the op stream reproducible.
	Seed int64
}

// SizeClass is one point of the value-size distribution.
type SizeClass struct {
	Bytes  int
	Weight float64
}

// DefaultValueSizes mirrors the small-object-dominated distributions
// published for production cache traffic: mostly sub-kilobyte values
// with a thin tail of multi-kilobyte objects.
func DefaultValueSizes() []SizeClass {
	return []SizeClass{
		{Bytes: 64, Weight: 30},
		{Bytes: 128, Weight: 30},
		{Bytes: 512, Weight: 25},
		{Bytes: 2048, Weight: 10},
		{Bytes: 8192, Weight: 5},
	}
}

// Op is one generated operation.
type Op struct {
	// Due is when the op arrives, relative to the run's start.
	Due time.Duration
	// Key is the target key.
	Key string
	// Read selects GET; otherwise SET.
	Read bool
	// Seq numbers SETs per key, starting at 1 (0 for reads); the value
	// payload embeds it, so a later read can prove which acknowledged
	// write it observed.
	Seq uint64
	// ValueLen is the SET payload length.
	ValueLen int
}

// Generator produces the op stream. Not safe for concurrent use; the
// load engine runs one generator and fans ops out to workers.
type Generator struct {
	cfg     WorkloadConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	sizeCum []float64 // cumulative weights
	clock   time.Duration
	seqs    map[uint64]uint64 // key index -> last issued set seq
}

// NewGenerator validates the config and builds the generator.
func NewGenerator(cfg WorkloadConfig) (*Generator, error) {
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("kv: workload needs Keys > 0")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("kv: zipf skew must be > 1, got %g", cfg.ZipfS)
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("kv: read fraction %g out of [0,1]", cfg.ReadFraction)
	}
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("kv: arrival rate must be positive")
	}
	if len(cfg.ValueSizes) == 0 {
		cfg.ValueSizes = DefaultValueSizes()
	}
	g := &Generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		seqs: make(map[uint64]uint64),
	}
	g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, cfg.Keys-1)
	var cum float64
	for _, sc := range cfg.ValueSizes {
		// 16-byte minimum: the payload must hold its seq/length header
		// for the verify pass.
		if sc.Bytes < 16 || sc.Bytes > maxValueLen || sc.Weight < 0 {
			return nil, fmt.Errorf("kv: bad size class %+v", sc)
		}
		cum += sc.Weight
		g.sizeCum = append(g.sizeCum, cum)
	}
	if cum == 0 {
		return nil, fmt.Errorf("kv: value-size weights sum to zero")
	}
	return g, nil
}

// Next produces the next op: the Poisson clock advances by an
// exponential inter-arrival, the key draws from the zipf, the op kind
// from the mix.
func (g *Generator) Next() Op {
	g.clock += time.Duration(g.rng.ExpFloat64() / g.cfg.RatePerSec * float64(time.Second))
	ki := g.zipf.Uint64()
	op := Op{
		Due: g.clock,
		Key: "user:" + strconv.FormatUint(ki, 10),
	}
	if g.rng.Float64() < g.cfg.ReadFraction {
		op.Read = true
		return op
	}
	g.seqs[ki]++
	op.Seq = g.seqs[ki]
	x := g.rng.Float64() * g.sizeCum[len(g.sizeCum)-1]
	for i, c := range g.sizeCum {
		if x <= c {
			op.ValueLen = g.cfg.ValueSizes[i].Bytes
			break
		}
	}
	return op
}

// Value payloads are self-describing so the verify pass can prove which
// acknowledged write a read observed: the first 16 bytes hold the set's
// per-key seq and the value length, the rest is a seq-seeded pattern.
// (Integrity against tearing is the store's CRC; this layer proves
// *which* intact value we got.)

// MakeValue fills buf (length = op.ValueLen, at least 16) with op's
// payload.
func MakeValue(buf []byte, op Op) []byte {
	buf = buf[:op.ValueLen]
	binary.LittleEndian.PutUint64(buf[0:], op.Seq)
	binary.LittleEndian.PutUint64(buf[8:], uint64(op.ValueLen))
	pat := op.Seq*0x9E3779B97F4A7C15 + 1
	for i := 16; i < len(buf); i++ {
		buf[i] = byte(pat >> (8 * (i % 8)))
	}
	return buf
}

// ParseValue extracts the seq a value claims and verifies the pattern;
// intact=false means the bytes do not form any value MakeValue produced
// for this length (a torn or foreign value that nonetheless passed the
// store's own checks — should never happen).
func ParseValue(val []byte) (seq uint64, intact bool) {
	if len(val) < 16 {
		return 0, false
	}
	seq = binary.LittleEndian.Uint64(val[0:])
	if binary.LittleEndian.Uint64(val[8:]) != uint64(len(val)) {
		return seq, false
	}
	pat := seq*0x9E3779B97F4A7C15 + 1
	for i := 16; i < len(val); i++ {
		if val[i] != byte(pat>>(8*(i%8))) {
			return seq, false
		}
	}
	return seq, true
}
