package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrLinePage(t *testing.T) {
	cases := []struct {
		a        Addr
		line     uint64
		page     uint64
		lineIn   int
		pageOff  uint64
		hugePage uint64
	}{
		{0, 0, 0, 0, 0, 0},
		{63, 0, 0, 0, 63, 0},
		{64, 1, 0, 1, 64, 0},
		{4095, 63, 0, 63, 4095, 0},
		{4096, 64, 1, 0, 0, 0},
		{HugePageSize, LinesPerHugePage, HugePageSize / PageSize, 0, 0, 1},
		{4096*3 + 130, 64*3 + 2, 3, 2, 130, 0},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("%v.Line() = %d, want %d", c.a, got, c.line)
		}
		if got := c.a.Page(); got != c.page {
			t.Errorf("%v.Page() = %d, want %d", c.a, got, c.page)
		}
		if got := c.a.LineInPage(); got != c.lineIn {
			t.Errorf("%v.LineInPage() = %d, want %d", c.a, got, c.lineIn)
		}
		if got := c.a.PageOffset(); got != c.pageOff {
			t.Errorf("%v.PageOffset() = %d, want %d", c.a, got, c.pageOff)
		}
		if got := c.a.HugePage(); got != c.hugePage {
			t.Errorf("%v.HugePage() = %d, want %d", c.a, got, c.hugePage)
		}
	}
}

func TestAddrAlign(t *testing.T) {
	if got := Addr(4097).AlignDown(PageSize); got != 4096 {
		t.Errorf("AlignDown = %v, want 4096", got)
	}
	if got := Addr(4097).AlignUp(PageSize); got != 8192 {
		t.Errorf("AlignUp = %v, want 8192", got)
	}
	if got := Addr(4096).AlignUp(PageSize); got != 4096 {
		t.Errorf("AlignUp aligned = %v, want 4096", got)
	}
	if got := Addr(0).AlignDown(64); got != 0 {
		t.Errorf("AlignDown(0) = %v, want 0", got)
	}
}

func TestRange(t *testing.T) {
	r := Range{Start: 100, Len: 200}
	if r.End() != 300 {
		t.Fatalf("End = %v", r.End())
	}
	if !r.Contains(100) || !r.Contains(299) || r.Contains(300) || r.Contains(99) {
		t.Errorf("Contains boundaries wrong")
	}
	if !r.Overlaps(Range{Start: 299, Len: 1}) {
		t.Errorf("expected overlap at last byte")
	}
	if r.Overlaps(Range{Start: 300, Len: 10}) {
		t.Errorf("half-open end must not overlap")
	}
	if r.Overlaps(Range{Start: 0, Len: 100}) {
		t.Errorf("half-open start must not overlap")
	}
}

func TestRangePagesLines(t *testing.T) {
	cases := []struct {
		r     Range
		pages uint64
		lines uint64
	}{
		{Range{0, 0}, 0, 0},
		{Range{0, 1}, 1, 1},
		{Range{0, 4096}, 1, 64},
		{Range{4095, 2}, 2, 2},
		{Range{63, 2}, 1, 2},
		{Range{0, 8192}, 2, 128},
		{Range{100, 4096}, 2, 65},
	}
	for _, c := range cases {
		if got := c.r.Pages(); got != c.pages {
			t.Errorf("%v.Pages() = %d, want %d", c.r, got, c.pages)
		}
		if got := c.r.Lines(); got != c.lines {
			t.Errorf("%v.Lines() = %d, want %d", c.r, got, c.lines)
		}
	}
}

func TestLineBitmapBasics(t *testing.T) {
	var b LineBitmap
	if b.Any() || b.Count() != 0 {
		t.Fatalf("zero value must be clean")
	}
	b.Set(0)
	b.Set(63)
	b.Set(5)
	if b.Count() != 3 || !b.Get(0) || !b.Get(63) || !b.Get(5) || b.Get(1) {
		t.Fatalf("set/get mismatch: %b", b)
	}
	b.Clear(5)
	if b.Count() != 2 || b.Get(5) {
		t.Fatalf("clear failed")
	}
	b.Reset()
	if b.Any() {
		t.Fatalf("reset failed")
	}
	b.SetRange(0, 64)
	if !b.Full() {
		t.Fatalf("full bitmap not detected")
	}
}

func TestSegments(t *testing.T) {
	cases := []struct {
		set  []int
		want []Segment
	}{
		{nil, nil},
		{[]int{0}, []Segment{{0, 1}}},
		{[]int{63}, []Segment{{63, 1}}},
		{[]int{0, 1, 2, 3}, []Segment{{0, 4}}},
		{[]int{0, 2, 4}, []Segment{{0, 1}, {2, 1}, {4, 1}}},
		{[]int{1, 2, 10, 11, 12, 63}, []Segment{{1, 2}, {10, 3}, {63, 1}}},
	}
	for _, c := range cases {
		var b LineBitmap
		for _, i := range c.set {
			b.Set(i)
		}
		got := b.Segments()
		if len(got) != len(c.want) {
			t.Errorf("set %v: segments %v, want %v", c.set, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("set %v: segment %d = %v, want %v", c.set, i, got[i], c.want[i])
			}
		}
	}
	// All 64 lines set: one maximal segment.
	full := ^LineBitmap(0)
	segs := full.Segments()
	if len(segs) != 1 || segs[0] != (Segment{0, 64}) {
		t.Errorf("full bitmap segments = %v", segs)
	}
}

// Property: Segments() partitions exactly the set bits, runs are maximal,
// and the union of segments reconstructs the bitmap.
func TestSegmentsQuick(t *testing.T) {
	f := func(v uint64) bool {
		b := LineBitmap(v)
		segs := b.Segments()
		var rebuilt LineBitmap
		prevEnd := -2
		for _, s := range segs {
			if s.N <= 0 || s.First < 0 || s.First+s.N > 64 {
				return false
			}
			if s.First <= prevEnd { // must be ascending and non-adjacent (maximal)
				return false
			}
			rebuilt.SetRange(s.First, s.First+s.N)
			prevEnd = s.First + s.N
		}
		return rebuilt == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: MarkWrite dirties exactly the lines overlapped by the byte range.
func TestMarkWriteQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		off := uint64(rng.Intn(PageSize))
		n := uint64(rng.Intn(PageSize))
		var b LineBitmap
		b.MarkWrite(off, n)
		for i := 0; i < LinesPerPage; i++ {
			lineLo := uint64(i) * CacheLineSize
			lineHi := lineLo + CacheLineSize
			end := off + n
			if end > PageSize {
				end = PageSize
			}
			overlaps := n > 0 && off < lineHi && lineLo < end
			if b.Get(i) != overlaps {
				t.Fatalf("off=%d n=%d line=%d: got %v want %v", off, n, i, b.Get(i), overlaps)
			}
		}
	}
}

func TestMarkWriteEdges(t *testing.T) {
	var b LineBitmap
	b.MarkWrite(0, 0)
	if b.Any() {
		t.Errorf("zero-length write dirtied lines")
	}
	b.MarkWrite(PageSize, 100) // off past page: no-op
	if b.Any() {
		t.Errorf("out-of-page write dirtied lines")
	}
	b.MarkWrite(PageSize-1, 100) // truncated to last line
	if b.Count() != 1 || !b.Get(63) {
		t.Errorf("truncated write wrong: %b", b)
	}
}

func TestPageLineBase(t *testing.T) {
	if PageBase(3) != 3*PageSize {
		t.Errorf("PageBase(3) = %v", PageBase(3))
	}
	if LineBase(3) != 192 {
		t.Errorf("LineBase(3) = %v", LineBase(3))
	}
}
