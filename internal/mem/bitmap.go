package mem

import "math/bits"

// LineBitmap tracks one bit per cache line within a 4KB page. It is the
// in-memory form of the dirty bitmap the FPGA reference architecture keeps
// per cached page (§4.3): bit i set means line i has been written since the
// page was fetched.
//
// The zero value is an empty (all-clean) bitmap.
type LineBitmap uint64

// Set marks line i (0..63) as dirty.
func (b *LineBitmap) Set(i int) { *b |= 1 << uint(i) }

// Clear marks line i as clean.
func (b *LineBitmap) Clear(i int) { *b &^= 1 << uint(i) }

// Get reports whether line i is dirty.
func (b LineBitmap) Get(i int) bool { return b&(1<<uint(i)) != 0 }

// Count returns the number of dirty lines.
func (b LineBitmap) Count() int { return bits.OnesCount64(uint64(b)) }

// Any reports whether any line is dirty.
func (b LineBitmap) Any() bool { return b != 0 }

// Full reports whether every line in the page is dirty.
func (b LineBitmap) Full() bool { return b == ^LineBitmap(0) }

// SetRange marks lines [lo, hi) dirty.
func (b *LineBitmap) SetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.Set(i)
	}
}

// Union merges another bitmap into b.
func (b *LineBitmap) Union(o LineBitmap) { *b |= o }

// Reset clears all lines.
func (b *LineBitmap) Reset() { *b = 0 }

// Segment is a maximal run of contiguous set lines within a page. Segments
// are the unit the paper studies in Fig. 3 and the unit the cache-line log
// aggregates during eviction (§6.4): one memcpy and one log entry per
// segment rather than per line.
type Segment struct {
	First int // index of the first line in the run
	N     int // number of contiguous lines
}

// Segments returns the maximal contiguous runs of set bits in ascending
// order. An all-clean bitmap yields nil.
func (b LineBitmap) Segments() []Segment {
	if b == 0 {
		return nil
	}
	return b.AppendSegments(nil)
}

// AppendSegments appends the maximal contiguous runs of set bits to dst
// and returns the extended slice — the allocation-free form of Segments
// for hot paths that reuse a scratch slice across calls.
func (b LineBitmap) AppendSegments(dst []Segment) []Segment {
	v := uint64(b)
	for v != 0 {
		first := bits.TrailingZeros64(v)
		// Shift so the run starts at bit 0, then measure the run of ones.
		run := bits.TrailingZeros64(^(v >> uint(first)))
		dst = append(dst, Segment{First: first, N: run})
		if first+run >= 64 {
			break
		}
		v &^= ((1 << uint(run)) - 1) << uint(first)
	}
	return dst
}

// MarkWrite sets the dirty bits covered by a write of length n bytes
// starting at byte offset off within the page. Writes that spill past the
// page end are truncated; the caller splits multi-page writes.
func (b *LineBitmap) MarkWrite(off, n uint64) {
	if n == 0 || off >= PageSize {
		return
	}
	end := off + n
	if end > PageSize {
		end = PageSize
	}
	lo := int(off / CacheLineSize)
	hi := int((end - 1) / CacheLineSize)
	b.SetRange(lo, hi+1)
}
