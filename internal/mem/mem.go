// Package mem defines the primitive memory vocabulary shared by every
// subsystem in the repository: byte addresses, cache lines, pages, address
// ranges and cache-line dirty bitmaps.
//
// All address arithmetic in the simulators is done in terms of these types
// so that granularity assumptions (64-byte lines, 4KB pages, 2MB huge
// pages) live in exactly one place.
package mem

import "fmt"

// Fundamental granularities. These mirror the x86-64 values assumed
// throughout the paper (§2).
const (
	// CacheLineSize is the coherence and dirty-tracking granularity.
	CacheLineSize = 64
	// PageSize is the base virtual-memory page size.
	PageSize = 4096
	// HugePageSize is the 2MB large-page size used in Table 2.
	HugePageSize = 2 << 20
	// LinesPerPage is the number of cache lines in a base page.
	LinesPerPage = PageSize / CacheLineSize // 64
	// LinesPerHugePage is the number of cache lines in a huge page.
	LinesPerHugePage = HugePageSize / CacheLineSize
)

// Addr is a byte address in one of the simulated address spaces (process
// virtual, VFMem fake-physical, or remote). The spaces never mix: a value
// is interpreted relative to the space of the structure holding it.
type Addr uint64

// Line returns the index of the cache line containing a.
func (a Addr) Line() uint64 { return uint64(a) / CacheLineSize }

// Page returns the index of the 4KB page containing a.
func (a Addr) Page() uint64 { return uint64(a) / PageSize }

// HugePage returns the index of the 2MB page containing a.
func (a Addr) HugePage() uint64 { return uint64(a) / HugePageSize }

// LineInPage returns the index (0..63) of a's cache line within its page.
func (a Addr) LineInPage() int { return int(uint64(a)%PageSize) / CacheLineSize }

// PageOffset returns the byte offset of a within its 4KB page.
func (a Addr) PageOffset() uint64 { return uint64(a) % PageSize }

// AlignDown rounds a down to a multiple of align (a power of two).
func (a Addr) AlignDown(align uint64) Addr { return Addr(uint64(a) &^ (align - 1)) }

// AlignUp rounds a up to a multiple of align (a power of two).
func (a Addr) AlignUp(align uint64) Addr {
	return Addr((uint64(a) + align - 1) &^ (align - 1))
}

// String renders the address in hex for diagnostics.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// PageBase returns the first address of 4KB page index p.
func PageBase(p uint64) Addr { return Addr(p * PageSize) }

// LineBase returns the first address of cache-line index l.
func LineBase(l uint64) Addr { return Addr(l * CacheLineSize) }

// Range is a half-open interval [Start, Start+Len) of bytes.
type Range struct {
	Start Addr
	Len   uint64
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Start + Addr(r.Len) }

// Contains reports whether a falls inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Start && a < r.End() }

// Overlaps reports whether r and s share at least one byte.
func (r Range) Overlaps(s Range) bool {
	return r.Start < s.End() && s.Start < r.End()
}

// Pages returns the number of 4KB pages the range touches.
func (r Range) Pages() uint64 {
	if r.Len == 0 {
		return 0
	}
	first := r.Start.Page()
	last := (r.End() - 1).Page()
	return last - first + 1
}

// Lines returns the number of cache lines the range touches.
func (r Range) Lines() uint64 {
	if r.Len == 0 {
		return 0
	}
	first := r.Start.Line()
	last := (r.End() - 1).Line()
	return last - first + 1
}

// String renders the range for diagnostics.
func (r Range) String() string {
	return fmt.Sprintf("[%s,%s)", r.Start, r.End())
}
