package mem

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLineBitmapConcurrentDisjoint churns many goroutines over their own
// bitmaps with randomized mark/clear/scan sequences, each checked
// against a per-goroutine reference. LineBitmap is deliberately
// unsynchronized — the runtime guards each frame's bitmap with its
// shard lock — so the property this pins (under -race) is that the
// implementation shares no hidden state between instances: no package
// scratch, no global tables. A reference model per goroutine also
// re-verifies the bit logic itself under far more interleavings than
// the table-driven tests.
func TestLineBitmapConcurrentDisjoint(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			var b LineBitmap
			var ref [LinesPerPage]bool
			scratch := make([]Segment, 0, 8)
			for step := 0; step < 5000; step++ {
				switch rng.Intn(5) {
				case 0:
					i := rng.Intn(LinesPerPage)
					b.Set(i)
					ref[i] = true
				case 1:
					i := rng.Intn(LinesPerPage)
					b.Clear(i)
					ref[i] = false
				case 2:
					off := uint64(rng.Intn(int(PageSize)))
					n := uint64(rng.Intn(int(PageSize)))
					b.MarkWrite(off, n)
					if n > 0 && off < PageSize {
						end := off + n
						if end > PageSize {
							end = PageSize
						}
						for i := off / CacheLineSize; i <= (end-1)/CacheLineSize; i++ {
							ref[i] = true
						}
					}
				case 3: // full scan against the reference
					count := 0
					for i := 0; i < LinesPerPage; i++ {
						if b.Get(i) != ref[i] {
							t.Errorf("goroutine %d step %d: line %d = %v, want %v", g, step, i, b.Get(i), ref[i])
							return
						}
						if ref[i] {
							count++
						}
					}
					if b.Count() != count {
						t.Errorf("goroutine %d step %d: Count = %d, want %d", g, step, b.Count(), count)
						return
					}
				default: // segment scan must tile exactly the set lines
					scratch = b.AppendSegments(scratch[:0])
					var seen [LinesPerPage]bool
					for _, s := range scratch {
						for i := s.First; i < s.First+s.N; i++ {
							seen[i] = true
						}
					}
					if seen != ref {
						t.Errorf("goroutine %d step %d: segments disagree with reference", g, step)
						return
					}
					// Maximality: segments never touch.
					for i := 1; i < len(scratch); i++ {
						if scratch[i-1].First+scratch[i-1].N >= scratch[i].First {
							t.Errorf("goroutine %d step %d: segments %v not maximal/ordered", g, step, scratch)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAppendSegmentsFullAndTop covers the boundary the shifting trick in
// AppendSegments has to get right: runs ending exactly at bit 63.
func TestAppendSegmentsFullAndTop(t *testing.T) {
	full := ^LineBitmap(0)
	segs := full.Segments()
	if len(segs) != 1 || segs[0] != (Segment{First: 0, N: 64}) {
		t.Fatalf("full bitmap segments = %v", segs)
	}
	var top LineBitmap
	top.Set(63)
	if segs = top.Segments(); len(segs) != 1 || segs[0] != (Segment{First: 63, N: 1}) {
		t.Fatalf("top-bit segments = %v", segs)
	}
	var split LineBitmap
	split.SetRange(0, 3)
	split.SetRange(60, 64)
	if segs = split.Segments(); len(segs) != 2 ||
		segs[0] != (Segment{First: 0, N: 3}) || segs[1] != (Segment{First: 60, N: 4}) {
		t.Fatalf("split segments = %v", segs)
	}
}
