package rdma

import (
	"bytes"
	"testing"
)

func TestGatherConcatenates(t *testing.T) {
	l, r, qp := pair()
	a := l.RegisterMR(64)
	b := l.RegisterMR(64)
	pool := r.RegisterMR(256)
	copy(a.Bytes(), []byte("AAAA"))
	copy(b.Bytes()[8:], []byte("BBBB"))
	done, err := qp.PostGather(0, []GatherWR{{
		SGEs: []SGE{
			{Local: a, LocalOff: 0, Len: 4},
			{Local: b, LocalOff: 8, Len: 4},
		},
		RemoteKey: pool.Key(), RemoteOff: 16, Signaled: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pool.Bytes()[16:24], []byte("AAAABBBB")) {
		t.Fatalf("gather result = %q", pool.Bytes()[16:24])
	}
	cqs := qp.PollCQ()
	if len(cqs) != 1 || cqs[0].Len != 8 || cqs[0].When != done {
		t.Errorf("completion = %+v", cqs)
	}
}

func TestGatherErrors(t *testing.T) {
	l, r, qp := pair()
	a := l.RegisterMR(64)
	pool := r.RegisterMR(64)
	cases := []GatherWR{
		{SGEs: nil, RemoteKey: pool.Key()},
		{SGEs: []SGE{{Local: nil, Len: 4}}, RemoteKey: pool.Key()},
		{SGEs: []SGE{{Local: a, Len: 4}}, RemoteKey: 999},
		{SGEs: []SGE{{Local: a, LocalOff: 62, Len: 4}}, RemoteKey: pool.Key()},
		{SGEs: []SGE{{Local: a, Len: 4}}, RemoteKey: pool.Key(), RemoteOff: 62},
		{SGEs: make([]SGE, maxSGEs+1), RemoteKey: pool.Key()},
	}
	for i, wr := range cases {
		for j := range wr.SGEs {
			if wr.SGEs[j].Local == nil && i != 1 {
				wr.SGEs[j] = SGE{Local: a, Len: 1}
			}
		}
		if _, err := qp.PostGather(0, []GatherWR{wr}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if done, err := qp.PostGather(42, nil); err != nil || done != 42 {
		t.Errorf("empty gather: %v %v", done, err)
	}
}

// The economics the paper observed: gathering many small elements costs
// more NIC time than one contiguous write of the same payload.
func TestGatherCostExceedsContiguous(t *testing.T) {
	l, r, _ := pair()
	qpG := Connect(l, r, DefaultCostModel())
	qpC := Connect(NewEndpoint("l2"), r, DefaultCostModel())
	src := l.RegisterMR(4096)
	l2src := qpC.local.RegisterMR(4096)
	pool := r.RegisterMR(8192)

	var sges []SGE
	for i := 0; i < 16; i++ {
		sges = append(sges, SGE{Local: src, LocalOff: i * 128, Len: 64})
	}
	gDone, err := qpG.PostGather(0, []GatherWR{{SGEs: sges, RemoteKey: pool.Key()}})
	if err != nil {
		t.Fatal(err)
	}
	cDone, err := qpC.PostSend(0, []WR{{Op: OpWrite, Local: l2src, RemoteKey: pool.Key(), Len: 16 * 64}})
	if err != nil {
		t.Fatal(err)
	}
	if gDone <= cDone {
		t.Errorf("16-element gather (%v) should cost more than one contiguous write (%v)", gDone, cDone)
	}
}
