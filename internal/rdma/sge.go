package rdma

import (
	"fmt"
	"time"

	"kona/internal/simclock"
)

// Scatter-gather support. The paper evaluated using the NIC's
// scatter-gather capability to ship discontiguous dirty cache lines
// without aggregating them into a log, and found it "consistently worse
// than Kona ... due to inefficiencies in gathering many different
// entries" (§6.4). This file models that path so the ablation experiment
// can reproduce the comparison.

// SGE is one scatter-gather element of a gather write.
type SGE struct {
	Local    *MR
	LocalOff int
	Len      int
}

// GatherWR is a single RDMA write gathering multiple local elements into
// one contiguous remote range.
type GatherWR struct {
	SGEs      []SGE
	RemoteKey uint32
	RemoteOff int
	Signaled  bool
}

// perSGECost is the NIC's per-element gather overhead: descriptor fetch
// and a separate DMA engine transaction per element. It is what makes
// many-element gathers lose to one aggregated copy+write.
const perSGECost = 180 * time.Nanosecond

// maxSGEs mirrors real NIC limits (CX5-class: 30).
const maxSGEs = 30

// PostGather posts a batch of gather writes. Data from each SGE is
// concatenated into the remote range in order.
func (qp *QP) PostGather(now simclock.Duration, wrs []GatherWR) (simclock.Duration, error) {
	if len(wrs) == 0 {
		return now, nil
	}
	totalBytes := 0
	totalSGEs := 0
	for i := range wrs {
		if len(wrs[i].SGEs) == 0 {
			return now, fmt.Errorf("rdma: gather wr %d has no SGEs", i)
		}
		if len(wrs[i].SGEs) > maxSGEs {
			return now, fmt.Errorf("rdma: gather wr %d has %d SGEs, NIC max %d", i, len(wrs[i].SGEs), maxSGEs)
		}
		n, err := qp.executeGather(&wrs[i])
		if err != nil {
			return now, fmt.Errorf("rdma: gather wr %d: %w", i, err)
		}
		totalBytes += n
		totalSGEs += len(wrs[i].SGEs)
	}
	occupancy := simclock.Duration(len(wrs))*qp.cm.PerWR +
		simclock.Duration(totalSGEs)*perSGECost +
		qp.cm.WireTime(totalBytes)
	propagation := qp.cm.Doorbell + qp.cm.Completion + qp.injectedDelay
	done := qp.local.nic.Serve(now, occupancy) + propagation
	for i := range wrs {
		if wrs[i].Signaled {
			qp.cq = append(qp.cq, Completion{Op: OpWrite, Len: gatherLen(&wrs[i]), When: done})
		}
	}
	qp.batches++
	qp.wrs += uint64(len(wrs))
	qp.bytes += uint64(totalBytes)
	return done, nil
}

func gatherLen(wr *GatherWR) int {
	n := 0
	for _, s := range wr.SGEs {
		n += s.Len
	}
	return n
}

// executeGather moves the bytes of one gather write.
func (qp *QP) executeGather(wr *GatherWR) (int, error) {
	remote, ok := qp.remote.LookupMR(wr.RemoteKey)
	if !ok {
		return 0, fmt.Errorf("remote key %d unknown", wr.RemoteKey)
	}
	off := wr.RemoteOff
	total := 0
	for i, sge := range wr.SGEs {
		if sge.Local == nil {
			return 0, fmt.Errorf("sge %d: nil MR", i)
		}
		if _, ok := qp.local.mrs[sge.Local.key]; !ok {
			return 0, fmt.Errorf("sge %d: MR %d not registered", i, sge.Local.key)
		}
		if sge.LocalOff < 0 || sge.LocalOff+sge.Len > len(sge.Local.data) {
			return 0, fmt.Errorf("sge %d: local range out of bounds", i)
		}
		if off < 0 || off+sge.Len > len(remote.data) {
			return 0, fmt.Errorf("sge %d: remote range out of bounds", i)
		}
		copy(remote.data[off:off+sge.Len], sge.Local.data[sge.LocalOff:])
		off += sge.Len
		total += sge.Len
	}
	return total, nil
}
