// Package rdma simulates the one-sided RDMA verbs layer the paper's
// eviction path is built on (§5.1, §6.4): registered memory regions, queue
// pairs, work-request batching and linking, signaled/unsignaled
// completions, and a NIC cost model calibrated to the paper's measured
// figures (a single 4KB write ≈ 3µs end-to-end at 100Gbps line rate).
//
// Data movement is functional — writes and reads really copy bytes between
// the local and remote registered buffers — while time is virtual: every
// posted batch returns its completion time under the cost model, and the
// NIC serializes batches like the single DMA engine it is.
package rdma

import (
	"fmt"
	"sync"
	"time"

	"kona/internal/simclock"
)

// Op is the verb type.
type Op uint8

const (
	// OpWrite is RDMA WRITE (local -> remote, one-sided).
	OpWrite Op = iota
	// OpRead is RDMA READ (remote -> local, one-sided).
	OpRead
)

// String names the verb.
func (o Op) String() string {
	if o == OpRead {
		return "READ"
	}
	return "WRITE"
}

// CostModel parameterizes the NIC timing. The defaults reproduce the
// paper's end-to-end single-verb figure (≈3µs for 4KB) while rewarding
// batching and linking the way real NICs do: the doorbell and completion
// costs are paid once per posted batch, the per-WR cost once per request.
type CostModel struct {
	// Doorbell is the per-PostSend cost (MMIO doorbell, descriptor fetch).
	Doorbell simclock.Duration
	// PerWR is the per-work-request processing cost when linked in a batch.
	PerWR simclock.Duration
	// Completion is the completion-generation plus poll cost, paid per
	// batch (unsignaled intermediate WRs generate no completion).
	Completion simclock.Duration
	// LineRateGbps is the wire speed.
	LineRateGbps int
}

// DefaultCostModel returns the calibrated model: 1.2µs doorbell, 250ns per
// WR, 1.2µs completion, 100Gbps. A lone 4KB write costs
// 1200+250+328+1200 ≈ 2.98µs, matching §2.1's ~3µs.
func DefaultCostModel() CostModel {
	return CostModel{
		Doorbell:     1200 * time.Nanosecond,
		PerWR:        250 * time.Nanosecond,
		Completion:   1200 * time.Nanosecond,
		LineRateGbps: 100,
	}
}

// WireTime returns the serialization delay of n payload bytes.
func (cm CostModel) WireTime(n int) simclock.Duration {
	return simclock.Duration(float64(n) * 8 / float64(cm.LineRateGbps))
}

// BatchTime returns the modeled service time of a linked batch with the
// given WR count and total payload bytes.
func (cm CostModel) BatchTime(wrs, bytes int) simclock.Duration {
	if wrs == 0 {
		return 0
	}
	return cm.Doorbell + simclock.Duration(wrs)*cm.PerWR + cm.WireTime(bytes) + cm.Completion
}

// MR is a registered memory region.
type MR struct {
	key  uint32
	data []byte
}

// Key returns the region's rkey/lkey.
func (m *MR) Key() uint32 { return m.key }

// Bytes exposes the registered buffer.
func (m *MR) Bytes() []byte { return m.data }

// Endpoint is one RDMA-capable host side: a registry of memory regions.
// The registry lock mirrors a real verbs stack, where ibv_reg_mr pins and
// maps pages under kernel locks while the data path stays lock-free: a
// compute node's shards share one local endpoint, so a lazily created
// link can register MRs while another link's verbs resolve keys.
type Endpoint struct {
	name    string
	mu      sync.RWMutex
	mrs     map[uint32]*MR
	nextKey uint32
	// nic serializes this endpoint's posted batches.
	nic simclock.Server
}

// NewEndpoint returns an endpoint with no registered memory.
func NewEndpoint(name string) *Endpoint {
	return &Endpoint{name: name, mrs: make(map[uint32]*MR)}
}

// RegisterMR registers size bytes and returns the region.
func (e *Endpoint) RegisterMR(size int) *MR {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextKey++
	mr := &MR{key: e.nextKey, data: make([]byte, size)}
	e.mrs[mr.key] = mr
	return mr
}

// LookupMR resolves a registered key.
func (e *Endpoint) LookupMR(key uint32) (*MR, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	mr, ok := e.mrs[key]
	return mr, ok
}

// DeregisterMR removes a region; posted WRs naming it will fail.
func (e *Endpoint) DeregisterMR(key uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.mrs, key)
}

// WR is one work request in a batch.
type WR struct {
	Op Op
	// Local names a region registered at the posting endpoint.
	Local    *MR
	LocalOff int
	// RemoteKey/RemoteOff name the target region at the peer.
	RemoteKey uint32
	RemoteOff int
	Len       int
	// Signaled requests a completion entry for this WR. The cost model
	// charges completion cost per batch, so the common pattern — signal
	// only the last WR — is the efficient one.
	Signaled bool
}

// Completion is a CQ entry.
type Completion struct {
	Op   Op
	Len  int
	When simclock.Duration
	Err  error
}

// QP is a reliable-connected queue pair from a local endpoint to a remote
// endpoint.
type QP struct {
	cm     CostModel
	local  *Endpoint
	remote *Endpoint
	cq     []Completion

	// injectedDelay is added to every batch's service time; failure
	// experiments use it to simulate a slow or congested network (§4.5).
	injectedDelay simclock.Duration

	// stats
	batches, wrs uint64
	bytes        uint64
}

// InjectDelay adds d to every subsequent batch's latency (failure
// injection for the network-delay experiments). Pass 0 to clear.
func (qp *QP) InjectDelay(d simclock.Duration) { qp.injectedDelay = d }

// Connect builds a queue pair between two endpoints under a cost model.
func Connect(local, remote *Endpoint, cm CostModel) *QP {
	return &QP{cm: cm, local: local, remote: remote}
}

// PostSend posts a linked batch of work requests at virtual time now. The
// data movement happens immediately (the simulation is sequentially
// consistent at batch granularity); the returned time is when the batch's
// completion would be observed by polling. Signaled WRs push completion
// entries onto the CQ.
func (qp *QP) PostSend(now simclock.Duration, wrs []WR) (simclock.Duration, error) {
	if len(wrs) == 0 {
		return now, nil
	}
	totalBytes := 0
	for i := range wrs {
		if err := qp.execute(&wrs[i]); err != nil {
			return now, fmt.Errorf("rdma: wr %d: %w", i, err)
		}
		totalBytes += wrs[i].Len
	}
	// The NIC serializes batches only for their *occupancy* (descriptor
	// processing and wire serialization); the fixed doorbell/completion
	// latency pipelines with other batches. End-to-end latency of a lone
	// batch is unchanged (BatchTime), but concurrent batches sustain line
	// rate instead of being latency-serialized.
	occupancy := simclock.Duration(len(wrs))*qp.cm.PerWR + qp.cm.WireTime(totalBytes)
	propagation := qp.cm.Doorbell + qp.cm.Completion + qp.injectedDelay
	done := qp.local.nic.Serve(now, occupancy) + propagation
	for i := range wrs {
		if wrs[i].Signaled {
			qp.cq = append(qp.cq, Completion{Op: wrs[i].Op, Len: wrs[i].Len, When: done})
		}
	}
	qp.batches++
	qp.wrs += uint64(len(wrs))
	qp.bytes += uint64(totalBytes)
	return done, nil
}

// execute moves the bytes for one WR.
func (qp *QP) execute(wr *WR) error {
	if wr.Local == nil {
		return fmt.Errorf("nil local MR")
	}
	if _, ok := qp.local.LookupMR(wr.Local.key); !ok {
		return fmt.Errorf("local MR %d not registered", wr.Local.key)
	}
	remote, ok := qp.remote.LookupMR(wr.RemoteKey)
	if !ok {
		return fmt.Errorf("remote key %d unknown", wr.RemoteKey)
	}
	if wr.LocalOff < 0 || wr.LocalOff+wr.Len > len(wr.Local.data) {
		return fmt.Errorf("local range [%d,%d) outside MR of %d bytes", wr.LocalOff, wr.LocalOff+wr.Len, len(wr.Local.data))
	}
	if wr.RemoteOff < 0 || wr.RemoteOff+wr.Len > len(remote.data) {
		return fmt.Errorf("remote range [%d,%d) outside MR of %d bytes", wr.RemoteOff, wr.RemoteOff+wr.Len, len(remote.data))
	}
	switch wr.Op {
	case OpWrite:
		copy(remote.data[wr.RemoteOff:wr.RemoteOff+wr.Len], wr.Local.data[wr.LocalOff:])
	case OpRead:
		copy(wr.Local.data[wr.LocalOff:wr.LocalOff+wr.Len], remote.data[wr.RemoteOff:])
	default:
		return fmt.Errorf("unknown op %d", wr.Op)
	}
	return nil
}

// PollCQ drains and returns pending completions.
func (qp *QP) PollCQ() []Completion {
	c := qp.cq
	qp.cq = nil
	return c
}

// Stats returns batch/WR/byte counters.
func (qp *QP) Stats() (batches, wrs, bytes uint64) {
	return qp.batches, qp.wrs, qp.bytes
}
