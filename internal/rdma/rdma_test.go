package rdma

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func pair() (*Endpoint, *Endpoint, *QP) {
	l := NewEndpoint("local")
	r := NewEndpoint("remote")
	return l, r, Connect(l, r, DefaultCostModel())
}

func TestWriteMovesBytes(t *testing.T) {
	l, r, qp := pair()
	lmr := l.RegisterMR(4096)
	rmr := r.RegisterMR(4096)
	copy(lmr.Bytes(), []byte("hello remote memory"))
	done, err := qp.PostSend(0, []WR{{
		Op: OpWrite, Local: lmr, RemoteKey: rmr.Key(), Len: 19, Signaled: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rmr.Bytes()[:19], []byte("hello remote memory")) {
		t.Fatalf("remote bytes = %q", rmr.Bytes()[:19])
	}
	if done <= 0 {
		t.Fatalf("completion time = %v", done)
	}
	cqs := qp.PollCQ()
	if len(cqs) != 1 || cqs[0].Op != OpWrite || cqs[0].Len != 19 || cqs[0].When != done {
		t.Errorf("completions = %+v", cqs)
	}
	if len(qp.PollCQ()) != 0 {
		t.Errorf("CQ not drained")
	}
}

func TestReadMovesBytes(t *testing.T) {
	l, r, qp := pair()
	lmr := l.RegisterMR(64)
	rmr := r.RegisterMR(64)
	copy(rmr.Bytes(), []byte("far data"))
	if _, err := qp.PostSend(0, []WR{{Op: OpRead, Local: lmr, RemoteKey: rmr.Key(), Len: 8}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lmr.Bytes()[:8], []byte("far data")) {
		t.Fatalf("local bytes = %q", lmr.Bytes()[:8])
	}
}

func TestOffsets(t *testing.T) {
	l, r, qp := pair()
	lmr := l.RegisterMR(128)
	rmr := r.RegisterMR(128)
	copy(lmr.Bytes()[32:], []byte("xyz"))
	if _, err := qp.PostSend(0, []WR{{
		Op: OpWrite, Local: lmr, LocalOff: 32, RemoteKey: rmr.Key(), RemoteOff: 96, Len: 3,
	}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rmr.Bytes()[96:99], []byte("xyz")) {
		t.Fatalf("offset write failed: %q", rmr.Bytes()[96:99])
	}
}

func TestErrors(t *testing.T) {
	l, r, qp := pair()
	lmr := l.RegisterMR(64)
	rmr := r.RegisterMR(64)
	cases := []WR{
		{Op: OpWrite, Local: nil, RemoteKey: rmr.Key(), Len: 8},
		{Op: OpWrite, Local: lmr, RemoteKey: 999, Len: 8},
		{Op: OpWrite, Local: lmr, LocalOff: 60, RemoteKey: rmr.Key(), Len: 8},
		{Op: OpWrite, Local: lmr, RemoteKey: rmr.Key(), RemoteOff: 60, Len: 8},
		{Op: OpWrite, Local: lmr, LocalOff: -1, RemoteKey: rmr.Key(), Len: 4},
	}
	for i, wr := range cases {
		if _, err := qp.PostSend(0, []WR{wr}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Deregistered local MR fails.
	l.DeregisterMR(lmr.Key())
	if _, err := qp.PostSend(0, []WR{{Op: OpWrite, Local: lmr, RemoteKey: rmr.Key(), Len: 8}}); err == nil {
		t.Errorf("deregistered MR accepted")
	}
}

func TestSingle4KBWriteIsAbout3us(t *testing.T) {
	cm := DefaultCostModel()
	got := cm.BatchTime(1, 4096)
	if got < 2700*time.Nanosecond || got > 3300*time.Nanosecond {
		t.Errorf("single 4KB write = %v, want ~3µs (paper §2.1)", got)
	}
}

// Batching and linking must beat individual posts — the optimization the
// paper reports as significant (§5.1).
func TestBatchingBeatsIndividualPosts(t *testing.T) {
	cm := DefaultCostModel()
	batched := cm.BatchTime(64, 64*64)
	individual := 64 * cm.BatchTime(1, 64)
	if batched*2 >= individual {
		t.Errorf("batched 64 CL writes (%v) should be far under 64 singles (%v)", batched, individual)
	}
}

func TestNICSerializesBatches(t *testing.T) {
	l, r, qp := pair()
	lmr := l.RegisterMR(8192)
	rmr := r.RegisterMR(8192)
	wr := []WR{{Op: OpWrite, Local: lmr, RemoteKey: rmr.Key(), Len: 4096}}
	d1, err := qp.PostSend(0, wr)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := qp.PostSend(0, wr) // same arrival: must queue behind d1
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("second batch (%v) not serialized after first (%v)", d2, d1)
	}
	batches, wrs, bytesMoved := qp.Stats()
	if batches != 2 || wrs != 2 || bytesMoved != 8192 {
		t.Errorf("stats = %d,%d,%d", batches, wrs, bytesMoved)
	}
}

func TestEmptyBatch(t *testing.T) {
	_, _, qp := pair()
	done, err := qp.PostSend(42, nil)
	if err != nil || done != 42 {
		t.Errorf("empty post: %v %v", done, err)
	}
}

// Property: a write of random bytes at random valid offsets is readable
// back via RDMA READ (round trip through remote memory is identity).
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, off8, len8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l, r, qp := pair()
		lmr := l.RegisterMR(1024)
		back := l.RegisterMR(1024)
		rmr := r.RegisterMR(1024)
		off := int(off8) % 512
		n := 1 + int(len8)%256
		payload := make([]byte, n)
		rng.Read(payload)
		copy(lmr.Bytes()[off:], payload)
		if _, err := qp.PostSend(0, []WR{{Op: OpWrite, Local: lmr, LocalOff: off, RemoteKey: rmr.Key(), RemoteOff: off, Len: n}}); err != nil {
			return false
		}
		if _, err := qp.PostSend(0, []WR{{Op: OpRead, Local: back, LocalOff: off, RemoteKey: rmr.Key(), RemoteOff: off, Len: n}}); err != nil {
			return false
		}
		return bytes.Equal(back.Bytes()[off:off+n], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsignaledGenerateNoCompletion(t *testing.T) {
	l, r, qp := pair()
	lmr := l.RegisterMR(1024)
	rmr := r.RegisterMR(1024)
	var wrs []WR
	for i := 0; i < 8; i++ {
		wrs = append(wrs, WR{Op: OpWrite, Local: lmr, LocalOff: i * 64, RemoteKey: rmr.Key(), RemoteOff: i * 64, Len: 64, Signaled: i == 7})
	}
	if _, err := qp.PostSend(0, wrs); err != nil {
		t.Fatal(err)
	}
	if got := len(qp.PollCQ()); got != 1 {
		t.Errorf("completions = %d, want 1 (only last signaled)", got)
	}
}
