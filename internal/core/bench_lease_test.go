package core

import (
	"math/rand"
	"sort"
	"testing"

	"kona/internal/mem"
)

// TestLeaseIdleReadersDoNotDegradeWriterFlushP99 is the sharing-overhead
// guard (`make bench-lease`): attaching idle readers to a writer's
// region must not put lease machinery on the writer's flush path. The
// same deterministic dirty-then-Sync sequence runs unshared (baseline)
// and shared with 4 attached readers; the per-Sync virtual-time p99 may
// not degrade by 10% or more. The lease work a shared Sync adds — one
// publish RPC after the flush completes — is control-plane, and this
// pins it that way.
func TestLeaseIdleReadersDoNotDegradeWriterFlushP99(t *testing.T) {
	const pages = 64
	const rounds = 400

	flushP99 := func(readers int) simDurT {
		ctrl := newCluster(1)
		w := NewKona(smallConfig(), ctrl)
		base, err := w.Malloc(pages * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		var now simDurT
		if readers >= 0 {
			group, err := w.ShareWriter(base)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < readers; i++ {
				r := NewKona(smallConfig(), ctrl)
				if _, _, err := r.AttachReader(group); err != nil {
					t.Fatal(err)
				}
			}
		}
		rng := rand.New(rand.NewSource(11))
		line := make([]byte, mem.CacheLineSize)
		lat := make([]simDurT, 0, rounds)
		for i := 0; i < rounds; i++ {
			// Dirty 8 scattered lines, then flush them — the steady-state
			// shape of a writer publishing small updates.
			for j := 0; j < 8; j++ {
				rng.Read(line)
				addr := base + mem.Addr(rng.Intn(pages))*mem.PageSize +
					mem.Addr(rng.Intn(int(mem.PageSize/mem.CacheLineSize)))*mem.CacheLineSize
				if now, err = w.Write(now, addr, line); err != nil {
					t.Fatal(err)
				}
			}
			done, err := w.Sync(now)
			if err != nil {
				t.Fatal(err)
			}
			lat = append(lat, done-now)
			now = done
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}

	baseline := flushP99(-1) // unshared: no lease touched at all
	shared := flushP99(4)    // writer lease + 4 idle attached readers

	if baseline <= 0 {
		t.Fatalf("degenerate baseline flush p99 %v", baseline)
	}
	t.Logf("flush p99: baseline=%v with-4-idle-readers=%v", baseline, shared)
	if float64(shared) >= float64(baseline)*1.10 {
		t.Fatalf("flush p99 %v with 4 idle readers vs %v unshared: degraded >= 10%%", shared, baseline)
	}
}
