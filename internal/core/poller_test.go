package core

import (
	"testing"

	"kona/internal/rdma"
)

func TestPollerSweep(t *testing.T) {
	p := NewPoller()
	l := rdma.NewEndpoint("l")
	r := rdma.NewEndpoint("r")
	lmr := l.RegisterMR(4096)
	rmr := r.RegisterMR(4096)
	qp1 := rdma.Connect(l, r, rdma.DefaultCostModel())
	qp2 := rdma.Connect(l, r, rdma.DefaultCostModel())
	p.Watch(qp1)
	p.Watch(qp2)
	p.Watch(qp1) // duplicate ignored
	if p.Watched() != 2 {
		t.Fatalf("watched = %d, want 2", p.Watched())
	}

	// Post one signaled write on each QP.
	for _, qp := range []*rdma.QP{qp1, qp2} {
		if _, err := qp.PostSend(0, []rdma.WR{{
			Op: rdma.OpWrite, Local: lmr, RemoteKey: rmr.Key(), Len: 64, Signaled: true,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	comps, now := p.Sweep(0)
	if len(comps) != 2 {
		t.Errorf("sweep drained %d completions, want 2", len(comps))
	}
	if now != 2*pollSweepCost {
		t.Errorf("sweep time = %v", now)
	}
	// Second sweep: empty.
	comps, _ = p.Sweep(now)
	if len(comps) != 0 {
		t.Errorf("second sweep found %d completions", len(comps))
	}
	polls, completions, empty := p.Stats()
	if polls != 4 || completions != 2 || empty != 2 {
		t.Errorf("stats = %d/%d/%d", polls, completions, empty)
	}
}

func TestPollerEmpty(t *testing.T) {
	p := NewPoller()
	comps, now := p.Sweep(42)
	if len(comps) != 0 || now != 42 {
		t.Errorf("empty poller sweep: %v %v", comps, now)
	}
}
