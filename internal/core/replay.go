package core

import (
	"errors"
	"fmt"
	"io"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/trace"
)

// Trace-driven execution: the paper's end-to-end evaluation methodology
// (§5) instruments an application's reads and writes and replays them
// against the runtime ("we study the end-to-end benefit using an emulated
// implementation that relies on instrumenting application reads and
// writes"). ReplayTrace does the same for any runtime and any access
// stream — including the workload generators' streams and traces captured
// to disk in the KTR1 format (cmd/kona-trace -replay).

// Replayer is any runtime a trace can drive.
type Replayer interface {
	Malloc(size uint64) (mem.Addr, error)
	Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error)
	Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error)
	Sync(now simclock.Duration) (simclock.Duration, error)
}

// ReplayResult summarizes a trace replay.
type ReplayResult struct {
	// Accesses is the number of records replayed.
	Accesses uint64
	// BytesRead/BytesWritten are the application-level volumes.
	BytesRead, BytesWritten uint64
	// Elapsed is the runtime's virtual execution time, including the
	// final Sync.
	Elapsed simclock.Duration
}

// ReplayTrace allocates `footprint` bytes on the runtime, replays the
// stream's accesses against it (trace addresses are interpreted relative
// to the allocation), and drains the runtime. Access payloads are
// synthesized deterministically from the address.
//
// maxAccesses bounds the replay (0 = the whole stream).
func ReplayTrace(rt Replayer, s trace.Stream, footprint uint64, maxAccesses int) (ReplayResult, error) {
	var res ReplayResult
	if footprint == 0 {
		return res, fmt.Errorf("core: replay needs a footprint")
	}
	base, err := rt.Malloc(footprint)
	if err != nil {
		return res, err
	}
	buf := make([]byte, 64<<10)
	var now simclock.Duration
	for {
		a, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, err
		}
		if a.Size == 0 {
			continue
		}
		if uint64(a.Addr)+uint64(a.Size) > footprint {
			return res, fmt.Errorf("core: trace access %v+%d escapes footprint %d", a.Addr, a.Size, footprint)
		}
		if int(a.Size) > len(buf) {
			buf = make([]byte, a.Size)
		}
		res.Accesses++
		switch a.Kind {
		case trace.Write:
			payload := buf[:a.Size]
			fill := byte(a.Addr) ^ byte(res.Accesses)
			for i := range payload {
				payload[i] = fill + byte(i)
			}
			now, err = rt.Write(now, base+a.Addr, payload)
			res.BytesWritten += uint64(a.Size)
		default:
			now, err = rt.Read(now, base+a.Addr, buf[:a.Size])
			res.BytesRead += uint64(a.Size)
		}
		if err != nil {
			return res, fmt.Errorf("core: replaying access %d: %w", res.Accesses, err)
		}
		if maxAccesses > 0 && res.Accesses >= uint64(maxAccesses) {
			break
		}
	}
	now, err = rt.Sync(now)
	if err != nil {
		return res, err
	}
	res.Elapsed = now
	return res, nil
}
