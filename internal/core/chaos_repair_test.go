package core

import (
	"bytes"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Chaos harness (DESIGN.md §10): kill a memory node holding live
// replicas mid-workload, let the degraded-detection / re-replication /
// placement-refresh machinery heal the rack, and byte-compare every page
// of every replica against a host-side mirror. `make chaos` runs these
// under -race with a rotating seed; plain `go test` uses fixed seeds so
// CI stays deterministic.

// chaosSeed returns the workload seed: KONA_CHAOS_SEED when set (the
// rotating-seed hook), the fixed default otherwise.
func chaosSeed(t *testing.T, def int64) int64 {
	s := os.Getenv("KONA_CHAOS_SEED")
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("KONA_CHAOS_SEED=%q: %v", s, err)
	}
	t.Logf("chaos seed %d", v)
	return v
}

// groupMembersFor snapshots the placement-group members backing addr.
func groupMembersFor(k *Kona, addr mem.Addr) []Slab {
	k.rm.mu.Lock()
	defer k.rm.mu.Unlock()
	s, ok := k.rm.alloc.SlabFor(addr)
	if !ok {
		return nil
	}
	members := k.rm.replicas[s.ID]
	out := make([]Slab, len(members))
	copy(out, members)
	return out
}

// chaosWorkload drives random reads/writes/syncs against a Kona runtime,
// mirroring every write into a host-side reference buffer and checking
// every read against it.
type chaosWorkload struct {
	t      *testing.T
	k      *Kona
	ctrl   *cluster.Controller
	rng    *rand.Rand
	base   mem.Addr
	mirror []byte
	now    simDurT
}

func newChaosWorkload(t *testing.T, k *Kona, ctrl *cluster.Controller, seed int64, pages int) *chaosWorkload {
	t.Helper()
	regionBytes := uint64(pages) * mem.PageSize
	base, err := k.Malloc(regionBytes)
	if err != nil {
		t.Fatal(err)
	}
	return &chaosWorkload{
		t:      t,
		k:      k,
		ctrl:   ctrl,
		rng:    rand.New(rand.NewSource(seed)),
		base:   base,
		mirror: make([]byte, regionBytes),
	}
}

func (w *chaosWorkload) run(steps int) {
	w.t.Helper()
	regionBytes := uint64(len(w.mirror))
	var err error
	for i := 0; i < steps; i++ {
		off := uint64(w.rng.Int63n(int64(regionBytes - 512)))
		size := 1 + w.rng.Intn(511)
		switch w.rng.Intn(10) {
		case 0:
			if w.now, err = w.k.Sync(w.now); err != nil {
				w.t.Fatalf("step %d: sync: %v", i, err)
			}
		case 1, 2, 3, 4:
			data := make([]byte, size)
			w.rng.Read(data)
			if w.now, err = w.k.Write(w.now, w.base+mem.Addr(off), data); err != nil {
				w.t.Fatalf("step %d: write: %v", i, err)
			}
			copy(w.mirror[off:], data)
		default:
			buf := make([]byte, size)
			if w.now, err = w.k.Read(w.now, w.base+mem.Addr(off), buf); err != nil {
				w.t.Fatalf("step %d: read: %v", i, err)
			}
			if !bytes.Equal(buf, w.mirror[off:off+uint64(size)]) {
				w.t.Fatalf("step %d: read at +%d/%d diverged from mirror", i, off, size)
			}
		}
	}
}

func (w *chaosWorkload) sync() {
	w.t.Helper()
	var err error
	if w.now, err = w.k.Sync(w.now); err != nil {
		w.t.Fatal(err)
	}
}

// verifyThroughRuntime reads every page back through the runtime and
// compares it against the mirror (end-to-end, failover included).
func (w *chaosWorkload) verifyThroughRuntime() {
	w.t.Helper()
	buf := make([]byte, mem.PageSize)
	pages := len(w.mirror) / int(mem.PageSize)
	var err error
	for p := 0; p < pages; p++ {
		if w.now, err = w.k.Read(w.now, w.base+mem.Addr(uint64(p)*mem.PageSize), buf); err != nil {
			w.t.Fatalf("page %d: %v", p, err)
		}
		if !bytes.Equal(buf, w.mirror[uint64(p)*mem.PageSize:uint64(p+1)*mem.PageSize]) {
			w.t.Fatalf("page %d diverged from mirror", p)
		}
	}
}

// verifyReplicas byte-compares every page of every replica against the
// mirror by reading the member pools directly, and asserts full
// replication: `want` live, current-incarnation members per page, all
// identical to the host-side truth. Call only after a Sync.
func (w *chaosWorkload) verifyReplicas(want int) {
	w.t.Helper()
	buf := make([]byte, mem.PageSize)
	pages := len(w.mirror) / int(mem.PageSize)
	for p := 0; p < pages; p++ {
		addr := w.base + mem.Addr(uint64(p)*mem.PageSize)
		members := groupMembersFor(w.k, addr)
		if len(members) != want {
			w.t.Fatalf("page %d: %d members, want %d", p, len(members), want)
		}
		for _, m := range members {
			n, ok := w.ctrl.Node(m.Node)
			if !ok {
				w.t.Fatalf("page %d: member node %d not registered", p, m.Node)
			}
			if n.Failed() {
				w.t.Fatalf("page %d: member node %d is dead (replication not restored)", p, m.Node)
			}
			if inc := w.ctrl.Incarnation(m.Node); m.Epoch != inc {
				w.t.Fatalf("page %d: member epoch %d != node %d incarnation %d (stale placement survived)",
					p, m.Epoch, m.Node, inc)
			}
			off := m.RemoteOff + uint64(addr-m.Base)
			if err := n.ReadAt(off, buf); err != nil {
				w.t.Fatalf("page %d node %d: %v", p, m.Node, err)
			}
			if !bytes.Equal(buf, w.mirror[uint64(p)*mem.PageSize:uint64(p+1)*mem.PageSize]) {
				w.t.Fatalf("page %d: replica on node %d diverged from mirror (lost/torn lines)", p, m.Node)
			}
		}
	}
}

// drainRepairs runs repair passes until no slab is degraded.
func drainRepairs(t *testing.T, e *cluster.RepairEngine, ctrl *cluster.Controller) {
	t.Helper()
	for i := 0; ctrl.DegradedCount() > 0; i++ {
		if i > 100 {
			t.Fatalf("repair did not converge: %d slabs still degraded", ctrl.DegradedCount())
		}
		e.RepairOnce()
	}
}

// TestChaosKillReplicaRepairVerify is the headline chaos test: a replica
// node is killed mid-workload; the evictor's ship-failure report expels
// it and degrades its slabs; the repair engine re-replicates them onto
// the spare node; the runtime's next Sync picks up the placement flip and
// replays its retained dirty lines onto the repaired member. Afterwards
// every page of every replica must match the host-side mirror exactly.
func TestChaosKillReplicaRepairVerify(t *testing.T) {
	seed := chaosSeed(t, 1)
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize // constant eviction churn
	cfg.Replicas = 2
	k := NewKona(cfg, ctrl)
	w := newChaosWorkload(t, k, ctrl, seed, 128)

	// Phase 1: healthy rack.
	w.run(1500)

	// Kill one of the two nodes actually hosting the region (seed-picked).
	members := groupMembersFor(k, w.base)
	if len(members) != 2 {
		t.Fatalf("members = %+v, want 2 replicas", members)
	}
	victim := members[int(uint64(seed)%2)]
	vn, ok := ctrl.Node(victim.Node)
	if !ok {
		t.Fatalf("victim node %d not registered", victim.Node)
	}
	vn.Fail()

	// Phase 2: degraded operation. Reads fail over; evictions to the dead
	// replica are skipped-and-retained; the first skipped ship reports the
	// outage, which expels the node and degrades its slabs.
	w.run(1000)
	ctrl.HealthSweep() // backstop for a workload that never shipped
	if ctrl.DegradedCount() == 0 {
		t.Fatalf("victim loss not detected")
	}
	if _, ok := ctrl.Node(victim.Node); ok {
		t.Fatalf("dead victim still registered")
	}

	// Repair: copy each degraded slab from its surviving replica onto the
	// spare node and flip the placement.
	engine := cluster.NewRepairEngine(ctrl, &cluster.LocalRepairTransport{Ctrl: ctrl},
		cluster.RepairConfig{BytesPerSec: 512 << 20})
	drainRepairs(t, engine, ctrl)
	if st := engine.Stats(); st.Flips == 0 {
		t.Fatalf("repair drained with zero flips: %+v", st)
	}

	// Sync observes the placement-epoch bump, refreshes, remaps the
	// retained entries onto the repaired member and flushes them.
	w.sync()

	// Phase 3: keep running on the healed rack, then verify everything.
	w.run(500)
	w.sync()
	w.verifyReplicas(2)
	w.verifyThroughRuntime()

	fs := k.FailureStats()
	if fs.ShipFailureReports == 0 {
		t.Errorf("evictor never reported the dead replica")
	}
	if fs.PlacementRefreshes == 0 {
		t.Errorf("runtime never refreshed placements after the flip")
	}
	if fs.RemappedEntries == 0 {
		t.Errorf("no retained entries remapped onto the repaired member")
	}
	for _, m := range groupMembersFor(k, w.base) {
		if m.Node == victim.Node && m.Epoch == victim.Epoch {
			t.Errorf("pre-crash placement survived repair: %+v", m)
		}
	}
}

// TestChaosRejoinSoak cycles crash → degraded workload → repair → rejoin
// of the same node id under load, checking the rack converges every
// cycle: node count restored, no leaked degraded slabs, no accepted
// double registration, incarnations strictly growing, and all data
// intact at the end.
func TestChaosRejoinSoak(t *testing.T) {
	seed := chaosSeed(t, 2)
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.Replicas = 2
	k := NewKona(cfg, ctrl)
	w := newChaosWorkload(t, k, ctrl, seed, 64)
	engine := cluster.NewRepairEngine(ctrl, &cluster.LocalRepairTransport{Ctrl: ctrl},
		cluster.RepairConfig{})

	const cycles = 4
	lastIncarn := make(map[int]uint64)
	for cycle := 0; cycle < cycles; cycle++ {
		w.run(400)

		// Crash a current replica holder (rotates across cycles as repair
		// moves placements around).
		members := groupMembersFor(k, w.base)
		victim := members[cycle%len(members)].Node
		vn, ok := ctrl.Node(victim)
		if !ok {
			t.Fatalf("cycle %d: victim %d not registered", cycle, victim)
		}
		vn.Fail()

		w.run(250) // degraded operation
		ctrl.HealthSweep()
		drainRepairs(t, engine, ctrl)

		// Crash-rejoin: the same id returns with an empty pool and must be
		// admitted under a strictly higher incarnation...
		if err := ctrl.Register(cluster.NewMemoryNode(victim, 64<<20)); err != nil {
			t.Fatalf("cycle %d: rejoin of node %d: %v", cycle, victim, err)
		}
		inc := ctrl.Incarnation(victim)
		if inc <= lastIncarn[victim] || inc < 2 {
			t.Fatalf("cycle %d: incarnation %d did not grow (last %d)", cycle, inc, lastIncarn[victim])
		}
		lastIncarn[victim] = inc
		// ...while a second registration of the now-live id is rejected.
		if err := ctrl.Register(cluster.NewMemoryNode(victim, 64<<20)); err == nil {
			t.Fatalf("cycle %d: double registration of live node %d accepted", cycle, victim)
		}
		if got := ctrl.Nodes(); got != 3 {
			t.Fatalf("cycle %d: %d nodes registered, want 3", cycle, got)
		}
		if got := ctrl.DegradedCount(); got != 0 {
			t.Fatalf("cycle %d: %d degraded slabs leaked", cycle, got)
		}
		w.sync() // pick up the flip before the next cycle
	}

	w.run(300)
	w.sync()
	w.verifyReplicas(2)
	w.verifyThroughRuntime()

	st := engine.Stats()
	if st.Flips < cycles {
		t.Errorf("flips = %d, want >= %d (one per killed replica)", st.Flips, cycles)
	}
	fs := k.FailureStats()
	if fs.PlacementRefreshes < cycles {
		t.Errorf("placement refreshes = %d, want >= %d", fs.PlacementRefreshes, cycles)
	}
	if fs.ShipFailureReports == 0 {
		t.Errorf("evictor never reported a dead replica across %d kills", cycles)
	}
}

// TestRepairDoesNotStarveFetchP99 is the starvation guard: fetch latency
// lives on the simulated-fabric virtual clock while repair traffic rides
// its own budgeted transport, so a concurrent slab repair must not
// degrade the fetch p99 by 10% or more.
func TestRepairDoesNotStarveFetchP99(t *testing.T) {
	seed := chaosSeed(t, 3)
	const pages = 128

	// fetchP99 runs a deterministic cold-read sequence and returns the
	// p99 per-read virtual latency.
	fetchP99 := func() simDurT {
		ctrl := newCluster(2)
		cfg := smallConfig()
		cfg.LocalCacheBytes = 8 * mem.PageSize
		k := NewKona(cfg, ctrl)
		w := newChaosWorkload(t, k, ctrl, seed, pages)
		// Populate remote memory, then read far beyond the cache so most
		// accesses are remote fetches.
		w.run(600)
		w.sync()
		rng := rand.New(rand.NewSource(seed + 1))
		lat := make([]simDurT, 0, 2000)
		buf := make([]byte, 256)
		for i := 0; i < 2000; i++ {
			addr := w.base + mem.Addr(uint64(rng.Intn(pages))*mem.PageSize)
			done, err := k.Read(w.now, addr, buf)
			if err != nil {
				t.Fatal(err)
			}
			lat = append(lat, done-w.now)
			w.now = done
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}

	baseline := fetchP99()

	// Same sequence again, now with a real repair copying a 4MB slab in
	// the background for the duration of the read loop (1MB/s budget =>
	// the copy outlives the measurement).
	rctrl := cluster.NewController()
	for i := 0; i < 3; i++ {
		if err := rctrl.Register(cluster.NewMemoryNode(i, 8<<20)); err != nil {
			t.Fatal(err)
		}
	}
	members, err := rctrl.AllocReplicatedSlab(4<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	vn, _ := rctrl.Node(members[1].Node)
	vn.Fail()
	rctrl.HealthSweep()
	engine := cluster.NewRepairEngine(rctrl, &cluster.LocalRepairTransport{Ctrl: rctrl},
		cluster.RepairConfig{BytesPerSec: 1 << 20})
	repairDone := make(chan struct{})
	go func() {
		defer close(repairDone)
		engine.RepairOnce()
	}()

	during := fetchP99()
	<-repairDone
	if st := engine.Stats(); st.Flips != 1 {
		t.Fatalf("background repair did not complete: %+v", st)
	}

	if baseline <= 0 {
		t.Fatalf("degenerate baseline p99 %v", baseline)
	}
	if float64(during) >= float64(baseline)*1.10 {
		t.Fatalf("fetch p99 %v during repair vs %v baseline: degraded >= 10%%", during, baseline)
	}
}
