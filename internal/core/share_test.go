package core

import (
	"bytes"
	"testing"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Cross-runtime sharing over the sim rack (DESIGN.md §14): two Kona
// runtimes on one controller share a placement group under the lease
// directory — same virtual addresses, writer-publishes/reader-polls
// invalidation, lease-upgrade on reader writes, and fencing of a
// zombie writer's log ship.

// mustWrite/mustRead keep the version-step plumbing out of assertions.
func mustWrite(t *testing.T, k *Kona, now simDurT, addr mem.Addr, data []byte) simDurT {
	t.Helper()
	now, err := k.Write(now, addr, data)
	if err != nil {
		t.Fatalf("write at %v: %v", addr, err)
	}
	return now
}

func mustRead(t *testing.T, k *Kona, now simDurT, addr mem.Addr, n int) (simDurT, []byte) {
	t.Helper()
	buf := make([]byte, n)
	now, err := k.Read(now, addr, buf)
	if err != nil {
		t.Fatalf("read at %v: %v", addr, err)
	}
	return now, buf
}

func TestSharedRegionWriterPublishesReaderObserves(t *testing.T) {
	ctrl := newCluster(1)
	w := NewKona(smallConfig(), ctrl)
	r := NewKona(smallConfig(), ctrl)
	var wnow, rnow simDurT
	defer w.Close(wnow)
	defer r.Close(rnow)

	if w.RuntimeID() == r.RuntimeID() {
		t.Fatal("two runtimes drew the same runtime id")
	}

	addr, err := w.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	verA := bytes.Repeat([]byte{0xA1}, 64)
	wnow = mustWrite(t, w, wnow, addr, verA)
	group, err := w.ShareWriter(addr)
	if err != nil {
		t.Fatalf("ShareWriter: %v", err)
	}
	if wnow, err = w.Sync(wnow); err != nil {
		t.Fatalf("writer sync: %v", err)
	}

	// The reader maps the group at the writer's addresses: addr itself
	// must fall inside the attached range, and the flushed bytes show.
	base, size, err := r.AttachReader(group)
	if err != nil {
		t.Fatalf("AttachReader: %v", err)
	}
	if addr < base || addr >= base+mem.Addr(size) {
		t.Fatalf("shared addr %v outside attached range [%v,%v)", addr, base, base+mem.Addr(size))
	}
	var got []byte
	rnow, got = mustRead(t, r, rnow, addr, len(verA))
	if !bytes.Equal(got, verA) {
		t.Fatalf("reader saw %x, want published %x", got[:4], verA[:4])
	}

	// A second flush is invisible until the reader polls (pull-based
	// invalidation), then the shootdown makes the new bytes appear.
	verB := bytes.Repeat([]byte{0xB2}, 64)
	wnow = mustWrite(t, w, wnow, addr, verB)
	if wnow, err = w.Sync(wnow); err != nil {
		t.Fatalf("writer sync: %v", err)
	}
	rnow, got = mustRead(t, r, rnow, addr, len(verB))
	if !bytes.Equal(got, verA) {
		t.Fatalf("reader saw %x before invalidation, want cached %x", got[:4], verA[:4])
	}
	dropped, err := r.PollInvalidations()
	if err != nil {
		t.Fatalf("PollInvalidations: %v", err)
	}
	if dropped != 1 {
		t.Fatalf("PollInvalidations dropped %d groups, want 1", dropped)
	}
	rnow, got = mustRead(t, r, rnow, addr, len(verB))
	if !bytes.Equal(got, verB) {
		t.Fatalf("reader saw %x after invalidation, want %x", got[:4], verB[:4])
	}

	// Reader-mode writes fault with a lease conflict while the writer
	// lease is live...
	if _, err := r.Write(rnow, addr, verA); !cluster.IsLeaseConflictErr(err) {
		t.Fatalf("reader write: got %v, want lease conflict", err)
	}
	// ...and upgrade in place once it is released.
	if err := w.ReleaseWriter(group); err != nil {
		t.Fatal(err)
	}
	verC := bytes.Repeat([]byte{0xC3}, 64)
	rnow = mustWrite(t, r, rnow, addr, verC)
	if rnow, err = r.Sync(rnow); err != nil {
		t.Fatalf("upgraded reader sync: %v", err)
	}
	// The old writer now conflicts in turn.
	if _, err := w.ShareWriter(addr); !cluster.IsLeaseConflictErr(err) {
		t.Fatalf("re-share after handover: got %v, want lease conflict", err)
	}
	if err := r.ReleaseWriter(group); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReaderInlineRenewOnReadPath(t *testing.T) {
	ctrl := newCluster(1)
	// A tiny TTL forces the read-path deadline check (checkReaderLease)
	// to renew inline — no PollInvalidations call anywhere in this test.
	ctrl.SetLeaseTTL(50 * time.Millisecond)
	w := NewKona(smallConfig(), ctrl)
	r := NewKona(smallConfig(), ctrl)
	var wnow, rnow simDurT
	defer w.Close(wnow)
	defer r.Close(rnow)

	addr, err := w.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	verA := bytes.Repeat([]byte{0x11}, 64)
	wnow = mustWrite(t, w, wnow, addr, verA)
	group, err := w.ShareWriter(addr)
	if err != nil {
		t.Fatal(err)
	}
	if wnow, err = w.Sync(wnow); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.AttachReader(group); err != nil {
		t.Fatal(err)
	}
	var got []byte
	rnow, got = mustRead(t, r, rnow, addr, len(verA))
	if !bytes.Equal(got, verA) {
		t.Fatalf("reader saw %x, want %x", got[:4], verA[:4])
	}

	verB := bytes.Repeat([]byte{0x22}, 64)
	wnow = mustWrite(t, w, wnow, addr, verB)
	if wnow, err = w.Sync(wnow); err != nil {
		t.Fatal(err)
	}
	// Let the renew deadline (TTL/2) lapse; the next Read must renew,
	// observe the published version, and drop the stale pages itself.
	time.Sleep(80 * time.Millisecond)
	rnow, got = mustRead(t, r, rnow, addr, len(verB))
	if !bytes.Equal(got, verB) {
		t.Fatalf("dormant reader saw %x after deadline, want %x", got[:4], verB[:4])
	}
	if err := r.DetachReader(group); err != nil {
		t.Fatal(err)
	}
	if err := r.DetachReader(group); err == nil {
		t.Fatal("double detach succeeded")
	}
}

func TestSharedZombieWriterFencedOnFlush(t *testing.T) {
	ctrl := newCluster(1)
	ctrl.SetLeaseTTL(time.Second)
	now := time.Unix(2000, 0)
	ctrl.SetLeaseClock(func() time.Time { return now })
	w := NewKona(smallConfig(), ctrl)
	r := NewKona(smallConfig(), ctrl)
	var wnow, rnow simDurT
	defer r.Close(rnow)

	addr, err := w.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	wnow = mustWrite(t, w, wnow, addr, bytes.Repeat([]byte{0xAA}, 64))
	group, err := w.ShareWriter(addr)
	if err != nil {
		t.Fatal(err)
	}
	if wnow, err = w.Sync(wnow); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.AttachReader(group); err != nil {
		t.Fatal(err)
	}

	// The writer's lease lapses; the reader upgrades (takeover) and the
	// memnode fences flip to its runtime id.
	now = now.Add(2 * time.Second)
	rnow = mustWrite(t, r, rnow, addr, bytes.Repeat([]byte{0xBB}, 64))
	if rnow, err = r.Sync(rnow); err != nil {
		t.Fatalf("successor sync: %v", err)
	}

	// The zombie keeps writing locally — allowed — but its next log ship
	// is rejected at the memnode and the error surfaces out of Sync
	// instead of being retried forever.
	wnow = mustWrite(t, w, wnow, addr, bytes.Repeat([]byte{0xEE}, 64))
	if _, err = w.Sync(wnow); !cluster.IsLeaseFencedErr(err) {
		t.Fatalf("zombie sync: got %v, want lease-fenced", err)
	}
	if fs := w.FailureStats(); fs.LeaseFencedShips == 0 {
		t.Fatal("fenced ship not counted in FailureStats")
	}
}
