package core

import (
	"sync"

	"kona/internal/rdma"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// Poller is KLib's completion-polling component (§4.1): it "optimizes the
// RDMA communication with the controller and with the memory nodes, by
// polling for RDMA completions". Instead of each caller spinning on its
// own CQ, the Poller sweeps every registered queue pair on one thread,
// batching the per-poll cost and exposing outstanding-work accounting to
// the rest of the runtime.
//
// The mutex makes registration and sweeping safe from concurrent
// goroutines; a sweep holds it end to end, so the "one polling thread"
// discipline the paper describes is enforced rather than assumed.
type Poller struct {
	mu  sync.Mutex
	qps []*rdma.QP

	polls       uint64
	completions uint64
	emptyPolls  uint64
	// lastSweep is the virtual time of the most recent sweep.
	lastSweep simclock.Duration

	// Registry handles (nil no-ops when telemetry is disabled); updated
	// once per sweep, not per QP, to keep the sweep loop tight.
	mPolls, mCompletions, mEmptyPolls *telemetry.Counter
}

// pollSweepCost is the CPU cost of one CQ sweep across registered QPs.
const pollSweepCost = 150 // ns per QP polled

// NewPoller returns an empty poller; register QPs with Watch.
func NewPoller() *Poller { return &Poller{} }

// NewPollerWith is NewPoller reporting poll/completion counters into a
// telemetry registry (nil disables).
func NewPollerWith(reg *telemetry.Registry) *Poller {
	return &Poller{
		mPolls:       reg.Counter("core.poller.polls"),
		mCompletions: reg.Counter("core.poller.completions"),
		mEmptyPolls:  reg.Counter("core.poller.empty_polls"),
	}
}

// Watch adds a queue pair to the sweep set.
func (p *Poller) Watch(qp *rdma.QP) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, existing := range p.qps {
		if existing == qp {
			return
		}
	}
	p.qps = append(p.qps, qp)
}

// Sweep polls every watched CQ once at virtual time now, returning the
// drained completions and the time after the sweep.
func (p *Poller) Sweep(now simclock.Duration) ([]rdma.Completion, simclock.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []rdma.Completion
	for _, qp := range p.qps {
		p.polls++
		c := qp.PollCQ()
		if len(c) == 0 {
			p.emptyPolls++
		}
		p.completions += uint64(len(c))
		out = append(out, c...)
		now += pollSweepCost
	}
	p.lastSweep = now
	p.mPolls.Store(p.polls)
	p.mCompletions.Store(p.completions)
	p.mEmptyPolls.Store(p.emptyPolls)
	return out, now
}

// Stats returns poll/completion counters.
func (p *Poller) Stats() (polls, completions, emptyPolls uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls, p.completions, p.emptyPolls
}

// Watched returns the number of registered queue pairs.
func (p *Poller) Watched() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.qps)
}
