package core

import (
	"bytes"
	"math/rand"
	"testing"

	"kona/internal/mem"
)

// modelTest drives a runtime with random operations mirrored into a plain
// byte-slice reference model, checking that every read observes exactly
// what the model predicts — across cache hits, remote fetches, capacity
// evictions, log flushes and (for Kona) replica failover.
type modelRuntime interface {
	Malloc(uint64) (mem.Addr, error)
	Read(simDurT, mem.Addr, []byte) (simDurT, error)
	Write(simDurT, mem.Addr, []byte) (simDurT, error)
	Sync(simDurT) (simDurT, error)
}

func runModel(t *testing.T, rt modelRuntime, seed int64, steps int) {
	t.Helper()
	const regionPages = 128
	regionBytes := uint64(regionPages * mem.PageSize)
	base, err := rt.Malloc(regionBytes)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, regionBytes)
	rng := rand.New(rand.NewSource(seed))
	var now simDurT
	for step := 0; step < steps; step++ {
		off := uint64(rng.Int63n(int64(regionBytes - 512)))
		size := 1 + rng.Intn(511)
		switch rng.Intn(10) {
		case 0: // sync occasionally
			if now, err = rt.Sync(now); err != nil {
				t.Fatalf("step %d: sync: %v", step, err)
			}
		case 1, 2, 3, 4: // write
			data := make([]byte, size)
			rng.Read(data)
			if now, err = rt.Write(now, base+mem.Addr(off), data); err != nil {
				t.Fatalf("step %d: write: %v", step, err)
			}
			copy(model[off:], data)
		default: // read
			buf := make([]byte, size)
			if now, err = rt.Read(now, base+mem.Addr(off), buf); err != nil {
				t.Fatalf("step %d: read: %v", step, err)
			}
			if !bytes.Equal(buf, model[off:off+uint64(size)]) {
				t.Fatalf("step %d: read at +%d/%d diverged from model", step, off, size)
			}
		}
	}
	// Final sweep: every byte must match after a sync.
	if now, err = rt.Sync(now); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, mem.PageSize)
	for p := 0; p < regionPages; p++ {
		if now, err = rt.Read(now, base+mem.Addr(p*mem.PageSize), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, model[p*mem.PageSize:(p+1)*mem.PageSize]) {
			t.Fatalf("final sweep: page %d diverged", p)
		}
	}
}

func TestModelKonaTinyCache(t *testing.T) {
	// 8-page FMem against a 128-page region: constant eviction churn.
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	runModel(t, NewKona(cfg, newCluster(2)), 1, 4000)
}

func TestModelKonaPrefetch(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalCacheBytes = 16 * mem.PageSize
	cfg.Prefetch = true
	runModel(t, NewKona(cfg, newCluster(1)), 2, 4000)
}

func TestModelKonaVM(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	runModel(t, NewKonaVM(cfg, newCluster(1)), 3, 4000)
}

func TestModelKonaVMNoWP(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	rt := NewKonaVM(cfg, newCluster(1))
	rt.WriteProtect = false
	runModel(t, rt, 4, 2000)
}

func TestModelKonaReplicatedWithFailover(t *testing.T) {
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.Replicas = 2
	rt := NewKona(cfg, ctrl)

	// Phase 1: random ops, then drain.
	runModel(t, rt, 5, 1500)

	// Phase 2: fail one node and keep going on a fresh region — every
	// read must still match (the model harness reallocates its region).
	n, _ := ctrl.Node(1)
	n.Fail()
	runModel(t, rt, 6, 1000)
}

func TestModelKonaSubPageFetch(t *testing.T) {
	// Sub-page (512B) fetch granularity with heavy eviction churn: the
	// partial-fill and read-modify-write paths must stay data-correct.
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.FetchBytes = 512
	runModel(t, NewKona(cfg, newCluster(1)), 7, 4000)
}

func TestModelKonaLineFetch(t *testing.T) {
	// The extreme: cache-line (64B) fetch granularity.
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.FetchBytes = 64
	runModel(t, NewKona(cfg, newCluster(1)), 8, 2500)
}
