package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"kona/internal/mem"
)

func TestReplicationSurvivesPrimaryFailure(t *testing.T) {
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.Replicas = 2
	cfg.LocalCacheBytes = 16 * mem.PageSize
	k := NewKona(cfg, ctrl)

	addr, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEE}, 256)
	if _, err := k.Write(0, addr+4096, payload); err != nil {
		t.Fatal(err)
	}
	// Sync ships the dirty lines to BOTH replicas.
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}

	// Identify and fail the primary node.
	pls, err := k.rm.placementsFor(addr + 4096)
	if err != nil {
		t.Fatal(err)
	}
	primary, ok := ctrl.Node(pls[0].link.id())
	if !ok {
		t.Fatal("primary node not found")
	}
	primary.Fail()

	// Drop the cached copy and read again: served by the replica.
	k.fpga.FlushAll(0)
	if _, err := k.Sync(0); err == nil {
		// Sync may fail if the log had pending entries for the failed
		// primary; a fresh read is the real assertion below.
		_ = err
	}
	buf := make([]byte, 256)
	if _, err := k.Read(0, addr+4096, buf); err != nil {
		t.Fatalf("read after primary failure: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("replica served stale data")
	}
	if k.FailureStats().Failovers == 0 {
		t.Errorf("failover not recorded")
	}
}

func TestUnreplicatedFailureIsAnError(t *testing.T) {
	ctrl := newCluster(1)
	k := NewKona(smallConfig(), ctrl)
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := ctrl.Node(0)
	n.Fail()
	k.fpga.FlushAll(0)
	if _, err := k.Read(0, addr, make([]byte, 8)); err == nil {
		t.Fatalf("read from failed unreplicated node succeeded")
	}
}

func TestEvictionFansOutToAllReplicas(t *testing.T) {
	ctrl := newCluster(2)
	cfg := smallConfig()
	cfg.Replicas = 2
	k := NewKona(cfg, ctrl)
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x77}, 64)
	if _, err := k.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	// Both nodes' log receivers must have applied one entry.
	for id := 0; id < 2; id++ {
		n, _ := ctrl.Node(id)
		logs, lines := n.ReceiverStats()
		if logs == 0 || lines == 0 {
			t.Errorf("node %d received no log (replication broken)", id)
		}
	}
}

func TestMCEDetectionOnSlowNetwork(t *testing.T) {
	ctrl := newCluster(1)
	k := NewKona(smallConfig(), ctrl)
	addr, err := k.Malloc(16 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy fetch: no MCE.
	if _, err := k.ReadChecked(0, addr, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if k.FailureStats().MCEs != 0 {
		t.Fatalf("MCE on healthy fetch")
	}
	// Inject a 200µs network delay: the next cold fetch trips the MCE
	// detector but the runtime survives and returns the data.
	if err := k.InjectNetworkDelay(0, 200*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	done, err := k.ReadChecked(0, addr+8*mem.PageSize, buf)
	if err != nil {
		t.Fatalf("slow fetch failed hard: %v", err)
	}
	if k.FailureStats().MCEs != 1 {
		t.Errorf("MCEs = %d, want 1", k.FailureStats().MCEs)
	}
	// Clearing the delay stops new MCEs (issue the next fetch after the
	// backlog has drained).
	if err := k.InjectNetworkDelay(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadChecked(done, addr+9*mem.PageSize, buf); err != nil {
		t.Fatal(err)
	}
	if k.FailureStats().MCEs != 1 {
		t.Errorf("MCE count moved on healthy fetch: %d", k.FailureStats().MCEs)
	}
}

func TestFig11cShapeCopyDominates(t *testing.T) {
	// The eviction-path breakdown must match Fig 11c's shape: Copy is the
	// largest slice; RDMA write and Bitmap are meaningful minorities; Ack
	// wait is small.
	cfg := smallConfig()
	cfg.LocalCacheBytes = 32 * mem.PageSize
	cfg.FlushThreshold = 32 << 10
	k := NewKona(cfg, newCluster(1))
	addr, err := k.Malloc(512 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	now := simDur(0)
	buf := make([]byte, 8*64) // 8 contiguous dirty lines per page
	for p := 0; p < 512; p++ {
		now, err = k.Write(now, addr+mem.Addr(p*mem.PageSize), buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Sync(now); err != nil {
		t.Fatal(err)
	}
	b := k.EvictBreakdown()
	total := b.Total()
	if total <= 0 {
		t.Fatal("empty breakdown")
	}
	frac := func(d simDurT) float64 { return float64(d) / float64(total) }
	if frac(b.Copy) < 0.35 {
		t.Errorf("Copy fraction %.2f, want dominant (Fig 11c)", frac(b.Copy))
	}
	if frac(b.RDMAWrite) < 0.05 || frac(b.RDMAWrite) > 0.45 {
		t.Errorf("RDMA fraction %.2f outside Fig 11c band", frac(b.RDMAWrite))
	}
	if frac(b.AckWait) > 0.25 {
		t.Errorf("Ack wait fraction %.2f should be small", frac(b.AckWait))
	}
	t.Logf("breakdown: bitmap %.2f copy %.2f rdma %.2f ack %.2f",
		frac(b.Bitmap), frac(b.Copy), frac(b.RDMAWrite), frac(b.AckWait))
}

func TestOutageRecoveryRetry(t *testing.T) {
	// §4.5 option (ii): a failed fetch surfaces a recoverable condition;
	// once the outage resolves, the same access succeeds.
	ctrl := newCluster(1)
	k := NewKona(smallConfig(), ctrl)
	addr, err := k.Malloc(16 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives the outage")
	if _, err := k.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	k.fpga.FlushAll(0)
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}

	node, _ := ctrl.Node(0)
	node.Fail()
	buf := make([]byte, len(payload))
	_, err = k.Read(0, addr, buf)
	if !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("outage error = %v, want ErrRemoteUnavailable", err)
	}

	node.Recover()
	if _, err := k.Read(0, addr, buf); err != nil {
		t.Fatalf("retry after recovery failed: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("data lost across outage: %q", buf)
	}
}
