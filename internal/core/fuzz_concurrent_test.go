package core

import (
	"bytes"
	"sync"
	"testing"

	"kona/internal/mem"
)

// FuzzConcurrentOps decodes the fuzz input into two operation schedules
// and replays them on concurrent goroutines against one tiny-cache Kona
// runtime. Each worker owns a disjoint 8-page region mirrored exactly, so
// every read is fully checkable no matter how the two schedules
// interleave; the fuzzer's job is to find an op interleaving (reads,
// writes, syncs, eviction churn) that tears the shared cache, evictor or
// transport state underneath them. Run it with -race for full effect.
//
// Encoding: the input splits in half, one schedule per worker; each op is
// two bytes [kind, arg]:
//
//	kind%8 == 0..3  write  — arg picks page+offset, payload derived
//	                 from (worker, op index)
//	kind%8 == 4,5   read   — arg picks page+offset, checked vs mirror
//	kind%8 == 6     sync
//	kind%8 == 7     evict-kick — full-page read sweep at arg's page,
//	                 forcing churn through the 8-page FMem
func FuzzConcurrentOps(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 1, 4, 1, 6, 0, 7, 3, 0, 200, 4, 200})
	f.Add(bytes.Repeat([]byte{0, 7, 4, 7, 7, 1}, 20))
	f.Add([]byte{6, 0, 6, 0, 7, 0, 7, 255, 3, 128, 5, 128, 6, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			workers = 2
			pages   = 8
		)
		if len(data) < 4 {
			return
		}
		if len(data) > 2048 {
			data = data[:2048] // bound runtime per input
		}
		cfg := concurrentConfig(4)
		cfg.LocalCacheBytes = 8 * mem.PageSize
		k := NewKona(cfg, newCluster(2))
		regionBytes := uint64(pages * mem.PageSize)

		regions := make([]mem.Addr, workers)
		for w := range regions {
			addr, err := k.Malloc(regionBytes)
			if err != nil {
				t.Fatal(err)
			}
			regions[w] = addr
		}
		half := len(data) / 2
		schedules := [workers][]byte{data[:half], data[half:]}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				mirror := make([]byte, regionBytes)
				sched := schedules[w]
				var now simDurT
				var err error
				buf := make([]byte, 128)
				for i := 0; i+1 < len(sched); i += 2 {
					kind, arg := sched[i], uint64(sched[i+1])
					page := arg % pages
					off := page*mem.PageSize + (arg*37)%(mem.PageSize-128)
					switch kind % 8 {
					case 0, 1, 2, 3: // write
						n := 1 + int(arg)%128
						fill := byte(w*83 + i*13 + 1)
						for j := 0; j < n; j++ {
							buf[j] = fill
						}
						if now, err = k.Write(now, regions[w]+mem.Addr(off), buf[:n]); err != nil {
							t.Errorf("worker %d op %d: write: %v", w, i, err)
							return
						}
						copy(mirror[off:], buf[:n])
					case 4, 5: // read
						n := 1 + int(arg)%128
						if now, err = k.Read(now, regions[w]+mem.Addr(off), buf[:n]); err != nil {
							t.Errorf("worker %d op %d: read: %v", w, i, err)
							return
						}
						if !bytes.Equal(buf[:n], mirror[off:off+uint64(n)]) {
							t.Errorf("worker %d op %d: read at +%d/%d diverged from mirror", w, i, off, n)
							return
						}
					case 6: // sync
						if now, err = k.Sync(now); err != nil {
							t.Errorf("worker %d op %d: sync: %v", w, i, err)
							return
						}
					case 7: // evict-kick: sweep own region once, churning FMem
						page2 := make([]byte, mem.PageSize)
						for p := uint64(0); p < pages; p++ {
							if now, err = k.Read(now, regions[w]+mem.Addr(p*mem.PageSize), page2); err != nil {
								t.Errorf("worker %d op %d: sweep read: %v", w, i, err)
								return
							}
							if !bytes.Equal(page2, mirror[p*mem.PageSize:(p+1)*mem.PageSize]) {
								t.Errorf("worker %d op %d: sweep page %d diverged", w, i, p)
								return
							}
						}
					}
				}
				// Drain and verify the whole region one last time.
				if now, err = k.Sync(now); err != nil {
					t.Errorf("worker %d: final sync: %v", w, err)
					return
				}
				page2 := make([]byte, mem.PageSize)
				for p := uint64(0); p < pages; p++ {
					if now, err = k.Read(now, regions[w]+mem.Addr(p*mem.PageSize), page2); err != nil {
						t.Errorf("worker %d: final read: %v", w, err)
						return
					}
					if !bytes.Equal(page2, mirror[p*mem.PageSize:(p+1)*mem.PageSize]) {
						t.Errorf("worker %d: final page %d diverged", w, p)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	})
}
