package core

import "kona/internal/simclock"

// simDur and simDurT shorten simclock.Duration in tests.
type simDurT = simclock.Duration

func simDur(n int64) simclock.Duration { return simclock.Duration(n) }
