package core

import (
	"fmt"

	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/slab"
)

// AllocLib is KLib's allocation-interposition layer (§4.1): it stands in
// for the interposed malloc/mmap of a real process. The §4.3 constraint it
// implements: the FPGA can only track VFMem, so thread stacks, globals and
// other small private allocations live in CPU-attached CMem, while bulk
// data allocations are placed in disaggregated memory. The Threshold knob
// is that placement policy.
//
// Reads and writes dispatch on the address: CMem accesses cost a local
// DRAM access and never touch the FPGA; VFMem accesses go through the
// runtime.
type AllocLib struct {
	k *Kona

	// Threshold routes allocations: strictly smaller ones go to CMem.
	Threshold uint64

	cmem  *slab.Allocator
	pages map[uint64][]byte // CMem backing store

	cmemAllocs, remoteAllocs uint64
}

// cmemBase keeps CMem addresses disjoint from VFMem (which starts at
// cluster.VFMemBase = 1<<40) and away from address zero.
const cmemBase mem.Addr = 1 << 20

// cmemCapacity is the modeled local heap size.
const cmemCapacity = 64 << 20

// DefaultAllocThreshold routes allocations of a page or more to
// disaggregated memory.
const DefaultAllocThreshold = mem.PageSize

// NewAllocLib wraps a runtime with the interposition layer.
func NewAllocLib(k *Kona, threshold uint64) *AllocLib {
	if threshold == 0 {
		threshold = DefaultAllocThreshold
	}
	a := &AllocLib{
		k:         k,
		Threshold: threshold,
		cmem:      slab.NewAllocator(),
		pages:     make(map[uint64][]byte),
	}
	// The CMem heap is a local grant, not a rack slab.
	if err := a.cmem.Grant(slab.Slab{ID: 1, Base: cmemBase, Size: cmemCapacity}); err != nil {
		panic(err) // static geometry cannot collide
	}
	return a
}

// isCMem reports whether addr belongs to the local heap.
func (a *AllocLib) isCMem(addr mem.Addr) bool {
	return addr >= cmemBase && addr < cmemBase+cmemCapacity
}

// Malloc places an allocation by size: small and private in CMem, bulk
// data in disaggregated memory.
func (a *AllocLib) Malloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("core: zero-size malloc")
	}
	if size < a.Threshold {
		addr, err := a.cmem.Alloc(size)
		if err != nil {
			return 0, fmt.Errorf("core: cmem: %w", err)
		}
		a.cmemAllocs++
		return addr, nil
	}
	a.remoteAllocs++
	return a.k.Malloc(size)
}

// Mmap places a mapping; mappings are always bulk, hence disaggregated.
func (a *AllocLib) Mmap(size uint64) (mem.Addr, error) {
	a.remoteAllocs++
	return a.k.Malloc(size)
}

// Free releases an allocation from whichever heap owns it.
func (a *AllocLib) Free(addr mem.Addr) error {
	if a.isCMem(addr) {
		return a.cmem.Free(addr)
	}
	return a.k.Free(addr)
}

// Read dispatches a load on the address space it touches.
func (a *AllocLib) Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	if !a.isCMem(addr) {
		return a.k.Read(now, addr, buf)
	}
	a.cmemCopy(addr, buf, false)
	return now + simclock.DRAMAccess, nil
}

// Write dispatches a store on the address space it touches.
func (a *AllocLib) Write(now simclock.Duration, addr mem.Addr, data []byte) (simclock.Duration, error) {
	if !a.isCMem(addr) {
		return a.k.Write(now, addr, data)
	}
	a.cmemCopy(addr, data, true)
	return now + simclock.DRAMAccess, nil
}

// cmemCopy moves bytes to/from the lazily materialized CMem pages.
func (a *AllocLib) cmemCopy(addr mem.Addr, buf []byte, write bool) {
	off := 0
	for off < len(buf) {
		p := (addr + mem.Addr(off)).Page()
		pg, ok := a.pages[p]
		if !ok {
			pg = make([]byte, mem.PageSize)
			a.pages[p] = pg
		}
		pageOff := (addr + mem.Addr(off)).PageOffset()
		if write {
			off += copy(pg[pageOff:], buf[off:])
		} else {
			off += copy(buf[off:], pg[pageOff:])
		}
	}
}

// Stats returns the placement counts: how many allocations stayed local vs
// went to disaggregated memory.
func (a *AllocLib) Stats() (cmemAllocs, remoteAllocs uint64) {
	return a.cmemAllocs, a.remoteAllocs
}
