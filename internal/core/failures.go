package core

import (
	"errors"
	"time"

	"kona/internal/mem"
	"kona/internal/simclock"
)

// ErrRemoteUnavailable reports that every replica of the address's slab is
// unreachable. Per §4.5's recovery path the access itself is recoverable:
// the runtime surfaces the condition (instead of the machine check a real
// coherence timeout would raise), the application or an operator resolves
// the outage, and the access can simply be retried — the FPGA state is
// unchanged.
var ErrRemoteUnavailable = errors.New("core: remote memory unavailable (all replicas unreachable)")

// Failure handling (§4.5).
//
// 1. Application/compute-host failures need no runtime support beyond
//    today's monolithic-server model.
// 2. Network failures: the coherence protocol was not designed for long
//    delays — a stalled remote fetch eventually trips a machine check
//    exception. The runtime detects fetches that exceed MCETimeout,
//    records them, and (per the paper's option (i), Intel MCA) recovers by
//    retrying/failing over rather than crashing the host.
// 3. Memory-node failures: with Replicas > 1 the Resource Manager places
//    every slab on several nodes, eviction fans the cache-line log out to
//    all replicas, and Translate fails over to a live replica for fetches.

// MCETimeout is the modeled coherence-protocol patience: a VFMem fill
// outstanding longer than this would trip a machine check on the real
// hardware.
const MCETimeout = 100 * time.Microsecond

// FailureStats counts failure-path events.
type FailureStats struct {
	// MCEs is the number of fetches whose latency exceeded MCETimeout
	// (detected and survived via the machine-check architecture path).
	MCEs uint64
	// Failovers is the number of reads served by a non-primary replica.
	Failovers uint64
	// ShipFailureReports is the number of replica outages the evictor
	// reported to the controller (degraded-slab detection feed, §10).
	ShipFailureReports uint64
	// PlacementRefreshes counts placement-table refreshes that observed a
	// change (repair flips picked up by this runtime).
	PlacementRefreshes uint64
	// RemappedEntries counts retained eviction-log entries rebased onto a
	// repaired replica.
	RemappedEntries uint64
	// SuspectMembers is the number of repaired replicas currently fenced
	// from reads: their catch-up drain (retained entries re-shipped onto
	// the new copy) has not completed. Zero in a settled rack.
	SuspectMembers int
	// SealedRetains counts ships rejected by an extent sealed for
	// migration, with the entries retained until the flip was picked up
	// (DESIGN.md §13).
	SealedRetains uint64
	// BackpressureStalls counts writes delayed by admission control when
	// the ship-pending backlog exceeded Config.BackpressureBytes.
	BackpressureStalls uint64
	// LeaseFencedShips counts eviction-log ships rejected whole by a
	// memnode lease fence: this runtime's writer lease was taken over and
	// a successor's fence rejected the zombie batch (DESIGN.md §14).
	LeaseFencedShips uint64
}

// ReadChecked is Read plus MCE detection: fetch latencies beyond
// MCETimeout are recorded (and survived), modeling the §4.5 recovery path
// instead of a host crash.
func (k *Kona) ReadChecked(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	resident := k.fpga.Resident(addr)
	done, err := k.Read(now, addr, buf)
	if err != nil {
		return done, err
	}
	if !resident && done-now > MCETimeout {
		k.failures.MCEs++
	}
	return done, nil
}

// FailureStats returns the failure-path counters. Failovers are detected
// by the Resource Manager when Translate skips a dead primary.
func (k *Kona) FailureStats() FailureStats {
	k.rm.mu.Lock()
	k.failures.Failovers = k.rm.failovers
	k.failures.SuspectMembers = len(k.rm.suspect)
	k.rm.mu.Unlock()
	k.failures.ShipFailureReports = k.evict.shipReports.Load()
	k.failures.PlacementRefreshes = k.refreshes.Load()
	k.failures.RemappedEntries = k.evict.remapped.Load()
	k.failures.SealedRetains = k.evict.sealedRetains.Load()
	k.failures.BackpressureStalls = k.backpressureStalls.Load()
	k.failures.LeaseFencedShips = k.evict.leaseFenced.Load()
	return k.failures
}

// InjectNetworkDelay adds d to every operation toward the given memory
// node (failure injection; 0 clears). Only the simulated transport
// supports it.
func (k *Kona) InjectNetworkDelay(nodeID int, d simclock.Duration) error {
	l, err := k.rm.rack.link(nodeID, 0)
	if err != nil {
		return err
	}
	return l.injectDelay(d)
}
