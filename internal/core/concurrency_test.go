package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"kona/internal/mem"
)

// This file is the concurrency test harness for the sharded data path:
// K application goroutines drive one runtime through the same
// read/write/sync surface the single-threaded model test uses, with two
// kinds of checkable state:
//
//   - a private region per worker, mirrored exactly (disjoint pages, so
//     the mirror is authoritative byte for byte), and
//   - a shared region every worker touches, laid out as versioned
//     records so a reader can check atomicity (no torn records) and
//     monotonicity (versions it observes for a given writer never go
//     backwards) without knowing the global interleaving.
//
// Run with -race; the schedule is randomized per seed, and `make stress`
// rotates the seed via KONA_STRESS_SEED.

const (
	ccRecordSize   = 256 // one shared-region record; never crosses a page
	ccSharedPages  = 16  // pages every worker reads and writes
	ccPrivatePages = 24  // pages owned by exactly one worker
)

// stressSeed returns the schedule seed: KONA_STRESS_SEED when set (the
// `make stress` rotation), otherwise the fixed fallback.
func stressSeed(fallback int64) int64 {
	if s := os.Getenv("KONA_STRESS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return fallback
}

// ccFill derives the fill byte of a record from its header; a reader
// recomputes it to detect records stitched together from two writes.
func ccFill(worker, version uint64) byte {
	return byte(worker*131 + version*29 + 7)
}

// ccPutRecord assembles a record: [8B worker][8B version][fill bytes].
func ccPutRecord(buf []byte, worker, version uint64) {
	binary.LittleEndian.PutUint64(buf[0:8], worker)
	binary.LittleEndian.PutUint64(buf[8:16], version)
	fill := ccFill(worker, version)
	for i := 16; i < ccRecordSize; i++ {
		buf[i] = fill
	}
}

// ccCheckRecord validates one record image. A still-zero record (never
// written) is legal. Returns the header and whether the record was
// non-zero; reports torn or corrupt records on t.
func ccCheckRecord(t *testing.T, rec []byte, where string) (worker, version uint64, written bool) {
	t.Helper()
	worker = binary.LittleEndian.Uint64(rec[0:8])
	version = binary.LittleEndian.Uint64(rec[8:16])
	if worker == 0 && version == 0 {
		for i, b := range rec {
			if b != 0 {
				t.Errorf("%s: zero header but byte %d = %#x (torn record)", where, i, b)
				return 0, 0, false
			}
		}
		return 0, 0, false
	}
	want := ccFill(worker, version)
	for i := 16; i < ccRecordSize; i++ {
		if rec[i] != want {
			t.Errorf("%s: record (w=%d v=%d) fill byte %d = %#x, want %#x (torn record)",
				where, worker, version, i, rec[i], want)
			return worker, version, true
		}
	}
	return worker, version, true
}

// runModelConcurrent drives rt with workers goroutines for steps
// operations each. Layout, in allocation order:
//
//	[shared: ccSharedPages] [worker 0 private] [worker 1 private] ...
//
// Within each shared page, worker w exclusively writes the record slot
// at offset w*ccRecordSize (so concurrent writers dirty disjoint lines
// of the same page), and every worker also writes the final slot in the
// page (so readers check per-page write atomicity under real
// contention).
func runModelConcurrent(t *testing.T, rt modelRuntime, seed int64, workers, steps int) {
	t.Helper()
	if (workers+1)*ccRecordSize > int(mem.PageSize) {
		t.Fatalf("%d workers do not fit a page", workers)
	}
	sharedBytes := uint64(ccSharedPages * mem.PageSize)
	privBytes := uint64(ccPrivatePages * mem.PageSize)
	shared, err := rt.Malloc(sharedBytes)
	if err != nil {
		t.Fatal(err)
	}
	priv := make([]mem.Addr, workers)
	for w := range priv {
		if priv[w], err = rt.Malloc(privBytes); err != nil {
			t.Fatal(err)
		}
	}
	contendedOff := uint64(mem.PageSize) - ccRecordSize

	// mirrors[w] is written only by worker w, read by the main goroutine
	// after the join — disjoint indices, no lock needed.
	mirrors := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			mirror := make([]byte, privBytes)
			mirrors[w] = mirror
			var err error
			// version[p] is this worker's write version on shared page p.
			version := make([]uint64, ccSharedPages)
			// seen[p][u] is the highest version this worker has observed
			// for writer u's slot on page p; observations must be
			// monotonic because page accesses serialize per shard.
			seen := make([][]uint64, ccSharedPages)
			for p := range seen {
				seen[p] = make([]uint64, workers)
			}
			var now simDurT
			rec := make([]byte, ccRecordSize)
			page := make([]byte, mem.PageSize)
			for step := 0; step < steps; step++ {
				switch r := rng.Intn(20); {
				case r < 2: // sync (concurrent with everything else)
					if now, err = rt.Sync(now); err != nil {
						t.Errorf("worker %d step %d: sync: %v", w, step, err)
						return
					}
				case r < 8: // private write, mirrored exactly
					off := uint64(rng.Int63n(int64(privBytes - 512)))
					n := 1 + rng.Intn(511)
					data := make([]byte, n)
					rng.Read(data)
					if now, err = rt.Write(now, priv[w]+mem.Addr(off), data); err != nil {
						t.Errorf("worker %d step %d: write: %v", w, step, err)
						return
					}
					copy(mirror[off:], data)
				case r < 12: // private read against the mirror
					off := uint64(rng.Int63n(int64(privBytes - 512)))
					n := 1 + rng.Intn(511)
					buf := make([]byte, n)
					if now, err = rt.Read(now, priv[w]+mem.Addr(off), buf); err != nil {
						t.Errorf("worker %d step %d: read: %v", w, step, err)
						return
					}
					if !bytes.Equal(buf, mirror[off:off+uint64(n)]) {
						t.Errorf("worker %d step %d: private read at +%d/%d diverged from mirror", w, step, off, n)
						return
					}
				case r < 16: // shared write: own slot, occasionally the contended slot
					p := rng.Intn(ccSharedPages)
					version[p]++
					ccPutRecord(rec, uint64(w)+1, version[p])
					slot := uint64(w) * ccRecordSize
					if rng.Intn(4) == 0 {
						slot = contendedOff
					}
					addr := shared + mem.Addr(uint64(p)*mem.PageSize+slot)
					if now, err = rt.Write(now, addr, rec); err != nil {
						t.Errorf("worker %d step %d: shared write: %v", w, step, err)
						return
					}
				default: // shared read: validate every record on one page
					p := rng.Intn(ccSharedPages)
					if now, err = rt.Read(now, shared+mem.Addr(uint64(p)*mem.PageSize), page); err != nil {
						t.Errorf("worker %d step %d: shared read: %v", w, step, err)
						return
					}
					for u := 0; u < workers; u++ {
						slot := page[u*ccRecordSize : (u+1)*ccRecordSize]
						writer, ver, ok := ccCheckRecord(t, slot, "shared slot")
						if !ok {
							continue
						}
						if writer != uint64(u)+1 {
							t.Errorf("worker %d: page %d slot %d holds writer %d's record", w, p, u, writer)
							return
						}
						if ver < seen[p][u] {
							t.Errorf("worker %d: page %d slot %d version went backwards (%d after %d)", w, p, u, ver, seen[p][u])
							return
						}
						seen[p][u] = ver
					}
					// The contended slot may hold any worker's record,
					// but never a torn one.
					ccCheckRecord(t, page[contendedOff:], "contended slot")
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Quiesce, then sweep each private region against its mirror from
	// the main goroutine — catches anything eviction wrote back wrong
	// once all workers are done.
	var now simDurT
	if now, err = rt.Sync(now); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, mem.PageSize)
	for w := 0; w < workers; w++ {
		for p := 0; p < ccPrivatePages; p++ {
			if now, err = rt.Read(now, priv[w]+mem.Addr(p*mem.PageSize), buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, mirrors[w][p*mem.PageSize:(p+1)*mem.PageSize]) {
				t.Fatalf("final sweep: worker %d page %d diverged from mirror", w, p)
			}
		}
	}
}

func concurrentConfig(shards int) Config {
	cfg := smallConfig()
	cfg.Shards = shards
	return cfg
}

func TestModelConcurrentKona(t *testing.T) {
	cfg := concurrentConfig(8)
	runModelConcurrent(t, NewKona(cfg, newCluster(2)), stressSeed(11), 4, 1500)
}

func TestModelConcurrentKonaTinyCache(t *testing.T) {
	// 8-page FMem against many concurrent working sets: constant
	// eviction churn racing demand fills.
	cfg := concurrentConfig(4)
	cfg.LocalCacheBytes = 8 * mem.PageSize
	runModelConcurrent(t, NewKona(cfg, newCluster(2)), stressSeed(12), 4, 1200)
}

func TestModelConcurrentKonaSerialShard(t *testing.T) {
	// Shards=1 degenerates to a single global stripe; concurrency must
	// still be safe (just unscalable).
	cfg := concurrentConfig(1)
	cfg.LocalCacheBytes = 16 * mem.PageSize
	runModelConcurrent(t, NewKona(cfg, newCluster(1)), stressSeed(13), 4, 800)
}

func TestModelConcurrentKonaVM(t *testing.T) {
	cfg := concurrentConfig(0)
	cfg.LocalCacheBytes = 8 * mem.PageSize
	runModelConcurrent(t, NewKonaVM(cfg, newCluster(1)), stressSeed(14), 4, 800)
}

func TestModelConcurrentKonaManyWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("8-worker schedule skipped in -short")
	}
	cfg := concurrentConfig(8)
	cfg.LocalCacheBytes = 32 * mem.PageSize
	runModelConcurrent(t, NewKona(cfg, newCluster(3)), stressSeed(15), 8, 1000)
}

// TestSingleFlightFetch pins miss suppression: N goroutines missing on
// the same non-resident page must issue exactly one remote read — the
// winner fills under the shard lock, the losers land as FMem hits.
func TestSingleFlightFetch(t *testing.T) {
	const readers = 8
	cfg := concurrentConfig(8)
	k := NewKona(cfg, newCluster(1))
	addr, err := k.Malloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			<-start
			if _, err := k.Read(0, addr, buf); err != nil {
				t.Errorf("read: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := k.FPGAStats()
	if st.RemoteFetches != 1 {
		t.Fatalf("RemoteFetches = %d, want 1 (single-flight violated)", st.RemoteFetches)
	}
	if st.FMemHits != readers-1 {
		t.Fatalf("FMemHits = %d, want %d (losers must resolve as hits)", st.FMemHits, readers-1)
	}
}

// TestEvictRetryAfterFailedShip pins the retained-entry protocol: a ship
// that fails must keep its log entries (and their byte accounting) so the
// next flush retries them, and after the node recovers a Sync must land
// every dirty byte.
func TestEvictRetryAfterFailedShip(t *testing.T) {
	ctrl := newCluster(1)
	cfg := concurrentConfig(4)
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKona(cfg, ctrl)

	const pages = 24
	addr, err := k.Malloc(pages * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]byte, pages*mem.PageSize)
	rng := rand.New(rand.NewSource(42))
	rng.Read(mirror)
	var now simDurT
	for p := 0; p < pages; p++ {
		if now, err = k.Write(now, addr+mem.Addr(p*mem.PageSize), mirror[p*mem.PageSize:(p+1)*mem.PageSize]); err != nil {
			t.Fatal(err)
		}
	}

	n, _ := ctrl.Node(0)
	n.Fail()
	if _, err := k.Sync(now); err == nil {
		t.Fatal("Sync against a failed node returned nil error")
	}
	n.Recover()
	if now, err = k.Sync(now); err != nil {
		t.Fatalf("Sync after recovery: %v", err)
	}

	// Every byte must be durable remotely: read back through the cache
	// (the tiny FMem forces most pages to refetch from the node).
	buf := make([]byte, mem.PageSize)
	for p := 0; p < pages; p++ {
		if now, err = k.Read(now, addr+mem.Addr(p*mem.PageSize), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, mirror[p*mem.PageSize:(p+1)*mem.PageSize]) {
			t.Fatalf("page %d diverged after failed-ship retry", p)
		}
	}
}

// TestConcurrentStatsAndFlush races the observer surface (Stats,
// Breakdown, Occupancy, DirtyLines) against a mutating workload; the
// race detector is the assertion.
func TestConcurrentStatsAndFlush(t *testing.T) {
	cfg := concurrentConfig(4)
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKona(cfg, newCluster(2))
	addr, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = k.FPGAStats()
			_ = k.EvictStats()
			_ = k.EvictBreakdown()
			_ = k.DirtyLines(addr)
		}
	}()
	var now simDurT
	buf := make([]byte, 512)
	for i := 0; i < 3000; i++ {
		a := addr + mem.Addr((i%64)*int(mem.PageSize))
		if now, err = k.Write(now, a, buf); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			if now, err = k.Sync(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestModelConcurrentKonaTCP runs the concurrent model over real TCP
// daemons: the wire protocol's pooled buffers and the transport's retry
// machinery join the interleaving. This is the schedule that caught the
// kv soak corruption — the local-cluster variants above cannot see races
// confined to the TCP data path.
func TestModelConcurrentKonaTCP(t *testing.T) {
	addr, _ := tcpChaosRig(t, 2, nil)
	cfg := concurrentConfig(8)
	cfg.LocalCacheBytes = 8 * mem.PageSize
	runModelConcurrent(t, NewKonaTCPWith(cfg, addr, chaosTr()), stressSeed(15), 4, 1200)
}
