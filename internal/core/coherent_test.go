package core

import (
	"bytes"
	"math/rand"
	"testing"

	"kona/internal/mem"
)

func TestCoherentDomainEndToEnd(t *testing.T) {
	ctrl := newCluster(1)
	k := NewKona(smallConfig(), ctrl)
	addr, err := k.Malloc(16 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d := k.NewCoherentDomain(2, 256, 4)

	// CPU 0 stores through its cache; the store misses, triggering an RFO
	// that the FPGA serves (remote fetch), and the data lives Modified in
	// the CPU cache.
	payload := []byte("through the whole stack")
	if err := d.Store(0, addr+100, payload); err != nil {
		t.Fatal(err)
	}
	if k.FPGAStats().RemoteFetches == 0 {
		t.Fatalf("store did not reach the FPGA")
	}
	// CPU 1 loads the same bytes: the protocol pulls the modified lines
	// from CPU 0 (and writes them back to the FPGA, setting dirty bits).
	buf := make([]byte, len(payload))
	if err := d.Load(1, addr+100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("cross-CPU read = %q", buf)
	}
	if got := k.DirtyLines(addr); !got.Any() {
		t.Errorf("writeback did not set dirty bits (tracking broken)")
	}
	if msg := d.System().CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}

	// Drain the caches and sync: remote memory now holds the data.
	d.Drain(mem.Range{Start: addr, Len: 16 * mem.PageSize})
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	node, _ := ctrl.Node(0)
	pls, err := k.rm.placementsFor(addr + 100)
	if err != nil {
		t.Fatal(err)
	}
	off := pls[0].remoteOff
	got := node.PoolBytes()[off : off+uint64(len(payload))]
	if !bytes.Equal(got, payload) {
		t.Fatalf("remote pool stale after coherent drain+sync: %q", got)
	}
}

// Model test: random loads/stores from multiple CPUs through the coherent
// stack always observe the reference model, even with tiny CPU caches
// (heavy capacity writeback traffic) and a tiny FMem (heavy eviction).
func TestCoherentDomainModel(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	ctrl := newCluster(1)
	k := NewKona(cfg, ctrl)
	const regionPages = 32
	addr, err := k.Malloc(regionPages * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	d := k.NewCoherentDomain(4, 64, 4) // 4 CPUs, 64-line caches
	model := make([]byte, regionPages*mem.PageSize)
	rng := rand.New(rand.NewSource(12))
	for step := 0; step < 6000; step++ {
		cpu := rng.Intn(4)
		off := rng.Intn(len(model) - 64)
		n := 1 + rng.Intn(63)
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if err := d.Store(cpu, addr+mem.Addr(off), data); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			copy(model[off:], data)
		} else {
			buf := make([]byte, n)
			if err := d.Load(cpu, addr+mem.Addr(off), buf); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !bytes.Equal(buf, model[off:off+n]) {
				t.Fatalf("step %d: cpu %d read diverged at +%d", step, cpu, off)
			}
		}
		if step%1000 == 0 {
			if msg := d.System().CheckInvariants(); msg != "" {
				t.Fatalf("step %d: %s", step, msg)
			}
		}
	}
	// Full drain: every byte must be durable remotely after sync.
	d.Drain(mem.Range{Start: addr, Len: regionPages * mem.PageSize})
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, mem.PageSize)
	for p := 0; p < regionPages; p++ {
		if _, err := k.Read(0, addr+mem.Addr(p*mem.PageSize), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, model[p*mem.PageSize:(p+1)*mem.PageSize]) {
			t.Fatalf("page %d diverged after drain", p)
		}
	}
}
