// Package core implements KLib, the Kona runtime (§4): the Resource
// Manager that pre-allocates disaggregated memory in slabs, the Caching
// Handler (the FPGA model's line-fill path), the Dirty Data Tracker (the
// FPGA's writeback-driven bitmaps), the Eviction Handler (the cache-line
// log), and the Poller. It also implements Kona-VM, the paper's own
// virtual-memory baseline, sharing the same caching and eviction policy so
// comparisons isolate the tracking mechanism (§6.1).
package core

import (
	"runtime"
	"time"

	"kona/internal/simclock"
	"kona/internal/slab"
	"kona/internal/telemetry"
)

// Config sizes a Kona runtime instance.
type Config struct {
	// LocalCacheBytes is the compute node's DRAM cache capacity: FMem for
	// Kona, the CMem page cache for Kona-VM.
	LocalCacheBytes uint64
	// SlabSize is the coarse allocation unit requested from the
	// controller.
	SlabSize uint64
	// Replicas is the number of memory-node copies kept per slab (§4.5);
	// 1 means no replication.
	Replicas int
	// LogBytes is the eviction ring-buffer capacity. Smaller logs flush
	// more often (more RDMA verbs), larger logs delay remote visibility.
	LogBytes int
	// FlushThreshold triggers a log flush when the buffered payload
	// exceeds this many bytes. Defaults to LogBytes/4.
	FlushThreshold int
	// EvictFanout bounds how many destination nodes the Eviction Handler
	// ships to concurrently when the transport pipelines (real TCP).
	// Defaults to 4; 1 forces the serial ship path. The simulated fabric
	// always ships serially regardless, to keep virtual time
	// reproducible.
	EvictFanout int
	// Prefetch enables the FPGA's sequential next-page prefetcher.
	Prefetch bool
	// PrefetchDepth caps the adaptive stride prefetcher's window; 0 or 1
	// keeps the classic depth-1 next-page behavior (see fpga.Config).
	PrefetchDepth int
	// StreamBypass inserts long sequential streams at LRU position in
	// FMem, protecting the reused working set (§4.4's caching decision).
	StreamBypass bool
	// FetchBytes is the remote fetch granularity, 64B..4KB (0 = 4KB, the
	// paper's choice; §4.4 "Kona can choose the data movement size
	// between page and cache-line granularity").
	FetchBytes uint64
	// BackpressureBytes bounds the evictor's ship-pending backlog
	// (DESIGN.md §13): when the unshipped log bytes across every
	// destination exceed this, Write charges a bounded virtual-time
	// admission-control delay so dirty-byte production slows to eviction
	// bandwidth instead of growing the backlog without bound. 0 — the
	// default — disables admission control.
	BackpressureBytes uint64
	// Shards is the lock-stripe count for the concurrent data path: FMem
	// frame state and the eviction handler's append side are partitioned
	// into this many independently locked shards (DESIGN.md §9). Rounded
	// up to a power of two and clamped to the FMem set count. 0 derives it
	// from GOMAXPROCS; 1 yields the fully serial pre-concurrency layout.
	// Sharding changes lock granularity only — for a fixed seed the
	// virtual-time results are identical at any value.
	Shards int
	// Metrics receives the runtime's live telemetry: fetch/eviction
	// counters, writeback volume, and annotated trace events on the
	// bounded ring (DESIGN.md §7). nil — the default — disables
	// instrumentation at the cost of one nil check per site.
	Metrics *telemetry.Registry
}

// DefaultConfig returns a runtime sized for the given local cache.
func DefaultConfig(localCacheBytes uint64) Config {
	return Config{
		LocalCacheBytes: localCacheBytes,
		SlabSize:        slab.DefaultSlabSize,
		Replicas:        1,
		LogBytes:        256 << 10,
		Prefetch:        true,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SlabSize == 0 {
		c.SlabSize = slab.DefaultSlabSize
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.LogBytes == 0 {
		c.LogBytes = 256 << 10
	}
	if c.FlushThreshold == 0 {
		c.FlushThreshold = c.LogBytes / 4
	}
	if c.EvictFanout <= 0 {
		c.EvictFanout = 4
	}
	if c.Shards == 0 {
		c.Shards = defaultShards()
	}
	return c
}

// defaultShards sizes the lock-stripe count to the host: the next power
// of two at or above GOMAXPROCS, capped at 64 (beyond that the stripes
// outnumber any realistic contention and only cost memory).
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}

// Software cost constants for the eviction path (Fig 11c's breakdown).
// These model the compute-node CPU work per evicted page; the RDMA side
// comes from the rdma package's cost model.
const (
	// bitmapScanCost is the fixed cost of scanning a page's 64-bit dirty
	// bitmap and computing its segments.
	bitmapScanCost = 75 * time.Nanosecond
	// segmentCopyFixed is the per-segment overhead of the copy into the
	// RDMA-registered log (cache miss on the source line, header write).
	segmentCopyFixed = 130 * time.Nanosecond
	// pageCopyFixed is the per-page overhead of a full 4KB copy in the
	// Kona-VM eviction path.
	pageCopyFixed = 120 * time.Nanosecond
)

// copyCost models copying n payload bytes into a registered buffer.
func copyCost(n int) simclock.Duration {
	return simclock.Memcpy(n)
}
