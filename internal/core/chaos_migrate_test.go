package core

import (
	"math/rand"
	"sort"
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Migration chaos (DESIGN.md §13): live-migrate the slabs under a
// running workload — including killing the migration target mid-copy —
// and prove no acknowledged write is lost, torn, or read stale. These
// ride the same harness as the repair chaos tests: host-side mirror,
// byte-verification through the runtime, KONA_CHAOS_SEED rotation under
// `make chaos`.

// TestMigrateUnderLoadNoLostWrites runs an unreplicated (R=1) workload
// while the migration engine repeatedly moves its slabs between nodes.
// R=1 is the hard mode: a write bounced by the seal has no surviving
// replica to lean on, so the sealed-retain path (retain + seal-notice +
// fetch-time placement refresh + remap + suspect fence) is the only
// thing standing between the workload and data loss.
func TestMigrateUnderLoadNoLostWrites(t *testing.T) {
	seed := chaosSeed(t, 4)
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize // constant eviction churn
	k := NewKona(cfg, ctrl)
	w := newChaosWorkload(t, k, ctrl, seed, 128)

	eng := cluster.NewMigrationEngine(ctrl, cluster.NewLocalMigrationTransport(ctrl),
		cluster.MigrationConfig{
			PullLoads:        true, // sim-mode load feed: scrape node counters each sweep
			HotRatio:         1.1,
			MaxDrainPasses:   4,
			RetireSweeps:     2,
			MaxMovesPerSweep: 1,
		})

	// Interleave workload bursts with sweeps: every committed move seals
	// the old extent while the runtime still holds the stale placement,
	// so the next eviction bounces and must recover via refresh + remap.
	moves := 0
	for cycle := 0; cycle < 10; cycle++ {
		w.run(400)
		moves += eng.SweepOnce()
	}
	if moves == 0 {
		t.Fatalf("migration engine never moved a slab under load")
	}

	w.run(300)
	w.sync()
	w.verifyThroughRuntime()

	fs := k.FailureStats()
	if fs.SealedRetains == 0 {
		t.Errorf("no eviction ever bounced off a seal across %d moves — the sealed-retain path went unexercised", moves)
	}
	if fs.PlacementRefreshes == 0 {
		t.Errorf("runtime never refreshed placements after a migration flip")
	}
	if fs.RemappedEntries == 0 {
		t.Errorf("no retained entries were remapped onto migrated extents")
	}
	if st := eng.Stats(); st.Moves != uint64(moves) {
		t.Errorf("engine stats disagree with sweep returns: %+v vs %d", st, moves)
	}
}

// killTargetTransport fails the migration target node on the first Write
// of each armed window — the mid-copy crash.
type killTargetTransport struct {
	*cluster.LocalMigrationTransport
	ctrl   *cluster.Controller
	source int // the node whose slab is being migrated; never killed
	armed  bool
	killed int
}

func (k *killTargetTransport) Write(node int, epoch uint64, off uint64, bufs [][]byte) error {
	if k.armed && node != k.source {
		if n, ok := k.ctrl.Node(node); ok {
			n.Fail()
		}
		k.armed = false
		k.killed++
	}
	return k.LocalMigrationTransport.Write(node, epoch, off, bufs)
}

// TestChaosKillDuringMigration crashes the migration target mid-copy:
// the engine must unwind (placement untouched, source unsealed, target
// extent abandoned), the workload must keep running on the source, and
// once the target recovers the next sweep must complete the move — with
// every byte intact at the end.
func TestChaosKillDuringMigration(t *testing.T) {
	seed := chaosSeed(t, 5)
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKona(cfg, ctrl)
	w := newChaosWorkload(t, k, ctrl, seed, 64)
	w.run(500) // populate remote memory

	members := groupMembersFor(k, w.base)
	if len(members) != 1 {
		t.Fatalf("members = %+v, want one R=1 member", members)
	}
	source := members[0].Node

	tr := &killTargetTransport{
		LocalMigrationTransport: cluster.NewLocalMigrationTransport(ctrl),
		ctrl:                    ctrl,
		source:                  source,
		armed:                   true,
	}
	eng := cluster.NewMigrationEngine(ctrl, tr, cluster.MigrationConfig{
		PullLoads:    true,
		HotRatio:     1.1,
		RetireSweeps: 1,
	})

	// First sweep: the target dies on the first copy write. The move must
	// fail cleanly, leaving the placement where it was.
	if moves := eng.SweepOnce(); moves != 0 {
		t.Fatalf("sweep committed %d moves through a dead target", moves)
	}
	if tr.killed != 1 {
		t.Fatalf("kill never fired (killed=%d)", tr.killed)
	}
	if st := eng.Stats(); st.Failures == 0 {
		t.Fatalf("aborted migration not counted: %+v", st)
	}
	after := groupMembersFor(k, w.base)
	if len(after) != 1 || after[0].Node != source {
		t.Fatalf("placement changed by an aborted migration: %+v", after)
	}

	// The workload keeps running against the unsealed source.
	w.run(400)
	w.sync()

	// Recover every failed node; the next sweeps complete the move.
	for _, id := range ctrl.NodeIDs() {
		if n, ok := ctrl.Node(id); ok && n.Failed() {
			n.Recover()
		}
	}
	moved := 0
	for i := 0; i < 20 && moved == 0; i++ {
		w.run(100)
		moved += eng.SweepOnce()
	}
	if moved == 0 {
		t.Fatalf("migration never completed after target recovery")
	}

	w.run(300)
	w.sync()
	w.verifyThroughRuntime()
}

// TestMigrationDoesNotStarveFetchP99 is the bench-migrate guard (the
// migration twin of TestRepairDoesNotStarveFetchP99): fetch latency
// lives on the simulated-fabric virtual clock while migration copy
// traffic rides its own budgeted transport, so a concurrent 4MB live
// migration must not degrade the fetch p99 by 10% or more.
func TestMigrationDoesNotStarveFetchP99(t *testing.T) {
	seed := chaosSeed(t, 6)
	const pages = 128

	fetchP99 := func() simDurT {
		ctrl := newCluster(2)
		cfg := smallConfig()
		cfg.LocalCacheBytes = 8 * mem.PageSize
		k := NewKona(cfg, ctrl)
		w := newChaosWorkload(t, k, ctrl, seed, pages)
		w.run(600)
		w.sync()
		rng := rand.New(rand.NewSource(seed + 1))
		lat := make([]simDurT, 0, 2000)
		buf := make([]byte, 256)
		for i := 0; i < 2000; i++ {
			addr := w.base + mem.Addr(uint64(rng.Intn(pages))*mem.PageSize)
			done, err := k.Read(w.now, addr, buf)
			if err != nil {
				t.Fatal(err)
			}
			lat = append(lat, done-w.now)
			w.now = done
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}

	baseline := fetchP99()

	// Same sequence again with a real live migration moving a 4MB slab in
	// the background at 1MB/s — the copy outlives the measurement.
	mctrl := cluster.NewController()
	for i := 0; i < 2; i++ {
		if err := mctrl.Register(cluster.NewMemoryNode(i, 8<<20)); err != nil {
			t.Fatal(err)
		}
	}
	src, err := mctrl.AllocSlab(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Make the hosting node hot so the sweep picks its slab.
	mctrl.ReportLoad(src.Node, cluster.LoadSample{ReadBytes: 64 << 20})
	eng := cluster.NewMigrationEngine(mctrl, cluster.NewLocalMigrationTransport(mctrl),
		cluster.MigrationConfig{BytesPerSec: 1 << 20})
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		eng.SweepOnce()
	}()

	during := fetchP99()
	<-migDone
	if st := eng.Stats(); st.Moves != 1 {
		t.Fatalf("background migration did not complete: %+v", st)
	}

	if baseline <= 0 {
		t.Fatalf("degenerate baseline p99 %v", baseline)
	}
	if float64(during) >= float64(baseline)*1.10 {
		t.Fatalf("fetch p99 %v during migration vs %v baseline: degraded >= 10%%", during, baseline)
	}
}
