package core

import (
	"bytes"
	"net"
	"testing"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// delayedTCPRig is tcpRig with a seeded delay injector on every memory
// node's listener: each server-side I/O operation stalls by a uniform
// duration in [0, maxDelay). Bare-loopback round trips are ~10µs, an
// order of magnitude below any real fabric, so without this the ship
// cost is dominated by copies and the fan-out has nothing to overlap;
// the injected delay restores the latency-bound regime the pipelining
// targets (and that a real rack lives in).
func delayedTCPRig(b *testing.B, n int, maxDelay time.Duration) string {
	b.Helper()
	ctrl := cluster.NewController()
	cs, err := cluster.ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	for i := 0; i < n; i++ {
		node := cluster.NewMemoryNode(i, 64<<20)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		ln = net.Listener(cluster.NewFaultListener(ln, cluster.FaultConfig{
			Seed: int64(i + 1), DelayProb: 1, MaxDelay: maxDelay,
		}))
		ns := cluster.ServeMemoryNodeOn(node, ln)
		b.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			b.Fatal(err)
		}
	}
	return cs.Addr()
}

// benchFlushFanout measures a 3-replica flush over real TCP daemons:
// every iteration dirties a batch of cached pages and drains the
// cache-line log to all three nodes. fanout=1 is the serial baseline
// (one ship after another); fanout>1 overlaps the per-node round trips.
func benchFlushFanout(b *testing.B, fanout int) {
	addr := delayedTCPRig(b, 3, 300*time.Microsecond)
	cfg := smallConfig()
	cfg.Replicas = 3
	cfg.LocalCacheBytes = 64 * mem.PageSize
	cfg.LogBytes = 4 << 20 // one ship per node per drain, no threshold flushes
	cfg.EvictFanout = fanout
	k := NewKonaTCP(cfg, addr)
	const pages = 16
	base, err := k.Malloc(pages * mem.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, int(mem.PageSize))
	var now simDurT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pages; p++ {
			if now, err = k.Write(now, base+mem.Addr(p)*mem.PageSize, payload); err != nil {
				b.Fatal(err)
			}
		}
		if now, err = k.Sync(now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := k.EvictStats(); st.Flushes == 0 {
		b.Fatal("benchmark shipped nothing")
	}
}

// BenchmarkFlushFanout is the tentpole's before/after pair: serial vs
// pipelined 3-replica eviction fan-out over real sockets.
func BenchmarkFlushFanout(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchFlushFanout(b, 1) })
	b.Run("fanout4", func(b *testing.B) { benchFlushFanout(b, 4) })
}

// BenchmarkEvictSteadyState drives the dirty-eviction path on the
// simulated transport with a cache 8x smaller than the working set, so
// every write evicts a dirty page through segment scan, arena copy, log
// pack and ship. The arena + scratch reuse should hold it at 0 allocs/op
// once warm.
func BenchmarkEvictSteadyState(b *testing.B) {
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKona(cfg, newCluster(1))
	const pages = 64
	base, err := k.Malloc(pages * mem.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, 256)
	var now simDurT
	// Warm: touch every page once so slabs, frames, batches and the
	// arena reach steady state.
	for p := 0; p < pages; p++ {
		if now, err = k.Write(now, base+mem.Addr(p)*mem.PageSize, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := base + mem.Addr(i%pages)*mem.PageSize
		if now, err = k.Write(now, addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchHitSteadyState is the fetch-side allocation check: reads
// served from a resident FMem page must not allocate.
func BenchmarkFetchHitSteadyState(b *testing.B) {
	cfg := smallConfig()
	k := NewKona(cfg, newCluster(1))
	base, err := k.Malloc(4 * mem.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	var now simDurT
	if now, err = k.Read(now, base, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if now, err = k.Read(now, base, buf); err != nil {
			b.Fatal(err)
		}
	}
}
