package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kona/internal/cluster"
	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// coreMetrics is the runtime's pre-resolved telemetry handles. With a nil
// registry every handle is nil and every call below is a no-op costing a
// pointer check; trace-detail formatting is additionally gated so the
// disabled path never allocates.
type coreMetrics struct {
	fetches        *telemetry.Counter
	evictions      *telemetry.Counter
	dirtyEvictions *telemetry.Counter
	syncs          *telemetry.Counter
	// backpressureStalls/backpressureDelay count writes delayed by
	// admission control and the total virtual time charged (DESIGN.md
	// §13).
	backpressureStalls, backpressureDelay *telemetry.Counter
	// Published absolute values of the FPGA's own counters (Store-synced
	// at Sync/Close and on PublishTelemetry).
	lineFills, fmemHits, writebacks, prefetches, bytesFetched *telemetry.Counter
	trace                                                     *telemetry.Trace
}

func newCoreMetrics(reg *telemetry.Registry) coreMetrics {
	return coreMetrics{
		fetches:            reg.Counter("core.fetches"),
		evictions:          reg.Counter("core.evictions"),
		dirtyEvictions:     reg.Counter("core.dirty_evictions"),
		syncs:              reg.Counter("core.syncs"),
		backpressureStalls: reg.Counter("core.backpressure.stalls"),
		backpressureDelay:  reg.Counter("core.backpressure.delay_ns"),
		lineFills:          reg.Counter("core.fpga.line_fills"),
		fmemHits:           reg.Counter("core.fpga.fmem_hits"),
		writebacks:         reg.Counter("core.fpga.writebacks"),
		prefetches:         reg.Counter("core.fpga.prefetches"),
		bytesFetched:       reg.Counter("core.fpga.bytes_fetched"),
		trace:              reg.Trace(),
	}
}

// Kona is the coherence-based remote memory runtime (§4). Applications
// allocate through Malloc and access memory through Read/Write; underneath,
// pages live on memory nodes, are cached in FMem by the FPGA model on
// demand (no page faults), have their writes tracked per cache line by the
// coherence writeback stream, and are evicted through the cache-line log.
type Kona struct {
	cfg   Config
	rm    *resourceManager
	fpga  *fpga.FPGA
	evict *evictor
	m     coreMetrics

	// errMu guards evictErr: eviction callbacks run concurrently under
	// different FMem shard locks, and Sync reads/clears from application
	// context.
	errMu sync.Mutex
	// evictErr latches the first asynchronous eviction failure; Sync
	// surfaces it.
	evictErr error

	// placementEpoch is the controller's placement epoch as of the last
	// refresh; Sync re-checks it and refreshes placements when a repair
	// flip (or membership change) advanced it.
	placementEpoch atomic.Uint64
	// refreshes counts completed placement refreshes (FailureStats).
	refreshes atomic.Uint64

	// backpressureStalls counts writes delayed by admission control
	// (Config.BackpressureBytes).
	backpressureStalls atomic.Uint64

	// loadMu guards loadScratch, the reusable per-Sync scratch for
	// reporting ship-pending backlog to the controller's load map.
	loadMu      sync.Mutex
	loadScratch []nodePending

	// runtimeID is this runtime's lease/fence identity (share.go). The
	// sharing state below is guarded by shareMu; readerCount mirrors
	// len(readerGroups) so the hot Read path can skip the lock entirely
	// when nothing is attached.
	runtimeID    uint64
	shareMu      sync.Mutex
	writerGroups map[uint64]struct{}
	readerGroups map[uint64]*readerShare
	readerCount  atomic.Int64

	failures FailureStats
}

// noteEvictErr latches the first asynchronous eviction failure.
func (k *Kona) noteEvictErr(err error) {
	if err == nil {
		return
	}
	k.errMu.Lock()
	if k.evictErr == nil {
		k.evictErr = err
	}
	k.errMu.Unlock()
}

// takeEvictErr returns and clears the latched eviction failure.
func (k *Kona) takeEvictErr() error {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	err := k.evictErr
	k.evictErr = nil
	return err
}

// NewKona builds a runtime against an in-process rack controller (the
// simulated RDMA transport). The controller must have registered memory
// nodes.
func NewKona(cfg Config, ctrl *cluster.Controller) *Kona {
	return newKona(cfg.withDefaults(), newSimRack(ctrl))
}

// NewKonaTCP builds a runtime against a remote controller daemon reached
// over TCP (cmd/kona-controller + cmd/kona-memnode). Data moves over real
// sockets; measured wall-clock latencies fold into the virtual clock.
func NewKonaTCP(cfg Config, controllerAddr string) *Kona {
	return newKona(cfg.withDefaults(), newTCPRack(controllerAddr))
}

// NewKonaTCPWith is NewKonaTCP with an explicit wire policy (deadlines,
// retry budget, connection-pool size) for the controller and node links.
func NewKonaTCPWith(cfg Config, controllerAddr string, tr cluster.Transport) *Kona {
	return newKona(cfg.withDefaults(), newTCPRackWith(controllerAddr, tr))
}

func newKona(cfg Config, r rack) *Kona {
	rm := newResourceManager(cfg, r)
	k := &Kona{
		cfg: cfg, rm: rm, m: newCoreMetrics(cfg.Metrics),
		runtimeID:    nextRuntimeID(),
		writerGroups: make(map[uint64]struct{}),
		readerGroups: make(map[uint64]*readerShare),
	}
	// Stamp the identity before any link exists so every data-path write
	// carries it for lease fencing.
	r.setRuntime(k.runtimeID)
	k.evict = newEvictor(rm, cfg)
	k.fpga = fpga.New(fpga.Config{
		FMemSize:      cfg.LocalCacheBytes,
		Assoc:         4,
		Shards:        cfg.Shards,
		Prefetch:      cfg.Prefetch,
		PrefetchDepth: cfg.PrefetchDepth,
		StreamBypass:  cfg.StreamBypass,
		FetchBytes:    cfg.FetchBytes,
	}, rm, k.onEvict)
	// Scatter-gather fetches only pay off when round trips are real;
	// the simulated fabric keeps the serial path so virtual time stays
	// byte-reproducible.
	if r.pipelined() {
		k.fpga.EnableBatchFetch()
	}
	// Write-before-read ordering: a page refetch must not observe remote
	// memory that is missing buffered eviction-log entries. The hook runs
	// on every remote fetch, which makes it the caching handler's
	// fetch-telemetry point too.
	k.fpga.SetFetchHook(func(now simclock.Duration, base mem.Addr) simclock.Duration {
		k.m.fetches.Inc()
		if k.m.trace != nil {
			k.m.trace.EmitAt(now, "core.fetch", fmt.Sprintf("page=%#x", uint64(base)))
		}
		done, err := k.evict.FlushIfPending(now, base)
		k.noteEvictErr(err)
		if k.rm.takeSealNotice() {
			// A ship was rejected by an extent sealed for migration; the
			// retained entries can only drain once the flip is picked up.
			// Refresh placements and re-flush before this fetch reads
			// remote memory — without it, an unreplicated slab could
			// serve a page missing acknowledged writes in the window
			// between the seal and the next Sync.
			if _, rerr := k.RefreshPlacements(); rerr != nil {
				k.noteEvictErr(rerr)
			}
			done, err = k.evict.FlushIfPending(done, base)
			k.noteEvictErr(err)
		}
		return done
	})
	return k
}

// onEvict is the FPGA's eviction callback. Eviction is off the
// application's critical path (§4.5), so its cost is not charged to the
// caller's clock — but it shares the NIC with fetches, so heavy eviction
// still delays fetch traffic through queueing.
func (k *Kona) onEvict(now simclock.Duration, v fpga.Victim) simclock.Duration {
	k.m.evictions.Inc()
	if v.Dirty.Any() {
		k.m.dirtyEvictions.Inc()
	}
	done, err := k.evict.EvictPage(now, v)
	k.noteEvictErr(err)
	return done - now
}

// Malloc allocates disaggregated memory. Allocation is a control-path
// operation: slabs are pre-provisioned in bulk, so no remote round trip
// happens on the common path.
func (k *Kona) Malloc(size uint64) (mem.Addr, error) { return k.rm.Malloc(size) }

// Free releases an allocation.
func (k *Kona) Free(addr mem.Addr) error { return k.rm.Free(addr) }

// Read copies remote memory into buf, fetching pages into FMem as needed,
// and returns the completion time.
func (k *Kona) Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	k.checkReaderLease(addr)
	return k.fpga.Read(now, addr, buf)
}

// Write stores buf to remote memory through FMem, tracking dirty lines,
// and returns the completion time. With Config.BackpressureBytes set,
// writes issued while the ship-pending backlog exceeds the bound are
// charged a bounded admission-control delay (DESIGN.md §13): the backlog
// means dirty bytes are being produced faster than eviction bandwidth
// drains them, and an unbounded backlog turns into unbounded retained
// memory and unbounded catch-up flushes.
func (k *Kona) Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	if k.readerCount.Load() != 0 {
		// A store into a reader-mode shared region must first win the
		// writer lease (share.go); on conflict the write faults here.
		if err := k.upgradeIfReader(addr); err != nil {
			return now, err
		}
	}
	if limit := k.cfg.BackpressureBytes; limit > 0 {
		if p := k.evict.totalPendingBytes(); p > limit {
			d := backpressureDelay(p, limit)
			now += d
			k.backpressureStalls.Add(1)
			k.m.backpressureStalls.Inc()
			k.m.backpressureDelay.Add(uint64(d))
		}
	}
	return k.fpga.Write(now, addr, buf)
}

// backpressureMaxDelay caps one write's admission-control stall: the
// delay slows the writer to eviction speed, it does not block it.
const backpressureMaxDelay = 50 * time.Microsecond

// backpressureDelay converts pending-byte overshoot into a bounded
// virtual-time stall, modeling a ~64 B/ns drain of the excess.
func backpressureDelay(pending, limit uint64) simclock.Duration {
	d := simclock.Duration((pending - limit) / 64)
	if d > backpressureMaxDelay {
		d = backpressureMaxDelay
	}
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// RefreshPlacements re-fetches every placement group from the controller
// and, when a repair flip replaced a member, remaps the evictor's
// retained entries onto the replacement node. It reports whether any
// placement changed. Sync calls it automatically when the controller's
// placement epoch advances; callers driving repair externally can invoke
// it directly.
func (k *Kona) RefreshPlacements() (bool, error) {
	moves, changed, err := k.rm.refreshPlacements()
	// Register the moves even when the refresh failed partway: any group
	// already installed has its repaired member marked suspect, and only
	// the remap (plus the per-flush re-apply it arms) ships the retained
	// entries that make that member readable again.
	if len(moves) > 0 {
		k.evict.remap(moves)
	}
	if changed {
		k.refreshes.Add(1)
	}
	return changed, err
}

// Sync flushes every cached page through the eviction path and drains the
// cache-line log, making remote memory fully current. It returns the drain
// completion time. With replication enabled, entries destined for a dead
// replica are retained rather than drained (§4.5) — a repair flip moves
// them to the replacement node — so Sync succeeds while an outage is
// in progress; unreplicated outages surface as errors.
func (k *Kona) Sync(now simclock.Duration) (simclock.Duration, error) {
	// Report the per-destination ship-pending backlog into the
	// controller's load map before draining it: the controller folds this
	// compute-side pressure signal into load-aware placement and
	// migration decisions (DESIGN.md §13). Best-effort and free of
	// virtual-time cost, so fixed-seed results are unchanged.
	k.loadMu.Lock()
	k.loadScratch = k.evict.pendingLoads(k.loadScratch)
	for _, np := range k.loadScratch {
		_ = k.rm.rack.reportLoad(np.node, np.bytes)
	}
	k.loadMu.Unlock()
	// Pick up repair flips before flushing so retained entries land on the
	// repaired replica in this drain, not the next. The epoch check is one
	// control-path lookup; in a healthy steady state the epoch never moves
	// and no refresh happens.
	if ep, eerr := k.rm.rack.placementEpoch(); eerr == nil {
		if k.placementEpoch.Swap(ep) != ep {
			if _, rerr := k.RefreshPlacements(); rerr != nil {
				k.noteEvictErr(rerr)
			}
		}
	}
	k.fpga.FlushAll(now)
	done, err := k.evict.Flush(now)
	if err == nil {
		err = k.takeEvictErr()
	}
	if err == nil {
		// The flush reached remote memory; bump the publish version on
		// every writer-leased shared group so readers invalidate and
		// refetch the new bytes (share.go).
		err = k.publishShared()
	}
	k.m.syncs.Inc()
	k.PublishTelemetry()
	return done, err
}

// PublishTelemetry syncs the FPGA model's private counters into the
// configured registry (Store, so re-publishing is idempotent). Sync and
// Close publish automatically; callers scraping /metrics mid-run can call
// it directly for fresher caching-handler numbers. No-op without a
// registry.
func (k *Kona) PublishTelemetry() {
	if k.cfg.Metrics == nil {
		return
	}
	st := k.fpga.Stats()
	k.m.lineFills.Store(st.LineFills)
	k.m.fmemHits.Store(st.FMemHits)
	k.m.writebacks.Store(st.Writebacks)
	k.m.prefetches.Store(st.Prefetches)
	k.m.bytesFetched.Store(st.BytesFetched)
}

// Close drains the runtime (Sync) and returns every slab to the rack.
// The runtime must not be used afterwards.
func (k *Kona) Close(now simclock.Duration) error {
	if _, err := k.Sync(now); err != nil {
		return err
	}
	k.releaseShares()
	k.evict.release()
	return k.rm.releaseAll()
}

// FPGAStats exposes the caching/tracking counters.
func (k *Kona) FPGAStats() fpga.Stats { return k.fpga.Stats() }

// EvictStats exposes the eviction counters.
func (k *Kona) EvictStats() EvictStats { return k.evict.Stats() }

// EvictBreakdown exposes the Fig 11c time accounting.
func (k *Kona) EvictBreakdown() Breakdown { return k.evict.Breakdown() }

// DirtyLines reports the tracked dirty bitmap for the page holding addr.
func (k *Kona) DirtyLines(addr mem.Addr) mem.LineBitmap { return k.fpga.DirtyLines(addr) }
