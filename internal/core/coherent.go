package core

import (
	"fmt"

	"kona/internal/coherence"
	"kona/internal/mem"
)

// CoherentDomain is the full §4.3 stack assembled: simulated CPU caches
// speak MESI to a directory whose home memory is the Kona FPGA — so every
// CPU miss becomes a VFMem line fill (remote fetch on FMem miss) and every
// modified-line writeback lands in the FPGA's dirty bitmap, without the
// runtime being told anything explicitly. It demonstrates the paper's
// central claim mechanically: the unmodified local coherence protocol is
// sufficient to drive transparent remote memory.
//
// The domain is functional (data-correct) rather than timed; the timed
// experiments drive the FPGA directly.
//
// Concurrency: a CoherentDomain is NOT goroutine-safe. The simulated
// MESI caches model a snooping bus — protocol steps are globally
// ordered by construction — so Load/Store/Drain must be issued from one
// goroutine (or externally serialized), exactly like transactions on
// the bus they model. The Kona runtime underneath is goroutine-safe;
// concurrent callers should use it directly (DESIGN.md §9).
type CoherentDomain struct {
	sys  *coherence.System
	kona *Kona
}

// konaHome adapts the Kona FPGA to coherence.Home.
type konaHome struct{ k *Kona }

// ReadLine implements coherence.Home: a line request reaching home is
// exactly the cache-remote-data primitive.
func (h konaHome) ReadLine(line uint64, buf []byte) error {
	_, err := h.k.Read(0, mem.LineBase(line), buf[:mem.CacheLineSize])
	return err
}

// WriteLine implements coherence.Home: a modified line reaching home is
// exactly the track-local-data primitive.
func (h konaHome) WriteLine(line uint64, data []byte) error {
	_, err := h.k.Write(0, mem.LineBase(line), data[:mem.CacheLineSize])
	return err
}

// NewCoherentDomain attaches cpus simulated CPU caches (each capacityLines
// lines, assoc-way) to the runtime.
func (k *Kona) NewCoherentDomain(cpus, capacityLines, assoc int) *CoherentDomain {
	d := &CoherentDomain{kona: k}
	d.sys = coherence.NewSystem(cpus, capacityLines, assoc, nil)
	d.sys.SetHome(konaHome{k})
	return d
}

// CPU returns core i's cache for direct protocol-level access.
func (d *CoherentDomain) CPU(i int) *coherence.Cache { return d.sys.Cache(i) }

// System exposes the coherence domain (for snooping and invariant checks).
func (d *CoherentDomain) System() *coherence.System { return d.sys }

// Load reads len(buf) bytes at addr through cpu's cache, line by line.
func (d *CoherentDomain) Load(cpu int, addr mem.Addr, buf []byte) error {
	c := d.sys.Cache(cpu)
	off := 0
	for off < len(buf) {
		a := addr + mem.Addr(off)
		n := int(mem.CacheLineSize - uint64(a)%mem.CacheLineSize)
		if rem := len(buf) - off; n > rem {
			n = rem
		}
		if _, err := c.Load(a, buf[off:off+n]); err != nil {
			return fmt.Errorf("core: coherent load at %v: %w", a, err)
		}
		off += n
	}
	return nil
}

// Store writes data at addr through cpu's cache, line by line.
func (d *CoherentDomain) Store(cpu int, addr mem.Addr, data []byte) error {
	c := d.sys.Cache(cpu)
	off := 0
	for off < len(data) {
		a := addr + mem.Addr(off)
		n := int(mem.CacheLineSize - uint64(a)%mem.CacheLineSize)
		if rem := len(data) - off; n > rem {
			n = rem
		}
		if _, err := c.Store(a, data[off:off+n]); err != nil {
			return fmt.Errorf("core: coherent store at %v: %w", a, err)
		}
		off += n
	}
	return nil
}

// Drain snoops every CPU cache line in r back to the FPGA (the eviction
// path's snoop, §4.4) so remote memory can be made current with Sync.
func (d *CoherentDomain) Drain(r mem.Range) int {
	return d.sys.Snoop(r)
}
