package core

import (
	"bytes"
	"math/rand"
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// newCluster builds a controller with n memory nodes of 64MB each.
func newCluster(n int) *cluster.Controller {
	ctrl := cluster.NewController()
	for i := 0; i < n; i++ {
		if err := ctrl.Register(cluster.NewMemoryNode(i, 64<<20)); err != nil {
			panic(err)
		}
	}
	return ctrl
}

func smallConfig() Config {
	cfg := DefaultConfig(256 * mem.PageSize)
	cfg.SlabSize = 4 << 20
	cfg.Prefetch = false
	return cfg
}

func TestKonaReadYourWrites(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	addr, err := k.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("coherence-based remote memory")
	if _, err := k.Write(0, addr+100, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := k.Read(0, addr+100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read-your-writes violated: %q", buf)
	}
}

func TestKonaSyncMakesRemoteCurrent(t *testing.T) {
	ctrl := newCluster(1)
	k := NewKona(smallConfig(), ctrl)
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 200)
	if _, err := k.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	// The memory node's pool must now contain the data at the slab offset.
	node, _ := ctrl.Node(0)
	pls, err := k.rm.placementsFor(addr)
	if err != nil {
		t.Fatal(err)
	}
	off := pls[0].remoteOff
	got := node.PoolBytes()[off : off+200]
	if !bytes.Equal(got, payload) {
		t.Fatalf("remote pool stale after Sync")
	}
	// Only the dirty lines were shipped: 200 bytes in lines 0..3 => 4
	// lines = 256 payload bytes, far under a 4KB page.
	st := k.EvictStats()
	if st.PayloadBytes != 256 {
		t.Errorf("payload bytes = %d, want 256 (4 lines)", st.PayloadBytes)
	}
	if st.LinesShipped != 4 || st.Segments != 1 {
		t.Errorf("lines=%d segments=%d, want 4/1", st.LinesShipped, st.Segments)
	}
}

func TestKonaDirtyTrackingGranularity(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	// Touch two separate lines.
	if _, err := k.Write(0, addr, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(0, addr+10*64, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	d := k.DirtyLines(addr)
	if d.Count() != 2 || !d.Get(0) || !d.Get(10) {
		t.Errorf("dirty = %b", d)
	}
	// Reads do not dirty.
	if _, err := k.Read(0, addr+20*64, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if k.DirtyLines(addr).Count() != 2 {
		t.Errorf("read dirtied a line")
	}
}

func TestKonaCapacityEvictionRoundTrip(t *testing.T) {
	// Cache of 64 pages; write 256 pages, then read everything back:
	// evicted dirty data must survive the trip through the CL log.
	cfg := smallConfig()
	cfg.LocalCacheBytes = 64 * mem.PageSize
	k := NewKona(cfg, newCluster(2))
	const pages = 256
	addr, err := k.Malloc(pages * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want := make([][]byte, pages)
	now := simDur(0)
	for p := 0; p < pages; p++ {
		val := make([]byte, 64)
		rng.Read(val)
		want[p] = val
		now, err = k.Write(now, addr+mem.Addr(p*mem.PageSize+128), val)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Sync(now); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pages; p++ {
		buf := make([]byte, 64)
		if _, err := k.Read(now, addr+mem.Addr(p*mem.PageSize+128), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want[p]) {
			t.Fatalf("page %d corrupted after eviction round trip", p)
		}
	}
	st := k.EvictStats()
	if st.PagesEvicted == 0 || st.DirtyPages == 0 {
		t.Errorf("no evictions happened: %+v", st)
	}
	// Goodput advantage: wire bytes must be a small multiple of payload
	// (headers only), far below page-granularity shipping.
	if st.WireBytes > 2*st.PayloadBytes {
		t.Errorf("wire bytes %d vs payload %d: header overhead too high", st.WireBytes, st.PayloadBytes)
	}
	if pageBytes := st.DirtyPages * mem.PageSize; st.WireBytes*4 > pageBytes {
		t.Errorf("CL log shipped %d bytes; page granularity would ship %d — expected >4x reduction", st.WireBytes, pageBytes)
	}
}

func TestKonaMallocGrowsSlabs(t *testing.T) {
	cfg := smallConfig()
	k := NewKona(cfg, newCluster(1))
	// Allocate more than one slab's worth in slab-sized pieces.
	for i := 0; i < 3; i++ {
		if _, err := k.Malloc(3 << 20); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := k.Malloc(0); err == nil {
		t.Errorf("zero malloc succeeded")
	}
	if _, err := k.Malloc(64 << 20); err == nil {
		t.Errorf("malloc beyond slab size succeeded")
	}
}

func TestKonaFree(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := k.Free(addr); err == nil {
		t.Errorf("double free succeeded")
	}
}

func TestKonaVMRoundTrip(t *testing.T) {
	k := NewKonaVM(smallConfig(), newCluster(1))
	addr, err := k.Malloc(16 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("page-based baseline")
	if _, err := k.Write(0, addr+4096+17, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := k.Read(0, addr+4096+17, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("vm read-your-writes violated: %q", buf)
	}
	st := k.Stats()
	if st.Fetches != 1 {
		t.Errorf("fetches = %d, want 1", st.Fetches)
	}
	if st.WPFaults != 1 {
		t.Errorf("wp faults = %d, want 1 (first store)", st.WPFaults)
	}
}

func TestKonaVMTwoFaultsPerColdWrite(t *testing.T) {
	// §6.1: "Kona-VM incurs two page faults for caching a remote page" on
	// a cold write: the major fetch fault plus the WP minor fault.
	k := NewKonaVM(smallConfig(), newCluster(1))
	addr, _ := k.Malloc(4 * mem.PageSize)
	if _, err := k.Write(0, addr, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	as := k.AddressSpaceStats()
	if as.MajorFaults != 1 || as.WPFaults != 1 {
		t.Errorf("faults = %+v, want 1 major + 1 WP", as)
	}
	// NoWP variant: single fault.
	k2 := NewKonaVM(smallConfig(), newCluster(1))
	k2.WriteProtect = false
	addr2, _ := k2.Malloc(4 * mem.PageSize)
	if _, err := k2.Write(0, addr2, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	as2 := k2.AddressSpaceStats()
	if as2.MajorFaults != 1 || as2.WPFaults != 0 {
		t.Errorf("NoWP faults = %+v, want 1 major only", as2)
	}
}

func TestKonaVMEvictionWritesWholePages(t *testing.T) {
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKonaVM(cfg, newCluster(1))
	addr, _ := k.Malloc(32 * mem.PageSize)
	now := simDur(0)
	var err error
	for p := 0; p < 32; p++ {
		// One tiny write per page: page granularity ships 4KB anyway.
		now, err = k.Write(now, addr+mem.Addr(p*mem.PageSize), make([]byte, 8))
		if err != nil {
			t.Fatal(err)
		}
	}
	st := k.Stats()
	if st.Evictions < 20 {
		t.Fatalf("evictions = %d, expected most pages evicted", st.Evictions)
	}
	if st.WireBytes != st.DirtyEvicted*mem.PageSize {
		t.Errorf("wire bytes = %d, want full pages (%d)", st.WireBytes, st.DirtyEvicted*mem.PageSize)
	}
	if k.CachedPages() > 8 {
		t.Errorf("cache over capacity: %d", k.CachedPages())
	}
	// Read back data that went through eviction.
	buf := make([]byte, 8)
	if _, err := k.Read(now, addr, buf); err != nil {
		t.Fatal(err)
	}
}

func TestKonaVMSync(t *testing.T) {
	ctrl := newCluster(1)
	k := NewKonaVM(smallConfig(), ctrl)
	addr, _ := k.Malloc(4096)
	payload := bytes.Repeat([]byte{9}, 100)
	if _, err := k.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	node, _ := ctrl.Node(0)
	pls, err := k.rm.placementsFor(addr)
	if err != nil {
		t.Fatal(err)
	}
	off := pls[0].remoteOff
	if !bytes.Equal(node.PoolBytes()[off:off+100], payload) {
		t.Fatalf("vm sync did not reach remote pool")
	}
	// After sync the page is re-protected: the next write faults again.
	wpBefore := k.AddressSpaceStats().WPFaults
	if _, err := k.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	if k.AddressSpaceStats().WPFaults != wpBefore+1 {
		t.Errorf("re-protection after sync did not re-arm WP tracking")
	}
}

// Kona must be substantially faster than Kona-VM on the paper's core
// pattern: touch one cache line per page over many remote pages.
func TestKonaBeatsKonaVM(t *testing.T) {
	const pages = 512
	mkAddrs := func() []mem.Addr {
		out := make([]mem.Addr, pages)
		for i := range out {
			out[i] = mem.Addr(i * mem.PageSize)
		}
		return out
	}
	cfg := smallConfig()
	cfg.LocalCacheBytes = pages / 2 * mem.PageSize // 50% local cache

	kona := NewKona(cfg, newCluster(1))
	kaddr, _ := kona.Malloc(pages * mem.PageSize)
	var tk simDurT
	buf := make([]byte, 64)
	for _, off := range mkAddrs() {
		var err error
		tk, err = kona.Read(tk, kaddr+off, buf)
		if err != nil {
			t.Fatal(err)
		}
		tk, err = kona.Write(tk, kaddr+off, buf)
		if err != nil {
			t.Fatal(err)
		}
	}

	kvm := NewKonaVM(cfg, newCluster(1))
	vaddr, _ := kvm.Malloc(pages * mem.PageSize)
	var tv simDurT
	for _, off := range mkAddrs() {
		var err error
		tv, err = kvm.Read(tv, vaddr+off, buf)
		if err != nil {
			t.Fatal(err)
		}
		tv, err = kvm.Write(tv, vaddr+off, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tk*2 >= tv {
		t.Errorf("Kona (%v) not at least 2x faster than Kona-VM (%v)", tk, tv)
	}
	t.Logf("Kona %v vs Kona-VM %v (%.1fx)", tk, tv, float64(tv)/float64(tk))
}
