package core

import (
	"testing"
	"testing/quick"

	"kona/internal/mem"
)

func TestEvictionBenchShipsExactPayload(t *testing.T) {
	var dirty mem.LineBitmap
	dirty.SetRange(0, 4)
	elapsed, b, st, err := EvictionBench(newCluster(1), DefaultConfig(1<<20), 64, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if st.DirtyPages != 64 || st.Segments != 64 {
		t.Errorf("stats = %+v, want 64 pages / 64 segments", st)
	}
	if st.PayloadBytes != 64*4*64 {
		t.Errorf("payload = %d, want %d", st.PayloadBytes, 64*4*64)
	}
	if b.Total() <= 0 || b.Copy <= 0 || b.Bitmap <= 0 {
		t.Errorf("breakdown incomplete: %+v", b)
	}
	// One flush at the end at minimum, and the receiver applied entries.
	if st.Flushes == 0 || st.AcksReceived == 0 {
		t.Errorf("no flush/ack recorded: %+v", st)
	}
}

func TestEvictionBenchRejectsCleanBitmap(t *testing.T) {
	if _, _, _, err := EvictionBench(newCluster(1), DefaultConfig(1<<20), 8, 0); err == nil {
		t.Errorf("clean bitmap accepted")
	}
	if _, err := EvictionBenchSG(newCluster(1), DefaultConfig(1<<20), 8, 0); err == nil {
		t.Errorf("SG clean bitmap accepted")
	}
}

func TestEvictionBenchSGWorseThanLog(t *testing.T) {
	var dirty mem.LineBitmap
	for i := 0; i < 8; i++ {
		dirty.Set(i * 2) // 8 discontiguous lines: SG's worst case
	}
	logT, _, _, err := EvictionBench(newCluster(1), DefaultConfig(1<<20), 128, dirty)
	if err != nil {
		t.Fatal(err)
	}
	sgT, err := EvictionBenchSG(newCluster(1), DefaultConfig(1<<20), 128, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if sgT <= logT {
		t.Errorf("scatter-gather (%v) should lose to CL log (%v) on discontiguous lines (§6.4)", sgT, logT)
	}
}

func TestEvictionBenchReplicatedDoublesWire(t *testing.T) {
	var dirty mem.LineBitmap
	dirty.Set(0)
	cfg1 := DefaultConfig(1 << 20)
	_, _, st1, err := EvictionBench(newCluster(2), cfg1, 64, dirty)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig(1 << 20)
	cfg2.Replicas = 2
	_, _, st2, err := EvictionBench(newCluster(2), cfg2, 64, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if st2.WireBytes < 2*st1.WireBytes*9/10 {
		t.Errorf("replicated wire bytes %d, want ~2x of %d", st2.WireBytes, st1.WireBytes)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{LocalCacheBytes: 1 << 20}.withDefaults()
	if cfg.SlabSize == 0 || cfg.LogBytes == 0 || cfg.FlushThreshold == 0 || cfg.Replicas != 1 {
		t.Errorf("defaults missing: %+v", cfg)
	}
	if cfg.FlushThreshold != cfg.LogBytes/4 {
		t.Errorf("flush threshold default = %d", cfg.FlushThreshold)
	}
	// Explicit values survive.
	cfg2 := Config{LocalCacheBytes: 1 << 20, SlabSize: 1 << 20, Replicas: 3, LogBytes: 8 << 10, FlushThreshold: 100}.withDefaults()
	if cfg2.SlabSize != 1<<20 || cfg2.Replicas != 3 || cfg2.LogBytes != 8<<10 || cfg2.FlushThreshold != 100 {
		t.Errorf("explicit config clobbered: %+v", cfg2)
	}
}

func TestKonaStatsAccessors(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(0, addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if st := k.FPGAStats(); st.Writebacks == 0 || st.RemoteFetches == 0 {
		t.Errorf("FPGAStats empty: %+v", st)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	if k.EvictBreakdown().Total() <= 0 {
		t.Errorf("breakdown empty after sync")
	}
}

func TestKonaVMFree(t *testing.T) {
	k := NewKonaVM(smallConfig(), newCluster(1))
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := k.Free(addr); err == nil {
		t.Errorf("double free succeeded")
	}
}

func TestSyncSurfacesAsyncEvictError(t *testing.T) {
	// Fail the only node after data is cached; the asynchronous eviction
	// then fails, and Sync must surface it.
	ctrl := newCluster(1)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 4 * mem.PageSize
	k := NewKona(cfg, ctrl)
	addr, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(0, addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	n, _ := ctrl.Node(0)
	n.Fail()
	if _, err := k.Sync(0); err == nil {
		t.Errorf("Sync swallowed the eviction failure on a dead node")
	}
}

// Property: for random dirty bitmaps, the evictor ships exactly the dirty
// payload plus deterministic header overhead.
func TestEvictionAccountingQuick(t *testing.T) {
	f := func(bits uint64, pages8 uint8) bool {
		dirty := mem.LineBitmap(bits)
		if !dirty.Any() {
			return true
		}
		pages := int(pages8%16) + 1
		_, _, st, err := EvictionBench(newCluster(1), DefaultConfig(1<<20), pages, dirty)
		if err != nil {
			return false
		}
		wantPayload := uint64(pages * dirty.Count() * mem.CacheLineSize)
		if st.PayloadBytes != wantPayload {
			return false
		}
		segs := uint64(len(dirty.Segments()))
		wantWire := wantPayload + segs*uint64(pages)*10 + st.Flushes*8
		return st.WireBytes == wantWire && st.DirtyPages == uint64(pages)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
