package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kona/internal/cllog"
	"kona/internal/cluster"
	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// evictMetrics mirrors EvictStats into a registry as the eviction path
// runs, plus batch-flush trace events. All handles are nil (no-op) when
// telemetry is disabled.
type evictMetrics struct {
	dirtyPages, silent, lines, payloadBytes *telemetry.Counter
	wireBytes, flushes, remoteEntries       *telemetry.Counter
	// shipFailures counts outages reported to the controller; remapped
	// counts retained entries rebased onto a repaired replica;
	// sealedRetains counts ships rejected by a migration seal;
	// leaseFenced counts ships rejected by a lease fence (this runtime's
	// writer lease was taken over).
	shipFailures, remapped, sealedRetains, leaseFenced *telemetry.Counter
	// inflight tracks ships currently on the wire during a concurrent
	// fan-out (always 0..1 on the serial path).
	inflight *telemetry.Gauge
	trace    *telemetry.Trace
}

func newEvictMetrics(reg *telemetry.Registry) evictMetrics {
	return evictMetrics{
		dirtyPages:    reg.Counter("core.evict.dirty_pages"),
		silent:        reg.Counter("core.evict.silent"),
		lines:         reg.Counter("core.evict.lines_shipped"),
		payloadBytes:  reg.Counter("core.evict.payload_bytes"),
		wireBytes:     reg.Counter("core.evict.wire_bytes"),
		flushes:       reg.Counter("core.evict.flushes"),
		remoteEntries: reg.Counter("core.evict.remote_entries"),
		shipFailures:  reg.Counter("core.evict.ship_failure_reports"),
		remapped:      reg.Counter("core.evict.remapped_entries"),
		sealedRetains: reg.Counter("core.evict.sealed_retains"),
		leaseFenced:   reg.Counter("core.evict.lease_fenced"),
		inflight:      reg.Gauge("core.evict.inflight"),
		trace:         reg.Trace(),
	}
}

// Breakdown is the eviction-path time accounting reported in Fig 11c.
type Breakdown struct {
	// Bitmap is time spent scanning dirty bitmaps for segments.
	Bitmap simclock.Duration
	// Copy is time spent copying dirty lines into the RDMA-registered log.
	Copy simclock.Duration
	// RDMAWrite is NIC time for shipping the log.
	RDMAWrite simclock.Duration
	// AckWait is time stalled waiting for the receiver's acknowledgment
	// before reusing log space.
	AckWait simclock.Duration
}

// Total sums the slices.
func (b Breakdown) Total() simclock.Duration {
	return b.Bitmap + b.Copy + b.RDMAWrite + b.AckWait
}

// EvictStats counts eviction activity.
type EvictStats struct {
	PagesEvicted  uint64
	DirtyPages    uint64
	Segments      uint64
	LinesShipped  uint64
	PayloadBytes  uint64 // dirty bytes shipped (goodput numerator)
	WireBytes     uint64 // bytes on the wire including headers
	Flushes       uint64
	AcksReceived  uint64
	SilentEvicted uint64 // clean pages dropped without network traffic
	// RemoteEntries is the number of log entries the receivers reported
	// applying — it must equal Segments (per replica) when every flush
	// lands intact.
	RemoteEntries uint64
}

// add accumulates o into s (shard-stat merge).
func (s *EvictStats) add(o EvictStats) {
	s.PagesEvicted += o.PagesEvicted
	s.DirtyPages += o.DirtyPages
	s.Segments += o.Segments
	s.LinesShipped += o.LinesShipped
	s.PayloadBytes += o.PayloadBytes
	s.WireBytes += o.WireBytes
	s.Flushes += o.Flushes
	s.AcksReceived += o.AcksReceived
	s.SilentEvicted += o.SilentEvicted
	s.RemoteEntries += o.RemoteEntries
}

// payloadArena hands out stable payload slices for eviction-log entries
// without a per-segment heap allocation. copyIn appends into a chunk and
// returns an alias; the alias stays valid until reset. When demand
// outgrows the active chunk mid-cycle the chunk is retired (outstanding
// entries still alias it) and a larger one takes over; reset then
// coalesces to a single right-sized chunk, so a steady-state workload
// settles into zero allocations.
type payloadArena struct {
	buf   []byte   // active chunk; len(buf) is the used prefix
	old   [][]byte // retired chunks, pinned until reset
	spill int      // bytes handed out from retired chunks
	chunk int      // minimum size for fresh chunks
}

func newPayloadArena(chunk int) *payloadArena {
	if chunk < mem.PageSize {
		chunk = mem.PageSize
	}
	return &payloadArena{buf: make([]byte, 0, chunk), chunk: chunk}
}

// copyIn copies data into the arena and returns a stable alias, valid
// until reset.
func (a *payloadArena) copyIn(data []byte) []byte {
	if len(a.buf)+len(data) > cap(a.buf) {
		a.spill += len(a.buf)
		a.old = append(a.old, a.buf)
		n := a.chunk
		for n < len(data) {
			n *= 2
		}
		a.buf = make([]byte, 0, n)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+len(data)]
	p := a.buf[off : off+len(data) : off+len(data)]
	copy(p, data)
	return p
}

// reset recycles the arena. The caller guarantees no outstanding entry
// aliases it (every destination batch has been packed and shipped).
func (a *payloadArena) reset() {
	if len(a.old) == 0 {
		a.buf = a.buf[:0]
		return
	}
	// The cycle spilled past the active chunk: coalesce so the next one
	// fits in a single chunk and stops allocating.
	n := a.chunk
	for n < a.spill+len(a.buf) {
		n *= 2
	}
	a.buf = make([]byte, 0, n)
	a.old = nil
	a.spill = 0
}

// evictor is KLib's Eviction Handler (§4.4): it aggregates dirty cache
// lines — from any page, contiguous or not — into a ring-buffer log
// registered for RDMA, ships the log with a single write per destination
// node, and waits (asynchronously) for the Cache-line Log Receiver's
// acknowledgment before reusing the space. With replication enabled the
// log is shipped to every replica (§4.5).
//
// Concurrency (DESIGN.md §9): the append side — bitmap scan, arena copy,
// per-node entry buffering, pending-page tracking — is partitioned into
// power-of-two lock-striped shards keyed by the victim's page, so
// evictions issued concurrently from different FMem stripes never
// serialize against each other. The flush side is serialized by flushMu:
// a flush first *harvests* every shard's buffered entries into the
// per-node merge batches (one shard lock at a time), then packs and
// ships. Per-node byte counts are kept globally (atomic) so threshold
// semantics — flush node N once its buffered bytes cross the limit — are
// identical to the serial runtime's at any shard count.
//
// On the pipelined (TCP) transport the per-node ships fan out
// concurrently — one goroutine per destination, at most fanout in
// flight — so a replicated flush costs roughly the slowest replica's
// round trip instead of the sum. The simulated fabric keeps the serial
// path so its virtual-time NIC ordering stays byte-reproducible.
type evictor struct {
	rm *resourceManager

	shards    []evictShard
	shardMask uint64

	// logBuf is the serial-path pack scratch (the registered ring buffer
	// lives in the transport link), used under flushMu. Concurrent ships
	// pack into private per-batch buffers instead.
	logBuf []byte
	// shipVec is the serial path's single-segment scatter list handed to
	// shipLog, kept on the evictor (used under flushMu) so building it
	// allocates nothing in steady state.
	shipVec   [1][]byte
	threshold int

	// replicated enables §4.5 outage semantics: a flush skips unhealthy
	// destinations (entries retained, failure reported to the controller)
	// instead of erroring — the other replicas hold the data, and a
	// repair flip later remaps the retained entries. Unreplicated configs
	// keep wait-for-recovery semantics: the ship is attempted and its
	// error surfaces, because no other copy of the dirty lines exists.
	replicated bool
	// shipReports/remapped/sealedRetains/leaseFenced are fault-tolerance
	// counters (FailureStats).
	shipReports   atomic.Uint64
	remapped      atomic.Uint64
	sealedRetains atomic.Uint64
	leaseFenced   atomic.Uint64

	// nodeMu guards membership of nodes/order. order remembers
	// first-touch sequence so flushes walk the nodes deterministically —
	// map iteration order would let the per-node ackDue values pair up
	// differently with the NIC's serialized timeline from run to run.
	// The slice is append-only; a snapshot of its header taken under the
	// read lock stays valid afterwards. Batches are keyed by link key —
	// (node, incarnation) — so a node that crashes and rejoins gets a
	// fresh batch instead of inheriting the dead incarnation's retained
	// entries.
	nodeMu sync.RWMutex
	nodes  map[uint64]*nodeBatch
	order  []*nodeBatch

	// flushMu serializes harvest+pack+ship cycles and guards the
	// flush-side stats, breakdown, the stolen-pending scratch and every
	// nodeBatch's merge fields. Lock order: flushMu → shard.mu → nodeMu;
	// EvictPage's append phase releases its shard lock before taking
	// flushMu for a threshold flush, so no cycle exists.
	flushMu sync.Mutex
	// stolen records pending pages removed from the shards by a
	// full-flush harvest; restored on ship failure so the
	// write-before-read check stays conservative (see harvest comments).
	stolen []mem.Addr
	// stealing is nonzero while a steal-harvest-ship cycle is in flight:
	// from just before stealPendingLocked empties the pending sets until
	// the cycle's entries are shipped (or restored). FlushIfPending's
	// lock-free fast path is only sound when this is zero — a stolen
	// page is no longer *pending* but its entries may not have reached
	// remote memory yet, and fetching it in that window reads stale
	// bytes. Set and cleared under flushMu; read without it.
	stealing atomic.Int32
	fbreak   Breakdown  // RDMAWrite + AckWait slices
	fstats   EvictStats // WireBytes, Flushes, AcksReceived, RemoteEntries

	// moves records every repair flip, keyed by the dead member's link
	// key, for the life of the runtime. Each flush re-applies them
	// (applyMovesLocked) before shipping: an eviction that resolved its
	// placements just before the flip can append entries for the dead
	// member just after the remap pass ran, and without the re-apply
	// those dirty lines would sit retained forever. Once a move's source
	// and destination batches have both drained, the repaired replica has
	// caught up and settleMovesLocked clears its suspect flag so reads
	// may use it. Guarded by flushMu.
	moves map[uint64]replicaMove

	// fanout > 1 enables the concurrent ship path; it is forced to 1
	// when the rack's transport is not pipelined.
	fanout  int
	sem     chan struct{}
	results []shipResult

	m evictMetrics
}

// evictShard is one lock stripe of the append side. Everything a dirty
// eviction touches before the flush — scratch, arena, per-node entry
// buffers, the pending-page set and the append-side counters — lives
// here, so concurrent evictions of pages in different stripes share
// nothing.
type evictShard struct {
	mu sync.Mutex
	// arena backs this shard's entry payloads; it recycles once no
	// buffered or retained entry can alias it (see maybeRecycleLocked).
	arena *payloadArena
	// segScratch/plScratch are reused across EvictPage calls so the
	// steady-state eviction path performs no heap allocation.
	segScratch []mem.Segment
	plScratch  []placement
	// batches buffers this shard's entries per destination link key until
	// a flush harvests them.
	batches map[uint64]*shardBatch
	// pending tracks pages with buffered (unflushed) entries, for the
	// write-before-read ordering check on refetch.
	pending map[mem.Addr]struct{}
	// stats holds the append-side counters (PagesEvicted, DirtyPages,
	// SilentEvicted, Segments, LinesShipped, PayloadBytes).
	stats EvictStats
	// bitmapT/copyT are the append-side Breakdown slices.
	bitmapT, copyT simclock.Duration
}

// shardBatch is one shard's buffered entries for one destination node.
type shardBatch struct {
	entries []cllog.Entry
	bytes   int
}

// nodeBatch is the per-destination merge point: harvested entries from
// every shard accumulate here (in shard-index order, preserving per-page
// append order since a page maps to exactly one shard) until the pack
// and ship. All fields except link and pendingBytes are guarded by
// flushMu.
type nodeBatch struct {
	link nodeLink
	// pendingBytes counts the node's unshipped log bytes — buffered in
	// shards plus harvested-but-retained after a failed ship — and is
	// only decremented when a ship succeeds, so threshold checks keep
	// retrying a failed node exactly like the serial runtime did.
	pendingBytes atomic.Int64
	// entries/entryBytes are the harvested (and, after a failure,
	// retained) log content awaiting ship.
	entries    []cllog.Entry
	entryBytes int
	// packBuf is the private pack scratch for concurrent ships (each
	// in-flight node needs its own packed image). Lazily sized.
	packBuf []byte
	// shipVec is the batch's scatter list for shipLog — one segment of
	// packBuf — kept here so pipelined ships stay allocation-free.
	shipVec [1][]byte
	// ackDue is when the receiver's ack for the previous flush lands;
	// the next flush of this node's log half must wait for it.
	ackDue simclock.Duration
	// reported marks that this destination's outage has been reported to
	// the controller; reset on the next successful ship so a fresh outage
	// reports again. Guarded by flushMu.
	reported bool
}

// shipResult is one node's outcome from a concurrent fan-out, recorded
// by the shipping goroutine and folded into stats serially after the
// join (so accounting order never depends on goroutine scheduling).
type shipResult struct {
	packed  int // bytes on the wire; 0 means the batch was empty
	entries int
	remote  int // entries the receiver reported applying
	waited  simclock.Duration
	done    simclock.Duration
	ackDue  simclock.Duration
	err     error
	// flushes counts the wire logs the batch was shipped as (one in
	// steady state; a post-outage catch-up batch may chunk).
	flushes int
	// skipped marks a replicated destination whose ship was withheld (or
	// failed) with the entries retained; it must not count as drained.
	skipped bool
}

func newEvictor(rm *resourceManager, cfg Config) *evictor {
	fanout := cfg.EvictFanout
	if !rm.rack.pipelined() {
		fanout = 1
	}
	nshards := uint64(1)
	for int(nshards) < cfg.Shards {
		nshards <<= 1
	}
	e := &evictor{
		rm:         rm,
		shards:     make([]evictShard, nshards),
		shardMask:  nshards - 1,
		logBuf:     make([]byte, cfg.LogBytes),
		threshold:  cfg.FlushThreshold,
		replicated: cfg.Replicas > 1,
		nodes:      make(map[uint64]*nodeBatch),
		moves:      make(map[uint64]replicaMove),
		fanout:     fanout,
		m:          newEvictMetrics(cfg.Metrics),
	}
	for i := range e.shards {
		e.shards[i].arena = newPayloadArena(cfg.LogBytes)
		e.shards[i].batches = make(map[uint64]*shardBatch)
		e.shards[i].pending = make(map[mem.Addr]struct{})
	}
	if fanout > 1 {
		e.sem = make(chan struct{}, fanout)
	}
	return e
}

// shardFor returns the append stripe owning the page at base.
func (e *evictor) shardFor(base mem.Addr) *evictShard {
	return &e.shards[base.Page()&e.shardMask]
}

// orderSnapshot returns the current first-touch node sequence.
func (e *evictor) orderSnapshot() []*nodeBatch {
	e.nodeMu.RLock()
	order := e.order
	e.nodeMu.RUnlock()
	return order
}

// EvictPage handles one FMem victim: clean pages are dropped silently;
// dirty pages have exactly their dirty segments copied into the log.
// It returns the virtual time when the eviction-path work completes.
// Callers may invoke it concurrently (the FPGA does, one per FMem
// stripe); victims in different evict stripes append in parallel.
func (e *evictor) EvictPage(now simclock.Duration, v fpga.Victim) (simclock.Duration, error) {
	sh := e.shardFor(v.Base)
	sh.mu.Lock()
	sh.stats.PagesEvicted++
	if !v.Dirty.Any() {
		sh.stats.SilentEvicted++
		sh.mu.Unlock()
		e.m.silent.Inc()
		return now, nil
	}
	sh.stats.DirtyPages++
	sh.pending[v.Base] = struct{}{}

	// Bitmap scan: find the dirty segments.
	sh.segScratch = v.Dirty.AppendSegments(sh.segScratch[:0])
	segs := sh.segScratch
	sh.bitmapT += bitmapScanCost
	now += bitmapScanCost

	placements, err := e.rm.placementsInto(v.Base, sh.plScratch)
	sh.plScratch = placements[:0]
	if err != nil {
		sh.mu.Unlock()
		return now, err
	}
	var segsN, linesN, payloadN uint64
	for _, seg := range segs {
		off := seg.First * mem.CacheLineSize
		length := seg.N * mem.CacheLineSize
		data := v.Data[off : off+length]

		// Copy the segment into the registered log once; entries alias it.
		c := segmentCopyFixed + copyCost(length)
		sh.copyT += c
		now += c
		payload := sh.arena.copyIn(data)

		sh.stats.Segments++
		sh.stats.LinesShipped += uint64(seg.N)
		sh.stats.PayloadBytes += uint64(length)
		segsN++
		linesN += uint64(seg.N)
		payloadN += uint64(length)

		for _, pl := range placements {
			nb := e.batchFor(pl.link)
			sb := sh.batchFor(nb.link.key())
			sb.entries = append(sb.entries, cllog.Entry{
				RemoteOff: pl.remoteOff + uint64(off),
				Data:      payload,
			})
			nbytes := cllog.HeaderSize + length
			sb.bytes += nbytes
			nb.pendingBytes.Add(int64(nbytes))
		}
	}
	sh.mu.Unlock()
	e.m.dirtyPages.Inc()
	e.m.lines.Add(linesN)
	e.m.payloadBytes.Add(payloadN)

	// Flush any destination whose pending log crossed the threshold.
	full := false
	for _, nb := range e.orderSnapshot() {
		if nb.pendingBytes.Load() >= int64(e.threshold) {
			full = true
			break
		}
	}
	if !full {
		return now, nil
	}
	if e.fanout > 1 {
		e.flushMu.Lock()
		done, _, err := e.fanoutShipLocked(now, true)
		if err == nil {
			e.maybeRecycleLocked()
		}
		e.flushMu.Unlock()
		if err != nil {
			return now, err
		}
		return done, nil
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.applyMovesLocked()
	for _, nb := range e.orderSnapshot() {
		if nb.pendingBytes.Load() < int64(e.threshold) {
			continue
		}
		e.harvestNode(nb)
		if e.skipUnhealthyLocked(nb) {
			continue
		}
		now, err = e.flushNodeLocked(now, nb)
		if err != nil {
			if e.retainAfterErrLocked(nb, err) {
				continue
			}
			return now, err
		}
	}
	e.maybeRecycleLocked()
	return now, nil
}

// skipUnhealthyLocked reports whether a replicated flush should withhold
// this destination's ship: the link is unhealthy, so the attempt would
// fail anyway — the entries stay retained (§4.5), the outage is reported
// to the controller once, and a repair flip later remaps them. Always
// false for unreplicated configs: with no other copy of the dirty lines,
// the ship must be attempted and its error surfaced. Caller holds flushMu.
func (e *evictor) skipUnhealthyLocked(nb *nodeBatch) bool {
	if !e.replicated || len(nb.entries) == 0 || nb.link.healthy() {
		return false
	}
	e.reportShipFailureLocked(nb)
	return true
}

// retainAfterErrLocked handles a ship attempt that failed. Four cases:
//
//   - The destination's extent is sealed for migration: retain even
//     without replication — the flip is imminent, and the retained
//     entries rebase onto the migration target at the next placement
//     refresh. noteSealed fences reads of the (now behind) sealed copy
//     and latches the fetch-path seal notice; a seal is not an outage,
//     so no failure report.
//   - The ship was rejected by a lease fence (writer-lease takeover):
//     surface the error — the successor owns the region and the zombie
//     writer's bytes must not be retried or retained.
//   - A replicated outage: entries stay retained and the flush
//     continues (the outage is reported once).
//   - An unreplicated failure: the caller must surface the error — no
//     other copy of the dirty lines exists.
//
// Caller holds flushMu.
func (e *evictor) retainAfterErrLocked(nb *nodeBatch, err error) bool {
	if cluster.IsSealedErr(err) {
		e.rm.noteSealed(nb.link.key())
		e.sealedRetains.Add(1)
		e.m.sealedRetains.Inc()
		return true
	}
	if cluster.IsLeaseFencedErr(err) {
		// A lease fence rejected the whole ship: this runtime's writer
		// lease was taken over and a successor owns the region. The node is
		// healthy and retrying would fail forever against the fence, so the
		// error surfaces to the application instead of being retained — the
		// zombie writer must find out it was fenced, not buffer silently.
		e.leaseFenced.Add(1)
		e.m.leaseFenced.Inc()
		return false
	}
	if !e.replicated {
		return false
	}
	e.reportShipFailureLocked(nb)
	return true
}

// reportShipFailureLocked tells the controller this destination's ships
// are failing, once per outage. Only meaningful with replication: an
// unreplicated outage is §4.5's wait-for-recovery case and must not get
// the node expelled. Caller holds flushMu.
func (e *evictor) reportShipFailureLocked(nb *nodeBatch) {
	if nb.reported {
		return
	}
	nb.reported = true
	e.shipReports.Add(1)
	e.m.shipFailures.Inc()
	_ = e.rm.rack.reportShipFailure(nb.link.id())
}

// batchFor finds or creates the global merge batch for a destination
// link. Called with a shard lock held (shard.mu → nodeMu).
func (e *evictor) batchFor(l nodeLink) *nodeBatch {
	k := l.key()
	e.nodeMu.RLock()
	nb := e.nodes[k]
	e.nodeMu.RUnlock()
	if nb != nil {
		return nb
	}
	e.nodeMu.Lock()
	defer e.nodeMu.Unlock()
	if nb := e.nodes[k]; nb != nil {
		return nb
	}
	nb = &nodeBatch{link: l, entries: cllog.GetEntries()}
	e.nodes[k] = nb
	e.order = append(e.order, nb)
	return nb
}

// batchFor finds or creates the shard's buffer for a destination link
// key. Caller holds sh.mu.
func (sh *evictShard) batchFor(key uint64) *shardBatch {
	sb := sh.batches[key]
	if sb == nil {
		sb = &shardBatch{entries: cllog.GetEntries()}
		sh.batches[key] = sb
	}
	return sb
}

// harvestNode steals every shard's buffered entries for nb into the
// merge batch, walking shards in index order (per-page entry order is
// preserved because a page always lands in the same shard). Caller holds
// flushMu. pendingBytes is left untouched: it only shrinks when the ship
// succeeds, so a failed ship keeps the node over threshold and the next
// eviction retries it — same retry behavior as the serial runtime.
func (e *evictor) harvestNode(nb *nodeBatch) {
	k := nb.link.key()
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		if sb := sh.batches[k]; sb != nil && len(sb.entries) > 0 {
			nb.entries = append(nb.entries, sb.entries...)
			nb.entryBytes += sb.bytes
			sb.entries = sb.entries[:0]
			sb.bytes = 0
		}
		sh.mu.Unlock()
	}
}

// stealPendingLocked atomically (per shard) moves every pending page
// into the stolen scratch as part of a full-flush harvest. Pages
// appended *after* a shard's steal stay pending — so a later refetch of
// such a page still triggers its write-before-read flush even though
// this flush cycle won't cover those entries. Caller holds flushMu; on
// ship failure restoreStolenLocked puts everything back (a redundant
// future flush is harmless, a skipped one is stale-read corruption).
func (e *evictor) stealPendingLocked() {
	e.stealing.Store(1)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for a := range sh.pending {
			e.stolen = append(e.stolen, a)
		}
		clear(sh.pending)
		sh.mu.Unlock()
	}
}

// restoreStolenLocked re-marks the stolen pages pending after a failed
// full flush. Caller holds flushMu.
func (e *evictor) restoreStolenLocked() {
	for _, a := range e.stolen {
		sh := e.shardFor(a)
		sh.mu.Lock()
		sh.pending[a] = struct{}{}
		sh.mu.Unlock()
	}
	e.stolen = e.stolen[:0]
	// The pages are pending again, so the refetch fast path is sound.
	e.stealing.Store(0)
}

// maybeRecycleLocked resets shard arenas once no entry can alias them: a
// payload alias lives either in a shard's unharvested batch (that
// shard's arena) or in a node's harvested/retained merge batch (some
// shard's arena — untracked, so any retained entry blocks every reset).
// A batch only empties after its ship completed — which in turn waited
// out the node's previous ack — so by construction the reset never
// reclaims bytes a receiver has not yet made durable. Caller holds
// flushMu.
func (e *evictor) maybeRecycleLocked() {
	for _, nb := range e.orderSnapshot() {
		if len(nb.entries) > 0 {
			return
		}
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		empty := true
		for _, sb := range sh.batches {
			if len(sb.entries) > 0 {
				empty = false
				break
			}
		}
		if empty {
			sh.arena.reset()
		}
		sh.mu.Unlock()
	}
}

// FlushIfPending ships all buffered entries when the page at base has
// unflushed eviction data — the write-before-read ordering a refetch
// requires. It is a no-op otherwise.
func (e *evictor) FlushIfPending(now simclock.Duration, base mem.Addr) (simclock.Duration, error) {
	sh := e.shardFor(base)
	sh.mu.Lock()
	_, ok := sh.pending[base]
	sh.mu.Unlock()
	// Fast path: no buffered entries for this page AND no steal cycle in
	// flight. The second condition is load-bearing: a concurrent full
	// flush empties the pending sets *before* shipping, so "not pending"
	// alone does not mean the page's entries have reached remote memory
	// — fetching in that window would read stale bytes. (The shard lock
	// above orders this page's own EvictPage before the loads, and the
	// stealer writes e.stealing before taking any shard lock, so a steal
	// that cleared this page is visible here.) On the simulated fabric
	// every remote op serializes through one NIC model and the race
	// cannot fire; over real TCP links fetches overlap flushes.
	if !ok && e.stealing.Load() == 0 {
		return now, nil
	}
	// Ship the batches without draining acks; the ack only gates log
	// reuse, while the data itself is in remote memory once the RDMA
	// write completes.
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	// Re-check under flushMu: the steal cycle we raced with has settled
	// (shipped, or restored the pages to pending).
	sh.mu.Lock()
	_, ok = sh.pending[base]
	sh.mu.Unlock()
	if !ok {
		return now, nil
	}
	e.applyMovesLocked()
	e.stealPendingLocked()
	retained := false
	if e.fanout > 1 {
		done, skipped, err := e.fanoutShipLocked(now, false)
		if err != nil {
			e.restoreStolenLocked()
			return now, err
		}
		retained = skipped
		now = done
	} else {
		for _, nb := range e.orderSnapshot() {
			e.harvestNode(nb)
			if e.skipUnhealthyLocked(nb) {
				retained = true
				continue
			}
			var err error
			now, err = e.flushNodeLocked(now, nb)
			if err != nil {
				if e.retainAfterErrLocked(nb, err) {
					retained = true
					continue
				}
				e.restoreStolenLocked()
				return now, err
			}
		}
	}
	e.settleStolenLocked(retained)
	e.settleMovesLocked()
	e.maybeRecycleLocked()
	return now, nil
}

// settleStolenLocked finishes a steal cycle: when any destination's
// entries were retained (dead replica), the stolen pages go back to
// pending so a refetch still triggers its write-before-read flush;
// otherwise the cycle fully drained and the scratch is dropped. Caller
// holds flushMu.
func (e *evictor) settleStolenLocked(retained bool) {
	if retained {
		e.restoreStolenLocked()
		return
	}
	e.stolen = e.stolen[:0]
	// The cycle's entries reached remote memory; refetches may trust the
	// (now empty) pending sets again.
	e.stealing.Store(0)
}

// Flush ships every pending batch and returns when the eviction path is
// drained (all acks received).
func (e *evictor) Flush(now simclock.Duration) (simclock.Duration, error) {
	if e.fanout > 1 {
		return e.flushParallel(now)
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.applyMovesLocked()
	e.stealPendingLocked()
	var latest simclock.Duration = now
	retained := false
	for _, nb := range e.orderSnapshot() {
		e.harvestNode(nb)
		if e.skipUnhealthyLocked(nb) {
			// Dead replica: entries retained, no ack to drain. The other
			// replicas hold the data, so the drain still succeeds (§4.5).
			retained = true
			continue
		}
		done, err := e.flushNodeLocked(now, nb)
		if err != nil {
			if e.retainAfterErrLocked(nb, err) {
				retained = true
				continue
			}
			e.restoreStolenLocked()
			return now, err
		}
		// Drain: wait for this node's ack.
		if nb.ackDue > done {
			e.fbreak.AckWait += nb.ackDue - done
			done = nb.ackDue
		}
		e.fstats.AcksReceived++
		if done > latest {
			latest = done
		}
	}
	e.settleStolenLocked(retained)
	e.settleMovesLocked()
	e.maybeRecycleLocked()
	return latest, nil
}

// flushParallel is Flush over the concurrent fan-out: all ships overlap,
// then every node's ack is drained.
func (e *evictor) flushParallel(now simclock.Duration) (simclock.Duration, error) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.stealPendingLocked()
	latest, retained, err := e.fanoutShipLocked(now, false)
	if err != nil {
		e.restoreStolenLocked()
		return now, err
	}
	for i, nb := range e.orderSnapshot() {
		if e.results[i].skipped {
			continue
		}
		done := e.results[i].done
		if e.results[i].packed == 0 {
			done = now
		}
		if nb.ackDue > done {
			e.fbreak.AckWait += nb.ackDue - done
			done = nb.ackDue
		}
		e.fstats.AcksReceived++
		if done > latest {
			latest = done
		}
	}
	e.settleStolenLocked(retained)
	e.settleMovesLocked()
	e.maybeRecycleLocked()
	return latest, nil
}

// fanoutShipLocked harvests and ships batches concurrently — one
// goroutine per destination node, at most e.fanout on the wire at once —
// and folds the results into stats serially in first-touch order after
// the join. onlyFull restricts the cycle to nodes at or past the flush
// threshold (threshold-triggered flushes); otherwise every node with
// buffered entries ships. It returns the completion time of the slowest
// ship and whether any replicated destination's entries were retained
// (unhealthy skip or failed ship). Per-node failures are joined so one
// dead replica does not mask another's error; with replication they are
// absorbed into retention instead. Caller holds flushMu.
func (e *evictor) fanoutShipLocked(now simclock.Duration, onlyFull bool) (simclock.Duration, bool, error) {
	e.applyMovesLocked()
	order := e.orderSnapshot()
	for _, nb := range order {
		if onlyFull && nb.pendingBytes.Load() < int64(e.threshold) {
			continue
		}
		e.harvestNode(nb)
	}
	if cap(e.results) < len(order) {
		e.results = make([]shipResult, len(order))
	}
	e.results = e.results[:len(order)]
	var wg sync.WaitGroup
	for i, nb := range order {
		e.results[i] = shipResult{}
		if len(nb.entries) == 0 {
			continue
		}
		if e.skipUnhealthyLocked(nb) {
			e.results[i].skipped = true
			continue
		}
		wg.Add(1)
		go func(nb *nodeBatch, res *shipResult) {
			defer wg.Done()
			e.sem <- struct{}{}
			defer func() { <-e.sem }()
			if nb.packBuf == nil {
				nb.packBuf = make([]byte, len(e.logBuf))
			}
			e.m.inflight.Inc()
			cs, err := shipChunks(now, nb.link, nb.entries, nb.packBuf, &nb.shipVec, nb.ackDue)
			e.m.inflight.Dec()
			if err != nil {
				res.err = err
				return
			}
			res.packed, res.entries, res.remote = cs.packed, len(nb.entries), cs.remote
			res.waited, res.flushes = cs.waited, cs.flushes
			res.done, res.ackDue = cs.done, cs.ackDue
		}(nb, &e.results[i])
	}
	wg.Wait()

	latest := now
	skipped := false
	var errs []error
	for i, nb := range order {
		res := &e.results[i]
		if res.skipped {
			skipped = true
			continue
		}
		if res.err != nil {
			if e.retainAfterErrLocked(nb, res.err) {
				res.skipped = true
				skipped = true
				continue
			}
			errs = append(errs, res.err)
			continue
		}
		if res.packed == 0 {
			continue
		}
		e.fbreak.AckWait += res.waited
		e.fbreak.RDMAWrite += res.done - (now + res.waited)
		e.fstats.WireBytes += uint64(res.packed)
		e.fstats.Flushes += uint64(res.flushes)
		e.fstats.RemoteEntries += uint64(res.remote)
		e.m.wireBytes.Add(uint64(res.packed))
		e.m.flushes.Add(uint64(res.flushes))
		e.m.remoteEntries.Add(uint64(res.remote))
		if e.m.trace != nil {
			e.m.trace.EmitAt(res.done, "core.evict.flush",
				fmt.Sprintf("node=%d entries=%d bytes=%d", nb.link.id(), res.entries, res.packed))
		}
		nb.ackDue = res.ackDue
		nb.reported = false
		nb.pendingBytes.Add(-int64(nb.entryBytes))
		nb.entryBytes = 0
		nb.entries = nb.entries[:0]
		if res.done > latest {
			latest = res.done
		}
	}
	if len(errs) > 0 {
		return latest, skipped, errors.Join(errs...)
	}
	return latest, skipped, nil
}

// flushNodeLocked packs and ships one node's harvested entries (serial
// path). Caller holds flushMu; on error the entries stay in the merge
// batch (and pendingBytes stays credited), so the next flush retries
// them ahead of newer log content.
func (e *evictor) flushNodeLocked(now simclock.Duration, nb *nodeBatch) (simclock.Duration, error) {
	if len(nb.entries) == 0 {
		return now, nil
	}
	before := now
	cs, err := shipChunks(now, nb.link, nb.entries, e.logBuf, &e.shipVec, nb.ackDue)
	if err != nil {
		return now, err
	}
	e.fbreak.AckWait += cs.waited
	e.fbreak.RDMAWrite += cs.done - before - cs.waited
	e.fstats.WireBytes += uint64(cs.packed)
	e.fstats.Flushes += uint64(cs.flushes)
	e.fstats.RemoteEntries += uint64(cs.remote)
	e.m.wireBytes.Add(uint64(cs.packed))
	e.m.flushes.Add(uint64(cs.flushes))
	e.m.remoteEntries.Add(uint64(cs.remote))
	if e.m.trace != nil {
		e.m.trace.EmitAt(cs.done, "core.evict.flush",
			fmt.Sprintf("node=%d entries=%d bytes=%d", nb.link.id(), len(nb.entries), cs.packed))
	}
	nb.ackDue = cs.ackDue
	nb.reported = false
	nb.pendingBytes.Add(-int64(nb.entryBytes))
	nb.entryBytes = 0
	nb.entries = nb.entries[:0]
	return cs.done, nil
}

// chunkShip is the outcome of shipping one merge batch, possibly split
// across several wire logs.
type chunkShip struct {
	done    simclock.Duration // completion of the last chunk's write
	ackDue  simclock.Duration // ack gate for the buffer's next reuse
	waited  simclock.Duration // total time spent waiting out prior acks
	packed  int               // total bytes on the wire
	remote  int               // entries the receiver reported applying
	flushes int               // wire logs shipped
}

// shipChunks packs entries and ships them to l, splitting the batch
// across several wire logs when it exceeds the pack buffer. A steady-
// state batch always fits — the flush threshold sits far below the log
// budget — but entries retained across an outage are bounded by the
// outage's length, not the budget, and the post-repair catch-up batch
// must chunk rather than wedge: a batch that can never pack would retry
// (and fail) forever, leaving the repaired replica permanently behind.
// Chunks ship in entry order; each waits out the previous chunk's ack
// before reusing the buffer (the ring's double-buffer-half rule). On a
// mid-batch error the caller retains the whole batch; re-shipping the
// already-applied prefix is idempotent (same lines, same order).
func shipChunks(now simclock.Duration, l nodeLink, entries []cllog.Entry, buf []byte, vec *[1][]byte, prevAck simclock.Duration) (chunkShip, error) {
	cs := chunkShip{done: now, ackDue: prevAck}
	for len(entries) > 0 {
		n, size := 0, 8 // terminator
		for n < len(entries) {
			esz := cllog.HeaderSize + len(entries[n].Data)
			if size+esz > len(buf) {
				break
			}
			size += esz
			n++
		}
		if n == 0 {
			return cs, fmt.Errorf("core: eviction entry payload %d exceeds log buffer %d",
				len(entries[0].Data), len(buf))
		}
		if cs.ackDue > now {
			cs.waited += cs.ackDue - now
			now = cs.ackDue
		}
		packed, err := cllog.Pack(entries[:n], buf)
		if err != nil {
			return cs, fmt.Errorf("core: packing eviction log: %w", err)
		}
		vec[0] = buf[:packed]
		done, ackDue, remote, err := l.shipLog(now, vec[:])
		if err != nil {
			return cs, fmt.Errorf("core: shipping eviction log: %w", err)
		}
		cs.packed += packed
		cs.remote += remote
		cs.flushes++
		cs.done, cs.ackDue = done, ackDue
		now = done
		entries = entries[n:]
	}
	return cs, nil
}

// remap rebases retained eviction entries after a placement refresh:
// every buffered entry destined for a replaced (node, incarnation) whose
// pool offset falls inside the old member's extent moves to the repaired
// member's batch, rebased onto the new extent. Entries move in buffered
// order and a page's entries all live in one shard, so per-page replay
// order — oldest line version first — is preserved; replay at the new
// node is then an idempotent overwrite like any other ship. Returns the
// number of entries moved.
func (e *evictor) remap(moves []replicaMove) int {
	if len(moves) == 0 {
		return 0
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	for _, mv := range moves {
		e.moves[mv.oldKey] = mv
	}
	return e.applyMovesLocked()
}

// applyMovesLocked rebases every buffered or retained entry still keyed
// by a flipped-out member onto its replacement. Runs at the top of each
// flush cycle (cheap no-op when nothing matches), so late entries from
// evictions that raced the flip are caught before the ship. Caller holds
// flushMu.
func (e *evictor) applyMovesLocked() int {
	if len(e.moves) == 0 {
		return 0
	}
	moved := 0
	for _, mv := range e.moves {
		e.nodeMu.RLock()
		src := e.nodes[mv.oldKey]
		e.nodeMu.RUnlock()
		dst := e.batchFor(mv.newLink)
		if src == nil || src == dst {
			continue
		}
		// Merge-batch entries (harvested/retained) first — they are older
		// than anything still buffered in the shards.
		moved += moveEntries(&src.entries, &dst.entries, mv, func(n int) {
			src.entryBytes -= n
			src.pendingBytes.Add(-int64(n))
			dst.entryBytes += n
			dst.pendingBytes.Add(int64(n))
		})
		// Then each shard's buffered entries, staying within the shard so
		// arena-recycle tracking keeps working.
		for i := range e.shards {
			sh := &e.shards[i]
			sh.mu.Lock()
			if sb := sh.batches[mv.oldKey]; sb != nil && len(sb.entries) > 0 {
				dsb := sh.batchFor(dst.link.key())
				moved += moveEntries(&sb.entries, &dsb.entries, mv, func(n int) {
					sb.bytes -= n
					src.pendingBytes.Add(-int64(n))
					dsb.bytes += n
					dst.pendingBytes.Add(int64(n))
				})
			}
			sh.mu.Unlock()
		}
	}
	if moved > 0 {
		e.remapped.Add(uint64(moved))
		e.m.remapped.Add(uint64(moved))
	}
	return moved
}

// settleMovesLocked clears the suspect flag of every repaired replica
// whose catch-up has drained: no entries remain keyed by the dead member
// (pendingBytes covers shard-buffered and retained alike) and the
// replacement's merge batch — where the remapped entries were rebased —
// has shipped. Fresh entries buffered for the replacement after the flip
// don't gate readability: they belong to pages still marked pending, and
// the ordinary write-before-read flush covers those. Runs after each
// flush cycle; clearing an already-clear key is a no-op. Caller holds
// flushMu.
func (e *evictor) settleMovesLocked() {
	for oldKey, mv := range e.moves {
		e.nodeMu.RLock()
		src := e.nodes[oldKey]
		dst := e.nodes[mv.newLink.key()]
		e.nodeMu.RUnlock()
		if src != nil && (len(src.entries) > 0 || src.pendingBytes.Load() != 0) {
			continue
		}
		if dst != nil && len(dst.entries) > 0 {
			continue
		}
		e.rm.clearSuspect(mv.newLink.key())
		// A migration move retires once settled: its source (node,
		// incarnation) is still alive and the controller will reuse the
		// vacated pool window for a fresh carve — keeping the move would
		// silently rewrite entries bound for the window's next tenant.
		// Repair moves stay for the life of the runtime: the dead
		// incarnation's key can never carry traffic again, and late
		// evictions that resolved placements before the flip must keep
		// rebasing onto the replacement.
		if mv.retire {
			delete(e.moves, oldKey)
		}
	}
}

// moveEntries filters *srcEntries in place, rebasing every entry inside
// the move's old-extent window onto the new extent and appending it to
// *dstEntries. account is called with each moved entry's log bytes.
func moveEntries(srcEntries, dstEntries *[]cllog.Entry, mv replicaMove, account func(n int)) int {
	moved := 0
	kept := (*srcEntries)[:0]
	for _, en := range *srcEntries {
		if en.RemoteOff < mv.oldOff || en.RemoteOff >= mv.oldOff+mv.size {
			kept = append(kept, en)
			continue
		}
		n := cllog.HeaderSize + len(en.Data)
		en.RemoteOff = mv.newOff + (en.RemoteOff - mv.oldOff)
		*dstEntries = append(*dstEntries, en)
		account(n)
		moved++
	}
	*srcEntries = kept
	return moved
}

// nodePending is one destination node's unshipped eviction backlog.
type nodePending struct {
	node  int
	bytes uint64
}

// pendingLoads returns each destination node's unshipped log bytes
// (buffered in shards plus harvested-but-retained), aggregated across
// incarnations, appended into a caller-owned scratch. Sync feeds this to
// the controller's load map as the compute-side pressure signal.
func (e *evictor) pendingLoads(dst []nodePending) []nodePending {
	dst = dst[:0]
	for _, nb := range e.orderSnapshot() {
		p := nb.pendingBytes.Load()
		if p <= 0 {
			continue
		}
		id := nb.link.id()
		found := false
		for i := range dst {
			if dst[i].node == id {
				dst[i].bytes += uint64(p)
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, nodePending{node: id, bytes: uint64(p)})
		}
	}
	return dst
}

// totalPendingBytes sums every destination's unshipped log bytes — the
// write-path admission-control signal.
func (e *evictor) totalPendingBytes() uint64 {
	var total int64
	for _, nb := range e.orderSnapshot() {
		if p := nb.pendingBytes.Load(); p > 0 {
			total += p
		}
	}
	return uint64(total)
}

// release returns pooled resources at runtime shutdown. The evictor must
// not be used afterwards.
func (e *evictor) release() {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.nodeMu.Lock()
	for _, nb := range e.order {
		cllog.PutEntries(nb.entries)
		nb.entries = nil
	}
	e.order = nil
	clear(e.nodes)
	e.nodeMu.Unlock()
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, sb := range sh.batches {
			cllog.PutEntries(sb.entries)
			sb.entries = nil
		}
		clear(sh.batches)
		sh.mu.Unlock()
	}
}

// Breakdown returns the accumulated Fig 11c accounting.
func (e *evictor) Breakdown() Breakdown {
	e.flushMu.Lock()
	out := e.fbreak
	e.flushMu.Unlock()
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		out.Bitmap += sh.bitmapT
		out.Copy += sh.copyT
		sh.mu.Unlock()
	}
	return out
}

// Stats returns eviction counters: the shard-local append-side counts
// summed with the flush-side counts.
func (e *evictor) Stats() EvictStats {
	e.flushMu.Lock()
	out := e.fstats
	e.flushMu.Unlock()
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		out.add(sh.stats)
		sh.mu.Unlock()
	}
	return out
}
