package core

import (
	"errors"
	"fmt"
	"sync"

	"kona/internal/cllog"
	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// evictMetrics mirrors EvictStats into a registry as the eviction path
// runs, plus batch-flush trace events. All handles are nil (no-op) when
// telemetry is disabled.
type evictMetrics struct {
	dirtyPages, silent, lines, payloadBytes *telemetry.Counter
	wireBytes, flushes, remoteEntries       *telemetry.Counter
	// inflight tracks ships currently on the wire during a concurrent
	// fan-out (always 0..1 on the serial path).
	inflight *telemetry.Gauge
	trace    *telemetry.Trace
}

func newEvictMetrics(reg *telemetry.Registry) evictMetrics {
	return evictMetrics{
		dirtyPages:    reg.Counter("core.evict.dirty_pages"),
		silent:        reg.Counter("core.evict.silent"),
		lines:         reg.Counter("core.evict.lines_shipped"),
		payloadBytes:  reg.Counter("core.evict.payload_bytes"),
		wireBytes:     reg.Counter("core.evict.wire_bytes"),
		flushes:       reg.Counter("core.evict.flushes"),
		remoteEntries: reg.Counter("core.evict.remote_entries"),
		inflight:      reg.Gauge("core.evict.inflight"),
		trace:         reg.Trace(),
	}
}

// Breakdown is the eviction-path time accounting reported in Fig 11c.
type Breakdown struct {
	// Bitmap is time spent scanning dirty bitmaps for segments.
	Bitmap simclock.Duration
	// Copy is time spent copying dirty lines into the RDMA-registered log.
	Copy simclock.Duration
	// RDMAWrite is NIC time for shipping the log.
	RDMAWrite simclock.Duration
	// AckWait is time stalled waiting for the receiver's acknowledgment
	// before reusing log space.
	AckWait simclock.Duration
}

// Total sums the slices.
func (b Breakdown) Total() simclock.Duration {
	return b.Bitmap + b.Copy + b.RDMAWrite + b.AckWait
}

// EvictStats counts eviction activity.
type EvictStats struct {
	PagesEvicted  uint64
	DirtyPages    uint64
	Segments      uint64
	LinesShipped  uint64
	PayloadBytes  uint64 // dirty bytes shipped (goodput numerator)
	WireBytes     uint64 // bytes on the wire including headers
	Flushes       uint64
	AcksReceived  uint64
	SilentEvicted uint64 // clean pages dropped without network traffic
	// RemoteEntries is the number of log entries the receivers reported
	// applying — it must equal Segments (per replica) when every flush
	// lands intact.
	RemoteEntries uint64
}

// payloadArena hands out stable payload slices for eviction-log entries
// without a per-segment heap allocation. copyIn appends into a chunk and
// returns an alias; the alias stays valid until reset. When demand
// outgrows the active chunk mid-cycle the chunk is retired (outstanding
// entries still alias it) and a larger one takes over; reset then
// coalesces to a single right-sized chunk, so a steady-state workload
// settles into zero allocations.
type payloadArena struct {
	buf   []byte   // active chunk; len(buf) is the used prefix
	old   [][]byte // retired chunks, pinned until reset
	spill int      // bytes handed out from retired chunks
	chunk int      // minimum size for fresh chunks
}

func newPayloadArena(chunk int) *payloadArena {
	if chunk < mem.PageSize {
		chunk = mem.PageSize
	}
	return &payloadArena{buf: make([]byte, 0, chunk), chunk: chunk}
}

// copyIn copies data into the arena and returns a stable alias, valid
// until reset.
func (a *payloadArena) copyIn(data []byte) []byte {
	if len(a.buf)+len(data) > cap(a.buf) {
		a.spill += len(a.buf)
		a.old = append(a.old, a.buf)
		n := a.chunk
		for n < len(data) {
			n *= 2
		}
		a.buf = make([]byte, 0, n)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+len(data)]
	p := a.buf[off : off+len(data) : off+len(data)]
	copy(p, data)
	return p
}

// reset recycles the arena. The caller guarantees no outstanding entry
// aliases it (every destination batch has been packed and shipped).
func (a *payloadArena) reset() {
	if len(a.old) == 0 {
		a.buf = a.buf[:0]
		return
	}
	// The cycle spilled past the active chunk: coalesce so the next one
	// fits in a single chunk and stops allocating.
	n := a.chunk
	for n < a.spill+len(a.buf) {
		n *= 2
	}
	a.buf = make([]byte, 0, n)
	a.old = nil
	a.spill = 0
}

// evictor is KLib's Eviction Handler (§4.4): it aggregates dirty cache
// lines — from any page, contiguous or not — into a ring-buffer log
// registered for RDMA, ships the log with a single write per destination
// node, and waits (asynchronously) for the Cache-line Log Receiver's
// acknowledgment before reusing the space. With replication enabled the
// log is shipped to every replica (§4.5).
//
// On the pipelined (TCP) transport the per-node ships fan out
// concurrently — one goroutine per destination, at most fanout in
// flight — so a replicated flush costs roughly the slowest replica's
// round trip instead of the sum. The simulated fabric keeps the serial
// path so its virtual-time NIC ordering stays byte-reproducible.
type evictor struct {
	rm *resourceManager

	// logBuf is the serial-path pack scratch (the registered ring buffer
	// lives in the transport link). Concurrent ships pack into private
	// per-batch buffers instead.
	logBuf    []byte
	threshold int

	// arena backs every entry payload; it recycles once all batches have
	// drained (each node's previous ack honored first — see flush paths).
	arena *payloadArena
	// segScratch/plScratch are reused across EvictPage calls so the
	// steady-state eviction path performs no heap allocation.
	segScratch []mem.Segment
	plScratch  []placement

	// perNode accumulates entries destined for each memory node; order
	// remembers first-touch sequence so flushes walk the nodes
	// deterministically — map iteration order would let the per-node
	// ackDue values pair up differently with the NIC's serialized
	// timeline from run to run.
	perNode map[int]*nodeBatch
	order   []*nodeBatch
	// pending tracks pages with buffered (unflushed) entries, for the
	// write-before-read ordering check on refetch.
	pending map[mem.Addr]struct{}

	// fanout > 1 enables the concurrent ship path; it is forced to 1
	// when the rack's transport is not pipelined.
	fanout  int
	sem     chan struct{}
	results []shipResult

	breakdown Breakdown
	stats     EvictStats
	m         evictMetrics
}

// nodeBatch is the pending log content for one destination node.
type nodeBatch struct {
	link    nodeLink
	entries []cllog.Entry
	bytes   int
	// packBuf is the private pack scratch for concurrent ships (each
	// in-flight node needs its own packed image). Lazily sized.
	packBuf []byte
	// ackDue is when the receiver's ack for the previous flush lands;
	// the next flush of this node's log half must wait for it.
	ackDue simclock.Duration
}

// shipResult is one node's outcome from a concurrent fan-out, recorded
// by the shipping goroutine and folded into stats serially after the
// join (so accounting order never depends on goroutine scheduling).
type shipResult struct {
	packed  int // bytes on the wire; 0 means the batch was empty
	entries int
	remote  int // entries the receiver reported applying
	waited  simclock.Duration
	done    simclock.Duration
	ackDue  simclock.Duration
	err     error
}

func newEvictor(rm *resourceManager, cfg Config) *evictor {
	fanout := cfg.EvictFanout
	if !rm.rack.pipelined() {
		fanout = 1
	}
	e := &evictor{
		rm:        rm,
		logBuf:    make([]byte, cfg.LogBytes),
		threshold: cfg.FlushThreshold,
		arena:     newPayloadArena(cfg.LogBytes),
		perNode:   make(map[int]*nodeBatch),
		pending:   make(map[mem.Addr]struct{}),
		fanout:    fanout,
		m:         newEvictMetrics(cfg.Metrics),
	}
	if fanout > 1 {
		e.sem = make(chan struct{}, fanout)
	}
	return e
}

// EvictPage handles one FMem victim: clean pages are dropped silently;
// dirty pages have exactly their dirty segments copied into the log.
// It returns the virtual time when the eviction-path work completes.
func (e *evictor) EvictPage(now simclock.Duration, v fpga.Victim) (simclock.Duration, error) {
	e.stats.PagesEvicted++
	if !v.Dirty.Any() {
		e.stats.SilentEvicted++
		e.m.silent.Inc()
		return now, nil
	}
	e.stats.DirtyPages++
	e.m.dirtyPages.Inc()
	e.pending[v.Base] = struct{}{}

	// Bitmap scan: find the dirty segments.
	e.segScratch = v.Dirty.AppendSegments(e.segScratch[:0])
	segs := e.segScratch
	e.breakdown.Bitmap += bitmapScanCost
	now += bitmapScanCost

	placements, err := e.rm.placementsInto(v.Base, e.plScratch)
	e.plScratch = placements[:0]
	if err != nil {
		return now, err
	}
	for _, seg := range segs {
		off := seg.First * mem.CacheLineSize
		length := seg.N * mem.CacheLineSize
		data := v.Data[off : off+length]

		// Copy the segment into the registered log once; entries alias it.
		c := segmentCopyFixed + copyCost(length)
		e.breakdown.Copy += c
		now += c
		payload := e.arena.copyIn(data)

		e.stats.Segments++
		e.stats.LinesShipped += uint64(seg.N)
		e.stats.PayloadBytes += uint64(length)
		e.m.lines.Add(uint64(seg.N))
		e.m.payloadBytes.Add(uint64(length))

		for _, pl := range placements {
			nb := e.batchFor(pl)
			nb.entries = append(nb.entries, cllog.Entry{
				RemoteOff: pl.remoteOff + uint64(off),
				Data:      payload,
			})
			nb.bytes += cllog.HeaderSize + length
		}
	}
	// Flush any destination whose pending log crossed the threshold.
	if e.fanout > 1 {
		full := false
		for _, nb := range e.order {
			if nb.bytes >= e.threshold {
				full = true
				break
			}
		}
		if full {
			done, err := e.fanoutShip(now, true)
			if err != nil {
				return now, err
			}
			now = done
		}
	} else {
		for _, nb := range e.order {
			if nb.bytes >= e.threshold {
				var err error
				now, err = e.flushNode(now, nb)
				if err != nil {
					return now, err
				}
			}
		}
	}
	e.maybeRecycleArena()
	return now, nil
}

// batchFor finds or creates the pending batch for a placement's node.
func (e *evictor) batchFor(pl placement) *nodeBatch {
	nb, ok := e.perNode[pl.link.id()]
	if !ok {
		nb = &nodeBatch{link: pl.link, entries: cllog.GetEntries()}
		e.perNode[pl.link.id()] = nb
		e.order = append(e.order, nb)
	}
	return nb
}

// maybeRecycleArena resets the payload arena once no batch holds entries
// aliasing it. A batch only empties after its ship completed — which in
// turn waited out the node's previous ack — so by construction the reset
// never reclaims bytes a receiver has not yet made durable.
func (e *evictor) maybeRecycleArena() {
	for _, nb := range e.order {
		if len(nb.entries) > 0 {
			return
		}
	}
	e.arena.reset()
}

// FlushIfPending ships all buffered entries when the page at base has
// unflushed eviction data — the write-before-read ordering a refetch
// requires. It is a no-op otherwise.
func (e *evictor) FlushIfPending(now simclock.Duration, base mem.Addr) (simclock.Duration, error) {
	if _, ok := e.pending[base]; !ok {
		return now, nil
	}
	// Ship the batches without draining acks; the ack only gates log
	// reuse, while the data itself is in remote memory once the RDMA
	// write completes.
	if e.fanout > 1 {
		done, err := e.fanoutShip(now, false)
		if err != nil {
			return now, err
		}
		now = done
	} else {
		for _, nb := range e.order {
			var err error
			now, err = e.flushNode(now, nb)
			if err != nil {
				return now, err
			}
		}
	}
	clear(e.pending)
	e.maybeRecycleArena()
	return now, nil
}

// Flush ships every pending batch and returns when the eviction path is
// drained (all acks received).
func (e *evictor) Flush(now simclock.Duration) (simclock.Duration, error) {
	if e.fanout > 1 {
		return e.flushParallel(now)
	}
	var latest simclock.Duration = now
	for _, nb := range e.order {
		done, err := e.flushNode(now, nb)
		if err != nil {
			return now, err
		}
		// Drain: wait for this node's ack.
		if nb.ackDue > done {
			e.breakdown.AckWait += nb.ackDue - done
			done = nb.ackDue
		}
		e.stats.AcksReceived++
		if done > latest {
			latest = done
		}
	}
	clear(e.pending)
	e.maybeRecycleArena()
	return latest, nil
}

// flushParallel is Flush over the concurrent fan-out: all ships overlap,
// then every node's ack is drained.
func (e *evictor) flushParallel(now simclock.Duration) (simclock.Duration, error) {
	latest, err := e.fanoutShip(now, false)
	if err != nil {
		return now, err
	}
	for i, nb := range e.order {
		done := e.results[i].done
		if e.results[i].packed == 0 {
			done = now
		}
		if nb.ackDue > done {
			e.breakdown.AckWait += nb.ackDue - done
			done = nb.ackDue
		}
		e.stats.AcksReceived++
		if done > latest {
			latest = done
		}
	}
	clear(e.pending)
	e.maybeRecycleArena()
	return latest, nil
}

// fanoutShip ships batches concurrently — one goroutine per destination
// node, at most e.fanout on the wire at once — and folds the results
// into stats serially in first-touch order after the join. onlyFull
// restricts the ship to batches at or past the flush threshold
// (threshold-triggered flushes); otherwise every non-empty batch ships.
// It returns the completion time of the slowest ship. Per-node failures
// are joined so one dead replica does not mask another's error.
func (e *evictor) fanoutShip(now simclock.Duration, onlyFull bool) (simclock.Duration, error) {
	if cap(e.results) < len(e.order) {
		e.results = make([]shipResult, len(e.order))
	}
	e.results = e.results[:len(e.order)]
	var wg sync.WaitGroup
	for i, nb := range e.order {
		e.results[i] = shipResult{}
		if len(nb.entries) == 0 || (onlyFull && nb.bytes < e.threshold) {
			continue
		}
		wg.Add(1)
		go func(nb *nodeBatch, res *shipResult) {
			defer wg.Done()
			e.sem <- struct{}{}
			defer func() { <-e.sem }()
			start := now
			if nb.ackDue > start {
				res.waited = nb.ackDue - start
				start = nb.ackDue
			}
			if nb.packBuf == nil {
				nb.packBuf = make([]byte, len(e.logBuf))
			}
			packed, err := cllog.Pack(nb.entries, nb.packBuf)
			if err != nil {
				res.err = fmt.Errorf("core: packing eviction log: %w", err)
				return
			}
			e.m.inflight.Inc()
			done, ackDue, remote, err := nb.link.shipLog(start, nb.packBuf[:packed])
			e.m.inflight.Dec()
			if err != nil {
				res.err = fmt.Errorf("core: shipping eviction log: %w", err)
				return
			}
			res.packed, res.entries, res.remote = packed, len(nb.entries), remote
			res.done, res.ackDue = done, ackDue
		}(nb, &e.results[i])
	}
	wg.Wait()

	latest := now
	var errs []error
	for i, nb := range e.order {
		res := &e.results[i]
		if res.err != nil {
			errs = append(errs, res.err)
			continue
		}
		if res.packed == 0 {
			continue
		}
		e.breakdown.AckWait += res.waited
		e.breakdown.RDMAWrite += res.done - (now + res.waited)
		e.stats.WireBytes += uint64(res.packed)
		e.stats.Flushes++
		e.stats.RemoteEntries += uint64(res.remote)
		e.m.wireBytes.Add(uint64(res.packed))
		e.m.flushes.Inc()
		e.m.remoteEntries.Add(uint64(res.remote))
		if e.m.trace != nil {
			e.m.trace.EmitAt(res.done, "core.evict.flush",
				fmt.Sprintf("node=%d entries=%d bytes=%d", nb.link.id(), res.entries, res.packed))
		}
		nb.ackDue = res.ackDue
		nb.entries = nb.entries[:0]
		nb.bytes = 0
		if res.done > latest {
			latest = res.done
		}
	}
	if len(errs) > 0 {
		return latest, errors.Join(errs...)
	}
	return latest, nil
}

// flushNode packs and ships one node's pending entries (serial path).
func (e *evictor) flushNode(now simclock.Duration, nb *nodeBatch) (simclock.Duration, error) {
	if len(nb.entries) == 0 {
		return now, nil
	}
	// Ring-buffer reuse: wait for the previous flush's ack before
	// overwriting the log region (double-buffered halves in the real
	// implementation; the paper reports this wait as small).
	if nb.ackDue > now {
		e.breakdown.AckWait += nb.ackDue - now
		now = nb.ackDue
	}
	packed, err := cllog.Pack(nb.entries, e.logBuf)
	if err != nil {
		return now, fmt.Errorf("core: packing eviction log: %w", err)
	}
	// One write ships the whole aggregated log; the receiver unpacks
	// asynchronously and its acknowledgment gates log-space reuse.
	before := now
	done, ackDue, remote, err := nb.link.shipLog(now, e.logBuf[:packed])
	if err != nil {
		return now, fmt.Errorf("core: shipping eviction log: %w", err)
	}
	e.breakdown.RDMAWrite += done - before
	e.stats.WireBytes += uint64(packed)
	e.stats.Flushes++
	e.stats.RemoteEntries += uint64(remote)
	e.m.wireBytes.Add(uint64(packed))
	e.m.flushes.Inc()
	e.m.remoteEntries.Add(uint64(remote))
	if e.m.trace != nil {
		e.m.trace.EmitAt(done, "core.evict.flush",
			fmt.Sprintf("node=%d entries=%d bytes=%d", nb.link.id(), len(nb.entries), packed))
	}
	nb.ackDue = ackDue
	nb.entries = nb.entries[:0]
	nb.bytes = 0
	return done, nil
}

// release returns pooled resources at runtime shutdown. The evictor must
// not be used afterwards.
func (e *evictor) release() {
	for _, nb := range e.order {
		cllog.PutEntries(nb.entries)
		nb.entries = nil
	}
	e.order = nil
	clear(e.perNode)
}

// Breakdown returns the accumulated Fig 11c accounting.
func (e *evictor) Breakdown() Breakdown { return e.breakdown }

// Stats returns eviction counters.
func (e *evictor) Stats() EvictStats { return e.stats }
