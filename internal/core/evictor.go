package core

import (
	"fmt"

	"kona/internal/cllog"
	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/telemetry"
)

// evictMetrics mirrors EvictStats into a registry as the eviction path
// runs, plus batch-flush trace events. All handles are nil (no-op) when
// telemetry is disabled.
type evictMetrics struct {
	dirtyPages, silent, lines, payloadBytes *telemetry.Counter
	wireBytes, flushes                      *telemetry.Counter
	trace                                   *telemetry.Trace
}

func newEvictMetrics(reg *telemetry.Registry) evictMetrics {
	return evictMetrics{
		dirtyPages:   reg.Counter("core.evict.dirty_pages"),
		silent:       reg.Counter("core.evict.silent"),
		lines:        reg.Counter("core.evict.lines_shipped"),
		payloadBytes: reg.Counter("core.evict.payload_bytes"),
		wireBytes:    reg.Counter("core.evict.wire_bytes"),
		flushes:      reg.Counter("core.evict.flushes"),
		trace:        reg.Trace(),
	}
}

// Breakdown is the eviction-path time accounting reported in Fig 11c.
type Breakdown struct {
	// Bitmap is time spent scanning dirty bitmaps for segments.
	Bitmap simclock.Duration
	// Copy is time spent copying dirty lines into the RDMA-registered log.
	Copy simclock.Duration
	// RDMAWrite is NIC time for shipping the log.
	RDMAWrite simclock.Duration
	// AckWait is time stalled waiting for the receiver's acknowledgment
	// before reusing log space.
	AckWait simclock.Duration
}

// Total sums the slices.
func (b Breakdown) Total() simclock.Duration {
	return b.Bitmap + b.Copy + b.RDMAWrite + b.AckWait
}

// EvictStats counts eviction activity.
type EvictStats struct {
	PagesEvicted  uint64
	DirtyPages    uint64
	Segments      uint64
	LinesShipped  uint64
	PayloadBytes  uint64 // dirty bytes shipped (goodput numerator)
	WireBytes     uint64 // bytes on the wire including headers
	Flushes       uint64
	AcksReceived  uint64
	SilentEvicted uint64 // clean pages dropped without network traffic
}

// evictor is KLib's Eviction Handler (§4.4): it aggregates dirty cache
// lines — from any page, contiguous or not — into a ring-buffer log
// registered for RDMA, ships the log with a single write per destination
// node, and waits (asynchronously) for the Cache-line Log Receiver's
// acknowledgment before reusing the space. With replication enabled the
// log is shipped to every replica (§4.5).
type evictor struct {
	rm *resourceManager

	// logBuf is the pack scratch (the registered ring buffer lives in the
	// transport link).
	logBuf    []byte
	threshold int

	// perNode accumulates entries destined for each memory node; order
	// remembers first-touch sequence so flushes walk the nodes
	// deterministically — map iteration order would let the per-node
	// ackDue values pair up differently with the NIC's serialized
	// timeline from run to run.
	perNode map[int]*nodeBatch
	order   []*nodeBatch
	// pending tracks pages with buffered (unflushed) entries, for the
	// write-before-read ordering check on refetch.
	pending map[mem.Addr]struct{}

	breakdown Breakdown
	stats     EvictStats
	m         evictMetrics
}

// nodeBatch is the pending log content for one destination node.
type nodeBatch struct {
	link    nodeLink
	entries []cllog.Entry
	bytes   int
	// ackDue is when the receiver's ack for the previous flush lands;
	// the next flush of this node's log half must wait for it.
	ackDue simclock.Duration
}

func newEvictor(rm *resourceManager, cfg Config) *evictor {
	return &evictor{
		rm:        rm,
		logBuf:    make([]byte, cfg.LogBytes),
		threshold: cfg.FlushThreshold,
		perNode:   make(map[int]*nodeBatch),
		pending:   make(map[mem.Addr]struct{}),
		m:         newEvictMetrics(cfg.Metrics),
	}
}

// EvictPage handles one FMem victim: clean pages are dropped silently;
// dirty pages have exactly their dirty segments copied into the log.
// It returns the virtual time when the eviction-path work completes.
func (e *evictor) EvictPage(now simclock.Duration, v fpga.Victim) (simclock.Duration, error) {
	e.stats.PagesEvicted++
	if !v.Dirty.Any() {
		e.stats.SilentEvicted++
		e.m.silent.Inc()
		return now, nil
	}
	e.stats.DirtyPages++
	e.m.dirtyPages.Inc()
	e.pending[v.Base] = struct{}{}

	// Bitmap scan: find the dirty segments.
	segs := v.Dirty.Segments()
	e.breakdown.Bitmap += bitmapScanCost
	now += bitmapScanCost

	placements, err := e.rm.placementsFor(v.Base)
	if err != nil {
		return now, err
	}
	for _, seg := range segs {
		off := seg.First * mem.CacheLineSize
		length := seg.N * mem.CacheLineSize
		data := v.Data[off : off+length]

		// Copy the segment into the registered log once; entries alias it.
		c := segmentCopyFixed + copyCost(length)
		e.breakdown.Copy += c
		now += c
		payload := append([]byte(nil), data...)

		e.stats.Segments++
		e.stats.LinesShipped += uint64(seg.N)
		e.stats.PayloadBytes += uint64(length)
		e.m.lines.Add(uint64(seg.N))
		e.m.payloadBytes.Add(uint64(length))

		for _, pl := range placements {
			nb := e.batchFor(pl)
			nb.entries = append(nb.entries, cllog.Entry{
				RemoteOff: pl.remoteOff + uint64(off),
				Data:      payload,
			})
			nb.bytes += cllog.HeaderSize + length
		}
	}
	// Flush any destination whose pending log crossed the threshold.
	for _, nb := range e.order {
		if nb.bytes >= e.threshold {
			var err error
			now, err = e.flushNode(now, nb)
			if err != nil {
				return now, err
			}
		}
	}
	return now, nil
}

// batchFor finds or creates the pending batch for a placement's node.
func (e *evictor) batchFor(pl placement) *nodeBatch {
	nb, ok := e.perNode[pl.link.id()]
	if !ok {
		nb = &nodeBatch{link: pl.link}
		e.perNode[pl.link.id()] = nb
		e.order = append(e.order, nb)
	}
	return nb
}

// FlushIfPending ships all buffered entries when the page at base has
// unflushed eviction data — the write-before-read ordering a refetch
// requires. It is a no-op otherwise.
func (e *evictor) FlushIfPending(now simclock.Duration, base mem.Addr) (simclock.Duration, error) {
	if _, ok := e.pending[base]; !ok {
		return now, nil
	}
	// Ship the batches without draining acks; the ack only gates log
	// reuse, while the data itself is in remote memory once the RDMA
	// write completes.
	for _, nb := range e.order {
		var err error
		now, err = e.flushNode(now, nb)
		if err != nil {
			return now, err
		}
	}
	e.pending = make(map[mem.Addr]struct{})
	return now, nil
}

// Flush ships every pending batch and returns when the eviction path is
// drained (all acks received).
func (e *evictor) Flush(now simclock.Duration) (simclock.Duration, error) {
	var latest simclock.Duration = now
	for _, nb := range e.order {
		done, err := e.flushNode(now, nb)
		if err != nil {
			return now, err
		}
		// Drain: wait for this node's ack.
		if nb.ackDue > done {
			e.breakdown.AckWait += nb.ackDue - done
			done = nb.ackDue
		}
		e.stats.AcksReceived++
		if done > latest {
			latest = done
		}
	}
	e.pending = make(map[mem.Addr]struct{})
	return latest, nil
}

// flushNode packs and ships one node's pending entries.
func (e *evictor) flushNode(now simclock.Duration, nb *nodeBatch) (simclock.Duration, error) {
	if len(nb.entries) == 0 {
		return now, nil
	}
	// Ring-buffer reuse: wait for the previous flush's ack before
	// overwriting the log region (double-buffered halves in the real
	// implementation; the paper reports this wait as small).
	if nb.ackDue > now {
		e.breakdown.AckWait += nb.ackDue - now
		now = nb.ackDue
	}
	packed, err := cllog.Pack(nb.entries, e.logBuf)
	if err != nil {
		return now, fmt.Errorf("core: packing eviction log: %w", err)
	}
	// One write ships the whole aggregated log; the receiver unpacks
	// asynchronously and its acknowledgment gates log-space reuse.
	before := now
	done, ackDue, err := nb.link.shipLog(now, e.logBuf[:packed])
	if err != nil {
		return now, fmt.Errorf("core: shipping eviction log: %w", err)
	}
	e.breakdown.RDMAWrite += done - before
	e.stats.WireBytes += uint64(packed)
	e.stats.Flushes++
	e.m.wireBytes.Add(uint64(packed))
	e.m.flushes.Inc()
	if e.m.trace != nil {
		e.m.trace.EmitAt(done, "core.evict.flush",
			fmt.Sprintf("node=%d entries=%d bytes=%d", nb.link.id(), len(nb.entries), packed))
	}
	nb.ackDue = ackDue
	nb.entries = nb.entries[:0]
	nb.bytes = 0
	return done, nil
}

// Breakdown returns the accumulated Fig 11c accounting.
func (e *evictor) Breakdown() Breakdown { return e.breakdown }

// Stats returns eviction counters.
func (e *evictor) Stats() EvictStats { return e.stats }
