package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Cross-runtime shared memory (DESIGN.md §14). A placement group can be
// shared between runtimes under the controller's ownership directory:
// exactly one writer lease or N reader leases exist per group at a time.
// The writer maps the region normally (its allocator owns the space) and
// calls ShareWriter; readers AttachReader the group, which registers the
// writer's slabs for translation at the same virtual addresses without
// joining the free list. Writes to a reader-mode region attempt a
// writer-lease upgrade and fail on conflict; invalidation is pull-based —
// the writer's Sync bumps the group's publish version, and a reader's
// PollInvalidations (or a lease-deadline check on the access path)
// observes the new version and drops its cached pages, so the next fetch
// reads the writer's flushed bytes.

// runtimeIDs hands out process-unique runtime identities. The counter is
// seeded from the wall clock so two processes sharing a rack draw from
// disjoint id ranges without coordination; ids only need to be unique
// among concurrent lease holders, not dense.
var runtimeIDs atomic.Uint64

func init() { runtimeIDs.Store(uint64(time.Now().UnixNano())) }

func nextRuntimeID() uint64 { return runtimeIDs.Add(1) }

// readerShare is one attached reader-mode group.
type readerShare struct {
	slab Slab // primary member: base VA + size of the shared range
	// version is the last observed publish version; an advance means the
	// writer flushed and the cached pages must drop.
	version uint64
	// deadline is when the lease should be renewed (half the granted TTL,
	// so a healthy reader never lets the lease lapse).
	deadline time.Time
	// err is the last renew failure, surfaced by PollInvalidations.
	err error
}

// RuntimeID returns this runtime's lease/fence identity.
func (k *Kona) RuntimeID() uint64 { return k.runtimeID }

// ShareWriter acquires the writer lease for the placement group holding
// addr and returns the group id (which another runtime passes to
// AttachReader). Sync then publishes a new version of the group after
// every flush. Idempotent while the lease is held; fails with a
// lease-conflict error while another runtime holds the group.
func (k *Kona) ShareWriter(addr mem.Addr) (uint64, error) {
	s, ok := k.rm.groupFor(addr)
	if !ok {
		return 0, fmt.Errorf("core: address %v not in any slab", addr)
	}
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	if _, held := k.writerGroups[s.ID]; held {
		return s.ID, nil
	}
	if _, err := k.rm.rack.acquireLease(s.ID, k.runtimeID, cluster.LeaseWriter, 0); err != nil {
		return 0, err
	}
	k.writerGroups[s.ID] = struct{}{}
	return s.ID, nil
}

// ReleaseWriter gives up the writer lease on a shared group, clearing
// the memnode fences so a successor can take over without waiting out
// the TTL.
func (k *Kona) ReleaseWriter(group uint64) error {
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	if _, held := k.writerGroups[group]; !held {
		return fmt.Errorf("core: writer lease for group %d not held", group)
	}
	delete(k.writerGroups, group)
	return k.rm.rack.releaseLease(group, k.runtimeID)
}

// AttachReader maps another runtime's placement group into this runtime
// in reader mode and returns its base address and size. The region
// appears at the same virtual addresses the writer sees, so pointers
// stored inside it stay valid across runtimes. Reads fetch normally;
// writes attempt a writer-lease upgrade and fail on conflict.
func (k *Kona) AttachReader(group uint64) (mem.Addr, uint64, error) {
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	if rs, ok := k.readerGroups[group]; ok {
		return rs.slab.Base, rs.slab.Size, nil
	}
	g, err := k.rm.rack.acquireLease(group, k.runtimeID, cluster.LeaseReader, 0)
	if err != nil {
		return 0, 0, err
	}
	members, err := k.rm.rack.slabPlacements(group)
	if err != nil {
		_ = k.rm.rack.releaseLease(group, k.runtimeID)
		return 0, 0, err
	}
	primary, err := k.rm.attachGroup(members)
	if err != nil {
		_ = k.rm.rack.releaseLease(group, k.runtimeID)
		return 0, 0, err
	}
	k.readerGroups[group] = &readerShare{
		slab:     primary,
		version:  g.Version,
		deadline: time.Now().Add(g.TTL / 2),
	}
	k.readerCount.Add(1)
	return primary.Base, primary.Size, nil
}

// DetachReader unmaps a reader-mode group: cached pages drop, the
// translation entries go away, and the reader lease is released.
func (k *Kona) DetachReader(group uint64) error {
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	rs, ok := k.readerGroups[group]
	if !ok {
		return fmt.Errorf("core: group %d not attached", group)
	}
	k.fpga.DropRange(rs.slab.Base, rs.slab.Size)
	k.rm.detachGroup(group)
	delete(k.readerGroups, group)
	k.readerCount.Add(-1)
	return k.rm.rack.releaseLease(group, k.runtimeID)
}

// PollInvalidations renews every reader lease and applies pending
// invalidations: a group whose publish version advanced has its cached
// pages dropped (shootdown), so the next access refetches the writer's
// flushed bytes. Returns how many groups were invalidated. Readers call
// it on their poll cadence; the access path also renews inline when a
// lease deadline lapses (checkReaderLease).
func (k *Kona) PollInvalidations() (int, error) {
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	invalidated := 0
	var firstErr error
	for group, rs := range k.readerGroups {
		if k.renewReaderLocked(group, rs) {
			invalidated++
		} else if rs.err != nil && firstErr == nil {
			firstErr = rs.err
		}
	}
	return invalidated, firstErr
}

// renewReaderLocked renews one reader lease and applies its
// invalidation, reporting whether pages were dropped. Caller holds
// shareMu (DropRange takes fpga shard locks; no shard lock may be held).
func (k *Kona) renewReaderLocked(group uint64, rs *readerShare) bool {
	g, err := k.rm.rack.renewLease(group, k.runtimeID, cluster.LeaseReader, 0)
	rs.err = err
	if err != nil {
		return false
	}
	rs.deadline = time.Now().Add(g.TTL / 2)
	if g.Version == rs.version {
		return false
	}
	rs.version = g.Version
	k.fpga.DropRange(rs.slab.Base, rs.slab.Size)
	return true
}

// checkReaderLease runs on the Read path before FMem is consulted: when
// addr falls in a reader-mode group whose renew deadline lapsed, the
// lease is renewed inline (applying any missed invalidation) so a
// dormant reader cannot serve cached bytes under an expired lease.
// Cost off the sharing path is one atomic load.
func (k *Kona) checkReaderLease(addr mem.Addr) {
	if k.readerCount.Load() == 0 {
		return
	}
	k.shareMu.Lock()
	for group, rs := range k.readerGroups {
		if rs.slab.Range().Contains(addr) {
			if time.Now().After(rs.deadline) {
				k.renewReaderLocked(group, rs)
			}
			break
		}
	}
	k.shareMu.Unlock()
}

// upgradeIfReader gates the Write path: a store into a reader-mode
// group attempts a writer-lease upgrade. On success the group becomes
// writer-owned by this runtime and its cached pages drop (a
// read-modify-write must start from the current published bytes); on
// conflict the write fails with the lease-conflict error.
func (k *Kona) upgradeIfReader(addr mem.Addr) error {
	s, ok := k.rm.attachedGroupFor(addr)
	if !ok {
		return nil
	}
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	if _, held := k.writerGroups[s.ID]; held {
		return nil
	}
	if _, err := k.rm.rack.acquireLease(s.ID, k.runtimeID, cluster.LeaseWriter, 0); err != nil {
		return fmt.Errorf("core: write to reader-mode region %v: %w", addr, err)
	}
	if _, wasReader := k.readerGroups[s.ID]; wasReader {
		delete(k.readerGroups, s.ID)
		k.readerCount.Add(-1)
	}
	k.writerGroups[s.ID] = struct{}{}
	k.fpga.DropRange(s.Base, s.Size)
	return nil
}

// publishShared bumps the publish version on every writer-leased group
// (and extends the writer lease); Sync calls it after a successful
// flush so readers' next renew observes the new version.
func (k *Kona) publishShared() error {
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	var firstErr error
	for group := range k.writerGroups {
		if _, err := k.rm.rack.publishLease(group, k.runtimeID); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// releaseShares drops every lease this runtime holds (Close path).
func (k *Kona) releaseShares() {
	k.shareMu.Lock()
	defer k.shareMu.Unlock()
	for group := range k.writerGroups {
		_ = k.rm.rack.releaseLease(group, k.runtimeID)
		delete(k.writerGroups, group)
	}
	for group, rs := range k.readerGroups {
		k.fpga.DropRange(rs.slab.Base, rs.slab.Size)
		k.rm.detachGroup(group)
		_ = k.rm.rack.releaseLease(group, k.runtimeID)
		delete(k.readerGroups, group)
		k.readerCount.Add(-1)
	}
}
