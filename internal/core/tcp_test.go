package core

import (
	"bytes"
	"math/rand"
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// tcpRig spins a controller daemon and n memory-node daemons on localhost
// and returns the controller's address plus the daemon node objects. It
// takes testing.TB so benchmarks share the rig.
func tcpRig(t testing.TB, n int) (string, []*cluster.MemoryNode) {
	t.Helper()
	ctrl := cluster.NewController()
	cs, err := cluster.ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	var nodes []*cluster.MemoryNode
	for i := 0; i < n; i++ {
		node := cluster.NewMemoryNode(i, 64<<20)
		ns, err := cluster.ServeMemoryNode(node, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	return cs.Addr(), nodes
}

func TestKonaOverTCP(t *testing.T) {
	addr, nodes := tcpRig(t, 2)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 16 * mem.PageSize
	k := NewKonaTCP(cfg, addr)

	base, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("tcp!"), 64)
	now, err := k.Write(0, base+512, payload)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	now, err = k.Read(now, base+512, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("TCP read-your-writes violated")
	}
	if now <= 0 {
		t.Fatalf("wall-clock latency did not fold into virtual time")
	}
	// Sync drains the cache-line log over the wire; one of the daemons'
	// receivers must have applied entries.
	if _, err := k.Sync(now); err != nil {
		t.Fatal(err)
	}
	applied := uint64(0)
	for _, n := range nodes {
		_, lines := n.ReceiverStats()
		applied += lines
	}
	if applied == 0 {
		t.Fatalf("no cache-line log reached the TCP daemons")
	}
}

func TestKonaOverTCPEvictionChurn(t *testing.T) {
	// A model-style run over real sockets: tiny cache, many pages, random
	// ops; every read must match the reference.
	addr, _ := tcpRig(t, 2)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKonaTCP(cfg, addr)
	base, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, 64*mem.PageSize)
	rng := rand.New(rand.NewSource(9))
	var now simDurT
	for step := 0; step < 400; step++ {
		off := rng.Intn(len(model) - 256)
		n := 1 + rng.Intn(255)
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if now, err = k.Write(now, base+mem.Addr(off), data); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			copy(model[off:], data)
		} else {
			buf := make([]byte, n)
			if now, err = k.Read(now, base+mem.Addr(off), buf); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !bytes.Equal(buf, model[off:off+n]) {
				t.Fatalf("step %d: TCP read diverged at +%d", step, off)
			}
		}
	}
}

func TestKonaVMOverTCP(t *testing.T) {
	addr, _ := tcpRig(t, 1)
	k := NewKonaVMTCP(smallConfig(), addr)
	base, err := k.Malloc(8 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("vm over tcp")
	if _, err := k.Write(0, base, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := k.Read(0, base, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("vm TCP round trip failed")
	}
}

func TestTCPDelayInjectionUnsupported(t *testing.T) {
	addr, _ := tcpRig(t, 1)
	k := NewKonaTCP(smallConfig(), addr)
	if _, err := k.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	if err := k.InjectNetworkDelay(0, 1); err == nil {
		t.Errorf("TCP transport accepted delay injection")
	}
}

func TestCloseReleasesSlabs(t *testing.T) {
	ctrl := newCluster(1)
	cfg := smallConfig()
	cfg.SlabSize = 8 << 20
	k := NewKona(cfg, ctrl)
	if _, err := k.Malloc(8 << 20); err != nil {
		t.Fatal(err)
	}
	node, _ := ctrl.Node(0)
	_, usedBefore := node.Capacity()
	if usedBefore == 0 {
		t.Fatalf("no slab carved")
	}
	if err := k.Close(0); err != nil {
		t.Fatal(err)
	}
	// A fresh runtime can reuse the released extent even though the node
	// pool was fully carved before.
	k2 := NewKona(cfg, ctrl)
	if _, err := k2.Malloc(8 << 20); err != nil {
		t.Fatalf("released slab not reusable: %v", err)
	}
}

func TestCloseOverTCP(t *testing.T) {
	addr, _ := tcpRig(t, 1)
	cfg := smallConfig()
	k := NewKonaTCP(cfg, addr)
	if _, err := k.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(0, 1<<40, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(0); err != nil {
		t.Fatal(err)
	}
}

func TestKonaVMClose(t *testing.T) {
	k := NewKonaVM(smallConfig(), newCluster(1))
	if _, err := k.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(0); err != nil {
		t.Fatal(err)
	}
}

func TestTCPReplicatedRuntime(t *testing.T) {
	addr, nodes := tcpRig(t, 3)
	cfg := smallConfig()
	cfg.Replicas = 2
	k := NewKonaTCP(cfg, addr)
	base, err := k.Malloc(4 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("replicated over tcp")
	if _, err := k.Write(0, base, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	// The log reached at least two daemon receivers.
	applied := 0
	for _, n := range nodes {
		if _, lines := n.ReceiverStats(); lines > 0 {
			applied++
		}
	}
	if applied < 2 {
		t.Errorf("replicated log reached %d daemons, want >= 2", applied)
	}
}

func TestCoherentDomainCPUAccessor(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	d := k.NewCoherentDomain(2, 64, 4)
	if d.CPU(0) == nil || d.CPU(1) == nil {
		t.Fatalf("CPU accessor broken")
	}
	addr, err := k.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CPU(0).Store(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPBadControllerAddress(t *testing.T) {
	k := NewKonaTCP(smallConfig(), "127.0.0.1:1") // nothing listens there
	if _, err := k.Malloc(4096); err == nil {
		t.Errorf("malloc against dead controller succeeded")
	}
}
