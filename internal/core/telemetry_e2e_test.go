package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
	"kona/internal/telemetry"
)

// telemetryRig is tcpRig with one registry shared by every layer: the
// controller daemon, the memory-node daemons, and (via the caller) the
// client transport and the runtime itself — the deployment shape the
// -metrics-addr daemons produce.
func telemetryRig(t *testing.T, reg *telemetry.Registry, n int) string {
	t.Helper()
	ctrl := cluster.NewController()
	cl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cs := cluster.ServeControllerOnWith(ctrl, cl, reg)
	t.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	for i := 0; i < n; i++ {
		nl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns := cluster.ServeMemoryNodeOnWith(cluster.NewMemoryNode(i, 64<<20), nl, reg)
		t.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	return cs.Addr()
}

// TestTelemetryEndToEndTCP is the observability acceptance test: a Kona
// runtime runs an eviction-heavy workload over real sockets with one
// telemetry registry spanning runtime, transport and daemons; the
// registry is then scraped over HTTP (/metrics text + JSON,
// /debug/events) and the scraped counters are cross-checked against the
// components' own stats.
func TestTelemetryEndToEndTCP(t *testing.T) {
	reg := telemetry.New(0)
	addr := telemetryRig(t, reg, 2)

	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize // tiny cache: the 64-page walk must evict
	cfg.Metrics = reg
	tr := cluster.DefaultTransport()
	tr.Metrics = reg
	k := NewKonaTCPWith(cfg, addr, tr)

	base, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 64)
	var now simDurT
	for p := mem.Addr(0); p < 64; p++ {
		if now, err = k.Write(now, base+p*mem.PageSize+128, payload); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
	}
	for p := mem.Addr(0); p < 64; p++ {
		buf := make([]byte, len(payload))
		if now, err = k.Read(now, base+p*mem.PageSize+128, buf); err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("page %d diverged", p)
		}
	}
	if _, err = k.Sync(now); err != nil {
		t.Fatal(err)
	}

	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// JSON endpoint round-trips into a Snapshot.
	var snap telemetry.Snapshot
	if err := json.Unmarshal(get("/metrics?format=json"), &snap); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}

	// The workload must have exercised the whole path: remote fetches,
	// evictions, cache-line writebacks, RPC traffic.
	fetches := snap.Counters["core.fetches"]
	if fetches == 0 {
		t.Fatalf("core.fetches = 0 after a 64-page walk through an 8-page cache")
	}
	if st := k.FPGAStats(); fetches != st.RemoteFetches {
		t.Errorf("core.fetches = %d, FPGA counted %d", fetches, st.RemoteFetches)
	}
	if snap.Counters["core.evictions"] == 0 {
		t.Errorf("core.evictions = 0, want eviction pressure")
	}
	es := k.EvictStats()
	if got := snap.Counters["core.evict.lines_shipped"]; got != es.LinesShipped {
		t.Errorf("core.evict.lines_shipped = %d, evictor counted %d", got, es.LinesShipped)
	}
	// Every shipped log entry lands at some daemon receiver; the daemons
	// aggregate into one shared counter.
	if got := snap.Counters["cluster.memnode.log_entries"]; got != es.LinesShipped {
		t.Errorf("daemons applied %d log entries, evictor shipped %d", got, es.LinesShipped)
	}
	if h := snap.Histograms["cluster.rpc.read.latency_us"]; h.Count == 0 {
		t.Errorf("no read RPC latency observations")
	}
	if snap.Counters["cluster.rpc.failures"] != 0 {
		t.Errorf("clean localhost run recorded RPC failures")
	}
	if snap.Gauges["cluster.controller.nodes"] != 2 {
		t.Errorf("controller gauge = %d nodes, want 2", snap.Gauges["cluster.controller.nodes"])
	}

	// Text endpoint renders the same counters (nothing runs between the
	// two scrapes, so values are identical).
	text := string(get("/metrics"))
	for _, want := range []string{
		fmt.Sprintf("core.fetches %d", fetches),
		fmt.Sprintf("core.evict.lines_shipped %d", es.LinesShipped),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics text missing %q", want)
		}
	}

	// The event ring saw the annotated milestones.
	var events []telemetry.Event
	if err := json.Unmarshal(get("/debug/events"), &events); err != nil {
		t.Fatalf("/debug/events: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e.Name] = true
	}
	for _, want := range []string{"core.fetch", "core.evict.flush", "memnode.writeback", "controller.register"} {
		if !seen[want] {
			t.Errorf("/debug/events missing %q events (have %v)", want, seen)
		}
	}
}
