package core

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
	"kona/internal/prefetch"
	"kona/internal/simclock"
	"kona/internal/vm"
)

// Kona-VM is the paper's virtual-memory baseline (§6.1): the same caching
// and eviction policy as Kona, but built on page faults. Remote pages are
// fetched by a user-space fault handler (userfaultfd-style), mapped
// read-only so the first store takes a write-protect fault (dirty
// tracking), and evicted at 4KB granularity with full-page RDMA writes.

// VM fault-path cost decomposition. The total fetch latency matches the
// measured ~10µs of the paper's Kona-VM/LegoOS class (§6.2): a serialized
// section (VMA/page-table locks), a parallel software section, and the
// 4KB RDMA read.
const (
	vmFaultSerial = 2 * time.Microsecond
	vmFaultLocal  = 4 * time.Microsecond
	// vmWPCost is the ~4µs minor write-protect fault. Unlike major
	// faults, Linux resolves WP faults under per-PTE locks, so they do
	// not contend on the serialized fault path.
	vmWPCost = 4 * time.Microsecond
	// vmEvictAppCost is the synchronous part of evicting one page that
	// stalls the application: checking page locks and other PTE
	// references, unmapping, clearing dirty bits, flushing the TLB, and
	// LRU/page-cache bookkeeping (§2.1 — Infiniswap's eviction exceeds
	// 32µs; the leaner userfaultfd-based Kona-VM path still pays several
	// µs of this "sum of small operations"). The RDMA page write itself
	// proceeds asynchronously.
	vmEvictAppCost = 10 * time.Microsecond
)

// VMStats counts Kona-VM events.
type VMStats struct {
	Fetches      uint64
	WPFaults     uint64
	Evictions    uint64
	DirtyEvicted uint64
	WireBytes    uint64
	Hits         uint64
	// Prefetches counts Leap-style software prefetch fills.
	Prefetches uint64
}

// vmPage is one locally cached page.
type vmPage struct {
	page     uint64
	data     []byte
	dirty    bool
	writable bool
	// prefetched marks pages brought in by the Leap prefetcher and not
	// yet demanded, for accuracy adaptation.
	prefetched bool
	// readyAt is the prefetch fetch's completion time; an earlier demand
	// waits for it.
	readyAt simclock.Duration
	elem    *list.Element
}

// KonaVM is the virtual-memory baseline runtime.
//
// Concurrency: one big lock. That is deliberate fidelity, not a
// shortcut — the VM baseline's defining bottleneck is the kernel's
// serialized fault path (mmap_sem and friends, §2.1), so its Go model
// serializes whole accesses the same way. The sharded Kona data path
// exists precisely to beat this.
type KonaVM struct {
	mu  sync.Mutex
	cfg Config
	rm  *resourceManager
	as  *vm.AddressSpace

	// WriteProtect enables page-granularity dirty tracking (the NoWP
	// variant of Fig 7 disables it).
	WriteProtect bool
	// EvictEnabled enables capacity eviction (the NoEvict variant of
	// Fig 7 disables it: the cache grows unboundedly).
	EvictEnabled bool

	capacityPages int
	cache         map[uint64]*vmPage
	lru           *list.List // front = LRU

	// faultPath serializes the lock-protected part of fault handling
	// (mmap_sem analogue) across simulated threads.
	faultPath simclock.Server

	// leap, when non-nil, is Leap-style software prefetching ([57]): the
	// fault handler predicts strided access and fetches ahead. Prefetched
	// pages still arrive at fetch latency; what they save is the fault
	// (the page is present when the app arrives). Enable with
	// EnableLeapPrefetch.
	leap *prefetch.Detector

	stats VMStats
}

// NewKonaVM builds the baseline runtime against an in-process rack
// controller (simulated RDMA transport).
func NewKonaVM(cfg Config, ctrl *cluster.Controller) *KonaVM {
	cfg = cfg.withDefaults()
	return newKonaVM(cfg, newSimRack(ctrl))
}

// NewKonaVMTCP builds the baseline runtime against a remote controller
// daemon (TCP transport; wall-clock latencies fold into virtual time).
func NewKonaVMTCP(cfg Config, controllerAddr string) *KonaVM {
	cfg = cfg.withDefaults()
	return newKonaVM(cfg, newTCPRack(controllerAddr))
}

// NewKonaVMTCPWith is NewKonaVMTCP with an explicit wire policy.
func NewKonaVMTCPWith(cfg Config, controllerAddr string, tr cluster.Transport) *KonaVM {
	cfg = cfg.withDefaults()
	return newKonaVM(cfg, newTCPRackWith(controllerAddr, tr))
}

func newKonaVM(cfg Config, r rack) *KonaVM {
	return &KonaVM{
		cfg:           cfg,
		rm:            newResourceManager(cfg, r),
		as:            vm.NewAddressSpace(),
		WriteProtect:  true,
		EvictEnabled:  true,
		capacityPages: int(cfg.LocalCacheBytes / mem.PageSize),
		cache:         make(map[uint64]*vmPage),
		lru:           list.New(),
	}
}

// Malloc allocates disaggregated memory (shared Resource Manager).
func (k *KonaVM) Malloc(size uint64) (mem.Addr, error) { return k.rm.Malloc(size) }

// Free releases an allocation.
func (k *KonaVM) Free(addr mem.Addr) error { return k.rm.Free(addr) }

// EnableLeapPrefetch turns on Leap-style software prefetching in the
// fault handler with the given maximum window.
func (k *KonaVM) EnableLeapPrefetch(maxDepth int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.leap = prefetch.New(maxDepth)
}

// Stats returns the event counters.
func (k *KonaVM) Stats() VMStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.stats
}

// VMStats exposes the underlying address-space counters (faults, TLB).
func (k *KonaVM) AddressSpaceStats() vm.Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.as.Stats()
}

// Read copies remote memory into buf and returns the completion time.
func (k *KonaVM) Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	return k.access(now, addr, buf, false)
}

// Write stores buf and returns the completion time.
func (k *KonaVM) Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	return k.access(now, addr, buf, true)
}

// access walks the buffer page by page through the fault machinery,
// holding the big lock for the whole call (accesses serialize like they
// would behind the kernel's fault path).
func (k *KonaVM) access(now simclock.Duration, addr mem.Addr, buf []byte, write bool) (simclock.Duration, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	off := 0
	for off < len(buf) {
		a := addr + mem.Addr(off)
		pageOff := a.PageOffset()
		n := len(buf) - off
		if rem := int(mem.PageSize - pageOff); n > rem {
			n = rem
		}
		var err error
		now, err = k.touchPage(now, a, write)
		if err != nil {
			return now, err
		}
		pg := k.cache[a.Page()]
		k.touch(pg)
		if write {
			copy(pg.data[pageOff:], buf[off:off+n])
			// Functional dirtiness is tracked regardless of variant; the
			// WriteProtect flag only controls the fault costs (the NoWP
			// variant of Fig 7 is "incomplete" in the real system).
			pg.dirty = true
		} else {
			copy(buf[off:off+n], pg.data[pageOff:])
		}
		off += n
	}
	return now, nil
}

// touchPage runs the MMU/fault machinery for one access and leaves the
// page cached.
func (k *KonaVM) touchPage(now simclock.Duration, a mem.Addr, write bool) (simclock.Duration, error) {
	switch k.as.Touch(a, write) {
	case vm.NoFault:
		k.stats.Hits++
		if pg := k.cache[a.Page()]; pg != nil && pg.prefetched {
			// A Leap hit: wait for the in-flight fill if needed, reward
			// the predictor, and keep the pipeline running ahead.
			pg.prefetched = false
			if pg.readyAt > now {
				now = pg.readyAt
			}
			k.leap.MarkUseful()
			now = k.leapPrefetch(now, a)
		}
		return now + simclock.DRAMAccess, nil
	case vm.WriteProtectFault:
		// Minor fault: upgrade protection, mark dirty.
		now += vmWPCost
		if err := k.as.ResolveWP(a); err != nil {
			return now, err
		}
		k.stats.WPFaults++
		k.cache[a.Page()].writable = true
		return now + simclock.DRAMAccess, nil
	case vm.MajorFault:
		return k.majorFault(now, a, write)
	}
	return now, fmt.Errorf("core: unreachable fault kind")
}

// majorFault fetches the page containing a from remote memory.
func (k *KonaVM) majorFault(now simclock.Duration, a mem.Addr, write bool) (simclock.Duration, error) {
	// Serialized kernel section, then local software work.
	now = k.faultPath.Serve(now, vmFaultSerial)
	now += vmFaultLocal

	if k.EvictEnabled {
		var err error
		now, err = k.evictIfFull(now)
		if err != nil {
			return now, err
		}
	}

	// Page read from the primary placement (failing over past dead
	// replicas, like the Kona fetch path).
	pls, err := k.rm.placementsFor(a.AlignDown(mem.PageSize))
	if err != nil {
		return now, err
	}
	pl, ok := liveFirst(pls)
	if !ok {
		return now, fmt.Errorf("core: vm fetch: %w", ErrRemoteUnavailable)
	}
	pg := &vmPage{page: a.Page(), data: make([]byte, mem.PageSize)}
	done, err := pl.link.readPage(now, pl.remoteOff, pg.data)
	if err != nil {
		return now, fmt.Errorf("core: vm fetch: %w", err)
	}
	k.stats.Fetches++

	// Install: present, and read-only iff WP tracking is on.
	writable := !k.WriteProtect
	k.as.ResolveMajor(a, writable)
	pg.writable = writable
	pg.elem = k.lru.PushBack(pg)
	k.cache[pg.page] = pg

	if k.leap != nil {
		done = k.leapPrefetch(done, a)
	}

	if write && k.WriteProtect {
		// The re-executed store immediately takes the write-protect fault
		// — the second fault of the paper's §6.1 analysis.
		if f := k.as.Touch(a, true); f != vm.WriteProtectFault {
			return done, fmt.Errorf("core: expected WP fault on re-executed store, got %v", f)
		}
		done += vmWPCost
		if err := k.as.ResolveWP(a); err != nil {
			return done, err
		}
		k.stats.WPFaults++
		pg.writable = true
	}
	return done + simclock.DRAMAccess, nil
}

// leapPrefetch fetches predicted pages into the cache from the fault
// handler. Unlike Kona's FPGA prefetcher the work happens in software on
// the faulting core, so a slice of the fetch cost lands on the
// application; the payoff is the avoided 6µs fault path on the hit.
func (k *KonaVM) leapPrefetch(now simclock.Duration, a mem.Addr) simclock.Duration {
	const leapIssueCost = 500 * time.Nanosecond // predict + map + post
	for _, page := range k.leap.Observe(a.Page()) {
		base := mem.PageBase(page)
		if _, cached := k.cache[page]; cached {
			continue
		}
		pls, err := k.rm.placementsFor(base)
		if err != nil {
			continue // outside the mapped region: skip quietly
		}
		pl, ok := liveFirst(pls)
		if !ok {
			continue
		}
		if k.EvictEnabled {
			if n, err := k.evictIfFull(now); err == nil {
				now = n
			}
		}
		pg := &vmPage{page: page, data: make([]byte, mem.PageSize)}
		done, err := pl.link.readPage(now, pl.remoteOff, pg.data)
		if err != nil {
			continue
		}
		pg.readyAt = done
		now += leapIssueCost
		k.as.ResolveMajor(base, !k.WriteProtect)
		pg.writable = !k.WriteProtect
		pg.prefetched = true
		pg.elem = k.lru.PushBack(pg)
		k.cache[page] = pg
		k.stats.Prefetches++
	}
	return now
}

// evictIfFull evicts the LRU page when the cache is at capacity.
func (k *KonaVM) evictIfFull(now simclock.Duration) (simclock.Duration, error) {
	if len(k.cache) < k.capacityPages {
		return now, nil
	}
	front := k.lru.Front()
	if front == nil {
		return now, nil
	}
	pg := front.Value.(*vmPage)
	k.lru.Remove(front)
	delete(k.cache, pg.page)
	base := mem.PageBase(pg.page)

	// Unmap: protection change + TLB shootdown stall the application.
	k.as.Unmap(mem.Range{Start: base, Len: mem.PageSize})
	now += vmEvictAppCost
	k.stats.Evictions++

	if !pg.dirty {
		return now, nil // silent eviction (§2, step 9)
	}
	k.stats.DirtyEvicted++
	// Copy the whole page to the registered buffer, then write all 4KB —
	// page-granularity amplification. The write is asynchronous; only the
	// copy stalls the app.
	now += pageCopyFixed + copyCost(mem.PageSize)
	pls, err := k.rm.placementsFor(base)
	if err != nil {
		return now, err
	}
	wrote := false
	for _, pl := range pls {
		if len(pls) > 1 && !pl.link.healthy() {
			continue // dead replica; the live copies carry the page
		}
		if _, err := pl.link.writePage(now, pl.remoteOff, pg.data); err != nil {
			return now, fmt.Errorf("core: vm eviction write: %w", err)
		}
		wrote = true
		k.stats.WireBytes += mem.PageSize
	}
	if !wrote {
		return now, fmt.Errorf("core: vm eviction write: %w", ErrRemoteUnavailable)
	}
	return now, nil
}

// liveFirst returns the first healthy placement (read failover order).
func liveFirst(pls []placement) (placement, bool) {
	for _, pl := range pls {
		if pl.link.healthy() {
			return pl, true
		}
	}
	return placement{}, false
}

// touch promotes a page in the LRU on hit. Called from access's cache-hit
// path via touchPage's bookkeeping.
func (k *KonaVM) touch(pg *vmPage) {
	k.lru.MoveToBack(pg.elem)
}

// Sync writes every dirty cached page back to remote memory.
func (k *KonaVM) Sync(now simclock.Duration) (simclock.Duration, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, pg := range k.cache {
		if !pg.dirty {
			continue
		}
		base := mem.PageBase(pg.page)
		now += pageCopyFixed + copyCost(mem.PageSize)
		pls, err := k.rm.placementsFor(base)
		if err != nil {
			return now, err
		}
		wrote := false
		for _, pl := range pls {
			if len(pls) > 1 && !pl.link.healthy() {
				continue // dead replica; the live copies carry the page
			}
			done, err := pl.link.writePage(now, pl.remoteOff, pg.data)
			if err != nil {
				return now, err
			}
			wrote = true
			now = done
			k.stats.WireBytes += mem.PageSize
		}
		if !wrote {
			return now, fmt.Errorf("core: vm sync write: %w", ErrRemoteUnavailable)
		}
		pg.dirty = false
		// Re-arm tracking for the next epoch.
		if k.WriteProtect {
			k.as.WriteProtect(mem.Range{Start: base, Len: mem.PageSize})
			pg.writable = false
		}
	}
	return now, nil
}

// Close drains the runtime (Sync) and returns every slab to the rack.
func (k *KonaVM) Close(now simclock.Duration) error {
	if _, err := k.Sync(now); err != nil {
		return err
	}
	return k.rm.releaseAll()
}

// CachedPages returns the current cache occupancy.
func (k *KonaVM) CachedPages() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.cache)
}
