package core

import (
	"fmt"
	"sync"
	"testing"

	"kona/internal/mem"
	"kona/internal/simclock"
)

// Concurrent data-path benchmarks: K application goroutines hammer a
// resident working set partitioned per worker, so every operation is an
// FMem hit and the measured quantity is the data path itself — shard
// lock acquisition, set lookup, dirty tracking, payload copy.
//
// Two readings matter:
//
//   - wall ns/op: on a multi-core host this must scale with goroutines
//     (the acceptance bar is ≥2.5x read-hit throughput at 4 goroutines
//     vs 1); on a single-core host goroutines timeshare and wall time
//     stays flat, which says nothing about the sharding.
//   - vops/µs (reported metric): aggregate virtual-time throughput —
//     each worker's clock advances by the modeled cost of its own ops,
//     so this shows the modeled hardware adds no cross-thread
//     serialization regardless of host parallelism.

// benchConcurrentSetup builds a runtime whose FMem holds the whole
// working set and faults it in, returning the base address.
func benchConcurrentSetup(b *testing.B, wsPages int) (*Kona, mem.Addr) {
	b.Helper()
	cfg := smallConfig()
	cfg.Shards = 8
	cfg.LocalCacheBytes = 4 * uint64(wsPages) * mem.PageSize
	k := NewKona(cfg, newCluster(1))
	addr, err := k.Malloc(uint64(wsPages) * mem.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, mem.PageSize)
	var now simclock.Duration
	for p := 0; p < wsPages; p++ {
		if now, err = k.Read(now, addr+mem.Addr(p*int(mem.PageSize)), buf); err != nil {
			b.Fatal(err)
		}
	}
	return k, addr
}

// runConcurrent splits b.N across g workers, each driving op over its own
// page partition with a private virtual clock, and reports aggregate
// virtual throughput.
func runConcurrent(b *testing.B, k *Kona, addr mem.Addr, wsPages, g int,
	op func(now simclock.Duration, worker, i int, base mem.Addr) (simclock.Duration, error)) {
	b.Helper()
	perWorker := b.N / g
	pagesPer := wsPages / g
	var wg sync.WaitGroup
	elapsed := make([]simclock.Duration, g)
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < g; w++ {
		n := perWorker
		if w == 0 {
			n += b.N % g
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			var now simclock.Duration
			var err error
			// Worker w owns pages w, w+g, w+2g, ... — stride
			// partitioning keeps each worker's pages in shard stripes no
			// other worker touches (page → set → shard is a power-of-two
			// chain), so the benchmark measures the scalable path, not
			// accidental stripe sharing.
			for i := 0; i < n; i++ {
				page := w + (i%pagesPer)*g
				if now, err = op(now, w, i, addr+mem.Addr(page*int(mem.PageSize))); err != nil {
					b.Errorf("worker %d: %v", w, err)
					return
				}
			}
			elapsed[w] = now
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	var worst simclock.Duration
	for _, e := range elapsed {
		if e > worst {
			worst = e
		}
	}
	if worst > 0 {
		b.ReportMetric(float64(b.N)/(float64(worst)/1e3), "vops/µs")
	}
}

// BenchmarkConcurrentReadScaling measures 256B read hits at 1/2/4/8
// goroutines over disjoint page partitions.
func BenchmarkConcurrentReadScaling(b *testing.B) {
	const wsPages = 64
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			k, addr := benchConcurrentSetup(b, wsPages)
			buf := make([][]byte, g)
			for w := range buf {
				buf[w] = make([]byte, 256)
			}
			runConcurrent(b, k, addr, wsPages, g,
				func(now simclock.Duration, w, i int, base mem.Addr) (simclock.Duration, error) {
					return k.Read(now, base, buf[w])
				})
		})
	}
}

// BenchmarkConcurrentMixed measures a 3:1 read:write hit mix at 1/2/4/8
// goroutines — writes exercise the dirty-tracking side of the shard
// (MarkWrite under the same lock) without triggering eviction.
func BenchmarkConcurrentMixed(b *testing.B) {
	const wsPages = 64
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			k, addr := benchConcurrentSetup(b, wsPages)
			buf := make([][]byte, g)
			for w := range buf {
				buf[w] = make([]byte, 256)
			}
			runConcurrent(b, k, addr, wsPages, g,
				func(now simclock.Duration, w, i int, base mem.Addr) (simclock.Duration, error) {
					if i%4 == 3 {
						return k.Write(now, base, buf[w])
					}
					return k.Read(now, base, buf[w])
				})
		})
	}
}
