package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
	"kona/internal/telemetry"
)

// TestPayloadArena pins the arena contract: copied payloads stay stable
// across later copyIns (including chunk spills), and a spilled cycle
// coalesces on reset so the next cycle fits one chunk.
func TestPayloadArena(t *testing.T) {
	a := newPayloadArena(0) // clamps to one page
	var got [][]byte
	var want [][]byte
	// 3 pages' worth of 257-byte payloads forces at least two spills.
	for i := 0; i < 3*int(mem.PageSize)/257; i++ {
		src := bytes.Repeat([]byte{byte(i + 1)}, 257)
		got = append(got, a.copyIn(src))
		want = append(want, src)
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d corrupted after later copyIns", i)
		}
	}
	if len(a.old) == 0 {
		t.Fatalf("expected chunk spills, got none (cap=%d)", cap(a.buf))
	}
	a.reset()
	if len(a.old) != 0 || a.spill != 0 {
		t.Fatalf("reset did not coalesce: old=%d spill=%d", len(a.old), a.spill)
	}
	// The coalesced chunk must absorb the same cycle without spilling.
	for i := 0; i < 3*int(mem.PageSize)/257; i++ {
		a.copyIn(want[i])
	}
	if len(a.old) != 0 {
		t.Fatalf("coalesced arena spilled again: old=%d", len(a.old))
	}
}

// TestSimTransportForcesSerialFlush pins the determinism gate: even with
// EvictFanout set, the simulated fabric must keep the serial ship path.
func TestSimTransportForcesSerialFlush(t *testing.T) {
	cfg := smallConfig()
	cfg.EvictFanout = 8
	k := NewKona(cfg, newCluster(2))
	if k.evict.fanout != 1 {
		t.Fatalf("sim transport got fanout %d, want 1", k.evict.fanout)
	}
	addr, _ := tcpRig(t, 2)
	kt := NewKonaTCP(cfg, addr)
	if kt.evict.fanout != 8 {
		t.Fatalf("tcp transport got fanout %d, want 8", kt.evict.fanout)
	}
}

// TestRemoteEntriesMatchSegments pins the satellite that surfaced the
// receiver's unpacked-entry count: after a drain, the receivers must have
// applied exactly one entry per shipped segment (times replicas).
func TestRemoteEntriesMatchSegments(t *testing.T) {
	cfg := smallConfig()
	cfg.Replicas = 2
	reg := telemetry.New(0)
	cfg.Metrics = reg
	k := NewKona(cfg, newCluster(3))
	base, err := k.Malloc(16 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var now simDurT
	for i := 0; i < 16; i++ {
		if now, err = k.Write(now, base+mem.Addr(i)*mem.PageSize, []byte("dirty")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err = k.Sync(now); err != nil {
		t.Fatal(err)
	}
	st := k.EvictStats()
	if st.Segments == 0 {
		t.Fatal("no segments shipped")
	}
	if want := st.Segments * 2; st.RemoteEntries != want {
		t.Fatalf("RemoteEntries = %d, want %d (segments=%d x 2 replicas)",
			st.RemoteEntries, want, st.Segments)
	}
	if got := reg.Counter("core.evict.remote_entries").Value(); got != st.RemoteEntries {
		t.Fatalf("telemetry remote_entries = %d, want %d", got, st.RemoteEntries)
	}
}

// TestHealthyTTLCachesPing pins the health-cache satellite: repeated
// healthy() calls within the TTL must cost one Ping RPC, and noteFailure
// must force a fresh probe.
func TestHealthyTTLCachesPing(t *testing.T) {
	node := cluster.NewMemoryNode(0, 1<<20)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New(0)
	ns := cluster.ServeMemoryNodeOnWith(node, ln, reg)
	defer ns.Close()

	l := &tcpLink{nodeID: 0, client: cluster.DialMemoryNode(ns.Addr())}
	for i := 0; i < 50; i++ {
		if !l.healthy() {
			t.Fatalf("healthy() false on call %d", i)
		}
	}
	pings := reg.Counter("cluster.memnode.served.ping").Value()
	if pings != 1 {
		t.Fatalf("50 healthy() calls cost %d pings, want 1", pings)
	}
	l.noteFailure()
	if !l.healthy() {
		t.Fatal("healthy() false after noteFailure against live node")
	}
	if pings = reg.Counter("cluster.memnode.served.ping").Value(); pings != 2 {
		t.Fatalf("noteFailure did not force a fresh probe: %d pings, want 2", pings)
	}
}

// TestHealthyConcurrent is the race-regression test for the health
// cache: the verdict and its timestamp are one packed atomic word, so
// concurrent healthy() probes and noteFailure() invalidations from
// fan-out goroutines must never tear (a stale-verdict/fresh-timestamp
// mix would suppress the re-probe after a failure). Run under -race; the
// functional assertion is that a live node always ends up healthy.
func TestHealthyConcurrent(t *testing.T) {
	node := cluster.NewMemoryNode(0, 1<<20)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns := cluster.ServeMemoryNodeOnWith(node, ln, telemetry.New(0))
	defer ns.Close()

	l := &tcpLink{nodeID: 0, client: cluster.DialMemoryNode(ns.Addr())}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g == 0 && i%20 == 19 {
					l.noteFailure()
					continue
				}
				l.healthy()
			}
		}(g)
	}
	wg.Wait()
	if !l.healthy() {
		t.Fatal("healthy() false against a live node after concurrent churn")
	}
}

// TestFanoutChurnReplicated is the write-before-read ordering check under
// the concurrent fan-out: a replicated TCP runtime with a tiny cache
// churns random reads and writes, every eviction shipping to two nodes in
// parallel, and every read must still observe the latest write.
func TestFanoutChurnReplicated(t *testing.T) {
	addr, _ := tcpRig(t, 3)
	cfg := smallConfig()
	cfg.Replicas = 2
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.EvictFanout = 4
	k := NewKonaTCP(cfg, addr)
	if k.evict.fanout != 4 {
		t.Fatalf("fanout = %d, want 4", k.evict.fanout)
	}
	base, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, 64*mem.PageSize)
	rng := rand.New(rand.NewSource(41))
	var now simDurT
	for step := 0; step < 400; step++ {
		off := rng.Intn(len(model) - 256)
		n := 1 + rng.Intn(255)
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if now, err = k.Write(now, base+mem.Addr(off), data); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			copy(model[off:], data)
		} else {
			buf := make([]byte, n)
			if now, err = k.Read(now, base+mem.Addr(off), buf); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !bytes.Equal(buf, model[off:off+n]) {
				t.Fatalf("step %d: fan-out read diverged at +%d", step, off)
			}
		}
	}
	if _, err = k.Sync(now); err != nil {
		t.Fatal(err)
	}
	if st := k.EvictStats(); st.Flushes == 0 || st.RemoteEntries == 0 {
		t.Fatalf("churn shipped nothing: %+v", st)
	}
}

// TestFanoutChaosReplicaLogDrop is the chaos variant: one replica's
// daemon sits behind a fault listener that drops connections mid-I/O, so
// some of its log writes fail while the primary's succeed. Reads (served
// by the healthy primary) must never observe stale data, and the runtime
// must surface — not swallow — the replica's failures at Sync.
func TestFanoutChaosReplicaLogDrop(t *testing.T) {
	ctrl := cluster.NewController()
	cs, err := cluster.ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	// Round-robin placement on a fresh controller puts the first
	// replicated slab on nodes 0 (primary) and 1; the fault listener
	// goes on node 1 so only the replica's log writes are lossy.
	const faulted = 1
	for i := 0; i < 3; i++ {
		node := cluster.NewMemoryNode(i, 64<<20)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if i == faulted {
			ln = net.Listener(cluster.NewFaultListener(ln, cluster.FaultConfig{Seed: 7, DropProb: 0.25}))
		}
		ns := cluster.ServeMemoryNodeOn(node, ln)
		t.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	cfg := smallConfig()
	cfg.Replicas = 2
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKonaTCPWith(cfg, cs.Addr(), chaosTr())
	base, err := k.Malloc(64 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := k.rm.alloc.SlabFor(base)
	if !ok {
		t.Fatal("no slab for base")
	}
	if primary := k.rm.replicas[s.ID][0].Node; primary == faulted {
		t.Skipf("placement changed: faulted node %d became primary", faulted)
	}

	model := make([]byte, 64*mem.PageSize)
	rng := rand.New(rand.NewSource(43))
	var now simDurT
	for step := 0; step < 300; step++ {
		off := rng.Intn(len(model) - 256)
		n := 1 + rng.Intn(255)
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if now, err = k.Write(now, base+mem.Addr(off), data); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			copy(model[off:], data)
		} else {
			buf := make([]byte, n)
			if now, err = k.Read(now, base+mem.Addr(off), buf); err != nil {
				t.Fatalf("step %d: read under chaos: %v", step, err)
			}
			if !bytes.Equal(buf, model[off:off+n]) {
				t.Fatalf("step %d: stale read at +%d under replica log drops", step, off)
			}
		}
	}
	// Sync either drains cleanly (drops missed every log write) or
	// reports the replica's failure — it must not corrupt or hang.
	if _, err := k.Sync(now); err != nil {
		t.Logf("sync surfaced replica failure (expected under drops): %v", err)
	}
}

// TestReplicatedSimDeterminism extends the determinism contract to the
// replicated eviction workload: two fresh simulated runs of the same
// seed must agree on every counter and on final virtual time.
func TestReplicatedSimDeterminism(t *testing.T) {
	run := func() string {
		cfg := smallConfig()
		cfg.Replicas = 2
		cfg.LocalCacheBytes = 8 * mem.PageSize
		cfg.EvictFanout = 8 // must be ignored on the sim transport
		k := NewKona(cfg, newCluster(3))
		base, err := k.Malloc(64 * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		var now simDurT
		buf := make([]byte, 192)
		for step := 0; step < 500; step++ {
			off := rng.Intn(63 * int(mem.PageSize))
			if rng.Intn(2) == 0 {
				rng.Read(buf)
				now, err = k.Write(now, base+mem.Addr(off), buf)
			} else {
				now, err = k.Read(now, base+mem.Addr(off), buf)
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if now, err = k.Sync(now); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("t=%d stats=%+v breakdown=%+v", now, k.EvictStats(), k.EvictBreakdown())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replicated sim run diverged:\n%s\n%s", a, b)
	}
}
