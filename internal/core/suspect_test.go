package core

import (
	"testing"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Tests for the repaired-replica read fence: after a repair flip, the
// replacement member holds a copy taken from the survivor *before* the
// retained dirty lines were replayed onto it, so translation must not
// route reads there until the evictor's catch-up drain completes. The
// kv-level chaos run found the hole (concurrent fetches racing the
// post-flip Sync read the incomplete copy and cached stale pages); these
// tests pin the mechanism at the translation layer.

// readMemberID resolves addr through the read path and returns the node
// the fetch would hit.
func readMemberID(t *testing.T, k *Kona, addr mem.Addr) int {
	t.Helper()
	pr, err := k.rm.Translate(addr)
	if err != nil {
		t.Fatal(err)
	}
	return pr.(boundPage).link.id()
}

func suspectCount(k *Kona) int {
	k.rm.mu.Lock()
	defer k.rm.mu.Unlock()
	return len(k.rm.suspect)
}

// TestRepairedReplicaSuspectUntilDrained walks the full outage → repair
// → refresh sequence and asserts the repaired member is fenced from
// reads exactly until the retained entries have been flushed onto it.
func TestRepairedReplicaSuspectUntilDrained(t *testing.T) {
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.Replicas = 2
	k := NewKona(cfg, ctrl)
	w := newChaosWorkload(t, k, ctrl, 11, 64)
	w.run(800)
	w.sync()

	// Kill the preferred read member, so the repaired copy lands in the
	// slot translation tries first — the arrangement that exposed the bug.
	members := groupMembersFor(k, w.base)
	if len(members) != 2 {
		t.Fatalf("members = %+v, want 2 replicas", members)
	}
	victim, survivor := members[0], members[1]
	vn, ok := ctrl.Node(victim.Node)
	if !ok {
		t.Fatalf("victim node %d not registered", victim.Node)
	}
	vn.Fail()

	// Degraded phase: accumulate retained entries for the dead member.
	w.run(600)
	ctrl.HealthSweep()
	if ctrl.DegradedCount() == 0 {
		t.Fatal("victim loss not detected")
	}
	engine := cluster.NewRepairEngine(ctrl, &cluster.LocalRepairTransport{Ctrl: ctrl},
		cluster.RepairConfig{BytesPerSec: 512 << 20})
	drainRepairs(t, engine, ctrl)

	// The refresh installs the new membership and must fence the
	// repaired member in the same breath: no flush has run yet, so its
	// copy is still missing the retained lines.
	if changed, err := k.RefreshPlacements(); err != nil || !changed {
		t.Fatalf("refresh: changed=%v err=%v", changed, err)
	}
	repaired := groupMembersFor(k, w.base)[0]
	if repaired.Node == victim.Node && repaired.Epoch == victim.Epoch {
		t.Fatalf("member 0 not flipped: %+v", repaired)
	}
	if n := suspectCount(k); n == 0 {
		t.Fatal("repaired member not marked suspect after refresh")
	}
	if got := readMemberID(t, k, w.base); got != survivor.Node {
		t.Fatalf("read routed to node %d before catch-up, want survivor %d", got, survivor.Node)
	}

	// One Sync drains the remapped entries onto the repaired member;
	// that settles the move and lifts the fence.
	w.sync()
	if n := suspectCount(k); n != 0 {
		t.Fatalf("%d members still suspect after catch-up drain", n)
	}
	if got := readMemberID(t, k, w.base); got != repaired.Node {
		t.Fatalf("read routed to node %d after catch-up, want repaired %d", got, repaired.Node)
	}

	// And the healed rack is byte-correct end to end.
	w.run(400)
	w.sync()
	w.verifyReplicas(2)
	w.verifyThroughRuntime()
}

// TestCatchUpBatchLargerThanLog pins the chunked catch-up ship: entries
// retained across an outage are bounded by the outage's length, not by
// the log budget, so the post-repair batch can exceed the pack buffer.
// It must ship as several wire logs — before chunking, the pack failed
// forever, the batch wedged, and the repaired replica stayed fenced
// (and incomplete) for the rest of the process's life.
func TestCatchUpBatchLargerThanLog(t *testing.T) {
	ctrl := newCluster(3)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 8 * mem.PageSize
	cfg.Replicas = 2
	cfg.LogBytes = 4 << 10 // force even a short outage to out-retain the log
	k := NewKona(cfg, ctrl)
	w := newChaosWorkload(t, k, ctrl, 23, 64)
	w.run(500)
	w.sync()

	members := groupMembersFor(k, w.base)
	vn, ok := ctrl.Node(members[0].Node)
	if !ok {
		t.Fatalf("victim node %d not registered", members[0].Node)
	}
	vn.Fail()
	w.run(800) // retain well past LogBytes for the dead member
	ctrl.HealthSweep()
	if ctrl.DegradedCount() == 0 {
		t.Fatal("victim loss not detected")
	}
	engine := cluster.NewRepairEngine(ctrl, &cluster.LocalRepairTransport{Ctrl: ctrl},
		cluster.RepairConfig{BytesPerSec: 512 << 20})
	drainRepairs(t, engine, ctrl)
	if changed, err := k.RefreshPlacements(); err != nil || !changed {
		t.Fatalf("refresh: changed=%v err=%v", changed, err)
	}
	fs := k.FailureStats()
	if fs.RemappedEntries == 0 {
		t.Fatal("no entries retained across the outage — the scenario never formed")
	}

	// The catch-up drain must clear the fence despite the oversized batch.
	w.sync()
	if fs := k.FailureStats(); fs.SuspectMembers != 0 {
		t.Fatalf("%d members still fenced: catch-up batch wedged", fs.SuspectMembers)
	}
	w.run(300)
	w.sync()
	w.verifyReplicas(2)
	w.verifyThroughRuntime()
}

// TestSuspectFallbackOnDoubleFault pins the last-resort path: when every
// non-suspect member is dead, translation reads the suspect copy rather
// than failing the fetch — mostly-caught-up data beats no data.
func TestSuspectFallbackOnDoubleFault(t *testing.T) {
	ctrl := newCluster(2)
	cfg := smallConfig()
	cfg.Replicas = 2
	k := NewKona(cfg, ctrl)
	addr, err := k.Malloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(0, addr, []byte("fence")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Sync(0); err != nil {
		t.Fatal(err)
	}
	members := groupMembersFor(k, addr)
	if len(members) != 2 {
		t.Fatalf("members = %+v, want 2 replicas", members)
	}

	// Fence member 0: reads must fail over to member 1.
	key0 := linkKeyFor(members[0].Node, members[0].Epoch)
	k.rm.mu.Lock()
	k.rm.suspect[key0] = struct{}{}
	k.rm.mu.Unlock()
	if got := readMemberID(t, k, addr); got != members[1].Node {
		t.Fatalf("read routed to node %d, want non-suspect %d", got, members[1].Node)
	}

	// Kill member 1: the suspect copy is all that is left, and the read
	// path must still serve from it.
	n1, ok := ctrl.Node(members[1].Node)
	if !ok {
		t.Fatalf("node %d not registered", members[1].Node)
	}
	n1.Fail()
	if got := readMemberID(t, k, addr); got != members[0].Node {
		t.Fatalf("read routed to node %d under double fault, want suspect %d", got, members[0].Node)
	}
}
