package core

import (
	"bytes"
	"testing"

	"kona/internal/mem"
)

func newAllocLib(t *testing.T) (*AllocLib, *Kona) {
	t.Helper()
	k := NewKona(smallConfig(), newCluster(1))
	return NewAllocLib(k, 0), k
}

func TestAllocLibPlacement(t *testing.T) {
	a, _ := newAllocLib(t)
	small, err := a.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if !a.isCMem(small) {
		t.Errorf("small allocation placed remotely at %v", small)
	}
	big, err := a.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.isCMem(big) {
		t.Errorf("bulk allocation placed in CMem at %v", big)
	}
	m, err := a.Mmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.isCMem(m) {
		t.Errorf("mmap placed in CMem")
	}
	cm, rm := a.Stats()
	if cm != 1 || rm != 2 {
		t.Errorf("placement stats = %d/%d", cm, rm)
	}
	if _, err := a.Malloc(0); err == nil {
		t.Errorf("zero malloc accepted")
	}
}

func TestAllocLibCMemAccessesSkipFPGA(t *testing.T) {
	a, k := newAllocLib(t)
	addr, err := a.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("stack-local data")
	now, err := a.Write(0, addr, payload)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if now, err = a.Read(now, addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("CMem round trip: %q", buf)
	}
	if st := k.FPGAStats(); st.LineFills != 0 || st.Writebacks != 0 {
		t.Errorf("CMem traffic reached the FPGA: %+v (the §4.3 limitation)", st)
	}
	// CMem access is a local DRAM access in the cost model.
	if now > 10000 {
		t.Errorf("CMem accesses too expensive: %v", now)
	}
}

func TestAllocLibRemoteAccessesUseRuntime(t *testing.T) {
	a, k := newAllocLib(t)
	addr, err := a.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("remote data")
	if _, err := a.Write(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := a.Read(0, addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("remote round trip: %q", buf)
	}
	if k.FPGAStats().RemoteFetches == 0 {
		t.Errorf("remote allocation never reached the FPGA")
	}
}

func TestAllocLibFreeDispatch(t *testing.T) {
	a, _ := newAllocLib(t)
	small, _ := a.Malloc(256)
	big, _ := a.Malloc(64 << 10)
	if err := a.Free(small); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(small); err == nil {
		t.Errorf("double free of CMem accepted")
	}
	if err := a.Free(big); err == nil {
		t.Errorf("double free of remote accepted")
	}
}

func TestAllocLibCMemSpanningPages(t *testing.T) {
	a, _ := newAllocLib(t)
	addr, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Write spanning a CMem page boundary (staying inside the heap even
	// when the allocation itself is page-aligned).
	span := addr.AlignUp(mem.PageSize) + mem.PageSize - 32
	payload := bytes.Repeat([]byte{0xAD}, 64)
	if _, err := a.Write(0, span, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := a.Read(0, span, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("spanning CMem access corrupted")
	}
}
