package core

import (
	"fmt"
	"sync"

	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/slab"
)

// Slab re-exports the coarse allocation unit.
type Slab = slab.Slab

// resourceManager is KLib's Resource Manager (§4.1): it pre-allocates
// disaggregated memory from the rack controller in large slabs, maintains
// the remote-translation map the FPGA consults (§4.4), and owns the
// transport links to each memory node. With Replicas > 1 every slab is
// placed on several nodes and reads fail over when the primary is down
// (§4.5).
type resourceManager struct {
	mu sync.Mutex

	cfg   Config
	rack  rack
	alloc *slab.Allocator

	// replicas maps a primary slab ID to all placements (primary first).
	replicas map[uint64][]Slab

	// failovers counts translations that skipped a dead primary.
	failovers uint64
}

func newResourceManager(cfg Config, r rack) *resourceManager {
	return &resourceManager{
		cfg:      cfg,
		rack:     r,
		alloc:    slab.NewAllocator(),
		replicas: make(map[uint64][]Slab),
	}
}

// growLocked requests one more slab (with replicas) from the controller.
func (rm *resourceManager) growLocked() error {
	if rm.cfg.Replicas > 1 {
		slabs, err := rm.rack.allocReplicated(rm.cfg.SlabSize, rm.cfg.Replicas)
		if err != nil {
			return fmt.Errorf("core: replicated slab allocation: %w", err)
		}
		primary := slabs[0]
		if err := rm.alloc.Grant(primary); err != nil {
			return err
		}
		rm.replicas[primary.ID] = slabs
		return nil
	}
	s, err := rm.rack.allocSlab(rm.cfg.SlabSize)
	if err != nil {
		return fmt.Errorf("core: slab allocation: %w", err)
	}
	if err := rm.alloc.Grant(s); err != nil {
		return err
	}
	rm.replicas[s.ID] = []Slab{s}
	return nil
}

// boundPage binds a nodeLink to one page's pool offset; it implements
// fpga.PageReader.
type boundPage struct {
	link nodeLink
	off  uint64
}

// ReadRange implements fpga.PageReader.
func (b boundPage) ReadRange(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	return b.link.readPage(now, b.off+off, buf)
}

// Translate implements fpga.Translator over the slab map, preferring the
// primary placement and failing over to a live replica.
func (rm *resourceManager) Translate(addr mem.Addr) (fpga.PageReader, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	s, ok := rm.alloc.SlabFor(addr)
	if !ok {
		return nil, fmt.Errorf("core: address %v not in any slab", addr)
	}
	for i, pl := range rm.replicas[s.ID] {
		l, err := rm.rack.link(pl.Node)
		if err != nil || !l.healthy() {
			continue
		}
		if i > 0 {
			rm.failovers++
		}
		return boundPage{link: l, off: pl.RemoteOff + uint64(addr-pl.Base)}, nil
	}
	return nil, fmt.Errorf("%w (slab %d)", ErrRemoteUnavailable, s.ID)
}

// placement is one eviction destination for an address.
type placement struct {
	link      nodeLink
	remoteOff uint64 // byte offset of addr within the node's pool
}

// placementsFor returns every live replica destination for addr (for
// eviction, which must update all copies).
func (rm *resourceManager) placementsFor(addr mem.Addr) ([]placement, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	s, ok := rm.alloc.SlabFor(addr)
	if !ok {
		return nil, fmt.Errorf("core: address %v not in any slab", addr)
	}
	var out []placement
	for _, pl := range rm.replicas[s.ID] {
		l, err := rm.rack.link(pl.Node)
		if err != nil || !l.healthy() {
			continue
		}
		out = append(out, placement{
			link:      l,
			remoteOff: pl.RemoteOff + uint64(addr-pl.Base),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w (slab %d)", ErrRemoteUnavailable, s.ID)
	}
	return out, nil
}

// Malloc allocates size bytes of disaggregated memory, growing the slab
// pool as needed.
func (rm *resourceManager) Malloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("core: zero-size malloc")
	}
	if size > rm.cfg.SlabSize {
		return 0, fmt.Errorf("core: allocation of %d exceeds slab size %d", size, rm.cfg.SlabSize)
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if addr, err := rm.alloc.Alloc(size); err == nil {
			return addr, nil
		}
		if err := rm.growLocked(); err != nil {
			return 0, err
		}
	}
	return rm.alloc.Alloc(size)
}

// Free releases an allocation.
func (rm *resourceManager) Free(addr mem.Addr) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.alloc.Free(addr)
}

// releaseAll returns every slab (and replica) to the rack. The address
// space is unusable afterwards; only Close calls it.
func (rm *resourceManager) releaseAll() error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var firstErr error
	for id, placements := range rm.replicas {
		for _, s := range placements {
			if err := rm.rack.release(s); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		delete(rm.replicas, id)
	}
	rm.alloc = slab.NewAllocator()
	return firstErr
}
