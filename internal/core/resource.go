package core

import (
	"fmt"
	"sync"

	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/simclock"
	"kona/internal/slab"
)

// Slab re-exports the coarse allocation unit.
type Slab = slab.Slab

// resourceManager is KLib's Resource Manager (§4.1): it pre-allocates
// disaggregated memory from the rack controller in large slabs, maintains
// the remote-translation map the FPGA consults (§4.4), and owns the
// transport links to each memory node. With Replicas > 1 every slab is
// placed on several nodes and reads fail over when the primary is down
// (§4.5).
type resourceManager struct {
	mu sync.Mutex

	cfg   Config
	rack  rack
	alloc *slab.Allocator

	// replicas maps a primary slab ID to all placements (primary first).
	replicas map[uint64][]Slab

	// failovers counts translations that skipped a dead primary.
	failovers uint64

	// suspect holds the link keys of repaired replicas that are not yet
	// readable: a repair flip copies a slab from a surviving member, but
	// dirty lines retained for the dead member during the outage reach
	// the replacement only when the evictor re-ships them. Until that
	// drain completes (evictor.settleMovesLocked → clearSuspect), a read
	// from the repaired copy could return pages missing acknowledged
	// writes, so translation skips suspect members while another live
	// replica exists. Marked in refreshPlacements, in the same critical
	// section that installs the new membership — no translation can ever
	// observe a repaired member without its suspect flag.
	suspect map[uint64]struct{}

	// sealed holds the link keys of members whose extent a migration has
	// sealed: the evictor's last ship was rejected and the dirty lines are
	// retained locally, so the sealed copy is missing acknowledged writes
	// until a placement refresh flips it away and the retained entries
	// drain onto the migration target. Translation skips sealed members
	// like suspect ones while another live replica exists. Cleared
	// wholesale on every placement refresh — if an extent is still sealed
	// afterwards, the next rejected ship re-marks it.
	sealed map[uint64]struct{}

	// sealNotice latches "a ship was rejected by a sealed extent" for the
	// fetch path: Kona's fetch hook sees it (takeSealNotice), refreshes
	// placements to pick up the migration flip, and re-flushes so the
	// retained entries land before the fetch reads remote memory. Without
	// the notice, an unreplicated slab could serve a stale page between
	// the seal and the next Sync.
	sealNotice bool

	// attached holds placement groups mapped from another runtime
	// (reader-mode shares, DESIGN.md §14). Their slabs translate like any
	// other, but the space is never allocated from and releaseAll must
	// not return them to the rack — the owning writer does that.
	attached map[uint64]struct{}
}

func newResourceManager(cfg Config, r rack) *resourceManager {
	return &resourceManager{
		cfg:      cfg,
		rack:     r,
		alloc:    slab.NewAllocator(),
		replicas: make(map[uint64][]Slab),
		suspect:  make(map[uint64]struct{}),
		sealed:   make(map[uint64]struct{}),
		attached: make(map[uint64]struct{}),
	}
}

// noteSealed records that a ship to the given link was rejected because
// its extent is sealed for migration, and latches the seal notice for the
// fetch path.
func (rm *resourceManager) noteSealed(key uint64) {
	rm.mu.Lock()
	rm.sealed[key] = struct{}{}
	rm.sealNotice = true
	rm.mu.Unlock()
}

// takeSealNotice consumes the latched seal notice, returning whether any
// ship was rejected by a sealed extent since the last call.
func (rm *resourceManager) takeSealNotice() bool {
	rm.mu.Lock()
	n := rm.sealNotice
	rm.sealNotice = false
	rm.mu.Unlock()
	return n
}

// clearSuspect marks a repaired replica readable again, once the evictor
// has drained every retained entry remapped onto it.
func (rm *resourceManager) clearSuspect(key uint64) {
	rm.mu.Lock()
	delete(rm.suspect, key)
	rm.mu.Unlock()
}

// growLocked requests one more slab (with replicas) from the controller.
func (rm *resourceManager) growLocked() error {
	if rm.cfg.Replicas > 1 {
		slabs, err := rm.rack.allocReplicated(rm.cfg.SlabSize, rm.cfg.Replicas)
		if err != nil {
			return fmt.Errorf("core: replicated slab allocation: %w", err)
		}
		primary := slabs[0]
		if err := rm.alloc.Grant(primary); err != nil {
			return err
		}
		rm.replicas[primary.ID] = slabs
		return nil
	}
	s, err := rm.rack.allocSlab(rm.cfg.SlabSize)
	if err != nil {
		return fmt.Errorf("core: slab allocation: %w", err)
	}
	if err := rm.alloc.Grant(s); err != nil {
		return err
	}
	rm.replicas[s.ID] = []Slab{s}
	return nil
}

// boundPage binds a nodeLink to one page's pool offset; it implements
// fpga.PageReader.
type boundPage struct {
	rm   *resourceManager
	addr mem.Addr // the translated VFMem address, for re-translation
	link nodeLink
	off  uint64
}

// ReadRange implements fpga.PageReader. A failed read invalidates the
// link's cached health verdict (tcpLink.noteFailure), so the single
// re-translate below probes the node live and fails over to a replica
// that is still answering — without that retry, a node dying inside the
// health cache's TTL would surface as a read error instead of a
// failover.
func (b boundPage) ReadRange(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	done, err := b.link.readPage(now, b.off+off, buf)
	if err == nil {
		return done, nil
	}
	b.rm.mu.Lock()
	l, poolOff, terr := b.rm.translateLocked(b.addr)
	b.rm.mu.Unlock()
	if terr != nil {
		return now, err
	}
	return l.readPage(now, poolOff+off, buf)
}

// translateLocked resolves addr to its live read placement, preferring
// the primary and failing over to a live replica. A repaired member
// stays unreadable (suspect) until the evictor has re-shipped the
// retained entries remapped onto it — its copy would otherwise serve
// pages missing acknowledged writes; only a double fault (no other live
// member) falls back to reading a suspect copy. Caller holds rm.mu.
func (rm *resourceManager) translateLocked(addr mem.Addr) (nodeLink, uint64, error) {
	s, ok := rm.alloc.SlabFor(addr)
	if !ok {
		return nil, 0, fmt.Errorf("core: address %v not in any slab", addr)
	}
	allowSuspect := len(rm.suspect) == 0 && len(rm.sealed) == 0
	for {
		for i, pl := range rm.replicas[s.ID] {
			if !allowSuspect {
				k := linkKeyFor(pl.Node, pl.Epoch)
				if _, sus := rm.suspect[k]; sus {
					continue
				}
				// A sealed member is missing the dirty lines retained
				// since its extent was sealed for migration; prefer a
				// replica that took the ship.
				if _, sl := rm.sealed[k]; sl {
					continue
				}
			}
			l, err := rm.rack.link(pl.Node, pl.Epoch)
			if err != nil || !l.healthy() {
				continue
			}
			if i > 0 {
				rm.failovers++
			}
			return l, pl.RemoteOff + uint64(addr-pl.Base), nil
		}
		if allowSuspect {
			return nil, 0, fmt.Errorf("%w (slab %d)", ErrRemoteUnavailable, s.ID)
		}
		allowSuspect = true
	}
}

// Translate implements fpga.Translator over the slab map, preferring the
// primary placement and failing over to a live replica.
func (rm *resourceManager) Translate(addr mem.Addr) (fpga.PageReader, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	l, off, err := rm.translateLocked(addr)
	if err != nil {
		return nil, err
	}
	return boundPage{rm: rm, addr: addr, link: l, off: off}, nil
}

// batchGroup accumulates one node's share of a scatter-gather read.
type batchGroup struct {
	link nodeLink
	offs []uint64
	bufs [][]byte
}

// ReadPagesBatch implements fpga.BatchTranslator: it resolves every base
// to its live placement, groups the pages by destination node, and
// issues one scatter-gather read per node. All bases are resolved before
// any wire traffic, so a translation failure aborts with no partial
// fetch; per-node reads then run back to back (the caller overlaps
// batches with demand work, not nodes with each other — one stalled node
// failing fast beats interleaved partial fills).
func (rm *resourceManager) ReadPagesBatch(now simclock.Duration, bases []mem.Addr, bufs [][]byte) (simclock.Duration, error) {
	if len(bases) != len(bufs) {
		return now, fmt.Errorf("core: batch read: %d bases, %d buffers", len(bases), len(bufs))
	}
	rm.mu.Lock()
	groups := make(map[uint64]*batchGroup, 2)
	var order []*batchGroup
	for i, base := range bases {
		l, off, err := rm.translateLocked(base)
		if err != nil {
			rm.mu.Unlock()
			return now, err
		}
		g, ok := groups[l.key()]
		if !ok {
			g = &batchGroup{link: l}
			groups[l.key()] = g
			order = append(order, g)
		}
		g.offs = append(g.offs, off)
		g.bufs = append(g.bufs, bufs[i])
	}
	rm.mu.Unlock()
	latest := now
	for _, g := range order {
		done, err := g.link.readPages(now, g.offs, g.bufs)
		if err != nil {
			return now, err
		}
		if done > latest {
			latest = done
		}
	}
	return latest, nil
}

// placement is one eviction destination for an address.
type placement struct {
	link      nodeLink
	remoteOff uint64 // byte offset of addr within the node's pool
}

// placementsFor returns every configured replica destination for addr
// (for eviction, which must update all copies).
func (rm *resourceManager) placementsFor(addr mem.Addr) ([]placement, error) {
	return rm.placementsInto(addr, nil)
}

// placementsInto is placementsFor appending into a caller-owned scratch
// slice (reset to length zero first), so the per-eviction lookup does
// not allocate. Placement is pure translation: every configured replica
// is returned, live or not. A replica the rack cannot link (expelled
// node, stale incarnation) gets a deadLink stand-in — the ship to it
// fails, the retained-entry protocol keeps the payload, and a repair
// flip later remaps the retained entries onto the replacement node.
// Dropping a dead placement here would silently discard the only copy
// of a victim's dirty lines.
func (rm *resourceManager) placementsInto(addr mem.Addr, dst []placement) ([]placement, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	dst = dst[:0]
	s, ok := rm.alloc.SlabFor(addr)
	if !ok {
		return dst, fmt.Errorf("core: address %v not in any slab", addr)
	}
	for _, pl := range rm.replicas[s.ID] {
		l, err := rm.rack.link(pl.Node, pl.Epoch)
		if err != nil {
			l = deadLink{nodeID: pl.Node, ep: pl.Epoch}
		}
		dst = append(dst, placement{
			link:      l,
			remoteOff: pl.RemoteOff + uint64(addr-pl.Base),
		})
	}
	if len(dst) == 0 {
		return dst, fmt.Errorf("core: address %v has no configured placement", addr)
	}
	return dst, nil
}

// replicaMove describes one placement change discovered by a refresh: the
// retained eviction entries buffered for the old (node, incarnation) in
// the pool-offset window [oldOff, oldOff+size) must be rebased onto
// newLink at newOff.
type replicaMove struct {
	oldKey  uint64 // linkKeyFor(old node, old incarnation)
	oldOff  uint64 // old member's pool base offset
	size    uint64
	newLink nodeLink
	newOff  uint64 // new member's pool base offset
	// retire marks a move whose old member is still alive (a migration
	// flip, not a repair flip). A repair move must outlive the settle —
	// the dead incarnation's key can never carry traffic again, and new
	// evictions for the window must keep rebasing onto the replacement.
	// A migration source, by contrast, stays registered and its pool
	// window is eventually reused by a fresh carve; once the retained
	// entries have drained, the move must be deleted or it would silently
	// rewrite entries bound for the window's next tenant.
	retire bool
}

// refreshPlacements re-fetches every placement group from the controller
// and swaps in the current membership. It returns the set of replica
// moves (old member replaced by a repaired copy elsewhere) for the
// evictor to remap its retained entries, and whether anything changed.
func (rm *resourceManager) refreshPlacements() ([]replicaMove, bool, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	// Drop the seal fences: any member still sealed after the refresh gets
	// re-marked by the next rejected ship, and a flipped-away member's
	// fence is obsolete.
	for k := range rm.sealed {
		delete(rm.sealed, k)
	}
	var moves []replicaMove
	changed := false
	for gid, old := range rm.replicas {
		cur, err := rm.rack.slabPlacements(gid)
		if err != nil {
			return moves, changed, fmt.Errorf("core: placement refresh for group %d: %w", gid, err)
		}
		if len(cur) != len(old) {
			return moves, changed, fmt.Errorf("core: placement group %d changed size %d -> %d",
				gid, len(old), len(cur))
		}
		same := true
		for i := range cur {
			if cur[i].Node != old[i].Node || cur[i].Epoch != old[i].Epoch ||
				cur[i].RemoteOff != old[i].RemoteOff {
				same = false
				break
			}
		}
		if same {
			continue
		}
		for i := range cur {
			o, n := old[i], cur[i]
			if o.Node == n.Node && o.Epoch == n.Epoch && o.RemoteOff == n.RemoteOff {
				continue
			}
			nl, err := rm.rack.link(n.Node, n.Epoch)
			if err != nil {
				return moves, changed, fmt.Errorf("core: link repaired placement node %d: %w", n.Node, err)
			}
			// The repaired copy is behind until the retained entries are
			// re-shipped onto it; make it unreadable before the install
			// below can route a fetch to it.
			rm.suspect[linkKeyFor(n.Node, n.Epoch)] = struct{}{}
			// If the old member's link still resolves, its node is alive:
			// this is a migration flip, and the move must retire once the
			// retained entries drain (the source window will be reused).
			_, oldLinkErr := rm.rack.link(o.Node, o.Epoch)
			moves = append(moves, replicaMove{
				oldKey:  linkKeyFor(o.Node, o.Epoch),
				oldOff:  o.RemoteOff,
				size:    o.Size,
				newLink: nl,
				newOff:  n.RemoteOff,
				retire:  oldLinkErr == nil,
			})
		}
		rm.replicas[gid] = cur
		changed = true
	}
	return moves, changed, nil
}

// attachGroup maps another runtime's placement group into this address
// space in reader mode: the primary slab registers for translation at
// the writer's base address (same VA, so shared pointers stay valid)
// without joining the free list, and the full membership installs for
// replica failover. Returns the primary slab.
func (rm *resourceManager) attachGroup(members []Slab) (Slab, error) {
	if len(members) == 0 {
		return Slab{}, fmt.Errorf("core: attach of empty placement group")
	}
	primary := members[0]
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, dup := rm.replicas[primary.ID]; dup {
		return Slab{}, fmt.Errorf("core: placement group %d already mapped", primary.ID)
	}
	if err := rm.alloc.Attach(primary); err != nil {
		return Slab{}, err
	}
	rm.replicas[primary.ID] = members
	rm.attached[primary.ID] = struct{}{}
	return primary, nil
}

// detachGroup unmaps a reader-mode group installed by attachGroup.
func (rm *resourceManager) detachGroup(group uint64) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, ok := rm.attached[group]; !ok {
		return
	}
	rm.alloc.Detach(group)
	delete(rm.replicas, group)
	delete(rm.attached, group)
}

// groupFor resolves addr to its placement group and primary slab.
func (rm *resourceManager) groupFor(addr mem.Addr) (Slab, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	s, ok := rm.alloc.SlabFor(addr)
	return s, ok
}

// attachedGroup reports whether group is a reader-mode attachment and
// returns its primary slab.
func (rm *resourceManager) attachedGroup(group uint64) (Slab, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, ok := rm.attached[group]; !ok {
		return Slab{}, false
	}
	return rm.replicas[group][0], true
}

// attachedGroupFor resolves addr to a reader-mode attachment, if any.
func (rm *resourceManager) attachedGroupFor(addr mem.Addr) (Slab, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	s, ok := rm.alloc.SlabFor(addr)
	if !ok {
		return Slab{}, false
	}
	if _, at := rm.attached[s.ID]; !at {
		return Slab{}, false
	}
	return s, true
}

// Malloc allocates size bytes of disaggregated memory, growing the slab
// pool as needed.
func (rm *resourceManager) Malloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("core: zero-size malloc")
	}
	if size > rm.cfg.SlabSize {
		return 0, fmt.Errorf("core: allocation of %d exceeds slab size %d", size, rm.cfg.SlabSize)
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if addr, err := rm.alloc.Alloc(size); err == nil {
			return addr, nil
		}
		if err := rm.growLocked(); err != nil {
			return 0, err
		}
	}
	return rm.alloc.Alloc(size)
}

// Free releases an allocation.
func (rm *resourceManager) Free(addr mem.Addr) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.alloc.Free(addr)
}

// releaseAll returns every slab (and replica) to the rack. The address
// space is unusable afterwards; only Close calls it.
func (rm *resourceManager) releaseAll() error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var firstErr error
	for id, placements := range rm.replicas {
		// Reader-mode attachments are not ours to release: the owning
		// writer returns them to the rack.
		if _, att := rm.attached[id]; !att {
			for _, s := range placements {
				if err := rm.rack.release(s); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		delete(rm.replicas, id)
		delete(rm.attached, id)
	}
	rm.alloc = slab.NewAllocator()
	return firstErr
}
