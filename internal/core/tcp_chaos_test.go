package core

import (
	"bytes"
	"net"
	"testing"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Chaos tests: the §4.5 failure modes exercised end-to-end over real TCP
// sockets, with cluster.FaultListener injecting the network misbehavior
// and the transport's deadlines/retries (plus the runtime's replication
// and MCE paths) recovering from it.

// chaosTr is a fast-failing, deep-retry wire policy for these tests.
func chaosTr() cluster.Transport {
	return cluster.Transport{
		DialTimeout:    time.Second,
		RequestTimeout: 2 * time.Second,
		MaxRetries:     10,
		BackoffBase:    500 * time.Microsecond,
		BackoffMax:     10 * time.Millisecond,
		Seed:           31,
	}
}

// tcpChaosRig starts a controller and n memory-node daemons, optionally
// wrapping each node's listener in a fault injector, and returns the
// controller address plus per-node servers for later sabotage.
func tcpChaosRig(t *testing.T, n int, nodeFaults *cluster.FaultConfig) (string, []*cluster.MemoryNodeServer) {
	t.Helper()
	ctrl := cluster.NewController()
	cs, err := cluster.ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	t.Cleanup(func() { cc.Close() })
	var srvs []*cluster.MemoryNodeServer
	for i := 0; i < n; i++ {
		node := cluster.NewMemoryNode(i, 64<<20)
		var ns *cluster.MemoryNodeServer
		if nodeFaults != nil {
			inner, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			cfg := *nodeFaults
			cfg.Seed += int64(i)
			ns = cluster.ServeMemoryNodeOn(node, cluster.NewFaultListener(inner, cfg))
		} else {
			ns, err = cluster.ServeMemoryNode(node, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
		}
		t.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, ns)
	}
	return cs.Addr(), srvs
}

// TestTCPReplicaFailoverOverWire is §4.5 memory-node failure, over real
// sockets: with Replicas=2, killing the primary's daemon mid-run must
// leave every read answerable from the surviving replica, and the
// failovers must show up in FailureStats.
func TestTCPReplicaFailoverOverWire(t *testing.T) {
	addr, srvs := tcpChaosRig(t, 3, nil)
	cfg := smallConfig()
	cfg.Replicas = 2
	cfg.LocalCacheBytes = 8 * mem.PageSize
	k := NewKonaTCPWith(cfg, addr, chaosTr())

	const pages = 32
	base, err := k.Malloc(pages * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var now simDurT
	for i := 0; i < pages; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 512)
		if now, err = k.Write(now, base+mem.Addr(i)*mem.PageSize, payload); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	// Drain the cache-line log so both replicas hold the data.
	if now, err = k.Sync(now); err != nil {
		t.Fatal(err)
	}

	// Kill the primary daemon of the slab holding base.
	s, ok := k.rm.alloc.SlabFor(base)
	if !ok {
		t.Fatal("no slab for base")
	}
	primary := k.rm.replicas[s.ID][0].Node
	srvs[primary].Close()

	buf := make([]byte, 512)
	for i := 0; i < pages; i++ {
		if now, err = k.Read(now, base+mem.Addr(i)*mem.PageSize, buf); err != nil {
			t.Fatalf("read page %d after primary death: %v", i, err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i + 1)}, 512)) {
			t.Fatalf("page %d corrupted after failover", i)
		}
	}
	if fs := k.FailureStats(); fs.Failovers == 0 {
		t.Fatalf("no failovers recorded: %+v (primary node %d)", fs, primary)
	}
}

// TestTCPMCEPathOverWire is §4.5 network delay, over real sockets: a
// memory node whose listener stalls every I/O makes remote fetches exceed
// MCETimeout; ReadChecked must record the would-be machine checks and
// still return correct data (the paper's MCA recovery, not a crash).
func TestTCPMCEPathOverWire(t *testing.T) {
	faults := cluster.FaultConfig{Seed: 5, DelayProb: 1, MaxDelay: 3 * time.Millisecond}
	addr, _ := tcpChaosRig(t, 1, &faults)
	cfg := smallConfig()
	cfg.LocalCacheBytes = 4 * mem.PageSize
	k := NewKonaTCPWith(cfg, addr, chaosTr())

	const pages = 8
	base, err := k.Malloc(pages * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var now simDurT
	for i := 0; i < pages; i++ {
		payload := bytes.Repeat([]byte{byte(0xA0 + i)}, 256)
		if now, err = k.Write(now, base+mem.Addr(i)*mem.PageSize, payload); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	if now, err = k.Sync(now); err != nil {
		t.Fatal(err)
	}
	// The cache holds 4 pages; reading all 8 forces remote fetches, each
	// delayed far past the 100µs MCE budget.
	buf := make([]byte, 256)
	for i := 0; i < pages; i++ {
		if now, err = k.ReadChecked(now, base+mem.Addr(i)*mem.PageSize, buf); err != nil {
			t.Fatalf("checked read page %d: %v", i, err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(0xA0 + i)}, 256)) {
			t.Fatalf("page %d corrupted through slow fetches", i)
		}
	}
	if fs := k.FailureStats(); fs.MCEs == 0 {
		t.Fatalf("slow remote fetches recorded no MCEs: %+v", fs)
	}
}

// TestTCPControllerBlipOverWire is §4.5's control-plane outage: the
// controller's listener drops a quarter of all I/O, yet slab allocation
// (retried with request-ID dedup) keeps the runtime growing, and the
// controller's books stay consistent — no slab carved twice.
func TestTCPControllerBlipOverWire(t *testing.T) {
	ctrl := cluster.NewController()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := cluster.NewFaultListener(inner, cluster.FaultConfig{Seed: 17, DropProb: 0.25})
	cs := cluster.ServeControllerOn(ctrl, fl)
	t.Cleanup(func() { cs.Close() })

	cc := cluster.DialControllerTransport(cs.Addr(), chaosTr())
	t.Cleanup(func() { cc.Close() })
	node := cluster.NewMemoryNode(0, 64<<20)
	ns, err := cluster.ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	for i := 0; i < 20; i++ {
		err = cc.RegisterNode(0, 64<<20, ns.Addr())
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("registration through blips: %v", err)
	}

	cfg := smallConfig()
	cfg.SlabSize = 1 << 20
	k := NewKonaTCPWith(cfg, cs.Addr(), chaosTr())
	const allocs = 8
	var now simDurT
	for i := 0; i < allocs; i++ {
		a, err := k.Malloc(cfg.SlabSize) // each Malloc needs a fresh slab
		if err != nil {
			t.Fatalf("malloc %d through controller blips: %v", i, err)
		}
		if now, err = k.Write(now, a, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	ctrlNode, _ := ctrl.Node(0)
	if _, used := ctrlNode.Capacity(); used != allocs*cfg.SlabSize {
		t.Fatalf("controller carved %d bytes for %d slabs of %d — retries leaked", used, allocs, cfg.SlabSize)
	}
	if fl.Faults() == 0 {
		t.Fatalf("no faults injected; test proves nothing")
	}
}
