package core

import (
	"fmt"

	"kona/internal/cluster"
	"kona/internal/fpga"
	"kona/internal/mem"
	"kona/internal/rdma"
	"kona/internal/simclock"
)

// EvictionBench drives the Eviction Handler directly with synthetic
// victims — the §6.4 microbenchmark: `pages` pages, each carrying the
// given dirty bitmap, pushed through the cache-line log to the remote
// host. It returns the total eviction-path virtual time, the Fig 11c
// breakdown, and the eviction counters.
//
// The remote side really receives the data: each flush lands in the
// memory node's log region and is scattered by the Cache-line Log
// Receiver, whose acknowledgment timing feeds the AckWait slice.
func EvictionBench(ctrl *cluster.Controller, cfg Config, pages int, dirty mem.LineBitmap) (simclock.Duration, Breakdown, EvictStats, error) {
	cfg = cfg.withDefaults()
	rm := newResourceManager(cfg, newSimRack(ctrl))
	ev := newEvictor(rm, cfg)

	if !dirty.Any() {
		return 0, Breakdown{}, EvictStats{}, fmt.Errorf("core: eviction bench needs at least one dirty line")
	}
	base, err := rm.Malloc(uint64(pages) * mem.PageSize)
	if err != nil {
		return 0, Breakdown{}, EvictStats{}, err
	}
	data := make([]byte, mem.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	var now simclock.Duration
	for p := 0; p < pages; p++ {
		now, err = ev.EvictPage(now, fpga.Victim{
			Base:  base + mem.Addr(p*mem.PageSize),
			Data:  data,
			Dirty: dirty,
		})
		if err != nil {
			return now, ev.Breakdown(), ev.Stats(), err
		}
	}
	now, err = ev.Flush(now)
	return now, ev.Breakdown(), ev.Stats(), err
}

// EvictionBenchSG runs the same microbenchmark through the NIC's
// scatter-gather path instead of the cache-line log: per page, one gather
// write collects the dirty segments (no local copy) into the node's log
// region, which the receiver still has to scatter. The paper tried this
// and found it "consistently worse than Kona ... due to inefficiencies in
// gathering many different entries" (§6.4); this bench reproduces that
// comparison for the ablation experiment.
func EvictionBenchSG(ctrl *cluster.Controller, cfg Config, pages int, dirty mem.LineBitmap) (simclock.Duration, error) {
	cfg = cfg.withDefaults()
	sr := newSimRack(ctrl)
	rm := newResourceManager(cfg, sr)
	if !dirty.Any() {
		return 0, fmt.Errorf("core: eviction bench needs at least one dirty line")
	}
	base, err := rm.Malloc(uint64(pages) * mem.PageSize)
	if err != nil {
		return 0, err
	}
	// The FMem frames are registered with the NIC, so gathers read them
	// directly — the no-copy advantage of the approach.
	frame := sr.localEP.RegisterMR(mem.PageSize)
	segs := dirty.Segments()
	var now simclock.Duration
	const batch = 16
	var wrs []rdma.GatherWR
	var rl *rdmaLink
	flush := func() error {
		if len(wrs) == 0 {
			return nil
		}
		wrs[len(wrs)-1].Signaled = true
		done, err := rl.qp.PostGather(now, wrs)
		if err != nil {
			return err
		}
		rl.qp.PollCQ()
		now = done
		wrs = wrs[:0]
		return nil
	}
	for p := 0; p < pages; p++ {
		pls, err := rm.placementsFor(base + mem.Addr(p*mem.PageSize))
		if err != nil {
			return now, err
		}
		var ok bool
		rl, ok = pls[0].link.(*rdmaLink)
		if !ok {
			return now, fmt.Errorf("core: scatter-gather bench requires the simulated RDMA transport")
		}
		var sges []rdma.SGE
		for _, seg := range segs {
			sges = append(sges, rdma.SGE{
				Local:    frame,
				LocalOff: seg.First * mem.CacheLineSize,
				Len:      seg.N * mem.CacheLineSize,
			})
		}
		wrs = append(wrs, rdma.GatherWR{
			SGEs:      sges,
			RemoteKey: rl.node.LogKey(),
			RemoteOff: (p % 64) * mem.PageSize % (cluster.LogRegionSize - mem.PageSize),
		})
		if len(wrs) >= batch {
			if err := flush(); err != nil {
				return now, err
			}
		}
	}
	if err := flush(); err != nil {
		return now, err
	}
	return now, nil
}
