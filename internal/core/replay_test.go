package core

import (
	"testing"

	"kona/internal/mem"
	"kona/internal/trace"
)

func TestReplayTraceBasics(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	accs := []trace.Access{
		{Addr: 0, Size: 64, Kind: trace.Write},
		{Addr: 4096, Size: 128, Kind: trace.Read},
		{Addr: 64, Size: 0, Kind: trace.Write}, // ignored
		{Addr: 8192, Size: 32, Kind: trace.Write},
	}
	res, err := ReplayTrace(k, trace.NewSliceStream(accs), 16*mem.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 3 {
		t.Errorf("accesses = %d, want 3 (zero-size skipped)", res.Accesses)
	}
	if res.BytesWritten != 96 || res.BytesRead != 128 {
		t.Errorf("bytes = %d/%d", res.BytesRead, res.BytesWritten)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed = %v", res.Elapsed)
	}
	// The written data reached remote memory (Sync ran): dirty lines were
	// shipped.
	if k.EvictStats().LinesShipped == 0 {
		t.Errorf("replay did not drain to remote")
	}
}

func TestReplayTraceErrors(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	if _, err := ReplayTrace(k, trace.NewSliceStream(nil), 0, 0); err == nil {
		t.Errorf("zero footprint accepted")
	}
	// Access escaping the footprint fails cleanly.
	accs := []trace.Access{{Addr: mem.Addr(2 * mem.PageSize), Size: 8, Kind: trace.Write}}
	if _, err := ReplayTrace(k, trace.NewSliceStream(accs), mem.PageSize, 0); err == nil {
		t.Errorf("out-of-footprint access accepted")
	}
}

func TestReplayTraceMaxAccesses(t *testing.T) {
	k := NewKona(smallConfig(), newCluster(1))
	accs := make([]trace.Access, 100)
	for i := range accs {
		accs[i] = trace.Access{Addr: mem.Addr(i * 64), Size: 8, Kind: trace.Write}
	}
	res, err := ReplayTrace(k, trace.NewSliceStream(accs), mem.PageSize*4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 10 {
		t.Errorf("accesses = %d, want 10 (capped)", res.Accesses)
	}
}

func TestLeapPrefetchStrided(t *testing.T) {
	mk := func(depth int) *KonaVM {
		cfg := smallConfig()
		cfg.LocalCacheBytes = 512 * mem.PageSize
		k := NewKonaVM(cfg, newCluster(1))
		if depth > 0 {
			k.EnableLeapPrefetch(depth)
		}
		return k
	}
	run := func(k *KonaVM) simDurT {
		addr, err := k.Malloc(256 * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		var now simDurT
		for p := 0; p < 256; p += 2 {
			now, err = k.Read(now, addr+mem.Addr(p*mem.PageSize), buf)
			if err != nil {
				t.Fatal(err)
			}
		}
		return now
	}
	plain := run(mk(0))
	leap := mk(8)
	leapTime := run(leap)
	if leap.Stats().Prefetches == 0 {
		t.Fatalf("Leap never prefetched")
	}
	if leapTime*2 >= plain {
		t.Errorf("Leap (%v) should cut the strided fault time (%v) at least in half", leapTime, plain)
	}
	// Faults drop accordingly.
	if leap.Stats().Fetches >= 128 {
		t.Errorf("leap still demand-fetched %d of 128 pages", leap.Stats().Fetches)
	}
}

func TestLeapRandomNoHarm(t *testing.T) {
	// On random access the predictor must stay quiet.
	cfg := smallConfig()
	k := NewKonaVM(cfg, newCluster(1))
	k.EnableLeapPrefetch(8)
	addr, err := k.Malloc(256 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	var now simDurT
	order := []int{77, 3, 191, 44, 250, 9, 130, 61, 200, 17, 99, 240, 5, 160, 33}
	for _, p := range order {
		now, err = k.Read(now, addr+mem.Addr(p*mem.PageSize), buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	if k.Stats().Prefetches > 2 {
		t.Errorf("random access triggered %d prefetches", k.Stats().Prefetches)
	}
}
