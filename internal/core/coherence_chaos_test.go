package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
)

// Cross-runtime consistency harness (DESIGN.md §14): one writer and K
// reader runtimes — separate Kona instances with separate caches —
// share a placement group over a live TCP rack. The writer publishes
// versioned records; the readers poll invalidations and must never
// observe a torn record (payload from one version under another's
// header), a per-slot version regression, or — after the final publish
// — anything but the final round. Mid-run a replica memnode is killed
// (seed-picked) and the slab repaired onto the spare, so the checks
// hold across failover, re-replication, and the lease table's fence
// carry-through. `make chaos` runs this under -race with a rotating
// KONA_CHAOS_SEED.

const (
	cohSlots      = 16  // one record per page: a record never spans pages
	cohRecordSize = 256 // 8-byte version header + deterministic payload
	cohFinalRound = 24
	cohKillRound  = 8 // victim dies after this round's publish
	cohHealRound  = 10
)

// cohRecord is the one true record for (slot, version): any observed
// record must byte-equal the regenerated one for its own header
// version, which catches torn reads and lost lines in one comparison.
func cohRecord(slot int, version uint64) []byte {
	rec := make([]byte, cohRecordSize)
	binary.BigEndian.PutUint64(rec, version)
	rng := rand.New(rand.NewSource(int64(version)<<8 ^ int64(slot)))
	rng.Read(rec[8:])
	return rec
}

func TestChaosCoherenceReadersOverWire(t *testing.T) {
	seed := chaosSeed(t, 4)
	const readers = 2
	const leaseTTL = time.Second

	// Rack: controller + 3 memnode daemons over real sockets; the chaos
	// hand kills a daemon by closing its listener (a dead process, the
	// failure mode health probes detect over the wire).
	ctrl := cluster.NewController()
	ctrl.SetLeaseTTL(leaseTTL)
	cs, err := cluster.ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	cc := cluster.DialController(cs.Addr())
	t.Cleanup(func() { cc.Close() })
	var srvs []*cluster.MemoryNodeServer
	for i := 0; i < 3; i++ {
		node := cluster.NewMemoryNode(i, 64<<20)
		ns, err := cluster.ServeMemoryNode(node, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ns.Close() })
		if err := cc.RegisterNode(i, 64<<20, ns.Addr()); err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, ns)
	}
	repairTr := cluster.NewTCPRepairTransport(cs.NodeAddr, cluster.DefaultTransport())
	t.Cleanup(func() { repairTr.Close() })
	engine := cluster.NewRepairEngine(ctrl, repairTr, cluster.RepairConfig{BytesPerSec: 512 << 20})

	cfg := smallConfig()
	cfg.Replicas = 2
	w := NewKonaTCPWith(cfg, cs.Addr(), chaosTr())
	var wnow simDurT

	// Round 1: seed every slot, share the group, flush + publish, so the
	// readers attach onto a fully published region.
	base, err := w.Malloc(cohSlots * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < cohSlots; slot++ {
		wnow = mustWrite(t, w, wnow, base+mem.Addr(slot)*mem.PageSize, cohRecord(slot, 1))
	}
	group, err := w.ShareWriter(base)
	if err != nil {
		t.Fatal(err)
	}
	if wnow, err = w.Sync(wnow); err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for ri := 0; ri < readers; ri++ {
		r := NewKonaTCPWith(cfg, cs.Addr(), chaosTr())
		rbase, rsize, err := r.AttachReader(group)
		if err != nil {
			t.Fatalf("reader %d attach: %v", ri, err)
		}
		if base < rbase || base+cohSlots*mem.PageSize > rbase+mem.Addr(rsize) {
			t.Fatalf("reader %d: region [%v,+%d pages) outside attached [%v,+%d)", ri, base, cohSlots, rbase, rsize)
		}
		wg.Add(1)
		go func(ri int, r *Kona) {
			defer wg.Done()
			var rnow simDurT
			lastSeen := make([]uint64, cohSlots)
			buf := make([]byte, cohRecordSize)
			for {
				// Observe the done flag BEFORE polling: a poll that starts
				// after the writer's final publish must surface it, making
				// the last pass an exact staleness check.
				final := done.Load()
				if _, err := r.PollInvalidations(); err != nil {
					t.Errorf("reader %d: poll: %v", ri, err)
					return
				}
				for slot := 0; slot < cohSlots; slot++ {
					rnow, err = r.Read(rnow, base+mem.Addr(slot)*mem.PageSize, buf)
					if err != nil {
						t.Errorf("reader %d: slot %d read: %v", ri, slot, err)
						return
					}
					v := binary.BigEndian.Uint64(buf)
					if v < lastSeen[slot] {
						t.Errorf("reader %d: slot %d version regressed %d -> %d", ri, slot, lastSeen[slot], v)
						return
					}
					if !bytes.Equal(buf, cohRecord(slot, v)) {
						t.Errorf("reader %d: slot %d torn record under version %d", ri, slot, v)
						return
					}
					if final && v != cohFinalRound {
						t.Errorf("reader %d: slot %d stale at version %d after final publish %d", ri, slot, v, cohFinalRound)
						return
					}
					lastSeen[slot] = v
				}
				if final {
					return
				}
			}
		}(ri, r)
	}

	// Writer rounds, with the chaos hand striking mid-run: kill one of
	// the two replica holders (seed-picked) after round 8's publish, let
	// the ship-failure reports expel it over the next rounds, repair onto
	// the spare after round 10, and keep publishing on the healed rack.
	var victim Slab
	for round := uint64(2); round <= cohFinalRound; round++ {
		for slot := 0; slot < cohSlots; slot++ {
			wnow = mustWrite(t, w, wnow, base+mem.Addr(slot)*mem.PageSize, cohRecord(slot, round))
		}
		if wnow, err = w.Sync(wnow); err != nil {
			t.Fatalf("round %d sync: %v", round, err)
		}
		switch round {
		case cohKillRound:
			members := groupMembersFor(w, base)
			if len(members) != 2 {
				t.Fatalf("members = %+v, want 2 replicas", members)
			}
			victim = members[int(uint64(seed)%2)]
			srvs[victim.Node].Close()
		case cohHealRound:
			ctrl.HealthSweep() // backstop; the ship-failure report usually beat it
			if ctrl.DegradedCount() == 0 {
				t.Fatal("victim loss not detected")
			}
			drainRepairs(t, engine, ctrl)
			if st := engine.Stats(); st.Flips == 0 {
				t.Fatalf("repair drained with zero flips: %+v", st)
			}
		}
	}
	done.Store(true)
	wg.Wait()

	// Epilogue: the writer idles past the TTL; a rival takeover bumps the
	// epoch and re-arms the fences (including on the repaired member), so
	// the zombie's next flush dies at the memnodes instead of corrupting
	// the published region.
	time.Sleep(leaseTTL + 200*time.Millisecond)
	if _, err := ctrl.AcquireLease(group, 0xDEAD, cluster.LeaseWriter, 0); err != nil {
		t.Fatalf("takeover after writer idled past TTL: %v", err)
	}
	wnow = mustWrite(t, w, wnow, base, cohRecord(0, cohFinalRound+1))
	if _, err := w.Sync(wnow); !cluster.IsLeaseFencedErr(err) && !cluster.IsLeaseConflictErr(err) {
		t.Fatalf("zombie writer sync: got %v, want lease-fenced or lease-conflict", err)
	}

	fs := w.FailureStats()
	if fs.ShipFailureReports == 0 {
		t.Errorf("writer never reported the dead replica (victim %+v)", victim)
	}
	if fs.PlacementRefreshes == 0 {
		t.Errorf("writer never refreshed placements after the repair flip")
	}
	ls := ctrl.LeaseSnapshot()
	if ls.Publishes < cohFinalRound {
		t.Errorf("publishes = %d, want >= %d", ls.Publishes, cohFinalRound)
	}
	if ls.Expirations == 0 || ls.Takeovers == 0 {
		t.Errorf("expirations=%d takeovers=%d, want both > 0", ls.Expirations, ls.Takeovers)
	}
}
