package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kona/internal/cluster"
	"kona/internal/mem"
	"kona/internal/rdma"
	"kona/internal/simclock"
)

// The runtime's data plane is transport-agnostic: every memory node is
// reached through a nodeLink, and node discovery/slab allocation through a
// rack. Two implementations exist:
//
//   - the simulated RDMA fabric (simRack/rdmaLink): in-process, with the
//     calibrated virtual-time cost model — what the experiments use;
//   - real TCP daemons (tcpRack/tcpLink): cmd/kona-controller and
//     cmd/kona-memnode processes, with wall-clock time folded into the
//     virtual clock — what a networked deployment uses.

// nodeLink is the transport to one memory node incarnation.
type nodeLink interface {
	id() int
	// key uniquely identifies the (node, incarnation) pair this link
	// reaches. The evictor buffers per-key, so a node that crashes and
	// rejoins under a new incarnation gets a fresh batch instead of
	// inheriting the dead incarnation's retained entries.
	key() uint64
	healthy() bool
	// readPage fills buf with one page at pool offset off.
	readPage(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error)
	// readPages gathers len(offs) equally-sized spans into the matching
	// bufs elements, coalescing into one round trip when the transport
	// supports scatter-gather reads.
	readPages(now simclock.Duration, offs []uint64, bufs [][]byte) (simclock.Duration, error)
	// writePage stores data at pool offset off.
	writePage(now simclock.Duration, off uint64, data []byte) (simclock.Duration, error)
	// shipLog delivers a packed cache-line log — given as scatter
	// segments in ship order, typically one slice of the evictor's pack
	// arena — to the node's receiver; ackDue is when the receiver's
	// acknowledgment lands, entries how many log entries the receiver
	// unpacked. The TCP transport writev's the segments straight from
	// their arena; the simulated fabric stages them into its log MR.
	shipLog(now simclock.Duration, packed [][]byte) (done, ackDue simclock.Duration, entries int, err error)
	// injectDelay adds artificial latency (failure testing); transports
	// that cannot are explicit about it.
	injectDelay(d simclock.Duration) error
}

// rack is the control plane: slab allocation, release, link construction
// and the fault-tolerance surface (failure reports, placement refresh).
type rack interface {
	allocSlab(size uint64) (slab Slab, err error)
	allocReplicated(size uint64, replicas int) ([]Slab, error)
	release(s Slab) error
	// link returns the transport to a node at a specific incarnation
	// (epoch); 0 means "the current incarnation". Linking a node the
	// rack no longer knows (or a stale incarnation) errors; callers that
	// must keep buffering for such a placement substitute a deadLink.
	link(node int, epoch uint64) (nodeLink, error)
	// reportShipFailure tells the controller a node's log ships keep
	// failing so it can probe and expel the node (DESIGN.md §10).
	reportShipFailure(node int) error
	// reportLoad pushes this runtime's ship-pending backlog toward one
	// node into the controller's load map (DESIGN.md §13). Best-effort:
	// a lost report only delays the next load-map update.
	reportLoad(node int, pending uint64) error
	// slabPlacements returns a placement group's current members.
	slabPlacements(group uint64) ([]Slab, error)
	// Lease verbs drive the controller's per-group ownership directory
	// (DESIGN.md §14): one writer or N readers per placement group, with
	// epoch fencing on handover.
	acquireLease(group, runtime uint64, mode int, ttl time.Duration) (cluster.LeaseGrant, error)
	renewLease(group, runtime uint64, mode int, ttl time.Duration) (cluster.LeaseGrant, error)
	releaseLease(group, runtime uint64) error
	publishLease(group, runtime uint64) (cluster.LeaseGrant, error)
	// setRuntime stamps this runtime's identity onto data-path writes so
	// memnode lease fences can tell holders apart. Must be called before
	// the first link is constructed.
	setRuntime(id uint64)
	// placementEpoch returns the controller's placement epoch; a change
	// means cached placements may be stale.
	placementEpoch() (uint64, error)
	// pipelined reports whether the transport benefits from concurrent
	// per-node operations. The simulated fabric serializes everything
	// through one virtual-time NIC model and must stay single-threaded
	// for reproducibility; real TCP links overlap round trips.
	pipelined() bool
}

// linkKeyFor packs a (node id, incarnation) pair into one evictor/link
// map key.
func linkKeyFor(node int, epoch uint64) uint64 {
	return uint64(uint32(node))<<32 | (epoch & 0xffffffff)
}

// deadLink stands in for a placement whose node the rack cannot link —
// removed from the controller, or a stale incarnation. Every operation
// errors and healthy() is false, but its existence lets the evictor keep
// buffering entries for the lost replica (the retained-entry protocol)
// until a repair flip remaps them onto the replacement node.
type deadLink struct {
	nodeID int
	ep     uint64
}

func (l deadLink) id() int       { return l.nodeID }
func (l deadLink) key() uint64   { return linkKeyFor(l.nodeID, l.ep) }
func (l deadLink) healthy() bool { return false }

func (l deadLink) err() error {
	return fmt.Errorf("core: memory node %d (epoch %d) unavailable", l.nodeID, l.ep)
}

func (l deadLink) readPage(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	return now, l.err()
}

func (l deadLink) readPages(now simclock.Duration, offs []uint64, bufs [][]byte) (simclock.Duration, error) {
	return now, l.err()
}

func (l deadLink) writePage(now simclock.Duration, off uint64, data []byte) (simclock.Duration, error) {
	return now, l.err()
}

func (l deadLink) shipLog(now simclock.Duration, packed [][]byte) (simclock.Duration, simclock.Duration, int, error) {
	return now, now, 0, l.err()
}

func (l deadLink) injectDelay(simclock.Duration) error { return l.err() }

// --- simulated RDMA transport -----------------------------------------

// simRack adapts the in-process controller. mu guards the lazily built
// link map: links are created from the fetch path (under the resource
// manager's lock) but also from eviction placement, which may run
// concurrently under a different shard's lock.
type simRack struct {
	ctrl    *cluster.Controller
	localEP *rdma.Endpoint
	mu      sync.Mutex
	runtime uint64               // writer identity stamped on log ships
	links   map[uint64]*rdmaLink // keyed by linkKeyFor(node, incarnation)
}

func newSimRack(ctrl *cluster.Controller) *simRack {
	return &simRack{
		ctrl:    ctrl,
		localEP: rdma.NewEndpoint("klib"),
		links:   make(map[uint64]*rdmaLink),
	}
}

func (r *simRack) allocSlab(size uint64) (Slab, error) { return r.ctrl.AllocSlab(size) }

func (r *simRack) allocReplicated(size uint64, replicas int) ([]Slab, error) {
	return r.ctrl.AllocReplicatedSlab(size, replicas)
}

func (r *simRack) release(s Slab) error { return r.ctrl.ReleaseSlab(s) }

func (r *simRack) pipelined() bool { return false }

func (r *simRack) reportShipFailure(node int) error {
	r.ctrl.ReportNodeFailure(node)
	return nil
}

func (r *simRack) reportLoad(node int, pending uint64) error {
	r.ctrl.ReportLoad(node, cluster.LoadSample{PendingBytes: pending})
	return nil
}

func (r *simRack) slabPlacements(group uint64) ([]Slab, error) {
	members, ok := r.ctrl.Placements(group)
	if !ok {
		return nil, fmt.Errorf("core: unknown placement group %d", group)
	}
	return members, nil
}

func (r *simRack) placementEpoch() (uint64, error) {
	return r.ctrl.PlacementEpoch(), nil
}

func (r *simRack) acquireLease(group, runtime uint64, mode int, ttl time.Duration) (cluster.LeaseGrant, error) {
	return r.ctrl.AcquireLease(group, runtime, mode, ttl)
}

func (r *simRack) renewLease(group, runtime uint64, mode int, ttl time.Duration) (cluster.LeaseGrant, error) {
	return r.ctrl.RenewLease(group, runtime, mode, ttl)
}

func (r *simRack) releaseLease(group, runtime uint64) error {
	return r.ctrl.ReleaseLease(group, runtime)
}

func (r *simRack) publishLease(group, runtime uint64) (cluster.LeaseGrant, error) {
	return r.ctrl.PublishLease(group, runtime)
}

func (r *simRack) setRuntime(id uint64) {
	r.mu.Lock()
	r.runtime = id
	r.mu.Unlock()
}

func (r *simRack) link(node int, epoch uint64) (nodeLink, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, registered := r.ctrl.Node(node)
	if epoch == 0 {
		// Resolve "current incarnation".
		if !registered {
			return nil, fmt.Errorf("core: memory node %d not registered", node)
		}
		epoch = n.Incarnation()
	}
	k := linkKeyFor(node, epoch)
	if l, ok := r.links[k]; ok {
		return l, nil
	}
	if !registered {
		return nil, fmt.Errorf("core: memory node %d not registered", node)
	}
	if inc := n.Incarnation(); inc != 0 && epoch != 0 && inc != epoch {
		return nil, fmt.Errorf("core: memory node %d is incarnation %d, want %d", node, inc, epoch)
	}
	l := &rdmaLink{
		lkey:    k,
		node:    n,
		writer:  r.runtime,
		qp:      rdma.Connect(r.localEP, n.Endpoint(), rdma.DefaultCostModel()),
		staging: r.localEP.RegisterMR(mem.PageSize),
		logBuf:  r.localEP.RegisterMR(cluster.LogRegionSize),
	}
	r.links[k] = l
	return l, nil
}

// rdmaLink reaches a simulated memory node with one-sided verbs. Its
// mutex is the serial-NIC funnel for the concurrent runtime: the link
// owns one staging MR, one log MR and one QP, so every verb — from any
// FMem shard — passes through the lock one at a time. That matches the
// hardware (one QP has one send queue) and keeps the virtual-time NIC
// model's serialization assumption intact under concurrent callers.
type rdmaLink struct {
	node   *cluster.MemoryNode
	lkey   uint64
	writer uint64 // runtime identity checked by the node's lease fences

	mu      sync.Mutex
	qp      *rdma.QP
	staging *rdma.MR
	logBuf  *rdma.MR
}

func (l *rdmaLink) id() int       { return l.node.ID() }
func (l *rdmaLink) key() uint64   { return l.lkey }
func (l *rdmaLink) healthy() bool { return !l.node.Failed() }

func (l *rdmaLink) readPage(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readPageLocked(now, off, buf)
}

func (l *rdmaLink) readPageLocked(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	done, err := l.qp.PostSend(now, []rdma.WR{{
		Op: rdma.OpRead, Local: l.staging, RemoteKey: l.node.PoolKey(),
		RemoteOff: int(off), Len: len(buf), Signaled: true,
	}})
	if err != nil {
		return now, err
	}
	l.qp.PollCQ()
	copy(buf, l.staging.Bytes())
	return done, nil
}

// readPages on the simulated fabric issues the reads back to back: the
// virtual-time NIC model serializes verbs anyway, so a batched form
// would not change the timeline — it exists for interface parity.
func (l *rdmaLink) readPages(now simclock.Duration, offs []uint64, bufs [][]byte) (simclock.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	for i, off := range offs {
		if now, err = l.readPageLocked(now, off, bufs[i]); err != nil {
			return now, err
		}
	}
	return now, nil
}

func (l *rdmaLink) writePage(now simclock.Duration, off uint64, data []byte) (simclock.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	copy(l.staging.Bytes(), data)
	done, err := l.qp.PostSend(now, []rdma.WR{{
		Op: rdma.OpWrite, Local: l.staging, RemoteKey: l.node.PoolKey(),
		RemoteOff: int(off), Len: len(data), Signaled: true,
	}})
	if err != nil {
		return now, err
	}
	l.qp.PollCQ()
	return done, nil
}

func (l *rdmaLink) shipLog(now simclock.Duration, packed [][]byte) (simclock.Duration, simclock.Duration, int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Stage the segments contiguously into the log MR — the simulated
	// one-sided write needs the bytes in registered memory, and the
	// virtual-time cost depends only on the total length, so the timeline
	// is byte-identical to the old single-slice form.
	dst := l.logBuf.Bytes()
	total := 0
	for _, seg := range packed {
		total += copy(dst[total:], seg)
	}
	done, err := l.qp.PostSend(now, []rdma.WR{{
		Op: rdma.OpWrite, Local: l.logBuf, RemoteKey: l.node.LogKey(),
		RemoteOff: 0, Len: total, Signaled: true,
	}})
	if err != nil {
		return now, now, 0, err
	}
	l.qp.PollCQ()
	entries, service, err := l.node.UnpackLogFrom(l.writer, total)
	if err != nil {
		return done, done, 0, err
	}
	return done, done + service + 500, entries, nil // +ack flight
}

func (l *rdmaLink) injectDelay(d simclock.Duration) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.qp.InjectDelay(d)
	return nil
}

// --- TCP transport ------------------------------------------------------

// tcpRack adapts a remote controller daemon; wall-clock latencies are
// folded into the virtual clock. The cluster.Transport policy (deadlines,
// retry budget, pool size) it is built with applies to the controller
// client and to every node link it constructs.
type tcpRack struct {
	mu      sync.Mutex
	tr      cluster.Transport
	client  *cluster.ControllerClient
	runtime uint64 // writer identity stamped on node-link writes
	addrs   map[int]string
	// epochs is the last incarnation learned for each node (from slab
	// epochs and placement refreshes); link(node, 0) resolves through it.
	epochs map[int]uint64
	links  map[uint64]*tcpLink // keyed by linkKeyFor(node, incarnation)
}

func newTCPRack(controllerAddr string) *tcpRack {
	return newTCPRackWith(controllerAddr, cluster.DefaultTransport())
}

func newTCPRackWith(controllerAddr string, tr cluster.Transport) *tcpRack {
	return &tcpRack{
		tr:     tr,
		client: cluster.DialControllerTransport(controllerAddr, tr),
		addrs:  make(map[int]string),
		epochs: make(map[int]uint64),
		links:  make(map[uint64]*tcpLink),
	}
}

// noteEpochLocked records a node's incarnation learned from a slab.
func (r *tcpRack) noteEpochLocked(s Slab) {
	if s.Epoch != 0 {
		r.epochs[s.Node] = s.Epoch
	}
}

func (r *tcpRack) allocSlab(size uint64) (Slab, error) {
	s, addr, err := r.client.AllocSlab(size)
	if err != nil {
		return Slab{}, err
	}
	r.mu.Lock()
	r.addrs[s.Node] = addr
	r.noteEpochLocked(s)
	r.mu.Unlock()
	return s, nil
}

func (r *tcpRack) allocReplicated(size uint64, replicas int) ([]Slab, error) {
	slabs, addrs, err := r.client.AllocReplicatedSlab(size, replicas)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	for id, a := range addrs {
		r.addrs[id] = a
	}
	for _, s := range slabs {
		r.noteEpochLocked(s)
	}
	r.mu.Unlock()
	return slabs, nil
}

func (r *tcpRack) release(s Slab) error { return r.client.ReleaseSlab(s) }

func (r *tcpRack) pipelined() bool { return true }

func (r *tcpRack) reportShipFailure(node int) error {
	_, err := r.client.ReportFailure(node)
	return err
}

func (r *tcpRack) reportLoad(node int, pending uint64) error {
	return r.client.ReportLoad(node, cluster.LoadSample{PendingBytes: pending})
}

func (r *tcpRack) slabPlacements(group uint64) ([]Slab, error) {
	members, addrs, err := r.client.SlabPlacements(group)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	for id, a := range addrs {
		r.addrs[id] = a
	}
	for _, s := range members {
		r.noteEpochLocked(s)
	}
	r.mu.Unlock()
	return members, nil
}

func (r *tcpRack) placementEpoch() (uint64, error) { return r.client.Epoch() }

func (r *tcpRack) acquireLease(group, runtime uint64, mode int, ttl time.Duration) (cluster.LeaseGrant, error) {
	return r.client.AcquireLease(group, runtime, mode, ttl)
}

func (r *tcpRack) renewLease(group, runtime uint64, mode int, ttl time.Duration) (cluster.LeaseGrant, error) {
	return r.client.RenewLease(group, runtime, mode, ttl)
}

func (r *tcpRack) releaseLease(group, runtime uint64) error {
	return r.client.ReleaseLease(group, runtime)
}

func (r *tcpRack) publishLease(group, runtime uint64) (cluster.LeaseGrant, error) {
	return r.client.PublishLease(group, runtime)
}

func (r *tcpRack) setRuntime(id uint64) {
	r.mu.Lock()
	r.runtime = id
	r.mu.Unlock()
}

func (r *tcpRack) link(node int, epoch uint64) (nodeLink, error) {
	r.mu.Lock()
	if epoch == 0 {
		epoch = r.epochs[node]
	}
	k := linkKeyFor(node, epoch)
	if l, ok := r.links[k]; ok {
		r.mu.Unlock()
		return l, nil
	}
	addr, ok := r.addrs[node]
	runtime := r.runtime
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no address known for memory node %d", node)
	}
	// Construct the client outside the rack lock: concurrent eviction
	// shippers and the fetch path both call link(), and holding r.mu
	// across client construction (and any dial it may one day perform)
	// would serialize them behind connection setup.
	l := &tcpLink{nodeID: node, epoch: epoch, client: cluster.DialMemoryNodeTransport(addr, r.tr)}
	l.client.SetEpoch(epoch)
	l.client.SetRuntime(runtime)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.links[k]; ok {
		// Lost the construction race; keep the established link.
		l.client.Close()
		return existing, nil
	}
	r.links[k] = l
	return l, nil
}

// healthTTL is how long a tcpLink trusts its last Ping verdict. Health is
// consulted on every translation (fetch and eviction placement), so an
// uncached check would cost one RTT per page operation.
const healthTTL = 250 * time.Millisecond

// tcpLink reaches a real memory-node daemon.
type tcpLink struct {
	nodeID int
	epoch  uint64
	client *cluster.MemoryNodeClient

	// health is the cached Ping verdict and its timestamp packed into one
	// atomic word: UnixNano()<<1 | okBit, with 0 meaning never checked /
	// invalidated. Verdict and timestamp travel together, so a reader can
	// never pair a fresh timestamp with a stale verdict (or vice versa) —
	// the torn read a two-field cache would allow now that every FMem
	// shard consults health on its own goroutine.
	health atomic.Int64
}

func (l *tcpLink) id() int     { return l.nodeID }
func (l *tcpLink) key() uint64 { return linkKeyFor(l.nodeID, l.epoch) }

// healthy pings the node, trusting a cached verdict for healthTTL. Any
// data-path error invalidates the cache (noteFailure) so failover does
// not wait out the TTL on a node that just stopped answering.
func (l *tcpLink) healthy() bool {
	if h := l.health.Load(); h != 0 {
		if time.Since(time.Unix(0, h>>1)) < healthTTL {
			return h&1 == 1
		}
	}
	ok := l.client.Ping() == nil
	w := time.Now().UnixNano() << 1
	if ok {
		w |= 1
	}
	// Concurrent probes race benignly: last Store wins and every candidate
	// value is a valid fresh verdict.
	l.health.Store(w)
	return ok
}

// noteFailure drops the cached health verdict after a data-path error so
// the next healthy() probes the node immediately.
func (l *tcpLink) noteFailure() {
	l.health.Store(0)
}

// elapse folds a measured wall-clock duration into virtual time.
func elapse(now simclock.Duration, start time.Time) simclock.Duration {
	return now + simclock.Duration(time.Since(start))
}

func (l *tcpLink) readPage(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	start := time.Now()
	// ReadInto lands the reply payload directly in the caller's page
	// frame — no staging allocation, no copy.
	if err := l.client.ReadInto(off, buf); err != nil {
		l.noteFailure()
		return now, err
	}
	return elapse(now, start), nil
}

// readPages gathers every span with one scatter-gather RPC instead of
// len(offs) Read round trips; the concatenated reply is scattered off
// the socket directly into the (non-contiguous) caller frames.
func (l *tcpLink) readPages(now simclock.Duration, offs []uint64, bufs [][]byte) (simclock.Duration, error) {
	if len(offs) == 0 {
		return now, nil
	}
	start := time.Now()
	if err := l.client.ReadPagesInto(offs, bufs); err != nil {
		l.noteFailure()
		return now, err
	}
	return elapse(now, start), nil
}

func (l *tcpLink) writePage(now simclock.Duration, off uint64, data []byte) (simclock.Duration, error) {
	start := time.Now()
	if err := l.client.Write(off, data); err != nil {
		l.noteFailure()
		return now, err
	}
	return elapse(now, start), nil
}

func (l *tcpLink) shipLog(now simclock.Duration, packed [][]byte) (simclock.Duration, simclock.Duration, int, error) {
	start := time.Now()
	// Each segment is one writev iovec straight out of the pack arena;
	// the daemon lands the payload directly in its log region.
	entries, err := l.client.WriteLogVec(packed...)
	if err != nil {
		l.noteFailure()
		return now, now, 0, err
	}
	done := elapse(now, start)
	return done, done, entries, nil // the RPC reply is the acknowledgment
}

func (l *tcpLink) injectDelay(simclock.Duration) error {
	return fmt.Errorf("core: delay injection requires the simulated transport")
}
