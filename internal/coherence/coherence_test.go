package coherence

import (
	"math/rand"
	"testing"

	"kona/internal/mem"
)

// collector accumulates events for assertions.
type collector struct{ events []Event }

func (c *collector) obs(e Event) { c.events = append(c.events, e) }

func (c *collector) count(k EventKind) int {
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func newSys(n int, obs Observer) *System {
	// 64-line caches, 4-way.
	return NewSystem(n, 64, 4, obs)
}

func TestReadGrantsExclusiveThenShared(t *testing.T) {
	var col collector
	s := newSys(2, col.obs)
	c0, c1 := s.Cache(0), s.Cache(1)
	if c0.Read(0) {
		t.Fatalf("cold read hit")
	}
	if got := c0.State(0); got != Exclusive {
		t.Fatalf("sole reader state = %v, want E", got)
	}
	c1.Read(0)
	if c0.State(0) != Shared || c1.State(0) != Shared {
		t.Fatalf("states after second reader: %v/%v, want S/S", c0.State(0), c1.State(0))
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if col.count(FillRead) != 2 {
		t.Errorf("fill-read events = %d, want 2", col.count(FillRead))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := newSys(3, nil)
	c0, c1, c2 := s.Cache(0), s.Cache(1), s.Cache(2)
	c0.Read(0)
	c1.Read(0)
	c2.Read(0)
	c0.Write(0) // S->M upgrade invalidates c1, c2
	if c0.State(0) != Modified {
		t.Fatalf("writer state = %v, want M", c0.State(0))
	}
	if c1.State(0) != Invalid || c2.State(0) != Invalid {
		t.Fatalf("sharers not invalidated: %v/%v", c1.State(0), c2.State(0))
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestExclusiveSilentUpgrade(t *testing.T) {
	var col collector
	s := newSys(1, col.obs)
	c := s.Cache(0)
	c.Read(0)
	before := len(col.events)
	if !c.Write(0) {
		t.Fatalf("E->M write counted as miss")
	}
	if len(col.events) != before {
		t.Errorf("E->M upgrade generated %d directory events, want 0 (silent)", len(col.events)-before)
	}
	if c.State(0) != Modified {
		t.Errorf("state = %v", c.State(0))
	}
}

func TestDirtyReadAfterRemoteWrite(t *testing.T) {
	var col collector
	s := newSys(2, col.obs)
	c0, c1 := s.Cache(0), s.Cache(1)
	c0.Write(0) // c0 holds M
	c1.Read(0)  // must pull data home (writeback event) and share
	if c0.State(0) != Shared || c1.State(0) != Shared {
		t.Fatalf("states = %v/%v, want S/S", c0.State(0), c1.State(0))
	}
	if col.count(Writeback) != 1 {
		t.Errorf("writebacks = %d, want 1 (owner's dirty data collected)", col.count(Writeback))
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestRFOStealsModified(t *testing.T) {
	var col collector
	s := newSys(2, col.obs)
	c0, c1 := s.Cache(0), s.Cache(1)
	c0.Write(0)
	c1.Write(0) // RFO: c0's M copy written back, invalidated
	if c0.State(0) != Invalid || c1.State(0) != Modified {
		t.Fatalf("states = %v/%v, want I/M", c0.State(0), c1.State(0))
	}
	if col.count(Writeback) != 1 {
		t.Errorf("writebacks = %d, want 1", col.count(Writeback))
	}
}

func TestCapacityEvictionEmitsWriteback(t *testing.T) {
	var col collector
	// Tiny cache: 4 lines, direct... 4-way single set.
	s := NewSystem(1, 4, 4, col.obs)
	c := s.Cache(0)
	for i := 0; i < 4; i++ {
		c.Write(mem.LineBase(uint64(i)))
	}
	if col.count(Writeback) != 0 {
		t.Fatalf("premature writebacks")
	}
	c.Write(mem.LineBase(4)) // evicts LRU (line 0, modified)
	if col.count(Writeback) != 1 {
		t.Errorf("writebacks = %d, want 1 — this is the FPGA's dirty signal", col.count(Writeback))
	}
	if c.State(0) != Invalid {
		t.Errorf("line 0 still resident")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestSnoopCollectsDirtyLines(t *testing.T) {
	var col collector
	s := newSys(2, col.obs)
	s.Cache(0).Write(0)
	s.Cache(0).Write(64)
	s.Cache(1).Read(128)
	dirty := s.Snoop(mem.Range{Start: 0, Len: 3 * 64})
	if dirty != 2 {
		t.Errorf("snoop collected %d dirty lines, want 2", dirty)
	}
	for _, c := range []*Cache{s.Cache(0), s.Cache(1)} {
		for l := uint64(0); l < 3; l++ {
			if c.State(mem.LineBase(l)) != Invalid {
				t.Errorf("cache %v line %d still resident after snoop", c.id, l)
			}
		}
	}
	if s.Snoop(mem.Range{}) != 0 {
		t.Errorf("empty snoop returned dirty lines")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestFlushAll(t *testing.T) {
	var col collector
	s := newSys(1, col.obs)
	c := s.Cache(0)
	c.Write(0)
	c.Read(64)
	c.FlushAll()
	if col.count(Writeback) != 1 || col.count(SnoopClean) != 1 {
		t.Errorf("flush events: wb=%d clean=%d, want 1/1", col.count(Writeback), col.count(SnoopClean))
	}
	if c.State(0) != Invalid || c.State(64) != Invalid {
		t.Errorf("lines survive flush")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSystem(0, 64, 4, nil) },
		func() { NewSystem(65, 64, 4, nil) },
		func() { NewSystem(1, 63, 4, nil) },
		func() { NewSystem(1, 64, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: under random concurrent-looking traffic from 4 cores, MESI
// safety invariants always hold and every dirty line eventually produces
// exactly one writeback when snooped.
func TestProtocolInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var col collector
	s := NewSystem(4, 32, 4, col.obs)
	const lines = 64
	for step := 0; step < 20000; step++ {
		c := s.Cache(rng.Intn(4))
		addr := mem.LineBase(uint64(rng.Intn(lines)))
		if rng.Intn(2) == 0 {
			c.Read(addr)
		} else {
			c.Write(addr)
		}
		if step%500 == 0 {
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("step %d: %s", step, msg)
			}
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// Snoop everything: all remaining modified lines drain exactly once.
	before := col.count(Writeback)
	var modified int
	for i := 0; i < 4; i++ {
		for l := uint64(0); l < lines; l++ {
			if s.Cache(i).State(mem.LineBase(l)) == Modified {
				modified++
			}
		}
	}
	got := s.Snoop(mem.Range{Start: 0, Len: lines * 64})
	if got != modified {
		t.Errorf("snoop drained %d, expected %d modified lines", got, modified)
	}
	if col.count(Writeback)-before != modified {
		t.Errorf("writeback events %d, want %d", col.count(Writeback)-before, modified)
	}
}

func TestStats(t *testing.T) {
	s := newSys(1, nil)
	c := s.Cache(0)
	c.Read(0)
	c.Read(0)
	c.Write(0)
	hits, misses, _ := c.Stats()
	if misses != 1 || hits != 2 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}
