package coherence

import (
	"fmt"

	"kona/internal/mem"
)

// Directory-side transactions. Each keeps the dirEntry consistent with the
// cache states and emits the events an attached memory agent observes.

// fillRead services a read miss: downgrade a modified/exclusive owner to
// Shared (collecting its data), record the requester as a sharer, install.
func (s *System) fillRead(req *Cache, line uint64) {
	var data [mem.CacheLineSize]byte
	s.fillData(line, req.id, data[:])
	e := s.entry(line)
	if e.owner >= 0 && e.owner != req.id {
		owner := s.caches[e.owner]
		if owner.downgrade(line) {
			// Owner had it Modified: its data reaches home now.
			s.writebackData(line, data[:])
			s.emit(Event{Kind: Writeback, Line: line, Cache: owner.id})
		}
		e.sharers |= 1 << uint(e.owner)
		e.owner = -1
	}
	s.emit(Event{Kind: FillRead, Line: line, Cache: req.id})
	if e.sharers == 0 && e.owner < 0 {
		// No other copies: grant Exclusive.
		e.owner = req.id
		req.install(line, Exclusive, data[:])
	} else {
		e.sharers |= 1 << uint(req.id)
		req.install(line, Shared, data[:])
	}
	s.dir[line] = e
}

// fillRFO services a write miss: invalidate every other copy (collecting
// modified data), grant Modified to the requester.
func (s *System) fillRFO(req *Cache, line uint64) {
	var data [mem.CacheLineSize]byte
	s.fillData(line, req.id, data[:])
	e := s.entry(line)
	if e.owner >= 0 && e.owner != req.id {
		if s.caches[e.owner].invalidate(line) {
			s.writebackData(line, data[:])
			s.emit(Event{Kind: Writeback, Line: line, Cache: e.owner})
		}
	}
	for id := 0; id < len(s.caches); id++ {
		if e.sharers&(1<<uint(id)) != 0 && id != req.id {
			s.caches[id].invalidate(line)
		}
	}
	s.emit(Event{Kind: FillRFO, Line: line, Cache: req.id})
	s.dir[line] = dirEntry{owner: req.id}
	req.install(line, Modified, data[:])
}

// upgrade services a Shared->Modified transition: invalidate other sharers.
func (s *System) upgrade(req *Cache, line uint64) {
	e := s.entry(line)
	for id := 0; id < len(s.caches); id++ {
		if e.sharers&(1<<uint(id)) != 0 && id != req.id {
			s.caches[id].invalidate(line)
		}
	}
	s.emit(Event{Kind: FillRFO, Line: line, Cache: req.id})
	s.dir[line] = dirEntry{owner: req.id}
}

// writeback records a modified line leaving cache c for home.
func (s *System) writeback(c *Cache, line uint64) {
	e := s.entry(line)
	if e.owner == c.id {
		e.owner = -1
	}
	e.sharers &^= 1 << uint(c.id)
	if e.sharers == 0 && e.owner < 0 {
		delete(s.dir, line)
	} else {
		s.dir[line] = e
	}
	s.emit(Event{Kind: Writeback, Line: line, Cache: c.id})
}

// dropClean records a clean line leaving cache c.
func (s *System) dropClean(c *Cache, line uint64) {
	e := s.entry(line)
	if e.owner == c.id {
		e.owner = -1
	}
	e.sharers &^= 1 << uint(c.id)
	if e.sharers == 0 && e.owner < 0 {
		delete(s.dir, line)
	} else {
		s.dir[line] = e
	}
	s.emit(Event{Kind: SnoopClean, Line: line, Cache: c.id})
}

// Snoop forces the latest copy of every line in r out of all CPU caches,
// as Kona's eviction path must do before writing a page to remote memory
// ("the FPGA ... has to snoop them from CPU caches, in case the CPU has a
// newer copy of the data", §4.4). Modified lines generate Writeback
// events; all copies are invalidated. It returns the number of modified
// lines collected.
func (s *System) Snoop(r mem.Range) int {
	if r.Len == 0 {
		return 0
	}
	dirty := 0
	for line := r.Start.Line(); line <= (r.End() - 1).Line(); line++ {
		e := s.entry(line)
		if e.owner >= 0 {
			owner := s.caches[e.owner]
			var data []byte
			if cl := owner.find(line); cl != nil {
				data = cl.data[:]
			}
			if owner.invalidate(line) {
				s.writebackData(line, data)
				s.emit(Event{Kind: Writeback, Line: line, Cache: e.owner})
				dirty++
			}
		}
		for id := 0; id < len(s.caches); id++ {
			if e.sharers&(1<<uint(id)) != 0 {
				s.caches[id].invalidate(line)
			}
		}
		delete(s.dir, line)
	}
	return dirty
}

// CheckInvariants validates MESI safety across the whole system:
// single-writer (at most one E/M copy, with no other copies), and
// directory bookkeeping matching cache states. It returns a description of
// the first violation, or "" when consistent.
func (s *System) CheckInvariants() string {
	// Gather per-line cache states.
	holders := map[uint64][]struct {
		id int
		st State
	}{}
	for _, c := range s.caches {
		for si := range c.sets {
			for _, cl := range c.sets[si] {
				if cl.state != Invalid {
					holders[cl.line] = append(holders[cl.line], struct {
						id int
						st State
					}{c.id, cl.state})
				}
			}
		}
	}
	for line, hs := range holders {
		exclusive := 0
		for _, h := range hs {
			if h.st == Exclusive || h.st == Modified {
				exclusive++
			}
		}
		if exclusive > 1 || (exclusive == 1 && len(hs) > 1) {
			return eFmt("line %d: single-writer violated: %v", line, hs)
		}
		e := s.entry(line)
		for _, h := range hs {
			switch h.st {
			case Exclusive, Modified:
				if e.owner != h.id {
					return eFmt("line %d: owner %d not recorded (dir %d)", line, h.id, e.owner)
				}
			case Shared:
				if e.sharers&(1<<uint(h.id)) == 0 {
					return eFmt("line %d: sharer %d not recorded", line, h.id)
				}
			}
		}
	}
	return ""
}

func eFmt(format string, args ...any) string {
	return "coherence: " + fmt.Sprintf(format, args...)
}
