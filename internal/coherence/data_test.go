package coherence

import (
	"bytes"
	"math/rand"
	"testing"

	"kona/internal/mem"
)

func newDataSys(n int) (*System, *MapHome) {
	s := NewSystem(n, 64, 4, nil)
	h := NewMapHome()
	s.SetHome(h)
	return s, h
}

func TestLoadSeesHomeData(t *testing.T) {
	s, h := newDataSys(1)
	if err := h.WriteLine(0, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	hit, err := s.Cache(0).Load(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Errorf("cold load hit")
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{7}, 8)) {
		t.Errorf("load = %v", buf)
	}
}

func TestStoreThenCrossCacheLoad(t *testing.T) {
	s, _ := newDataSys(2)
	if _, err := s.Cache(0).Store(10, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := s.Cache(1).Load(10, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Fatalf("cross-cache load = %q (dirty data not forwarded)", buf)
	}
}

func TestEvictionWritesDataHome(t *testing.T) {
	// Single-set cache: fifth line evicts the first (modified) one.
	s := NewSystem(1, 4, 4, nil)
	h := NewMapHome()
	s.SetHome(h)
	c := s.Cache(0)
	if _, err := c.Store(0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := c.Store(mem.LineBase(uint64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 1)
	if err := h.ReadLine(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatalf("home byte = %x, capacity writeback lost data", buf[0])
	}
}

func TestSnoopDeliversDataHome(t *testing.T) {
	s, h := newDataSys(2)
	if _, err := s.Cache(1).Store(64, []byte{0xCD}); err != nil {
		t.Fatal(err)
	}
	s.Snoop(mem.Range{Start: 64, Len: 64})
	buf := make([]byte, 1)
	if err := h.ReadLine(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xCD {
		t.Fatalf("snoop lost data: %x", buf[0])
	}
}

func TestRFOStealsData(t *testing.T) {
	s, _ := newDataSys(2)
	if _, err := s.Cache(0).Store(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// CPU 1 writes one byte in the middle: it must first obtain CPU 0's
	// version (read-for-ownership), not a stale home copy.
	if _, err := s.Cache(1).Store(1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := s.Cache(1).Load(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 9, 3}) {
		t.Fatalf("RFO merged wrong: %v", buf)
	}
}

// Model test: random single-byte loads/stores from 4 CPUs against a
// reference array; coherence must deliver read-your-writes and
// writer-serialization at every step.
func TestDataCoherenceModel(t *testing.T) {
	s, _ := newDataSys(4)
	const lines = 32
	model := make([]byte, lines*64)
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 30000; step++ {
		cpu := rng.Intn(4)
		addr := mem.Addr(rng.Intn(len(model)))
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if _, err := s.Cache(cpu).Store(addr, []byte{v}); err != nil {
				t.Fatal(err)
			}
			model[addr] = v
		} else {
			buf := make([]byte, 1)
			if _, err := s.Cache(cpu).Load(addr, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != model[addr] {
				t.Fatalf("step %d: cpu %d read %d at %v, model %d", step, cpu, buf[0], addr, model[addr])
			}
		}
		if step%5000 == 0 {
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("step %d: %s", step, msg)
			}
		}
	}
}

func TestMapHomeZeroFill(t *testing.T) {
	h := NewMapHome()
	buf := []byte{9, 9, 9}
	if err := h.ReadLine(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[2] != 0 {
		t.Errorf("unwritten line not zero: %v", buf)
	}
}
