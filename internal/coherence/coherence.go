// Package coherence implements a MESI directory cache-coherence protocol
// over 64-byte lines. It is the mechanism Kona's hardware primitives are
// derived from (§2.3, §4): a memory agent (the FPGA's VFMem directory)
// observes every line fill the CPU requests and every dirty writeback the
// CPU caches emit, and that visibility — not page faults — is what drives
// remote fetching and cache-line dirty tracking.
//
// The simulator models N CPU caches (cores) attached to one directory.
// Set-associative capacity forces evictions, which is exactly how the real
// system learns about dirty data: "the FPGA only finds out about dirty
// data when the data is evicted from CPU caches and reaches memory"
// (§4.4). The directory can also snoop a line out of the caches on demand,
// the operation Kona's eviction path uses before writing a page out.
package coherence

import (
	"fmt"

	"kona/internal/mem"
	"kona/internal/telemetry"
)

// State is a MESI line state.
type State uint8

const (
	// Invalid: the cache does not hold the line.
	Invalid State = iota
	// Shared: read-only copy, possibly held by several caches.
	Shared
	// Exclusive: sole clean copy.
	Exclusive
	// Modified: sole dirty copy.
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

// EventKind classifies the directory traffic an attached memory agent
// (the FPGA) observes.
type EventKind uint8

const (
	// FillRead: a cache requested a line for reading (home must supply
	// data — for VFMem lines this triggers a remote fetch).
	FillRead EventKind = iota
	// FillRFO: a cache requested a line for writing (read-for-ownership).
	FillRFO
	// Writeback: a modified line left the caches and reached home — the
	// dirty-tracking signal.
	Writeback
	// SnoopClean: a clean line was dropped from a cache (silent at home in
	// real protocols; surfaced here for observability in tests).
	SnoopClean
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case FillRead:
		return "fill-read"
	case FillRFO:
		return "fill-rfo"
	case Writeback:
		return "writeback"
	default:
		return "snoop-clean"
	}
}

// Event is one observable protocol action at the home directory.
type Event struct {
	Kind EventKind
	// Line is the cache-line index (address / 64).
	Line uint64
	// Cache is the requesting/evicting cache id.
	Cache int
}

// Observer receives home-directory events. The FPGA model registers one.
type Observer func(Event)

// dirEntry is the directory's view of one line.
type dirEntry struct {
	// owner is the cache id holding the line E/M, or -1.
	owner int
	// sharers is a bitmask of caches holding the line S.
	sharers uint64
}

// System is a directory plus its attached CPU caches.
type System struct {
	dir      map[uint64]dirEntry
	caches   []*Cache
	observer Observer
	// home supplies/absorbs line payloads (nil = state-only simulation).
	home Home
	// homeErr latches the first home-memory failure; Load/Store surface it.
	homeErr error
}

// Cache is one core's private cache, set-associative with LRU replacement.
type Cache struct {
	id    int
	sys   *System
	assoc int
	nsets uint64
	sets  [][]cacheLine
	clock uint64

	hits, misses, writebacks uint64
}

type cacheLine struct {
	line    uint64
	state   State
	lastUse uint64
	data    [mem.CacheLineSize]byte
}

// NewSystem builds a coherence domain with nCaches private caches, each of
// capacityLines lines with the given associativity.
func NewSystem(nCaches, capacityLines, assoc int, obs Observer) *System {
	if nCaches <= 0 || nCaches > 64 {
		panic("coherence: cache count must be in 1..64")
	}
	if assoc <= 0 || capacityLines%assoc != 0 {
		panic(fmt.Sprintf("coherence: capacity %d not divisible by assoc %d", capacityLines, assoc))
	}
	s := &System{dir: make(map[uint64]dirEntry), observer: obs}
	nsets := uint64(capacityLines / assoc)
	for i := 0; i < nCaches; i++ {
		sets := make([][]cacheLine, nsets)
		for j := range sets {
			sets[j] = make([]cacheLine, assoc)
		}
		s.caches = append(s.caches, &Cache{id: i, sys: s, assoc: assoc, nsets: nsets, sets: sets})
	}
	return s
}

// Cache returns core i's cache.
func (s *System) Cache(i int) *Cache { return s.caches[i] }

// emit delivers an event to the observer, if any.
func (s *System) emit(e Event) {
	if s.observer != nil {
		s.observer(e)
	}
}

// entry fetches the directory entry for a line.
func (s *System) entry(line uint64) dirEntry {
	if e, ok := s.dir[line]; ok {
		return e
	}
	return dirEntry{owner: -1}
}

// Read performs a load of addr by cache id and reports whether it hit.
func (c *Cache) Read(addr mem.Addr) bool {
	line := addr.Line()
	if cl := c.find(line); cl != nil {
		cl.lastUse = c.touch()
		c.hits++
		return true
	}
	c.misses++
	c.sys.fillRead(c, line)
	return false
}

// Write performs a store to addr by cache id and reports whether it hit
// (hit means no directory transaction was needed or only an upgrade).
func (c *Cache) Write(addr mem.Addr) bool {
	line := addr.Line()
	if cl := c.find(line); cl != nil {
		cl.lastUse = c.touch()
		switch cl.state {
		case Modified:
			c.hits++
			return true
		case Exclusive:
			cl.state = Modified // silent upgrade
			c.hits++
			return true
		case Shared:
			// Upgrade: invalidate other sharers via the directory.
			c.sys.upgrade(c, line)
			cl.state = Modified
			c.hits++
			return true
		}
	}
	c.misses++
	c.sys.fillRFO(c, line)
	return false
}

// find locates a resident line.
func (c *Cache) find(line uint64) *cacheLine {
	set := c.sets[line%c.nsets]
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

func (c *Cache) touch() uint64 {
	c.clock++
	return c.clock
}

// install places a line in state st with the given payload, evicting the
// LRU victim if needed.
func (c *Cache) install(line uint64, st State, data []byte) {
	set := c.sets[line%c.nsets]
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if w.state == Invalid {
			victim = w
			break
		}
		if w.lastUse < victim.lastUse {
			victim = w
		}
	}
	if victim.state != Invalid {
		c.evictLine(victim)
	}
	*victim = cacheLine{line: line, state: st, lastUse: c.touch()}
	copy(victim.data[:], data)
}

// evictLine removes a resident line, writing back if modified.
func (c *Cache) evictLine(cl *cacheLine) {
	switch cl.state {
	case Modified:
		c.writebacks++
		c.sys.writebackData(cl.line, cl.data[:])
		c.sys.writeback(c, cl.line)
	case Exclusive, Shared:
		c.sys.dropClean(c, cl.line)
	}
	cl.state = Invalid
}

// invalidate drops a line without writeback bookkeeping at the cache (the
// directory collected the data if it was modified).
func (c *Cache) invalidate(line uint64) (wasModified bool) {
	if cl := c.find(line); cl != nil {
		wasModified = cl.state == Modified
		cl.state = Invalid
	}
	return wasModified
}

// downgrade moves a line to Shared, reporting whether it was modified.
func (c *Cache) downgrade(line uint64) (wasModified bool) {
	if cl := c.find(line); cl != nil {
		wasModified = cl.state == Modified
		cl.state = Shared
	}
	return wasModified
}

// State returns the cache's state for a line (Invalid when absent).
func (c *Cache) State(addr mem.Addr) State {
	if cl := c.find(addr.Line()); cl != nil {
		return cl.state
	}
	return Invalid
}

// Stats returns hit/miss/writeback counters.
func (c *Cache) Stats() (hits, misses, writebacks uint64) {
	return c.hits, c.misses, c.writebacks
}

// Publish syncs the domain's aggregate hit/miss/writeback counters into
// reg ("coherence.hits", "coherence.misses", "coherence.writebacks") —
// the simulators report through the same registry the runtime uses, at
// sync points rather than per access. No-op on a nil registry.
func (s *System) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var hits, misses, writebacks uint64
	for _, c := range s.caches {
		hits += c.hits
		misses += c.misses
		writebacks += c.writebacks
	}
	reg.Counter("coherence.hits").Store(hits)
	reg.Counter("coherence.misses").Store(misses)
	reg.Counter("coherence.writebacks").Store(writebacks)
}

// FlushAll evicts every resident line (modified lines write back). Used by
// tests and by eviction-time snooping of whole pages.
func (c *Cache) FlushAll() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].state != Invalid {
				c.evictLine(&c.sets[si][wi])
			}
		}
	}
}
