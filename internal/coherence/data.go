package coherence

import "kona/internal/mem"

// Data-carrying protocol. The base simulator tracks MESI state; this file
// adds the payload movement that makes the full §4.3 stack runnable:
// caches hold real 64-byte lines, fills obtain data from the modified
// owner or from home memory, and writebacks deliver data back to home.
//
// Home is whatever sits behind the directory — in Kona's architecture the
// FPGA's VFMem (which in turn is backed by remote memory); in tests a
// plain map.

// Home supplies and absorbs line data at the directory.
type Home interface {
	// ReadLine fills buf (CacheLineSize bytes) with the line's current
	// home value.
	ReadLine(line uint64, buf []byte) error
	// WriteLine accepts a modified line arriving at home.
	WriteLine(line uint64, data []byte) error
}

// MapHome is a trivial in-memory Home for tests and self-contained use.
type MapHome struct {
	lines map[uint64][]byte
}

// NewMapHome returns an empty home memory (all lines zero).
func NewMapHome() *MapHome { return &MapHome{lines: make(map[uint64][]byte)} }

// ReadLine implements Home.
func (h *MapHome) ReadLine(line uint64, buf []byte) error {
	if d, ok := h.lines[line]; ok {
		copy(buf, d)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// WriteLine implements Home.
func (h *MapHome) WriteLine(line uint64, data []byte) error {
	d := make([]byte, mem.CacheLineSize)
	copy(d, data)
	h.lines[line] = d
	return nil
}

// SetHome attaches home memory to the system. Without one, fills zero the
// data (the state-only behavior of the base simulator).
func (s *System) SetHome(h Home) { s.home = h }

// Load copies bytes from the line containing addr into buf (the copy is
// bounded by the line end) and reports whether the access hit. It drives
// the same coherence transitions as Read.
func (c *Cache) Load(addr mem.Addr, buf []byte) (hit bool, err error) {
	hit = c.Read(addr)
	cl := c.find(addr.Line())
	if cl == nil {
		// Read always installs; absence means an installation bug.
		panic("coherence: line absent after Read")
	}
	off := int(uint64(addr) % mem.CacheLineSize)
	copy(buf, cl.data[off:])
	return hit, c.sys.err()
}

// Store copies data into the line containing addr (bounded by the line
// end) and reports whether the access hit. It drives the same coherence
// transitions as Write.
func (c *Cache) Store(addr mem.Addr, data []byte) (hit bool, err error) {
	hit = c.Write(addr)
	cl := c.find(addr.Line())
	if cl == nil {
		panic("coherence: line absent after Write")
	}
	off := int(uint64(addr) % mem.CacheLineSize)
	copy(cl.data[off:], data)
	return hit, c.sys.err()
}

// err surfaces the first home-memory failure recorded during protocol
// actions (which cannot return errors mid-transition).
func (s *System) err() error {
	e := s.homeErr
	s.homeErr = nil
	return e
}

// fillData obtains a line's current value for a requester: from the
// modified/exclusive owner's cache if any, else from home.
func (s *System) fillData(line uint64, except int, buf []byte) {
	e := s.entry(line)
	if e.owner >= 0 && e.owner != except {
		if cl := s.caches[e.owner].find(line); cl != nil {
			copy(buf, cl.data[:])
			return
		}
	}
	// Any sharer has a clean, current copy.
	for id := 0; id < len(s.caches); id++ {
		if e.sharers&(1<<uint(id)) != 0 && id != except {
			if cl := s.caches[id].find(line); cl != nil {
				copy(buf, cl.data[:])
				return
			}
		}
	}
	if s.home != nil {
		if err := s.home.ReadLine(line, buf); err != nil && s.homeErr == nil {
			s.homeErr = err
		}
		return
	}
	for i := range buf {
		buf[i] = 0
	}
}

// writebackData delivers a modified line's payload to home.
func (s *System) writebackData(line uint64, data []byte) {
	if s.home == nil {
		return
	}
	if err := s.home.WriteLine(line, data); err != nil && s.homeErr == nil {
		s.homeErr = err
	}
}
