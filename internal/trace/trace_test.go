package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"kona/internal/mem"
	"kona/internal/simclock"
)

func TestSliceStream(t *testing.T) {
	in := []Access{
		{Time: 1, Addr: 100, Size: 8, Kind: Read},
		{Time: 2, Addr: 200, Size: 16, Kind: Write},
	}
	s := NewSliceStream(in)
	out, err := Collect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %v vs %v", in, out)
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF after drain")
	}
}

func TestCollectMax(t *testing.T) {
	in := make([]Access, 10)
	out, err := Collect(NewSliceStream(in), 3)
	if err != nil || len(out) != 3 {
		t.Errorf("Collect max: len=%d err=%v", len(out), err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var in []Access
	for i := 0; i < 1000; i++ {
		in = append(in, Access{
			Time: simclock.Duration(rng.Int63n(1 << 40)),
			Addr: mem.Addr(rng.Uint64()),
			Size: uint32(rng.Intn(1 << 20)),
			Kind: Kind(rng.Intn(2)),
		})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := Collect(NewReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("binary round trip mismatch")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := Collect(NewReader(&buf), 0)
	if err != nil || len(out) != 0 {
		t.Errorf("empty trace: %v %v", out, err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX0123456789012345678901234567")))
	if _, err := r.Next(); err == nil {
		t.Errorf("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3] // chop the last record
	r := NewReader(bytes.NewReader(data))
	_, err := r.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("expected truncation error, got %v", err)
	}
}

func TestWindowerSplitsByTime(t *testing.T) {
	ms := time.Millisecond
	in := []Access{
		{Time: 0, Addr: 0, Size: 1},
		{Time: 1 * ms, Addr: 1, Size: 1},
		{Time: 10 * ms, Addr: 2, Size: 1}, // window 1
		{Time: 35 * ms, Addr: 3, Size: 1}, // window 3 (window 2 empty)
	}
	w := NewWindower(NewSliceStream(in), 10*ms)
	win0, err := w.Next()
	if err != nil || win0.Index != 0 || len(win0.Accesses) != 2 {
		t.Fatalf("win0 = %+v err=%v", win0, err)
	}
	win1, err := w.Next()
	if err != nil || win1.Index != 1 || len(win1.Accesses) != 1 || win1.Accesses[0].Addr != 2 {
		t.Fatalf("win1 = %+v err=%v", win1, err)
	}
	win3, err := w.Next()
	if err != nil || win3.Index != 3 || len(win3.Accesses) != 1 || win3.Accesses[0].Addr != 3 {
		t.Fatalf("win3 = %+v err=%v (empty windows must be skipped)", win3, err)
	}
	if _, err := w.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF")
	}
}

func TestWindowerEmptyStream(t *testing.T) {
	w := NewWindower(NewSliceStream(nil), time.Second)
	if _, err := w.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF on empty stream")
	}
}

// Property: windowing loses no accesses and each lands in its own window.
func TestWindowerQuick(t *testing.T) {
	f := func(times []uint32) bool {
		length := simclock.Duration(1000)
		var in []Access
		for i, tm := range times {
			in = append(in, Access{Time: simclock.Duration(tm % 100000), Addr: mem.Addr(i), Size: 1})
		}
		// Windower requires non-decreasing times (trace order).
		for i := 1; i < len(in); i++ {
			if in[i].Time < in[i-1].Time {
				in[i].Time = in[i-1].Time
			}
		}
		w := NewWindower(NewSliceStream(in), length)
		total := 0
		for {
			win, err := w.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
			for _, a := range win.Accesses {
				if a.Time < win.Start || a.Time >= win.Start+length {
					return false
				}
				total++
			}
		}
		return total == len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowDirtyStats(t *testing.T) {
	// Two writes to the same line, one read, one write to another page.
	win := Window{Accesses: []Access{
		{Addr: 0, Size: 10, Kind: Write},
		{Addr: 20, Size: 10, Kind: Write},       // same line 0
		{Addr: 100, Size: 50, Kind: Read},       // read: not dirty
		{Addr: 2 * 4096, Size: 64, Kind: Write}, // second page, one line
	}}
	d := WindowDirtyStats(win)
	if d.BytesWritten != 84 {
		t.Errorf("BytesWritten = %d, want 84", d.BytesWritten)
	}
	if d.DirtyLines != 2 {
		t.Errorf("DirtyLines = %d, want 2", d.DirtyLines)
	}
	if d.DirtyPages4K != 2 {
		t.Errorf("DirtyPages4K = %d, want 2", d.DirtyPages4K)
	}
	if d.DirtyPages2M != 1 {
		t.Errorf("DirtyPages2M = %d, want 1", d.DirtyPages2M)
	}
	// Amplifications follow from the counts.
	if got, want := d.Amplification4K(), float64(2*4096)/84; got != want {
		t.Errorf("Amplification4K = %v, want %v", got, want)
	}
	if got, want := d.AmplificationCL(), float64(2*64)/84; got != want {
		t.Errorf("AmplificationCL = %v, want %v", got, want)
	}
	if got, want := d.Amplification2M(), float64(1<<21)/84; got != want {
		t.Errorf("Amplification2M = %v, want %v", got, want)
	}
}

func TestWindowDirtyStatsEmpty(t *testing.T) {
	d := WindowDirtyStats(Window{})
	if d.Amplification4K() != 0 || d.AmplificationCL() != 0 || d.Amplification2M() != 0 {
		t.Errorf("empty window must have zero amplification")
	}
}

func TestWindowDirtyStatsSpanningWrite(t *testing.T) {
	// A write spanning a page boundary dirties lines and pages on both sides.
	win := Window{Accesses: []Access{{Addr: 4096 - 32, Size: 64, Kind: Write}}}
	d := WindowDirtyStats(win)
	if d.DirtyLines != 2 || d.DirtyPages4K != 2 {
		t.Errorf("spanning write: lines=%d pages=%d, want 2,2", d.DirtyLines, d.DirtyPages4K)
	}
}

func TestPageAccessProfile(t *testing.T) {
	p := NewPageAccessProfile()
	p.Add(Access{Addr: 0, Size: 64, Kind: Read})
	p.Add(Access{Addr: 64, Size: 64, Kind: Write})
	p.Add(Access{Addr: 4096 - 32, Size: 64, Kind: Write}) // spans pages 0,1
	if got := p.Reads[0].Count(); got != 1 {
		t.Errorf("page0 read lines = %d, want 1", got)
	}
	if got := p.Writes[0].Count(); got != 2 { // line 1 plus line 63
		t.Errorf("page0 write lines = %d, want 2", got)
	}
	if got := p.Writes[1].Count(); got != 1 {
		t.Errorf("page1 write lines = %d, want 1", got)
	}
	if _, ok := p.Reads[1]; ok {
		t.Errorf("page1 must have no read profile")
	}
	p.Add(Access{Addr: 5, Size: 0}) // zero-size ignored
	if p.Reads[0].Count() != 1 {
		t.Errorf("zero-size access changed profile")
	}
}

func TestFileRoundTrip(t *testing.T) {
	for _, name := range []string{"plain.ktr", "packed.ktr.gz"} {
		path := t.TempDir() + "/" + name
		w, wc, err := CreateFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var in []Access
		for i := 0; i < 500; i++ {
			a := Access{Time: simclock.Duration(i), Addr: mem.Addr(i * 64), Size: 64, Kind: Kind(i % 2)}
			in = append(in, a)
			if err := w.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := wc.Close(); err != nil {
			t.Fatal(err)
		}
		r, rc, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := rc.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("%s: file round trip mismatch", name)
		}
	}
}

func TestFileCompressionShrinks(t *testing.T) {
	dir := t.TempDir()
	write := func(path string) int64 {
		w, wc, err := CreateFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			if err := w.Write(Access{Addr: mem.Addr(i * 64), Size: 64}); err != nil {
				t.Fatal(err)
			}
		}
		if err := wc.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	plain := write(dir + "/a.ktr")
	packed := write(dir + "/a.ktr.gz")
	if packed*4 > plain {
		t.Errorf("gzip trace %d vs plain %d: expected >4x shrink", packed, plain)
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, _, err := OpenFile("/nonexistent/trace.ktr"); err == nil {
		t.Errorf("missing file opened")
	}
	// A .gz path with non-gzip content fails cleanly.
	path := t.TempDir() + "/bogus.ktr.gz"
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(path); err == nil {
		t.Errorf("bogus gzip opened")
	}
}
