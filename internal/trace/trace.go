// Package trace defines the memory-access trace representation that
// connects workload generators to the simulators.
//
// The paper instruments applications with Intel Pin and splits execution
// into discrete time windows (10s for Table 2, 1s for KTracker). Here a
// trace is a stream of Access records carrying a virtual timestamp, and a
// Windower groups them into fixed-length windows for the amplification
// analyses.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"kona/internal/mem"
	"kona/internal/simclock"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a load.
	Read Kind = iota
	// Write is a store.
	Write
)

// String names the access kind.
func (k Kind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Access is one memory operation performed by a simulated application.
type Access struct {
	// Time is the virtual timestamp of the access.
	Time simclock.Duration
	// Addr is the starting virtual address.
	Addr mem.Addr
	// Size is the byte length (a single application-level operation may
	// span several cache lines or pages).
	Size uint32
	// Kind says whether the operation reads or writes.
	Kind Kind
}

// Range returns the byte range the access covers.
func (a Access) Range() mem.Range { return mem.Range{Start: a.Addr, Len: uint64(a.Size)} }

// Stream is a pull-based source of accesses. Next returns io.EOF when the
// workload has finished.
type Stream interface {
	Next() (Access, error)
}

// SliceStream adapts an in-memory slice to a Stream.
type SliceStream struct {
	accesses []Access
	pos      int
}

// NewSliceStream returns a Stream over the given accesses.
func NewSliceStream(a []Access) *SliceStream { return &SliceStream{accesses: a} }

// Next implements Stream.
func (s *SliceStream) Next() (Access, error) {
	if s.pos >= len(s.accesses) {
		return Access{}, io.EOF
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, nil
}

// Rest returns the unconsumed tail of the stream and advances past it.
// Batch consumers (the cache simulator's hot loop) use it to walk the
// backing slice directly instead of paying an interface call per record.
// The returned slice aliases the stream's backing array and must be
// treated as read-only.
func (s *SliceStream) Rest() []Access {
	r := s.accesses[s.pos:]
	s.pos = len(s.accesses)
	return r
}

// Collect drains a stream into a slice, up to max records (0 = no limit).
func Collect(s Stream, max int) ([]Access, error) {
	var out []Access
	for {
		a, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
		if max > 0 && len(out) >= max {
			return out, nil
		}
	}
}

// recordSize is the on-disk size of one encoded access record.
const recordSize = 8 + 8 + 4 + 1

var magic = [4]byte{'K', 'T', 'R', '1'}

// Writer encodes accesses to a binary trace file.
type Writer struct {
	w     *bufio.Writer
	wrote bool
}

// NewWriter returns a Writer emitting the KTR1 binary format to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one access record.
func (t *Writer) Write(a Access) error {
	if !t.wrote {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.wrote = true
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(a.Time))
	binary.LittleEndian.PutUint64(buf[8:], uint64(a.Addr))
	binary.LittleEndian.PutUint32(buf[16:], a.Size)
	buf[20] = byte(a.Kind)
	_, err := t.w.Write(buf[:])
	return err
}

// Flush writes buffered records through. It must be called before the
// underlying writer is closed. An empty trace still gets a valid header.
func (t *Writer) Flush() error {
	if !t.wrote {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.wrote = true
	}
	return t.w.Flush()
}

// Reader decodes a binary trace produced by Writer. It implements Stream.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader returns a Reader over the KTR1 binary format.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next implements Stream.
func (t *Reader) Next() (Access, error) {
	if !t.header {
		var m [4]byte
		if _, err := io.ReadFull(t.r, m[:]); err != nil {
			return Access{}, fmt.Errorf("trace: reading header: %w", err)
		}
		if m != magic {
			return Access{}, fmt.Errorf("trace: bad magic %q", m)
		}
		t.header = true
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Access{}, io.EOF
		}
		return Access{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	return Access{
		Time: simclock.Duration(binary.LittleEndian.Uint64(buf[0:])),
		Addr: mem.Addr(binary.LittleEndian.Uint64(buf[8:])),
		Size: binary.LittleEndian.Uint32(buf[16:]),
		Kind: Kind(buf[20]),
	}, nil
}
