package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// File helpers for the KTR1 format: paths ending in ".gz" are
// transparently gzip-compressed — traces compress well (the record layout
// is highly regular), which matters when capturing full workload runs.

// CreateFile opens path for trace writing, compressing when the name ends
// in .gz. Close the returned closer (it flushes the trace and every
// wrapping layer).
func CreateFile(path string) (*Writer, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		w := NewWriter(f)
		return w, closers{flusher{w}, f}, nil
	}
	gz := gzip.NewWriter(f)
	w := NewWriter(gz)
	return w, closers{flusher{w}, gz, f}, nil
}

// OpenFile opens a trace file for reading, decompressing .gz paths.
func OpenFile(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return NewReader(f), f, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return NewReader(gz), closers{gz, f}, nil
}

// flusher adapts Writer.Flush to io.Closer.
type flusher struct{ w *Writer }

// Close flushes the trace writer.
func (f flusher) Close() error { return f.w.Flush() }

// closers closes a stack of layers in order.
type closers []io.Closer

// Close closes every layer, returning the first error.
func (c closers) Close() error {
	var first error
	for _, cl := range c {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
