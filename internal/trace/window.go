package trace

import (
	"errors"
	"io"

	"kona/internal/mem"
	"kona/internal/simclock"
)

// Window is the set of accesses falling into one fixed-length interval of
// virtual time, in arrival order.
type Window struct {
	// Index is the window ordinal, starting at 0.
	Index int
	// Start is the window's opening virtual time.
	Start simclock.Duration
	// Accesses are the records that fell in [Start, Start+length).
	Accesses []Access
}

// Windower splits a Stream into consecutive fixed-length windows, the way
// the paper splits Pin traces into 10-second (Table 2) or 1-second
// (KTracker) windows.
type Windower struct {
	src     Stream
	length  simclock.Duration
	next    int
	pending *Access
	done    bool
}

// NewWindower returns a Windower cutting src into windows of the given
// virtual length. length must be positive.
func NewWindower(src Stream, length simclock.Duration) *Windower {
	if length <= 0 {
		panic("trace: window length must be positive")
	}
	return &Windower{src: src, length: length}
}

// Next returns the next non-empty window, skipping windows in which the
// application made no accesses. It returns io.EOF after the last window.
func (w *Windower) Next() (Window, error) {
	for {
		win, err := w.nextRaw()
		if err != nil {
			return Window{}, err
		}
		if len(win.Accesses) > 0 {
			return win, nil
		}
	}
}

// nextRaw returns the next window even if empty.
func (w *Windower) nextRaw() (Window, error) {
	if w.done && w.pending == nil {
		return Window{}, io.EOF
	}
	win := Window{
		Index: w.next,
		Start: simclock.Duration(w.next) * w.length,
	}
	end := win.Start + w.length
	if w.pending != nil {
		if w.pending.Time >= end {
			// The pending access belongs to a later window; emit this one
			// empty and let Next skip it.
			w.next++
			return win, nil
		}
		win.Accesses = append(win.Accesses, *w.pending)
		w.pending = nil
	}
	for {
		a, err := w.src.Next()
		if errors.Is(err, io.EOF) {
			w.done = true
			w.next++
			return win, nil
		}
		if err != nil {
			return Window{}, err
		}
		if a.Time >= end {
			w.pending = &a
			w.next++
			return win, nil
		}
		win.Accesses = append(win.Accesses, a)
	}
}

// DirtyStats summarises the write traffic of one window at the three
// tracking granularities of Table 2.
type DirtyStats struct {
	// BytesWritten is the exact number of application-written bytes
	// (the amplification denominator).
	BytesWritten uint64
	// DirtyLines is the number of distinct dirty 64B cache lines.
	DirtyLines uint64
	// DirtyPages4K is the number of distinct dirty 4KB pages.
	DirtyPages4K uint64
	// DirtyPages2M is the number of distinct dirty 2MB pages.
	DirtyPages2M uint64
}

// Amplification4K returns dirty-page bytes over written bytes for 4KB
// tracking; 0 if the window wrote nothing.
func (d DirtyStats) Amplification4K() float64 {
	if d.BytesWritten == 0 {
		return 0
	}
	return float64(d.DirtyPages4K*mem.PageSize) / float64(d.BytesWritten)
}

// Amplification2M returns the 2MB-tracking amplification.
func (d DirtyStats) Amplification2M() float64 {
	if d.BytesWritten == 0 {
		return 0
	}
	return float64(d.DirtyPages2M*mem.HugePageSize) / float64(d.BytesWritten)
}

// AmplificationCL returns the 64B cache-line-tracking amplification.
func (d DirtyStats) AmplificationCL() float64 {
	if d.BytesWritten == 0 {
		return 0
	}
	return float64(d.DirtyLines*mem.CacheLineSize) / float64(d.BytesWritten)
}

// WindowDirtyStats computes the dirty sets of a window. Distinctness is per
// window, matching the paper's methodology: tracking state resets at each
// window boundary (pages are written back between windows).
func WindowDirtyStats(w Window) DirtyStats {
	var d DirtyStats
	lines := make(map[uint64]struct{})
	pages4k := make(map[uint64]struct{})
	pages2m := make(map[uint64]struct{})
	for _, a := range w.Accesses {
		if a.Kind != Write || a.Size == 0 {
			continue
		}
		d.BytesWritten += uint64(a.Size)
		r := a.Range()
		for l := r.Start.Line(); l <= (r.End() - 1).Line(); l++ {
			lines[l] = struct{}{}
		}
		for p := r.Start.Page(); p <= (r.End() - 1).Page(); p++ {
			pages4k[p] = struct{}{}
		}
		for p := r.Start.HugePage(); p <= (r.End() - 1).HugePage(); p++ {
			pages2m[p] = struct{}{}
		}
	}
	d.DirtyLines = uint64(len(lines))
	d.DirtyPages4K = uint64(len(pages4k))
	d.DirtyPages2M = uint64(len(pages2m))
	return d
}

// PageAccessProfile aggregates, per 4KB page, which cache lines a window's
// accesses touched, separately for reads and writes. It is the raw
// material of Figs. 2 and 3.
type PageAccessProfile struct {
	// Reads maps page index to the bitmap of lines read.
	Reads map[uint64]*mem.LineBitmap
	// Writes maps page index to the bitmap of lines written.
	Writes map[uint64]*mem.LineBitmap
}

// NewPageAccessProfile returns an empty profile.
func NewPageAccessProfile() *PageAccessProfile {
	return &PageAccessProfile{
		Reads:  make(map[uint64]*mem.LineBitmap),
		Writes: make(map[uint64]*mem.LineBitmap),
	}
}

// Add folds one access into the profile, splitting it across pages.
func (p *PageAccessProfile) Add(a Access) {
	if a.Size == 0 {
		return
	}
	m := p.Reads
	if a.Kind == Write {
		m = p.Writes
	}
	r := a.Range()
	for page := r.Start.Page(); page <= (r.End() - 1).Page(); page++ {
		bm, ok := m[page]
		if !ok {
			bm = new(mem.LineBitmap)
			m[page] = bm
		}
		pageStart := mem.PageBase(page)
		lo := uint64(0)
		if r.Start > pageStart {
			lo = uint64(r.Start - pageStart)
		}
		hi := uint64(mem.PageSize)
		if r.End() < pageStart+mem.PageSize {
			hi = uint64(r.End() - pageStart)
		}
		bm.MarkWrite(lo, hi-lo)
	}
}
