package fpga

import (
	"bytes"
	"testing"

	"kona/internal/mem"
)

func TestStridePrefetchEndToEnd(t *testing.T) {
	rig := newRigDepth(t, 64, 4)
	f := rig.fpga
	// Stride-2 page touches; after the window fills, the prefetcher
	// should be covering upcoming pages.
	for pg := uint64(0); pg < 20; pg += 2 {
		if _, err := f.LineFill(0, rigBase+mem.Addr(pg*mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().Prefetches == 0 {
		t.Fatalf("stride prefetcher idle")
	}
	// The next stride target should already be resident.
	if !f.Resident(rigBase + 20*mem.PageSize) {
		t.Errorf("stride target not prefetched")
	}
}

// newRigDepth builds a rig with a stride prefetcher of the given depth.
func newRigDepth(t *testing.T, fmemPages, depth int) *testRig {
	t.Helper()
	rig := newRig(t, fmemPages, true)
	// Rebuild the FPGA with stride prefetching on the same translator.
	cfg := Config{FMemSize: uint64(fmemPages) * mem.PageSize, Assoc: 4, Prefetch: true, PrefetchDepth: depth}
	rig.fpga = New(cfg, rig.fpga.translate, func(now simDur, v Victim) simDur {
		rig.victims = append(rig.victims, Victim{Base: v.Base, Data: append([]byte(nil), v.Data...), Dirty: v.Dirty})
		return 0
	})
	return rig
}

func TestStreamBypassProtectsWorkingSet(t *testing.T) {
	mk := func(bypass bool) (*FPGA, *testRig) {
		rig := newRig(t, 8, false) // 8 pages, assoc 4 => 2 sets
		cfg := Config{FMemSize: 8 * mem.PageSize, Assoc: 4, StreamBypass: bypass}
		rig.fpga = New(cfg, rig.fpga.translate, nil)
		return rig.fpga, rig
	}
	run := func(bypass bool) (hotResident int, f *FPGA) {
		f, _ = mk(bypass)
		// Hot working set: pages 0 and 1, touched repeatedly.
		for i := 0; i < 4; i++ {
			for pg := uint64(0); pg < 2; pg++ {
				if _, err := f.LineFill(0, rigBase+mem.Addr(pg*mem.PageSize)); err != nil {
					t.Fatal(err)
				}
			}
		}
		// A long sequential stream of 64 pages floods FMem while the hot
		// pages keep being touched (the mixed pattern the policy targets).
		for pg := uint64(4); pg < 68; pg++ {
			if _, err := f.LineFill(0, rigBase+mem.Addr(pg*mem.PageSize)); err != nil {
				t.Fatal(err)
			}
			if pg%4 == 0 {
				for hot := uint64(0); hot < 2; hot++ {
					if f.Resident(rigBase + mem.Addr(hot*mem.PageSize)) {
						if _, err := f.LineFill(0, rigBase+mem.Addr(hot*mem.PageSize)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
		for pg := uint64(0); pg < 2; pg++ {
			if f.Resident(rigBase + mem.Addr(pg*mem.PageSize)) {
				hotResident++
			}
		}
		return hotResident, f
	}
	without, _ := run(false)
	with, f := run(true)
	if f.Stats().Bypasses == 0 {
		t.Fatalf("stream never detected")
	}
	if with < without {
		t.Errorf("bypass made things worse: %d resident vs %d", with, without)
	}
	if with == 0 {
		t.Errorf("bypass failed to protect the hot set")
	}
}

func TestSubPageFetchMovesLessData(t *testing.T) {
	mkF := func(fetch uint64) *FPGA {
		rig := newRig(t, 64, false)
		cfg := Config{FMemSize: 64 * mem.PageSize, Assoc: 4, FetchBytes: fetch}
		return New(cfg, rig.fpga.translate, nil)
	}
	// Touch one line in each of 32 pages (pure random-access pattern).
	touch := func(f *FPGA) {
		for pg := uint64(0); pg < 32; pg++ {
			if _, err := f.LineFill(0, rigBase+mem.Addr(pg*mem.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
	}
	full := mkF(0) // 4KB
	touch(full)
	sub := mkF(512)
	touch(sub)
	if full.Stats().BytesFetched != 32*mem.PageSize {
		t.Errorf("full fetch bytes = %d", full.Stats().BytesFetched)
	}
	if sub.Stats().BytesFetched != 32*512 {
		t.Errorf("sub fetch bytes = %d, want %d", sub.Stats().BytesFetched, 32*512)
	}
	// Reading another line in the same page triggers a second sub-fetch
	// but no new full fetch.
	if _, err := sub.LineFill(0, rigBase+mem.Addr(16*mem.CacheLineSize)); err != nil {
		t.Fatal(err)
	}
	if sub.Stats().BytesFetched != 32*512+512 {
		t.Errorf("second block fetch missing: %d", sub.Stats().BytesFetched)
	}
}

func TestSubPageRMWPreservesLocalWrites(t *testing.T) {
	rig := newRig(t, 8, false)
	cfg := Config{FMemSize: 8 * mem.PageSize, Assoc: 4, FetchBytes: 512}
	f := New(cfg, rig.fpga.translate, nil)
	// Remote content: distinct bytes.
	for i := range rig.pool.Bytes()[:4096] {
		rig.pool.Bytes()[i] = byte(i % 250)
	}
	// Partial-line local write before any fetch: RMW must merge with
	// remote bytes, and the merged line must survive later block fills.
	if _, err := f.Write(0, rigBase+100, []byte{0xEE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.Read(0, rigBase+96, buf); err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(96 % 250), byte(97 % 250), byte(98 % 250), byte(99 % 250), 0xEE, 0xEF, byte(102 % 250), byte(103 % 250)}
	if !bytes.Equal(buf, want) {
		t.Fatalf("RMW merge = %x, want %x", buf, want)
	}
	// A read in a different block of the same page must not clobber the
	// written line.
	if _, err := f.Read(0, rigBase+2048, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(0, rigBase+100, buf[:2]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xEE || buf[1] != 0xEF {
		t.Fatalf("local write clobbered by block fill: %x", buf[:2])
	}
}

func TestFetchGeometryPanics(t *testing.T) {
	rig := newRig(t, 8, false)
	for _, fb := range []uint64{32, 96, 8192} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fetch bytes %d accepted", fb)
				}
			}()
			New(Config{FMemSize: 8 * mem.PageSize, Assoc: 4, FetchBytes: fb}, rig.fpga.translate, nil)
		}()
	}
}
