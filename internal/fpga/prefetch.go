package fpga

import (
	"kona/internal/prefetch"
	"kona/internal/simclock"
)

// Adaptive stride prefetching over the shared detector (package prefetch).
// Kona can prefetch across page boundaries because its fills never fault —
// the paper's §3 observation that faults stop hardware prefetchers cold.

// prefetchStride runs the stride prefetcher for a demand fill at `page`,
// issuing background fetches at the demand fetch's start time.
func (f *FPGA) prefetchStride(now simclock.Duration, page uint64) {
	for _, target := range f.stride.Observe(page) {
		if f.lookup(target) != nil {
			continue
		}
		if _, fr, err := f.fetchPage(now, target); err == nil {
			fr.prefetched = true
			f.stats.Prefetches++
		}
	}
}

// newPrefetcher keeps the FPGA-local constructor name.
func newPrefetcher(maxDepth int) *prefetch.Detector { return prefetch.New(maxDepth) }
