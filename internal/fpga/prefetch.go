package fpga

import (
	"kona/internal/prefetch"
	"kona/internal/simclock"
)

// Adaptive stride prefetching over the shared detector (package prefetch).
// Kona can prefetch across page boundaries because its fills never fault —
// the paper's §3 observation that faults stop hardware prefetchers cold.

// prefetchStride runs the stride prefetcher for a demand fill at `page`,
// issuing background fetches at the demand fetch's start time. With
// batch fetch enabled (TCP transport) the whole window goes out as one
// scatter-gather read per destination node; otherwise each target is
// fetched with its own round trip. Called with no shard lock held (the
// demand fill's intent is executed post-unlock); each target is fetched
// under its own shard's lock, one at a time.
func (f *FPGA) prefetchStride(now simclock.Duration, page uint64) {
	f.front.mu.Lock()
	targets := f.front.stride.Observe(page)
	// Copy out: the detector reuses its target slice, and the fetches
	// below run outside front.mu.
	window := make([]uint64, len(targets))
	copy(window, targets)
	f.front.mu.Unlock()
	if f.batch != nil && len(window) > 1 {
		bs := f.batchPool.Get().(*batchScratch)
		f.collectBatch(bs, window)
		if len(bs.bases) > 1 {
			// Best-effort, like the serial path: a failed window is
			// simply not prefetched. fetchBatch counts Prefetches for
			// each speculative install.
			_, _ = f.fetchBatch(now, bs, true)
			f.batchPool.Put(bs)
			return
		}
		f.batchPool.Put(bs)
	}
	for _, target := range window {
		f.prefetchOne(now, target)
	}
}

// newPrefetcher keeps the FPGA-local constructor name.
func newPrefetcher(maxDepth int) *prefetch.Detector { return prefetch.New(maxDepth) }
