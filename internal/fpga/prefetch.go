package fpga

import (
	"kona/internal/prefetch"
	"kona/internal/simclock"
)

// Adaptive stride prefetching over the shared detector (package prefetch).
// Kona can prefetch across page boundaries because its fills never fault —
// the paper's §3 observation that faults stop hardware prefetchers cold.

// prefetchStride runs the stride prefetcher for a demand fill at `page`,
// issuing background fetches at the demand fetch's start time. With
// batch fetch enabled (TCP transport) the whole window goes out as one
// scatter-gather read per destination node; otherwise each target is
// fetched with its own round trip.
func (f *FPGA) prefetchStride(now simclock.Duration, page uint64) {
	targets := f.stride.Observe(page)
	if f.batch != nil && len(targets) > 1 {
		if bases := f.collectBatch(targets); len(bases) > 1 {
			// Best-effort, like the serial path: a failed window is
			// simply not prefetched.
			if _, err := f.fetchBatch(now, bases, true); err == nil {
				f.stats.Prefetches += uint64(len(bases))
			}
			return
		}
	}
	for _, target := range targets {
		if f.lookup(target) != nil {
			continue
		}
		if _, fr, err := f.fetchPage(now, target); err == nil {
			fr.prefetched = true
			f.stats.Prefetches++
		}
	}
}

// newPrefetcher keeps the FPGA-local constructor name.
func newPrefetcher(maxDepth int) *prefetch.Detector { return prefetch.New(maxDepth) }
