package fpga

import (
	"bytes"
	"fmt"
	"testing"

	"kona/internal/coherence"
	"kona/internal/mem"
	"kona/internal/rdma"
	"kona/internal/simclock"
)

// testRig wires an FPGA to one simulated memory node.
type testRig struct {
	fpga    *FPGA
	pool    *rdma.MR // remote pool
	victims []Victim
}

// rigTranslator maps VFMem addresses [base, base+size) to pool offsets 0..size.
type rigTranslator struct {
	base    mem.Addr
	size    uint64
	qp      *rdma.QP
	staging *rdma.MR
	poolKey uint32
}

func (t *rigTranslator) Translate(addr mem.Addr) (PageReader, error) {
	if addr < t.base || uint64(addr-t.base) >= t.size {
		return nil, fmt.Errorf("no slab for %v", addr)
	}
	return &rigPage{t: t, off: uint64(addr - t.base)}, nil
}

// rigPage implements PageReader over the test rig's QP.
type rigPage struct {
	t   *rigTranslator
	off uint64
}

func (p *rigPage) ReadRange(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error) {
	done, err := p.t.qp.PostSend(now, []rdma.WR{{
		Op: rdma.OpRead, Local: p.t.staging, RemoteKey: p.t.poolKey,
		RemoteOff: int(p.off + off), Len: len(buf), Signaled: true,
	}})
	if err != nil {
		return now, err
	}
	p.t.qp.PollCQ()
	copy(buf, p.t.staging.Bytes())
	return done, nil
}

const rigBase = mem.Addr(1 << 40)

func newRig(t *testing.T, fmemPages int, prefetch bool) *testRig {
	t.Helper()
	local := rdma.NewEndpoint("compute")
	remote := rdma.NewEndpoint("memnode")
	pool := remote.RegisterMR(1 << 20)
	staging := local.RegisterMR(mem.PageSize)
	qp := rdma.Connect(local, remote, rdma.DefaultCostModel())
	rig := &testRig{pool: pool}
	tr := &rigTranslator{base: rigBase, size: 1 << 20, qp: qp, staging: staging, poolKey: pool.Key()}
	cfg := Config{FMemSize: uint64(fmemPages) * mem.PageSize, Assoc: 4, Prefetch: prefetch}
	rig.fpga = New(cfg, tr, func(now simclock.Duration, v Victim) simclock.Duration {
		cp := Victim{Base: v.Base, Data: append([]byte(nil), v.Data...), Dirty: v.Dirty}
		rig.victims = append(rig.victims, cp)
		return 0
	})
	return rig
}

func TestLineFillFetchesOnceThenHits(t *testing.T) {
	rig := newRig(t, 8, false)
	f := rig.fpga
	d1, err := f.LineFill(0, rigBase)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.RemoteFetches != 1 {
		t.Fatalf("remote fetches = %d, want 1", st.RemoteFetches)
	}
	// Cold fill pays the RDMA page read: well over FMem latency.
	if d1 < 2*simclock.FMemAccess {
		t.Errorf("cold fill latency %v suspiciously low", d1)
	}
	// Same page, different line: FMem hit, no new fetch.
	d2, err := f.LineFill(d1, rigBase+64)
	if err != nil {
		t.Fatal(err)
	}
	st = f.Stats()
	if st.RemoteFetches != 1 || st.FMemHits != 1 {
		t.Errorf("stats after hit = %+v", st)
	}
	if hitLat := d2 - d1; hitLat > simclock.FMemAccess+simclock.FPGADirectory {
		t.Errorf("FMem hit latency %v too high", hitLat)
	}
	if !f.Resident(rigBase) {
		t.Errorf("page not resident")
	}
}

func TestReadSeesRemoteData(t *testing.T) {
	rig := newRig(t, 8, false)
	copy(rig.pool.Bytes()[128:], []byte("remote payload"))
	buf := make([]byte, 14)
	if _, err := rig.fpga.Read(0, rigBase+128, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "remote payload" {
		t.Fatalf("read = %q", buf)
	}
}

func TestReadAcrossPageBoundary(t *testing.T) {
	rig := newRig(t, 8, false)
	for i := range rig.pool.Bytes()[:8192] {
		rig.pool.Bytes()[i] = byte(i % 251)
	}
	buf := make([]byte, 1000)
	start := mem.Addr(4096 - 500)
	if _, err := rig.fpga.Read(0, rigBase+start, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		want := byte((int(start) + i) % 251)
		if buf[i] != want {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], want)
		}
	}
	if rig.fpga.Stats().RemoteFetches != 2 {
		t.Errorf("fetches = %d, want 2 pages", rig.fpga.Stats().RemoteFetches)
	}
}

func TestWriteSetsDirtyBits(t *testing.T) {
	rig := newRig(t, 8, false)
	payload := bytes.Repeat([]byte{0xCD}, 130)
	if _, err := rig.fpga.Write(0, rigBase+100, payload); err != nil {
		t.Fatal(err)
	}
	dirty := rig.fpga.DirtyLines(rigBase)
	// Bytes [100,230) cover lines 1..3.
	if dirty.Count() != 3 || !dirty.Get(1) || !dirty.Get(2) || !dirty.Get(3) {
		t.Errorf("dirty = %b (count %d), want lines 1-3", dirty, dirty.Count())
	}
	// The data is in the frame: read it back.
	buf := make([]byte, 130)
	if _, err := rig.fpga.Read(0, rigBase+100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Errorf("read-back mismatch")
	}
}

func TestEvictionDeliversDirtyVictim(t *testing.T) {
	// FMem of 4 pages, assoc 4 => one set; fifth page evicts LRU.
	rig := newRig(t, 4, false)
	f := rig.fpga
	if _, err := f.Write(0, rigBase, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	for p := 1; p < 4; p++ {
		if _, err := f.LineFill(0, rigBase+mem.Addr(p*mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rig.victims) != 0 {
		t.Fatalf("premature evictions")
	}
	if _, err := f.LineFill(0, rigBase+4*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if len(rig.victims) != 1 {
		t.Fatalf("victims = %d, want 1", len(rig.victims))
	}
	v := rig.victims[0]
	if v.Base != rigBase {
		t.Errorf("victim base = %v, want %v (LRU)", v.Base, rigBase)
	}
	if v.Dirty.Count() != 1 || !v.Dirty.Get(0) {
		t.Errorf("victim dirty = %b", v.Dirty)
	}
	if v.Data[0] != 1 {
		t.Errorf("victim data lost")
	}
	st := f.Stats()
	if st.Evictions != 1 || st.DirtyEvicts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlush(t *testing.T) {
	rig := newRig(t, 8, false)
	f := rig.fpga
	if _, err := f.Write(0, rigBase, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LineFill(0, rigBase+mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if !f.FlushPage(0, rigBase) {
		t.Fatalf("FlushPage missed resident page")
	}
	if f.FlushPage(0, rigBase) {
		t.Fatalf("FlushPage hit non-resident page")
	}
	f.FlushAll(0)
	if f.Occupancy() != 0 {
		t.Errorf("occupancy after FlushAll = %d", f.Occupancy())
	}
	if len(rig.victims) != 2 {
		t.Errorf("victims = %d, want 2", len(rig.victims))
	}
}

func TestPrefetchSequential(t *testing.T) {
	rig := newRig(t, 16, true)
	f := rig.fpga
	// Touch pages 0,1 sequentially: page 2 should be prefetched.
	if _, err := f.LineFill(0, rigBase); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LineFill(0, rigBase+mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Prefetches == 0 {
		t.Fatalf("no prefetch on sequential fills")
	}
	if !f.Resident(rigBase + 2*mem.PageSize) {
		t.Errorf("prefetched page not resident")
	}
	// The prefetched page is a hit now — and the sequential hit keeps the
	// prefetcher running (page 3 fetched in the background).
	hitsBefore := f.Stats().FMemHits
	if _, err := f.LineFill(0, rigBase+2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if f.Stats().FMemHits != hitsBefore+1 {
		t.Errorf("prefetched page was not a hit")
	}
	if !f.Resident(rigBase + 3*mem.PageSize) {
		t.Errorf("prefetch chain stopped on hit")
	}
}

func TestTranslateErrorPropagates(t *testing.T) {
	rig := newRig(t, 8, false)
	if _, err := rig.fpga.LineFill(0, mem.Addr(1)); err == nil {
		t.Fatalf("fill outside slabs succeeded")
	}
	buf := make([]byte, 8)
	if _, err := rig.fpga.Read(0, mem.Addr(1), buf); err == nil {
		t.Fatalf("read outside slabs succeeded")
	}
}

func TestDirectoryContention(t *testing.T) {
	rig := newRig(t, 8, false)
	f := rig.fpga
	// Warm a page, then issue two hits at the same arrival time: the
	// second must depart later (single directory port).
	if _, err := f.LineFill(0, rigBase); err != nil {
		t.Fatal(err)
	}
	// Arrive well after the fill has landed so readyAt is in the past.
	arrival := 100 * simclock.Duration(1000)
	d1, _ := f.LineFill(arrival, rigBase)
	d2, _ := f.LineFill(arrival, rigBase+64)
	if d2 <= d1 {
		t.Errorf("no directory serialization: %v then %v", d1, d2)
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{FMemSize: 0, Assoc: 4},
		{FMemSize: mem.PageSize, Assoc: 0},
		{FMemSize: mem.PageSize * 3, Assoc: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cfg %+v: expected panic", cfg)
				}
			}()
			New(cfg, nil, nil)
		}()
	}
}

func TestCoherenceIntegration(t *testing.T) {
	// Route CPU traffic through the MESI simulator; the FPGA observes the
	// protocol events for a VFMem page.
	rig := newRig(t, 8, false)
	f := rig.fpga
	sys := coherence.NewSystem(1, 64, 4, f.OnCoherenceEvent)
	cpu := sys.Cache(0)
	cpu.Read(rigBase)  // fill-read -> FPGA LineFill -> remote fetch
	cpu.Write(rigBase) // E->M silent upgrade: no event
	st := f.Stats()
	if st.LineFills != 1 || st.RemoteFetches != 1 {
		t.Fatalf("stats after read = %+v", st)
	}
	// Evict the dirty line from the CPU cache: writeback reaches the FPGA
	// and sets the dirty bit.
	cpu.FlushAll()
	if got := f.DirtyLines(rigBase); got.Count() != 1 || !got.Get(0) {
		t.Errorf("dirty after CPU writeback = %b", got)
	}
}
