package fpga

import "kona/internal/simclock"

// simDur shortens simclock.Duration in tests.
type simDur = simclock.Duration
