// Package fpga models the cache-coherent FPGA of Kona's reference
// architecture (§4.3-4.4). The FPGA exports VFMem — a fake physical
// address space larger than its attached DRAM — to the CPU over the
// coherent interconnect, and backs it with remote memory:
//
//   - Line fills: every CPU cache miss to VFMem reaches the FPGA's
//     directory. If the page is cached in FMem the FPGA answers at FMem
//     latency; otherwise it fetches the whole page from the owning memory
//     node over RDMA (cache-remote-data primitive).
//   - Dirty tracking: every modified-line writeback the coherence protocol
//     delivers sets one bit in the page's dirty bitmap
//     (track-local-data primitive).
//   - FMem is a 4-way set-associative cache with page-sized blocks
//     (§4.4 "Local translation"); evictions hand the page's data and its
//     dirty bitmap to the runtime's Eviction Handler.
//   - Remote translation is a consult-only map from VFMem addresses to
//     (node, offset) — the FPGA never updates it (§4.4).
//
// Time is virtual: the single directory pipeline is modeled as a
// simclock.Server, so concurrent simulated threads contend for it the way
// they would for the real FPGA's port.
package fpga

import (
	"fmt"

	"kona/internal/coherence"
	"kona/internal/mem"
	"kona/internal/prefetch"
	"kona/internal/simclock"
)

// PageReader fetches remote data for one VFMem page. The runtime's
// Resource Manager binds each page to a reader over its transport — the
// simulated RDMA fabric or a TCP memory-node connection.
type PageReader interface {
	// ReadRange fills buf with the page's remote contents starting at
	// byte offset off within the page, beginning at virtual time now,
	// and returns the completion time.
	ReadRange(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error)
}

// Translator resolves VFMem addresses to remote pages. The runtime's
// Resource Manager implements it over the slab map; the FPGA only
// consults it (§4.4).
type Translator interface {
	Translate(addr mem.Addr) (PageReader, error)
}

// BatchTranslator is the optional scatter-gather extension of
// Translator: ReadPagesBatch fetches whole pages for several VFMem bases
// at once, coalescing the round trips per destination node. The
// TCP-backed resource manager implements it; the simulated fabric keeps
// the serial path so its virtual-time NIC ordering stays reproducible.
type BatchTranslator interface {
	ReadPagesBatch(now simclock.Duration, bases []mem.Addr, bufs [][]byte) (simclock.Duration, error)
}

// Victim is an FMem page displaced by a fill, handed to the Eviction
// Handler. Data aliases the FPGA's frame; handlers copy what they keep.
type Victim struct {
	// Base is the page's VFMem base address.
	Base mem.Addr
	// Data is the 4KB frame content.
	Data []byte
	// Dirty marks the lines written since the page was fetched.
	Dirty mem.LineBitmap
}

// EvictHandler disposes of a victim page and returns the virtual time the
// disposal consumed on the eviction path (zero if deferred/asynchronous).
type EvictHandler func(now simclock.Duration, v Victim) simclock.Duration

// Config sizes the FPGA.
type Config struct {
	// FMemSize is the FPGA-attached DRAM capacity in bytes.
	FMemSize uint64
	// Assoc is the FMem set associativity (paper: 4).
	Assoc int
	// Prefetch enables next-page prefetch on sequential fill patterns
	// (§4.4: the hardware prefetcher can reach remote memory under Kona).
	Prefetch bool
	// PrefetchDepth caps the adaptive stride prefetcher's window. 0 or 1
	// keeps the classic depth-1 next-page behavior; larger values enable
	// Leap-style stride detection with an adaptive window.
	PrefetchDepth int
	// FetchBytes is the remote fetch granularity: how much of a page one
	// miss pulls over (a power of two between CacheLineSize and PageSize;
	// 0 means PageSize — the paper's choice, §6.2(2)). Smaller values
	// trade spatial-locality exploitation for less wasted transfer on
	// random access; Fig 8d quantifies the trade at simulator level and
	// abl-fetchgran at runtime level.
	FetchBytes uint64
	// StreamBypass implements §4.4's caching decision ("the FPGA ...
	// decides whether to cache the data in FMem or not"): pages arriving
	// in a long sequential run are unlikely to be re-referenced, so they
	// are inserted at LRU position and leave FMem first, protecting the
	// reused working set from streaming pollution.
	StreamBypass bool
}

// DefaultConfig returns the paper's FMem geometry for the given capacity.
func DefaultConfig(fmemSize uint64) Config {
	return Config{FMemSize: fmemSize, Assoc: 4, Prefetch: true}
}

// frame is one FMem page slot.
type frame struct {
	valid bool
	base  mem.Addr // VFMem page base
	data  []byte
	dirty mem.LineBitmap
	// filled marks the lines whose remote contents are present; with
	// sub-page fetch granularity a frame fills incrementally.
	filled  mem.LineBitmap
	lastUse uint64
	// readyAt is the virtual time the fill completes; an access that
	// arrives earlier (e.g. hitting a prefetched page still in flight)
	// waits for it.
	readyAt simclock.Duration
	// prefetched marks frames installed speculatively and not yet used,
	// for prefetcher accuracy accounting.
	prefetched bool
}

// Stats counts FPGA activity.
type Stats struct {
	LineFills     uint64
	FMemHits      uint64
	RemoteFetches uint64
	Writebacks    uint64
	Evictions     uint64
	DirtyEvicts   uint64
	Prefetches    uint64
	// Bypasses counts streaming pages inserted at LRU position.
	Bypasses uint64
	// BytesFetched is the total remote payload pulled (goodput numerator
	// for fetch-granularity studies).
	BytesFetched uint64
}

// FetchHook runs before a remote page fetch. The runtime uses it to
// enforce write-before-read ordering: any buffered eviction-log entries
// covering the page must reach remote memory before the page is re-read,
// or the fetch would observe stale data. It returns the virtual time
// after its work.
type FetchHook func(now simclock.Duration, pageBase mem.Addr) simclock.Duration

// FPGA is the memory agent.
type FPGA struct {
	cfg       Config
	translate Translator
	onEvict   EvictHandler
	onFetch   FetchHook

	// batch, when non-nil, coalesces multi-page fetches (prefetch windows
	// and page-spanning Reads) into scatter-gather reads — see
	// EnableBatchFetch.
	batch BatchTranslator
	// batchBases/batchBufs are the batch path's reusable scratch: targets
	// are read into scratch buffers first and only then installed,
	// because installing mid-batch can evict an earlier target's frame
	// and the install would alias a buffer still being filled.
	batchBases []mem.Addr
	batchBufs  [][]byte

	sets    [][]frame
	nsets   uint64
	tick    uint64
	scratch []byte

	directory simclock.Server
	stats     Stats

	// lastFillPage detects sequential fills for the prefetcher.
	lastFillPage uint64
	// seqRun counts consecutive sequential demand fetches, and
	// lastDemandPage the previous one, for the bypass policy.
	seqRun         int
	lastDemandPage uint64
	// stride is the adaptive stride prefetcher (PrefetchDepth > 1).
	stride *prefetch.Detector
}

// New builds the FPGA model. It panics on invalid geometry (experiment
// setup error).
func New(cfg Config, tr Translator, onEvict EvictHandler) *FPGA {
	if cfg.Assoc <= 0 {
		panic("fpga: associativity must be positive")
	}
	frameBytes := uint64(cfg.Assoc) * mem.PageSize
	if cfg.FMemSize == 0 || cfg.FMemSize%frameBytes != 0 {
		panic(fmt.Sprintf("fpga: FMem size %d not a multiple of assoc*page %d", cfg.FMemSize, frameBytes))
	}
	if cfg.FetchBytes == 0 {
		cfg.FetchBytes = mem.PageSize
	}
	if cfg.FetchBytes < mem.CacheLineSize || cfg.FetchBytes > mem.PageSize ||
		cfg.FetchBytes&(cfg.FetchBytes-1) != 0 {
		panic(fmt.Sprintf("fpga: fetch granularity %d invalid", cfg.FetchBytes))
	}
	nsets := cfg.FMemSize / frameBytes
	sets := make([][]frame, nsets)
	for i := range sets {
		sets[i] = make([]frame, cfg.Assoc)
	}
	if cfg.FetchBytes < mem.PageSize {
		// The sequential prefetcher operates at page granularity; with
		// sub-page fetches the fetch granularity itself is the locality
		// knob.
		cfg.Prefetch = false
	}
	f := &FPGA{cfg: cfg, translate: tr, onEvict: onEvict, sets: sets, nsets: nsets}
	if cfg.Prefetch && cfg.PrefetchDepth > 1 {
		f.stride = newPrefetcher(cfg.PrefetchDepth)
	}
	return f
}

// Stats returns a copy of the counters.
func (f *FPGA) Stats() Stats { return f.stats }

// set returns the FMem set for a VFMem page.
func (f *FPGA) set(page uint64) []frame { return f.sets[page%f.nsets] }

// lookup finds the frame caching the page, or nil.
func (f *FPGA) lookup(page uint64) *frame {
	base := mem.PageBase(page)
	set := f.set(page)
	for i := range set {
		if set[i].valid && set[i].base == base {
			return &set[i]
		}
	}
	return nil
}

// Resident reports whether the page holding addr is cached in FMem.
func (f *FPGA) Resident(addr mem.Addr) bool { return f.lookup(addr.Page()) != nil }

// LineFill services one CPU cache-line request to VFMem at virtual time
// now and returns the completion time. This is the cache-remote-data
// primitive: no page fault is involved; a miss in FMem triggers a
// page-granularity remote fetch.
func (f *FPGA) LineFill(now simclock.Duration, addr mem.Addr) (simclock.Duration, error) {
	f.stats.LineFills++
	// The directory pipeline serializes all requests.
	now = f.directory.Serve(now, simclock.FPGADirectory)
	page := addr.Page()
	line := addr.LineInPage()
	if fr := f.lookup(page); fr != nil {
		f.stats.FMemHits++
		f.tick++
		fr.lastUse = f.tick // LRU refresh on hit
		if fr.readyAt > now {
			// In-flight prefetch: wait for the fill to land.
			now = fr.readyAt
		}
		if fr.prefetched {
			fr.prefetched = false
			if f.stride != nil {
				f.stride.MarkUseful()
			}
		}
		done, err := f.ensureLines(now, fr, page, line, line)
		if err != nil {
			return now, err
		}
		f.maybePrefetch(now, page)
		f.lastFillPage = page
		return done + simclock.FMemAccess, nil
	}
	fr := f.demandFrame(now, page)
	done, err := f.ensureLines(now, fr, page, line, line)
	if err != nil {
		return now, err
	}
	fr.readyAt = done
	// Prefetch is issued at the demand fetch's start time, not its
	// completion: the FPGA pipelines the two NIC operations.
	f.maybePrefetch(now, page)
	f.lastFillPage = page
	return done + simclock.FMemAccess, nil
}

// maybePrefetch issues background fetches on a recognized fill pattern.
// It costs NIC occupancy but no caller latency.
func (f *FPGA) maybePrefetch(now simclock.Duration, page uint64) {
	if !f.cfg.Prefetch {
		return
	}
	if f.stride != nil {
		f.prefetchStride(now, page)
		return
	}
	// Classic depth-1 next-page prefetch on sequential fills.
	if page != f.lastFillPage+1 || f.lookup(page+1) != nil {
		return
	}
	if _, fr, err := f.fetchPage(now, page+1); err == nil {
		fr.prefetched = true
		f.stats.Prefetches++
	}
}

// SetFetchHook installs the pre-fetch ordering hook.
func (f *FPGA) SetFetchHook(h FetchHook) { f.onFetch = h }

// EnableBatchFetch turns on scatter-gather multi-page fetches when the
// translator supports them (and fetches are page-granularity). The
// runtime enables this only on the TCP transport, where coalescing N
// page reads into one frame per node saves N-1 round trips.
func (f *FPGA) EnableBatchFetch() {
	if f.cfg.FetchBytes != mem.PageSize {
		return
	}
	if bt, ok := f.translate.(BatchTranslator); ok {
		f.batch = bt
	}
}

// collectBatch fills batchBases with the non-resident pages among
// targets and sizes batchBufs to match.
func (f *FPGA) collectBatch(targets []uint64) []mem.Addr {
	bases := f.batchBases[:0]
	for _, t := range targets {
		if f.lookup(t) == nil {
			bases = append(bases, mem.PageBase(t))
		}
	}
	return f.sizeBatch(bases)
}

// sizeBatch stores the collected bases back and grows batchBufs to
// cover them.
func (f *FPGA) sizeBatch(bases []mem.Addr) []mem.Addr {
	f.batchBases = bases
	for len(f.batchBufs) < len(bases) {
		f.batchBufs = append(f.batchBufs, make([]byte, mem.PageSize))
	}
	return bases
}

// fetchBatch pulls every base with one scatter-gather read per node and
// installs the pages. The write-before-read hook runs for every target
// before any wire traffic: targets are non-resident, so no install
// during the batch can buffer new eviction entries for them. speculative
// marks the frames as prefetched (accuracy accounting); errors leave the
// pages absent for the demand path to refetch and report.
func (f *FPGA) fetchBatch(now simclock.Duration, bases []mem.Addr, speculative bool) (simclock.Duration, error) {
	if f.onFetch != nil {
		for _, base := range bases {
			now = f.onFetch(now, base)
		}
	}
	bufs := f.batchBufs[:len(bases)]
	done, err := f.batch.ReadPagesBatch(now, bases, bufs)
	if err != nil {
		return now, err
	}
	for i, base := range bases {
		fr := f.demandFrame(now, base.Page())
		copy(fr.data, bufs[i])
		fr.filled = ^mem.LineBitmap(0)
		fr.readyAt = done
		fr.prefetched = speculative
		f.stats.RemoteFetches++
		f.stats.BytesFetched += mem.PageSize
	}
	return done, nil
}

// demandFrame installs an (empty) frame for a demanded page, applying the
// stream-bypass insertion policy.
func (f *FPGA) demandFrame(now simclock.Duration, page uint64) *frame {
	fr := f.install(now, mem.PageBase(page))
	if f.cfg.StreamBypass {
		// Stream detection keys on demand fetches only, so interleaved
		// hits on a hot working set do not break the run.
		if page == f.lastDemandPage+1 {
			f.seqRun++
		} else if page != f.lastDemandPage {
			f.seqRun = 0
		}
		f.lastDemandPage = page
		if f.seqRun > streamRunThreshold {
			// Transient insertion: the page leaves FMem before any
			// re-referenced frame in its set.
			fr.lastUse = 0
			f.stats.Bypasses++
		}
	}
	return fr
}

// ensureLines fetches the missing fetch-granularity blocks covering lines
// [lo, hi] of the frame, returning the completion time. Already-filled
// lines are never overwritten (they may hold newer local writes).
func (f *FPGA) ensureLines(now simclock.Duration, fr *frame, page uint64, lo, hi int) (simclock.Duration, error) {
	fb := int(f.cfg.FetchBytes)
	linesPerBlock := fb / mem.CacheLineSize
	done := now
	var pr PageReader
	base := mem.PageBase(page)
	for block := lo / linesPerBlock; block <= hi/linesPerBlock; block++ {
		first := block * linesPerBlock
		missing := false
		for l := first; l < first+linesPerBlock; l++ {
			if !fr.filled.Get(l) {
				missing = true
				break
			}
		}
		if !missing {
			continue
		}
		if pr == nil {
			if f.onFetch != nil {
				now = f.onFetch(now, base)
				if now > done {
					done = now
				}
			}
			var err error
			pr, err = f.translate.Translate(base)
			if err != nil {
				return now, fmt.Errorf("fpga: translate %v: %w", base, err)
			}
			if f.scratch == nil {
				f.scratch = make([]byte, mem.PageSize)
			}
		}
		off := uint64(first * mem.CacheLineSize)
		blockDone, err := pr.ReadRange(now, off, f.scratch[:fb])
		if err != nil {
			return now, fmt.Errorf("fpga: remote fetch %v+%d: %w", base, off, err)
		}
		f.stats.RemoteFetches++
		f.stats.BytesFetched += uint64(fb)
		for l := first; l < first+linesPerBlock; l++ {
			if !fr.filled.Get(l) {
				lineOff := l * mem.CacheLineSize
				copy(fr.data[lineOff:lineOff+mem.CacheLineSize], f.scratch[lineOff-first*mem.CacheLineSize:])
				fr.filled.Set(l)
			}
		}
		if blockDone > done {
			done = blockDone
		}
	}
	return done, nil
}

// fetchPage pulls a whole page from remote memory into FMem — the
// prefetcher's fill path (page-granularity mode only).
func (f *FPGA) fetchPage(now simclock.Duration, page uint64) (simclock.Duration, *frame, error) {
	fr := f.demandFrame(now, page)
	done, err := f.ensureLines(now, fr, page, 0, mem.LinesPerPage-1)
	if err != nil {
		return now, nil, err
	}
	fr.readyAt = done
	return done, fr, nil
}

// streamRunThreshold is the sequential-run length after which fills are
// treated as streaming.
const streamRunThreshold = 16

// install places a page frame, evicting the set's LRU victim if needed.
func (f *FPGA) install(now simclock.Duration, base mem.Addr) *frame {
	set := f.set(base.Page())
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim = w
			break
		}
		if w.lastUse < victim.lastUse {
			victim = w
		}
	}
	if victim.valid {
		f.evictFrame(now, victim)
	}
	f.tick++
	if victim.data == nil {
		victim.data = make([]byte, mem.PageSize)
	}
	victim.valid = true
	victim.base = base
	victim.dirty = 0
	victim.filled = 0
	victim.lastUse = f.tick
	victim.readyAt = now
	victim.prefetched = false
	return victim
}

// evictFrame hands a victim to the Eviction Handler.
func (f *FPGA) evictFrame(now simclock.Duration, fr *frame) {
	if fr.prefetched && f.stride != nil {
		f.stride.MarkWasted()
	}
	f.stats.Evictions++
	if fr.dirty.Any() {
		f.stats.DirtyEvicts++
	}
	if f.onEvict != nil {
		f.onEvict(now, Victim{Base: fr.base, Data: fr.data, Dirty: fr.dirty})
	}
	fr.valid = false
}

// ObserveWriteback records a modified-line writeback from the CPU caches:
// the data lands in the FMem frame and the line's dirty bit is set. This
// is the track-local-data primitive. Writebacks to non-resident pages
// re-fetch the page first (the CPU held the line longer than FMem held the
// page).
func (f *FPGA) ObserveWriteback(now simclock.Duration, addr mem.Addr, data []byte) (simclock.Duration, error) {
	f.stats.Writebacks++
	now = f.directory.Serve(now, simclock.FPGADirectory)
	page := addr.Page()
	fr := f.lookup(page)
	if fr == nil {
		fr = f.demandFrame(now, page)
	} else {
		f.tick++
		fr.lastUse = f.tick // LRU refresh on write hit
		if fr.readyAt > now {
			now = fr.readyAt
		}
	}
	off := addr.PageOffset()
	end := off + uint64(len(data))
	if end > mem.PageSize {
		end = mem.PageSize
	}
	firstLine := addr.LineInPage()
	lastLine := firstLine
	if len(data) > 0 {
		lastLine = int((end - 1) / mem.CacheLineSize)
	}
	// Read-for-ownership: partially overwritten boundary lines need their
	// remote contents first (read-modify-write); fully covered lines are
	// simply claimed. A legacy nil-data writeback claims its whole line.
	var err error
	firstLineStart := uint64(firstLine) * mem.CacheLineSize
	lastLineEnd := uint64(lastLine+1) * mem.CacheLineSize
	if len(data) == 0 || off > firstLineStart || end < firstLineStart+mem.CacheLineSize {
		if now, err = f.ensureLines(now, fr, page, firstLine, firstLine); err != nil {
			return now, err
		}
	}
	if lastLine != firstLine && end < lastLineEnd {
		if now, err = f.ensureLines(now, fr, page, lastLine, lastLine); err != nil {
			return now, err
		}
	}
	if len(data) > 0 {
		copy(fr.data[off:end], data)
		fr.filled.SetRange(firstLine, lastLine+1)
	}
	fr.dirty.Set(firstLine)
	return now + simclock.FMemAccess, nil
}

// OnCoherenceEvent adapts the FPGA to a coherence.System observer: fills
// trigger LineFill, writebacks trigger ObserveWriteback. Used when the
// runtime routes traffic through the MESI simulator for full fidelity;
// data movement then happens through Read/Write.
func (f *FPGA) OnCoherenceEvent(e coherence.Event) {
	addr := mem.LineBase(e.Line)
	switch e.Kind {
	case coherence.FillRead, coherence.FillRFO:
		_, _ = f.LineFill(0, addr)
	case coherence.Writeback:
		_, _ = f.ObserveWriteback(0, addr, nil)
	}
}

// batchFillSpan pre-stages the non-resident pages a multi-page Read
// spans with one scatter-gather fetch per node, so the per-page loop
// below runs at FMem-hit cost. Best-effort: an error leaves the pages
// absent and the serial path surfaces the real failure.
func (f *FPGA) batchFillSpan(now simclock.Duration, addr mem.Addr, n int) simclock.Duration {
	firstPage := addr.Page()
	lastPage := (addr + mem.Addr(n-1)).Page()
	if lastPage <= firstPage {
		return now
	}
	bases := f.batchBases[:0]
	for p := firstPage; p <= lastPage; p++ {
		if f.lookup(p) == nil {
			bases = append(bases, mem.PageBase(p))
		}
	}
	bases = f.sizeBatch(bases)
	if len(bases) < 2 {
		return now
	}
	done, err := f.fetchBatch(now, bases, false)
	if err != nil {
		return now
	}
	return done
}

// Read copies bytes from VFMem into buf, fetching pages as needed, and
// returns the completion time. This is the functional data path the
// runtime uses for application loads.
func (f *FPGA) Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	if f.batch != nil && len(buf) > 0 {
		now = f.batchFillSpan(now, addr, len(buf))
	}
	off := 0
	for off < len(buf) {
		a := addr + mem.Addr(off)
		done, err := f.LineFill(now, a)
		if err != nil {
			return now, err
		}
		now = done
		fr := f.lookup(a.Page())
		pageOff := a.PageOffset()
		n := len(buf) - off
		if rem := int(mem.PageSize - pageOff); n > rem {
			n = rem
		}
		// With sub-page fetch granularity the chunk may span blocks the
		// LineFill did not cover.
		lastLine := int((pageOff + uint64(n) - 1) / mem.CacheLineSize)
		if now, err = f.ensureLines(now, fr, a.Page(), a.LineInPage(), lastLine); err != nil {
			return now, err
		}
		copy(buf[off:off+n], fr.data[pageOff:])
		off += n
	}
	return now, nil
}

// Write copies buf into VFMem, fetching pages as needed, setting dirty
// bits for every touched line, and returns the completion time. It models
// the store hitting the CPU cache and the eventual writeback reaching the
// FPGA; for dirty-tracking purposes the two coincide in virtual time.
func (f *FPGA) Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	off := 0
	for off < len(buf) {
		a := addr + mem.Addr(off)
		pageOff := a.PageOffset()
		n := len(buf) - off
		if rem := int(mem.PageSize - pageOff); n > rem {
			n = rem
		}
		done, err := f.ObserveWriteback(now, a, buf[off:off+n])
		if err != nil {
			return now, err
		}
		now = done
		// Mark every line the chunk covers (ObserveWriteback marked the
		// first).
		fr := f.lookup(a.Page())
		fr.dirty.MarkWrite(pageOff, uint64(n))
		off += n
	}
	return now, nil
}

// DirtyLines returns the dirty bitmap of the page holding addr (zero if
// not resident).
func (f *FPGA) DirtyLines(addr mem.Addr) mem.LineBitmap {
	if fr := f.lookup(addr.Page()); fr != nil {
		return fr.dirty
	}
	return 0
}

// FlushPage force-evicts the page holding addr (if resident), pushing it
// through the Eviction Handler. Used by explicit sync/teardown paths.
func (f *FPGA) FlushPage(now simclock.Duration, addr mem.Addr) bool {
	fr := f.lookup(addr.Page())
	if fr == nil {
		return false
	}
	f.evictFrame(now, fr)
	return true
}

// FlushAll evicts every resident page.
func (f *FPGA) FlushAll(now simclock.Duration) {
	for si := range f.sets {
		for wi := range f.sets[si] {
			if f.sets[si][wi].valid {
				f.evictFrame(now, &f.sets[si][wi])
			}
		}
	}
}

// Occupancy returns the number of resident pages.
func (f *FPGA) Occupancy() int {
	n := 0
	for _, set := range f.sets {
		for _, fr := range set {
			if fr.valid {
				n++
			}
		}
	}
	return n
}
