// Package fpga models the cache-coherent FPGA of Kona's reference
// architecture (§4.3-4.4). The FPGA exports VFMem — a fake physical
// address space larger than its attached DRAM — to the CPU over the
// coherent interconnect, and backs it with remote memory:
//
//   - Line fills: every CPU cache miss to VFMem reaches the FPGA's
//     directory. If the page is cached in FMem the FPGA answers at FMem
//     latency; otherwise it fetches the whole page from the owning memory
//     node over RDMA (cache-remote-data primitive).
//   - Dirty tracking: every modified-line writeback the coherence protocol
//     delivers sets one bit in the page's dirty bitmap
//     (track-local-data primitive).
//   - FMem is a 4-way set-associative cache with page-sized blocks
//     (§4.4 "Local translation"); evictions hand the page's data and its
//     dirty bitmap to the runtime's Eviction Handler.
//   - Remote translation is a consult-only map from VFMem addresses to
//     (node, offset) — the FPGA never updates it (§4.4).
//
// Time is virtual: the directory pipeline is modeled as a set of
// simclock.Server banks (one per shard), so concurrent simulated threads
// contend for a bank the way they would for the real FPGA's ports, while
// requests to different banks pipeline freely.
//
// Concurrency: FMem state is lock-striped into power-of-two shards, each
// owning the sets whose index maps to it (DESIGN.md §9). Every per-page
// operation takes exactly one shard lock; cross-shard work (prefetch
// issue, multi-page batch fills, FlushAll) takes shard locks one at a
// time, never two at once, so no lock cycle exists. A shard's epoch
// counter advances on every install/evict, letting optimistic multi-page
// collectors detect a frame torn out between their residency scan and
// their install without re-walking the set.
package fpga

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kona/internal/coherence"
	"kona/internal/mem"
	"kona/internal/prefetch"
	"kona/internal/simclock"
)

// PageReader fetches remote data for one VFMem page. The runtime's
// Resource Manager binds each page to a reader over its transport — the
// simulated RDMA fabric or a TCP memory-node connection.
type PageReader interface {
	// ReadRange fills buf with the page's remote contents starting at
	// byte offset off within the page, beginning at virtual time now,
	// and returns the completion time.
	ReadRange(now simclock.Duration, off uint64, buf []byte) (simclock.Duration, error)
}

// Translator resolves VFMem addresses to remote pages. The runtime's
// Resource Manager implements it over the slab map; the FPGA only
// consults it (§4.4).
type Translator interface {
	Translate(addr mem.Addr) (PageReader, error)
}

// BatchTranslator is the optional scatter-gather extension of
// Translator: ReadPagesBatch fetches whole pages for several VFMem bases
// at once, coalescing the round trips per destination node. The
// TCP-backed resource manager implements it; the simulated fabric keeps
// the serial path so its virtual-time NIC ordering stays reproducible.
type BatchTranslator interface {
	ReadPagesBatch(now simclock.Duration, bases []mem.Addr, bufs [][]byte) (simclock.Duration, error)
}

// Victim is an FMem page displaced by a fill, handed to the Eviction
// Handler. Data aliases the FPGA's frame; handlers copy what they keep
// before returning — the caller still holds the frame's shard lock, so
// the alias is stable for exactly the duration of the callback.
type Victim struct {
	// Base is the page's VFMem base address.
	Base mem.Addr
	// Data is the 4KB frame content.
	Data []byte
	// Dirty marks the lines written since the page was fetched.
	Dirty mem.LineBitmap
}

// EvictHandler disposes of a victim page and returns the virtual time the
// disposal consumed on the eviction path (zero if deferred/asynchronous).
type EvictHandler func(now simclock.Duration, v Victim) simclock.Duration

// Config sizes the FPGA.
type Config struct {
	// FMemSize is the FPGA-attached DRAM capacity in bytes.
	FMemSize uint64
	// Assoc is the FMem set associativity (paper: 4).
	Assoc int
	// Shards is the number of lock stripes over the FMem sets. Rounded to
	// a power of two and clamped to the set count; 0 means 1 (fully
	// serial, the pre-concurrency behavior).
	Shards int
	// Prefetch enables next-page prefetch on sequential fill patterns
	// (§4.4: the hardware prefetcher can reach remote memory under Kona).
	Prefetch bool
	// PrefetchDepth caps the adaptive stride prefetcher's window. 0 or 1
	// keeps the classic depth-1 next-page behavior; larger values enable
	// Leap-style stride detection with an adaptive window.
	PrefetchDepth int
	// FetchBytes is the remote fetch granularity: how much of a page one
	// miss pulls over (a power of two between CacheLineSize and PageSize;
	// 0 means PageSize — the paper's choice, §6.2(2)). Smaller values
	// trade spatial-locality exploitation for less wasted transfer on
	// random access; Fig 8d quantifies the trade at simulator level and
	// abl-fetchgran at runtime level.
	FetchBytes uint64
	// StreamBypass implements §4.4's caching decision ("the FPGA ...
	// decides whether to cache the data in FMem or not"): pages arriving
	// in a long sequential run are unlikely to be re-referenced, so they
	// are inserted at LRU position and leave FMem first, protecting the
	// reused working set from streaming pollution.
	StreamBypass bool
}

// DefaultConfig returns the paper's FMem geometry for the given capacity.
func DefaultConfig(fmemSize uint64) Config {
	return Config{FMemSize: fmemSize, Assoc: 4, Prefetch: true}
}

// frame is one FMem page slot.
type frame struct {
	valid bool
	base  mem.Addr // VFMem page base
	data  []byte
	dirty mem.LineBitmap
	// filled marks the lines whose remote contents are present; with
	// sub-page fetch granularity a frame fills incrementally.
	filled  mem.LineBitmap
	lastUse uint64
	// readyAt is the virtual time the fill completes; an access that
	// arrives earlier (e.g. hitting a prefetched page still in flight)
	// waits for it.
	readyAt simclock.Duration
	// prefetched marks frames installed speculatively and not yet used,
	// for prefetcher accuracy accounting.
	prefetched bool
}

// Stats counts FPGA activity.
type Stats struct {
	LineFills     uint64
	FMemHits      uint64
	RemoteFetches uint64
	Writebacks    uint64
	Evictions     uint64
	DirtyEvicts   uint64
	Prefetches    uint64
	// Bypasses counts streaming pages inserted at LRU position.
	Bypasses uint64
	// BytesFetched is the total remote payload pulled (goodput numerator
	// for fetch-granularity studies).
	BytesFetched uint64
}

// add accumulates o into s (shard-stat merge for Stats()).
func (s *Stats) add(o Stats) {
	s.LineFills += o.LineFills
	s.FMemHits += o.FMemHits
	s.RemoteFetches += o.RemoteFetches
	s.Writebacks += o.Writebacks
	s.Evictions += o.Evictions
	s.DirtyEvicts += o.DirtyEvicts
	s.Prefetches += o.Prefetches
	s.Bypasses += o.Bypasses
	s.BytesFetched += o.BytesFetched
}

// FetchHook runs before a remote page fetch. The runtime uses it to
// enforce write-before-read ordering: any buffered eviction-log entries
// covering the page must reach remote memory before the page is re-read,
// or the fetch would observe stale data. It returns the virtual time
// after its work. The hook must synchronize itself; it is invoked
// concurrently from every shard.
type FetchHook func(now simclock.Duration, pageBase mem.Addr) simclock.Duration

// shard is one lock stripe of FMem. It owns every set whose index maps
// to it and all per-access state that set's frames need: the LRU tick,
// the fetch staging buffer and the activity counters, so the hot path
// touches nothing outside its stripe.
type shard struct {
	mu sync.Mutex
	// epoch counts structural changes (install/evict) to the shard's
	// frames. Optimistic cross-shard collectors (batch fills, prefetch
	// windows) snapshot it during their residency scan and revalidate at
	// install time: an unchanged epoch proves no frame was installed or
	// torn out in between.
	epoch   atomic.Uint64
	tick    uint64
	scratch []byte
	stats   Stats
	// directory is this stripe's bank of the directory pipeline. Real
	// coherence directories are banked by address for port bandwidth;
	// banking by set (= by shard) means requests to different stripes
	// never queue against each other in virtual time, while one thread's
	// sequential accesses see identical timing to a single-ported
	// directory (a lone caller re-arrives ≥ one service time later, so
	// the bank is always idle — fixed-seed artifacts are unchanged).
	directory simclock.Server
}

// front is the fill-pattern tracker feeding the prefetcher and the
// stream-bypass policy. It is deliberately tiny: one mutex over a few
// words, taken only when Prefetch or StreamBypass is configured. Lock
// order: a shard lock may be held when front.mu is taken, never the
// reverse.
type front struct {
	mu             sync.Mutex
	lastFillPage   uint64
	seqRun         int
	lastDemandPage uint64
	// stride is the adaptive stride prefetcher (PrefetchDepth > 1).
	stride *prefetch.Detector
}

// prefetchIntent is a deferred prefetch decision captured while a shard
// lock is held and executed after it is released, so issuing the
// prefetch (which locks the target page's shard) never nests two shard
// locks.
type prefetchIntent struct {
	want bool
	at   simclock.Duration
	page uint64
}

// batchScratch is the pooled staging area for scatter-gather fetches.
// Each concurrent batch fill owns one instance for the duration of the
// wire read, because targets are read into scratch buffers first and
// only then installed — installing mid-batch can evict an earlier
// target's frame and the install would alias a buffer still being
// filled.
type batchScratch struct {
	bases  []mem.Addr
	epochs []uint64
	bufs   [][]byte
}

// FPGA is the memory agent.
type FPGA struct {
	cfg       Config
	translate Translator
	onEvict   EvictHandler
	onFetch   FetchHook

	// batch, when non-nil, coalesces multi-page fetches (prefetch windows
	// and page-spanning Reads) into scatter-gather reads — see
	// EnableBatchFetch.
	batch     BatchTranslator
	batchPool sync.Pool

	sets  [][]frame
	nsets uint64

	shards    []shard
	shardMask uint64

	front front
}

// New builds the FPGA model. It panics on invalid geometry (experiment
// setup error).
func New(cfg Config, tr Translator, onEvict EvictHandler) *FPGA {
	if cfg.Assoc <= 0 {
		panic("fpga: associativity must be positive")
	}
	frameBytes := uint64(cfg.Assoc) * mem.PageSize
	if cfg.FMemSize == 0 || cfg.FMemSize%frameBytes != 0 {
		panic(fmt.Sprintf("fpga: FMem size %d not a multiple of assoc*page %d", cfg.FMemSize, frameBytes))
	}
	if cfg.FetchBytes == 0 {
		cfg.FetchBytes = mem.PageSize
	}
	if cfg.FetchBytes < mem.CacheLineSize || cfg.FetchBytes > mem.PageSize ||
		cfg.FetchBytes&(cfg.FetchBytes-1) != 0 {
		panic(fmt.Sprintf("fpga: fetch granularity %d invalid", cfg.FetchBytes))
	}
	nsets := cfg.FMemSize / frameBytes
	sets := make([][]frame, nsets)
	for i := range sets {
		sets[i] = make([]frame, cfg.Assoc)
	}
	if cfg.FetchBytes < mem.PageSize {
		// The sequential prefetcher operates at page granularity; with
		// sub-page fetches the fetch granularity itself is the locality
		// knob.
		cfg.Prefetch = false
	}
	nshards := shardCount(cfg.Shards, nsets)
	f := &FPGA{
		cfg:       cfg,
		translate: tr,
		onEvict:   onEvict,
		sets:      sets,
		nsets:     nsets,
		shards:    make([]shard, nshards),
		shardMask: nshards - 1,
	}
	f.batchPool.New = func() any { return &batchScratch{} }
	if cfg.Prefetch && cfg.PrefetchDepth > 1 {
		f.front.stride = newPrefetcher(cfg.PrefetchDepth)
	}
	return f
}

// shardCount resolves the configured stripe count against the geometry:
// a power of two, at least 1, at most the number of sets (a stripe with
// no sets would be dead weight).
func shardCount(want int, nsets uint64) uint64 {
	if want < 1 {
		want = 1
	}
	n := uint64(1)
	for n < uint64(want) {
		n <<= 1
	}
	for n > nsets {
		n >>= 1
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Shards reports the number of lock stripes chosen for this geometry.
func (f *FPGA) Shards() int { return len(f.shards) }

// Stats returns a consistent-enough snapshot of the counters: each
// shard's block is read under its lock, so per-shard values are exact
// and the sum is at worst a few in-flight operations stale.
func (f *FPGA) Stats() Stats {
	var out Stats
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		out.add(sh.stats)
		sh.mu.Unlock()
	}
	return out
}

// setIndex returns the FMem set index for a VFMem page.
func (f *FPGA) setIndex(page uint64) uint64 { return page % f.nsets }

// shardFor returns the lock stripe owning the page's set.
func (f *FPGA) shardFor(page uint64) *shard { return &f.shards[f.setIndex(page)&f.shardMask] }

// lookupLocked finds the frame caching the page, or nil. The caller
// holds the page's shard lock.
func (f *FPGA) lookupLocked(page uint64) *frame {
	base := mem.PageBase(page)
	set := f.sets[f.setIndex(page)]
	for i := range set {
		if set[i].valid && set[i].base == base {
			return &set[i]
		}
	}
	return nil
}

// Resident reports whether the page holding addr is cached in FMem.
func (f *FPGA) Resident(addr mem.Addr) bool {
	page := addr.Page()
	sh := f.shardFor(page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return f.lookupLocked(page) != nil
}

// LineFill services one CPU cache-line request to VFMem at virtual time
// now and returns the completion time. This is the cache-remote-data
// primitive: no page fault is involved; a miss in FMem triggers a
// page-granularity remote fetch.
func (f *FPGA) LineFill(now simclock.Duration, addr mem.Addr) (simclock.Duration, error) {
	sh := f.shardFor(addr.Page())
	sh.mu.Lock()
	done, pf, err := f.lineFillLocked(sh, now, addr)
	sh.mu.Unlock()
	if err != nil {
		return done, err
	}
	f.runPrefetch(pf)
	return done, nil
}

// lineFillLocked is LineFill under the page's shard lock. It returns the
// prefetch intent for the caller to execute once the lock is dropped.
func (f *FPGA) lineFillLocked(sh *shard, now simclock.Duration, addr mem.Addr) (simclock.Duration, prefetchIntent, error) {
	sh.stats.LineFills++
	// The directory bank serializes this stripe's requests.
	now = sh.directory.Serve(now, simclock.FPGADirectory)
	page := addr.Page()
	line := addr.LineInPage()
	if fr := f.lookupLocked(page); fr != nil {
		sh.stats.FMemHits++
		sh.tick++
		fr.lastUse = sh.tick // LRU refresh on hit
		if fr.readyAt > now {
			// In-flight or just-landed prefetch: wait for the fill. This
			// is also the single-flight suppression point — a concurrent
			// miss that lost the shard-lock race arrives here as a hit on
			// the winner's frame instead of issuing its own remote read.
			now = fr.readyAt
		}
		if fr.prefetched {
			fr.prefetched = false
			f.markPrefetchUseful()
		}
		done, err := f.ensureLinesLocked(sh, now, fr, page, line, line)
		if err != nil {
			return now, prefetchIntent{}, err
		}
		return done + simclock.FMemAccess, prefetchIntent{want: f.cfg.Prefetch, at: now, page: page}, nil
	}
	fr := f.demandFrameLocked(sh, now, page)
	done, err := f.ensureLinesLocked(sh, now, fr, page, line, line)
	if err != nil {
		return now, prefetchIntent{}, err
	}
	fr.readyAt = done
	// Prefetch is issued at the demand fetch's start time, not its
	// completion: the FPGA pipelines the two NIC operations.
	return done + simclock.FMemAccess, prefetchIntent{want: f.cfg.Prefetch, at: now, page: page}, nil
}

// markPrefetchUseful rewards the stride detector for a demanded
// speculative page.
func (f *FPGA) markPrefetchUseful() {
	if f.front.stride == nil {
		return
	}
	f.front.mu.Lock()
	f.front.stride.MarkUseful()
	f.front.mu.Unlock()
}

// runPrefetch executes a deferred prefetch intent: recognize the fill
// pattern under the front lock, then fetch targets under their own shard
// locks. No shard lock is held on entry.
func (f *FPGA) runPrefetch(pf prefetchIntent) {
	if !pf.want {
		return
	}
	if f.front.stride != nil {
		f.prefetchStride(pf.at, pf.page)
		return
	}
	// Classic depth-1 next-page prefetch on sequential fills.
	f.front.mu.Lock()
	seq := pf.page == f.front.lastFillPage+1
	f.front.lastFillPage = pf.page
	f.front.mu.Unlock()
	if !seq {
		return
	}
	f.prefetchOne(pf.at, pf.page+1)
}

// prefetchOne pulls one page speculatively under its shard lock,
// skipping pages already (or concurrently made) resident.
func (f *FPGA) prefetchOne(now simclock.Duration, target uint64) {
	sh := f.shardFor(target)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.lookupLocked(target) != nil {
		return
	}
	if _, fr, err := f.fetchPageLocked(sh, now, target); err == nil {
		fr.prefetched = true
		sh.stats.Prefetches++
	}
}

// SetFetchHook installs the pre-fetch ordering hook.
func (f *FPGA) SetFetchHook(h FetchHook) { f.onFetch = h }

// EnableBatchFetch turns on scatter-gather multi-page fetches when the
// translator supports them (and fetches are page-granularity). The
// runtime enables this only on the TCP transport, where coalescing N
// page reads into one frame per node saves N-1 round trips.
func (f *FPGA) EnableBatchFetch() {
	if f.cfg.FetchBytes != mem.PageSize {
		return
	}
	if bt, ok := f.translate.(BatchTranslator); ok {
		f.batch = bt
	}
}

// collectBatch fills bs with the non-resident pages among targets,
// recording each page's shard epoch so the install step can detect a
// concurrent install/evict in that stripe.
func (f *FPGA) collectBatch(bs *batchScratch, targets []uint64) {
	bs.bases = bs.bases[:0]
	bs.epochs = bs.epochs[:0]
	for _, t := range targets {
		sh := f.shardFor(t)
		sh.mu.Lock()
		resident := f.lookupLocked(t) != nil
		epoch := sh.epoch.Load()
		sh.mu.Unlock()
		if !resident {
			bs.bases = append(bs.bases, mem.PageBase(t))
			bs.epochs = append(bs.epochs, epoch)
		}
	}
	bs.size()
}

// size grows bufs to cover the collected bases.
func (bs *batchScratch) size() {
	for len(bs.bufs) < len(bs.bases) {
		bs.bufs = append(bs.bufs, make([]byte, mem.PageSize))
	}
}

// fetchBatch pulls every base in bs with one scatter-gather read per
// node and installs the pages. The write-before-read hook runs for every
// target before any wire traffic: targets were non-resident at collect
// time, so no install during the batch can buffer new eviction entries
// for them. speculative marks the frames as prefetched (accuracy
// accounting); errors leave the pages absent for the demand path to
// refetch and report. A page whose shard epoch moved since collection is
// re-checked and skipped if a concurrent fill already installed it.
func (f *FPGA) fetchBatch(now simclock.Duration, bs *batchScratch, speculative bool) (simclock.Duration, error) {
	if f.onFetch != nil {
		for _, base := range bs.bases {
			now = f.onFetch(now, base)
		}
	}
	bufs := bs.bufs[:len(bs.bases)]
	done, err := f.batch.ReadPagesBatch(now, bs.bases, bufs)
	if err != nil {
		return now, err
	}
	for i, base := range bs.bases {
		page := base.Page()
		sh := f.shardFor(page)
		sh.mu.Lock()
		if sh.epoch.Load() != bs.epochs[i] && f.lookupLocked(page) != nil {
			// The stripe changed under us and a concurrent fill won the
			// page; its frame may hold newer local writes — keep it.
			sh.mu.Unlock()
			continue
		}
		fr := f.demandFrameLocked(sh, now, page)
		copy(fr.data, bufs[i])
		fr.filled = ^mem.LineBitmap(0)
		fr.readyAt = done
		fr.prefetched = speculative
		sh.stats.RemoteFetches++
		sh.stats.BytesFetched += mem.PageSize
		if speculative {
			sh.stats.Prefetches++
		}
		sh.mu.Unlock()
	}
	return done, nil
}

// demandFrameLocked installs an (empty) frame for a demanded page,
// applying the stream-bypass insertion policy. Caller holds sh.mu.
func (f *FPGA) demandFrameLocked(sh *shard, now simclock.Duration, page uint64) *frame {
	fr := f.installLocked(sh, now, mem.PageBase(page))
	if f.cfg.StreamBypass {
		// Stream detection keys on demand fetches only, so interleaved
		// hits on a hot working set do not break the run.
		f.front.mu.Lock()
		if page == f.front.lastDemandPage+1 {
			f.front.seqRun++
		} else if page != f.front.lastDemandPage {
			f.front.seqRun = 0
		}
		f.front.lastDemandPage = page
		streaming := f.front.seqRun > streamRunThreshold
		f.front.mu.Unlock()
		if streaming {
			// Transient insertion: the page leaves FMem before any
			// re-referenced frame in its set.
			fr.lastUse = 0
			sh.stats.Bypasses++
		}
	}
	return fr
}

// ensureLinesLocked fetches the missing fetch-granularity blocks covering
// lines [lo, hi] of the frame, returning the completion time.
// Already-filled lines are never overwritten (they may hold newer local
// writes). Caller holds sh.mu; the remote read happens under it, which is
// what makes concurrent misses on one page single-flight: the losers
// block here and find the lines filled.
func (f *FPGA) ensureLinesLocked(sh *shard, now simclock.Duration, fr *frame, page uint64, lo, hi int) (simclock.Duration, error) {
	fb := int(f.cfg.FetchBytes)
	linesPerBlock := fb / mem.CacheLineSize
	done := now
	var pr PageReader
	base := mem.PageBase(page)
	for block := lo / linesPerBlock; block <= hi/linesPerBlock; block++ {
		first := block * linesPerBlock
		missing := false
		for l := first; l < first+linesPerBlock; l++ {
			if !fr.filled.Get(l) {
				missing = true
				break
			}
		}
		if !missing {
			continue
		}
		if pr == nil {
			if f.onFetch != nil {
				now = f.onFetch(now, base)
				if now > done {
					done = now
				}
			}
			var err error
			pr, err = f.translate.Translate(base)
			if err != nil {
				return now, fmt.Errorf("fpga: translate %v: %w", base, err)
			}
			if sh.scratch == nil {
				sh.scratch = make([]byte, mem.PageSize)
			}
		}
		off := uint64(first * mem.CacheLineSize)
		blockDone, err := pr.ReadRange(now, off, sh.scratch[:fb])
		if err != nil {
			return now, fmt.Errorf("fpga: remote fetch %v+%d: %w", base, off, err)
		}
		sh.stats.RemoteFetches++
		sh.stats.BytesFetched += uint64(fb)
		for l := first; l < first+linesPerBlock; l++ {
			if !fr.filled.Get(l) {
				lineOff := l * mem.CacheLineSize
				copy(fr.data[lineOff:lineOff+mem.CacheLineSize], sh.scratch[lineOff-first*mem.CacheLineSize:])
				fr.filled.Set(l)
			}
		}
		if blockDone > done {
			done = blockDone
		}
	}
	return done, nil
}

// fetchPageLocked pulls a whole page from remote memory into FMem — the
// prefetcher's fill path (page-granularity mode only). Caller holds the
// page's shard lock.
func (f *FPGA) fetchPageLocked(sh *shard, now simclock.Duration, page uint64) (simclock.Duration, *frame, error) {
	fr := f.demandFrameLocked(sh, now, page)
	done, err := f.ensureLinesLocked(sh, now, fr, page, 0, mem.LinesPerPage-1)
	if err != nil {
		return now, nil, err
	}
	fr.readyAt = done
	return done, fr, nil
}

// streamRunThreshold is the sequential-run length after which fills are
// treated as streaming.
const streamRunThreshold = 16

// installLocked places a page frame, evicting the set's LRU victim if
// needed, and advances the shard epoch so optimistic collectors see the
// structural change. Caller holds sh.mu.
func (f *FPGA) installLocked(sh *shard, now simclock.Duration, base mem.Addr) *frame {
	set := f.sets[f.setIndex(base.Page())]
	victim := &set[0]
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim = w
			break
		}
		if w.lastUse < victim.lastUse {
			victim = w
		}
	}
	sh.epoch.Add(1)
	if victim.valid {
		f.evictFrameLocked(sh, now, victim)
	}
	sh.tick++
	if victim.data == nil {
		victim.data = make([]byte, mem.PageSize)
	}
	victim.valid = true
	victim.base = base
	victim.dirty = 0
	victim.filled = 0
	victim.lastUse = sh.tick
	victim.readyAt = now
	victim.prefetched = false
	return victim
}

// evictFrameLocked hands a victim to the Eviction Handler. The shard
// lock is held across the callback, so the Victim's data alias is stable
// until the handler returns (it copies what it keeps — the ack-gated
// arena discipline) and no reader can observe the frame mid-teardown.
func (f *FPGA) evictFrameLocked(sh *shard, now simclock.Duration, fr *frame) {
	sh.epoch.Add(1)
	if fr.prefetched && f.front.stride != nil {
		f.front.mu.Lock()
		f.front.stride.MarkWasted()
		f.front.mu.Unlock()
	}
	sh.stats.Evictions++
	if fr.dirty.Any() {
		sh.stats.DirtyEvicts++
	}
	if f.onEvict != nil {
		f.onEvict(now, Victim{Base: fr.base, Data: fr.data, Dirty: fr.dirty})
	}
	fr.valid = false
}

// ObserveWriteback records a modified-line writeback from the CPU caches:
// the data lands in the FMem frame and the line's dirty bit is set. This
// is the track-local-data primitive. Writebacks to non-resident pages
// re-fetch the page first (the CPU held the line longer than FMem held the
// page).
func (f *FPGA) ObserveWriteback(now simclock.Duration, addr mem.Addr, data []byte) (simclock.Duration, error) {
	sh := f.shardFor(addr.Page())
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done, _, err := f.observeWritebackLocked(sh, now, addr, data)
	return done, err
}

// observeWritebackLocked is ObserveWriteback under the page's shard
// lock; it also returns the frame so Write can extend the dirty marking
// to the rest of its chunk without a second lookup.
func (f *FPGA) observeWritebackLocked(sh *shard, now simclock.Duration, addr mem.Addr, data []byte) (simclock.Duration, *frame, error) {
	sh.stats.Writebacks++
	now = sh.directory.Serve(now, simclock.FPGADirectory)
	page := addr.Page()
	fr := f.lookupLocked(page)
	if fr == nil {
		fr = f.demandFrameLocked(sh, now, page)
	} else {
		sh.tick++
		fr.lastUse = sh.tick // LRU refresh on write hit
		if fr.readyAt > now {
			now = fr.readyAt
		}
	}
	off := addr.PageOffset()
	end := off + uint64(len(data))
	if end > mem.PageSize {
		end = mem.PageSize
	}
	firstLine := addr.LineInPage()
	lastLine := firstLine
	if len(data) > 0 {
		lastLine = int((end - 1) / mem.CacheLineSize)
	}
	// Read-for-ownership: partially overwritten boundary lines need their
	// remote contents first (read-modify-write); fully covered lines are
	// simply claimed. A legacy nil-data writeback claims its whole line.
	var err error
	firstLineStart := uint64(firstLine) * mem.CacheLineSize
	lastLineEnd := uint64(lastLine+1) * mem.CacheLineSize
	if len(data) == 0 || off > firstLineStart || end < firstLineStart+mem.CacheLineSize {
		if now, err = f.ensureLinesLocked(sh, now, fr, page, firstLine, firstLine); err != nil {
			return now, fr, err
		}
	}
	if lastLine != firstLine && end < lastLineEnd {
		if now, err = f.ensureLinesLocked(sh, now, fr, page, lastLine, lastLine); err != nil {
			return now, fr, err
		}
	}
	if len(data) > 0 {
		copy(fr.data[off:end], data)
		fr.filled.SetRange(firstLine, lastLine+1)
	}
	fr.dirty.Set(firstLine)
	return now + simclock.FMemAccess, fr, nil
}

// OnCoherenceEvent adapts the FPGA to a coherence.System observer: fills
// trigger LineFill, writebacks trigger ObserveWriteback. Used when the
// runtime routes traffic through the MESI simulator for full fidelity;
// data movement then happens through Read/Write.
func (f *FPGA) OnCoherenceEvent(e coherence.Event) {
	addr := mem.LineBase(e.Line)
	switch e.Kind {
	case coherence.FillRead, coherence.FillRFO:
		_, _ = f.LineFill(0, addr)
	case coherence.Writeback:
		_, _ = f.ObserveWriteback(0, addr, nil)
	}
}

// batchFillSpan pre-stages the non-resident pages a multi-page Read
// spans with one scatter-gather fetch per node, so the per-page loop
// below runs at FMem-hit cost. Best-effort: an error leaves the pages
// absent and the serial path surfaces the real failure.
func (f *FPGA) batchFillSpan(now simclock.Duration, addr mem.Addr, n int) simclock.Duration {
	firstPage := addr.Page()
	lastPage := (addr + mem.Addr(n-1)).Page()
	if lastPage <= firstPage {
		return now
	}
	bs := f.batchPool.Get().(*batchScratch)
	defer f.batchPool.Put(bs)
	bs.bases = bs.bases[:0]
	bs.epochs = bs.epochs[:0]
	for p := firstPage; p <= lastPage; p++ {
		sh := f.shardFor(p)
		sh.mu.Lock()
		resident := f.lookupLocked(p) != nil
		epoch := sh.epoch.Load()
		sh.mu.Unlock()
		if !resident {
			bs.bases = append(bs.bases, mem.PageBase(p))
			bs.epochs = append(bs.epochs, epoch)
		}
	}
	bs.size()
	if len(bs.bases) < 2 {
		return now
	}
	done, err := f.fetchBatch(now, bs, false)
	if err != nil {
		return now
	}
	return done
}

// Read copies bytes from VFMem into buf, fetching pages as needed, and
// returns the completion time. This is the functional data path the
// runtime uses for application loads. Each page's fill-and-copy runs
// under that page's shard lock, so single-page reads are atomic with
// respect to concurrent writers; multi-page reads are atomic per page.
func (f *FPGA) Read(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	if f.batch != nil && len(buf) > 0 {
		now = f.batchFillSpan(now, addr, len(buf))
	}
	off := 0
	for off < len(buf) {
		a := addr + mem.Addr(off)
		page := a.Page()
		sh := f.shardFor(page)
		sh.mu.Lock()
		done, pf, err := f.lineFillLocked(sh, now, a)
		if err != nil {
			sh.mu.Unlock()
			return now, err
		}
		now = done
		fr := f.lookupLocked(page)
		pageOff := a.PageOffset()
		n := len(buf) - off
		if rem := int(mem.PageSize - pageOff); n > rem {
			n = rem
		}
		// With sub-page fetch granularity the chunk may span blocks the
		// LineFill did not cover.
		lastLine := int((pageOff + uint64(n) - 1) / mem.CacheLineSize)
		if now, err = f.ensureLinesLocked(sh, now, fr, page, a.LineInPage(), lastLine); err != nil {
			sh.mu.Unlock()
			return now, err
		}
		copy(buf[off:off+n], fr.data[pageOff:])
		sh.mu.Unlock()
		f.runPrefetch(pf)
		off += n
	}
	return now, nil
}

// Write copies buf into VFMem, fetching pages as needed, setting dirty
// bits for every touched line, and returns the completion time. It models
// the store hitting the CPU cache and the eventual writeback reaching the
// FPGA; for dirty-tracking purposes the two coincide in virtual time.
// Like Read, each page's chunk lands atomically under its shard lock.
func (f *FPGA) Write(now simclock.Duration, addr mem.Addr, buf []byte) (simclock.Duration, error) {
	off := 0
	for off < len(buf) {
		a := addr + mem.Addr(off)
		pageOff := a.PageOffset()
		n := len(buf) - off
		if rem := int(mem.PageSize - pageOff); n > rem {
			n = rem
		}
		sh := f.shardFor(a.Page())
		sh.mu.Lock()
		done, fr, err := f.observeWritebackLocked(sh, now, a, buf[off:off+n])
		if err != nil {
			sh.mu.Unlock()
			return now, err
		}
		now = done
		// Mark every line the chunk covers (observeWriteback marked the
		// first).
		fr.dirty.MarkWrite(pageOff, uint64(n))
		sh.mu.Unlock()
		off += n
	}
	return now, nil
}

// DirtyLines returns the dirty bitmap of the page holding addr (zero if
// not resident).
func (f *FPGA) DirtyLines(addr mem.Addr) mem.LineBitmap {
	page := addr.Page()
	sh := f.shardFor(page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr := f.lookupLocked(page); fr != nil {
		return fr.dirty
	}
	return 0
}

// FlushPage force-evicts the page holding addr (if resident), pushing it
// through the Eviction Handler. Used by explicit sync/teardown paths.
func (f *FPGA) FlushPage(now simclock.Duration, addr mem.Addr) bool {
	page := addr.Page()
	sh := f.shardFor(page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr := f.lookupLocked(page)
	if fr == nil {
		return false
	}
	f.evictFrameLocked(sh, now, fr)
	return true
}

// FlushAll evicts every resident page, walking the sets in index order
// (one shard lock at a time) so the eviction sequence matches the serial
// runtime's.
func (f *FPGA) FlushAll(now simclock.Duration) {
	for si := uint64(0); si < f.nsets; si++ {
		sh := &f.shards[si&f.shardMask]
		sh.mu.Lock()
		set := f.sets[si]
		for wi := range set {
			if set[wi].valid {
				f.evictFrameLocked(sh, now, &set[wi])
			}
		}
		sh.mu.Unlock()
	}
}

// DropRange invalidates every resident page whose base lies in
// [base, base+size) WITHOUT running the Eviction Handler: the cached
// data and dirty bits are discarded, so the next access refetches from
// remote memory. This is the reader-side invalidation shootdown for
// cross-runtime shared regions (DESIGN.md §14) — a reader holds no
// writer lease, so its frames carry no writes worth shipping. Walks one
// shard lock at a time, like FlushAll. Returns the frames dropped.
func (f *FPGA) DropRange(base mem.Addr, size uint64) int {
	end := base + mem.Addr(size)
	dropped := 0
	for si := uint64(0); si < f.nsets; si++ {
		sh := &f.shards[si&f.shardMask]
		sh.mu.Lock()
		set := f.sets[si]
		for wi := range set {
			fr := &set[wi]
			if fr.valid && fr.base >= base && fr.base < end {
				sh.epoch.Add(1)
				fr.valid = false
				fr.dirty = 0
				fr.filled = 0
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Occupancy returns the number of resident pages.
func (f *FPGA) Occupancy() int {
	n := 0
	for si := uint64(0); si < f.nsets; si++ {
		sh := &f.shards[si&f.shardMask]
		sh.mu.Lock()
		for _, fr := range f.sets[si] {
			if fr.valid {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
