package simclock

import "time"

// Latency constants for the simulated platform. Values marked (paper) are
// taken directly from the paper's measurements (§2.1, §4.3, §6); the rest
// are conventional figures for a Skylake-class server and matter only in
// that they are shared by every system under comparison.
const (
	// L1Hit is the L1 data cache hit latency.
	L1Hit = 1 * time.Nanosecond
	// L2Hit is the L2 cache access latency.
	L2Hit = 4 * time.Nanosecond
	// L3Hit is the shared L3 access latency.
	L3Hit = 14 * time.Nanosecond
	// DRAMAccess is a local (CMem) DRAM access.
	DRAMAccess = 85 * time.Nanosecond

	// NUMAFactor is the FMem-vs-CMem slowdown: accessing FPGA-attached
	// memory over the coherent interconnect costs 1.5X a local access
	// (paper §4.3, citing the NUMA analogy).
	NUMAFactor = 1.5

	// FMemAccess is an access served from the FPGA-attached DRAM cache:
	// DRAMAccess scaled by NUMAFactor (85ns * 1.5, rounded up).
	FMemAccess = 128 * time.Nanosecond

	// RDMA4KB is a one-sided RDMA read/write of a 4KB page (paper §2.1:
	// "a 4KB RDMA read operation is generally as fast as 3µs").
	RDMA4KB = 3 * time.Microsecond

	// RDMABase is the fixed per-verb cost (NIC doorbell, DMA setup,
	// propagation). The size-dependent part is modeled from line rate.
	RDMABase = 1500 * time.Nanosecond

	// LineRateGbps is the network line rate of the testbed (100Gbps RoCE).
	LineRateGbps = 100

	// InfiniswapFetch is Infiniswap's measured remote fetch latency,
	// including its block-layer software stack (paper §2.1: "over 40µs").
	InfiniswapFetch = 40 * time.Microsecond

	// LegoOSFetch is LegoOS's measured remote fetch latency (paper §2.1).
	LegoOSFetch = 10 * time.Microsecond

	// KonaVMFetch is the fetch latency of the paper's own virtual-memory
	// baseline, which handles faults in user space via userfaultfd and is
	// "similar to LegoOS" (§6.2).
	KonaVMFetch = 10 * time.Microsecond

	// KonaFetch is a Kona remote fetch: a cache miss forwarded by the FPGA
	// directory to the remote node — an RDMA page read plus FPGA logic,
	// with no page fault, VMA lookup, or TLB work.
	KonaFetch = RDMA4KB + 500*time.Nanosecond

	// MinorFault is a minor (write-protect) page fault: trap, PTE update,
	// local TLB invalidation. Conventional ~3-4µs figure for the
	// user-space-assisted path the paper's Kona-VM uses.
	MinorFault = 4 * time.Microsecond

	// TLBShootdown is a multi-core remote TLB invalidation via IPI.
	TLBShootdown = 4 * time.Microsecond

	// EvictionVMPage is the per-page software cost of evicting a cached
	// page in a virtual-memory runtime: unmap, clear dirty bit, flush TLB,
	// LRU bookkeeping (paper §2.1 measures >32µs for Infiniswap; the
	// leaner Kona-VM path is dominated by the unmap+shootdown+write).
	EvictionVMPage = TLBShootdown + RDMA4KB

	// FPGADirectory is the service time of the FPGA directory pipeline for
	// one cache-line request (VFMem lookup + FMem tag check).
	FPGADirectory = 70 * time.Nanosecond
)

// WireTime returns the serialization time of n bytes at line rate,
// excluding the fixed per-verb cost.
func WireTime(n int) Duration {
	// 100 Gbps = 12.5 GB/s = 0.08 ns per byte.
	return Duration(float64(n) * 8 / float64(LineRateGbps))
}

// RDMAWrite returns the modeled latency of a one-sided RDMA write of n
// bytes: fixed verb cost plus wire time. A 4KB write comes out at ~1.8µs
// of modeled NIC time; the paper's 3µs end-to-end figure for RDMA4KB also
// includes completion polling, which callers add via RDMA4KB when they
// need the end-to-end number.
func RDMAWrite(n int) Duration {
	return RDMABase + WireTime(n)
}

// Memcpy returns the modeled latency of copying n bytes locally into a
// registered buffer (the "Copy" slice of Fig. 11c).
func Memcpy(n int) Duration {
	// ~20 GB/s => 0.05 ns/byte; keep integer math in ns.
	return Duration(n) * time.Nanosecond / 20
}
