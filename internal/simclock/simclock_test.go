package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock not at 0")
	}
	c.Advance(10)
	c.Advance(5)
	if c.Now() != 15 {
		t.Errorf("Now = %v, want 15", c.Now())
	}
	c.Advance(-100) // negative ignored
	if c.Now() != 15 {
		t.Errorf("negative advance moved clock: %v", c.Now())
	}
	c.AdvanceTo(10) // backwards ignored
	if c.Now() != 15 {
		t.Errorf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Errorf("AdvanceTo = %v, want 100", c.Now())
	}
}

func TestServerSequentialQueueing(t *testing.T) {
	var s Server
	// Two back-to-back requests arriving at t=0 with 10ns service: the
	// second must queue behind the first.
	d1 := s.Serve(0, 10)
	d2 := s.Serve(0, 10)
	if d1 != 10 || d2 != 20 {
		t.Errorf("departures = %v,%v want 10,20", d1, d2)
	}
	// A request arriving after the server drained is served immediately.
	d3 := s.Serve(100, 10)
	if d3 != 110 {
		t.Errorf("idle-arrival departure = %v, want 110", d3)
	}
	busy, n := s.Utilization()
	if busy != 30 || n != 3 {
		t.Errorf("utilization = %v,%d want 30,3", busy, n)
	}
	s.Reset()
	if b, n := s.Utilization(); b != 0 || n != 0 {
		t.Errorf("reset failed")
	}
}

// Property: for any arrival order, departures never overlap (single-server)
// and each departure >= arrival + service.
func TestServerQuick(t *testing.T) {
	f := func(arrivals []uint16, service uint8) bool {
		var s Server
		svc := Duration(service%50 + 1)
		var departures []Duration
		for _, a := range arrivals {
			d := s.Serve(Duration(a), svc)
			if d < Duration(a)+svc {
				return false
			}
			departures = append(departures, d)
		}
		// Total busy time == n*svc and the last departure is at least that.
		busy, n := s.Utilization()
		if n != uint64(len(arrivals)) || busy != Duration(len(arrivals))*svc {
			return false
		}
		for i := 1; i < len(departures); i++ {
			if departures[i] < departures[i-1]+svc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentSafety(t *testing.T) {
	var s Server
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Serve(Duration(i), 3)
			}
		}()
	}
	wg.Wait()
	busy, n := s.Utilization()
	if n != workers*per || busy != Duration(workers*per*3) {
		t.Errorf("concurrent accounting lost requests: busy=%v n=%d", busy, n)
	}
}

func TestWireTime(t *testing.T) {
	// 4KB at 100Gbps ~ 327ns.
	wt := WireTime(4096)
	if wt < 300*time.Nanosecond || wt > 350*time.Nanosecond {
		t.Errorf("WireTime(4096) = %v, want ~327ns", wt)
	}
	if WireTime(0) != 0 {
		t.Errorf("WireTime(0) != 0")
	}
	// Monotone in size.
	if WireTime(64) >= WireTime(4096) {
		t.Errorf("WireTime not monotone")
	}
}

func TestRDMAWriteModel(t *testing.T) {
	// A 4KB RDMA write must be under the paper's 3µs end-to-end figure and
	// above the base verb cost.
	w := RDMAWrite(4096)
	if w <= RDMABase || w >= RDMA4KB {
		t.Errorf("RDMAWrite(4096) = %v, want (RDMABase, RDMA4KB)", w)
	}
	// A cache-line write is dominated by the fixed cost.
	cl := RDMAWrite(64)
	if cl < RDMABase || cl > RDMABase+10*time.Nanosecond {
		t.Errorf("RDMAWrite(64) = %v", cl)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// The hierarchy must be ordered: L1 < L2 < L3 < DRAM < FMem < Kona
	// fetch < LegoOS fetch < Infiniswap fetch.
	order := []Duration{L1Hit, L2Hit, L3Hit, DRAMAccess, FMemAccess, KonaFetch, LegoOSFetch, InfiniswapFetch}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Errorf("latency order violated at index %d: %v <= %v", i, order[i], order[i-1])
		}
	}
	// FMem is the NUMA factor over DRAM (within rounding).
	dram := float64(DRAMAccess)
	want := Duration(dram * NUMAFactor)
	if diff := FMemAccess - want; diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Errorf("FMemAccess = %v, want ~%v", FMemAccess, want)
	}
}

func TestMemcpy(t *testing.T) {
	if Memcpy(0) != 0 {
		t.Errorf("Memcpy(0) != 0")
	}
	// 4KB at ~20GB/s ≈ 204ns.
	m := Memcpy(4096)
	if m < 150*time.Nanosecond || m > 250*time.Nanosecond {
		t.Errorf("Memcpy(4096) = %v", m)
	}
}
