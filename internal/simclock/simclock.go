// Package simclock provides the virtual time base used by every simulator
// in the repository.
//
// The paper evaluates Kona on a Skylake/CX5 RDMA testbed; we have no such
// hardware, so all latency-bearing operations advance a virtual clock by a
// modeled duration instead of being measured. Comparisons between systems
// (Kona vs Kona-VM vs LegoOS vs Infiniswap) are therefore exact and
// reproducible: both sides share one clock model and differ only in which
// operations they perform, which is precisely the quantity the paper's
// experiments isolate.
//
// Two abstractions live here:
//
//   - Clock: a per-actor (per simulated thread) monotonic virtual clock.
//   - Server: a shared serialization point with a given service time —
//     e.g. the mmap_sem-protected fault path or the FPGA directory port.
//     Servers implement a deterministic single-server queue: a request
//     arriving at virtual time t departs at max(t, nextFree) + service.
package simclock

import (
	"sync"
	"time"
)

// Duration is virtual time, in nanoseconds. It aliases time.Duration so
// the formatting helpers (String, Seconds…) come for free, but values never
// relate to wall-clock time.
type Duration = time.Duration

// Clock is a monotonic virtual clock owned by a single simulated thread.
// It is not safe for concurrent use; each simulated thread owns one.
type Clock struct {
	now Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (c *Clock) AdvanceTo(t Duration) {
	if t > c.now {
		c.now = t
	}
}

// Server models a shared resource that serves one request at a time, such
// as a lock-protected kernel path or a single-ported hardware unit.
// It is safe for concurrent use by multiple simulated threads.
type Server struct {
	mu       sync.Mutex
	nextFree Duration
	busy     Duration // total service time accumulated
	requests uint64
}

// Serve admits a request arriving at virtual time `arrival` with the given
// service time, and returns the departure time. The caller advances its own
// clock to the returned value, so queueing delay at the shared resource is
// reflected in the caller's virtual time.
func (s *Server) Serve(arrival, service Duration) Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := arrival
	if s.nextFree > start {
		start = s.nextFree
	}
	depart := start + service
	s.nextFree = depart
	s.busy += service
	s.requests++
	return depart
}

// Utilization returns total busy time and number of requests served,
// for reporting contention in experiments.
func (s *Server) Utilization() (busy Duration, requests uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy, s.requests
}

// Reset clears the server state for reuse across experiment runs.
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextFree, s.busy, s.requests = 0, 0, 0
}
