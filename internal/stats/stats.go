// Package stats provides the small statistics and rendering toolkit the
// experiment drivers share: CDFs over integer-valued observations (Figs
// 2-3), x/y series (Figs 8-11), and fixed-width table rendering for the
// bench output that mirrors the paper's tables.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF accumulates integer observations and reports their cumulative
// distribution.
type CDF struct {
	counts map[int]uint64
	total  uint64
}

// NewCDF returns an empty distribution.
func NewCDF() *CDF { return &CDF{counts: make(map[int]uint64)} }

// Add records one observation.
func (c *CDF) Add(v int) {
	c.counts[v]++
	c.total++
}

// AddN records n observations of v.
func (c *CDF) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	c.counts[v] += n
	c.total += n
}

// Total returns the observation count.
func (c *CDF) Total() uint64 { return c.total }

// At returns P(X <= v).
func (c *CDF) At(v int) float64 {
	if c.total == 0 {
		return 0
	}
	var cum uint64
	for val, n := range c.counts {
		if val <= v {
			cum += n
		}
	}
	return float64(cum) / float64(c.total)
}

// Points returns the full CDF as sorted (value, P(X<=value)) pairs.
func (c *CDF) Points() []Point {
	if c.total == 0 {
		return nil
	}
	vals := make([]int, 0, len(c.counts))
	for v := range c.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	out := make([]Point, 0, len(vals))
	var cum uint64
	for _, v := range vals {
		cum += c.counts[v]
		out = append(out, Point{X: float64(v), Y: float64(cum) / float64(c.total)})
	}
	return out
}

// Quantile returns the smallest value v with P(X <= v) >= q.
func (c *CDF) Quantile(q float64) int {
	pts := c.Points()
	for _, p := range pts {
		if p.Y >= q {
			return int(p.X)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return int(pts[len(pts)-1].X)
}

// Point is one (x, y) sample of a series.
type Point struct{ X, Y float64 }

// Series is a named sequence of points — one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the Y of the first point with the given X, or 0.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Table renders fixed-width text tables for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// trimFloat renders floats compactly (2 decimals, stripped).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// RenderSeries renders one or more series as an aligned x/y text table,
// the bench output format for the paper's figures.
func RenderSeries(xLabel string, series ...Series) string {
	t := NewTable(append([]string{xLabel}, names(series)...)...)
	// Collect the union of X values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]any, 0, len(series)+1)
		row = append(row, trimFloat(x))
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
