package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF()
	if c.At(10) != 0 || c.Total() != 0 {
		t.Fatalf("empty CDF not zero")
	}
	for _, v := range []int{1, 1, 2, 4} {
		c.Add(v)
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	cases := []struct {
		v    int
		want float64
	}{{0, 0}, {1, 0.5}, {2, 0.75}, {3, 0.75}, {4, 1}, {100, 1}}
	for _, cse := range cases {
		if got := c.At(cse.v); got != cse.want {
			t.Errorf("At(%d) = %v, want %v", cse.v, got, cse.want)
		}
	}
	pts := c.Points()
	if len(pts) != 3 || pts[0] != (Point{1, 0.5}) || pts[2] != (Point{4, 1}) {
		t.Errorf("points = %v", pts)
	}
}

func TestCDFAddN(t *testing.T) {
	c := NewCDF()
	c.AddN(5, 10)
	c.AddN(7, 0) // no-op
	if c.Total() != 10 || c.At(5) != 1 {
		t.Errorf("AddN wrong: total=%d", c.Total())
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 100; i++ {
		c.Add(i)
	}
	if got := c.Quantile(0.5); got != 50 {
		t.Errorf("median = %d", got)
	}
	if got := c.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %d", got)
	}
	if got := NewCDF().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
}

// Property: CDF is monotone and ends at 1.
func TestCDFMonotoneQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewCDF()
		for _, v := range vals {
			c.Add(int(v))
		}
		pts := c.Points()
		prev := 0.0
		for _, p := range pts {
			if p.Y < prev {
				return false
			}
			prev = p.Y
		}
		return pts[len(pts)-1].Y == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "kona"
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Errorf("YAt missing x succeeded")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Workload", "4KB", "CL")
	tab.AddRow("Redis-Rand", 31.36, 1.48)
	tab.AddRow("Redis-Seq", 2.76, 1.0)
	out := tab.String()
	for _, want := range []string{"Workload", "Redis-Rand", "31.36", "1.48", "2.76", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Lines all align: same column count per row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d", len(lines))
	}
}

func TestRenderSeries(t *testing.T) {
	a := Series{Name: "LegoOS", Points: []Point{{25, 20.5}, {50, 10}}}
	b := Series{Name: "Kona", Points: []Point{{25, 8.1}, {75, 5}}}
	out := RenderSeries("Cache%", a, b)
	for _, want := range []string{"Cache%", "LegoOS", "Kona", "20.5", "8.1", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{1.0: "1", 1.5: "1.5", 31.36: "31.36", 0.0: "0", 2.70: "2.7"}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCDFLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewCDF()
	for i := 0; i < 100000; i++ {
		c.Add(rng.Intn(64) + 1)
	}
	// Uniform over 1..64: median ~32.
	med := c.Quantile(0.5)
	if med < 28 || med > 36 {
		t.Errorf("median = %d, want ~32", med)
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	a := Series{Name: "LegoOS", Points: []Point{{5, 20}, {50, 13}, {100, 7}}}
	b := Series{Name: "Kona", Points: []Point{{5, 11}, {50, 9}, {100, 6.5}}}
	out := Plot("AMAT vs cache size", "cache %", 40, 10, a, b)
	for _, want := range []string{"AMAT vs cache size", "LegoOS", "Kona", "*", "o", "cache %", "20", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+2+1 {
		t.Errorf("plot has %d lines", len(lines))
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	if out := Plot("empty", "x", 40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	// A single point must not divide by zero.
	s := Series{Name: "one", Points: []Point{{5, 5}}}
	out := Plot("single", "x", 20, 5, s)
	if !strings.Contains(out, "one") {
		t.Errorf("single-point plot broken:\n%s", out)
	}
	// Tiny dimensions are clamped.
	out = Plot("tiny", "x", 1, 1, s)
	if len(out) == 0 {
		t.Errorf("tiny plot empty")
	}
}

// TestSeriesYAtEdges pins YAt on an empty series and on probes outside
// the observed x range — experiment drivers probe figure curves at
// paper-quoted x values that a quick run may not have produced.
func TestSeriesYAtEdges(t *testing.T) {
	var empty Series
	if y, ok := empty.YAt(0); ok || y != 0 {
		t.Errorf("empty YAt = %v,%v, want 0,false", y, ok)
	}
	s := Series{Name: "kona", Points: []Point{{1, 10}, {2, 20}}}
	for _, x := range []float64{0, 1.5, 3, -1} {
		if y, ok := s.YAt(x); ok || y != 0 {
			t.Errorf("YAt(%v) = %v,%v, want 0,false", x, y, ok)
		}
	}
	// Duplicate x: first point wins.
	dup := Series{Points: []Point{{1, 10}, {1, 99}}}
	if y, ok := dup.YAt(1); !ok || y != 10 {
		t.Errorf("duplicate-x YAt = %v,%v, want 10,true", y, ok)
	}
}

// TestTableMixedCellTypes pins AddRow's %v fallback across cell types:
// floats trim trailing zeros, everything else renders verbatim.
func TestTableMixedCellTypes(t *testing.T) {
	tab := NewTable("metric", "value", "ok")
	tab.AddRow("fetches", uint64(7170), true)
	tab.AddRow("speedup", 6.30, false)
	tab.AddRow(42, "n/a", 1.0)
	out := tab.String()
	for _, want := range []string{"7170", "true", "6.3", "false", "42", "n/a", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "6.30") || strings.Contains(out, "1.00") {
		t.Errorf("floats not trimmed:\n%s", out)
	}
	// Every row renders the same number of separator-aligned columns.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	width := len(lines[1])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > width {
			t.Errorf("line %d wider than separator: %q", i, l)
		}
	}
}

// TestCDFQuantileAtEdges pins the boundary behavior of Quantile and At:
// empty distributions, a single observation, q=0 and q=1, negative
// values, and probes outside the observed range.
func TestCDFQuantileAtEdges(t *testing.T) {
	single := NewCDF()
	single.Add(5)
	negatives := NewCDF()
	for _, v := range []int{-10, -5, 0, 5} {
		negatives.Add(v)
	}
	cases := []struct {
		name string
		cdf  *CDF
		q    float64
		want int
	}{
		{"empty q=0", NewCDF(), 0, 0},
		{"empty q=0.5", NewCDF(), 0.5, 0},
		{"empty q=1", NewCDF(), 1, 0},
		{"single q=0", single, 0, 5},
		{"single q=0.5", single, 0.5, 5},
		{"single q=1", single, 1, 5},
		{"single q>1 clamps to max", single, 1.5, 5},
		{"negatives q=0", negatives, 0, -10},
		{"negatives q=0.25", negatives, 0.25, -10},
		{"negatives q=0.5", negatives, 0.5, -5},
		{"negatives q=1", negatives, 1, 5},
	}
	for _, c := range cases {
		if got := c.cdf.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", c.name, c.q, got, c.want)
		}
	}

	atCases := []struct {
		name string
		cdf  *CDF
		v    int
		want float64
	}{
		{"empty At", NewCDF(), 0, 0},
		{"single below", single, 4, 0},
		{"single at", single, 5, 1},
		{"single above", single, 6, 1},
		{"negatives below min", negatives, -11, 0},
		{"negatives at min", negatives, -10, 0.25},
		{"negatives at max", negatives, 5, 1},
		{"negatives above max", negatives, 100, 1},
	}
	for _, c := range atCases {
		if got := c.cdf.At(c.v); got != c.want {
			t.Errorf("%s: At(%d) = %v, want %v", c.name, c.v, got, c.want)
		}
	}
}
