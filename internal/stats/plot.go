package stats

import (
	"fmt"
	"math"
	"strings"
)

// ASCII plotting for the bench output: the figures the experiment drivers
// regenerate can be eyeballed directly in the terminal next to their
// numeric tables.

// plotGlyphs distinguish up to six series.
var plotGlyphs = []rune{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the series as a fixed-size ASCII chart with a legend. X
// positions are mapped by value (not index), so unevenly spaced sweeps
// render proportionally.
func Plot(title, xLabel string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	nPoints := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			nPoints++
		}
	}
	if nPoints == 0 {
		return title + ": (no data)\n"
	}
	if minY > 0 && minY/math.Max(maxY, 1e-12) > 0.0 {
		// Anchor the y-axis at zero when it keeps resolution reasonable.
		if minY < maxY/2 {
			minY = 0
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			x := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			y := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				if grid[row][x] != ' ' && grid[row][x] != g {
					grid[row][x] = '&' // overlapping series
				} else {
					grid[row][x] = g
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yTop := trimFloat(maxY)
	yBot := trimFloat(minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad),
		trimFloat(minX), strings.Repeat(" ", max(1, width-len(trimFloat(minX))-len(trimFloat(maxX)))), trimFloat(maxX))
	fmt.Fprintf(&b, "%s  x: %s   ", strings.Repeat(" ", pad), xLabel)
	for si, s := range series {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	b.WriteString("\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
