// Package kcachesim reimplements KCacheSim (§5, §6.2): it estimates the
// average memory access time (AMAT) of an application under each
// remote-memory system by running the workload's access stream through a
// simulated cache hierarchy — hardware caches, then the local DRAM cache
// (FMem for Kona, CMem for the virtual-memory baselines), then remote
// memory at the system's measured fetch latency.
//
// As in the paper, the model is conservative for Kona: it charges the page
// fault entirely as extra transfer latency for the baselines and ignores
// the pipeline flushes and cache pollution faults also cause.
//
// Scaling note: application footprints are scaled from GBs to tens of MBs
// (see package workload), so the hardware cache levels are scaled by the
// same factor to preserve the cache-to-footprint ratios that determine
// miss behavior. The DRAM-cache size is expressed as a percentage of the
// workload footprint — exactly Fig 8's x-axis.
package kcachesim

import (
	"fmt"
	"time"

	"kona/internal/cachesim"
	"kona/internal/mem"
	"kona/internal/rdma"
	"kona/internal/simclock"
	"kona/internal/workload"
)

// System identifies a remote-memory system under study.
type System int

const (
	// Kona caches remote data in FMem (NUMA-penalized) and fetches
	// without page faults.
	Kona System = iota
	// KonaMain is the idealized Kona that could track CMem: local-DRAM
	// hit latency with Kona's fetch path (§6.2).
	KonaMain
	// LegoOS fetches at its measured 10µs fault-inclusive latency.
	LegoOS
	// Infiniswap fetches at its measured 40µs block-layer latency.
	Infiniswap
)

// String names the system.
func (s System) String() string {
	switch s {
	case Kona:
		return "Kona"
	case KonaMain:
		return "Kona-main"
	case LegoOS:
		return "LegoOS"
	case Infiniswap:
		return "Infiniswap"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Config parameterizes one AMAT simulation.
type Config struct {
	// Workload supplies the access stream.
	Workload *workload.Workload
	// Accesses bounds the stream length.
	Accesses int
	// Seed makes runs reproducible.
	Seed int64
	// CachePct is the local DRAM cache size as a percentage of the
	// workload footprint (Fig 8's x-axis).
	CachePct float64
	// BlockSize is the DRAM cache block / remote fetch granularity
	// (Fig 8d's x-axis). Defaults to 4KB, the paper's choice.
	BlockSize uint64
	// Assoc is the DRAM cache associativity (default 4, like FMem).
	Assoc int
	// HWPrefetch enables the DRAM cache's next-block prefetcher. Only
	// meaningful for the Kona systems: page-based baselines cannot
	// prefetch across a fault boundary (§3), and Run ignores the flag for
	// them.
	HWPrefetch bool
}

// localAccessFactor approximates the instruction-local traffic (stack,
// locals, code-adjacent data) that Cachegrind sees but app-level synthetic
// streams do not: for every application data access, this many always-L1
// accesses are folded into the AMAT denominator. Values are per workload
// class, chosen so absolute AMATs land in the paper's ns range; the
// system-to-system ratios Fig 8 reports are unaffected by the shared
// constant.
// localAccessLatency is the average cost of one instruction-local access:
// an L1/L2 mix (stack frames, locals, code-adjacent tables), not pure L1.
// Together with localAccessFactor it sets the AMAT floor all systems share
// (the paper's curves bottom out around 5-8ns at full cache).
const localAccessLatency = 6 * time.Nanosecond

func localAccessFactor(w *workload.Workload) int {
	switch w.Name {
	case "Redis-Rand", "Redis-Seq", "VoltDB":
		return 600 // request parsing, dict walk, protocol handling per op
	case "Linear Regression", "Histogram":
		// Streaming kernels touch every data line with only a small
		// arithmetic loop around it, so data refs are a large share of
		// all refs — which is also why their FMem NUMA penalty is the
		// most visible (§6.2 reports 25% for Linear Regression).
		return 15
	default:
		return 390 // graph kernels: per-edge traversal work
	}
}

// softwareOverhead is the per-fetch latency beyond the raw RDMA transfer:
// the page-fault path for the baselines (derived from the paper's
// end-to-end measurements minus the 3µs 4KB RDMA), the FPGA pipeline for
// Kona.
func softwareOverhead(sys System) simclock.Duration {
	switch sys {
	case LegoOS:
		return simclock.LegoOSFetch - simclock.RDMA4KB // ≈7µs of fault path
	case Infiniswap:
		return simclock.InfiniswapFetch - simclock.RDMA4KB // ≈37µs of block layer
	default:
		return 500 * time.Nanosecond // FPGA directory + translation
	}
}

// dramHitLatency is the local DRAM cache hit time: FMem (NUMA) for Kona,
// CMem for everything else.
func dramHitLatency(sys System) simclock.Duration {
	if sys == Kona {
		return simclock.FMemAccess
	}
	return simclock.DRAMAccess
}

// Result carries an AMAT simulation's outputs.
type Result struct {
	System System
	// AMATns is the average memory access time in nanoseconds (float:
	// sub-ns resolution matters for the flat parts of the curves).
	AMATns float64
	// DRAMMissRatio is the local-cache miss ratio (remote access rate).
	DRAMMissRatio float64
	Accesses      uint64
}

// Run simulates one system/config pair and returns its AMAT.
func Run(sys System, cfg Config) (Result, error) {
	if cfg.Workload == nil {
		return Result{}, fmt.Errorf("kcachesim: nil workload")
	}
	if cfg.Accesses <= 0 {
		cfg.Accesses = 200000
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = mem.PageSize
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 4
	}

	// Remote fetch latency at this block size: software path + transfer.
	backing := softwareOverhead(sys) + rdma.DefaultCostModel().BatchTime(1, int(cfg.BlockSize))

	levels := hardwareLevels()
	dramSize := alignCache(uint64(cfg.CachePct/100*float64(cfg.Workload.Footprint)), cfg.BlockSize, cfg.Assoc)
	if dramSize > 0 {
		levels = append(levels, cachesim.Config{
			Name: "DRAM", Size: dramSize, BlockSize: cfg.BlockSize,
			Assoc: cfg.Assoc, HitLatency: dramHitLatency(sys),
			PrefetchNext: cfg.HWPrefetch && (sys == Kona || sys == KonaMain),
		})
	}
	h := cachesim.NewHierarchy(backing, levels...)
	if _, err := h.Run(cfg.Workload.CacheStream(cfg.Seed, cfg.Accesses)); err != nil {
		return Result{}, err
	}

	res := Result{System: sys, Accesses: h.Accesses()}
	// Fold in the instruction-local traffic analytically.
	k := float64(localAccessFactor(cfg.Workload))
	appTime := float64(h.AMAT())
	res.AMATns = (appTime + k*float64(localAccessLatency)) / (k + 1)
	if dramSize > 0 {
		last := h.Levels()[len(h.Levels())-1]
		res.DRAMMissRatio = last.Stats().MissRatio()
	} else {
		res.DRAMMissRatio = 1
	}
	return res, nil
}

// hardwareLevels returns the scaled L1/L2/L3 configuration (see the
// package comment for why they are scaled with the footprint).
func hardwareLevels() []cachesim.Config {
	return []cachesim.Config{
		{Name: "L1", Size: 4 << 10, BlockSize: 64, Assoc: 8, HitLatency: simclock.L1Hit},
		{Name: "L2", Size: 32 << 10, BlockSize: 64, Assoc: 8, HitLatency: simclock.L2Hit},
		{Name: "L3", Size: 256 << 10, BlockSize: 64, Assoc: 8, HitLatency: simclock.L3Hit},
	}
}

// alignCache rounds size down to valid cache geometry (a multiple of
// assoc*block); sizes under one set become 0 (no cache).
func alignCache(size, block uint64, assoc int) uint64 {
	unit := block * uint64(assoc)
	return size / unit * unit
}

// SimulationOverhead measures the simulator's own slowdown (§6.2(3)
// reports 43X for Redis): the wall-clock cost of simulating a stream
// relative to merely generating and scanning it.
func SimulationOverhead(w *workload.Workload, accesses int) float64 {
	cfg := Config{Workload: w, Accesses: accesses, CachePct: 50, Seed: 1}
	startNative := time.Now()
	s := w.CacheStream(1, accesses)
	var sink uint64
	for {
		a, err := s.Next()
		if err != nil {
			break
		}
		sink += uint64(a.Addr)
	}
	native := time.Since(startNative)
	_ = sink
	startSim := time.Now()
	if _, err := Run(Kona, cfg); err != nil {
		return 0
	}
	sim := time.Since(startSim)
	if native <= 0 {
		return 0
	}
	return float64(sim) / float64(native)
}
