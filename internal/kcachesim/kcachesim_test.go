package kcachesim

import (
	"testing"

	"kona/internal/workload"
)

func run(t *testing.T, sys System, w *workload.Workload, pct float64) Result {
	t.Helper()
	r, err := Run(sys, Config{Workload: w, Accesses: 300000, Seed: 9, CachePct: pct})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSystemsConvergeAtFullCache(t *testing.T) {
	w := workload.RedisRand()
	kona := run(t, Kona, w, 100)
	lego := run(t, LegoOS, w, 100)
	// With ~100% of the footprint cached the only differences are cold
	// misses and NUMA; AMATs must be within 2x of each other.
	ratio := lego.AMATns / kona.AMATns
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("full-cache AMATs diverge: kona=%v lego=%v", kona.AMATns, lego.AMATns)
	}
}

func TestKonaWinsAtSmallCache(t *testing.T) {
	w := workload.RedisRand()
	kona := run(t, Kona, w, 25)
	lego := run(t, LegoOS, w, 25)
	iswap := run(t, Infiniswap, w, 25)
	// Fig 8a at 25% cache: Kona ≈1.7x under LegoOS, ≈5x under Infiniswap.
	rLego := lego.AMATns / kona.AMATns
	rIswap := iswap.AMATns / kona.AMATns
	t.Logf("25%% cache: kona=%.1fns lego=%.1fns (%.2fx) iswap=%.1fns (%.2fx)",
		kona.AMATns, lego.AMATns, rLego, iswap.AMATns, rIswap)
	if rLego < 1.3 || rLego > 3 {
		t.Errorf("LegoOS/Kona = %.2f, want ~1.7", rLego)
	}
	if rIswap < 3 || rIswap > 9 {
		t.Errorf("Infiniswap/Kona = %.2f, want ~5", rIswap)
	}
	// Infiniswap is consistently worse than LegoOS by 2.3-3.7x (§6.2).
	if r := iswap.AMATns / lego.AMATns; r < 1.8 || r > 4.5 {
		t.Errorf("Infiniswap/LegoOS = %.2f, want 2.3-3.7", r)
	}
}

func TestKonaMainBeatsKona(t *testing.T) {
	w := workload.GraphColoring()
	kona := run(t, Kona, w, 50)
	main := run(t, KonaMain, w, 50)
	if main.AMATns >= kona.AMATns {
		t.Errorf("Kona-main (%v) must beat Kona (%v): no NUMA penalty", main.AMATns, kona.AMATns)
	}
	// The NUMA delta is bounded (§6.2 reports 2-25%).
	if kona.AMATns > 1.6*main.AMATns {
		t.Errorf("NUMA delta too large: %v vs %v", kona.AMATns, main.AMATns)
	}
}

func TestStreamingWorkloadFlatCurve(t *testing.T) {
	// Fig 8b: Linear Regression's AMAT is almost independent of cache
	// size (no reuse).
	w := workload.LinearRegression()
	small := run(t, LegoOS, w, 10)
	big := run(t, LegoOS, w, 90)
	ratio := small.AMATns / big.AMATns
	if ratio > 1.5 {
		t.Errorf("streaming curve not flat: 10%%=%v vs 90%%=%v", small.AMATns, big.AMATns)
	}
}

func TestReuseWorkloadSteepCurve(t *testing.T) {
	// Fig 8a: Redis-Rand's AMAT rises steeply as the cache shrinks.
	w := workload.RedisRand()
	small := run(t, LegoOS, w, 5)
	big := run(t, LegoOS, w, 95)
	if small.AMATns < 2*big.AMATns {
		t.Errorf("reuse curve not steep: 5%%=%v vs 95%%=%v", small.AMATns, big.AMATns)
	}
}

func TestBlockSizeSweetSpot(t *testing.T) {
	// Fig 8d: ~1KB blocks minimize AMAT; 64B wastes spatial locality and
	// very large blocks raise conflict misses/transfer cost.
	w := workload.RedisRand()
	amatAt := func(block uint64) float64 {
		r, err := Run(Kona, Config{Workload: w, Accesses: 300000, Seed: 9, CachePct: 27, BlockSize: block})
		if err != nil {
			t.Fatal(err)
		}
		return r.AMATns
	}
	tiny := amatAt(64)
	sweet := amatAt(1024)
	huge := amatAt(32 << 10)
	t.Logf("64B=%.1fns 1KB=%.1fns 32KB=%.1fns", tiny, sweet, huge)
	if sweet >= tiny {
		t.Errorf("1KB (%v) should beat 64B (%v)", sweet, tiny)
	}
	if sweet >= huge {
		t.Errorf("1KB (%v) should beat 32KB (%v)", sweet, huge)
	}
	// 4KB is close to the 1KB optimum (the paper's reason to pick 4KB).
	four := amatAt(4096)
	if four > 1.5*sweet {
		t.Errorf("4KB (%v) should be within 1.5x of 1KB (%v)", four, sweet)
	}
}

func TestZeroCacheIsAllRemote(t *testing.T) {
	w := workload.RedisSeq()
	r := run(t, LegoOS, w, 0)
	if r.DRAMMissRatio != 1 {
		t.Errorf("zero cache miss ratio = %v", r.DRAMMissRatio)
	}
	full := run(t, LegoOS, w, 100)
	if r.AMATns <= full.AMATns {
		t.Errorf("zero-cache AMAT (%v) must exceed full-cache (%v)", r.AMATns, full.AMATns)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Kona, Config{}); err == nil {
		t.Errorf("nil workload accepted")
	}
}

func TestAlignCache(t *testing.T) {
	if got := alignCache(100, 64, 4); got != 0 {
		t.Errorf("sub-set cache = %d, want 0", got)
	}
	if got := alignCache(1000, 64, 4); got != 768 {
		t.Errorf("alignCache(1000) = %d, want 768", got)
	}
}

func TestSimulationOverheadPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	over := SimulationOverhead(workload.RedisRand(), 30000)
	if over < 1 {
		t.Errorf("simulation overhead = %.1fx, must be >= 1x", over)
	}
	t.Logf("simulation overhead: %.1fx (paper: 43x for full Redis under Cachegrind)", over)
}

func TestSystemNames(t *testing.T) {
	cases := map[System]string{
		Kona: "Kona", KonaMain: "Kona-main", LegoOS: "LegoOS",
		Infiniswap: "Infiniswap", System(99): "System(99)",
	}
	for sys, want := range cases {
		if got := sys.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(sys), got, want)
		}
	}
}
