// Package telemetry is the runtime observability layer (DESIGN.md §7):
// atomic counters, gauges and fixed-bucket histograms behind a Registry,
// plus a bounded structured-event ring (Trace) for annotated runtime
// events. Every component of the data path — the FPGA caching handler,
// the evictor, the poller, the cluster transport, the simulators — reports
// into a Registry it is handed at construction time.
//
// Two properties shape the design:
//
//   - Zero hot-path cost when disabled. A nil *Registry hands out nil
//     metric handles, and every handle method nil-checks its receiver, so
//     a component instrumented against a disabled registry pays one
//     pointer comparison per site (the benchmarks in cachesim and cluster
//     pin this under 2%). Components should resolve their handles once at
//     construction, never per operation.
//
//   - No dependencies beyond the standard library. The registry is
//     consumed by everything (core, cluster, the simulators, the
//     daemons), so it must sit at the bottom of the import graph.
//
// Counters are cache-line padded so two hot counters incremented from
// different goroutines do not false-share. Histograms are fixed-bucket:
// an Observe is one atomic add into a bucket chosen by binary search over
// the (immutable) bounds, with no locks and no allocation.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic event count. The padding keeps independent
// counters on separate cache lines (an atomic add invalidates the whole
// line on every other core).
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Store overwrites the counter — the publish path for components that
// keep their own cheap private counters (the simulators) and sync them
// into the registry at batch boundaries. Safe on a nil receiver.
func (c *Counter) Store(v uint64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (in-flight requests, pool
// occupancy). Padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores the level. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the level by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc raises the level by one. Safe on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the level by one. Safe on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram distributes observations into fixed buckets. bounds[i] is the
// inclusive upper bound of bucket i; one overflow bucket catches the rest.
// Observations are lock-free: a binary search over the immutable bounds
// plus one atomic increment.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one observation. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Smallest i with bounds[i] >= v; len(bounds) = overflow.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// ExpBounds builds n histogram bounds growing geometrically from start by
// factor — the usual shape for latency buckets.
func ExpBounds(start int64, factor float64, n int) []int64 {
	out := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		out = append(out, int64(v))
		v *= factor
	}
	return out
}

// Registry names and owns a process's metrics. The zero value is not
// useful; use New. A nil *Registry is the disabled state: it hands out
// nil handles and empty snapshots, so instrumented components need no
// enabled/disabled branches of their own.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
}

// New returns an enabled registry with a bounded event ring of the given
// capacity (<= 0 uses 4096 events).
func New(traceCap int) *Registry {
	if traceCap <= 0 {
		traceCap = 4096
	}
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    NewTrace(traceCap),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the first bounds). Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Trace returns the registry's event ring (nil on a nil registry; Trace
// methods are nil-safe, so callers emit unconditionally).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	// Bounds[i] is the inclusive upper bound of Counts[i]; the final
	// Counts entry is the overflow bucket.
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// Mean returns the average observation, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the upper bound of the bucket holding the q-th
// quantile (the overflow bucket reports the largest bound).
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a consistent-enough copy of a registry: counters and gauges
// are read atomically one by one (the registry never blocks writers).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value. On a nil registry it
// returns an empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Delta returns this snapshot minus prev: counter differences (clamped at
// zero), current gauge levels, and histogram count/sum differences.
// kona-bench -telemetry uses it for per-artifact attribution.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if p := prev.Counters[name]; v > p {
			out.Counters[name] = v - p
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		if h.Count <= p.Count {
			continue
		}
		d := HistogramSnapshot{
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
			Bounds: h.Bounds,
			Counts: make([]uint64, len(h.Counts)),
		}
		for i := range h.Counts {
			if i < len(p.Counts) && h.Counts[i] >= p.Counts[i] {
				d.Counts[i] = h.Counts[i] - p.Counts[i]
			} else {
				d.Counts[i] = h.Counts[i]
			}
		}
		out.Histograms[name] = d
	}
	return out
}

// Text renders the snapshot as sorted "name value" lines — the format
// served at /metrics (and grep-able in soak logs). Histograms render as
// count/mean/p50/p99 derived lines.
func (s Snapshot) Text() string {
	var b strings.Builder
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+4*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.mean %.1f", name, h.Mean()),
			fmt.Sprintf("%s.p50 %d", name, h.Quantile(0.50)),
			fmt.Sprintf("%s.p99 %d", name, h.Quantile(0.99)),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON — the format served at
// /metrics?format=json.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
