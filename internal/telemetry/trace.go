package telemetry

import (
	"sync"
	"time"
)

// Event is one annotated runtime occurrence: a remote fetch, an eviction
// batch flush, a transport retry, a replica failover. Events carry both a
// wall-clock stamp (always) and an optional virtual-time stamp for
// components running on the simulated clock (simclock.Duration aliases
// time.Duration, so no simclock import is needed here).
type Event struct {
	// Seq is the global emission ordinal; gaps after wraparound reveal
	// how many events the bounded ring dropped.
	Seq  uint64    `json:"seq"`
	Wall time.Time `json:"wall"`
	// Virtual is the emitting component's simulated clock, in
	// nanoseconds; 0 for wall-clock-only components.
	Virtual time.Duration `json:"virtual_ns,omitempty"`
	Name    string        `json:"name"`
	Detail  string        `json:"detail,omitempty"`
}

// Trace is a bounded ring of Events. Writers never block readers for
// long: Emit takes one short mutex hold (events are orders of magnitude
// rarer than counter increments, so a lock is the right trade against
// the complexity of a lock-free ring). All methods are nil-safe.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next int    // buf index the next event lands in
	seq  uint64 // total events ever emitted
}

// NewTrace returns an empty ring holding up to capacity events (<= 0
// uses 1024).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Emit records a wall-clock-stamped event. Safe on a nil receiver.
func (t *Trace) Emit(name, detail string) { t.EmitAt(0, name, detail) }

// EmitAt records an event carrying the emitting component's virtual
// timestamp. Safe on a nil receiver.
func (t *Trace) EmitAt(virtual time.Duration, name, detail string) {
	if t == nil {
		return
	}
	e := Event{Wall: time.Now(), Virtual: virtual, Name: name, Detail: detail}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Events returns the retained events oldest-first. Safe on a nil
// receiver (returns nil).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns the number of events ever emitted (retained + dropped).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
