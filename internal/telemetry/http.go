package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
)

// Handler serves a registry over HTTP:
//
//	GET /metrics              sorted "name value" text (Snapshot.Text)
//	GET /metrics?format=json  the full Snapshot as JSON
//	GET /debug/events         the retained event ring as JSON, oldest first
//
// A nil registry serves empty snapshots, so a daemon can wire the
// endpoint unconditionally and gate only the registry itself.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := reg.Snapshot()
		wantJSON := r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json")
		if wantJSON {
			b, err := s.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.Text())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		b, err := json.MarshalIndent(reg.Trace().Events(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Serve exposes reg on addr (":0" for ephemeral) and returns the running
// server. Close stops it.
func Serve(addr string, reg *Registry) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{l: l, srv: &http.Server{Handler: Handler(reg)}}
	go s.srv.Serve(l)
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
