package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New(0)
	c := r.Counter("fetches")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("fetches") != c {
		t.Fatalf("same name returned a different counter")
	}
	g := r.Gauge("inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestNilRegistryIsSafeEverywhere(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	c.Store(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter has a value")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(2)
	g.Dec()
	if g.Value() != 0 {
		t.Fatalf("nil gauge has a value")
	}
	h := r.Histogram("z", ExpBounds(1, 2, 8))
	h.Observe(42)
	if h.Count() != 0 {
		t.Fatalf("nil histogram counted")
	}
	tr := r.Trace()
	tr.Emit("e", "detail")
	tr.EmitAt(5, "e2", "")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Events() != nil {
		t.Fatalf("nil trace retained events")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
	if s.Text() != "" {
		t.Fatalf("nil registry text not empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New(0)
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 11, 50, 100, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	// Buckets: <=10 holds {1,5,10}; <=100 holds {11,50,100}; <=1000 holds
	// {500}; overflow holds {5000}.
	want := []uint64{3, 3, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Sum != 5677 {
		t.Fatalf("sum = %d, want 5677", s.Sum)
	}
	if q := s.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d (overflow reports max bound 1000), got wrong", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := New(0)
	c := r.Counter("c")
	h := r.Histogram("h", ExpBounds(1, 10, 4))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Trace().Emit("tick", "")
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if r.Trace().Total() != 8000 {
		t.Fatalf("trace total = %d, want 8000", r.Trace().Total())
	}
}

func TestTraceRingBoundsAndOrder(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.EmitAt(0, "e", strings.Repeat("x", i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New(0)
	c := r.Counter("ops")
	h := r.Histogram("lat", []int64{10, 100})
	c.Add(3)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(50)
	h.Observe(50)
	r.Gauge("level").Set(2)
	d := r.Snapshot().Delta(before)
	if d.Counters["ops"] != 7 {
		t.Fatalf("delta ops = %d, want 7", d.Counters["ops"])
	}
	if d.Gauges["level"] != 2 {
		t.Fatalf("delta gauge = %d, want 2", d.Gauges["level"])
	}
	hd := d.Histograms["lat"]
	if hd.Count != 2 || hd.Sum != 100 || hd.Counts[1] != 2 {
		t.Fatalf("delta histogram = %+v", hd)
	}
	// Unchanged metrics drop out of the delta entirely.
	c2 := r.Counter("idle")
	c2.Add(1)
	s1 := r.Snapshot()
	d2 := r.Snapshot().Delta(s1)
	if _, ok := d2.Counters["idle"]; ok {
		t.Fatalf("unchanged counter survived the delta")
	}
}

func TestTextRendering(t *testing.T) {
	r := New(0)
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("z.level").Set(-3)
	txt := r.Snapshot().Text()
	want := "a.count 1\nb.count 2\nz.level -3\n"
	if txt != want {
		t.Fatalf("text = %q, want %q", txt, want)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := New(16)
	reg.Counter("core.fetches").Add(9)
	reg.Gauge("cluster.inflight").Set(1)
	reg.Histogram("rpc.lat_us", ExpBounds(1, 4, 6)).Observe(12)
	reg.Trace().EmitAt(77, "fetch.start", "page=0x1000")

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	txt := string(get("/metrics"))
	if !strings.Contains(txt, "core.fetches 9") || !strings.Contains(txt, "rpc.lat_us.count 1") {
		t.Fatalf("text metrics missing lines:\n%s", txt)
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics?format=json"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["core.fetches"] != 9 || snap.Gauges["cluster.inflight"] != 1 {
		t.Fatalf("json snapshot wrong: %+v", snap)
	}
	if snap.Histograms["rpc.lat_us"].Count != 1 {
		t.Fatalf("json histogram missing")
	}

	var evs []Event
	if err := json.Unmarshal(get("/debug/events"), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "fetch.start" || evs[0].Virtual != 77 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("nil registry /metrics status %d", resp.StatusCode)
	}
}
