package cluster

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// FuzzFrameDecode feeds arbitrary bytes to both decode paths — the
// length-prefixed frame reader and the legacy bare-gob form — and
// requires an error or a value, never a panic or a hang. The frame reader
// consumes from a finite in-memory stream, so termination is structural;
// what the fuzzer hunts for is panics and unbounded allocation.
func FuzzFrameDecode(f *testing.F) {
	// Seed with a valid frame, a truncated frame, a length-bomb header,
	// raw gob without a frame header, and plain garbage.
	var valid bytes.Buffer
	if err := writeFrame(&valid, &Request{Kind: msgPing, ID: 42}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	var bare bytes.Buffer
	if err := gob.NewEncoder(&bare).Encode(&Request{Kind: msgRead, Length: 64}); err != nil {
		f.Fatal(err)
	}
	f.Add(bare.Bytes())
	f.Add([]byte("not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = readFrame(bytes.NewReader(data), &req)
		var legacy Request
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&legacy)
		var resp Response
		_ = readFrame(bytes.NewReader(data), &resp)
	})
}

// FuzzRequestRoundTrip checks the codec is lossless: any Request that
// encodes must decode to an identical value.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add("read", uint64(1), 0, uint64(4096), uint64(128), 64, []byte("payload"))
	f.Add("", uint64(0), -1, uint64(0), uint64(0), 0, []byte(nil))
	f.Add("alloc-slab", ^uint64(0), 1<<30, ^uint64(0), ^uint64(0), -1, bytes.Repeat([]byte{0xAB}, 300))

	f.Fuzz(func(t *testing.T, kind string, id uint64, nodeID int, size, offset uint64, length int, data []byte) {
		in := Request{
			Kind: kind, ID: id, NodeID: nodeID,
			Size: size, Offset: offset, Length: length, Data: data,
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, &in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var out Request
		if err := readFrame(&buf, &out); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		// Gob canonicalizes empty slices to nil; normalize before comparing.
		if len(in.Data) == 0 {
			in.Data = nil
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mutated request:\n in: %+v\nout: %+v", in, out)
		}
	})
}
