package cluster

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"kona/internal/mem"
	"kona/internal/slab"
)

// mkSlab derives one slab record from fuzzed scalars.
func mkSlab(id, base, epoch uint64, i int) slab.Slab {
	return slab.Slab{
		ID: id, Base: mem.Addr(base + id), Size: base ^ id, Node: i - 2,
		Epoch: epoch, RemoteKey: uint32(id * 2654435761), RemoteOff: base * 3,
	}
}

// encodeRequest frames req (with req.Data as payload) into a buffer.
func encodeRequest(t testing.TB, req *Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := writeRequestFrame(&buf, req, req.Data); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// decodeRequest parses one framed request the way the serve loop does:
// prefix+header, then the payload into a fresh buffer.
func decodeRequest(data []byte) (Request, error) {
	r := bytes.NewReader(data)
	var scratch []byte
	var req Request
	kind, hdr, payLen, err := readFrameHeader(r, &scratch)
	if err != nil {
		return req, err
	}
	if err := decodeRequestHeader(kind, hdr, &req); err != nil {
		return req, err
	}
	if payLen > 0 {
		req.Data = make([]byte, payLen)
		if err := readPayloadInto(r, payLen, req.Data); err != nil {
			return req, err
		}
	}
	return req, nil
}

// FuzzFrameDecode feeds arbitrary bytes to the frame reader and both
// header decoders and requires an error or a value — never a panic, a
// hang, or an outsized allocation. The frame reader consumes from a
// finite in-memory stream, so termination is structural; what the fuzzer
// hunts for is panics and allocation bombs (a corrupt header claiming a
// huge collection must be rejected by the bounds checks, not malloc'd).
func FuzzFrameDecode(f *testing.F) {
	// Seed with a valid frame, a truncated frame, a length-bomb prefix, a
	// legacy gob-framed message, a wrong-version frame, and plain garbage.
	valid := encodeRequest(f, &Request{Kind: msgPing, ID: 42})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{frameMagic0, frameMagic1, frameVersion, kindPing, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	var legacy bytes.Buffer
	legacy.Write([]byte{0, 0, 0, 64})
	if err := gob.NewEncoder(&legacy).Encode(&Request{Kind: msgRead, Length: 64}); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Add([]byte{frameMagic0, frameMagic1, 0x01, kindPing, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("not a frame"))
	// Lease-protocol seeds: a well-formed acquire, the same frame cut off
	// mid-header (a runtime dying mid-send), and a fence push carrying a
	// stale max epoch from a zombie controller.
	lease := encodeRequest(f, &Request{
		Kind: msgLeaseAcquire, ID: 7, SlabID: 3, Runtime: 99,
		Length: int(LeaseWriter), Size: uint64(DefaultLeaseTTL),
	})
	f.Add(lease)
	f.Add(lease[:len(lease)-3])
	f.Add(encodeRequest(f, &Request{
		Kind: msgLeaseFence, Offset: 1 << 20, Size: 4096,
		Runtime: ^uint64(0), Epoch: ^uint64(0),
	}))
	var resp bytes.Buffer
	if _, err := writeResponseFrame(&resp, &Response{Entries: 3, Epoch: 9}); err != nil {
		f.Fatal(err)
	}
	f.Add(resp.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := decodeRequest(data); err == nil {
			// Fine: the fuzzer found a structurally valid request frame.
			_ = err
		}
		var rsp Response
		_, _ = readResponseFrame(bytes.NewReader(data), &rsp, nil)
		// The raw header decoders must hold up against arbitrary bytes too
		// (the serve loop feeds them anything that passes the prefix).
		var req Request
		_ = decodeRequestHeader(kindRead, data, &req)
		var rsp2 Response
		_ = decodeResponseHeader(data, &rsp2)
	})
}

// FuzzRequestRoundTrip checks the request codec is lossless: any Request
// built from the fuzzed field set must encode and decode to an identical
// value, including negative ints, empty-vs-nil slices, and randomized
// offset vectors.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint64(1), 0, uint64(4096), uint64(128), 64, uint64(0), "", []byte("payload"), uint8(0))
	f.Add(uint8(0), uint64(0), -1, uint64(0), uint64(0), 0, uint64(0), "", []byte(nil), uint8(0))
	f.Add(uint8(1), ^uint64(0), 1<<30, ^uint64(0), ^uint64(0), -1, ^uint64(0), "127.0.0.1:7070",
		bytes.Repeat([]byte{0xAB}, 300), uint8(8))

	f.Fuzz(func(t *testing.T, kindSel uint8, id uint64, nodeID int, size, offset uint64,
		length int, epoch uint64, addr string, data []byte, offsCount uint8) {
		in := Request{
			Kind: rpcKinds[int(kindSel)%len(rpcKinds)],
			ID:   id, NodeID: nodeID, Capacity: size ^ offset, Addr: addr,
			Size: size, Replicas: nodeID >> 1, Offset: offset, Length: length,
			SlabID: id ^ epoch, Epoch: epoch, Data: data,
			Runtime: id ^ size, // lease/fence holder identity must survive the trip
		}
		for i := 0; i < int(offsCount%17); i++ {
			in.Offsets = append(in.Offsets, offset+uint64(i)*7919)
		}
		out, err := decodeRequest(encodeRequest(t, &in))
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		// The payload travels separately; an empty one decodes to nil.
		if len(in.Data) == 0 {
			in.Data = nil
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mutated request:\n in: %+v\nout: %+v", in, out)
		}
	})
}

// FuzzResponseRoundTrip checks the response codec is lossless across
// randomized field sets, including slab tables and address maps built
// from the fuzzed scalars.
func FuzzResponseRoundTrip(f *testing.F) {
	f.Add("", 0, uint64(0), uint64(0), uint8(0), uint8(0), []byte(nil))
	f.Add("remote exploded", -3, ^uint64(0), uint64(42), uint8(0), uint8(0), []byte(nil))
	f.Add("", 7, uint64(5), uint64(1<<40), uint8(4), uint8(3), []byte("reply payload"))

	f.Fuzz(func(t *testing.T, errStr string, entries int, epoch, base uint64,
		slabCount, addrCount uint8, data []byte) {
		in := Response{Err: errStr, Entries: entries, Epoch: epoch}
		if errStr == "" {
			in.Data = data
		}
		for i := 0; i < int(slabCount%9); i++ {
			in.Slabs = append(in.Slabs, mkSlab(uint64(i), base, epoch, i))
		}
		for i := 0; i < int(addrCount%9); i++ {
			if in.Addrs == nil {
				in.Addrs = make(map[int]string)
			}
			in.Addrs[i-4] = strings.Repeat("a", i)
		}
		var buf bytes.Buffer
		if _, err := writeResponseFrame(&buf, &in, in.Data); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var out Response
		if _, err := readResponseFrame(&buf, &out, nil); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(in.Data) == 0 {
			in.Data = nil
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mutated response:\n in: %+v\nout: %+v", in, out)
		}
	})
}
