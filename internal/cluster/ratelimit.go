package cluster

import "time"

// byteBudget is a token-bucket rate limiter for repair traffic: the
// repair engine takes tokens per copied batch and sleeps out any deficit,
// so background re-replication never exceeds its configured bytes/sec
// share of the fabric and cannot starve fetch/evict (the Aceso-style
// "repair without hurting the data path" discipline).
//
// The clock and sleeper are injectable so unit tests run on a fake
// timeline.
type byteBudget struct {
	rate  float64 // tokens (bytes) per second
	burst float64 // bucket capacity

	tokens float64
	last   time.Time

	now   func() time.Time
	sleep func(time.Duration)
}

// newByteBudget returns a budget of rate bytes/sec with a one-interval
// burst. rate <= 0 means unlimited.
func newByteBudget(rate float64, burst float64) *byteBudget {
	b := &byteBudget{
		rate:  rate,
		burst: burst,
		now:   time.Now,
		sleep: time.Sleep,
	}
	if b.burst <= 0 {
		b.burst = rate / 10 // default: 100ms worth of traffic
	}
	b.tokens = b.burst
	return b
}

// take consumes n bytes of budget, sleeping until the bucket can cover
// the deficit. Not safe for concurrent use; the repair engine is a
// single goroutine.
func (b *byteBudget) take(n int) {
	if b.rate <= 0 || n <= 0 {
		return
	}
	t := b.now()
	if !b.last.IsZero() {
		b.tokens += t.Sub(b.last).Seconds() * b.rate
	}
	b.last = t
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.tokens -= float64(n)
	if b.tokens < 0 {
		// Sleep out the deficit; tokens refill on the next take.
		d := time.Duration(-b.tokens / b.rate * float64(time.Second))
		b.sleep(d)
	}
}
