package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"kona/internal/telemetry"
)

// Fault injection for the TCP transport (§4.5): a listener wrapper whose
// accepted connections randomly delay, drop, reset, or truncate I/O, with
// a seeded RNG so a failing run is reproducible. Wrapping the *server's*
// listener perturbs both directions of every RPC — a dropped server read
// loses the request, a dropped server write loses the response — which is
// exactly the split the retry/dedup machinery has to survive.

// FaultConfig describes the fault mix. Probabilities are per I/O
// operation (per accept for ResetProb) in [0, 1].
type FaultConfig struct {
	// Seed makes the fault sequence reproducible; 0 derives a seed from
	// the wall clock.
	Seed int64
	// DropProb closes the connection instead of performing the
	// operation, simulating a mid-stream connection loss.
	DropProb float64
	// DelayProb stalls the operation by a uniform duration in
	// [0, MaxDelay), simulating network jitter or a slow memory node.
	DelayProb float64
	MaxDelay  time.Duration
	// PartialWriteProb writes only a prefix of the buffer and then
	// closes the connection, simulating a reset mid-frame.
	PartialWriteProb float64
	// ResetProb closes a freshly accepted connection immediately,
	// simulating a peer that went away between SYN and first byte.
	ResetProb float64
	// Metrics, when set, receives per-kind injected-fault counters
	// (faultconn.drops, .delays, .partials, .resets, .accepts) so chaos
	// tests can check the client's observed retry counts against the
	// seeded fault plan instead of eyeballing logs.
	Metrics *telemetry.Registry
}

// FaultListener wraps a net.Listener, injecting the configured faults
// into every accepted connection. It also counts accepts and injected
// faults, which doubles as a connection-reuse probe for tests.
type FaultListener struct {
	inner net.Listener
	cfg   FaultConfig

	// Per-kind registry counters (nil handles when cfg.Metrics is nil).
	mDrops, mDelays, mPartials, mResets, mAccepts *telemetry.Counter

	mu       sync.Mutex
	rng      *rand.Rand
	accepted int
	faults   int
}

// NewFaultListener wraps inner with the given fault mix.
func NewFaultListener(inner net.Listener, cfg FaultConfig) *FaultListener {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	l := &FaultListener{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if reg := cfg.Metrics; reg != nil {
		l.mDrops = reg.Counter("faultconn.drops")
		l.mDelays = reg.Counter("faultconn.delays")
		l.mPartials = reg.Counter("faultconn.partials")
		l.mResets = reg.Counter("faultconn.resets")
		l.mAccepts = reg.Counter("faultconn.accepts")
	}
	return l
}

// Accept wraps the next connection in the fault injector.
func (l *FaultListener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mAccepts.Inc()
	l.mu.Lock()
	l.accepted++
	reset := l.roll(l.cfg.ResetProb)
	l.mu.Unlock()
	if reset {
		l.mResets.Inc()
		// Returned closed: the server's first read fails immediately,
		// which is how an instant RST presents.
		c.Close()
	}
	return &faultConn{Conn: c, l: l}, nil
}

// Close closes the underlying listener.
func (l *FaultListener) Close() error { return l.inner.Close() }

// Addr returns the underlying listener's address.
func (l *FaultListener) Addr() net.Addr { return l.inner.Addr() }

// Accepted returns how many connections have been accepted.
func (l *FaultListener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

// Faults returns how many faults have been injected.
func (l *FaultListener) Faults() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faults
}

// roll draws one biased coin; caller must hold l.mu.
func (l *FaultListener) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	hit := l.rng.Float64() < p
	if hit {
		l.faults++
	}
	return hit
}

// plan decides the faults for one I/O operation.
func (l *FaultListener) plan(isWrite bool) (drop, partial bool, delay time.Duration) {
	l.mu.Lock()
	if l.roll(l.cfg.DelayProb) && l.cfg.MaxDelay > 0 {
		delay = time.Duration(l.rng.Int63n(int64(l.cfg.MaxDelay)))
	}
	drop = l.roll(l.cfg.DropProb)
	if isWrite && !drop {
		partial = l.roll(l.cfg.PartialWriteProb)
	}
	l.mu.Unlock()
	if delay > 0 {
		l.mDelays.Inc()
	}
	if drop {
		l.mDrops.Inc()
	}
	if partial {
		l.mPartials.Inc()
	}
	return drop, partial, delay
}

// faultConn perturbs a single connection's reads and writes.
type faultConn struct {
	net.Conn
	l *FaultListener
}

func (c *faultConn) Read(b []byte) (int, error) {
	drop, _, delay := c.l.plan(false)
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		c.Conn.Close()
		return 0, fmt.Errorf("faultconn: injected read drop")
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	drop, partial, delay := c.l.plan(true)
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		c.Conn.Close()
		return 0, fmt.Errorf("faultconn: injected write drop")
	}
	if partial && len(b) > 1 {
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, fmt.Errorf("faultconn: injected partial write")
	}
	return c.Conn.Write(b)
}
