package cluster

import (
	"fmt"
	"sort"
	"sync"

	"kona/internal/mem"
	"kona/internal/slab"
)

// Controller is the centralized rack controller (§4.1): memory nodes
// register their offered capacity with it, and compute nodes request
// coarse slabs from it, off the application's critical path.
//
// Fault tolerance (DESIGN.md §10): the controller tracks every slab as a
// member of a placement group (one group per logical slab, one member per
// replica). When a node dies — detected by HealthSweep, a ship-failure
// report from a compute node's evictor, or a rejoin of the same id — the
// dead members are marked degraded but stay in their groups, so compute
// nodes keep buffering dirty lines for them (the retained-entry protocol)
// until the repair engine copies the slab onto a healthy node and commits
// an atomic placement flip. Node incarnations fence stale placements:
// every registration of an id bumps its incarnation, and a member whose
// Epoch no longer matches its node's incarnation is dead by definition.
type Controller struct {
	mu sync.Mutex

	nodes      map[int]*MemoryNode
	nextSlabID uint64
	nextVA     mem.Addr
	// rr rotates slab placement across nodes.
	rr  []int
	pos int

	// groups maps a slab/group id to its replica members. All members
	// share the id and Base; they differ in Node/RemoteOff/Epoch. A dead
	// member stays in its group (marked degraded) until a repair flips it
	// to a new node.
	groups map[uint64][]slab.Slab

	// incarn is the per-id registration count. It persists across Remove
	// so a rejoining node always gets a higher incarnation than any of
	// its dead predecessors.
	incarn map[int]uint64

	// degraded tracks group members that lost their node, keyed so a
	// group that loses two distinct replicas gets two entries.
	degraded map[degradedKey]DegradedSlab

	// epoch is the placement epoch: bumped on every register, remove and
	// repair flip. Compute nodes compare it against a cached value to
	// decide when to refresh placements.
	epoch uint64

	// prober decides whether a registered node is alive; injectable so
	// the TCP server can probe over the wire and tests can lie. The
	// default trusts the in-process failure flag.
	prober func(id int, n *MemoryNode) bool

	// load is the per-node load map (loadmap.go); policy selects how new
	// carves pick nodes ("" = PolicyRR).
	load   map[int]*nodeLoad
	policy string

	// leaseDir is the per-group ownership directory (lease.go, §14). Its
	// leaseMu is ordered OUTSIDE c.mu: lease operations take leaseMu and
	// may then take c.mu (membership snapshots, the in-process fencer);
	// nothing takes leaseMu while holding c.mu.
	leaseDir
}

type degradedKey struct {
	group uint64
	node  int
}

// DegradedSlab identifies one lost replica of one placement group: the
// repair engine's unit of work.
type DegradedSlab struct {
	// Group is the placement-group (slab) id.
	Group uint64
	// LostNode is the id of the node that held the lost member.
	LostNode int
	// LostEpoch is the incarnation the lost member was carved under; it
	// fences the entry against the node rejoining with a new incarnation.
	LostEpoch uint64
}

// VFMemBase is the fake-physical base address at which the controller
// hands out slab mappings: high enough to never collide with CMem
// allocations in the simulated process layout.
const VFMemBase mem.Addr = 1 << 40

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{
		nodes:    make(map[int]*MemoryNode),
		nextVA:   VFMemBase,
		groups:   make(map[uint64][]slab.Slab),
		incarn:   make(map[int]uint64),
		degraded: make(map[degradedKey]DegradedSlab),
		leaseDir: leaseDir{leases: make(map[uint64]*leaseState)},
	}
}

// SetProber installs the liveness check used to arbitrate rejoins and
// failure reports. The default is the in-process failure flag.
func (c *Controller) SetProber(p func(id int, n *MemoryNode) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prober = p
}

func (c *Controller) proberLocked() func(id int, n *MemoryNode) bool {
	if c.prober != nil {
		return c.prober
	}
	return func(_ int, n *MemoryNode) bool { return !n.Failed() }
}

// Register adds a memory node's offered memory to the pool. Registering
// an id that is already held by a live node is an error (double
// registration); if the incumbent is dead, it is expelled — degrading its
// slabs — and the newcomer is admitted under a higher incarnation
// (crash-rejoin, §10).
func (c *Controller) Register(n *MemoryNode) error {
	id := n.ID()
	for {
		c.mu.Lock()
		old, dup := c.nodes[id]
		if !dup {
			c.registerLocked(n)
			c.mu.Unlock()
			return nil
		}
		prober := c.proberLocked()
		c.mu.Unlock()
		// Probe outside the lock: the TCP prober performs a network ping.
		if prober(id, old) {
			return fmt.Errorf("controller: node %d already registered", id)
		}
		c.mu.Lock()
		if c.nodes[id] == old {
			c.removeLocked(id)
		}
		c.mu.Unlock()
		// Loop: re-check for a racing registration before admitting n.
	}
}

// registerLocked admits n under the next incarnation of its id.
func (c *Controller) registerLocked(n *MemoryNode) {
	id := n.ID()
	c.incarn[id]++
	n.SetIncarnation(c.incarn[id])
	c.nodes[id] = n
	c.rr = append(c.rr, id)
	c.epoch++
}

// Remove expels a node (e.g. after failure detection). Its slab-group
// members become degraded but stay in their groups so the replication
// layer keeps retaining dirty lines for them until repair flips them.
func (c *Controller) Remove(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[id]; !ok {
		return
	}
	c.removeLocked(id)
}

// removeLocked deletes the node and atomically marks every group member
// it hosted (at its current incarnation) degraded. Doing both under one
// critical section closes the window where a repair could be planned
// against placement state that no longer includes the dead node — the
// "repaired onto itself" bug.
func (c *Controller) removeLocked(id int) {
	inc := c.incarn[id]
	delete(c.nodes, id)
	for i, nid := range c.rr {
		if nid == id {
			c.rr = append(c.rr[:i], c.rr[i+1:]...)
			break
		}
	}
	if len(c.rr) > 0 {
		c.pos %= len(c.rr)
	}
	c.epoch++
	for gid, members := range c.groups {
		for _, m := range members {
			if m.Node != id || m.Epoch != inc {
				continue
			}
			k := degradedKey{group: gid, node: id}
			if _, seen := c.degraded[k]; !seen {
				c.degraded[k] = DegradedSlab{Group: gid, LostNode: id, LostEpoch: m.Epoch}
			}
		}
	}
}

// Node returns a registered node by id.
func (c *Controller) Node(id int) (*MemoryNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes returns the registered node count.
func (c *Controller) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Incarnation returns the current incarnation of id (0 if never
// registered).
func (c *Controller) Incarnation(id int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incarn[id]
}

// PlacementEpoch returns the placement epoch: it advances on every
// register, remove and repair flip, so compute nodes can cheaply detect
// that cached placements may be stale.
func (c *Controller) PlacementEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Placements returns the current members of a placement group, replica
// order preserved (index 0 is the primary). Dead members are returned
// too, deliberately: a member whose node was expelled stays in its group
// (degraded) until repair flips it, and compute runtimes need the dead
// descriptor to keep its (node, epoch) link key stable for the
// retained-entry protocol — they substitute a deadLink stand-in locally.
// Callers that need liveness resolved on the controller side use
// PlacementsHealth.
func (c *Controller) Placements(group uint64) ([]slab.Slab, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	members, ok := c.groups[group]
	if !ok {
		return nil, false
	}
	out := make([]slab.Slab, len(members))
	copy(out, members)
	return out, true
}

// PlacementsHealth is Placements plus a per-member liveness flag,
// computed under the same critical section the membership copy is taken
// in — so a read racing removeLocked sees either the pre-removal state
// (member live) or the post-removal state (member flagged dead), never a
// torn mix. A member is live iff its node is currently registered at the
// incarnation the member was carved under (Epoch 0 disables the
// incarnation check, matching ReleaseSlab's convention).
func (c *Controller) PlacementsHealth(group uint64) ([]slab.Slab, []bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	members, ok := c.groups[group]
	if !ok {
		return nil, nil, false
	}
	out := make([]slab.Slab, len(members))
	copy(out, members)
	live := make([]bool, len(members))
	for i, m := range members {
		_, reg := c.nodes[m.Node]
		live[i] = reg && (m.Epoch == 0 || c.incarn[m.Node] == m.Epoch)
	}
	return out, live, true
}

// DegradedSlabs returns the outstanding repair work, deterministically
// ordered.
func (c *Controller) DegradedSlabs() []DegradedSlab {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DegradedSlab, 0, len(c.degraded))
	for _, d := range c.degraded {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].LostNode < out[j].LostNode
	})
	return out
}

// DegradedCount returns the number of lost replicas awaiting repair.
func (c *Controller) DegradedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.degraded)
}

// ReleaseSlab returns a slab's memory to its node for reuse and prunes
// the member from its placement group. Releasing a member whose node is
// gone succeeds — the memory died with the node — and also retires any
// degraded entry for it.
func (c *Controller) ReleaseSlab(s slab.Slab) error {
	c.mu.Lock()
	grouped := false
	emptied := false
	if members, ok := c.groups[s.ID]; ok {
		kept := members[:0]
		for _, m := range members {
			if m.Node == s.Node && m.RemoteOff == s.RemoteOff {
				grouped = true
				delete(c.degraded, degradedKey{group: s.ID, node: m.Node})
				continue
			}
			kept = append(kept, m)
		}
		if len(kept) == 0 {
			delete(c.groups, s.ID)
			emptied = true
		} else {
			c.groups[s.ID] = kept
		}
	}
	n, ok := c.nodes[s.Node]
	live := ok && (s.Epoch == 0 || c.incarn[s.Node] == s.Epoch)
	c.mu.Unlock()
	if emptied {
		// The group is gone; its lease history (and version counter) dies
		// with it. Taken outside c.mu — leaseMu is the outer lock.
		c.dropLeaseState(s.ID)
	}
	if !ok {
		if grouped || s.Epoch > 0 {
			// The hosting node is gone; its memory went with it.
			return nil
		}
		return fmt.Errorf("controller: slab %d's node %d not registered", s.ID, s.Node)
	}
	if live {
		n.ReleaseSlab(s.RemoteOff, s.Size)
	}
	return nil
}

// HealthSweep probes every registered node and removes the dead ones,
// returning their ids — the controller-side half of §4.5's failure
// handling. Removal re-verifies node identity under the lock, so a node
// that was replaced (rejoined) between probe and removal is untouched.
func (c *Controller) HealthSweep() []int {
	c.mu.Lock()
	type probeTarget struct {
		id int
		n  *MemoryNode
	}
	snapshot := make([]probeTarget, 0, len(c.nodes))
	for id, n := range c.nodes {
		snapshot = append(snapshot, probeTarget{id, n})
	}
	prober := c.proberLocked()
	c.mu.Unlock()

	var dead []int
	for _, t := range snapshot {
		if prober(t.id, t.n) {
			continue
		}
		c.mu.Lock()
		if c.nodes[t.id] == t.n {
			c.removeLocked(t.id)
			dead = append(dead, t.id)
		}
		c.mu.Unlock()
	}
	sort.Ints(dead)
	return dead
}

// ReportNodeFailure handles a compute node's ship-failure report: the
// node is probed and, if confirmed dead, removed (degrading its slabs).
// Returns whether the node was removed. A false report against a live
// node is a no-op.
func (c *Controller) ReportNodeFailure(id int) bool {
	c.mu.Lock()
	n, ok := c.nodes[id]
	prober := c.proberLocked()
	c.mu.Unlock()
	if !ok {
		return false
	}
	if prober(id, n) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[id] != n {
		return false
	}
	c.removeLocked(id)
	return true
}

// CarveRepairTarget picks a healthy node for the lost member of d and
// carves an extent there, returning the replacement member. The lost
// node itself is excluded unless it has rejoined under a higher
// incarnation (a dead node must never be its own repair target), as are
// all nodes already holding a member of the group.
func (c *Controller) CarveRepairTarget(d DegradedSlab) (slab.Slab, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.degraded[degradedKey{group: d.Group, node: d.LostNode}]; !ok {
		return slab.Slab{}, fmt.Errorf("controller: group %d/node %d not degraded", d.Group, d.LostNode)
	}
	members := c.groups[d.Group]
	var lost *slab.Slab
	occupied := make(map[int]bool, len(members))
	for i := range members {
		m := &members[i]
		if m.Node == d.LostNode && m.Epoch == d.LostEpoch {
			lost = m
			continue
		}
		occupied[m.Node] = true
	}
	if lost == nil {
		return slab.Slab{}, fmt.Errorf("controller: group %d lost member on node %d vanished", d.Group, d.LostNode)
	}
	for tries := 0; tries < len(c.rr); tries++ {
		id := c.rr[c.pos]
		c.pos = (c.pos + 1) % len(c.rr)
		if occupied[id] {
			continue
		}
		if id == d.LostNode && c.incarn[id] == d.LostEpoch {
			// Same incarnation as the lost member: this is the dead node
			// lingering in placement state — never repair onto it.
			continue
		}
		n := c.nodes[id]
		if n.Failed() {
			continue
		}
		off, err := n.CarveSlab(lost.Size)
		if err != nil {
			continue
		}
		return slab.Slab{
			ID:        d.Group,
			Base:      lost.Base,
			Size:      lost.Size,
			Node:      id,
			RemoteKey: n.PoolKey(),
			RemoteOff: off,
			Epoch:     c.incarn[id],
		}, nil
	}
	return slab.Slab{}, fmt.Errorf("controller: no healthy target for group %d (lost node %d)", d.Group, d.LostNode)
}

// CommitRepair atomically flips the degraded member of d to the freshly
// copied replacement: the lost member leaves the group, the new member
// takes its replica slot, the degraded entry retires and the placement
// epoch advances. It fails — and the caller must AbandonRepair — if the
// degraded entry was already resolved or the target node changed
// incarnation or died during the copy.
func (c *Controller) CommitRepair(d DegradedSlab, repaired slab.Slab) error {
	err := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		k := degradedKey{group: d.Group, node: d.LostNode}
		if _, ok := c.degraded[k]; !ok {
			return fmt.Errorf("controller: group %d/node %d no longer degraded", d.Group, d.LostNode)
		}
		n, ok := c.nodes[repaired.Node]
		if !ok || c.incarn[repaired.Node] != repaired.Epoch {
			return fmt.Errorf("controller: repair target node %d (epoch %d) gone", repaired.Node, repaired.Epoch)
		}
		if n.Failed() {
			return fmt.Errorf("controller: repair target node %d failed during copy", repaired.Node)
		}
		members := c.groups[d.Group]
		for i := range members {
			if members[i].Node == d.LostNode && members[i].Epoch == d.LostEpoch {
				members[i] = repaired
				delete(c.degraded, k)
				c.epoch++
				return nil
			}
		}
		return fmt.Errorf("controller: group %d lost member on node %d vanished", d.Group, d.LostNode)
	}()
	if err != nil {
		return err
	}
	// The lease table survives the flip: if the group has a live writer,
	// the fresh extent must fence the same stale writers the lost one did.
	// Outside c.mu — leaseMu is the outer lock. The window between the
	// flip and the refence is safe: the repair copy targeted a fresh
	// extent nobody else had placements for, and a zombie writer cannot
	// have cached the new placement before this epoch bump propagates.
	c.refenceMember(repaired)
	return nil
}

// AbandonRepair returns a carved-but-uncommitted repair extent to its
// node, if that node is still around at the same incarnation.
func (c *Controller) AbandonRepair(repaired slab.Slab) {
	c.mu.Lock()
	n, ok := c.nodes[repaired.Node]
	live := ok && c.incarn[repaired.Node] == repaired.Epoch
	c.mu.Unlock()
	if live {
		n.ReleaseSlab(repaired.RemoteOff, repaired.Size)
	}
}

// repairSource picks a live group member to copy the slab's pages from:
// registered at its carved incarnation, not the lost member, not failed.
func (c *Controller) repairSource(d DegradedSlab) (slab.Slab, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.groups[d.Group] {
		if m.Node == d.LostNode && m.Epoch == d.LostEpoch {
			continue
		}
		n, ok := c.nodes[m.Node]
		if !ok || c.incarn[m.Node] != m.Epoch || n.Failed() {
			continue
		}
		return m, true
	}
	return slab.Slab{}, false
}

// AllocSlab places a slab of the given size on a memory node (round-robin
// over nodes with room, skipping failed ones) and returns the slab
// descriptor. The returned slab's Base is a fresh VFMem-space address.
func (c *Controller) AllocSlab(size uint64) (slab.Slab, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size == 0 {
		return slab.Slab{}, fmt.Errorf("controller: zero-size slab")
	}
	if len(c.rr) == 0 {
		return slab.Slab{}, fmt.Errorf("controller: no memory nodes registered")
	}
	// PolicyLoad walks nodes coldest-first; the default rr rotation is
	// untouched so fixed-seed runs stay byte-identical.
	var order []int
	if c.policy == PolicyLoad {
		order = c.loadOrderLocked()
	}
	for tries := 0; tries < len(c.rr); tries++ {
		var id int
		if order != nil {
			id = order[tries]
		} else {
			id = c.rr[c.pos]
			c.pos = (c.pos + 1) % len(c.rr)
		}
		n := c.nodes[id]
		off, err := n.CarveSlab(size)
		if err != nil {
			continue // node full or failed; try the next
		}
		c.nextSlabID++
		s := slab.Slab{
			ID:        c.nextSlabID,
			Base:      c.nextVA,
			Size:      size,
			Node:      id,
			RemoteKey: n.PoolKey(),
			RemoteOff: off,
			Epoch:     c.incarn[id],
		}
		c.nextVA += mem.Addr(size)
		c.groups[s.ID] = []slab.Slab{s}
		return s, nil
	}
	return slab.Slab{}, fmt.Errorf("controller: no node can host %d bytes", size)
}

// AllocReplicatedSlab places the same logical slab on `replicas` distinct
// nodes and returns one descriptor per replica. All members share one
// group id and one Base (the compute node addresses them identically);
// they form one placement group for degraded-state tracking. Used by the
// §4.5 replication path.
func (c *Controller) AllocReplicatedSlab(size uint64, replicas int) ([]slab.Slab, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replicas <= 0 {
		return nil, fmt.Errorf("controller: replicas must be positive")
	}
	if len(c.rr) < replicas {
		return nil, fmt.Errorf("controller: %d replicas requested, %d nodes registered", replicas, len(c.rr))
	}
	var out []slab.Slab
	base := c.nextVA
	gid := c.nextSlabID + 1
	placed := map[int]bool{}
	var order []int
	if c.policy == PolicyLoad {
		order = c.loadOrderLocked()
	}
	for tries := 0; tries < len(c.rr) && len(out) < replicas; tries++ {
		var id int
		if order != nil {
			id = order[tries]
		} else {
			id = c.rr[c.pos]
			c.pos = (c.pos + 1) % len(c.rr)
		}
		if placed[id] {
			continue
		}
		n := c.nodes[id]
		off, err := n.CarveSlab(size)
		if err != nil {
			continue
		}
		out = append(out, slab.Slab{
			ID:        gid,
			Base:      base,
			Size:      size,
			Node:      id,
			RemoteKey: n.PoolKey(),
			RemoteOff: off,
			Epoch:     c.incarn[id],
		})
		placed[id] = true
	}
	if len(out) < replicas {
		for _, s := range out {
			c.nodes[s.Node].ReleaseSlab(s.RemoteOff, s.Size)
		}
		return nil, fmt.Errorf("controller: only %d of %d replicas placeable", len(out), replicas)
	}
	c.nextSlabID = gid
	c.nextVA += mem.Addr(size)
	members := make([]slab.Slab, len(out))
	copy(members, out)
	c.groups[gid] = members
	return out, nil
}
