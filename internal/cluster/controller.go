package cluster

import (
	"fmt"
	"sync"

	"kona/internal/mem"
	"kona/internal/slab"
)

// Controller is the centralized rack controller (§4.1): memory nodes
// register their offered capacity with it, and compute nodes request
// coarse slabs from it, off the application's critical path.
type Controller struct {
	mu sync.Mutex

	nodes      map[int]*MemoryNode
	nextSlabID uint64
	nextVA     mem.Addr
	// rr rotates slab placement across nodes.
	rr  []int
	pos int
}

// VFMemBase is the fake-physical base address at which the controller
// hands out slab mappings: high enough to never collide with CMem
// allocations in the simulated process layout.
const VFMemBase mem.Addr = 1 << 40

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{nodes: make(map[int]*MemoryNode), nextVA: VFMemBase}
}

// Register adds a memory node's offered memory to the pool.
func (c *Controller) Register(n *MemoryNode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.nodes[n.ID()]; dup {
		return fmt.Errorf("controller: node %d already registered", n.ID())
	}
	c.nodes[n.ID()] = n
	c.rr = append(c.rr, n.ID())
	return nil
}

// Remove expels a node (e.g. after failure detection). Existing slabs on
// it become unreachable; the runtime's replication layer handles that.
func (c *Controller) Remove(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.nodes, id)
	for i, nid := range c.rr {
		if nid == id {
			c.rr = append(c.rr[:i], c.rr[i+1:]...)
			break
		}
	}
	if len(c.rr) > 0 {
		c.pos %= len(c.rr)
	}
}

// Node returns a registered node by id.
func (c *Controller) Node(id int) (*MemoryNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes returns the registered node count.
func (c *Controller) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// ReleaseSlab returns a slab's memory to its node for reuse.
func (c *Controller) ReleaseSlab(s slab.Slab) error {
	c.mu.Lock()
	n, ok := c.nodes[s.Node]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controller: slab %d's node %d not registered", s.ID, s.Node)
	}
	n.ReleaseSlab(s.RemoteOff, s.Size)
	return nil
}

// HealthSweep checks every registered node and removes the failed ones,
// returning their ids — the controller-side half of §4.5's failure
// handling (the runtime's replication handles the data).
func (c *Controller) HealthSweep() []int {
	c.mu.Lock()
	var dead []int
	for id, n := range c.nodes {
		if n.Failed() {
			dead = append(dead, id)
		}
	}
	c.mu.Unlock()
	for _, id := range dead {
		c.Remove(id)
	}
	return dead
}

// AllocSlab places a slab of the given size on a memory node (round-robin
// over nodes with room, skipping failed ones) and returns the slab
// descriptor. The returned slab's Base is a fresh VFMem-space address.
func (c *Controller) AllocSlab(size uint64) (slab.Slab, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size == 0 {
		return slab.Slab{}, fmt.Errorf("controller: zero-size slab")
	}
	if len(c.rr) == 0 {
		return slab.Slab{}, fmt.Errorf("controller: no memory nodes registered")
	}
	for tries := 0; tries < len(c.rr); tries++ {
		id := c.rr[c.pos]
		c.pos = (c.pos + 1) % len(c.rr)
		n := c.nodes[id]
		off, err := n.CarveSlab(size)
		if err != nil {
			continue // node full or failed; try the next
		}
		c.nextSlabID++
		s := slab.Slab{
			ID:        c.nextSlabID,
			Base:      c.nextVA,
			Size:      size,
			Node:      id,
			RemoteKey: n.PoolKey(),
			RemoteOff: off,
		}
		c.nextVA += mem.Addr(size)
		return s, nil
	}
	return slab.Slab{}, fmt.Errorf("controller: no node can host %d bytes", size)
}

// AllocReplicatedSlab places the same logical slab on `replicas` distinct
// nodes and returns one descriptor per replica; all share the same Base
// (the compute node addresses them identically). Used by the §4.5
// replication path.
func (c *Controller) AllocReplicatedSlab(size uint64, replicas int) ([]slab.Slab, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if replicas <= 0 {
		return nil, fmt.Errorf("controller: replicas must be positive")
	}
	if len(c.rr) < replicas {
		return nil, fmt.Errorf("controller: %d replicas requested, %d nodes registered", replicas, len(c.rr))
	}
	var out []slab.Slab
	base := c.nextVA
	placed := map[int]bool{}
	for tries := 0; tries < len(c.rr) && len(out) < replicas; tries++ {
		id := c.rr[c.pos]
		c.pos = (c.pos + 1) % len(c.rr)
		if placed[id] {
			continue
		}
		n := c.nodes[id]
		off, err := n.CarveSlab(size)
		if err != nil {
			continue
		}
		c.nextSlabID++
		out = append(out, slab.Slab{
			ID:        c.nextSlabID,
			Base:      base,
			Size:      size,
			Node:      id,
			RemoteKey: n.PoolKey(),
			RemoteOff: off,
		})
		placed[id] = true
	}
	if len(out) < replicas {
		return nil, fmt.Errorf("controller: only %d of %d replicas placeable", len(out), replicas)
	}
	c.nextVA += mem.Addr(size)
	return out, nil
}
