package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kona/internal/telemetry"
)

// Transport is the wire policy for cluster clients: how long to wait, how
// hard to retry, and how many persistent connections to keep per peer.
// The zero value means "use defaults"; DefaultTransport returns the
// defaults explicitly.
type Transport struct {
	// DialTimeout bounds connection establishment. Default 2s.
	DialTimeout time.Duration
	// RequestTimeout is the per-attempt deadline covering the request
	// write and the response read. Default 5s.
	RequestTimeout time.Duration
	// MaxRetries is the number of extra attempts for idempotent requests
	// after the first fails with a transport error. Application-level
	// errors are never retried. 0 means the default (3); negative
	// disables retries entirely.
	MaxRetries int
	// BackoffBase is the first retry's backoff ceiling; each further
	// retry doubles it up to BackoffMax, and the actual sleep is drawn
	// uniformly from [0, ceiling) ("full jitter"). Defaults 2ms / 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// PoolSize is the maximum number of idle persistent connections kept
	// per peer address. Default 4.
	PoolSize int
	// Seed seeds the backoff jitter; 0 derives one from the wall clock.
	Seed int64
	// Metrics receives the transport's runtime telemetry (per-RPC latency
	// histograms, retry/redial/dial counters, per-kind wire-volume
	// counters, per-peer in-flight gauges). nil — the default — disables
	// instrumentation: the pool keeps nil handles and every record site
	// is a single pointer check (see BenchmarkTelemetryOverheadTCPRead).
	Metrics *telemetry.Registry
}

// DefaultTransport returns the default wire policy.
func DefaultTransport() Transport { return Transport{}.withDefaults() }

func (t Transport) withDefaults() Transport {
	if t.DialTimeout == 0 {
		t.DialTimeout = 2 * time.Second
	}
	if t.RequestTimeout == 0 {
		t.RequestTimeout = 5 * time.Second
	}
	switch {
	case t.MaxRetries == 0:
		t.MaxRetries = 3
	case t.MaxRetries < 0:
		t.MaxRetries = 0
	}
	if t.BackoffBase == 0 {
		t.BackoffBase = 2 * time.Millisecond
	}
	if t.BackoffMax == 0 {
		t.BackoffMax = 250 * time.Millisecond
	}
	if t.PoolSize == 0 {
		t.PoolSize = 4
	}
	return t
}

// reqID hands out unique request identifiers; the controller uses them to
// deduplicate retried allocations (at-most-once semantics). Seeded from
// the wall clock so independent client processes do not collide.
var reqID atomic.Uint64

func init() { reqID.Store(uint64(time.Now().UnixNano())) }

func nextReqID() uint64 { return reqID.Add(1) }

// retryable reports whether a request may be re-sent after a transport
// error without changing its effect: Read/ReadPages/Ping/NodeAddr are
// stateless, Write is a pure overwrite of the same bytes, and AllocSlab
// carries a request ID the server deduplicates on. RegisterNode,
// ReleaseSlab and WriteLog are not safe to replay.
// Of the capacity-management RPCs, everything but CaptureDrain is safe
// to replay (load reports are absorbed idempotently by the EWMA,
// seal/unseal and capture start/stop are level-triggered); a drain
// CLEARS the dirty set it returns, so a replay after a lost response
// would silently drop delta pages.
func retryable(kind string) bool {
	switch kind {
	case msgRead, msgReadPages, msgPing, msgNodeAddr, msgWrite, msgAllocSlab,
		msgSlabPlacements, msgReportFailure, msgReportLoad,
		msgCaptureStart, msgCaptureStop, msgSealExtent, msgUnsealExtent,
		msgLeaseAcquire, msgLeaseRenew, msgLeaseRelease,
		msgLeaseInvalidate, msgLeaseFence:
		// Lease RPCs replay safely: acquire/renew re-grant to the same
		// holder, release of a non-held lease is a no-op, invalidate
		// (publish) is keyed by holder so a replay cannot double-bump past
		// another writer, and fence is level-triggered.
		return true
	}
	return false
}

// rpcKinds is the closed set of wire messages; poolMetrics pre-resolves
// one latency histogram and one tx/rx byte counter per kind so the
// request path never takes the registry's map lock.
var rpcKinds = []string{
	msgRegisterNode, msgAllocSlab, msgNodeAddr, msgRead, msgReadPages,
	msgWrite, msgWriteLog, msgReleaseSlab, msgPing,
	msgSlabPlacements, msgReportFailure, msgReportLoad,
	msgCaptureStart, msgCaptureDrain, msgCaptureStop,
	msgSealExtent, msgUnsealExtent,
	msgLeaseAcquire, msgLeaseRenew, msgLeaseRelease,
	msgLeaseInvalidate, msgLeaseFence,
}

// poolMetrics is one pool's pre-resolved telemetry handles. A nil
// *poolMetrics is the disabled state; sites check it once per round trip.
type poolMetrics struct {
	latency map[string]*telemetry.Histogram // per-kind RPC latency, µs
	txBytes map[string]*telemetry.Counter   // per-kind request wire volume
	rxBytes map[string]*telemetry.Counter   // per-kind response wire volume
	// payloadCopies counts reply payload bytes landed in an allocated
	// staging buffer instead of the caller's own memory — the legacy
	// Read/ReadPages paths. The *Into scatter receives keep it at 0.
	payloadCopies *telemetry.Counter
	retries       *telemetry.Counter // backed-off re-sends
	redials       *telemetry.Counter // stale pooled conn replaced inline
	dials         *telemetry.Counter // fresh TCP connections
	failures      *telemetry.Counter // round trips exhausted/not retryable
	inflight      *telemetry.Gauge   // requests currently outstanding
	trace         *telemetry.Trace
}

func newPoolMetrics(reg *telemetry.Registry, addr string) *poolMetrics {
	m := &poolMetrics{
		latency:       make(map[string]*telemetry.Histogram, len(rpcKinds)),
		txBytes:       make(map[string]*telemetry.Counter, len(rpcKinds)),
		rxBytes:       make(map[string]*telemetry.Counter, len(rpcKinds)),
		payloadCopies: reg.Counter("cluster.rpc.payload_copies"),
		retries:       reg.Counter("cluster.rpc.retries"),
		redials:       reg.Counter("cluster.rpc.redials"),
		dials:         reg.Counter("cluster.rpc.dials"),
		failures:      reg.Counter("cluster.rpc.failures"),
		inflight:      reg.Gauge("cluster.inflight." + addr),
		trace:         reg.Trace(),
	}
	// 1µs..32ms exponential latency buckets: localhost RPCs land in the
	// low hundreds of µs, injected delays and real networks in the ms.
	bounds := telemetry.ExpBounds(1, 2, 16)
	for _, kind := range rpcKinds {
		m.latency[kind] = reg.Histogram("cluster.rpc."+kind+".latency_us", bounds)
		m.txBytes[kind] = reg.Counter("cluster.rpc.tx_bytes." + kind)
		m.rxBytes[kind] = reg.Counter("cluster.rpc.rx_bytes." + kind)
	}
	return m
}

// pool is a persistent-connection pool to one peer address. All methods
// are safe for concurrent use.
type pool struct {
	addr string
	tr   Transport
	m    *poolMetrics

	mu     sync.Mutex
	idle   []net.Conn
	rng    *rand.Rand
	closed bool
}

func newPool(addr string, tr Transport) *pool {
	tr = tr.withDefaults()
	seed := tr.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p := &pool{addr: addr, tr: tr, rng: rand.New(rand.NewSource(seed))}
	if tr.Metrics != nil {
		p.m = newPoolMetrics(tr.Metrics, addr)
	}
	return p
}

// get pops an idle connection or dials a fresh one. pooled reports which.
func (p *pool) get() (c net.Conn, pooled bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("cluster: client closed")
	}
	if n := len(p.idle); n > 0 {
		c = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, true, nil
	}
	p.mu.Unlock()
	c, err = p.dial()
	return c, false, err
}

// dial opens a fresh connection, bypassing the idle pool.
func (p *pool) dial() (net.Conn, error) {
	c, err := net.DialTimeout("tcp", p.addr, p.tr.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", p.addr, err)
	}
	if p.m != nil {
		p.m.dials.Inc()
	}
	return c, nil
}

// put returns a healthy connection to the pool (or closes it when full).
func (p *pool) put(c net.Conn) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.tr.PoolSize {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

// Close drops every idle connection and fails future round trips.
func (p *pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	return nil
}

// backoff returns the sleep before retry attempt n (0-based): full jitter
// over an exponentially growing ceiling.
func (p *pool) backoff(n int) time.Duration {
	ceil := p.tr.BackoffBase << uint(n)
	if ceil > p.tr.BackoffMax || ceil <= 0 {
		ceil = p.tr.BackoffMax
	}
	p.mu.Lock()
	d := time.Duration(p.rng.Int63n(int64(ceil)))
	p.mu.Unlock()
	return d
}

// exchange performs one framed request/response on conn under the
// per-attempt deadline. send is the request's payload as writev iovecs
// shipped straight from their owning buffers; recv, when non-nil,
// receives the reply payload scattered directly into the caller's
// slices. sent reports whether the request hit the wire — if false, the
// peer cannot have processed it. tx and rx report wire volume.
func (p *pool) exchange(conn net.Conn, req *Request, send, recv [][]byte) (resp *Response, tx, rx int, sent bool, err error) {
	_ = conn.SetDeadline(time.Now().Add(p.tr.RequestTimeout))
	tx, err = writeRequestFrame(conn, req, send...)
	if err != nil {
		return nil, tx, 0, false, err
	}
	var r Response
	rx, err = readResponseFrame(conn, &r, recv)
	if err != nil {
		return nil, tx, rx, true, err
	}
	_ = conn.SetDeadline(time.Time{})
	return &r, tx, rx, true, nil
}

// once performs a single logical attempt. A write failure on a reused
// idle connection means the peer closed it while pooled and the request
// was never processed, so one immediate redial is safe even for
// non-idempotent requests.
func (p *pool) once(req *Request, send, recv [][]byte) (resp *Response, tx, rx int, err error) {
	conn, pooled, err := p.get()
	if err != nil {
		return nil, 0, 0, err
	}
	resp, tx, rx, sent, err := p.exchange(conn, req, send, recv)
	if err != nil {
		conn.Close()
		if !pooled || sent {
			return nil, tx, rx, err
		}
		if p.m != nil {
			p.m.redials.Inc()
		}
		if conn, err = p.dial(); err != nil {
			return nil, 0, 0, err
		}
		if resp, tx, rx, _, err = p.exchange(conn, req, send, recv); err != nil {
			conn.Close()
			return nil, tx, rx, err
		}
	}
	p.put(conn)
	return resp, tx, rx, nil
}

// roundTrip sends req and awaits its response over a pooled persistent
// connection. req.Data, if set, travels as the (single-segment) payload;
// the reply payload, if any, lands in an allocated resp.Data.
func (p *pool) roundTrip(req *Request) (*Response, error) {
	if req.Data != nil {
		return p.roundTripIO(req, [][]byte{req.Data}, nil)
	}
	return p.roundTripIO(req, nil, nil)
}

// roundTripIO is the scatter-gather round trip: send's segments are
// writev'd as the request payload without being copied or concatenated,
// and — when recv is non-nil — the reply payload is read directly into
// recv's slices (which must sum to the expected length). Idempotent
// requests are retried with exponential backoff and jitter; a retried
// receive simply overwrites recv. Application-level errors
// (Response.Err) are returned verbatim and never retried.
func (p *pool) roundTripIO(req *Request, send, recv [][]byte) (*Response, error) {
	if req.ID == 0 {
		req.ID = nextReqID()
	}
	var start time.Time
	if p.m != nil {
		start = time.Now()
		p.m.inflight.Inc()
		defer p.m.inflight.Dec()
	}
	attempts := 1
	if retryable(req.Kind) {
		attempts += p.tr.MaxRetries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if p.m != nil {
				p.m.retries.Inc()
				p.m.trace.Emit("rpc.retry",
					fmt.Sprintf("kind=%s peer=%s attempt=%d err=%v", req.Kind, p.addr, i+1, lastErr))
			}
			time.Sleep(p.backoff(i - 1))
		}
		resp, tx, rx, err := p.once(req, send, recv)
		if err == nil {
			if p.m != nil {
				p.m.latency[req.Kind].Observe(time.Since(start).Microseconds())
				p.m.txBytes[req.Kind].Add(uint64(tx))
				p.m.rxBytes[req.Kind].Add(uint64(rx))
				if recv == nil && len(resp.Data) > 0 {
					p.m.payloadCopies.Add(uint64(len(resp.Data)))
				}
			}
			if e := resp.errOf(); e != nil {
				return nil, e
			}
			return resp, nil
		}
		lastErr = err
	}
	if p.m != nil {
		p.m.failures.Inc()
		p.m.trace.Emit("rpc.failed",
			fmt.Sprintf("kind=%s peer=%s attempts=%d err=%v", req.Kind, p.addr, attempts, lastErr))
	}
	return nil, fmt.Errorf("cluster: %s to %s failed after %d attempts: %w",
		req.Kind, p.addr, attempts, lastErr)
}
