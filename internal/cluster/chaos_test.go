package cluster

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// chaosTransport is a retry-heavy wire policy for fault-injection tests:
// tight backoff so tests stay fast, a deep retry budget so seeded fault
// storms cannot exhaust it.
func chaosTransport(seed int64) Transport {
	return Transport{
		DialTimeout:    time.Second,
		RequestTimeout: 2 * time.Second,
		MaxRetries:     12,
		BackoffBase:    500 * time.Microsecond,
		BackoffMax:     10 * time.Millisecond,
		PoolSize:       4,
		Seed:           seed,
	}
}

// registerWithRetry registers a node through a possibly faulty controller
// listener. RegisterNode is not transport-retried (a replay reports
// "already registered"), so the test retries at the application level and
// treats the duplicate error as success.
func registerWithRetry(t *testing.T, cc *ControllerClient, id int, capacity uint64, addr string) {
	t.Helper()
	var err error
	for i := 0; i < 20; i++ {
		err = cc.RegisterNode(id, capacity, addr)
		if err == nil || strings.Contains(err.Error(), "already registered") {
			return
		}
	}
	t.Fatalf("register node %d: %v", id, err)
}

// TestServeKeepsConnectionOpen is the regression test for the old
// one-request-per-connection serve loop: a single raw connection must
// answer an arbitrary number of sequential framed requests.
func TestServeKeepsConnectionOpen(t *testing.T) {
	ctrl := NewController()
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	conn, err := net.Dial("tcp", cs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if _, err := writeRequestFrame(conn, &Request{Kind: msgPing, ID: nextReqID()}); err != nil {
			t.Fatalf("request %d: write: %v", i, err)
		}
		var resp Response
		if _, err := readResponseFrame(conn, &resp, nil); err != nil {
			t.Fatalf("request %d: read: %v (server closed the conn?)", i, err)
		}
		if resp.Err != "" {
			t.Fatalf("request %d: %s", i, resp.Err)
		}
	}
}

// TestPooledClientReusesConnections proves the client pool actually
// reuses sockets: many sequential RPCs must ride one accepted connection.
func TestPooledClientReusesConnections(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(inner, FaultConfig{}) // no faults: pure accept counter
	node := NewMemoryNode(0, 1<<20)
	ns := ServeMemoryNodeOn(node, fl)
	defer ns.Close()

	mc := DialMemoryNode(ns.Addr())
	defer mc.Close()
	for i := 0; i < 50; i++ {
		if err := mc.Write(uint64(i)*64, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := mc.Read(uint64(i)*64, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := fl.Accepted(); got != 1 {
		t.Fatalf("100 RPCs used %d connections, want 1 (pooling broken)", got)
	}
}

// TestRetryThroughFaults drives reads and writes through a memory node
// whose listener drops, delays and truncates I/O; the transport's
// retry/backoff must hide every fault and deliver correct data.
func TestRetryThroughFaults(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(inner, FaultConfig{
		Seed:             7,
		DropProb:         0.2,
		DelayProb:        0.2,
		MaxDelay:         2 * time.Millisecond,
		PartialWriteProb: 0.05,
		ResetProb:        0.05,
	})
	node := NewMemoryNode(0, 1<<20)
	ns := ServeMemoryNodeOn(node, fl)
	defer ns.Close()

	mc := DialMemoryNodeTransport(ns.Addr(), chaosTransport(1))
	defer mc.Close()
	for i := 0; i < 60; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 128)
		off := uint64(i) * 256
		if err := mc.Write(off, payload); err != nil {
			t.Fatalf("write %d through faults: %v", i, err)
		}
		got, err := mc.Read(off, len(payload))
		if err != nil {
			t.Fatalf("read %d through faults: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %d returned corrupt data", i)
		}
	}
	if fl.Faults() == 0 {
		t.Fatalf("fault listener injected nothing; test proves nothing")
	}
}

// TestAllocSlabDedup sends the same identified AllocSlab request twice —
// the wire-level picture of a retry after a lost response — and requires
// the controller to answer both with the same slab and carve only once.
func TestAllocSlabDedup(t *testing.T) {
	ctrl := NewController()
	if err := ctrl.Register(NewMemoryNode(0, 8<<20)); err != nil {
		t.Fatal(err)
	}
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	req := &Request{Kind: msgAllocSlab, Size: 1 << 20, ID: nextReqID()}
	first, err := roundTrip(cs.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := roundTrip(cs.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Slabs) != 1 || len(second.Slabs) != 1 {
		t.Fatalf("slab counts: %d, %d", len(first.Slabs), len(second.Slabs))
	}
	if first.Slabs[0].ID != second.Slabs[0].ID || first.Slabs[0].RemoteOff != second.Slabs[0].RemoteOff {
		t.Fatalf("replayed alloc returned a different slab: %+v vs %+v", first.Slabs[0], second.Slabs[0])
	}
	node, _ := ctrl.Node(0)
	if _, used := node.Capacity(); used != 1<<20 {
		t.Fatalf("replayed alloc leaked a carve: used = %d, want %d", used, 1<<20)
	}
}

// TestControllerChaosAllocNoLeak allocates through a controller whose
// listener drops connections mid-RPC. Every allocation must succeed via
// retry, and — thanks to request-ID dedup — the controller must have
// carved exactly the bytes the client was granted, with no orphans.
func TestControllerChaosAllocNoLeak(t *testing.T) {
	ctrl := NewController()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(inner, FaultConfig{Seed: 13, DropProb: 0.25, ResetProb: 0.05})
	cs := ServeControllerOn(ctrl, fl)
	defer cs.Close()

	cc := DialControllerTransport(cs.Addr(), chaosTransport(2))
	defer cc.Close()
	registerWithRetry(t, cc, 0, 64<<20, "127.0.0.1:1")

	const n, size = 16, uint64(1 << 20)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		s, _, err := cc.AllocSlab(size)
		if err != nil {
			t.Fatalf("alloc %d through faults: %v", i, err)
		}
		if seen[s.ID] {
			t.Fatalf("alloc %d returned duplicate slab %d", i, s.ID)
		}
		seen[s.ID] = true
	}
	node, _ := ctrl.Node(0)
	if _, used := node.Capacity(); used != uint64(n)*size {
		t.Fatalf("carved %d bytes for %d allocs of %d — retries leaked slabs", used, n, size)
	}
	if fl.Faults() == 0 {
		t.Fatalf("fault listener injected nothing; test proves nothing")
	}
}

// TestControllerBlipPing rides out a listener that resets a fifth of all
// fresh connections — the "controller blip" of §4.5.
func TestControllerBlipPing(t *testing.T) {
	ctrl := NewController()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultListener(inner, FaultConfig{Seed: 21, ResetProb: 0.2})
	cs := ServeControllerOn(ctrl, fl)
	defer cs.Close()

	cc := DialControllerTransport(cs.Addr(), chaosTransport(3))
	defer cc.Close()
	for i := 0; i < 40; i++ {
		if err := cc.Ping(); err != nil {
			t.Fatalf("ping %d through blips: %v", i, err)
		}
	}
	if _, err := cc.NodeAddrs(); err != nil {
		t.Fatalf("NodeAddrs through blips: %v", err)
	}
}

// TestFrameCorruptionDoesNotWedgeServer throws malformed framing at a
// server: absurd length prefixes and truncated frames must only cost the
// offending connection.
func TestFrameCorruptionDoesNotWedgeServer(t *testing.T) {
	ctrl := NewController()
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	for _, raw := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF},       // 4GB frame announcement
		{0x00, 0x00, 0x00, 0x00},       // zero-length frame
		{0x00, 0x00, 0x01, 0x00, 0xAB}, // truncated: promises 256 bytes, sends 1
		[]byte("this is not a frame at all"),
	} {
		conn, err := net.Dial("tcp", cs.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	cc := DialController(cs.Addr())
	defer cc.Close()
	if err := cc.Ping(); err != nil {
		t.Fatalf("server wedged after corrupt frames: %v", err)
	}
}

// TestClientClose verifies a closed client fails fast instead of dialing.
func TestClientClose(t *testing.T) {
	ctrl := NewController()
	cs, err := ServeController(ctrl, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cc := DialController(cs.Addr())
	if err := cc.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cc.Ping(); err == nil {
		t.Fatal("ping on closed client succeeded")
	}
}

// benchRig starts a plain memory-node server with one page of data.
func benchRig(b *testing.B) (*MemoryNodeServer, uint64) {
	b.Helper()
	node := NewMemoryNode(0, 1<<20)
	ns, err := ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ns.Close() })
	copy(node.PoolBytes(), bytes.Repeat([]byte{0x5A}, 4096))
	return ns, 0
}

// BenchmarkTCPReadPooled measures MemoryNodeClient.Read over the pooled
// persistent transport.
func BenchmarkTCPReadPooled(b *testing.B) {
	ns, off := benchRig(b)
	mc := DialMemoryNode(ns.Addr())
	defer mc.Close()
	if _, err := mc.Read(off, 4096); err != nil { // warm the pool
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Read(off, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPReadDialPerRequest is the pre-pooling baseline: one fresh
// TCP connection per request.
func BenchmarkTCPReadDialPerRequest(b *testing.B) {
	ns, off := benchRig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := roundTrip(ns.Addr(), &Request{Kind: msgRead, Offset: off, Length: 4096}); err != nil {
			b.Fatal(err)
		}
	}
}
