// Package cluster implements the rack-level pieces of Kona's architecture
// (§4.1): memory nodes that register disaggregated memory and run the
// Cache-line Log Receiver, and the centralized rack controller that
// allocates that memory to compute nodes in coarse slabs.
//
// Two transports exist: the in-process simulated RDMA fabric (package
// rdma) used by the runtime and experiments, and a real TCP wire protocol
// (protocol.go/server.go) used by the cmd/kona-controller and
// cmd/kona-memnode daemons.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"kona/internal/cllog"
	"kona/internal/rdma"
	"kona/internal/simclock"
)

// sealedErrMark is the substring every sealed-extent rejection carries.
// It survives the wire (server errors travel as strings inside
// RemoteError), so IsSealedErr works identically for the in-process and
// TCP transports.
const sealedErrMark = "extent sealed for migration"

// IsSealedErr reports whether err is (or wraps) a sealed-extent write
// rejection — the signal a migration has flipped the slab away and the
// writer must refresh its placements before retrying.
func IsSealedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), sealedErrMark)
}

// leaseErrMark is the substring every lease-fence rejection carries; like
// sealedErrMark it survives the wire, so IsLeaseFencedErr works for both
// transports.
const leaseErrMark = "extent lease-fenced"

// IsLeaseFencedErr reports whether err is (or wraps) a lease-fence write
// rejection — the signal the caller's writer lease expired and another
// runtime took over the slab. Unlike a seal, this is not transient: the
// stale writer must stop, not retry.
func IsLeaseFencedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), leaseErrMark)
}

// MemoryNode hosts a pool of disaggregated memory, exposed as one large
// registered region carved into slabs, plus a log-receive region.
type MemoryNode struct {
	mu sync.Mutex

	id       int
	endpoint *rdma.Endpoint
	pool     *rdma.MR
	capacity uint64
	used     uint64

	// logMR receives packed cache-line logs from compute nodes.
	logMR *rdma.MR

	// freed holds released slab extents for reuse.
	freed []freedExtent

	// failed simulates a crashed node: all operations error.
	failed bool

	// incarnation is the controller-assigned epoch of this node instance.
	// It increments every time a node with the same id crashes and
	// rejoins, so stale placements (and RPCs stamped with the old epoch)
	// can be fenced. Zero means "not assigned" — nodes used outside a
	// controller skip fencing entirely.
	incarnation uint64

	// seals are extents fenced against writes while a migration retires
	// them: a write (or a whole log batch touching one) is rejected with
	// a sealed error before any byte is applied, so the final migration
	// delta copy sees a quiescent source. Reads stay allowed.
	seals []sealRange

	// captures track page offsets dirtied inside an extent while a
	// migration copies it — the delta the engine re-copies before the
	// flip.
	captures []*captureState

	// fences are extents owned by a writer lease (DESIGN.md §14): writes
	// carrying a different runtime identity — a reader, or a fenced-out
	// stale writer after a lease takeover — are rejected before any byte
	// lands, whole log batches all-or-nothing. Reads stay allowed.
	fences []leaseFence

	linesUnpacked uint64
	logsUnpacked  uint64

	// Load counters (cumulative since node start): the per-node signal
	// the controller's load map aggregates.
	readOps, writeOps     uint64
	readBytes, writeBytes uint64
	logPayloadBytes       uint64
}

// sealRange is one write-fenced extent.
type sealRange struct{ off, size uint64 }

// leaseFence is one extent whose writes are restricted to a lease holder.
type leaseFence struct{ off, size, holder uint64 }

// captureState records dirtied pages inside one extent under migration.
type captureState struct {
	off, size uint64
	pageLen   uint64
	dirty     map[uint64]struct{} // page-aligned absolute pool offsets
}

// note records that [off, off+n) was written, page-granular.
func (c *captureState) note(off uint64, n int) {
	end := off + uint64(n)
	if end <= c.off || off >= c.off+c.size {
		return
	}
	if off < c.off {
		off = c.off
	}
	if end > c.off+c.size {
		end = c.off + c.size
	}
	first := c.off + (off-c.off)/c.pageLen*c.pageLen
	for p := first; p < end; p += c.pageLen {
		c.dirty[p] = struct{}{}
	}
}

// freedExtent is a released slab awaiting reuse.
type freedExtent struct{ off, size uint64 }

// LogRegionSize is the receive buffer for cache-line logs.
const LogRegionSize = 4 << 20

// NewMemoryNode registers capacity bytes of offerable memory.
func NewMemoryNode(id int, capacity uint64) *MemoryNode {
	ep := rdma.NewEndpoint(fmt.Sprintf("memnode-%d", id))
	return &MemoryNode{
		id:       id,
		endpoint: ep,
		pool:     ep.RegisterMR(int(capacity)),
		capacity: capacity,
		logMR:    ep.RegisterMR(LogRegionSize),
	}
}

// ID returns the node identifier.
func (n *MemoryNode) ID() int { return n.id }

// Endpoint exposes the node's RDMA endpoint for queue-pair setup.
func (n *MemoryNode) Endpoint() *rdma.Endpoint { return n.endpoint }

// PoolKey returns the rkey of the node's memory pool.
func (n *MemoryNode) PoolKey() uint32 { return n.pool.Key() }

// LogKey returns the rkey of the node's log-receive region.
func (n *MemoryNode) LogKey() uint32 { return n.logMR.Key() }

// Capacity returns total and used bytes.
func (n *MemoryNode) Capacity() (total, used uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.capacity, n.used
}

// CarveSlab reserves size bytes from the pool and returns its offset.
func (n *MemoryNode) CarveSlab(size uint64) (offset uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return 0, fmt.Errorf("memnode %d: failed", n.id)
	}
	// Reuse a released extent of the exact size first (slabs are uniform
	// in practice, so exact-fit reuse suffices).
	for i, f := range n.freed {
		if f.size == size {
			n.freed = append(n.freed[:i], n.freed[i+1:]...)
			return f.off, nil
		}
	}
	if n.used+size > n.capacity {
		return 0, fmt.Errorf("memnode %d: %d bytes requested, %d free", n.id, size, n.capacity-n.used)
	}
	offset = n.used
	n.used += size
	return offset, nil
}

// ReleaseSlab returns a carved extent to the node for reuse. Any seal or
// capture overlapping the extent dies with it — the window may be
// re-carved for an unrelated slab and must not inherit a stale fence.
func (n *MemoryNode) ReleaseSlab(offset, size uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.freed = append(n.freed, freedExtent{off: offset, size: size})
	n.dropSealsLocked(offset, size)
	n.dropCapturesLocked(offset, size)
	n.dropFencesLocked(offset, size)
}

func overlaps(aOff, aSize, bOff, bSize uint64) bool {
	return aOff < bOff+bSize && bOff < aOff+aSize
}

func (n *MemoryNode) dropSealsLocked(off, size uint64) {
	kept := n.seals[:0]
	for _, s := range n.seals {
		if !overlaps(s.off, s.size, off, size) {
			kept = append(kept, s)
		}
	}
	n.seals = kept
}

func (n *MemoryNode) dropFencesLocked(off, size uint64) {
	kept := n.fences[:0]
	for _, f := range n.fences {
		if !overlaps(f.off, f.size, off, size) {
			kept = append(kept, f)
		}
	}
	n.fences = kept
}

func (n *MemoryNode) dropCapturesLocked(off, size uint64) {
	kept := n.captures[:0]
	for _, c := range n.captures {
		if !overlaps(c.off, c.size, off, size) {
			kept = append(kept, c)
		}
	}
	n.captures = kept
}

// sealedLocked reports whether [off, off+n) intersects a sealed extent.
func (n *MemoryNode) sealedLocked(off uint64, size int) bool {
	for _, s := range n.seals {
		if overlaps(s.off, s.size, off, uint64(size)) {
			return true
		}
	}
	return false
}

// leaseFencedLocked reports whether a write of size bytes at off by the
// given runtime intersects a fence held by someone else. writer 0 ("no
// runtime identity" — legacy callers, repair/migration copies before a
// refence) is only rejected when a real holder exists, which is exactly
// the stale-writer case the fence exists for.
func (n *MemoryNode) leaseFencedLocked(off uint64, size int, writer uint64) bool {
	for _, f := range n.fences {
		if f.holder != writer && overlaps(f.off, f.size, off, uint64(size)) {
			return true
		}
	}
	return false
}

// LeaseFence restricts writes to [off, off+size) to the runtime holding
// the writer lease. holder 0 clears the fence (writer released); a
// fence on the same extent is replaced (lease takeover re-arms with the
// new holder).
func (n *MemoryNode) LeaseFence(off, size, holder uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.fences[:0]
	for _, f := range n.fences {
		if f.off == off && f.size == size {
			continue
		}
		kept = append(kept, f)
	}
	n.fences = kept
	if holder != 0 {
		n.fences = append(n.fences, leaseFence{off: off, size: size, holder: holder})
	}
}

// Seal fences [off, off+size) against writes: subsequent WriteAt calls
// (and whole UnpackLog batches) touching the extent are rejected with a
// sealed error. Sealing an already-sealed extent is a no-op.
func (n *MemoryNode) Seal(off, size uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.seals {
		if s.off == off && s.size == size {
			return
		}
	}
	n.seals = append(n.seals, sealRange{off: off, size: size})
}

// Unseal lifts the fence on [off, off+size). Unknown extents are a
// no-op.
func (n *MemoryNode) Unseal(off, size uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.seals[:0]
	for _, s := range n.seals {
		if s.off == off && s.size == size {
			continue
		}
		kept = append(kept, s)
	}
	n.seals = kept
}

// StartCapture begins recording page-granular writes landing inside
// [off, off+size). Restarting an existing capture resets its dirty set.
func (n *MemoryNode) StartCapture(off, size, pageLen uint64) {
	if pageLen == 0 {
		pageLen = 4096
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range n.captures {
		if c.off == off && c.size == size {
			c.pageLen = pageLen
			c.dirty = make(map[uint64]struct{})
			return
		}
	}
	n.captures = append(n.captures, &captureState{
		off: off, size: size, pageLen: pageLen, dirty: make(map[uint64]struct{}),
	})
}

// DrainCapture returns (and clears) the sorted page offsets dirtied in
// the captured extent since StartCapture or the previous drain. A nil
// return means no capture exists or nothing was dirtied.
func (n *MemoryNode) DrainCapture(off, size uint64) []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range n.captures {
		if c.off != off || c.size != size {
			continue
		}
		if len(c.dirty) == 0 {
			return nil
		}
		out := make([]uint64, 0, len(c.dirty))
		for p := range c.dirty {
			out = append(out, p)
		}
		c.dirty = make(map[uint64]struct{})
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	return nil
}

// StopCapture discards the capture on [off, off+size).
func (n *MemoryNode) StopCapture(off, size uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.captures[:0]
	for _, c := range n.captures {
		if c.off == off && c.size == size {
			continue
		}
		kept = append(kept, c)
	}
	n.captures = kept
}

// Fail marks the node crashed; subsequent operations error. Used by the
// failure-injection tests (§4.5).
func (n *MemoryNode) Fail() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = true
}

// Failed reports the failure flag.
func (n *MemoryNode) Failed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

// Recover clears the failure flag — the operator restored the node or the
// network outage ended (§4.5's "wait until the network delay or outage is
// resolved"). The pool contents are as they were.
func (n *MemoryNode) Recover() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = false
}

// Incarnation returns the node's controller-assigned epoch (0 if the
// node was never registered through an incarnation-tracking controller).
func (n *MemoryNode) Incarnation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.incarnation
}

// SetIncarnation records the controller-assigned epoch for this node
// instance; the memnode daemon calls it after (re-)registering.
func (n *MemoryNode) SetIncarnation(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.incarnation = epoch
}

// ReadAt copies len(buf) pool bytes starting at off into buf. Unlike
// PoolBytes it synchronizes with the log receiver, so the repair engine
// (and the memnode server's data RPCs) can read concurrently with
// UnpackLog scattering lines into the pool.
func (n *MemoryNode) ReadAt(off uint64, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return fmt.Errorf("memnode %d: failed", n.id)
	}
	pool := n.pool.Bytes()
	if off+uint64(len(buf)) > uint64(len(pool)) {
		return fmt.Errorf("memnode %d: read [%d,+%d) overruns pool", n.id, off, len(buf))
	}
	copy(buf, pool[off:])
	n.readOps++
	n.readBytes += uint64(len(buf))
	return nil
}

// WriteAt stores data into the pool at off, synchronized like ReadAt.
// Writes into a sealed extent are rejected before touching the pool.
func (n *MemoryNode) WriteAt(off uint64, data []byte) error {
	return n.WriteAtFrom(0, off, data)
}

// WriteAtFrom is WriteAt carrying the calling runtime's identity: writes
// into a lease-fenced extent by anyone but the fence holder are rejected
// before touching the pool.
func (n *MemoryNode) WriteAtFrom(writer, off uint64, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return fmt.Errorf("memnode %d: failed", n.id)
	}
	pool := n.pool.Bytes()
	if off+uint64(len(data)) > uint64(len(pool)) {
		return fmt.Errorf("memnode %d: write [%d,+%d) overruns pool", n.id, off, len(data))
	}
	if n.sealedLocked(off, len(data)) {
		return fmt.Errorf("memnode %d: write [%d,+%d): %s", n.id, off, len(data), sealedErrMark)
	}
	if n.leaseFencedLocked(off, len(data), writer) {
		return fmt.Errorf("memnode %d: write [%d,+%d) by runtime %d: %s", n.id, off, len(data), writer, leaseErrMark)
	}
	copy(pool[off:], data)
	for _, c := range n.captures {
		c.note(off, len(data))
	}
	n.writeOps++
	n.writeBytes += uint64(len(data))
	return nil
}

// UnpackLog runs the Cache-line Log Receiver once (§4.4): it parses the
// packed log that a compute node RDMA-wrote into the log region and
// scatters each entry to its home offset in the pool. It returns the
// number of entries applied and the modeled service time (a few memory
// reads and writes per line — "the overhead of the remote thread is
// small").
func (n *MemoryNode) UnpackLog(logBytes int) (entries int, service simclock.Duration, err error) {
	return n.UnpackLogFrom(0, logBytes)
}

// UnpackLogFrom is UnpackLog carrying the sending runtime's identity:
// the pre-scan also rejects the whole batch when any entry lands in an
// extent lease-fenced to a different holder — a zombie writer's flush
// after a lease takeover applies no byte at all.
func (n *MemoryNode) UnpackLogFrom(writer uint64, logBytes int) (entries int, service simclock.Duration, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return 0, 0, fmt.Errorf("memnode %d: failed", n.id)
	}
	if logBytes > len(n.logMR.Bytes()) {
		return 0, 0, fmt.Errorf("memnode %d: log of %d bytes exceeds region", n.id, logBytes)
	}
	pool := n.pool.Bytes()
	// Pre-scan against sealed and lease-fenced extents BEFORE applying
	// anything: a log batch is all-or-nothing, and a partially applied
	// batch racing a migration flip (or a lease takeover) would tear the
	// slab image. The sender retains the whole batch on a seal; a fenced
	// batch must be dropped, not replayed.
	if len(n.seals) > 0 || len(n.fences) > 0 {
		if _, serr := cllog.Unpack(n.logMR.Bytes()[:logBytes], func(e cllog.Entry) error {
			if n.sealedLocked(e.RemoteOff, len(e.Data)) {
				return fmt.Errorf("memnode %d: log entry at %d: %s", n.id, e.RemoteOff, sealedErrMark)
			}
			if n.leaseFencedLocked(e.RemoteOff, len(e.Data), writer) {
				return fmt.Errorf("memnode %d: log entry at %d from runtime %d: %s", n.id, e.RemoteOff, writer, leaseErrMark)
			}
			return nil
		}); serr != nil {
			return 0, 0, serr
		}
	}
	var payload int
	entries, err = cllog.Unpack(n.logMR.Bytes()[:logBytes], func(e cllog.Entry) error {
		if e.RemoteOff+uint64(len(e.Data)) > uint64(len(pool)) {
			return fmt.Errorf("memnode %d: entry at %d overruns pool", n.id, e.RemoteOff)
		}
		copy(pool[e.RemoteOff:], e.Data)
		for _, c := range n.captures {
			c.note(e.RemoteOff, len(e.Data))
		}
		payload += len(e.Data)
		return nil
	})
	if err != nil {
		return entries, 0, err
	}
	// Cost model: read the log sequentially and write each line home.
	service = simclock.Memcpy(payload) + simclock.Duration(entries)*20
	n.linesUnpacked += uint64(entries)
	n.logsUnpacked++
	n.writeOps++
	n.writeBytes += uint64(payload)
	n.logPayloadBytes += uint64(payload)
	return entries, service, nil
}

// LoadSample is one node's cumulative traffic counters plus a pending
// gauge — the per-node signal the controller's load map scores. All
// counter fields are monotone since node start; PendingBytes is a gauge
// (compute-side buffered eviction bytes destined for this node).
type LoadSample struct {
	ReadOps, WriteOps     uint64
	ReadBytes, WriteBytes uint64
	LogBytes, LogEntries  uint64
	PendingBytes          uint64
}

// LoadCounters snapshots the node's cumulative traffic counters.
func (n *MemoryNode) LoadCounters() LoadSample {
	n.mu.Lock()
	defer n.mu.Unlock()
	return LoadSample{
		ReadOps:    n.readOps,
		WriteOps:   n.writeOps,
		ReadBytes:  n.readBytes,
		WriteBytes: n.writeBytes,
		LogBytes:   n.logPayloadBytes,
		LogEntries: n.linesUnpacked,
	}
}

// ReceiverStats returns logs and entries processed by the log receiver.
func (n *MemoryNode) ReceiverStats() (logs, entries uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.logsUnpacked, n.linesUnpacked
}

// PoolBytes exposes the raw pool for verification in tests.
func (n *MemoryNode) PoolBytes() []byte { return n.pool.Bytes() }
