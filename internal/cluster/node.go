// Package cluster implements the rack-level pieces of Kona's architecture
// (§4.1): memory nodes that register disaggregated memory and run the
// Cache-line Log Receiver, and the centralized rack controller that
// allocates that memory to compute nodes in coarse slabs.
//
// Two transports exist: the in-process simulated RDMA fabric (package
// rdma) used by the runtime and experiments, and a real TCP wire protocol
// (protocol.go/server.go) used by the cmd/kona-controller and
// cmd/kona-memnode daemons.
package cluster

import (
	"fmt"
	"sync"

	"kona/internal/cllog"
	"kona/internal/rdma"
	"kona/internal/simclock"
)

// MemoryNode hosts a pool of disaggregated memory, exposed as one large
// registered region carved into slabs, plus a log-receive region.
type MemoryNode struct {
	mu sync.Mutex

	id       int
	endpoint *rdma.Endpoint
	pool     *rdma.MR
	capacity uint64
	used     uint64

	// logMR receives packed cache-line logs from compute nodes.
	logMR *rdma.MR

	// freed holds released slab extents for reuse.
	freed []freedExtent

	// failed simulates a crashed node: all operations error.
	failed bool

	// incarnation is the controller-assigned epoch of this node instance.
	// It increments every time a node with the same id crashes and
	// rejoins, so stale placements (and RPCs stamped with the old epoch)
	// can be fenced. Zero means "not assigned" — nodes used outside a
	// controller skip fencing entirely.
	incarnation uint64

	linesUnpacked uint64
	logsUnpacked  uint64
}

// freedExtent is a released slab awaiting reuse.
type freedExtent struct{ off, size uint64 }

// LogRegionSize is the receive buffer for cache-line logs.
const LogRegionSize = 4 << 20

// NewMemoryNode registers capacity bytes of offerable memory.
func NewMemoryNode(id int, capacity uint64) *MemoryNode {
	ep := rdma.NewEndpoint(fmt.Sprintf("memnode-%d", id))
	return &MemoryNode{
		id:       id,
		endpoint: ep,
		pool:     ep.RegisterMR(int(capacity)),
		capacity: capacity,
		logMR:    ep.RegisterMR(LogRegionSize),
	}
}

// ID returns the node identifier.
func (n *MemoryNode) ID() int { return n.id }

// Endpoint exposes the node's RDMA endpoint for queue-pair setup.
func (n *MemoryNode) Endpoint() *rdma.Endpoint { return n.endpoint }

// PoolKey returns the rkey of the node's memory pool.
func (n *MemoryNode) PoolKey() uint32 { return n.pool.Key() }

// LogKey returns the rkey of the node's log-receive region.
func (n *MemoryNode) LogKey() uint32 { return n.logMR.Key() }

// Capacity returns total and used bytes.
func (n *MemoryNode) Capacity() (total, used uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.capacity, n.used
}

// CarveSlab reserves size bytes from the pool and returns its offset.
func (n *MemoryNode) CarveSlab(size uint64) (offset uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return 0, fmt.Errorf("memnode %d: failed", n.id)
	}
	// Reuse a released extent of the exact size first (slabs are uniform
	// in practice, so exact-fit reuse suffices).
	for i, f := range n.freed {
		if f.size == size {
			n.freed = append(n.freed[:i], n.freed[i+1:]...)
			return f.off, nil
		}
	}
	if n.used+size > n.capacity {
		return 0, fmt.Errorf("memnode %d: %d bytes requested, %d free", n.id, size, n.capacity-n.used)
	}
	offset = n.used
	n.used += size
	return offset, nil
}

// ReleaseSlab returns a carved extent to the node for reuse.
func (n *MemoryNode) ReleaseSlab(offset, size uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.freed = append(n.freed, freedExtent{off: offset, size: size})
}

// Fail marks the node crashed; subsequent operations error. Used by the
// failure-injection tests (§4.5).
func (n *MemoryNode) Fail() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = true
}

// Failed reports the failure flag.
func (n *MemoryNode) Failed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

// Recover clears the failure flag — the operator restored the node or the
// network outage ended (§4.5's "wait until the network delay or outage is
// resolved"). The pool contents are as they were.
func (n *MemoryNode) Recover() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = false
}

// Incarnation returns the node's controller-assigned epoch (0 if the
// node was never registered through an incarnation-tracking controller).
func (n *MemoryNode) Incarnation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.incarnation
}

// SetIncarnation records the controller-assigned epoch for this node
// instance; the memnode daemon calls it after (re-)registering.
func (n *MemoryNode) SetIncarnation(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.incarnation = epoch
}

// ReadAt copies len(buf) pool bytes starting at off into buf. Unlike
// PoolBytes it synchronizes with the log receiver, so the repair engine
// (and the memnode server's data RPCs) can read concurrently with
// UnpackLog scattering lines into the pool.
func (n *MemoryNode) ReadAt(off uint64, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return fmt.Errorf("memnode %d: failed", n.id)
	}
	pool := n.pool.Bytes()
	if off+uint64(len(buf)) > uint64(len(pool)) {
		return fmt.Errorf("memnode %d: read [%d,+%d) overruns pool", n.id, off, len(buf))
	}
	copy(buf, pool[off:])
	return nil
}

// WriteAt stores data into the pool at off, synchronized like ReadAt.
func (n *MemoryNode) WriteAt(off uint64, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return fmt.Errorf("memnode %d: failed", n.id)
	}
	pool := n.pool.Bytes()
	if off+uint64(len(data)) > uint64(len(pool)) {
		return fmt.Errorf("memnode %d: write [%d,+%d) overruns pool", n.id, off, len(data))
	}
	copy(pool[off:], data)
	return nil
}

// UnpackLog runs the Cache-line Log Receiver once (§4.4): it parses the
// packed log that a compute node RDMA-wrote into the log region and
// scatters each entry to its home offset in the pool. It returns the
// number of entries applied and the modeled service time (a few memory
// reads and writes per line — "the overhead of the remote thread is
// small").
func (n *MemoryNode) UnpackLog(logBytes int) (entries int, service simclock.Duration, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return 0, 0, fmt.Errorf("memnode %d: failed", n.id)
	}
	if logBytes > len(n.logMR.Bytes()) {
		return 0, 0, fmt.Errorf("memnode %d: log of %d bytes exceeds region", n.id, logBytes)
	}
	pool := n.pool.Bytes()
	var payload int
	entries, err = cllog.Unpack(n.logMR.Bytes()[:logBytes], func(e cllog.Entry) error {
		if e.RemoteOff+uint64(len(e.Data)) > uint64(len(pool)) {
			return fmt.Errorf("memnode %d: entry at %d overruns pool", n.id, e.RemoteOff)
		}
		copy(pool[e.RemoteOff:], e.Data)
		payload += len(e.Data)
		return nil
	})
	if err != nil {
		return entries, 0, err
	}
	// Cost model: read the log sequentially and write each line home.
	service = simclock.Memcpy(payload) + simclock.Duration(entries)*20
	n.linesUnpacked += uint64(entries)
	n.logsUnpacked++
	return entries, service, nil
}

// ReceiverStats returns logs and entries processed by the log receiver.
func (n *MemoryNode) ReceiverStats() (logs, entries uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.logsUnpacked, n.linesUnpacked
}

// PoolBytes exposes the raw pool for verification in tests.
func (n *MemoryNode) PoolBytes() []byte { return n.pool.Bytes() }
