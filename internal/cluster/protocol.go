package cluster

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"kona/internal/slab"
)

// TCP wire protocol for the standalone daemons (cmd/kona-controller and
// cmd/kona-memnode). Messages are binary frames (frame.go, codec.go)
// carried over persistent connections: a client keeps a small pool of
// conns per peer (transport.go) and a server keeps answering requests on
// each conn until the peer closes it. The in-process runtime does not use
// this path; it exists so the rack pieces can run as real networked
// processes and so §4.5's failure handling can be exercised over real
// sockets (faultconn.go).

// Request tags.
const (
	msgRegisterNode = "register-node"
	msgAllocSlab    = "alloc-slab"
	msgNodeAddr     = "node-addr"
	msgRead         = "read"
	msgReadPages    = "read-pages"
	msgWrite        = "write"
	msgWriteLog     = "write-log"
	msgReleaseSlab  = "release-slab"
	msgPing         = "ping"
	// Fault-tolerance RPCs (DESIGN.md §10): compute nodes fetch a
	// placement group's current members after a repair flip, and report
	// nodes whose log ships keep failing so the controller can probe and
	// expel them.
	msgSlabPlacements = "slab-placements"
	msgReportFailure  = "report-failure"
	// Capacity-management RPCs (DESIGN.md §13): memnode daemons push
	// their cumulative load counters to the controller, and the
	// migration engine drives the memnode's dirty capture and extent
	// seal over the wire. The load sample travels in the request payload
	// (7 big-endian u64 fields) — the kw v2 header layout is fixed and
	// append-only, so new RPCs carry structured data in the frame
	// payload instead of new header fields.
	msgReportLoad   = "report-load"
	msgCaptureStart = "capture-start"
	msgCaptureDrain = "capture-drain"
	msgCaptureStop  = "capture-stop"
	msgSealExtent   = "seal-extent"
	msgUnsealExtent = "unseal-extent"
	// Lease RPCs (DESIGN.md §14): runtimes acquire/renew/release per-group
	// reader or writer leases at the controller; lease-invalidate is the
	// writer's publish (version bump) that readers observe on their next
	// renew; lease-fence is controller→memnode, arming the extent fence
	// that rejects a stale writer's WriteLog batches.
	msgLeaseAcquire    = "lease-acquire"
	msgLeaseRenew      = "lease-renew"
	msgLeaseRelease    = "lease-release"
	msgLeaseInvalidate = "lease-invalidate"
	msgLeaseFence      = "lease-fence"
)

// loadSampleWireSize is the report-load payload: ReadOps, WriteOps,
// ReadBytes, WriteBytes, LogBytes, LogEntries, PendingBytes.
const loadSampleWireSize = 7 * 8

// appendLoadSample encodes s as the report-load request payload.
func appendLoadSample(b []byte, s LoadSample) []byte {
	b = appendU64(b, s.ReadOps)
	b = appendU64(b, s.WriteOps)
	b = appendU64(b, s.ReadBytes)
	b = appendU64(b, s.WriteBytes)
	b = appendU64(b, s.LogBytes)
	b = appendU64(b, s.LogEntries)
	b = appendU64(b, s.PendingBytes)
	return b
}

// decodeLoadSample parses a report-load payload.
func decodeLoadSample(b []byte) (LoadSample, error) {
	if len(b) != loadSampleWireSize {
		return LoadSample{}, fmt.Errorf("cluster: load sample payload is %d bytes, want %d", len(b), loadSampleWireSize)
	}
	r := wireReader{b: b}
	s := LoadSample{
		ReadOps:      r.u64(),
		WriteOps:     r.u64(),
		ReadBytes:    r.u64(),
		WriteBytes:   r.u64(),
		LogBytes:     r.u64(),
		LogEntries:   r.u64(),
		PendingBytes: r.u64(),
	}
	return s, r.done("load sample")
}

// Request is the single envelope for every RPC. Data is the frame
// payload: it never passes through the header codec — the sender ships
// it as writev iovecs straight from its owning buffer, and the server
// lands it directly in its destination (payloadSink).
type Request struct {
	Kind string
	// ID uniquely identifies the request across retries; servers use it
	// to deduplicate replayed non-idempotent requests (AllocSlab).
	ID uint64

	// RegisterNode
	NodeID   int
	Capacity uint64
	Addr     string

	// AllocSlab
	Size     uint64
	Replicas int

	// Read/Write/WriteLog/ReleaseSlab
	Offset uint64
	Length int
	Data   []byte

	// ReadPages: pool offsets of the pages to gather, each Length bytes.
	// One frame replaces len(Offsets) Read round trips; the reply carries
	// the payloads concatenated in request order.
	Offsets []uint64

	// SlabPlacements: the placement-group id to look up.
	SlabID uint64

	// Epoch stamps data RPCs to a memory node with the incarnation the
	// sender believes it is talking to; a restarted node rejects
	// mismatches (epoch fencing, §10). Zero disables the fence.
	Epoch uint64

	// Runtime identifies the calling compute runtime for the lease
	// protocol (§14): it names the lease holder on Acquire/Renew/Release,
	// the fence holder on LeaseFence, and stamps Write/WriteLog so a
	// memnode can reject batches from a fenced-out stale writer. Zero
	// means "no runtime identity" and is never fenced against itself.
	Runtime uint64
}

// Response is the single envelope for every reply. Data is the frame
// payload (see Request.Data); on the client it can land directly in
// caller-provided frames instead (pool.roundTripIO's recv vector).
type Response struct {
	Err string

	// AllocSlab
	Slabs []slab.Slab
	// NodeAddr lookups
	Addrs map[int]string

	// Read
	Data []byte
	// WriteLog
	Entries int

	// Epoch carries incarnation/placement-epoch values back to clients:
	// RegisterNode returns the node's assigned incarnation, Ping (to the
	// controller) the current placement epoch.
	Epoch uint64
}

// errOf converts a Response error field back to error.
func (r *Response) errOf() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Msg: r.Err}
}

// RemoteError is an error the server reported while executing a request.
// The request was delivered and processed; transports must not retry it.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// readResponseFrame reads one response frame into resp. When recv is
// non-nil the payload is scattered into recv's slices in order — the
// zero-copy receive path landing reply bytes directly in caller frames;
// otherwise a payload is returned in a freshly allocated resp.Data.
// Returns total bytes consumed off the stream.
func readResponseFrame(r io.Reader, resp *Response, recv [][]byte) (int, error) {
	bp := hdrPool.Get().(*[]byte)
	defer func() {
		if cap(*bp) <= maxPooledBuf {
			hdrPool.Put(bp)
		}
	}()
	kind, hdr, payLen, err := readFrameHeader(r, bp)
	if err != nil {
		return 0, err
	}
	if kind != kindResponse {
		return 0, fmt.Errorf("cluster: expected a response frame, got kind 0x%02x", kind)
	}
	if err := decodeResponseHeader(hdr, resp); err != nil {
		return 0, err
	}
	n := framePrefixLen + len(hdr) + payLen
	if resp.Err != "" && payLen > 0 {
		// An error response never carries a payload; a peer that sends
		// one is desynced. Tear the connection down rather than guess.
		return 0, fmt.Errorf("cluster: error response carried %d payload bytes", payLen)
	}
	switch {
	case recv != nil && resp.Err == "":
		return n, readPayloadInto(r, payLen, recv...)
	case payLen > 0:
		resp.Data = make([]byte, payLen)
		return n, readPayloadInto(r, payLen, resp.Data)
	}
	return n, nil
}

// roundTripTimeout bounds a throwaway-connection exchange (roundTrip,
// pingAddr callers pass their own): without it a hung peer stalls the
// dial-per-request baseline forever, since unlike the pooled transport
// it sets no per-attempt deadline.
const roundTripTimeout = 5 * time.Second

// roundTrip performs one request/response over a fresh throwaway
// connection — no pooling, no retries. It is the per-request-dial
// baseline the pooled transport replaced; tests and the transport
// benchmark keep it around for comparison. The whole exchange runs
// under an I/O deadline consistent with the pooled transport's
// per-attempt deadlines.
func roundTrip(addr string, req *Request) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if req.ID == 0 {
		req.ID = nextReqID()
	}
	_ = conn.SetDeadline(time.Now().Add(roundTripTimeout))
	if _, err := writeRequestFrame(conn, req, req.Data); err != nil {
		return nil, err
	}
	var resp Response
	if _, err := readResponseFrame(conn, &resp, nil); err != nil {
		return nil, err
	}
	if err := resp.errOf(); err != nil {
		return nil, err
	}
	return &resp, nil
}

// writeDeadline bounds how long a server blocks writing one response to a
// wedged peer before giving up on the connection.
const writeDeadline = 30 * time.Second

// connSet tracks a server's live connections so Close can tear them down;
// persistent connections otherwise outlive a closed listener. It also
// carries the graceful-drain state: per-connection busy flags written
// under the same lock drain reads them, so waking an idle reader can
// never clobber the deadline protecting a request in flight.
type connSet struct {
	mu       sync.Mutex
	conns    map[net.Conn]*srvConn
	closed   bool
	draining bool
	wg       sync.WaitGroup // live connection goroutines
}

// srvConn is one connection's drain state: busy spans from a request's
// frame header arriving to its response hitting the wire.
type srvConn struct {
	busy bool
}

func newConnSet() *connSet { return &connSet{conns: make(map[net.Conn]*srvConn)} }

// add registers a connection; it returns nil (and closes the conn) if
// the server is already shutting down.
func (s *connSet) add(c net.Conn) *srvConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		c.Close()
		return nil
	}
	sc := &srvConn{}
	s.conns[c] = sc
	s.wg.Add(1)
	return sc
}

func (s *connSet) remove(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

// serveReqDeadline bounds one request's payload read + handling once its
// frame header has arrived, so a drain is never hostage to a peer that
// stalls mid-frame.
const serveReqDeadline = 30 * time.Second

// beginReq marks a connection busy for the span of one request and arms
// the per-request deadline — under the drain lock, so a concurrent
// drain either already woke this reader (the frame header would have
// timed out) or sees busy and leaves the deadline alone.
func (s *connSet) beginReq(c net.Conn, sc *srvConn) {
	s.mu.Lock()
	sc.busy = true
	_ = c.SetReadDeadline(time.Now().Add(serveReqDeadline))
	s.mu.Unlock()
}

// endReq returns the connection to idle; true means the server is
// draining and the connection loop should exit at this boundary.
func (s *connSet) endReq(c net.Conn, sc *srvConn) bool {
	s.mu.Lock()
	sc.busy = false
	_ = c.SetReadDeadline(time.Time{})
	draining := s.draining
	s.mu.Unlock()
	return draining
}

// drain shuts down gracefully: refuse new connections, wake every reader
// blocked at a frame boundary, let in-flight requests finish, and close
// whatever is still busy once the grace budget runs out. It returns the
// number of connections that were live when the drain began.
func (s *connSet) drain(grace time.Duration) int {
	s.mu.Lock()
	s.draining = true
	n := len(s.conns)
	for c, sc := range s.conns {
		if !sc.busy {
			_ = c.SetReadDeadline(time.Now())
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(grace):
		s.closeAll()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return n
}

// closeAll closes every live connection and rejects future ones.
func (s *connSet) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]*srvConn{}
}

// connHandler is a server's side of the wire protocol. Splitting payload
// placement (payloadSink) from execution (serveReq) is what makes the
// receive path zero-copy: the sink can hand back the payload's final
// destination — the memnode's log region for WriteLog — and the serve
// loop ReadFulls the wire straight into it.
type connHandler interface {
	// payloadSink returns the buffer an inbound request's n-byte payload
	// lands in. release, if non-nil, runs after the request has been
	// handled (it guards the destination, e.g. the memnode's log-region
	// lock). A returned error refuses the payload: the bytes are drained
	// off the stream and err becomes the response.
	payloadSink(req *Request, n int) (dst []byte, release func(), err error)
	// serveReq executes one request (its payload, if any, already placed
	// in req.Data) and returns the response; done, if non-nil, runs after
	// the response has hit the wire, releasing buffers resp.Data aliases.
	serveReq(req *Request) (resp *Response, done func())
	// countWire records one exchange's wire volume (rx covers the
	// request's prefix+header+payload, tx the response's).
	countWire(kind string, rx, tx int)
}

// stagePayload is the generic payload sink: a pooled buffer for requests
// whose payload has no in-place destination (controller RPCs, Write
// bodies that must be bounds-checked before touching the pool).
func stagePayload(n int) ([]byte, func(), error) {
	bp, buf := getPayloadBuf(n)
	return buf, func() { putPayloadBuf(bp) }, nil
}

// serve accepts connections and answers framed requests on each until the
// peer closes it, the frame stream turns invalid, or the server shuts
// down. One goroutine per connection; the handler must be safe for
// concurrent use.
func serve(l net.Listener, cs *connSet, h connHandler) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		sc := cs.add(conn)
		if sc == nil {
			// Shutting down: the listener is closed (or about to be), so
			// the next Accept fails and ends the loop.
			continue
		}
		go func(conn net.Conn, sc *srvConn) {
			defer func() {
				cs.remove(conn)
				conn.Close()
			}()
			var scratch []byte
			var req Request
			for {
				kind, hdr, payLen, err := readFrameHeader(conn, &scratch)
				if err != nil {
					// EOF at a frame boundary is a clean close; a timeout
					// here is the drain wake-up; anything else (bad magic,
					// truncation) is unrecoverable on a framed stream —
					// drop the conn either way.
					return
				}
				// A request is in flight: mark the conn busy and give the
				// rest of the frame its own deadline, under the same lock
				// drain uses, so a concurrent drain waits for us.
				cs.beginReq(conn, sc)
				// Reset the envelope but keep the Offsets backing array so
				// steady-state ReadPages decoding reuses it.
				offs := req.Offsets
				req = Request{Offsets: offs}
				var resp *Response
				var done func()
				if derr := decodeRequestHeader(kind, hdr, &req); derr != nil {
					// The header is consumed and the payload length known,
					// so the stream stays framed: drain and answer.
					if discardPayload(conn, payLen) != nil {
						return
					}
					resp = &Response{Err: derr.Error()}
				} else if payLen > 0 {
					dst, release, serr := h.payloadSink(&req, payLen)
					if serr != nil {
						if discardPayload(conn, payLen) != nil {
							return
						}
						resp = &Response{Err: serr.Error()}
					} else {
						rerr := readPayloadInto(conn, payLen, dst)
						if rerr != nil {
							if release != nil {
								release()
							}
							return
						}
						req.Data = dst
						resp, done = h.serveReq(&req)
						if release != nil {
							release()
						}
						req.Data = nil
					}
				} else {
					resp, done = h.serveReq(&req)
				}
				_ = conn.SetWriteDeadline(time.Now().Add(writeDeadline))
				tx, werr := writeResponseFrame(conn, resp, resp.Data)
				if done != nil {
					done()
				}
				h.countWire(req.Kind, framePrefixLen+len(hdr)+payLen, tx)
				if werr != nil {
					return
				}
				_ = conn.SetWriteDeadline(time.Time{})
				// Back to idle at the frame boundary; if a drain started
				// while we served, this is where the connection exits.
				if cs.endReq(conn, sc) {
					return
				}
			}
		}(conn, sc)
	}
}
