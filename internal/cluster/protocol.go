package cluster

import (
	"net"
	"sync"
	"time"

	"kona/internal/slab"
)

// TCP wire protocol for the standalone daemons (cmd/kona-controller and
// cmd/kona-memnode). Messages are length-prefixed gob frames (frame.go)
// carried over persistent connections: a client keeps a small pool of
// conns per peer (transport.go) and a server keeps answering requests on
// each conn until the peer closes it. The in-process runtime does not use
// this path; it exists so the rack pieces can run as real networked
// processes and so §4.5's failure handling can be exercised over real
// sockets (faultconn.go).

// Request tags.
const (
	msgRegisterNode = "register-node"
	msgAllocSlab    = "alloc-slab"
	msgNodeAddr     = "node-addr"
	msgRead         = "read"
	msgReadPages    = "read-pages"
	msgWrite        = "write"
	msgWriteLog     = "write-log"
	msgReleaseSlab  = "release-slab"
	msgPing         = "ping"
	// Fault-tolerance RPCs (DESIGN.md §10): compute nodes fetch a
	// placement group's current members after a repair flip, and report
	// nodes whose log ships keep failing so the controller can probe and
	// expel them.
	msgSlabPlacements = "slab-placements"
	msgReportFailure  = "report-failure"
)

// Request is the single envelope for every RPC.
type Request struct {
	Kind string
	// ID uniquely identifies the request across retries; servers use it
	// to deduplicate replayed non-idempotent requests (AllocSlab).
	ID uint64

	// RegisterNode
	NodeID   int
	Capacity uint64
	Addr     string

	// AllocSlab
	Size     uint64
	Replicas int

	// Read/Write/WriteLog/ReleaseSlab
	Offset uint64
	Length int
	Data   []byte

	// ReadPages: pool offsets of the pages to gather, each Length bytes.
	// One frame replaces len(Offsets) Read round trips; the reply carries
	// the payloads concatenated in request order in Data.
	Offsets []uint64

	// SlabPlacements: the placement-group id to look up.
	SlabID uint64

	// Epoch stamps data RPCs to a memory node with the incarnation the
	// sender believes it is talking to; a restarted node rejects
	// mismatches (epoch fencing, §10). Zero disables the fence.
	Epoch uint64
}

// Response is the single envelope for every reply.
type Response struct {
	Err string

	// AllocSlab
	Slabs []slab.Slab
	// NodeAddr lookups
	Addrs map[int]string

	// Read
	Data []byte
	// WriteLog
	Entries int

	// Epoch carries incarnation/placement-epoch values back to clients:
	// RegisterNode returns the node's assigned incarnation, Ping (to the
	// controller) the current placement epoch.
	Epoch uint64
}

// errOf converts a Response error field back to error.
func (r *Response) errOf() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Msg: r.Err}
}

// RemoteError is an error the server reported while executing a request.
// The request was delivered and processed; transports must not retry it.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// roundTrip performs one request/response over a fresh throwaway
// connection — no pooling, no deadlines, no retries. It is the
// per-request-dial baseline the pooled transport replaced; tests and the
// transport benchmark keep it around for comparison.
func roundTrip(addr string, req *Request) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if req.ID == 0 {
		req.ID = nextReqID()
	}
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(conn, &resp); err != nil {
		return nil, err
	}
	if err := resp.errOf(); err != nil {
		return nil, err
	}
	return &resp, nil
}

// writeDeadline bounds how long a server blocks writing one response to a
// wedged peer before giving up on the connection.
const writeDeadline = 30 * time.Second

// connSet tracks a server's live connections so Close can tear them down;
// persistent connections otherwise outlive a closed listener.
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newConnSet() *connSet { return &connSet{conns: make(map[net.Conn]struct{})} }

// add registers a connection; it reports false (and closes the conn) if
// the server is already shutting down.
func (s *connSet) add(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *connSet) remove(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// closeAll closes every live connection and rejects future ones.
func (s *connSet) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
}

// serve accepts connections and answers framed requests on each until the
// peer closes it, the frame stream turns invalid, or the server shuts
// down. One goroutine per connection; handle must be safe for concurrent
// use.
func serve(l net.Listener, cs *connSet, handle func(*Request) *Response) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !cs.add(conn) {
			return
		}
		go func(conn net.Conn) {
			defer func() {
				cs.remove(conn)
				conn.Close()
			}()
			for {
				var req Request
				if err := readFrame(conn, &req); err != nil {
					// EOF at a frame boundary is a clean close; anything
					// else (garbage, truncation) is unrecoverable on a
					// framed stream — drop the conn either way.
					return
				}
				_ = conn.SetWriteDeadline(time.Now().Add(writeDeadline))
				if err := writeFrame(conn, handle(&req)); err != nil {
					return
				}
				_ = conn.SetWriteDeadline(time.Time{})
			}
		}(conn)
	}
}
