package cluster

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"kona/internal/slab"
)

// TCP wire protocol for the standalone daemons (cmd/kona-controller and
// cmd/kona-memnode). Messages are gob-encoded, one request/response pair
// per round trip. The in-process runtime does not use this path; it exists
// so the rack pieces can run as real networked processes.

// Request tags.
const (
	msgRegisterNode = "register-node"
	msgAllocSlab    = "alloc-slab"
	msgNodeAddr     = "node-addr"
	msgRead         = "read"
	msgWrite        = "write"
	msgWriteLog     = "write-log"
	msgReleaseSlab  = "release-slab"
	msgPing         = "ping"
)

// Request is the single envelope for every RPC.
type Request struct {
	Kind string

	// RegisterNode
	NodeID   int
	Capacity uint64
	Addr     string

	// AllocSlab
	Size     uint64
	Replicas int

	// Read/Write/WriteLog/ReleaseSlab
	Offset uint64
	Length int
	Data   []byte
}

// Response is the single envelope for every reply.
type Response struct {
	Err string

	// AllocSlab
	Slabs []slab.Slab
	// NodeAddr lookups
	Addrs map[int]string

	// Read
	Data []byte
	// WriteLog
	Entries int
}

// errOf converts a Response error field back to error.
func (r *Response) errOf() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("%s", r.Err)
}

// roundTrip sends one request and decodes one response over a fresh
// connection. The daemons are request-scoped; connection pooling is left
// to callers that need throughput.
func roundTrip(addr string, req *Request) (*Response, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("cluster: encode: %w", err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	if err := resp.errOf(); err != nil {
		return nil, err
	}
	return &resp, nil
}

// serve accepts connections and dispatches them to handle until the
// listener closes.
func serve(l net.Listener, handle func(*Request) *Response) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		go func(conn net.Conn) {
			defer conn.Close()
			var req Request
			if err := gob.NewDecoder(conn).Decode(&req); err != nil {
				if err != io.EOF {
					_ = gob.NewEncoder(conn).Encode(&Response{Err: err.Error()})
				}
				return
			}
			_ = gob.NewEncoder(conn).Encode(handle(&req))
		}(conn)
	}
}
