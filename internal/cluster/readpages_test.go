package cluster

import (
	"bytes"
	"testing"

	"kona/internal/mem"
)

// readPagesRig serves one memory-node daemon and returns a client for it
// plus the node (for direct pool access).
func readPagesRig(t testing.TB) (*MemoryNodeClient, *MemoryNode) {
	t.Helper()
	node := NewMemoryNode(0, 8<<20)
	ns, err := ServeMemoryNode(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	c := DialMemoryNode(ns.Addr())
	t.Cleanup(func() { c.Close() })
	return c, node
}

// TestReadPagesRPC pins the scatter-gather wire format: the reply holds
// the requested spans concatenated in request order.
func TestReadPagesRPC(t *testing.T) {
	c, node := readPagesRig(t)
	pool := node.PoolBytes()
	offs := []uint64{3 * mem.PageSize, 0, 17 * mem.PageSize}
	for i, off := range offs {
		copy(pool[off:], bytes.Repeat([]byte{byte(i + 1)}, int(mem.PageSize)))
	}
	pages, err := c.ReadPages(offs, int(mem.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != len(offs) {
		t.Fatalf("got %d pages, want %d", len(pages), len(offs))
	}
	for i := range offs {
		if !bytes.Equal(pages[i], bytes.Repeat([]byte{byte(i + 1)}, int(mem.PageSize))) {
			t.Fatalf("page %d out of order or corrupted", i)
		}
	}
}

// TestReadPagesMatchesSingleReads cross-checks the batched path against
// the one-page Read RPC over random offsets.
func TestReadPagesMatchesSingleReads(t *testing.T) {
	c, node := readPagesRig(t)
	pool := node.PoolBytes()
	for i := range pool {
		pool[i] = byte(i * 31)
	}
	offs := []uint64{5 * mem.PageSize, 1 * mem.PageSize, 9 * mem.PageSize, 5 * mem.PageSize}
	pages, err := c.ReadPages(offs, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range offs {
		single, err := c.Read(off, 512)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pages[i], single) {
			t.Fatalf("batch span %d (offset %d) differs from single read", i, off)
		}
	}
}

// TestReadPagesErrors pins the rejection cases: empty batch, span out of
// range, and a batch larger than the frame budget.
func TestReadPagesErrors(t *testing.T) {
	c, _ := readPagesRig(t)
	if _, err := c.ReadPages(nil, int(mem.PageSize)); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := c.ReadPages([]uint64{1 << 40}, int(mem.PageSize)); err == nil {
		t.Error("out-of-range offset accepted")
	}
	huge := make([]uint64, (maxFrameSize/2)/int(mem.PageSize)+2)
	if _, err := c.ReadPages(huge, int(mem.PageSize)); err == nil {
		t.Error("over-budget batch accepted")
	}
	// Errors must not poison the connection for the next request.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after rejected batch: %v", err)
	}
}

// BenchmarkReadPagesVsSingle quantifies the round-trip coalescing: 8
// pages as 8 Read RPCs vs one ReadPages frame.
func BenchmarkReadPagesVsSingle(b *testing.B) {
	const n = 8
	offs := make([]uint64, n)
	for i := range offs {
		offs[i] = uint64(i) * mem.PageSize
	}
	b.Run("single-x8", func(b *testing.B) {
		c, _ := readPagesRig(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, off := range offs {
				if _, err := c.Read(off, int(mem.PageSize)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-x8", func(b *testing.B) {
		c, _ := readPagesRig(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadPages(offs, int(mem.PageSize)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
