package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kona/internal/mem"
	"kona/internal/slab"
	"kona/internal/telemetry"
)

// RepairTransport is how the repair engine moves slab pages between
// memory nodes: batched page reads from the copy source and bulk writes
// to the target. Write takes the data as scatter segments stored
// contiguously at off — the TCP transport ships each segment as one
// writev iovec, so the engine never concatenates page buffers. Both
// RPCs carry the node's expected incarnation so a node that
// crash-rejoined mid-copy fences the stale operation instead of serving
// wrong-generation bytes.
type RepairTransport interface {
	ReadPages(node int, epoch uint64, offs []uint64, pageLen int) ([][]byte, error)
	Write(node int, epoch uint64, off uint64, segs [][]byte) error
}

// RepairConfig tunes the background re-replication engine.
type RepairConfig struct {
	// BytesPerSec caps repair traffic (<= 0: unlimited). Repair shares
	// the fabric with fetch/evict; the budget keeps it from starving
	// them.
	BytesPerSec float64
	// BatchPages is how many pages each ReadPages RPC gathers (default 16).
	BatchPages int
	// PageSize is the copy granularity (default mem.PageSize).
	PageSize int
	// Interval is the Run loop's sweep-and-repair period (default 50ms).
	Interval time.Duration
	// Metrics, if set, receives repair counters and gauges.
	Metrics *telemetry.Registry
}

func (c RepairConfig) withDefaults() RepairConfig {
	if c.BatchPages <= 0 {
		c.BatchPages = 16
	}
	if c.PageSize <= 0 {
		c.PageSize = int(mem.PageSize)
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	return c
}

// RepairStats is a snapshot of the engine's lifetime work.
type RepairStats struct {
	// Flips counts committed repairs (degraded member replaced).
	Flips uint64
	// Failures counts abandoned repair attempts.
	Failures uint64
	// BytesCopied is the total page payload moved.
	BytesCopied uint64
}

// RepairEngine is the controller-side background re-replication loop
// (DESIGN.md §10): it drains the controller's degraded-slab set by
// copying each lost member's pages from a live replica onto a freshly
// carved extent on a healthy node, then committing an atomic placement
// flip. Dirty lines landed during the copy window are retained by the
// compute-side evictor and replayed onto the new member after the flip,
// so the copy itself does not need to chase writers.
type RepairEngine struct {
	ctrl   *Controller
	tr     RepairTransport
	cfg    RepairConfig
	budget *byteBudget

	flips, failures, bytesCopied atomic.Uint64

	mDegraded *telemetry.Gauge
	mBytes    *telemetry.Counter
	mFlips    *telemetry.Counter
	mFailures *telemetry.Counter
}

// NewRepairEngine wires an engine to a controller and a transport.
func NewRepairEngine(ctrl *Controller, tr RepairTransport, cfg RepairConfig) *RepairEngine {
	cfg = cfg.withDefaults()
	e := &RepairEngine{
		ctrl:   ctrl,
		tr:     tr,
		cfg:    cfg,
		budget: newByteBudget(cfg.BytesPerSec, 0),
	}
	if cfg.Metrics != nil {
		e.mDegraded = cfg.Metrics.Gauge("cluster.repair.degraded")
		e.mBytes = cfg.Metrics.Counter("cluster.repair.bytes_copied")
		e.mFlips = cfg.Metrics.Counter("cluster.repair.flips")
		e.mFailures = cfg.Metrics.Counter("cluster.repair.failures")
	}
	return e
}

// Stats returns the engine's lifetime counters.
func (e *RepairEngine) Stats() RepairStats {
	return RepairStats{
		Flips:       e.flips.Load(),
		Failures:    e.failures.Load(),
		BytesCopied: e.bytesCopied.Load(),
	}
}

// RepairOnce attempts every outstanding degraded slab once and returns
// the number of successful flips. Entries that cannot be repaired yet
// (no live source, no healthy target) stay degraded for the next pass.
func (e *RepairEngine) RepairOnce() int {
	flips := 0
	for _, d := range e.ctrl.DegradedSlabs() {
		if err := e.repairOne(d); err == nil {
			flips++
		}
	}
	if e.mDegraded != nil {
		e.mDegraded.Set(int64(e.ctrl.DegradedCount()))
	}
	return flips
}

// repairOne copies one lost member onto a fresh target and flips it in.
func (e *RepairEngine) repairOne(d DegradedSlab) error {
	src, ok := e.ctrl.repairSource(d)
	if !ok {
		return fmt.Errorf("repair: group %d has no live source", d.Group)
	}
	target, err := e.ctrl.CarveRepairTarget(d)
	if err != nil {
		return err
	}
	if err := e.copySlab(src, target); err != nil {
		e.ctrl.AbandonRepair(target)
		e.failures.Add(1)
		if e.mFailures != nil {
			e.mFailures.Inc()
		}
		return err
	}
	if err := e.ctrl.CommitRepair(d, target); err != nil {
		e.ctrl.AbandonRepair(target)
		e.failures.Add(1)
		if e.mFailures != nil {
			e.mFailures.Inc()
		}
		return err
	}
	e.flips.Add(1)
	if e.mFlips != nil {
		e.mFlips.Inc()
	}
	return nil
}

// copySlab streams the slab's pages source→target through the shared
// budgeted extent copy (copyExtentBudgeted, migrate.go).
func (e *RepairEngine) copySlab(src, target slab.Slab) error {
	return copyExtentBudgeted(e.tr, e.budget, e.cfg.BatchPages, uint64(e.cfg.PageSize), src, target,
		func(span uint64) {
			e.bytesCopied.Add(span)
			if e.mBytes != nil {
				e.mBytes.Add(span)
			}
		})
}

// Run sweeps for dead nodes and repairs degraded slabs every Interval
// until stop closes. The daemon's background loop.
func (e *RepairEngine) Run(stop <-chan struct{}) {
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.ctrl.HealthSweep()
			e.RepairOnce()
		}
	}
}

// LocalRepairTransport moves pages between in-process MemoryNodes
// through their locked pool accessors — the simulated fabric's repair
// path.
type LocalRepairTransport struct {
	Ctrl *Controller
}

func (t *LocalRepairTransport) node(id int, epoch uint64) (*MemoryNode, error) {
	n, ok := t.Ctrl.Node(id)
	if !ok {
		return nil, fmt.Errorf("repair: node %d not registered", id)
	}
	if epoch != 0 && n.Incarnation() != epoch {
		return nil, fmt.Errorf("repair: node %d incarnation %d, want %d", id, n.Incarnation(), epoch)
	}
	return n, nil
}

// ReadPages gathers len(offs) pages from the node's pool.
func (t *LocalRepairTransport) ReadPages(node int, epoch uint64, offs []uint64, pageLen int) ([][]byte, error) {
	n, err := t.node(node, epoch)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(offs))
	for i, off := range offs {
		buf := make([]byte, pageLen)
		if err := n.ReadAt(off, buf); err != nil {
			return nil, err
		}
		out[i] = buf
	}
	return out, nil
}

// Write stores the concatenation of segs into the node's pool at off.
func (t *LocalRepairTransport) Write(node int, epoch uint64, off uint64, segs [][]byte) error {
	n, err := t.node(node, epoch)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := n.WriteAt(off, seg); err != nil {
			return err
		}
		off += uint64(len(seg))
	}
	return nil
}

// TCPRepairTransport moves pages between memnode daemons over the wire
// protocol, stamping every RPC with the node's expected incarnation so
// the daemon's epoch fence rejects stale copies.
type TCPRepairTransport struct {
	// Addr resolves a node id to its daemon address (the controller
	// server's registration table).
	Addr func(node int) (string, bool)
	// Transport is the client policy; zero value means defaults.
	Transport Transport

	mu      sync.Mutex
	clients map[string]*MemoryNodeClient
}

// NewTCPRepairTransport returns a transport resolving node addresses
// through addr (typically ControllerServer.NodeAddr).
func NewTCPRepairTransport(addr func(node int) (string, bool), tr Transport) *TCPRepairTransport {
	return &TCPRepairTransport{Addr: addr, Transport: tr}
}

func (t *TCPRepairTransport) client(node int) (*MemoryNodeClient, error) {
	addr, ok := t.Addr(node)
	if !ok {
		return nil, fmt.Errorf("repair: no address for node %d", node)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.clients == nil {
		t.clients = make(map[string]*MemoryNodeClient)
	}
	if c, ok := t.clients[addr]; ok {
		return c, nil
	}
	c := DialMemoryNodeTransport(addr, t.Transport)
	t.clients[addr] = c
	return c, nil
}

// ReadPages fetches a batch of pages from the node's daemon.
func (t *TCPRepairTransport) ReadPages(node int, epoch uint64, offs []uint64, pageLen int) ([][]byte, error) {
	c, err := t.client(node)
	if err != nil {
		return nil, err
	}
	c.SetEpoch(epoch)
	return c.ReadPages(offs, pageLen)
}

// Write stores segs on the node's daemon: one WriteVec RPC whose payload
// is the segments writev'd straight from the repair read buffers.
func (t *TCPRepairTransport) Write(node int, epoch uint64, off uint64, segs [][]byte) error {
	c, err := t.client(node)
	if err != nil {
		return err
	}
	c.SetEpoch(epoch)
	return c.WriteVec(off, segs...)
}

// Close tears down any dialed memnode clients.
func (t *TCPRepairTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.clients {
		c.Close()
	}
	t.clients = nil
}
